(* Quickstart: the paper's running example, end to end.

   We build the source/target schemas and the data example (I, J) from the
   appendix, write two candidate st tgds, inspect the chase and the Eq. 9
   degrees, print the appendix's objective table, and let CMD pick the best
   mapping — first on the small example (where the empty mapping wins, the
   paper's guard against overfitting) and then with five more ML-like
   projects (where theta3 wins).

   Run with: dune exec examples/quickstart.exe *)

open Relational
open Logic

let v x = Term.Var x

(* --- schemas and data --------------------------------------------------- *)

let source =
  Schema.of_relations [ Relation.make "proj" [ "pname"; "emp"; "org" ] ]

let target =
  Schema.of_relations
    [
      Relation.make "task" [ "pname"; "emp"; "oid" ];
      Relation.make "org" [ "oid"; "oname" ];
    ]

let instance_i =
  Instance.of_tuples
    [
      Tuple.of_consts "proj" [ "BigData"; "Bob"; "IBM" ];
      Tuple.of_consts "proj" [ "ML"; "Alice"; "SAP" ];
    ]

let instance_j =
  Instance.of_tuples
    [
      Tuple.of_consts "task" [ "ML"; "Alice"; "111" ];
      Tuple.of_consts "org" [ "111"; "SAP" ];
      Tuple.of_consts "task" [ "Social"; "Carl"; "222" ];
      Tuple.of_consts "org" [ "222"; "MSR" ];
    ]

(* --- candidate st tgds --------------------------------------------------- *)

let theta1 =
  Tgd.make ~label:"theta1"
    ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
    ~head:[ Atom.make "task" [ v "P"; v "E"; v "T" ] ]
    ()

let theta3 =
  Tgd.make ~label:"theta3"
    ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
    ~head:
      [
        Atom.make "task" [ v "P"; v "E"; v "T" ];
        Atom.make "org" [ v "T"; v "O" ];
      ]
    ()

let candidates = [ theta1; theta3 ]

let () =
  (* sanity: the tgds fit the schemas *)
  List.iter
    (fun tgd ->
      match Tgd.well_formed ~source ~target tgd with
      | Ok () -> ()
      | Error msg -> failwith msg)
    candidates;

  Format.printf "== The data example ==@.";
  Format.printf "I:@.%a@.@.J:@.%a@.@." Instance.pp instance_i Instance.pp instance_j;

  Format.printf "== The candidates and their chase ==@.";
  List.iter
    (fun tgd ->
      let { Chase.solution; _ } = Chase.run instance_i [ tgd ] in
      Format.printf "%a   (size %d)@.K = %a@.@." Tgd.pp tgd (Tgd.size tgd)
        Instance.pp solution)
    candidates;

  Format.printf "== Eq. 9 degrees ==@.";
  let stats = Cover.analyze ~source:instance_i ~j:instance_j candidates in
  Array.iter
    (fun s ->
      Format.printf "%s explains:@." s.Cover.tgd.Tgd.label;
      List.iter
        (fun t ->
          Format.printf "  %a to degree %a@." Tuple.pp t Util.Frac.pp
            (Cover.covers s t))
        (Cover.covered_targets s);
      Format.printf "  errors: %d@." (Cover.error_count s))
    stats;

  Format.printf "@.== The objective table (appendix, Eq. 9) ==@.";
  let problem = Core.Problem.make ~source:instance_i ~j:instance_j candidates in
  List.iter
    (fun (name, idx) ->
      let sel = Core.Problem.selection_of_indices problem idx in
      Format.printf "%-18s %a@." name Core.Objective.pp_breakdown
        (Core.Objective.breakdown problem sel))
    [ ("{}", []); ("{theta1}", [ 0 ]); ("{theta3}", [ 1 ]); ("{theta1,theta3}", [ 0; 1 ]) ];

  Format.printf "@.== CMD on the small example ==@.";
  let report problem =
    let r = Core.Cmd.solve problem in
    Array.iteri
      (fun i tgd ->
        Format.printf "  in(%s) = %.3f  -> %s@." tgd.Tgd.label
          r.Core.Cmd.fractional.(i)
          (if r.Core.Cmd.selection.(i) then "selected" else "dropped"))
      problem.Core.Problem.candidates;
    Format.printf "  objective %a@." Util.Frac.pp r.Core.Cmd.objective
  in
  report problem;
  Format.printf
    "the empty mapping wins: with so little data, both candidates cost more \
     than they explain (the paper's overfitting guard)@.";

  Format.printf "@.== CMD with five more ML-like projects ==@.";
  let extend inst mk =
    List.fold_left
      (fun acc k -> Instance.add (mk (Printf.sprintf "Proj%d" k)) acc)
      inst
      (List.init 5 (fun k -> k))
  in
  let i5 = extend instance_i (fun p -> Tuple.of_consts "proj" [ p; "Alice"; "SAP" ]) in
  let j5 = extend instance_j (fun p -> Tuple.of_consts "task" [ p; "Alice"; "111" ]) in
  report (Core.Problem.make ~source:i5 ~j:j5 candidates);
  Format.printf "now theta3 explains the new tasks fully and wins.@."
