(* The NP-hardness reduction in action (Theorem 1 of the appendix).

   We take a SET COVER instance, build the corresponding mapping-selection
   problem, and watch exact mapping selection solve set cover: the optimal
   selection's objective is at most m = 2n exactly when a cover with at most
   n sets exists.

   Run with: dune exec examples/set_cover.exe *)

open Core

let instance =
  {
    Setcover.universe = [ "a"; "b"; "c"; "d"; "e"; "f" ];
    sets =
      [
        ("S1", [ "a"; "b"; "c" ]);
        ("S2", [ "c"; "d" ]);
        ("S3", [ "d"; "e"; "f" ]);
        ("S4", [ "a"; "f" ]);
        ("S5", [ "b"; "e" ]);
      ];
    budget = 2;
  }

let () =
  Format.printf "SET COVER: U = {a..f}, 5 sets, budget n = %d@.@." instance.Setcover.budget;
  let red = Setcover.reduce instance in
  let p = red.Setcover.problem in
  Format.printf "constructed selection problem: %d candidates, |J| = %d, m = %d@."
    (Problem.num_candidates p) (Problem.num_tuples p) red.Setcover.m;
  List.iter
    (fun tgd -> Format.printf "  %a@." Logic.Tgd.pp tgd)
    (Array.to_list p.Problem.candidates);

  let best = Exact.solve p in
  let f = Objective.value p best in
  let cover = Setcover.cover_of_selection red best in
  Format.printf "@.optimal selection: {%s} with F = %a@."
    (String.concat ", " cover) Util.Frac.pp f;
  Format.printf "closed form of the proof: (m+1)(|U| - |covered|) + 2|M| = %a@."
    Util.Frac.pp (Setcover.closed_form instance ~selected:cover);
  Format.printf "F <= m? %b — so a cover with at most %d sets %s@."
    Util.Frac.(f <= Util.Frac.of_int red.Setcover.m)
    instance.Setcover.budget
    (if Setcover.decide instance then "exists" else "does not exist");

  (* and indeed {S1, S3} covers everything *)
  Format.printf "@.with budget 1 instead: cover exists? %b@."
    (Setcover.decide { instance with Setcover.budget = 1 })
