(* Data exchange beyond selection: the substrate features.

   Once a mapping is selected, it is used: this walkthrough exchanges data
   with the selected mapping, enforces a target key with the egd chase,
   answers queries under certain-answer semantics, and shows candidate
   minimisation (logical implication) pruning a redundant candidate before
   selection even starts.

   Run with: dune exec examples/data_exchange.exe *)

open Relational
open Logic

let v x = Term.Var x

let () =
  (* the HR scenario from the zoo *)
  let entry = Option.get (Scenarios.Zoo.find "hr") in
  let doc = entry.Scenarios.Zoo.doc in

  Format.printf "== 1. candidate minimisation ==@.";
  (* add a bloated variant of a candidate: same meaning, redundant atom *)
  let bloated =
    Tgd.make ~label:"bloated"
      ~body:
        [
          Atom.make "emp" [ v "E"; v "N"; v "D"; v "S" ];
          Atom.make "emp" [ v "E2"; v "N2"; v "D2"; v "S2" ];
        ]
      ~head:[ Atom.make "staff" [ v "SID"; v "N"; v "S" ] ]
      ()
  in
  let candidates = doc.Serialize.Document.tgds @ [ bloated ] in
  Format.printf "before: %d candidates (one of them bloated)@." (List.length candidates);
  let minimized = Chase.Implication.minimize (List.map Chase.Implication.minimize_tgd candidates) in
  Format.printf "after minimize_tgd + minimize: %d candidates@.@." (List.length minimized);

  Format.printf "== 2. selection on the minimised set ==@.";
  let problem =
    Core.Problem.make ~source:doc.Serialize.Document.instance_i
      ~j:doc.Serialize.Document.instance_j minimized
  in
  let r = Core.Cmd.solve problem in
  let mapping = List.filteri (fun i _ -> r.Core.Cmd.selection.(i)) minimized in
  List.iter (fun t -> Format.printf "selected: %a@." Tgd.pp t) mapping;

  Format.printf "@.== 3. exchange and enforce a target key ==@.";
  let exchanged = Chase.universal_solution doc.Serialize.Document.instance_i mapping in
  Format.printf "exchanged (%d tuples, %d distinct unit rows):@."
    (Instance.cardinal exchanged)
    (Tuple.Set.cardinal (Instance.tuples_of exchanged "unit"));
  (* every employee trigger invented its own unit id; the key
     unit(uname) -> uid merges them *)
  let unit_schema =
    Schema.of_relations [ Relation.make "unit" [ "uid"; "uname" ] ]
  in
  let key_egds =
    (* uname functionally determines uid: one unit per name *)
    Chase.Egd.key ~rel:"unit" ~key:[ "uname" ] unit_schema
  in
  (match Chase.Egd.chase exchanged key_egds with
  | Error c -> Format.printf "key conflict: %a@." Chase.Egd.pp_conflict c
  | Ok keyed ->
    Format.printf "after the egd chase: %d distinct unit rows@.@."
      (Tuple.Set.cardinal (Instance.tuples_of keyed "unit"));

    Format.printf "== 4. certain answers over the keyed instance ==@.";
    let q =
      [
        Atom.make "staff" [ v "S"; v "N"; v "P" ];
        Atom.make "member_of" [ v "S"; v "U" ];
        Atom.make "unit" [ v "U"; v "UN" ];
      ]
    in
    let answers =
      Chase.Certain.answer_tuples keyed q
        ~head:(Atom.make "ans" [ v "N"; v "UN" ])
    in
    Format.printf "who works where (certain answers):@.";
    List.iter (fun t -> Format.printf "  %a@." Tuple.pp t) answers;

    (* a query whose output depends on an invented id has no certain
       answers *)
    let ids =
      Chase.Certain.answer_tuples keyed
        [ Atom.make "staff" [ v "S"; v "N"; v "P" ] ]
        ~head:(Atom.make "ans" [ v "S" ])
    in
    Format.printf "certain staff ids (all invented, so none): %d@."
      (List.length ids))
