(* The probabilistic-soft-logic engine on its own: the classic smokers
   example.

   Rules:
     2.0 : friend(X,Y) & smokes(X) -> smokes(Y)
     0.5 : smokes(X) & friend(X,_) ->          (negative prior on smokers with friends)
     hard: -> smokes(anna)                     (observed fact)

   MAP inference on the ground hinge-loss MRF propagates smoking through the
   friendship graph with decaying confidence.

   Run with: dune exec examples/psl_demo.exe *)

open Psl

let people = [ "anna"; "bob"; "carol"; "dave"; "eve" ]

let friendships =
  [ ("anna", "bob"); ("bob", "carol"); ("carol", "dave"); ("dave", "eve") ]

let () =
  let db =
    Database.create
      [ Predicate.make ~closed:true "friend" 2; Predicate.make "smokes" 1 ]
    |> Database.observe_all
         (List.map (fun (a, b) -> (Gatom.make "friend" [ a; b ], 1.0)) friendships)
  in
  let rules =
    [
      Rule.make ~label:"influence" ~weight:(Some 2.0)
        ~body:
          [ Rule.pos "friend" [ Rule.V "X"; Rule.V "Y" ];
            Rule.pos "smokes" [ Rule.V "X" ] ]
        ~head:[ Rule.pos "smokes" [ Rule.V "Y" ] ]
        ();
      Rule.make ~label:"prior" ~weight:(Some 0.5)
        ~body:[ Rule.pos "smokes" [ Rule.V "X" ];
                Rule.pos "friend" [ Rule.V "X"; Rule.V "Y" ] ]
        ~head:[] ();
      Rule.make ~label:"anna-smokes" ~weight:None ~body:[]
        ~head:[ Rule.pos "smokes" [ Rule.C "anna" ] ]
        ();
    ]
  in
  List.iter (fun r -> Format.printf "%a@." Rule.pp r) rules;
  let g = Grounding.ground db rules in
  Format.printf "@.ground model: %d open atoms, %d groundings@.@."
    (Array.length g.Grounding.atoms) g.Grounding.groundings;
  let r = Grounding.map_inference g in
  Format.printf "ADMM: %d iterations, converged %b, energy %.4f@.@."
    r.Admm.iterations r.Admm.converged r.Admm.energy;
  List.iter
    (fun p ->
      match Grounding.truth_in g r.Admm.solution (Gatom.make "smokes" [ p ]) with
      | Some v -> Format.printf "smokes(%s) = %.3f@." p v
      | None -> Format.printf "smokes(%s) not in the ground model@." p)
    people
