examples/bibliography.mli:
