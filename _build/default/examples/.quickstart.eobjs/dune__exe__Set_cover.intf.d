examples/set_cover.mli:
