examples/set_cover.ml: Array Core Exact Format List Logic Objective Problem Setcover String Util
