examples/ibench_noise.ml: Array Core Format Ibench List Logic Metrics String Util
