examples/quickstart.ml: Array Atom Chase Core Cover Format Instance List Logic Printf Relation Relational Schema Term Tgd Tuple Util
