examples/psl_demo.mli:
