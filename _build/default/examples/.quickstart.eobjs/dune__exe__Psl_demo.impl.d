examples/psl_demo.ml: Admm Array Database Format Gatom Grounding List Predicate Psl Rule
