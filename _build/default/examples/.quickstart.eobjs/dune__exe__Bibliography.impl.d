examples/bibliography.ml: Array Candgen Chase Core Format Instance List Logic Relation Relational Schema Tuple
