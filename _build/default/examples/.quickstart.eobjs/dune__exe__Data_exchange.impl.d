examples/data_exchange.ml: Array Atom Chase Core Format Instance List Logic Option Relation Relational Scenarios Schema Serialize Term Tgd Tuple
