examples/quickstart.mli:
