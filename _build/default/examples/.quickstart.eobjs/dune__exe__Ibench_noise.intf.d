examples/ibench_noise.mli:
