(* A full iBench scenario under noise: the workload of the paper's
   evaluation section.

   We generate a scenario with all seven primitives, inject metadata noise
   (random correspondences -> spurious candidates) and data noise (deleted
   and added target tuples), then compare CMD against the greedy baseline
   and the select-everything strawman.

   Run with: dune exec examples/ibench_noise.exe *)

let () =
  let config =
    Ibench.Config.with_noise ~pi_corresp:50 ~pi_errors:25 ~pi_unexplained:25
      { Ibench.Config.default with Ibench.Config.rows_per_relation = 15; seed = 3 }
  in
  let s = Ibench.Generator.generate config in
  Format.printf "== scenario ==@.%a@.@." Ibench.Scenario.pp_summary s;
  Format.printf "ground truth MG:@.";
  List.iter (fun t -> Format.printf "  %a@." Logic.Tgd.pp t) s.Ibench.Scenario.ground_truth;

  let problem =
    Core.Problem.make ~source:s.Ibench.Scenario.instance_i
      ~j:s.Ibench.Scenario.instance_j s.Ibench.Scenario.candidates
  in
  Format.printf "@.%d candidates (ground truth at positions %s)@.@."
    (Core.Problem.num_candidates problem)
    (String.concat ", " (List.map string_of_int s.Ibench.Scenario.ground_truth_indices));

  let report name selection =
    let b = Core.Objective.breakdown problem selection in
    Format.printf "%-8s F = %a | mapping %a | tuples %a@." name
      Util.Frac.pp b.Core.Objective.total Metrics.pp
      (Metrics.mapping_level ~candidates:s.Ibench.Scenario.candidates
         ~truth:s.Ibench.Scenario.ground_truth selection)
      Metrics.pp
      (Metrics.tuple_level problem selection)
  in
  let cmd = Core.Cmd.solve problem in
  report "CMD" cmd.Core.Cmd.selection;
  report "greedy" (Core.Greedy.solve problem);
  report "all" (Array.make (Core.Problem.num_candidates problem) true);

  Format.printf "@.CMD selected:@.";
  Array.iteri
    (fun i selected ->
      if selected then
        Format.printf "  in=%.3f %a%s@." cmd.Core.Cmd.fractional.(i) Logic.Tgd.pp
          problem.Core.Problem.candidates.(i)
          (if Ibench.Scenario.is_ground_truth s i then "   [MG]" else ""))
    cmd.Core.Cmd.selection
