(* Bibliography integration — the paper's motivating scenario, end to end
   with NO hand-written metadata.

   A DBLP-style source (one wide relation per publication type) is mapped
   into a normalised target (publications, people, authorship). We let the
   name-based schema matcher propose the correspondences, Clio-style
   generation derive the candidate st tgds, and CMD select the mapping that
   best explains a small data example.

   Run with: dune exec examples/bibliography.exe *)

open Relational

let source =
  Schema.of_relations
    [
      Relation.make "inproceedings" [ "key"; "title"; "booktitle"; "year"; "author" ];
      Relation.make "articles" [ "key"; "title"; "journal"; "year"; "author" ];
    ]

let target =
  Schema.of_relations
    [
      Relation.make "publication" [ "pid"; "title"; "year" ];
      Relation.make "person" [ "author" ];
      Relation.make "authored" [ "pid"; "author" ];
      Relation.make "venue" [ "vid"; "booktitle" ];
    ]

(* publication/authored join on pid; authored references person *)
let tgt_fkeys =
  [
    Candgen.Fkey.make ~from:("authored", "pid") ~to_:("publication", "pid");
    Candgen.Fkey.make ~from:("authored", "author") ~to_:("person", "author");
  ]

let conference_papers =
  [
    ("dblp:kim17", "Collective Schema Mapping", "ICDE", "2017", "Kimmig");
    ("dblp:mil98", "Schema Equivalence", "VLDB", "1998", "Miller");
    ("dblp:pop02", "Translating Web Data", "VLDB", "2002", "Popa");
    ("dblp:aro15", "The iBench Generator", "VLDB", "2015", "Arocena");
    ("dblp:ale08", "STBenchmark", "VLDB", "2008", "Alexe");
  ]

let journal_articles =
  [
    ("dblp:fag05", "Data Exchange Semantics", "TODS", "2005", "Fagin");
    ("dblp:get07", "Statistical Relational Learning", "MLJ", "2007", "Getoor");
    ("dblp:ber11", "Hinge-Loss MRFs", "JMLR", "2011", "Bach");
  ]

let instance_i =
  Instance.of_tuples
    (List.map
       (fun (k, t, b, y, a) -> Tuple.of_consts "inproceedings" [ k; t; b; y; a ])
       conference_papers
    @ List.map
        (fun (k, t, j, y, a) -> Tuple.of_consts "articles" [ k; t; j; y; a ])
        journal_articles)

(* The target sample: a curator has already integrated most of the library;
   publication ids double as join keys. One conference paper (STBenchmark)
   is missing from the sample — the mapping should survive that. *)
let instance_j =
  let integrated =
    [
      ("p1", "Collective Schema Mapping", "2017", "Kimmig");
      ("p2", "Schema Equivalence", "1998", "Miller");
      ("p3", "Translating Web Data", "2002", "Popa");
      ("p4", "The iBench Generator", "2015", "Arocena");
      ("p5", "Data Exchange Semantics", "2005", "Fagin");
      ("p6", "Statistical Relational Learning", "2007", "Getoor");
      ("p7", "Hinge-Loss MRFs", "2011", "Bach");
    ]
  in
  Instance.of_tuples
    (List.concat_map
       (fun (pid, title, year, author) ->
         [
           Tuple.of_consts "publication" [ pid; title; year ];
           Tuple.of_consts "person" [ author ];
           Tuple.of_consts "authored" [ pid; author ];
         ])
       integrated)

let () =
  Format.printf "== 1. matcher proposes correspondences ==@.";
  let corrs = Candgen.Matcher.propose ~threshold:0.7 ~source ~target () in
  List.iter (fun c -> Format.printf "  %a@." Candgen.Correspondence.pp c) corrs;

  Format.printf "@.== 2. Clio-style candidate generation ==@.";
  let candidates =
    Candgen.Generate.generate ~source ~target ~src_fkeys:[] ~tgt_fkeys ~corrs
  in
  List.iter (fun t -> Format.printf "  %a@." Logic.Tgd.pp t) candidates;

  Format.printf "@.== 3. CMD selects the mapping ==@.";
  let problem = Core.Problem.make ~source:instance_i ~j:instance_j candidates in
  let r = Core.Cmd.solve problem in
  Array.iteri
    (fun i selected ->
      if selected then
        Format.printf "  [selected, in=%.2f] %a@." r.Core.Cmd.fractional.(i)
          Logic.Tgd.pp problem.Core.Problem.candidates.(i))
    r.Core.Cmd.selection;
  Format.printf "  objective: %a@." Core.Objective.pp_breakdown
    (Core.Objective.breakdown problem r.Core.Cmd.selection);

  Format.printf "@.== 4. exchange data with the selected mapping ==@.";
  let mapping =
    List.filteri (fun i _ -> r.Core.Cmd.selection.(i)) candidates
  in
  let exchanged = Chase.universal_solution instance_i mapping in
  Format.printf "%a@." Instance.pp exchanged;

  Format.printf "@.== 5. certain answers over the exchanged data ==@.";
  let v x = Logic.Term.Var x in
  let q =
    [
      Logic.Atom.make "publication" [ v "P"; v "T"; v "Y" ];
      Logic.Atom.make "authored" [ v "P"; v "A" ];
    ]
  in
  let answers =
    Chase.Certain.answer_tuples exchanged q
      ~head:(Logic.Atom.make "ans" [ v "T"; v "A" ])
  in
  Format.printf "who wrote what (certain answers only):@.";
  List.iter (fun t -> Format.printf "  %a@." Tuple.pp t) answers
