bin/cmd_select.ml: Arg Array Candgen Cmd Cmdliner Core Format Ibench List Logic Metrics Printf Scenarios Serialize String Term
