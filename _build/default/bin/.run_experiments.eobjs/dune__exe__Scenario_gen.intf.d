bin/scenario_gen.mli:
