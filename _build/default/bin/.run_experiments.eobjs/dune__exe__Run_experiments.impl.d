bin/run_experiments.ml: Arg Cmd Cmdliner Experiments Format List Printf String Term
