bin/cmd_select.mli:
