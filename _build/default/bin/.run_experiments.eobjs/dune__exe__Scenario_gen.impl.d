bin/scenario_gen.ml: Arg Cmd Cmdliner Format Ibench List Printf Serialize String Term
