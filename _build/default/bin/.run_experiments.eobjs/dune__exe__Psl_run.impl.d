bin/psl_run.ml: Arg Array Cmd Cmdliner Format List Psl Term
