bin/psl_run.mli:
