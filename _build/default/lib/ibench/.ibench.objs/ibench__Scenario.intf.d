lib/ibench/scenario.mli: Candgen Config Format Logic Relational
