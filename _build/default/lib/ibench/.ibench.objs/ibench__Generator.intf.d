lib/ibench/generator.mli: Config Random Scenario
