lib/ibench/primitive.ml: Format String
