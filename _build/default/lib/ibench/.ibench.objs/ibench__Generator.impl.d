lib/ibench/generator.ml: Array Atom Candgen Chase Config Cover Hashtbl Instance List Logic Option Primitive Printf Random Relation Relational Scenario Schema String Term Tgd Tuple Value
