lib/ibench/config.mli: Format Primitive
