lib/ibench/scenario.ml: Candgen Config Format Instance List Logic Relational Schema
