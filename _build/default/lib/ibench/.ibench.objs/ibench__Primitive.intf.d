lib/ibench/primitive.mli: Format
