lib/ibench/config.ml: Format List Option Primitive Printf Result
