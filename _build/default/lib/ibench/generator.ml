open Relational
open Logic

(* Everything one primitive instance contributes to the scenario. *)
type piece = {
  kind : Primitive.kind;
  src_rels : Relation.t list;
  tgt_rels : Relation.t list;
  src_fkeys : Candgen.Fkey.t list;
  tgt_fkeys : Candgen.Fkey.t list;
  mg : Tgd.t list;
}

let var i = Term.Var (Printf.sprintf "V%d" i)

let evar i = Term.Var (Printf.sprintf "E%d" i)

let attrs n = List.init n (Printf.sprintf "a%d")

let vars n = List.init n var

let rand_range rng (lo, hi) = lo + Random.State.int rng (hi - lo + 1)

(* --- primitive construction ------------------------------------------- *)

let copy_piece kind ~prefix ~src_arity ~extra ~keep =
  (* The CP/ADD/DL/ADL family: copy [keep] of the [src_arity] attributes and
     append [extra] fresh existentially-valued ones. *)
  let src = Relation.make (prefix ^ "_s") (attrs src_arity) in
  let tgt_attrs =
    List.filteri (fun i _ -> i < keep) (attrs src_arity)
    @ List.init extra (Printf.sprintf "x%d")
  in
  let tgt = Relation.make (prefix ^ "_t") tgt_attrs in
  let head_args =
    List.filteri (fun i _ -> i < keep) (vars src_arity)
    @ List.init extra evar
  in
  let mg =
    Tgd.make ~label:(prefix ^ "_mg")
      ~body:[ Atom.make src.Relation.name (vars src_arity) ]
      ~head:[ Atom.make tgt.Relation.name head_args ]
      ()
  in
  {
    kind;
    src_rels = [ src ];
    tgt_rels = [ tgt ];
    src_fkeys = [];
    tgt_fkeys = [];
    mg = [ mg ];
  }

let me_piece ~prefix ~src_arity =
  (* Two source relations joined by a foreign key, merged into one target
     relation; the join columns are not copied. *)
  let a_attrs = attrs (src_arity - 1) @ [ "f" ] in
  let b_attrs = "k" :: List.init (src_arity - 1) (Printf.sprintf "b%d") in
  let a = Relation.make (prefix ^ "_s1") a_attrs in
  let b = Relation.make (prefix ^ "_s2") b_attrs in
  let t_attrs =
    attrs (src_arity - 1) @ List.init (src_arity - 1) (Printf.sprintf "b%d")
  in
  let tgt = Relation.make (prefix ^ "_t") t_attrs in
  let joinv = Term.Var "F" in
  let a_vars = List.init (src_arity - 1) var in
  let b_vars = List.init (src_arity - 1) (fun i -> Term.Var (Printf.sprintf "W%d" i)) in
  let mg =
    Tgd.make ~label:(prefix ^ "_mg")
      ~body:
        [
          Atom.make a.Relation.name (a_vars @ [ joinv ]);
          Atom.make b.Relation.name (joinv :: b_vars);
        ]
      ~head:[ Atom.make tgt.Relation.name (a_vars @ b_vars) ]
      ()
  in
  {
    kind = Primitive.ME;
    src_rels = [ a; b ];
    tgt_rels = [ tgt ];
    src_fkeys = [ Candgen.Fkey.make ~from:(a.Relation.name, "f") ~to_:(b.Relation.name, "k") ];
    tgt_fkeys = [];
    mg = [ mg ];
  }

let vp_piece ~prefix ~src_arity =
  (* One source relation split vertically into two joined target
     relations. *)
  let src = Relation.make (prefix ^ "_s") (attrs src_arity) in
  let h = src_arity / 2 in
  let first = List.filteri (fun i _ -> i < h) (attrs src_arity) in
  let second = List.filteri (fun i _ -> i >= h) (attrs src_arity) in
  let t1 = Relation.make (prefix ^ "_t1") ("k" :: first) in
  let t2 = Relation.make (prefix ^ "_t2") ("k" :: second) in
  let key = Term.Var "K" in
  let first_vars = List.filteri (fun i _ -> i < h) (vars src_arity) in
  let second_vars = List.filteri (fun i _ -> i >= h) (vars src_arity) in
  let mg =
    Tgd.make ~label:(prefix ^ "_mg")
      ~body:[ Atom.make src.Relation.name (vars src_arity) ]
      ~head:
        [
          Atom.make t1.Relation.name (key :: first_vars);
          Atom.make t2.Relation.name (key :: second_vars);
        ]
      ()
  in
  {
    kind = Primitive.VP;
    src_rels = [ src ];
    tgt_rels = [ t1; t2 ];
    src_fkeys = [];
    tgt_fkeys =
      [ Candgen.Fkey.make ~from:(t1.Relation.name, "k") ~to_:(t2.Relation.name, "k") ];
    mg = [ mg ];
  }

let vnm_piece ~prefix ~src_arity =
  (* Vertical partitioning with an N-to-M link relation between the two
     parts. *)
  let src = Relation.make (prefix ^ "_s") (attrs src_arity) in
  let h = src_arity / 2 in
  let first = List.filteri (fun i _ -> i < h) (attrs src_arity) in
  let second = List.filteri (fun i _ -> i >= h) (attrs src_arity) in
  let t1 = Relation.make (prefix ^ "_t1") ("k1" :: first) in
  let t2 = Relation.make (prefix ^ "_t2") ("k2" :: second) in
  let link = Relation.make (prefix ^ "_m") [ "f1"; "f2" ] in
  let k1 = Term.Var "K1" and k2 = Term.Var "K2" in
  let first_vars = List.filteri (fun i _ -> i < h) (vars src_arity) in
  let second_vars = List.filteri (fun i _ -> i >= h) (vars src_arity) in
  let mg =
    Tgd.make ~label:(prefix ^ "_mg")
      ~body:[ Atom.make src.Relation.name (vars src_arity) ]
      ~head:
        [
          Atom.make t1.Relation.name (k1 :: first_vars);
          Atom.make t2.Relation.name (k2 :: second_vars);
          Atom.make link.Relation.name [ k1; k2 ];
        ]
      ()
  in
  {
    kind = Primitive.VNM;
    src_rels = [ src ];
    tgt_rels = [ t1; t2; link ];
    src_fkeys = [];
    tgt_fkeys =
      [
        Candgen.Fkey.make ~from:(link.Relation.name, "f1") ~to_:(t1.Relation.name, "k1");
        Candgen.Fkey.make ~from:(link.Relation.name, "f2") ~to_:(t2.Relation.name, "k2");
      ];
    mg = [ mg ];
  }

let build_piece rng (config : Config.t) kind idx =
  let prefix =
    Printf.sprintf "%s%d" (String.lowercase_ascii (Primitive.to_string kind)) idx
  in
  let n = config.Config.src_arity in
  let deletable = min (snd config.Config.range_delete) (n - 1) in
  let del_range = (min (fst config.Config.range_delete) deletable, deletable) in
  match kind with
  | Primitive.CP -> copy_piece kind ~prefix ~src_arity:n ~extra:0 ~keep:n
  | Primitive.ADD ->
    copy_piece kind ~prefix ~src_arity:n
      ~extra:(rand_range rng config.Config.range_add)
      ~keep:n
  | Primitive.DL ->
    copy_piece kind ~prefix ~src_arity:n ~extra:0
      ~keep:(n - rand_range rng del_range)
  | Primitive.ADL ->
    copy_piece kind ~prefix ~src_arity:n
      ~extra:(rand_range rng config.Config.range_add)
      ~keep:(n - rand_range rng del_range)
  | Primitive.ME -> me_piece ~prefix ~src_arity:n
  | Primitive.VP -> vp_piece ~prefix ~src_arity:n
  | Primitive.VNM -> vnm_piece ~prefix ~src_arity:n

(* --- data generation --------------------------------------------------- *)

(* Generate rows for the source relations of one piece. Relations referenced
   by a foreign key are generated first; foreign-key columns sample from the
   referenced column. *)
let generate_rows rng ~rows piece =
  let fkeys = piece.src_fkeys in
  let referenced r =
    List.exists (fun (fk : Candgen.Fkey.t) -> String.equal fk.Candgen.Fkey.to_rel r.Relation.name) fkeys
  in
  let ordered =
    let refs, others = List.partition referenced piece.src_rels in
    refs @ others
  in
  let columns : (string * string, string list) Hashtbl.t = Hashtbl.create 16 in
  let tuples =
    List.concat_map
      (fun (r : Relation.t) ->
        List.init rows (fun i ->
            let values =
              Array.to_list r.Relation.attrs
              |> List.map (fun attr ->
                     let fk =
                       List.find_opt
                         (fun (fk : Candgen.Fkey.t) ->
                           String.equal fk.Candgen.Fkey.from_rel r.Relation.name
                           && String.equal fk.Candgen.Fkey.from_attr attr)
                         fkeys
                     in
                     let v =
                       match fk with
                       | Some fk -> (
                         match
                           Hashtbl.find_opt columns
                             (fk.Candgen.Fkey.to_rel, fk.Candgen.Fkey.to_attr)
                         with
                         | Some (_ :: _ as pool) ->
                           List.nth pool (Random.State.int rng (List.length pool))
                         | Some [] | None ->
                           Printf.sprintf "%s_%s_%d" r.Relation.name attr i)
                       | None ->
                         (* small per-column pool: joins and duplicates occur *)
                         Printf.sprintf "%s_%s_%d" r.Relation.name attr
                           (Random.State.int rng (max 1 rows))
                     in
                     let key = (r.Relation.name, attr) in
                     let prev = Option.value ~default:[] (Hashtbl.find_opt columns key) in
                     Hashtbl.replace columns key (v :: prev);
                     Value.Const v)
            in
            { Tuple.rel = r.Relation.name; values = Array.of_list values })
      )
      ordered
  in
  tuples

(* --- noise ------------------------------------------------------------- *)

let shuffle rng l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list arr

let select_pct rng pct l =
  let n = List.length l in
  let count = ((pct * n) + 50) / 100 in
  let count = max 0 (min n count) in
  List.filteri (fun i _ -> i < count) (shuffle rng l)

(* Random correspondences (the pi_corresp noise): for each selected target
   relation, pick a source relation from a different primitive and map every
   target attribute to a random source attribute. *)
let noise_correspondences rng (config : Config.t) pieces =
  let tagged_targets =
    List.concat_map
      (fun (pi, piece) -> List.map (fun r -> (pi, r)) piece.tgt_rels)
      (List.mapi (fun i p -> (i, p)) pieces)
  in
  let tagged_sources =
    List.concat_map
      (fun (pi, piece) -> List.map (fun r -> (pi, r)) piece.src_rels)
      (List.mapi (fun i p -> (i, p)) pieces)
  in
  let selected = select_pct rng config.Config.pi_corresp tagged_targets in
  List.concat_map
    (fun (ti, (tgt : Relation.t)) ->
      let foreign = List.filter (fun (si, _) -> si <> ti) tagged_sources in
      match foreign with
      | [] -> []
      | _ :: _ ->
        let _, (src : Relation.t) =
          List.nth foreign (Random.State.int rng (List.length foreign))
        in
        Array.to_list tgt.Relation.attrs
        |> List.map (fun tattr ->
               let sattr =
                 src.Relation.attrs.(Random.State.int rng
                                       (Array.length src.Relation.attrs))
               in
               Candgen.Correspondence.make
                 ~src:(src.Relation.name, sattr)
                 ~tgt:(tgt.Relation.name, tattr)))
    selected

(* Ground a tuple by replacing its nulls with fresh constants. *)
let ground_tuple counter tu =
  let mapping = Hashtbl.create 4 in
  Tuple.map_values
    (fun v ->
      match v with
      | Value.Const _ -> v
      | Value.Null n -> (
        match Hashtbl.find_opt mapping n with
        | Some c -> c
        | None ->
          let c = Value.Const (Printf.sprintf "sk%d" !counter) in
          incr counter;
          Hashtbl.add mapping n c;
          c))
    tu

let generate (config : Config.t) =
  (match Config.validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Generator.generate: " ^ msg));
  let rng = Random.State.make [| config.Config.seed |] in
  let pieces =
    List.concat_map
      (fun (kind, count) ->
        List.init count (fun i -> build_piece rng config kind (i + 1)))
      config.Config.primitives
  in
  let source = Schema.of_relations (List.concat_map (fun p -> p.src_rels) pieces) in
  let target = Schema.of_relations (List.concat_map (fun p -> p.tgt_rels) pieces) in
  let src_fkeys = List.concat_map (fun p -> p.src_fkeys) pieces in
  let tgt_fkeys = List.concat_map (fun p -> p.tgt_fkeys) pieces in
  let ground_truth = List.concat_map (fun p -> p.mg) pieces in
  (* data *)
  let instance_i =
    Instance.of_tuples
      (List.concat_map
         (generate_rows rng ~rows:config.Config.rows_per_relation)
         pieces)
  in
  let skolem = ref 0 in
  let mg_triggers = (Chase.run instance_i ground_truth).Chase.triggers in
  let mg_tuples =
    List.concat_map (fun (tr : Chase.Trigger.t) -> tr.Chase.Trigger.tuples) mg_triggers
  in
  (* The clean target instance: the chase of I under MG, grounded per
     trigger group so that join keys stay consistent across the tuples a
     trigger produces. *)
  let j_clean =
    let triggers = mg_triggers in
    List.fold_left
      (fun acc (tr : Chase.Trigger.t) ->
        let mapping = Hashtbl.create 4 in
        List.fold_left
          (fun acc tu ->
            let grounded =
              Tuple.map_values
                (fun v ->
                  match v with
                  | Value.Const _ -> v
                  | Value.Null n -> (
                    match Hashtbl.find_opt mapping n with
                    | Some c -> c
                    | None ->
                      let c = Value.Const (Printf.sprintf "sk%d" !skolem) in
                      incr skolem;
                      Hashtbl.add mapping n c;
                      c))
                tu
            in
            Instance.add grounded acc)
          acc tr.Chase.Trigger.tuples)
      Instance.empty triggers
  in
  (* metadata evidence *)
  let base_corrs =
    List.concat_map
      (Candgen.Generate.correspondences_of_tgd ~source ~target)
      ground_truth
  in
  let noise_corrs = noise_correspondences rng config pieces in
  let correspondences =
    List.sort_uniq Candgen.Correspondence.compare (base_corrs @ noise_corrs)
  in
  let candidates =
    Candgen.Generate.generate ~source ~target ~src_fkeys ~tgt_fkeys
      ~corrs:correspondences
  in
  (* locate (or defensively append) the ground truth within the candidates *)
  let candidates, ground_truth_indices =
    List.fold_left
      (fun (cands, idxs) mg ->
        match
          List.find_index (fun c -> Tgd.equal_up_to_renaming c mg) cands
        with
        | Some i -> (cands, i :: idxs)
        | None -> (cands @ [ mg ], List.length cands :: idxs))
      (candidates, []) ground_truth
  in
  let ground_truth_indices = List.rev ground_truth_indices in
  (* data noise *)
  let spurious =
    List.filteri (fun i _ -> not (List.mem i ground_truth_indices)) candidates
  in
  let spurious_triggers =
    let index = Logic.Cq.Index.build instance_i in
    List.concat_map
      (fun tgd -> (Chase.run ~index instance_i [ tgd ]).Chase.triggers)
      spurious
  in
  let spurious_tuples =
    List.concat_map (fun (tr : Chase.Trigger.t) -> tr.Chase.Trigger.tuples) spurious_triggers
  in
  (* potential non-certain error tuples: tuples of J no spurious candidate
     can produce *)
  let producible_by_spurious t =
    List.exists (fun pattern -> Cover.matches ~pattern t) spurious_tuples
  in
  let potential_errors =
    Instance.fold
      (fun t acc -> if producible_by_spurious t then acc else t :: acc)
      j_clean []
    |> List.rev
  in
  let deletions = select_pct rng config.Config.pi_errors potential_errors in
  (* potential non-certain unexplained tuples: spurious chase tuples that
     neither map into J already nor are producible by the ground truth (a
     tuple MG also generates would be a certain tuple, not an unexplained
     one — note an all-null MG tuple maps onto anything of its relation) *)
  let producible_by_mg t =
    List.exists (fun pattern -> Cover.matches ~pattern t) mg_tuples
  in
  let potential_unexplained =
    List.filter
      (fun t -> not (Cover.maps_into t j_clean) && not (producible_by_mg t))
      spurious_tuples
  in
  let additions =
    select_pct rng config.Config.pi_unexplained potential_unexplained
    |> List.map (ground_tuple skolem)
  in
  let instance_j =
    let after_del = List.fold_left (fun acc t -> Instance.remove t acc) j_clean deletions in
    Instance.add_all additions after_del
  in
  {
    Scenario.config;
    source;
    target;
    src_fkeys;
    tgt_fkeys;
    correspondences;
    candidates;
    ground_truth;
    ground_truth_indices;
    instance_i;
    instance_j;
    j_clean;
  }
