(** Scenario generation (Section VI-A of the paper and Section II of the
    appendix).

    [generate config] builds, deterministically from [config.seed]:

    + schemas and the ground-truth mapping MG from the configured iBench
      primitive instances;
    + a random source instance [I] (foreign keys sampled from referenced
      columns, other attributes from small per-column pools);
    + the clean target instance as the chase of [I] under MG with labeled
      nulls replaced by fresh constants;
    + the metadata evidence: the correspondences induced by MG plus, for
      [pi_corresp]% of the target relations, random correspondences from an
      unrelated source relation;
    + the candidate set [C] via Clio-style generation from the evidence
      (MG ⊆ C holds by construction);
    + the data noise: [pi_errors]% of the potential non-certain error tuples
      deleted from [J], and [pi_unexplained]% of the potential non-certain
      unexplained tuples added to [J]. *)

val generate : Config.t -> Scenario.t
(** Raises [Invalid_argument] if the configuration fails
    {!Config.validate}. *)

val select_pct : Random.State.t -> int -> 'a list -> 'a list
(** [select_pct rng pct xs] uniformly selects [round (pct·|xs|/100)] elements
    (exposed for testing). *)
