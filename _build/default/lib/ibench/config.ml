type t = {
  primitives : (Primitive.kind * int) list;
  src_arity : int;
  range_add : int * int;
  range_delete : int * int;
  rows_per_relation : int;
  pi_corresp : int;
  pi_errors : int;
  pi_unexplained : int;
  seed : int;
}

let default =
  {
    primitives = List.map (fun k -> (k, 1)) Primitive.all;
    src_arity = 5;
    range_add = (2, 4);
    range_delete = (2, 4);
    rows_per_relation = 10;
    pi_corresp = 0;
    pi_errors = 0;
    pi_unexplained = 0;
    seed = 42;
  }

let with_noise ?pi_corresp ?pi_errors ?pi_unexplained t =
  {
    t with
    pi_corresp = Option.value ~default:t.pi_corresp pi_corresp;
    pi_errors = Option.value ~default:t.pi_errors pi_errors;
    pi_unexplained = Option.value ~default:t.pi_unexplained pi_unexplained;
  }

let validate t =
  let pct name v =
    if v < 0 || v > 100 then Error (Printf.sprintf "%s must be in [0,100]" name)
    else Ok ()
  in
  let ( let* ) r f = Result.bind r f in
  let* () = pct "pi_corresp" t.pi_corresp in
  let* () = pct "pi_errors" t.pi_errors in
  let* () = pct "pi_unexplained" t.pi_unexplained in
  let* () =
    if t.src_arity < 2 then Error "src_arity must be at least 2" else Ok ()
  in
  let* () =
    let lo, hi = t.range_delete in
    if lo > hi || lo < 1 then Error "invalid range_delete"
    else if t.src_arity - lo < 1 then
      Error "range_delete would remove every attribute"
    else Ok ()
  in
  let* () =
    let lo, hi = t.range_add in
    if lo > hi || lo < 1 then Error "invalid range_add" else Ok ()
  in
  let* () =
    if t.rows_per_relation < 0 then Error "negative rows_per_relation" else Ok ()
  in
  if List.exists (fun (_, n) -> n < 0) t.primitives then
    Error "negative primitive count"
  else Ok ()

let pp ppf t =
  let pp_prims ppf =
    List.iter (fun (k, n) ->
        if n > 0 then Format.fprintf ppf " %a×%d" Primitive.pp k n)
  in
  Format.fprintf ppf
    "@[<v>primitives:%a@,arity %d, +%d..%d, -%d..%d, %d rows@,noise: corresp \
     %d%%, errors %d%%, unexplained %d%% (seed %d)@]"
    pp_prims t.primitives t.src_arity (fst t.range_add) (snd t.range_add)
    (fst t.range_delete) (snd t.range_delete) t.rows_per_relation t.pi_corresp
    t.pi_errors t.pi_unexplained t.seed
