(** Scenario generation parameters (the paper's Table I).

    Noise parameters are percentages in [0, 100]:
    - [pi_corresp]: share of target relations that receive additional random
      correspondences (spurious metadata evidence, which Clio turns into
      spurious candidates);
    - [pi_errors]: share of the potential non-certain error tuples deleted
      from [J] (tuples only the ground truth produces);
    - [pi_unexplained]: share of the potential non-certain unexplained
      tuples added to [J] (tuples only spurious candidates produce). *)

type t = {
  primitives : (Primitive.kind * int) list;
      (** how many instances of each primitive *)
  src_arity : int;  (** arity of generated source relations (default 5) *)
  range_add : int * int;
      (** attributes added by ADD/ADL, inclusive range; the appendix uses
          (2,4) *)
  range_delete : int * int;
      (** attributes removed by DL/ADL, inclusive range; the appendix uses
          (2,4) *)
  rows_per_relation : int;  (** source tuples per relation (default 10) *)
  pi_corresp : int;
  pi_errors : int;
  pi_unexplained : int;
  seed : int;
}

val default : t
(** One instance of each primitive, arity 5, ranges (2,4), 10 rows, no
    noise, seed 42. *)

val with_noise :
  ?pi_corresp : int -> ?pi_errors : int -> ?pi_unexplained : int -> t -> t

val validate : t -> (unit, string) result

val pp : Format.formatter -> t -> unit
