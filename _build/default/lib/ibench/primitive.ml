type kind =
  | CP
  | ADD
  | DL
  | ADL
  | ME
  | VP
  | VNM

let all = [ CP; ADD; DL; ADL; ME; VP; VNM ]

let to_string = function
  | CP -> "CP"
  | ADD -> "ADD"
  | DL -> "DL"
  | ADL -> "ADL"
  | ME -> "ME"
  | VP -> "VP"
  | VNM -> "VNM"

let of_string s =
  match String.uppercase_ascii s with
  | "CP" -> Some CP
  | "ADD" -> Some ADD
  | "DL" -> Some DL
  | "ADL" -> Some ADL
  | "ME" -> Some ME
  | "VP" -> Some VP
  | "VNM" -> Some VNM
  | _ -> None

let pp ppf k = Format.pp_print_string ppf (to_string k)
