(** The seven iBench mapping primitives used in the paper's evaluation.

    - [CP] copies a source relation to the target, changing its name.
    - [ADD] copies a source relation and adds attributes.
    - [DL] copies a source relation and removes attributes.
    - [ADL] adds and removes attributes on the same relation.
    - [ME] copies two relations, after joining them, to one target relation.
    - [VP] copies a source relation to two joined target relations
      (vertical partitioning).
    - [VNM] is [VP] with an additional target relation forming an N-to-M
      relationship between the two parts. *)

type kind =
  | CP
  | ADD
  | DL
  | ADL
  | ME
  | VP
  | VNM

val all : kind list
(** In the order the appendix lists them. *)

val to_string : kind -> string

val of_string : string -> kind option
(** Case-insensitive. *)

val pp : Format.formatter -> kind -> unit
