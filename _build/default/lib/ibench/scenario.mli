(** A complete mapping-selection scenario.

    The data example is [(instance_i, instance_j)]; [instance_j] is the chase
    of [instance_i] under the ground truth with nulls replaced by fresh
    constants, modified by the configured noise. [candidates] always contains
    the ground truth (up to variable renaming); [ground_truth_indices] points
    at it. *)

type t = {
  config : Config.t;
  source : Relational.Schema.t;
  target : Relational.Schema.t;
  src_fkeys : Candgen.Fkey.t list;
  tgt_fkeys : Candgen.Fkey.t list;
  correspondences : Candgen.Correspondence.t list;
      (** the metadata evidence, including any noise correspondences *)
  candidates : Logic.Tgd.t list;  (** C, generated Clio-style *)
  ground_truth : Logic.Tgd.t list;  (** MG *)
  ground_truth_indices : int list;
      (** positions of MG members within [candidates] *)
  instance_i : Relational.Instance.t;
  instance_j : Relational.Instance.t;
  j_clean : Relational.Instance.t;
      (** the target instance before data noise (the grounded chase of MG) *)
}

val is_ground_truth : t -> int -> bool
(** Is the candidate at this index part of MG? *)

val pp_summary : Format.formatter -> t -> unit
(** A one-paragraph description: sizes of schemas, instances, candidate
    set. *)
