open Relational

type t = {
  config : Config.t;
  source : Schema.t;
  target : Schema.t;
  src_fkeys : Candgen.Fkey.t list;
  tgt_fkeys : Candgen.Fkey.t list;
  correspondences : Candgen.Correspondence.t list;
  candidates : Logic.Tgd.t list;
  ground_truth : Logic.Tgd.t list;
  ground_truth_indices : int list;
  instance_i : Instance.t;
  instance_j : Instance.t;
  j_clean : Instance.t;
}

let is_ground_truth t i = List.mem i t.ground_truth_indices

let pp_summary ppf t =
  Format.fprintf ppf
    "@[<v>source: %d relations, target: %d relations@,\
     correspondences: %d, candidates: %d (ground truth: %d)@,\
     |I| = %d, |J| = %d (clean %d)@]"
    (Schema.size t.source) (Schema.size t.target)
    (List.length t.correspondences)
    (List.length t.candidates)
    (List.length t.ground_truth)
    (Instance.cardinal t.instance_i)
    (Instance.cardinal t.instance_j)
    (Instance.cardinal t.j_clean)
