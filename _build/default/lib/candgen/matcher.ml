open Relational

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  if la = 0 then lb
  else if lb = 0 then la
  else begin
    let prev = Array.init (lb + 1) Fun.id in
    let curr = Array.make (lb + 1) 0 in
    for i = 1 to la do
      curr.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        curr.(j) <- min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit curr 0 prev 0 (lb + 1)
    done;
    prev.(lb)
  end

let is_substring ~needle hay =
  let ln = String.length needle and lh = String.length hay in
  ln > 0 && lh >= ln
  && (let rec scan i =
        i + ln <= lh && (String.equal (String.sub hay i ln) needle || scan (i + 1))
      in
      scan 0)

let similarity a b =
  let a = String.lowercase_ascii a and b = String.lowercase_ascii b in
  let longest = max (String.length a) (String.length b) in
  if longest = 0 then 1.
  else begin
    let edit = 1. -. (float_of_int (levenshtein a b) /. float_of_int longest) in
    (* abbreviations ("emp" vs "employee") defeat plain edit distance; a
       containment of at least three characters scores a flat 0.9 *)
    let shortest = min (String.length a) (String.length b) in
    let contained =
      shortest >= 3 && (is_substring ~needle:a b || is_substring ~needle:b a)
    in
    if contained then Float.max edit 0.9 else edit
  end

let score ~src:(srel, sattr) ~tgt:(trel, tattr) =
  (0.8 *. similarity sattr tattr) +. (0.2 *. similarity srel trel)

let positions schema =
  List.concat_map
    (fun (r : Relation.t) ->
      Array.to_list r.Relation.attrs |> List.map (fun a -> (r.Relation.name, a)))
    (Schema.relations schema)

(* Score all pairs, keep those above the threshold, best per (target
   position, source relation). *)
let select_best scored =
  let ordered =
    List.sort
      (fun (s1, src1, t1) (s2, src2, t2) ->
        match Float.compare s2 s1 with
        | 0 -> Stdlib.compare (t1, src1) (t2, src2)
        | c -> c)
      scored
  in
  let taken = Hashtbl.create 16 in
  List.filter_map
    (fun (_, ((srel, _) as src), tgt) ->
      if Hashtbl.mem taken (tgt, srel) then None
      else begin
        Hashtbl.add taken (tgt, srel) ();
        Some (Correspondence.make ~src ~tgt)
      end)
    ordered

let jaccard a b =
  if Value.Set.is_empty a && Value.Set.is_empty b then 1.
  else
    let inter = Value.Set.cardinal (Value.Set.inter a b) in
    let union = Value.Set.cardinal (Value.Set.union a b) in
    float_of_int inter /. float_of_int union

let column_values inst (r : Relation.t) attr =
  let pos = Relation.attr_index r attr in
  Relational.Tuple.Set.fold
    (fun tu acc ->
      match tu.Relational.Tuple.values.(pos) with
      | Value.Const _ as v -> Value.Set.add v acc
      | Value.Null _ -> acc)
    (Instance.tuples_of inst r.Relation.name)
    Value.Set.empty

let propose_from_data ?(threshold = 0.3) ~source ~target ~source_inst
    ~target_inst () =
  let columns schema inst =
    List.map
      (fun ((rel, attr) as pos) ->
        (pos, column_values inst (Schema.find schema rel) attr))
      (positions schema)
  in
  let src_cols = columns source source_inst in
  let tgt_cols = columns target target_inst in
  List.concat_map
    (fun (tgt, tvals) ->
      List.filter_map
        (fun (src, svals) ->
          let s = jaccard svals tvals in
          if s >= threshold then Some (s, src, tgt) else None)
        src_cols)
    tgt_cols
  |> select_best

let propose ?(threshold = 0.75) ~source ~target () =
  let sources = positions source in
  let scored =
    List.concat_map
      (fun tgt ->
        List.filter_map
          (fun src ->
            let s = score ~src ~tgt in
            if s >= threshold then Some (s, src, tgt) else None)
          sources)
      (positions target)
  in
  select_best scored
