(** Clio-style candidate generation.

    For every pair of a source logical association and a target logical
    association connected by at least one attribute correspondence, a
    candidate st tgd is emitted: its body is the source association, its head
    the target association with corresponded positions carrying the matched
    source variables and all remaining target positions carrying fresh
    existential variables. Candidates are de-duplicated up to variable
    renaming and labelled [theta1, theta2, ...] in generation order.

    When the correspondences are those induced by a ground-truth mapping
    whose tgds are association-shaped (as in the iBench scenarios), the
    ground truth is a subset of the candidates ([MG ⊆ C]). *)

val generate :
  source : Relational.Schema.t ->
  target : Relational.Schema.t ->
  src_fkeys : Fkey.t list ->
  tgt_fkeys : Fkey.t list ->
  corrs : Correspondence.t list ->
  Logic.Tgd.t list

val correspondences_of_tgd :
  source : Relational.Schema.t ->
  target : Relational.Schema.t ->
  Logic.Tgd.t ->
  Correspondence.t list
(** The correspondences a tgd induces: one per (source position, target
    position) pair sharing a frontier variable. This is how the scenario
    generator derives the metadata evidence from the ground-truth mapping. *)
