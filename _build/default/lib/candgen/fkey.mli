(** Foreign keys within one schema.

    [{from_rel; from_attr; to_rel; to_attr}] states that values of
    [from_rel.from_attr] reference [to_rel.to_attr]. Foreign keys drive the
    construction of logical associations (Clio's "logical relations"). *)

type t = {
  from_rel : string;
  from_attr : string;
  to_rel : string;
  to_attr : string;
}

val make : from : string * string -> to_ : string * string -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val validate : Relational.Schema.t -> t -> (unit, string) result

val outgoing : t list -> string -> t list
(** Foreign keys whose [from_rel] is the given relation. *)

val pp : Format.formatter -> t -> unit
