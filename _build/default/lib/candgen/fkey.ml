open Relational

type t = {
  from_rel : string;
  from_attr : string;
  to_rel : string;
  to_attr : string;
}

let make ~from:(from_rel, from_attr) ~to_:(to_rel, to_attr) =
  { from_rel; from_attr; to_rel; to_attr }

let compare = Stdlib.compare

let equal a b = compare a b = 0

let validate schema t =
  let check rel attr =
    match Schema.find_opt schema rel with
    | None -> Error (Printf.sprintf "unknown relation %s" rel)
    | Some r ->
      if Relation.has_attr r attr then Ok ()
      else Error (Printf.sprintf "unknown attribute %s.%s" rel attr)
  in
  match check t.from_rel t.from_attr with
  | Error _ as e -> e
  | Ok () -> check t.to_rel t.to_attr

let outgoing fkeys rel = List.filter (fun t -> String.equal t.from_rel rel) fkeys

let pp ppf t =
  Format.fprintf ppf "%s.%s -> %s.%s" t.from_rel t.from_attr t.to_rel t.to_attr
