open Relational

type t = {
  src_rel : string;
  src_attr : string;
  tgt_rel : string;
  tgt_attr : string;
}

let make ~src:(src_rel, src_attr) ~tgt:(tgt_rel, tgt_attr) =
  { src_rel; src_attr; tgt_rel; tgt_attr }

let compare = Stdlib.compare

let equal a b = compare a b = 0

let validate ~source ~target t =
  let check schema rel attr side =
    match Schema.find_opt schema rel with
    | None -> Error (Printf.sprintf "unknown %s relation %s" side rel)
    | Some r ->
      if Relation.has_attr r attr then Ok ()
      else Error (Printf.sprintf "unknown attribute %s.%s (%s)" rel attr side)
  in
  match check source t.src_rel t.src_attr "source" with
  | Error _ as e -> e
  | Ok () -> check target t.tgt_rel t.tgt_attr "target"

let pp ppf t =
  Format.fprintf ppf "%s.%s ~> %s.%s" t.src_rel t.src_attr t.tgt_rel t.tgt_attr
