(** Logical associations — Clio's "logical relations".

    The association of a relation [R] is the join of [R] with every relation
    reachable from it by following foreign keys transitively, with join
    variables unified along each foreign key. Candidate st tgds are generated
    between pairs of source and target associations. *)

type t = {
  anchor : string;  (** the relation the association is rooted at *)
  relations : string list;  (** all relations in the closure, BFS order *)
  atoms : Logic.Atom.t list;  (** one atom per relation, sharing join variables *)
  vars : ((string * string) * string) list;
      (** (relation, attribute) → variable name, for every position *)
}

val of_relation :
  schema : Relational.Schema.t -> fkeys : Fkey.t list -> string -> t
(** Raises [Not_found] if the relation is not in the schema. Cyclic foreign
    keys are handled by visiting every relation at most once. *)

val all : schema : Relational.Schema.t -> fkeys : Fkey.t list -> t list
(** One association per relation of the schema, in name order. *)

val var_of : t -> string -> string -> string option
(** [var_of assoc rel attr] is the variable used for [rel.attr], if [rel]
    belongs to the association. *)

val mem : t -> string -> bool
(** Does the relation belong to the association? *)

val pp : Format.formatter -> t -> unit
