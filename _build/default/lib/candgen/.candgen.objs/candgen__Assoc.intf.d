lib/candgen/assoc.mli: Fkey Format Logic Relational
