lib/candgen/correspondence.ml: Format Printf Relation Relational Schema Stdlib
