lib/candgen/fkey.ml: Format List Printf Relation Relational Schema Stdlib String
