lib/candgen/matcher.mli: Correspondence Relational
