lib/candgen/correspondence.mli: Format Relational
