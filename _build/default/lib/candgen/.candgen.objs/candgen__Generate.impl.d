lib/candgen/generate.ml: Array Assoc Atom Correspondence Hashtbl List Logic Printf Relation Relational Schema String Term Tgd
