lib/candgen/assoc.ml: Array Atom Fkey Format Hashtbl List Logic Printf Queue Relation Relational Schema String Term
