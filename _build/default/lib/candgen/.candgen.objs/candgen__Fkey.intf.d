lib/candgen/fkey.mli: Format Relational
