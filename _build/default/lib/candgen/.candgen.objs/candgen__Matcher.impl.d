lib/candgen/matcher.ml: Array Correspondence Float Fun Hashtbl Instance List Relation Relational Schema Stdlib String Value
