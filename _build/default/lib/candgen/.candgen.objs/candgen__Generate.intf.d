lib/candgen/generate.mli: Correspondence Fkey Logic Relational
