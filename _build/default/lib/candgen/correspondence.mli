(** Attribute correspondences — the metadata evidence.

    A correspondence states that a source attribute matches a target
    attribute (the kind of evidence produced by a schema matcher and consumed
    by Clio). *)

type t = {
  src_rel : string;
  src_attr : string;
  tgt_rel : string;
  tgt_attr : string;
}

val make :
  src : string * string -> tgt : string * string -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val validate :
  source : Relational.Schema.t ->
  target : Relational.Schema.t ->
  t ->
  (unit, string) result
(** Checks that both endpoints exist in their schemas. *)

val pp : Format.formatter -> t -> unit
(** Prints as [src.attr ~> tgt.attr]. *)
