(** A simple schema matcher: proposes attribute correspondences from name
    similarity.

    The paper takes correspondences as given (produced by a matcher and
    possibly noisy); this module provides a baseline matcher so the library
    is usable end-to-end on schemas without hand-written correspondences.
    The score of a source/target attribute pair combines the normalised
    Levenshtein similarity of the attribute names with a smaller
    contribution from the relation names. *)

val levenshtein : string -> string -> int
(** Classic edit distance (insert/delete/substitute, unit costs). *)

val similarity : string -> string -> float
(** [1 − distance/max-length], case-insensitive; 1.0 for equal strings and
    for two empty strings. A containment of at least three characters
    ("emp" inside "employee") scores at least 0.9, so common abbreviations
    match. *)

val score : src : string * string -> tgt : string * string -> float
(** [score ~src:(rel, attr) ~tgt:(rel', attr')]: 0.8 × attribute-name
    similarity + 0.2 × relation-name similarity. *)

val jaccard : Relational.Value.Set.t -> Relational.Value.Set.t -> float
(** [|a ∩ b| / |a ∪ b|]; 1.0 for two empty sets. *)

val column_values :
  Relational.Instance.t -> Relational.Relation.t -> string -> Relational.Value.Set.t
(** The set of values in one column. Raises [Not_found] on an unknown
    attribute. *)

val propose_from_data :
  ?threshold : float ->
  source : Relational.Schema.t ->
  target : Relational.Schema.t ->
  source_inst : Relational.Instance.t ->
  target_inst : Relational.Instance.t ->
  unit ->
  Correspondence.t list
(** Instance-based matching: scores a source/target attribute pair by the
    Jaccard overlap of their column values (labeled nulls ignored) and keeps
    pairs scoring at least [threshold] (default 0.3), deduplicated like
    {!propose}. Complements {!propose} when attribute names are opaque. *)

val propose :
  ?threshold : float ->
  source : Relational.Schema.t ->
  target : Relational.Schema.t ->
  unit ->
  Correspondence.t list
(** All pairs scoring at least [threshold] (default 0.75), best matches
    first. Each target attribute is matched at most once {e per source
    relation} (to that relation's best attribute), so several source
    relations can map into the same target relation. *)
