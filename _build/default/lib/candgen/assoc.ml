open Relational
open Logic

type t = {
  anchor : string;
  relations : string list;
  atoms : Atom.t list;
  vars : ((string * string) * string) list;
}

(* Union-find over (rel, attr) pairs, used to unify join variables along
   foreign keys. *)
module Uf = struct
  type t = (string * string, string * string) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let rec find uf x =
    match Hashtbl.find_opt uf x with
    | None -> x
    | Some p ->
      let root = find uf p in
      if root <> p then Hashtbl.replace uf x root;
      root

  let union uf a b =
    let ra = find uf a and rb = find uf b in
    if ra <> rb then Hashtbl.replace uf rb ra
end

let canonical_var (rel, attr) = Printf.sprintf "%s_%s" rel attr

let of_relation ~schema ~fkeys anchor =
  ignore (Schema.find schema anchor);
  (* BFS over outgoing foreign keys, visiting each relation once. *)
  let visited = Hashtbl.create 8 in
  let order = ref [] in
  let uf = Uf.create () in
  let queue = Queue.create () in
  Queue.add anchor queue;
  Hashtbl.add visited anchor ();
  while not (Queue.is_empty queue) do
    let rel = Queue.pop queue in
    order := rel :: !order;
    List.iter
      (fun (fk : Fkey.t) ->
        if Schema.mem schema fk.Fkey.to_rel then begin
          Uf.union uf (fk.Fkey.from_rel, fk.Fkey.from_attr)
            (fk.Fkey.to_rel, fk.Fkey.to_attr);
          if not (Hashtbl.mem visited fk.Fkey.to_rel) then begin
            Hashtbl.add visited fk.Fkey.to_rel ();
            Queue.add fk.Fkey.to_rel queue
          end
        end)
      (Fkey.outgoing fkeys rel)
  done;
  let relations = List.rev !order in
  let positions =
    List.concat_map
      (fun rel ->
        let r = Schema.find schema rel in
        Array.to_list r.Relation.attrs |> List.map (fun attr -> (rel, attr)))
      relations
  in
  let vars =
    List.map (fun pos -> (pos, canonical_var (Uf.find uf pos))) positions
  in
  let atoms =
    List.map
      (fun rel ->
        let r = Schema.find schema rel in
        let args =
          Array.to_list r.Relation.attrs
          |> List.map (fun attr -> Term.Var (List.assoc (rel, attr) vars))
        in
        Atom.make rel args)
      relations
  in
  { anchor; relations; atoms; vars }

let all ~schema ~fkeys =
  List.map (fun r -> of_relation ~schema ~fkeys r.Relation.name) (Schema.relations schema)

let var_of t rel attr = List.assoc_opt (rel, attr) t.vars

let mem t rel = List.exists (String.equal rel) t.relations

let pp ppf t =
  Format.fprintf ppf "%s: %a" t.anchor
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
       Atom.pp)
    t.atoms
