open Relational
open Logic

let prefix_vars prefix atoms =
  List.map
    (fun (a : Atom.t) ->
      { a with
        Atom.args =
          Array.map
            (function
              | Term.Var v -> Term.Var (prefix ^ v)
              | Term.Cst _ as cst -> cst)
            a.Atom.args
      })
    atoms

let candidate_of_pair (sa : Assoc.t) (ta : Assoc.t) corrs =
  let relevant =
    List.filter
      (fun (c : Correspondence.t) ->
        Assoc.mem sa c.Correspondence.src_rel
        && Assoc.mem ta c.Correspondence.tgt_rel)
      corrs
  in
  if relevant = [] then None
  else begin
    (* map each target variable (class) to a source variable, first
       correspondence wins *)
    let mapping = Hashtbl.create 8 in
    List.iter
      (fun (c : Correspondence.t) ->
        match
          ( Assoc.var_of sa c.Correspondence.src_rel c.Correspondence.src_attr,
            Assoc.var_of ta c.Correspondence.tgt_rel c.Correspondence.tgt_attr )
        with
        | Some sv, Some tv ->
          if not (Hashtbl.mem mapping ("T" ^ tv)) then
            Hashtbl.add mapping ("T" ^ tv) ("S" ^ sv)
        | None, _ | _, None -> ())
      relevant;
    let body = prefix_vars "S" sa.Assoc.atoms in
    let head =
      prefix_vars "T" ta.Assoc.atoms
      |> List.map (fun (a : Atom.t) ->
             { a with
               Atom.args =
                 Array.map
                   (function
                     | Term.Var v -> (
                       match Hashtbl.find_opt mapping v with
                       | Some sv -> Term.Var sv
                       | None -> Term.Var v)
                     | Term.Cst _ as cst -> cst)
                   a.Atom.args
             })
    in
    Some (Tgd.make ~body ~head ())
  end

let generate ~source ~target ~src_fkeys ~tgt_fkeys ~corrs =
  let src_assocs = Assoc.all ~schema:source ~fkeys:src_fkeys in
  let tgt_assocs = Assoc.all ~schema:target ~fkeys:tgt_fkeys in
  let raw =
    List.concat_map
      (fun sa ->
        List.filter_map (fun ta -> candidate_of_pair sa ta corrs) tgt_assocs)
      src_assocs
  in
  let deduped =
    List.fold_left
      (fun acc tgd ->
        if List.exists (Tgd.equal_up_to_renaming tgd) acc then acc
        else tgd :: acc)
      [] raw
    |> List.rev
  in
  List.mapi
    (fun i tgd -> Tgd.relabel (Printf.sprintf "theta%d" (i + 1)) tgd)
    deduped

let correspondences_of_tgd ~source ~target (tgd : Tgd.t) =
  let positions schema atoms =
    List.concat_map
      (fun (a : Atom.t) ->
        match Schema.find_opt schema a.Atom.rel with
        | None -> []
        | Some r ->
          Array.to_list a.Atom.args
          |> List.mapi (fun i term -> (a.Atom.rel, r.Relation.attrs.(i), term))
          |> List.filter_map (fun (rel, attr, term) ->
                 match term with
                 | Term.Var v -> Some (rel, attr, v)
                 | Term.Cst _ -> None))
      atoms
  in
  let src_positions = positions source tgd.Tgd.body in
  let tgt_positions = positions target tgd.Tgd.head in
  List.concat_map
    (fun (tr, ta, tv) ->
      List.filter_map
        (fun (sr, sa, sv) ->
          if String.equal sv tv then
            Some (Correspondence.make ~src:(sr, sa) ~tgt:(tr, ta))
          else None)
        src_positions)
    tgt_positions
  |> List.sort_uniq Correspondence.compare
