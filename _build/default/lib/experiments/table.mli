(** Plain-text tables for the experiment reports. *)

type t = {
  id : string;  (** experiment id, e.g. "E3" *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;  (** free-form lines printed under the table *)
}

val make :
  id : string ->
  title : string ->
  header : string list ->
  ?notes : string list ->
  string list list ->
  t

val pp : Format.formatter -> t -> unit
(** Renders with aligned columns:
    {v
    == E1: title ==
    col1  col2
    ----  ----
    a     b
    v} *)

val to_string : t -> string

val to_markdown : t -> string
(** GitHub-flavoured markdown: a header line, a separator, one row per
    line; the notes follow as italic lines. *)

val to_csv : t -> string
(** Header and rows as CSV (fields quoted when needed); notes omitted. *)
