(** E4 — figure: selection quality as piUnexplained grows. *)

val run : unit -> Table.t
