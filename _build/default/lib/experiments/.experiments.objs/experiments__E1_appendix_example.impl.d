lib/experiments/e1_appendix_example.ml: Atom Core Frac Fun Instance List Logic Printf Relational String Table Term Tgd Tuple Util
