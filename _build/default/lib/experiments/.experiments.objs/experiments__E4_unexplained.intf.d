lib/experiments/e4_unexplained.mli: Table
