lib/experiments/noise_sweep.ml: Common E2_parameters Ibench List Metrics Printf Table Util
