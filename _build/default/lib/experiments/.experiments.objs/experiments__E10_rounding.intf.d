lib/experiments/e10_rounding.mli: Table
