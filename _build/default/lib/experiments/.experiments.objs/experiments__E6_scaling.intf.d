lib/experiments/e6_scaling.mli: Table
