lib/experiments/e14_weight_tuning.ml: Common Core Ibench List Metrics Printf String Table Util
