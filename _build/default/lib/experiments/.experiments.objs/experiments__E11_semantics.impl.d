lib/experiments/e11_semantics.ml: Array Common Core Cover E1_appendix_example E2_parameters Ibench List Metrics Relational Table Util
