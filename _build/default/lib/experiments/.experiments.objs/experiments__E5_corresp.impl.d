lib/experiments/e5_corresp.ml: Noise_sweep
