lib/experiments/e8_relaxation_gap.mli: Table
