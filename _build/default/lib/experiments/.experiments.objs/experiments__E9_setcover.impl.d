lib/experiments/e9_setcover.ml: Core Frac Fun List Printf Random String Table Util
