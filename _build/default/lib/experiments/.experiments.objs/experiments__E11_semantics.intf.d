lib/experiments/e11_semantics.mli: Table
