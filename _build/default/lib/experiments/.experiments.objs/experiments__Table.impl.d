lib/experiments/table.ml: Buffer Format List Option Printf String
