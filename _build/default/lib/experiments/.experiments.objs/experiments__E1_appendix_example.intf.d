lib/experiments/e1_appendix_example.mli: Logic Relational Table Util
