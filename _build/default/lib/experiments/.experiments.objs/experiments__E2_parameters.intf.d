lib/experiments/e2_parameters.mli: Table
