lib/experiments/noise_sweep.mli: Common Table
