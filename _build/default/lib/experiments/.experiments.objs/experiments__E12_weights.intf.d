lib/experiments/e12_weights.mli: Table
