lib/experiments/e6_scaling.ml: Common Core Ibench List Table Timer Util
