lib/experiments/e7_per_primitive.mli: Table
