lib/experiments/e2_parameters.ml: Ibench List Printf String Table
