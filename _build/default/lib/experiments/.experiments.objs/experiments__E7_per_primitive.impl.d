lib/experiments/e7_per_primitive.ml: Common E2_parameters Ibench List Metrics Table Util
