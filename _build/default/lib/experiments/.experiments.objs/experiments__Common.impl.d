lib/experiments/common.ml: Array Core Frac Ibench List Metrics Option Printf Stats Timer Util
