lib/experiments/e3_errors.mli: Table
