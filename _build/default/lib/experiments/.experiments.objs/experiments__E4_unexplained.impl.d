lib/experiments/e4_unexplained.ml: Noise_sweep
