lib/experiments/e14_weight_tuning.mli: Table
