lib/experiments/e3_errors.ml: Noise_sweep
