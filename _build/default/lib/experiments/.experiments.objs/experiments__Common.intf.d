lib/experiments/common.mli: Core Ibench Metrics Util
