lib/experiments/e12_weights.ml: Array Common Core Ibench List Metrics Printf Table Util
