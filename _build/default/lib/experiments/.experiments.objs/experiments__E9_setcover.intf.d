lib/experiments/e9_setcover.mli: Table
