lib/experiments/e10_rounding.ml: Common Core E2_parameters Frac Ibench List Metrics Stats Table Util
