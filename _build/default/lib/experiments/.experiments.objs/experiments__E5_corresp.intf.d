lib/experiments/e5_corresp.mli: Table
