lib/experiments/e13_full_fastpath.mli: Table
