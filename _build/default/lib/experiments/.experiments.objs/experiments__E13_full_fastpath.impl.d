lib/experiments/e13_full_fastpath.ml: Common Core Frac Ibench List Table Timer Util
