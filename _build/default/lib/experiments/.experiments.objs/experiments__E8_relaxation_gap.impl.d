lib/experiments/e8_relaxation_gap.ml: Common Core Frac Ibench List Printf Table Util
