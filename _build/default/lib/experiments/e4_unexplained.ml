let run () = Noise_sweep.run ~id:"E4" Noise_sweep.Unexplained
