(** E5 — figure: selection quality as piCorresp grows (spurious metadata). *)

val run : unit -> Table.t
