let run () = Noise_sweep.run ~id:"E3" Noise_sweep.Errors
