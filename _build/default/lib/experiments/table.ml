type t = {
  id : string;
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;
}

let make ~id ~title ~header ?(notes = []) rows = { id; title; header; rows; notes }

let pp ppf t =
  let all_rows = t.header :: t.rows in
  let n_cols =
    List.fold_left (fun acc r -> max acc (List.length r)) 0 all_rows
  in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all_rows
  in
  let widths = List.init n_cols width in
  let pp_row ppf row =
    List.iteri
      (fun c w ->
        let cell = Option.value ~default:"" (List.nth_opt row c) in
        if c > 0 then Format.pp_print_string ppf "  ";
        Format.fprintf ppf "%-*s" w cell)
      widths
  in
  Format.fprintf ppf "== %s: %s ==@." t.id t.title;
  Format.fprintf ppf "%a@." pp_row t.header;
  Format.fprintf ppf "%a@." pp_row (List.map (fun w -> String.make w '-') widths);
  List.iter (fun row -> Format.fprintf ppf "%a@." pp_row row) t.rows;
  List.iter (fun note -> Format.fprintf ppf "%s@." note) t.notes

let to_string t = Format.asprintf "%a" pp t

let to_markdown t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "### %s: %s\n\n" t.id t.title);
  let row cells = "| " ^ String.concat " | " cells ^ " |\n" in
  Buffer.add_string buf (row t.header);
  Buffer.add_string buf (row (List.map (fun _ -> "---") t.header));
  List.iter (fun r -> Buffer.add_string buf (row r)) t.rows;
  List.iter
    (fun note -> Buffer.add_string buf (Printf.sprintf "\n*%s*\n" note))
    t.notes;
  Buffer.contents buf

let csv_field s =
  if String.exists (function ',' | '"' | '\n' -> true | _ -> false) s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c -> if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_csv t =
  let line cells = String.concat "," (List.map csv_field cells) in
  String.concat "\n" (line t.header :: List.map line t.rows) ^ "\n"
