(** E3 — figure: selection quality as piErrors grows. *)

val run : unit -> Table.t
