(** Shared plumbing for the experiments: scenario → problem conversion,
    solver invocation and metric aggregation. *)

type solver =
  | Cmd_solver  (** the paper's approach *)
  | Greedy_solver  (** the non-collective baseline *)
  | All_candidates  (** select everything Clio proposed *)
  | Exact_solver  (** branch and bound (small problems only) *)

val solver_name : solver -> string

val problem_of_scenario : Ibench.Scenario.t -> Core.Problem.t
(** Chases the source instance per candidate and precomputes degrees. *)

type outcome = {
  selection : bool array;
  objective : Util.Frac.t;
  mapping : Metrics.scores;  (** selected tgds vs MG *)
  tuples : Metrics.scores;  (** data quality of the selection *)
  runtime_ms : float;
}

val run_solver :
  solver -> Ibench.Scenario.t -> Core.Problem.t -> outcome
(** Runs one solver; [runtime_ms] covers only the solve, not the
    precomputation. *)

val noise_config :
  ?rows : int ->
  ?primitives : (Ibench.Primitive.kind * int) list ->
  seed : int ->
  pi_corresp : int ->
  pi_errors : int ->
  pi_unexplained : int ->
  unit ->
  Ibench.Config.t
(** The standard experiment configuration: all seven primitives once, 8 rows
    per relation, unless overridden. *)

val fmt_f : float -> string
(** Two decimals. *)

val fmt_ms : float -> string
(** Milliseconds with one decimal. *)

val average : (int -> Metrics.scores) -> seeds : int list -> Metrics.scores
(** Component-wise mean over seeds. *)
