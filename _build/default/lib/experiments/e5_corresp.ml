let run () = Noise_sweep.run ~id:"E5" Noise_sweep.Corresp
