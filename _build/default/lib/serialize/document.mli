(** The textual scenario format.

    A document bundles everything a selection run needs: the two schemas,
    foreign keys, correspondences, candidate tgds and the data example. The
    format is line-oriented:

    {v
    # comment
    source relation proj(pname, emp, org)
    target relation task(pname, emp, oid)
    target fkey task.oid -> org.oid
    correspondence proj.pname ~> task.pname
    tgd theta1: proj(P, E, O) -> task(P, E, T)
    source tuple proj(BigData, Bob, IBM)
    target tuple task(ML, Alice, 111)
    v}

    In tgd atoms, identifiers starting with an uppercase letter or
    underscore are variables; everything else is a constant. Tuple values
    are always constants. *)

type t = {
  source : Relational.Schema.t;
  target : Relational.Schema.t;
  src_fkeys : Candgen.Fkey.t list;
  tgt_fkeys : Candgen.Fkey.t list;
  correspondences : Candgen.Correspondence.t list;
  tgds : Logic.Tgd.t list;
  instance_i : Relational.Instance.t;
  instance_j : Relational.Instance.t;
}

val empty : t

val pp : Format.formatter -> t -> unit
(** Renders a document in the textual format; [Parser.parse] inverts it. *)

val to_string : t -> string

val save : string -> t -> unit
(** Writes to a file. *)
