lib/serialize/document.ml: Candgen Format Fun Instance List Logic Relation Relational Schema Tgd Tuple
