lib/serialize/document.mli: Candgen Format Logic Relational
