lib/serialize/parser.ml: Atom Buffer Candgen Document Format Fun Instance List Logic Option Relation Relational Schema Str_split String Term Tgd Tuple
