lib/serialize/parser.mli: Document Format Logic
