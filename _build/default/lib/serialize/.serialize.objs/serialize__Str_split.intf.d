lib/serialize/str_split.mli:
