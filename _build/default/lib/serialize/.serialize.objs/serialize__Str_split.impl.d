lib/serialize/str_split.ml: List String
