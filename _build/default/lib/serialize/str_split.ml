let split_on_substring sep s =
  if sep = "" then invalid_arg "Str_split.split_on_substring: empty separator";
  let ls = String.length sep and n = String.length s in
  let rec loop start i acc =
    if i + ls > n then List.rev (String.trim (String.sub s start (n - start)) :: acc)
    else if String.equal (String.sub s i ls) sep then
      loop (i + ls) (i + ls) (String.trim (String.sub s start (i - start)) :: acc)
    else loop start (i + 1) acc
  in
  loop 0 0 []
