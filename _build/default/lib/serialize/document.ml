open Relational
open Logic

type t = {
  source : Schema.t;
  target : Schema.t;
  src_fkeys : Candgen.Fkey.t list;
  tgt_fkeys : Candgen.Fkey.t list;
  correspondences : Candgen.Correspondence.t list;
  tgds : Tgd.t list;
  instance_i : Instance.t;
  instance_j : Instance.t;
}

let empty =
  {
    source = Schema.empty;
    target = Schema.empty;
    src_fkeys = [];
    tgt_fkeys = [];
    correspondences = [];
    tgds = [];
    instance_i = Instance.empty;
    instance_j = Instance.empty;
  }

let pp_relation side ppf r =
  Format.fprintf ppf "%s relation %a@," side Relation.pp r

let pp_fkey side ppf (fk : Candgen.Fkey.t) =
  Format.fprintf ppf "%s fkey %s.%s -> %s.%s@," side fk.Candgen.Fkey.from_rel
    fk.Candgen.Fkey.from_attr fk.Candgen.Fkey.to_rel fk.Candgen.Fkey.to_attr

let pp_tuple side ppf tu = Format.fprintf ppf "%s tuple %a@," side Tuple.pp tu

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (pp_relation "source" ppf) (Schema.relations t.source);
  List.iter (pp_relation "target" ppf) (Schema.relations t.target);
  List.iter (pp_fkey "source" ppf) t.src_fkeys;
  List.iter (pp_fkey "target" ppf) t.tgt_fkeys;
  List.iter
    (fun c -> Format.fprintf ppf "correspondence %a@," Candgen.Correspondence.pp c)
    t.correspondences;
  List.iter (fun tgd -> Format.fprintf ppf "tgd %a@," Tgd.pp tgd) t.tgds;
  Instance.iter (fun tu -> pp_tuple "source" ppf tu) t.instance_i;
  Instance.iter (fun tu -> pp_tuple "target" ppf tu) t.instance_j;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t

let save path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))
