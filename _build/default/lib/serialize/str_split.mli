(** String splitting on multi-character separators (stdlib only splits on
    single characters). *)

val split_on_substring : string -> string -> string list
(** [split_on_substring sep s] splits [s] at every occurrence of [sep];
    pieces are trimmed. [sep] must be non-empty. *)
