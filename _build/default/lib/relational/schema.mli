(** A schema is a finite set of relation symbols with distinct names. *)

type t

val empty : t

val of_relations : Relation.t list -> t
(** Raises [Invalid_argument] on duplicate relation names. *)

val add : Relation.t -> t -> t
(** Adds a relation. Raises [Invalid_argument] if a relation with the same
    name but a different signature is already present; adding the identical
    relation twice is a no-op. *)

val find : t -> string -> Relation.t
(** Raises [Not_found]. *)

val find_opt : t -> string -> Relation.t option

val mem : t -> string -> bool

val relations : t -> Relation.t list
(** In ascending name order. *)

val names : t -> string list

val size : t -> int

val union : t -> t -> t
(** Raises [Invalid_argument] on conflicting signatures. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
