(** Tuples: a relation name together with a value per column. *)

type t = {
  rel : string;  (** name of the relation this tuple belongs to *)
  values : Value.t array;
}

val make : string -> Value.t list -> t

val of_consts : string -> string list -> t
(** Convenience: all values are constants. *)

val arity : t -> int

val compare : t -> t -> int

val equal : t -> t -> bool

val is_ground : t -> bool
(** [true] iff the tuple contains no labeled nulls. *)

val nulls : t -> Value.Set.t
(** The set of labeled nulls occurring in the tuple. *)

val map_values : (Value.t -> Value.t) -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints as [rel(v1, v2, ...)]. *)

val to_string : t -> string

module Set : Set.S with type elt = t

module Map : Map.S with type key = t
