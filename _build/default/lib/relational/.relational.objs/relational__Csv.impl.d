lib/relational/csv.ml: Array Buffer Instance List Printf Result String Tuple Value
