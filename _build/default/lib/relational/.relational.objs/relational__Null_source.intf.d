lib/relational/null_source.mli: Value
