lib/relational/value.ml: Format Int Map Printf Set String
