lib/relational/csv.mli: Instance Tuple
