lib/relational/schema.mli: Format Relation
