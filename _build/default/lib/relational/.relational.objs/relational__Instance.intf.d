lib/relational/instance.mli: Format Tuple Value
