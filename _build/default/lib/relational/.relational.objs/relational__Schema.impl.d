lib/relational/schema.ml: Format List Map Printf Relation String
