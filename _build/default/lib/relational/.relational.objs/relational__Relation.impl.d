lib/relational/relation.ml: Array Format List Printf Stdlib String
