lib/relational/relation.mli: Format
