lib/relational/null_source.ml: Value
