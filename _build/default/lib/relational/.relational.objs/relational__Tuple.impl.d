lib/relational/tuple.ml: Array Format Int List Map Set String Value
