lib/relational/instance.ml: Array Format List Map String Tuple Value
