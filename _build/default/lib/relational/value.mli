(** Values appearing in database instances.

    A value is either a constant (an uninterpreted string, as in the data
    exchange literature) or a labeled null, identified by an integer label.
    Labeled nulls are invented by the chase for existentially quantified
    variables; constants only ever denote themselves. *)

type t =
  | Const of string  (** an ordinary data value *)
  | Null of int  (** a labeled null, e.g. [Null 3] prints as [_N3] *)

val compare : t -> t -> int
(** Total order: all constants (lexicographically) before all nulls (by
    label). *)

val equal : t -> t -> bool

val is_null : t -> bool

val is_const : t -> bool

val pp : Format.formatter -> t -> unit
(** Prints a constant verbatim and a null as [_N<label>]. *)

val to_string : t -> string

module Set : Set.S with type elt = t

module Map : Map.S with type key = t
