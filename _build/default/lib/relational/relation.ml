type t = {
  name : string;
  attrs : string array;
}

let make name attrs =
  if attrs = [] then invalid_arg "Relation.make: empty attribute list";
  let sorted = List.sort_uniq String.compare attrs in
  if List.length sorted <> List.length attrs then
    invalid_arg (Printf.sprintf "Relation.make: duplicate attribute in %s" name);
  { name; attrs = Array.of_list attrs }

let arity r = Array.length r.attrs

let attr_index r a =
  let rec loop i =
    if i >= Array.length r.attrs then raise Not_found
    else if String.equal r.attrs.(i) a then i
    else loop (i + 1)
  in
  loop 0

let has_attr r a = match attr_index r a with _ -> true | exception Not_found -> false

let equal a b = String.equal a.name b.name && a.attrs = b.attrs

let compare a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c else Stdlib.compare a.attrs b.attrs

let pp ppf r =
  Format.fprintf ppf "%s(%a)" r.name
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_string)
    (Array.to_list r.attrs)
