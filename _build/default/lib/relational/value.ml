type t =
  | Const of string
  | Null of int

let compare a b =
  match a, b with
  | Const x, Const y -> String.compare x y
  | Null x, Null y -> Int.compare x y
  | Const _, Null _ -> -1
  | Null _, Const _ -> 1

let equal a b = compare a b = 0

let is_null = function Null _ -> true | Const _ -> false

let is_const = function Const _ -> true | Null _ -> false

let pp ppf = function
  | Const s -> Format.pp_print_string ppf s
  | Null n -> Format.fprintf ppf "_N%d" n

let to_string = function
  | Const s -> s
  | Null n -> Printf.sprintf "_N%d" n

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
