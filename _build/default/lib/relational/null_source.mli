(** A supply of fresh labeled nulls.

    The chase invents one null per existential variable per trigger; a
    [Null_source.t] hands out globally fresh labels. Mutable by design — a
    single source is threaded through one chase run. *)

type t

val create : ?first : int -> unit -> t
(** A source whose first null is [Null first] (default 0). *)

val fresh : t -> Value.t
(** The next unused labeled null. *)

val fresh_label : t -> int

val count : t -> int
(** How many nulls have been handed out. *)
