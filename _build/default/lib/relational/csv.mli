(** Minimal CSV import/export for instances.

    Supports the common subset: comma separators, [""]-quoted fields with
    doubled inner quotes, one record per line. Intended for loading small
    data examples, not for streaming large files. *)

val parse_line : string -> (string list, string) result
(** One CSV record. *)

val load_relation : rel : string -> ?arity : int -> string -> (Tuple.t list, string) result
(** [load_relation ~rel text] parses one tuple per non-empty line. All rows
    must have the same width (and match [arity] when given); errors carry
    the offending line number. *)

val load :
  (string * string) list -> (Instance.t, string) result
(** [load [(rel, csv); ...]] builds an instance from several relations. *)

val to_csv : Instance.t -> string -> string
(** [to_csv inst rel]: the tuples of one relation as CSV (nulls print as
    [_N<label>]). *)
