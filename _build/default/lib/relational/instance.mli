(** Database instances: finite sets of tuples, indexed by relation name.

    Instances are persistent (purely functional); all operations return new
    instances. Tuples of a relation are kept in a set, so an instance is
    duplicate-free by construction. *)

type t

val empty : t

val add : Tuple.t -> t -> t

val add_all : Tuple.t list -> t -> t

val of_tuples : Tuple.t list -> t

val remove : Tuple.t -> t -> t

val mem : Tuple.t -> t -> bool

val tuples_of : t -> string -> Tuple.Set.t
(** All tuples of the given relation ([Tuple.Set.empty] if none). *)

val tuples : t -> Tuple.t list
(** All tuples, ordered by relation name then tuple order. *)

val relations : t -> string list
(** Names of relations with at least one tuple, ascending. *)

val cardinal : t -> int

val is_empty : t -> bool

val union : t -> t -> t

val diff : t -> t -> t

val inter : t -> t -> t

val filter : (Tuple.t -> bool) -> t -> t

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a

val iter : (Tuple.t -> unit) -> t -> unit

val subset : t -> t -> bool
(** [subset a b] is [true] iff every tuple of [a] is in [b]. *)

val equal : t -> t -> bool

val map_values : (Value.t -> Value.t) -> t -> t
(** Applies a value transformation to every tuple (e.g. a homomorphism). *)

val constants : t -> Value.Set.t
(** All constants occurring in the instance. *)

val null_labels : t -> Value.Set.t
(** All labeled nulls occurring in the instance. *)

val is_ground : t -> bool

val pp : Format.formatter -> t -> unit
(** One tuple per line, sorted. *)
