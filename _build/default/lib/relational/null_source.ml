type t = {
  mutable next : int;
  first : int;
}

let create ?(first = 0) () = { next = first; first }

let fresh_label t =
  let l = t.next in
  t.next <- t.next + 1;
  l

let fresh t = Value.Null (fresh_label t)

let count t = t.next - t.first
