module Smap = Map.Make (String)

type t = Relation.t Smap.t

let empty = Smap.empty

let add r s =
  match Smap.find_opt r.Relation.name s with
  | None -> Smap.add r.Relation.name r s
  | Some r' ->
    if Relation.equal r r' then s
    else
      invalid_arg
        (Printf.sprintf "Schema.add: conflicting signatures for relation %s"
           r.Relation.name)

let of_relations rels =
  List.fold_left
    (fun s r ->
      if Smap.mem r.Relation.name s then
        invalid_arg
          (Printf.sprintf "Schema.of_relations: duplicate relation %s"
             r.Relation.name)
      else add r s)
    empty rels

let find s name = Smap.find name s

let find_opt s name = Smap.find_opt name s

let mem s name = Smap.mem name s

let relations s = Smap.bindings s |> List.map snd

let names s = Smap.bindings s |> List.map fst

let size s = Smap.cardinal s

let union a b = Smap.fold (fun _ r acc -> add r acc) b a

let equal a b = Smap.equal Relation.equal a b

let pp ppf s =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
    Relation.pp ppf (relations s)
