type t = {
  rel : string;
  values : Value.t array;
}

let make rel values = { rel; values = Array.of_list values }

let of_consts rel cs = { rel; values = Array.of_list (List.map (fun c -> Value.Const c) cs) }

let arity t = Array.length t.values

let compare a b =
  let c = String.compare a.rel b.rel in
  if c <> 0 then c
  else
    let la = Array.length a.values and lb = Array.length b.values in
    let c = Int.compare la lb in
    if c <> 0 then c
    else
      let rec loop i =
        if i >= la then 0
        else
          let c = Value.compare a.values.(i) b.values.(i) in
          if c <> 0 then c else loop (i + 1)
      in
      loop 0

let equal a b = compare a b = 0

let is_ground t = Array.for_all Value.is_const t.values

let nulls t =
  Array.fold_left
    (fun acc v -> if Value.is_null v then Value.Set.add v acc else acc)
    Value.Set.empty t.values

let map_values f t = { t with values = Array.map f t.values }

let pp ppf t =
  Format.fprintf ppf "%s(%a)" t.rel
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Value.pp)
    (Array.to_list t.values)

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
