(** Relation symbols: a name together with named attributes. *)

type t = {
  name : string;  (** relation name, unique within a schema *)
  attrs : string array;  (** attribute names, in column order *)
}

val make : string -> string list -> t
(** [make name attrs] builds a relation symbol. Raises [Invalid_argument] if
    [attrs] is empty or contains duplicates. *)

val arity : t -> int

val attr_index : t -> string -> int
(** Position of an attribute. Raises [Not_found] if absent. *)

val has_attr : t -> string -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [name(attr1, attr2, ...)]. *)
