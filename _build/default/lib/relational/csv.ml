let parse_line line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let push () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  (* states: outside quotes / inside quotes *)
  let rec outside i =
    if i >= n then Ok (push ())
    else
      match line.[i] with
      | ',' ->
        push ();
        outside (i + 1)
      | '"' ->
        if Buffer.length buf = 0 then inside (i + 1)
        else Error (Printf.sprintf "unexpected quote at column %d" (i + 1))
      | c ->
        Buffer.add_char buf c;
        outside (i + 1)
  and inside i =
    if i >= n then Error "unterminated quoted field"
    else
      match line.[i] with
      | '"' ->
        if i + 1 < n && line.[i + 1] = '"' then begin
          Buffer.add_char buf '"';
          inside (i + 2)
        end
        else after_quote (i + 1)
      | c ->
        Buffer.add_char buf c;
        inside (i + 1)
  and after_quote i =
    if i >= n then Ok (push ())
    else
      match line.[i] with
      | ',' ->
        push ();
        outside (i + 1)
      | c -> Error (Printf.sprintf "unexpected %c after closing quote" c)
  in
  Result.map (fun () -> List.rev !fields) (outside 0)

let load_relation ~rel ?arity text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  let rec loop acc width = function
    | [] -> Ok (List.rev acc)
    | (ln, line) :: rest -> (
      match parse_line line with
      | Error msg -> Error (Printf.sprintf "line %d: %s" ln msg)
      | Ok fields -> (
        let w = List.length fields in
        match width with
        | Some expected when expected <> w ->
          Error
            (Printf.sprintf "line %d: %d fields where %d were expected" ln w
               expected)
        | Some _ | None ->
          loop (Tuple.of_consts rel fields :: acc) (Some w) rest))
  in
  loop [] arity lines

let load rels =
  List.fold_left
    (fun acc (rel, text) ->
      Result.bind acc (fun inst ->
          Result.map
            (fun tuples -> Instance.add_all tuples inst)
            (Result.map_error
               (fun msg -> rel ^ ": " ^ msg)
               (load_relation ~rel text))))
    (Ok Instance.empty) rels

let escape field =
  let needs_quoting =
    String.exists (function ',' | '"' | '\n' -> true | _ -> false) field
  in
  if not needs_quoting then field
  else begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv inst rel =
  Tuple.Set.fold
    (fun tu acc ->
      let line =
        Array.to_list tu.Tuple.values
        |> List.map (fun v -> escape (Value.to_string v))
        |> String.concat ","
      in
      line :: acc)
    (Instance.tuples_of inst rel)
    []
  |> List.rev |> String.concat "\n"
