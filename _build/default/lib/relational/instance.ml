module Smap = Map.Make (String)

type t = Tuple.Set.t Smap.t

let empty = Smap.empty

let add tu inst =
  let set =
    match Smap.find_opt tu.Tuple.rel inst with
    | None -> Tuple.Set.singleton tu
    | Some s -> Tuple.Set.add tu s
  in
  Smap.add tu.Tuple.rel set inst

let add_all tus inst = List.fold_left (fun acc tu -> add tu acc) inst tus

let of_tuples tus = add_all tus empty

let remove tu inst =
  match Smap.find_opt tu.Tuple.rel inst with
  | None -> inst
  | Some s ->
    let s = Tuple.Set.remove tu s in
    if Tuple.Set.is_empty s then Smap.remove tu.Tuple.rel inst
    else Smap.add tu.Tuple.rel s inst

let mem tu inst =
  match Smap.find_opt tu.Tuple.rel inst with
  | None -> false
  | Some s -> Tuple.Set.mem tu s

let tuples_of inst rel =
  match Smap.find_opt rel inst with None -> Tuple.Set.empty | Some s -> s

let tuples inst =
  Smap.fold (fun _ s acc -> Tuple.Set.elements s @ acc) inst [] |> List.rev

let relations inst = Smap.bindings inst |> List.map fst

let cardinal inst = Smap.fold (fun _ s n -> n + Tuple.Set.cardinal s) inst 0

let is_empty inst = Smap.is_empty inst

let union a b = Smap.union (fun _ sa sb -> Some (Tuple.Set.union sa sb)) a b

let merge_nonempty rel s inst =
  if Tuple.Set.is_empty s then inst else Smap.add rel s inst

let diff a b =
  Smap.fold
    (fun rel sa acc ->
      match Smap.find_opt rel b with
      | None -> Smap.add rel sa acc
      | Some sb -> merge_nonempty rel (Tuple.Set.diff sa sb) acc)
    a empty

let inter a b =
  Smap.fold
    (fun rel sa acc ->
      match Smap.find_opt rel b with
      | None -> acc
      | Some sb -> merge_nonempty rel (Tuple.Set.inter sa sb) acc)
    a empty

let filter p inst =
  Smap.fold
    (fun rel s acc -> merge_nonempty rel (Tuple.Set.filter p s) acc)
    inst empty

let fold f inst init =
  Smap.fold (fun _ s acc -> Tuple.Set.fold f s acc) inst init

let iter f inst = Smap.iter (fun _ s -> Tuple.Set.iter f s) inst

let subset a b =
  Smap.for_all
    (fun rel sa ->
      match Smap.find_opt rel b with
      | None -> Tuple.Set.is_empty sa
      | Some sb -> Tuple.Set.subset sa sb)
    a

let equal a b = subset a b && subset b a

let map_values f inst = fold (fun tu acc -> add (Tuple.map_values f tu) acc) inst empty

let values_matching p inst =
  fold
    (fun tu acc ->
      Array.fold_left
        (fun acc v -> if p v then Value.Set.add v acc else acc)
        acc tu.Tuple.values)
    inst Value.Set.empty

let constants inst = values_matching Value.is_const inst

let null_labels inst = values_matching Value.is_null inst

let is_ground inst = fold (fun tu acc -> acc && Tuple.is_ground tu) inst true

let pp ppf inst =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
       Tuple.pp)
    (tuples inst)
