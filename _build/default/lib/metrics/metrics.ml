open Util

type scores = {
  precision : float;
  recall : float;
  f1 : float;
}

let make precision recall =
  { precision; recall; f1 = Stats.harmonic precision recall }

let tuple_level (p : Core.Problem.t) sel =
  let best = Core.Objective.best_coverage p sel in
  let covered = Array.fold_left Frac.add Frac.zero best in
  let n_tuples = Array.length p.Core.Problem.tuples in
  let recall =
    if n_tuples = 0 then 1.
    else Frac.to_float covered /. float_of_int n_tuples
  in
  let produced = ref 0 and errors = ref 0 in
  Array.iteri
    (fun c selected ->
      if selected then begin
        produced := !produced + p.Core.Problem.stats.(c).Cover.produced;
        errors := !errors + Cover.error_count p.Core.Problem.stats.(c)
      end)
    sel;
  let precision =
    if !produced = 0 then 1.
    else float_of_int (!produced - !errors) /. float_of_int !produced
  in
  make precision recall

let mapping_level ~candidates ~truth sel =
  let selected =
    List.filteri (fun i _ -> sel.(i)) candidates
  in
  let tp =
    List.length
      (List.filter
         (fun c -> List.exists (Logic.Tgd.equal_up_to_renaming c) truth)
         selected)
  in
  let precision =
    match selected with
    | [] -> 1.
    | _ :: _ -> float_of_int tp /. float_of_int (List.length selected)
  in
  let recall =
    match truth with
    | [] -> 1.
    | _ :: _ -> float_of_int tp /. float_of_int (List.length truth)
  in
  make precision recall

let pp ppf s =
  Format.fprintf ppf "P=%.2f R=%.2f F1=%.2f" s.precision s.recall s.f1
