(** Evaluation metrics for mapping selection.

    Two granularities, following the paper's evaluation:

    - {e tuple-level}: how well the selected mapping reproduces the target
      data. Recall is the average degree to which the tuples of [J] are
      explained; precision is the share of produced tuples that are not
      errors (1 when nothing is produced).
    - {e mapping-level}: the selected tgds against the ground truth MG, with
      equality up to variable renaming; precision is 1 on an empty
      selection by convention. *)

type scores = {
  precision : float;
  recall : float;
  f1 : float;  (** harmonic mean; 0 when either side is 0 *)
}

val tuple_level : Core.Problem.t -> bool array -> scores

val mapping_level :
  candidates : Logic.Tgd.t list ->
  truth : Logic.Tgd.t list ->
  bool array ->
  scores

val pp : Format.formatter -> scores -> unit
(** Prints as [P=0.92 R=0.88 F1=0.90]. *)
