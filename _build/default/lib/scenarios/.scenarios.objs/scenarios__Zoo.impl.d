lib/scenarios/zoo.ml: Atom Candgen Chase Hashtbl Instance List Logic Printf Relation Relational Schema Serialize String Term Tgd Tuple Value
