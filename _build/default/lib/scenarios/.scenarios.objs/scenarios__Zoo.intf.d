lib/scenarios/zoo.mli: Logic Relational Serialize
