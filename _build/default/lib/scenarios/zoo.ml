open Relational
open Logic

type entry = {
  name : string;
  description : string;
  doc : Serialize.Document.t;
  ground_truth : Tgd.t list;
}

let v x = Term.Var x

let ground_chase source mapping =
  let { Chase.triggers; _ } = Chase.run source mapping in
  let skolem = ref 0 in
  List.fold_left
    (fun acc (tr : Chase.Trigger.t) ->
      let mapping = Hashtbl.create 4 in
      List.fold_left
        (fun acc tu ->
          let grounded =
            Tuple.map_values
              (fun value ->
                match value with
                | Value.Const _ -> value
                | Value.Null n -> (
                  match Hashtbl.find_opt mapping n with
                  | Some c -> c
                  | None ->
                    let c = Value.Const (Printf.sprintf "sk%d" !skolem) in
                    incr skolem;
                    Hashtbl.add mapping n c;
                    c))
              tu
          in
          Instance.add grounded acc)
        acc tr.Chase.Trigger.tuples)
    Instance.empty triggers

(* Candidates are generated Clio-style from the entry's own metadata, which
   keeps every entry's candidate set faithful to what the paper's pipeline
   would see. *)
let generate_candidates ~source ~target ~src_fkeys ~tgt_fkeys ~corrs =
  Candgen.Generate.generate ~source ~target ~src_fkeys ~tgt_fkeys ~corrs

(* --- 1. the paper's running example ------------------------------------ *)

(* Reconstruction of Figure 1 of the main paper: the appendix uses the
   reduced variant without the leader relation; here we include it, with
   candidates generated from the correspondences. *)
let appendix =
  let source =
    Schema.of_relations [ Relation.make "proj" [ "pname"; "emp"; "org" ] ]
  in
  let target =
    Schema.of_relations
      [
        Relation.make "task" [ "pname"; "emp"; "oid" ];
        Relation.make "org" [ "oid"; "oname" ];
        Relation.make "leader" [ "oid"; "emp" ];
      ]
  in
  let tgt_fkeys =
    [
      Candgen.Fkey.make ~from:("task", "oid") ~to_:("org", "oid");
      Candgen.Fkey.make ~from:("leader", "oid") ~to_:("org", "oid");
    ]
  in
  let corrs =
    [
      Candgen.Correspondence.make ~src:("proj", "pname") ~tgt:("task", "pname");
      Candgen.Correspondence.make ~src:("proj", "emp") ~tgt:("task", "emp");
      Candgen.Correspondence.make ~src:("proj", "org") ~tgt:("org", "oname");
      Candgen.Correspondence.make ~src:("proj", "emp") ~tgt:("leader", "emp");
    ]
  in
  let ground_truth =
    [
      Tgd.make ~label:"mg_appendix"
        ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
        ~head:
          [
            Atom.make "task" [ v "P"; v "E"; v "T" ];
            Atom.make "org" [ v "T"; v "O" ];
          ]
        ()
    ]
  in
  let instance_i =
    Instance.of_tuples
      [
        Tuple.of_consts "proj" [ "BigData"; "Bob"; "IBM" ];
        Tuple.of_consts "proj" [ "ML"; "Alice"; "SAP" ];
      ]
  in
  let instance_j =
    (* Figure 1(c), reconstructed: the curated target the appendix reasons
       about, including the leader tuple the appendix omits. *)
    Instance.of_tuples
      [
        Tuple.of_consts "task" [ "ML"; "Alice"; "111" ];
        Tuple.of_consts "org" [ "111"; "SAP" ];
        Tuple.of_consts "leader" [ "111"; "Alice" ];
        Tuple.of_consts "task" [ "Social"; "Carl"; "222" ];
        Tuple.of_consts "org" [ "222"; "MSR" ];
      ]
  in
  {
    name = "appendix";
    description =
      "the paper's running example (Figure 1, reconstructed), leader \
       relation included";
    doc =
      {
        Serialize.Document.source = source;
        target;
        src_fkeys = [];
        tgt_fkeys;
        correspondences = corrs;
        tgds = generate_candidates ~source ~target ~src_fkeys:[] ~tgt_fkeys ~corrs;
        instance_i;
        instance_j;
      };
    ground_truth;
  }

(* --- 2. bibliography ---------------------------------------------------- *)

let bibliography =
  let source =
    Schema.of_relations
      [
        Relation.make "inproceedings" [ "key"; "title"; "booktitle"; "year"; "author" ];
        Relation.make "articles" [ "key"; "title"; "journal"; "year"; "author" ];
      ]
  in
  let target =
    Schema.of_relations
      [
        Relation.make "publication" [ "pid"; "title"; "year" ];
        Relation.make "person" [ "author" ];
        Relation.make "authored" [ "pid"; "author" ];
      ]
  in
  let tgt_fkeys =
    [
      Candgen.Fkey.make ~from:("authored", "pid") ~to_:("publication", "pid");
      Candgen.Fkey.make ~from:("authored", "author") ~to_:("person", "author");
    ]
  in
  let mg_of src =
    Tgd.make ~label:("mg_" ^ src)
      ~body:[ Atom.make src [ v "K"; v "T"; v "V"; v "Y"; v "A" ] ]
      ~head:
        [
          Atom.make "publication" [ v "P"; v "T"; v "Y" ];
          Atom.make "person" [ v "A" ];
          Atom.make "authored" [ v "P"; v "A" ];
        ]
      ()
  in
  let ground_truth = [ mg_of "inproceedings"; mg_of "articles" ] in
  let corrs =
    List.concat_map
      (Candgen.Generate.correspondences_of_tgd ~source ~target)
      ground_truth
  in
  let instance_i =
    Instance.of_tuples
      [
        Tuple.of_consts "inproceedings"
          [ "kim17"; "Collective_Schema_Mapping"; "ICDE"; "2017"; "Kimmig" ];
        Tuple.of_consts "inproceedings"
          [ "mil98"; "Schema_Equivalence"; "VLDB"; "1998"; "Miller" ];
        Tuple.of_consts "inproceedings"
          [ "pop02"; "Translating_Web_Data"; "VLDB"; "2002"; "Popa" ];
        Tuple.of_consts "articles"
          [ "fag05"; "Data_Exchange_Semantics"; "TODS"; "2005"; "Fagin" ];
        Tuple.of_consts "articles"
          [ "get07"; "Statistical_Relational_Learning"; "MLJ"; "2007"; "Getoor" ];
      ]
  in
  let instance_j = ground_chase instance_i ground_truth in
  {
    name = "bibliography";
    description = "DBLP-style publications normalised into pubs/people/authorship";
    doc =
      {
        Serialize.Document.source = source;
        target;
        src_fkeys = [];
        tgt_fkeys;
        correspondences = corrs;
        tgds =
          generate_candidates ~source ~target ~src_fkeys:[] ~tgt_fkeys ~corrs;
        instance_i;
        instance_j;
      };
    ground_truth;
  }

(* --- 3. HR --------------------------------------------------------------- *)

let hr =
  let source =
    Schema.of_relations
      [
        Relation.make "emp" [ "eid"; "ename"; "dept"; "salary" ];
        Relation.make "dept" [ "did"; "dname"; "mgr" ];
      ]
  in
  let target =
    Schema.of_relations
      [
        Relation.make "staff" [ "sid"; "sname"; "pay" ];
        Relation.make "unit" [ "uid"; "uname" ];
        Relation.make "member_of" [ "sid"; "uid" ];
      ]
  in
  let src_fkeys = [ Candgen.Fkey.make ~from:("emp", "dept") ~to_:("dept", "did") ] in
  let tgt_fkeys =
    [
      Candgen.Fkey.make ~from:("member_of", "sid") ~to_:("staff", "sid");
      Candgen.Fkey.make ~from:("member_of", "uid") ~to_:("unit", "uid");
    ]
  in
  let ground_truth =
    [
      (* the emp ⋈ dept association maps onto the staff/unit/membership
         association; employee and unit ids are invented *)
      Tgd.make ~label:"mg_hr"
        ~body:
          [
            Atom.make "emp" [ v "E"; v "N"; v "D"; v "S" ];
            Atom.make "dept" [ v "D"; v "DN"; v "M" ];
          ]
        ~head:
          [
            Atom.make "staff" [ v "SID"; v "N"; v "S" ];
            Atom.make "unit" [ v "UID"; v "DN" ];
            Atom.make "member_of" [ v "SID"; v "UID" ];
          ]
        ();
    ]
  in
  let corrs =
    List.concat_map
      (Candgen.Generate.correspondences_of_tgd ~source ~target)
      ground_truth
  in
  let instance_i =
    Instance.of_tuples
      [
        Tuple.of_consts "dept" [ "d1"; "Sales"; "e3" ];
        Tuple.of_consts "dept" [ "d2"; "Engineering"; "e4" ];
        Tuple.of_consts "emp" [ "e1"; "Ann"; "d1"; "55k" ];
        Tuple.of_consts "emp" [ "e2"; "Bob"; "d2"; "65k" ];
        Tuple.of_consts "emp" [ "e3"; "Carla"; "d1"; "75k" ];
        Tuple.of_consts "emp" [ "e4"; "Dan"; "d2"; "80k" ];
      ]
  in
  let instance_j = ground_chase instance_i ground_truth in
  {
    name = "hr";
    description = "employees joined with departments, split into staff/unit/membership";
    doc =
      {
        Serialize.Document.source = source;
        target;
        src_fkeys;
        tgt_fkeys;
        correspondences = corrs;
        tgds = generate_candidates ~source ~target ~src_fkeys ~tgt_fkeys ~corrs;
        instance_i;
        instance_j;
      };
    ground_truth;
  }

(* --- 4. flights ----------------------------------------------------------- *)

let flights =
  let source =
    Schema.of_relations
      [
        Relation.make "flight" [ "fno"; "origin"; "dest"; "carrier" ];
        Relation.make "airline" [ "code"; "airline_name" ];
      ]
  in
  let target =
    Schema.of_relations
      [
        Relation.make "route" [ "rid"; "origin"; "dest" ];
        Relation.make "operates" [ "rid"; "airline_name" ];
      ]
  in
  let src_fkeys =
    [ Candgen.Fkey.make ~from:("flight", "carrier") ~to_:("airline", "code") ]
  in
  let tgt_fkeys =
    [ Candgen.Fkey.make ~from:("operates", "rid") ~to_:("route", "rid") ]
  in
  let ground_truth =
    [
      Tgd.make ~label:"mg_flights"
        ~body:
          [
            Atom.make "flight" [ v "F"; v "O"; v "D"; v "C" ];
            Atom.make "airline" [ v "C"; v "AN" ];
          ]
        ~head:
          [
            Atom.make "route" [ v "R"; v "O"; v "D" ];
            Atom.make "operates" [ v "R"; v "AN" ];
          ]
        ();
    ]
  in
  let corrs =
    List.concat_map
      (Candgen.Generate.correspondences_of_tgd ~source ~target)
      ground_truth
  in
  let instance_i =
    Instance.of_tuples
      [
        Tuple.of_consts "airline" [ "LH"; "Lufthansa" ];
        Tuple.of_consts "airline" [ "AC"; "Air_Canada" ];
        Tuple.of_consts "flight" [ "LH456"; "FRA"; "YYZ"; "LH" ];
        Tuple.of_consts "flight" [ "AC873"; "YYZ"; "FRA"; "AC" ];
        Tuple.of_consts "flight" [ "LH100"; "FRA"; "SFO"; "LH" ];
      ]
  in
  let instance_j = ground_chase instance_i ground_truth in
  {
    name = "flights";
    description = "flights with airline lookup, restructured into routes/operators";
    doc =
      {
        Serialize.Document.source = source;
        target;
        src_fkeys;
        tgt_fkeys;
        correspondences = corrs;
        tgds = generate_candidates ~source ~target ~src_fkeys ~tgt_fkeys ~corrs;
        instance_i;
        instance_j;
      };
    ground_truth;
  }

let all = [ appendix; bibliography; hr; flights ]

let find name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun e -> String.equal e.name name) all

let names () = List.map (fun e -> e.name) all
