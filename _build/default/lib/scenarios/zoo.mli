(** A zoo of hand-crafted mapping-selection scenarios.

    Each entry is a complete scenario document (schemas, foreign keys,
    correspondences, candidate tgds and a data example) together with its
    ground-truth mapping. They complement the iBench generator with
    realistic, human-readable cases: the paper's running example, and three
    classic integration settings (bibliography, HR, flights).

    Target instances are the grounded chase of the source under the ground
    truth (plus scenario-specific extra tuples), so every entry is a
    consistent data example by construction. *)

type entry = {
  name : string;
  description : string;
  doc : Serialize.Document.t;
      (** [doc.tgds] is the candidate set; MG is a subset up to renaming *)
  ground_truth : Logic.Tgd.t list;
}

val all : entry list
(** In a stable order: appendix, bibliography, hr, flights. *)

val find : string -> entry option
(** Case-insensitive lookup by name. *)

val names : unit -> string list

val ground_chase :
  Relational.Instance.t -> Logic.Tgd.t list -> Relational.Instance.t
(** The chase of the source under a mapping with labeled nulls replaced by
    fresh constants ([skN]), consistently within each trigger — how the
    entries build their target instances. Exposed for tests and for building
    new entries. *)
