(** Certain answers over instances with labeled nulls.

    After data exchange, the target instance is a {e naive table}: labeled
    nulls stand for unknown values. The certain answers of a conjunctive
    query are the tuples returned in {e every} possible completion of the
    table — computed, for unions of conjunctive queries, by naive
    evaluation followed by discarding answers that bind an output variable
    to a null (Imielinski–Lipski). *)

val answers :
  Relational.Instance.t -> Logic.Atom.t list -> Logic.Subst.t list
(** All answers of the naive evaluation whose bindings are null-free. *)

val answer_tuples :
  Relational.Instance.t ->
  Logic.Atom.t list ->
  head : Logic.Atom.t ->
  Relational.Tuple.t list
(** [answer_tuples inst q ~head] projects the naive answers through a head
    atom and keeps the ground ones — the certain answers of the projection.
    Unlike {!answers}, variables projected away may be bound to nulls (a
    null joins with itself in every completion). Raises [Invalid_argument]
    if the head uses a variable not bound by the query. *)

val is_certain : Relational.Instance.t -> Logic.Atom.t list -> bool
(** Boolean query: [true] iff the query holds in every completion — for
    conjunctive queries, iff naive evaluation finds at least one answer
    (output-free, so null bindings are fine). *)
