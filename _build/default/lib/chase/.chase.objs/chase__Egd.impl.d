lib/chase/egd.ml: Array Atom Cq Format Instance List Logic Printf Relation Relational Schema String_set Subst Term Value
