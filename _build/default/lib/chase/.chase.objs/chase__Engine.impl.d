lib/chase/engine.ml: Cq Format Instance List Logic Null_source Relational String_set Subst Tgd Tuple Value
