lib/chase/egd.mli: Format Logic Relational
