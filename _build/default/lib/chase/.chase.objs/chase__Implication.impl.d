lib/chase/implication.ml: Array Atom Cq Engine Instance List Logic Relational String_set Subst Term Tgd Tuple Value
