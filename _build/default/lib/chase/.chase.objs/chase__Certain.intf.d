lib/chase/certain.mli: Logic Relational
