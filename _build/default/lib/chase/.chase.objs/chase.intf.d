lib/chase/chase.mli: Certain Egd Format Implication Logic Relational
