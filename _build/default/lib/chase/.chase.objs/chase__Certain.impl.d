lib/chase/certain.ml: Cq List Logic Relational Subst Tuple Value
