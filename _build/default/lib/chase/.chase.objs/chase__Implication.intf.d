lib/chase/implication.mli: Logic
