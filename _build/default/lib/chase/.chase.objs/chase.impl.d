lib/chase/chase.ml: Certain Egd Engine Implication
