open Relational
open Logic

let null_free subst =
  List.for_all (fun (_, v) -> Value.is_const v) (Subst.bindings subst)

let answers inst q = List.filter null_free (Cq.answers inst q)

let answer_tuples inst q ~head =
  let project subst =
    match Subst.apply_atom subst head with
    | Some t -> t
    | None -> invalid_arg "Certain.answer_tuples: head variable not bound by the query"
  in
  (* Joining through a null is legitimate naive evaluation (a null equals
     itself); only the projected output must be null-free to be certain. *)
  Cq.answers inst q |> List.map project
  |> List.filter Tuple.is_ground
  |> List.sort_uniq Tuple.compare

let is_certain inst q = Cq.holds inst q
