(** Logical implication between st tgds, decided with the chase.

    [θ ⊨ θ'] iff every pair [(I, J)] satisfying [θ] also satisfies [θ'].
    The standard test freezes the body of [θ'] into a canonical source
    instance (variables become distinct fresh constants), chases it with
    [θ], and checks whether the frozen head of [θ'] is entailed — i.e.
    whether the head maps homomorphically into the chase result with the
    frontier variables fixed to their frozen constants.

    Implication is what candidate-set minimisation needs: a candidate
    implied by another candidate of no greater size is redundant. *)

val implies : Logic.Tgd.t -> Logic.Tgd.t -> bool
(** [implies strong weak] is [true] iff [strong ⊨ weak]. *)

val equivalent : Logic.Tgd.t -> Logic.Tgd.t -> bool
(** Mutual implication. Coarser than [Tgd.equal_up_to_renaming] — it also
    identifies tgds that differ by redundant atoms. *)

val minimize : Logic.Tgd.t list -> Logic.Tgd.t list
(** Removes every candidate implied by an earlier-or-smaller candidate:
    among logically equivalent candidates the smallest (then earliest)
    survives; a candidate strictly implied by a {e smaller or equal-sized}
    one is dropped. The relative order of survivors is preserved. *)

val minimize_tgd : Logic.Tgd.t -> Logic.Tgd.t
(** Removes redundant body atoms (greedily, keeping the tgd logically
    equivalent), lowering [Tgd.size] and therefore the selection cost of an
    otherwise identical candidate. The frontier is preserved: an atom whose
    removal would unbind a head variable is kept. *)
