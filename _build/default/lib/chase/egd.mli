(** Equality-generating dependencies and their chase.

    An egd [∀x̄ (φ(x̄) → x = y)] (e.g. a key constraint on the target)
    forces two values to be equal whenever the body matches. Chasing an
    instance with egds repeatedly finds violations and resolves them:

    - null vs. anything: the null is replaced throughout the instance;
    - two distinct constants: the chase {e fails} — the constraints are
      unsatisfiable on this instance.

    This is the standard second phase of data exchange with target
    constraints; st tgds never read the target, so one tgd pass followed by
    the egd fixpoint yields the canonical universal solution. *)

type t = private {
  label : string;
  body : Logic.Atom.t list;  (** conjunction over one schema; non-empty *)
  left : string;  (** body variable *)
  right : string;  (** body variable *)
}

val make : ?label : string -> body : Logic.Atom.t list -> string -> string -> t
(** [make ~body x y] is [body → x = y]. Raises [Invalid_argument] if the
    body is empty or either variable does not occur in it. *)

val key : rel : string -> key : string list -> Relational.Schema.t -> t list
(** The egds of a key constraint: for a relation [R] with key attributes
    [key], one egd per non-key attribute equating it across any two
    [R]-tuples agreeing on the key. Raises [Not_found] on an unknown
    relation and [Invalid_argument] on unknown key attributes. *)

type conflict = {
  egd : t;
  values : Relational.Value.t * Relational.Value.t;
      (** the two distinct constants the egd tried to equate *)
}

val pp_conflict : Format.formatter -> conflict -> unit

val chase :
  Relational.Instance.t -> t list -> (Relational.Instance.t, conflict) result
(** The egd fixpoint. Null merges prefer the constant, then the
    smaller-labeled null, so the result is deterministic. *)

val satisfied : Relational.Instance.t -> t list -> bool

val pp : Format.formatter -> t -> unit
