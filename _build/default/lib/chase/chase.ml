include Engine
module Implication = Implication
module Certain = Certain
module Egd = Egd
