open Relational
open Logic

(* Freeze a variable into a reserved constant; the frozen namespace cannot
   collide with ordinary constants as long as callers avoid the prefix. *)
let frozen v = "__frz_" ^ v

let freeze_atoms atoms =
  List.map
    (fun (a : Atom.t) ->
      let values =
        Array.map
          (function
            | Term.Var v -> Value.Const (frozen v)
            | Term.Cst c -> Value.Const c)
          a.Atom.args
      in
      { Tuple.rel = a.Atom.rel; values })
    atoms

let implies strong weak =
  (* Rename apart so freezing cannot capture variables across the tgds. *)
  let weak = Tgd.rename_apart ~suffix:"_w" weak in
  let source = Instance.of_tuples (freeze_atoms weak.Tgd.body) in
  let chased = Engine.universal_solution source [ strong ] in
  (* The frozen head must map into the chase result with frontier variables
     pinned to their frozen constants. *)
  let frontier = Tgd.frontier_vars weak in
  let pinned =
    String_set.fold
      (fun v acc -> Subst.bind_exn v (Value.Const (frozen v)) acc)
      frontier Subst.empty
  in
  Cq.extensions chased pinned weak.Tgd.head <> []

let equivalent a b = implies a b && implies b a

let minimize_tgd (tgd : Tgd.t) =
  let head_vars = Tgd.head_vars tgd in
  let rec shrink (current : Tgd.t) =
    let try_without atom =
      let body = List.filter (fun a -> a != atom) current.Tgd.body in
      if body = [] then None
      else
        let vars_of atoms =
          List.fold_left
            (fun acc a -> String_set.union acc (Atom.vars a))
            String_set.empty atoms
        in
        let frontier_kept =
          String_set.subset
            (String_set.inter head_vars (vars_of current.Tgd.body))
            (vars_of body)
        in
        if not frontier_kept then None
        else
          let candidate =
            Tgd.make ~label:current.Tgd.label ~body ~head:current.Tgd.head ()
          in
          if equivalent candidate current then Some candidate else None
    in
    match List.find_map try_without current.Tgd.body with
    | Some smaller -> shrink smaller
    | None -> current
  in
  shrink tgd

let minimize tgds =
  let arr = Array.of_list tgds in
  let n = Array.length arr in
  let redundant = Array.make n false in
  (* j is dropped when some other candidate i implies it and wins the
     tie-break: smaller size, or equal size and earlier position. *)
  let beats i j =
    let si = Tgd.size arr.(i) and sj = Tgd.size arr.(j) in
    si < sj || (si = sj && i < j)
  in
  for j = 0 to n - 1 do
    let i = ref 0 in
    while (not redundant.(j)) && !i < n do
      if !i <> j && (not redundant.(!i)) && beats !i j && implies arr.(!i) arr.(j)
      then redundant.(j) <- true;
      incr i
    done
  done;
  List.filteri (fun j _ -> not redundant.(j)) tgds
