open Relational
open Logic

type t = {
  label : string;
  body : Atom.t list;
  left : string;
  right : string;
}

let make ?(label = "egd") ~body left right =
  if body = [] then invalid_arg "Egd.make: empty body";
  let vars =
    List.fold_left (fun acc a -> String_set.union acc (Atom.vars a)) String_set.empty body
  in
  if not (String_set.mem left vars && String_set.mem right vars) then
    invalid_arg "Egd.make: equated variables must occur in the body";
  { label; body; left; right }

let key ~rel ~key schema =
  let r = Schema.find schema rel in
  List.iter
    (fun attr ->
      if not (Relation.has_attr r attr) then
        invalid_arg (Printf.sprintf "Egd.key: unknown key attribute %s.%s" rel attr))
    key;
  let attrs = Array.to_list r.Relation.attrs in
  let var prefix attr = Term.Var (prefix ^ "_" ^ attr) in
  let args prefix =
    List.map
      (fun attr -> if List.mem attr key then var "k" attr else var prefix attr)
      attrs
  in
  let body = [ Atom.make rel (args "a"); Atom.make rel (args "b") ] in
  attrs
  |> List.filter (fun attr -> not (List.mem attr key))
  |> List.map (fun attr ->
         make
           ~label:(Printf.sprintf "key_%s_%s" rel attr)
           ~body
           ("a_" ^ attr)
           ("b_" ^ attr))

type conflict = {
  egd : t;
  values : Value.t * Value.t;
}

let pp ppf t =
  Format.fprintf ppf "%s: %a -> %s = %s" t.label
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Atom.pp)
    t.body t.left t.right

let pp_conflict ppf c =
  Format.fprintf ppf "egd %s equates distinct constants %a and %a" c.egd.label
    Value.pp (fst c.values) Value.pp (snd c.values)

(* Find one violated egd instance: a body match where left <> right. *)
let find_violation inst egds =
  List.find_map
    (fun egd ->
      List.find_map
        (fun subst ->
          match Subst.find_opt egd.left subst, Subst.find_opt egd.right subst with
          | Some a, Some b when not (Value.equal a b) -> Some (egd, a, b)
          | Some _, Some _ | None, _ | _, None -> None)
        (Cq.answers inst egd.body))
    egds

let chase inst egds =
  let rec fixpoint inst =
    match find_violation inst egds with
    | None -> Ok inst
    | Some (egd, a, b) -> (
      (* Merge: prefer keeping a constant; between nulls keep the smaller
         label. Replacement applies to the whole instance. *)
      match a, b with
      | Value.Const _, Value.Const _ ->
        Error { egd; values = (a, b) }
      | _ ->
        let keep, gone = if Value.compare a b <= 0 then (a, b) else (b, a) in
        let replaced =
          Instance.map_values (fun v -> if Value.equal v gone then keep else v) inst
        in
        fixpoint replaced)
  in
  fixpoint inst

let satisfied inst egds = find_violation inst egds = None
