(** Grounding PSL rules against a database into an HL-MRF.

    Every rule variable must occur in at least one positive body literal of a
    closed predicate (the standard PSL well-formedness condition); bindings
    are enumerated by joining those literals over the observed atoms with
    non-zero truth. Ground atoms of open predicates become MAP variables;
    closed atoms fold into the hinge expressions as constants. Groundings
    that are trivially satisfied (their distance to satisfaction cannot be
    positive anywhere in the box) are dropped. *)

exception Unsatisfiable_hard_rule of string
(** Raised when a hard rule grounds to a violated constant constraint; the
    payload is the rule label. *)

type ground_rule = {
  rule_index : int;  (** position of the rule in the input list *)
  expr : Linexpr.t;  (** the distance-to-satisfaction expression *)
  squared : bool;
}

type t = {
  model : Hlmrf.t;  (** one variable per open ground atom *)
  atoms : Gatom.t array;  (** variable index → open ground atom *)
  index : int Gatom.Map.t;  (** open ground atom → variable index *)
  constant_energy : float;
      (** energy contributed by soft groundings without open atoms *)
  groundings : int;  (** number of non-trivial ground rules produced *)
  soft_groundings : ground_rule list;
      (** the soft groundings with their rule of origin — what weight
          learning needs *)
}

val ground : Database.t -> Rule.t list -> t
(** Raises [Invalid_argument] if a rule has an unbound variable, an unknown
    predicate, or an arity mismatch; raises {!Unsatisfiable_hard_rule} as
    described above. *)

val var_of : t -> Gatom.t -> int option

val truth_in : t -> float array -> Gatom.t -> float option
(** The value of an open ground atom in a MAP solution. *)

val map_inference : ?options : Admm.options -> t -> Admm.outcome
(** Convenience: run {!Admm.solve} on the ground model. *)

val rule_distances : t -> num_rules : int -> float array -> float array
(** [rule_distances g ~num_rules x]: the total (unweighted) distance to
    satisfaction of each input rule's soft groundings under assignment [x],
    as an array of length [num_rules]. *)
