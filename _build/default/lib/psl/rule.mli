(** Weighted logical rules in the Łukasiewicz relaxation.

    A rule [w : b₁ ∧ … ∧ bₙ → h₁ ∨ … ∨ hₘ] compiles, per grounding, to the
    hinge potential [w · max(0, 1 − Σ I(¬bᵢ) − Σ I(hⱼ))^p]: its distance to
    satisfaction under the Łukasiewicz semantics. Either side may be empty
    (but not both), which yields priors: a body-only rule [w : p →] is a
    penalty on [p]'s truth (a negative prior), a head-only rule [w : → p]
    rewards it. A rule without weight is {e hard}: its groundings become
    inviolable constraints. *)

type term =
  | V of string  (** a rule variable *)
  | C of string  (** a constant *)

type literal = {
  positive : bool;
  pred : string;
  args : term list;
}

val pos : string -> term list -> literal

val neg : string -> term list -> literal

type t = {
  label : string;
  weight : float option;  (** [None] = hard rule *)
  squared : bool;  (** square the hinge (quadratic penalty) *)
  body : literal list;
  head : literal list;
}

val make :
  ?label : string ->
  ?squared : bool ->
  weight : float option ->
  body : literal list ->
  head : literal list ->
  unit ->
  t
(** Raises [Invalid_argument] if both sides are empty or the weight is
    negative. *)

val vars : t -> string list
(** All rule variables, each once, in first-occurrence order. *)

val pp : Format.formatter -> t -> unit
