type options = {
  iterations : int;
  rate : float;
  min_weight : float;
  admm : Admm.options;
}

let default_options =
  { iterations = 25; rate = 0.5; min_weight = 0.01; admm = Admm.default_options }

let observed_assignment db (g : Grounding.t) =
  Array.map
    (fun atom -> Option.value ~default:0. (Database.truth db atom))
    g.Grounding.atoms

(* Rebuild the ground model with the given per-rule weights (the grounding
   itself is weight-independent). *)
let model_with_weights (g : Grounding.t) weights =
  let model = Hlmrf.create ~num_vars:(Array.length g.Grounding.atoms) in
  List.iter
    (fun (gr : Grounding.ground_rule) ->
      Hlmrf.add_potential model
        (Hlmrf.Hinge
           {
             weight = weights.(gr.Grounding.rule_index);
             expr = gr.Grounding.expr;
             squared = gr.Grounding.squared;
           }))
    g.Grounding.soft_groundings;
  List.iter (Hlmrf.add_constraint model) (Hlmrf.constraints g.Grounding.model);
  model

let learn ?(options = default_options) db rules =
  let g = Grounding.ground db rules in
  let num_rules = List.length rules in
  let weights =
    Array.of_list
      (List.map
         (fun (r : Rule.t) -> Option.value ~default:0. r.Rule.weight)
         rules)
  in
  let observed = observed_assignment db g in
  let d_observed = Grounding.rule_distances g ~num_rules observed in
  let soft =
    Array.of_list (List.map (fun (r : Rule.t) -> r.Rule.weight <> None) rules)
  in
  for _ = 1 to options.iterations do
    let model = model_with_weights g weights in
    let map = Admm.solve ~options:options.admm model in
    let d_map = Grounding.rule_distances g ~num_rules map.Admm.solution in
    for r = 0 to num_rules - 1 do
      if soft.(r) then
        weights.(r) <-
          Float.max options.min_weight
            (weights.(r) -. (options.rate *. (d_observed.(r) -. d_map.(r))))
    done
  done;
  List.mapi
    (fun r (rule : Rule.t) ->
      match rule.Rule.weight with
      | None -> rule
      | Some _ ->
        Rule.make ~label:rule.Rule.label ~squared:rule.Rule.squared
          ~weight:(Some weights.(r)) ~body:rule.Rule.body ~head:rule.Rule.head ())
    rules
