type t = {
  predicates : Predicate.t list;
  observations : (Gatom.t * float) list;
  rules : Rule.t list;
}

type error = {
  line : int;
  message : string;
}

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Fail of string

let fail fmt = Format.kasprintf (fun msg -> raise (Fail msg)) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.'

let check_ident what s =
  if s = "" then fail "empty %s" what;
  String.iter (fun c -> if not (is_ident_char c) then fail "bad %s %S" what s) s;
  s

(* "pred(a, B, c)" -> name, raw args *)
let parse_application s =
  let s = String.trim s in
  match String.index_opt s '(' with
  | None -> fail "expected '(' in %s" s
  | Some i ->
    if not (String.length s > 0 && s.[String.length s - 1] = ')') then
      fail "expected ')' at the end of %s" s;
    let name = check_ident "predicate name" (String.trim (String.sub s 0 i)) in
    let inside = String.sub s (i + 1) (String.length s - i - 2) in
    let args =
      if String.trim inside = "" then []
      else
        String.split_on_char ',' inside
        |> List.map (fun a -> check_ident "argument" (String.trim a))
    in
    (name, args)

let term_of_string a =
  match a.[0] with
  | 'A' .. 'Z' | '_' -> Rule.V a
  | _ -> Rule.C a

let parse_literal s =
  let s = String.trim s in
  let positive, s =
    if String.length s > 0 && s.[0] = '!' then
      (false, String.trim (String.sub s 1 (String.length s - 1)))
    else (true, s)
  in
  let name, args = parse_application s in
  { Rule.positive; pred = name; args = List.map term_of_string args }

let split_top_level sep s =
  (* split on a character at paren depth 0 *)
  let parts = ref [] in
  let buf = Buffer.create 32 in
  let depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' ->
        incr depth;
        Buffer.add_char buf c
      | ')' ->
        decr depth;
        Buffer.add_char buf c
      | c when c = sep && !depth = 0 ->
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev !parts

let parse_literals s =
  if String.trim s = "" then []
  else List.map parse_literal (split_top_level '&' s)

let parse_predicate_line rest =
  (* "friend/2 closed" *)
  let words =
    String.split_on_char ' ' rest |> List.filter (fun w -> w <> "")
  in
  match words with
  | [ spec ] | [ spec; "closed" ] -> (
    match String.split_on_char '/' spec with
    | [ name; arity ] -> (
      match int_of_string_opt arity with
      | Some a ->
        Predicate.make
          ~closed:(List.length words = 2)
          (check_ident "predicate name" name)
          a
      | None -> fail "bad arity in %s" spec)
    | _ -> fail "expected name/arity, got %s" spec)
  | _ -> fail "bad predicate declaration: %s" rest

let parse_observe_line rest =
  (* "friend(a, b) = 1.0" *)
  match split_top_level '=' rest with
  | [ atom; value ] -> (
    let name, args = parse_application atom in
    List.iter (fun a -> ignore (check_ident "argument" a)) args;
    match float_of_string_opt (String.trim value) with
    | Some v -> (Gatom.make name args, v)
    | None -> fail "bad truth value %s" value)
  | _ -> fail "expected atom = value, got %s" rest

let parse_rule_line rest =
  (* "<label> <weight|hard> [squared]: body -> head" *)
  match String.index_opt rest ':' with
  | None -> fail "rule needs ':'"
  | Some i ->
    let heading = String.sub rest 0 i in
    let formula = String.sub rest (i + 1) (String.length rest - i - 1) in
    let label, weight, squared =
      match
        String.split_on_char ' ' heading |> List.filter (fun w -> w <> "")
      with
      | [ label; "hard" ] -> (label, None, false)
      | [ label; w ] -> (
        match float_of_string_opt w with
        | Some w -> (label, Some w, false)
        | None -> fail "bad weight %s" w)
      | [ label; w; "squared" ] -> (
        match float_of_string_opt w with
        | Some w -> (label, Some w, true)
        | None -> fail "bad weight %s" w)
      | _ -> fail "expected 'label weight[ squared]:' before the formula"
    in
    (* split on "->" at depth 0 *)
    let arrow = ref None in
    let depth = ref 0 in
    String.iteri
      (fun k c ->
        match c with
        | '(' -> incr depth
        | ')' -> decr depth
        | '-'
          when !depth = 0 && !arrow = None
               && k + 1 < String.length formula
               && formula.[k + 1] = '>' ->
          arrow := Some k
        | _ -> ())
      formula;
    (match !arrow with
    | None -> fail "rule needs '->'"
    | Some k ->
      let body = String.sub formula 0 k in
      let head = String.sub formula (k + 2) (String.length formula - k - 2) in
      Rule.make ~label:(check_ident "rule label" label) ~squared ~weight
        ~body:(parse_literals body) ~head:(parse_literals head) ())

let strip_prefix prefix s =
  let lp = String.length prefix in
  if String.length s >= lp && String.equal (String.sub s 0 lp) prefix then
    Some (String.trim (String.sub s lp (String.length s - lp)))
  else None

let parse text =
  let parse_line acc line =
    let line = String.trim line in
    if line = "" || line.[0] = '#' then acc
    else
      match strip_prefix "predicate" line with
      | Some rest -> { acc with predicates = acc.predicates @ [ parse_predicate_line rest ] }
      | None -> (
        match strip_prefix "observe" line with
        | Some rest ->
          { acc with observations = acc.observations @ [ parse_observe_line rest ] }
        | None -> (
          match strip_prefix "rule" line with
          | Some rest -> { acc with rules = acc.rules @ [ parse_rule_line rest ] }
          | None -> fail "unknown directive: %s" line))
  in
  let lines = String.split_on_char '\n' text in
  let rec loop acc n = function
    | [] -> Ok acc
    | line :: rest -> (
      match parse_line acc line with
      | acc -> loop acc (n + 1) rest
      | exception Fail message -> Error { line = n; message }
      | exception Invalid_argument message -> Error { line = n; message })
  in
  loop { predicates = []; observations = []; rules = [] } 1 lines

let parse_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse text

let database t = Database.observe_all t.observations (Database.create t.predicates)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (p : Predicate.t) ->
      Format.fprintf ppf "predicate %s/%d%s@," p.Predicate.name p.Predicate.arity
        (if p.Predicate.closed then " closed" else ""))
    t.predicates;
  List.iter
    (fun (a, v) -> Format.fprintf ppf "observe %a = %g@," Gatom.pp a v)
    t.observations;
  List.iter
    (fun (r : Rule.t) ->
      let pp_lits ppf lits =
        Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
          (fun ppf (l : Rule.literal) ->
            Format.fprintf ppf "%s%s(%s)"
              (if l.Rule.positive then "" else "!")
              l.Rule.pred
              (String.concat ", "
                 (List.map
                    (function Rule.V v -> v | Rule.C c -> c)
                    l.Rule.args)))
          ppf lits
      in
      Format.fprintf ppf "rule %s %s%s: %a -> %a@," r.Rule.label
        (match r.Rule.weight with None -> "hard" | Some w -> Printf.sprintf "%g" w)
        (if r.Rule.squared then " squared" else "")
        pp_lits r.Rule.body pp_lits r.Rule.head)
    t.rules;
  Format.fprintf ppf "@]"
