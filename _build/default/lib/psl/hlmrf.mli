(** Hinge-loss Markov random fields.

    An HL-MRF over variables [x ∈ [0,1]^n] is the energy function

    {v
      f(x) = Σ_k w_k · max(0, a_kᵀx + b_k)^{p_k}     (p_k ∈ {1,2})
           + Σ_k w_k · (a_kᵀx + b_k)                  (linear potentials)
    v}

    subject to hard linear constraints [aᵀx + b ≤ 0] or [aᵀx + b = 0]. MAP
    inference minimises [f] over the feasible box — a convex problem, solved
    by {!Admm}. *)

type potential =
  | Hinge of { weight : float; expr : Linexpr.t; squared : bool }
      (** [w·max(0, aᵀx+b)] or [w·max(0, aᵀx+b)²]; [w ≥ 0] *)
  | Linear of { weight : float; expr : Linexpr.t }  (** [w·(aᵀx+b)] *)

type constr =
  | Leq of Linexpr.t  (** [aᵀx + b ≤ 0] *)
  | Eq of Linexpr.t  (** [aᵀx + b = 0] *)

type t

val create : num_vars : int -> t

val num_vars : t -> int

val add_potential : t -> potential -> unit
(** Raises [Invalid_argument] on a negative hinge weight. *)

val add_constraint : t -> constr -> unit

val potentials : t -> potential list
(** In insertion order. *)

val constraints : t -> constr list

val num_potentials : t -> int

val num_constraints : t -> int

val energy : t -> float array -> float
(** The objective value of an assignment (constraints not included). *)

val feasible : ?tol : float -> t -> float array -> bool
(** Box and hard constraints satisfied up to [tol] (default 1e-6). *)

val var_name : t -> int -> string

val set_var_name : t -> int -> string -> unit
