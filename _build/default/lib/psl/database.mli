(** The data a PSL program is grounded against.

    Observed atoms carry soft truth values in [0,1]. Atoms of closed
    predicates that are not observed are false (closed world assumption);
    ground atoms of open predicates become MAP variables. *)

type t

val create : Predicate.t list -> t
(** Raises [Invalid_argument] on duplicate predicate names. *)

val predicate : t -> string -> Predicate.t
(** Raises [Not_found]. *)

val predicates : t -> Predicate.t list

val observe : Gatom.t -> float -> t -> t
(** Records a truth value. Raises [Invalid_argument] if the predicate is
    unknown, the arity mismatches, or the value lies outside [0,1].
    Re-observing an atom overwrites. *)

val observe_all : (Gatom.t * float) list -> t -> t

val truth : t -> Gatom.t -> float option
(** The observed value, if any. *)

val truth_closed : t -> Gatom.t -> float
(** Observed value or 0 for atoms of closed predicates (closed world).
    Raises [Invalid_argument] on an open predicate. *)

val observed_of : t -> string -> (Gatom.t * float) list
(** All observations of one predicate, ascending by atom. *)

val fold_observed : (Gatom.t -> float -> 'a -> 'a) -> t -> 'a -> 'a
