lib/psl/gradient.ml: Array Float Hlmrf Linexpr List
