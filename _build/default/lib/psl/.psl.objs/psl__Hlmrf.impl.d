lib/psl/hlmrf.ml: Array Float Linexpr List Printf
