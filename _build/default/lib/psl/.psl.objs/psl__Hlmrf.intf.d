lib/psl/hlmrf.mli: Linexpr
