lib/psl/gradient.mli: Hlmrf
