lib/psl/admm.ml: Array Float Hlmrf Linexpr List
