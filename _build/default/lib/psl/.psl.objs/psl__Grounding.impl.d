lib/psl/grounding.ml: Admm Array Database Float Gatom Hlmrf Linexpr List Map Option Predicate Printf Rule String
