lib/psl/program.ml: Buffer Database Format Fun Gatom List Predicate Printf Rule String
