lib/psl/learn.mli: Admm Database Grounding Rule
