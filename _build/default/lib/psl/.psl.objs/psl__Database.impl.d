lib/psl/database.ml: Array Gatom List Map Option Predicate Printf String
