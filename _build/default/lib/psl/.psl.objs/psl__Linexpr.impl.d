lib/psl/linexpr.ml: Array Format Hashtbl Int List Option
