lib/psl/grounding.mli: Admm Database Gatom Hlmrf Linexpr Rule
