lib/psl/rule.ml: Format Hashtbl List
