lib/psl/gatom.mli: Format Map Set
