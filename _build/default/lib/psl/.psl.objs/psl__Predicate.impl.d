lib/psl/predicate.ml: Format
