lib/psl/gatom.ml: Array Format Map Set Stdlib String
