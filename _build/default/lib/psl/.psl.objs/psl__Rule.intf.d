lib/psl/rule.mli: Format
