lib/psl/admm.mli: Hlmrf
