lib/psl/learn.ml: Admm Array Database Float Grounding Hlmrf List Option Rule
