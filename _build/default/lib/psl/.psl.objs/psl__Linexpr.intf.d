lib/psl/linexpr.mli: Format
