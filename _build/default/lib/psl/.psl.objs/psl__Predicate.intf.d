lib/psl/predicate.mli: Format
