lib/psl/program.mli: Database Format Gatom Predicate Rule
