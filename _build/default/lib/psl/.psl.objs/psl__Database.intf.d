lib/psl/database.mli: Gatom Predicate
