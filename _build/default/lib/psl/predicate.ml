type t = {
  name : string;
  arity : int;
  closed : bool;
}

let make ?(closed = false) name arity =
  if arity <= 0 then invalid_arg "Predicate.make: arity must be positive";
  { name; arity; closed }

let pp ppf p =
  Format.fprintf ppf "%s/%d%s" p.name p.arity (if p.closed then " (closed)" else "")
