(** PSL predicates.

    A predicate is {e closed} when its atoms are fully observed (their truth
    values come from the database; unlisted atoms are 0 under the closed
    world assumption) and {e open} when its ground atoms are decision
    variables of MAP inference. *)

type t = {
  name : string;
  arity : int;
  closed : bool;
}

val make : ?closed : bool -> string -> int -> t
(** Open by default. Raises [Invalid_argument] on non-positive arity. *)

val pp : Format.formatter -> t -> unit
