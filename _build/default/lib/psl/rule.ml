type term =
  | V of string
  | C of string

type literal = {
  positive : bool;
  pred : string;
  args : term list;
}

let pos pred args = { positive = true; pred; args }

let neg pred args = { positive = false; pred; args }

type t = {
  label : string;
  weight : float option;
  squared : bool;
  body : literal list;
  head : literal list;
}

let make ?(label = "rule") ?(squared = false) ~weight ~body ~head () =
  if body = [] && head = [] then invalid_arg "Rule.make: empty rule";
  (match weight with
  | Some w when w < 0. -> invalid_arg "Rule.make: negative weight"
  | Some _ | None -> ());
  { label; weight; squared; body; head }

let vars t =
  let seen = Hashtbl.create 8 in
  let collect acc lit =
    List.fold_left
      (fun acc term ->
        match term with
        | V v when not (Hashtbl.mem seen v) ->
          Hashtbl.add seen v ();
          v :: acc
        | V _ | C _ -> acc)
      acc lit.args
  in
  List.rev (List.fold_left collect [] (t.body @ t.head))

let pp_term ppf = function
  | V v -> Format.pp_print_string ppf v
  | C c -> Format.fprintf ppf "\"%s\"" c

let pp_literal ppf l =
  Format.fprintf ppf "%s%s(%a)"
    (if l.positive then "" else "!")
    l.pred
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_term)
    l.args

let pp ppf t =
  let pp_lits sep =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf sep)
      pp_literal
  in
  let pp_weight ppf = function
    | None -> Format.pp_print_string ppf "hard"
    | Some w -> Format.fprintf ppf "%g" w
  in
  Format.fprintf ppf "%s [%a]: %a -> %a%s" t.label pp_weight t.weight
    (pp_lits " & ") t.body (pp_lits " | ") t.head
    (if t.squared then " ^2" else "")
