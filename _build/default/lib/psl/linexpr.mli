(** Sparse linear expressions [aᵀx + b] over indexed variables. *)

type t = {
  coeffs : (int * float) list;  (** variable index, coefficient; indices distinct *)
  constant : float;
}

val make : (int * float) list -> float -> t
(** Combines duplicate indices and drops zero coefficients. *)

val constant : float -> t

val eval : t -> float array -> float

val vars : t -> int list
(** Variable indices, ascending. *)

val norm2 : t -> float
(** Squared Euclidean norm of the coefficient vector. *)

val scale : float -> t -> t

val pp : Format.formatter -> t -> unit
