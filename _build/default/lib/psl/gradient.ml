let clip01 v = Float.max 0. (Float.min 1. v)

let penalised_energy ~penalty model x =
  let violation acc = function
    | Hlmrf.Leq e -> acc +. (Float.max 0. (Linexpr.eval e x) ** 2.)
    | Hlmrf.Eq e -> acc +. (Linexpr.eval e x ** 2.)
  in
  Hlmrf.energy model x
  +. (penalty *. List.fold_left violation 0. (Hlmrf.constraints model))

let add_subgradient g scale expr =
  List.iter (fun (i, c) -> g.(i) <- g.(i) +. (scale *. c)) expr.Linexpr.coeffs

let subgradient ~penalty model x g =
  Array.fill g 0 (Array.length g) 0.;
  List.iter
    (fun p ->
      match p with
      | Hlmrf.Hinge { weight; expr; squared } ->
        let v = Linexpr.eval expr x in
        if v > 0. then
          add_subgradient g (if squared then 2. *. weight *. v else weight) expr
      | Hlmrf.Linear { weight; expr } -> add_subgradient g weight expr)
    (Hlmrf.potentials model);
  List.iter
    (fun c ->
      match c with
      | Hlmrf.Leq e ->
        let v = Linexpr.eval e x in
        if v > 0. then add_subgradient g (2. *. penalty *. v) e
      | Hlmrf.Eq e ->
        let v = Linexpr.eval e x in
        add_subgradient g (2. *. penalty *. v) e)
    (Hlmrf.constraints model)

let solve ?(iterations = 5000) ?(step = 0.5) ?(penalty = 100.) model =
  let n = Hlmrf.num_vars model in
  let x = Array.make n 0.5 in
  let g = Array.make n 0. in
  let best = Array.copy x in
  let best_energy = ref (penalised_energy ~penalty model x) in
  for t = 1 to iterations do
    subgradient ~penalty model x g;
    let eta = step /. sqrt (float_of_int t) in
    for i = 0 to n - 1 do
      x.(i) <- clip01 (x.(i) -. (eta *. g.(i)))
    done;
    let e = penalised_energy ~penalty model x in
    if e < !best_energy then begin
      best_energy := e;
      Array.blit x 0 best 0 n
    end
  done;
  best
