type t = {
  pred : string;
  args : string array;
}

let make pred args = { pred; args = Array.of_list args }

let compare a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c else Stdlib.compare a.args b.args

let equal a b = compare a b = 0

let pp ppf a =
  Format.fprintf ppf "%s(%a)" a.pred
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_string)
    (Array.to_list a.args)

let to_string a = Format.asprintf "%a" pp a

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
