type potential =
  | Hinge of { weight : float; expr : Linexpr.t; squared : bool }
  | Linear of { weight : float; expr : Linexpr.t }

type constr =
  | Leq of Linexpr.t
  | Eq of Linexpr.t

type t = {
  num_vars : int;
  mutable potentials : potential list;  (* reversed *)
  mutable constraints : constr list;  (* reversed *)
  names : string array;
}

let create ~num_vars =
  {
    num_vars;
    potentials = [];
    constraints = [];
    names = Array.init num_vars (Printf.sprintf "x%d");
  }

let num_vars t = t.num_vars

let check_expr t expr =
  List.iter
    (fun i ->
      if i < 0 || i >= t.num_vars then
        invalid_arg (Printf.sprintf "Hlmrf: variable index %d out of range" i))
    (Linexpr.vars expr)

let add_potential t p =
  (match p with
  | Hinge { weight; expr; _ } ->
    if weight < 0. then invalid_arg "Hlmrf.add_potential: negative hinge weight";
    check_expr t expr
  | Linear { expr; _ } -> check_expr t expr);
  t.potentials <- p :: t.potentials

let add_constraint t c =
  (match c with Leq e | Eq e -> check_expr t e);
  t.constraints <- c :: t.constraints

let potentials t = List.rev t.potentials

let constraints t = List.rev t.constraints

let num_potentials t = List.length t.potentials

let num_constraints t = List.length t.constraints

let energy t x =
  List.fold_left
    (fun acc p ->
      match p with
      | Hinge { weight; expr; squared } ->
        let v = Float.max 0. (Linexpr.eval expr x) in
        acc +. (weight *. if squared then v *. v else v)
      | Linear { weight; expr } -> acc +. (weight *. Linexpr.eval expr x))
    0. t.potentials

let feasible ?(tol = 1e-6) t x =
  let box_ok =
    Array.for_all (fun v -> v >= -.tol && v <= 1. +. tol) x
  in
  box_ok
  && List.for_all
       (fun c ->
         match c with
         | Leq e -> Linexpr.eval e x <= tol
         | Eq e -> Float.abs (Linexpr.eval e x) <= tol)
       t.constraints

let var_name t i = t.names.(i)

let set_var_name t i name = t.names.(i) <- name
