(** Ground atoms: a predicate name applied to constants. *)

type t = {
  pred : string;
  args : string array;
}

val make : string -> string list -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Map : Map.S with type key = t

module Set : Set.S with type elt = t
