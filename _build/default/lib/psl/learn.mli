(** Weight learning for PSL programs.

    Large-margin perceptron learning, the standard approximation of
    maximum-likelihood weight estimation for HL-MRFs: per step, run MAP
    inference under the current weights and move each soft rule's weight by
    the difference between the rule's total distance to satisfaction at the
    {e observed} assignment and at the {e MAP} assignment,

    {v  w_r ← max(min_weight, w_r − rate · (d_r(observed) − d_r(MAP)))  v}

    so rules violated more by the training labels than by the model lose
    weight and vice versa. Hard rules are left untouched. The training
    labels are the database's observations of {e open} predicate atoms
    (which grounding itself ignores); open atoms without an observation are
    treated as false. *)

type options = {
  iterations : int;  (** default 25 *)
  rate : float;  (** learning rate; default 0.5 *)
  min_weight : float;  (** weight floor; default 0.01 *)
  admm : Admm.options;
}

val default_options : options

val learn : ?options : options -> Database.t -> Rule.t list -> Rule.t list
(** The input rules with learned weights, in order. Raises like
    {!Grounding.ground}. *)

val observed_assignment : Database.t -> Grounding.t -> float array
(** The training-label assignment: one value per ground-model variable,
    from the database's observations of open atoms (0 when unobserved).
    Exposed for testing. *)
