(** MAP inference for HL-MRFs by consensus ADMM.

    This is the standard PSL inference algorithm (Boyd-style consensus ADMM
    with analytic prox steps per potential, as in Bach et al., "Hinge-Loss
    Markov Random Fields and Probabilistic Soft Logic", JMLR 2017): every
    potential and hard constraint keeps a local copy of the variables it
    touches; local copies are updated by a closed-form proximal step, the
    consensus variables by averaging and clipping to [0,1], and scaled duals
    by the consensus gap. Convergence follows Boyd's combined
    absolute/relative criterion on the primal and dual residuals. *)

type options = {
  rho : float;  (** ADMM step size; default 1.0 *)
  max_iter : int;  (** default 10_000 *)
  eps_abs : float;  (** absolute tolerance; default 1e-5 *)
  eps_rel : float;  (** relative tolerance; default 1e-4 *)
}

val default_options : options

type outcome = {
  solution : float array;  (** consensus assignment, inside the box *)
  iterations : int;
  converged : bool;  (** [false] iff stopped by [max_iter] *)
  energy : float;  (** {!Hlmrf.energy} of [solution] *)
}

val solve : ?options : options -> Hlmrf.t -> outcome
(** Minimises the HL-MRF energy over the box subject to its hard
    constraints. Deterministic. *)
