(** A textual format for PSL programs.

    Line-oriented:

    {v
    # the classic smokers program
    predicate friend/2 closed
    predicate smokes/1
    observe friend(anna, bob) = 1.0
    observe smokes(anna) = 1.0          # open observations = training labels
    rule influence 2.0: friend(X, Y) & smokes(X) -> smokes(Y)
    rule prior 0.5: smokes(X) & friend(X, Y) ->
    rule anchor hard: -> smokes(anna)
    rule sq 1.5 squared: smokes(X) -> smokes(X)
    v}

    Identifiers starting with an uppercase letter or underscore are rule
    variables; everything else is a constant. A rule's weight is a number,
    or [hard]; [squared] after the weight squares the hinge. Either side of
    [->] may be empty. *)

type t = {
  predicates : Predicate.t list;
  observations : (Gatom.t * float) list;
  rules : Rule.t list;
}

type error = {
  line : int;
  message : string;
}

val pp_error : Format.formatter -> error -> unit

val parse : string -> (t, error) result

val parse_file : string -> (t, error) result
(** Raises [Sys_error] if the file cannot be read. *)

val database : t -> Database.t
(** The program's database: its predicates with all observations applied
    (validation errors surface as [Invalid_argument], e.g. arity
    mismatches — [parse] already rejects most). *)

val pp : Format.formatter -> t -> unit
(** Prints a program in the same format ([parse] inverts it). *)
