module Smap = Map.Make (String)

type t = {
  preds : Predicate.t Smap.t;
  observed : float Gatom.Map.t;
}

let create preds =
  let m =
    List.fold_left
      (fun acc (p : Predicate.t) ->
        if Smap.mem p.Predicate.name acc then
          invalid_arg
            (Printf.sprintf "Database.create: duplicate predicate %s" p.Predicate.name)
        else Smap.add p.Predicate.name p acc)
      Smap.empty preds
  in
  { preds = m; observed = Gatom.Map.empty }

let predicate t name = Smap.find name t.preds

let predicates t = Smap.bindings t.preds |> List.map snd

let observe atom value t =
  (match Smap.find_opt atom.Gatom.pred t.preds with
  | None ->
    invalid_arg (Printf.sprintf "Database.observe: unknown predicate %s" atom.Gatom.pred)
  | Some p ->
    if p.Predicate.arity <> Array.length atom.Gatom.args then
      invalid_arg
        (Printf.sprintf "Database.observe: arity mismatch for %s" atom.Gatom.pred));
  if value < 0. || value > 1. then
    invalid_arg "Database.observe: truth value outside [0,1]";
  { t with observed = Gatom.Map.add atom value t.observed }

let observe_all l t = List.fold_left (fun t (a, v) -> observe a v t) t l

let truth t atom = Gatom.Map.find_opt atom t.observed

let truth_closed t atom =
  match Smap.find_opt atom.Gatom.pred t.preds with
  | None ->
    invalid_arg (Printf.sprintf "Database.truth_closed: unknown predicate %s" atom.Gatom.pred)
  | Some p ->
    if not p.Predicate.closed then
      invalid_arg
        (Printf.sprintf "Database.truth_closed: %s is open" atom.Gatom.pred)
    else Option.value ~default:0. (Gatom.Map.find_opt atom t.observed)

let observed_of t name =
  Gatom.Map.fold
    (fun a v acc -> if String.equal a.Gatom.pred name then (a, v) :: acc else acc)
    t.observed []
  |> List.rev

let fold_observed f t init = Gatom.Map.fold f t.observed init
