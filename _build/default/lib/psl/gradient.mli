(** Projected subgradient descent on HL-MRF energies.

    A slow but straightforward reference solver used to cross-check
    {!Admm} in tests. Hard constraints are handled by a quadratic penalty,
    so the result is only approximately feasible; prefer {!Admm} everywhere
    else. *)

val solve :
  ?iterations : int ->
  ?step : float ->
  ?penalty : float ->
  Hlmrf.t ->
  float array
(** [solve model] returns the best (lowest penalised energy) iterate of
    [iterations] (default 5000) projected subgradient steps with step size
    [step/√t] (default [step = 0.5]); constraint violations are penalised
    quadratically with coefficient [penalty] (default 100). *)
