type t = {
  coeffs : (int * float) list;
  constant : float;
}

let make coeffs constant =
  let tbl = Hashtbl.create (List.length coeffs) in
  List.iter
    (fun (i, c) ->
      let prev = Option.value ~default:0. (Hashtbl.find_opt tbl i) in
      Hashtbl.replace tbl i (prev +. c))
    coeffs;
  let coeffs =
    Hashtbl.fold (fun i c acc -> if c = 0. then acc else (i, c) :: acc) tbl []
    |> List.sort (fun (i, _) (j, _) -> Int.compare i j)
  in
  { coeffs; constant }

let constant c = { coeffs = []; constant = c }

let eval t x =
  List.fold_left (fun acc (i, c) -> acc +. (c *. x.(i))) t.constant t.coeffs

let vars t = List.map fst t.coeffs

let norm2 t = List.fold_left (fun acc (_, c) -> acc +. (c *. c)) 0. t.coeffs

let scale k t =
  { coeffs = List.map (fun (i, c) -> (i, k *. c)) t.coeffs; constant = k *. t.constant }

let pp ppf t =
  let pp_term ppf (i, c) = Format.fprintf ppf "%+g*x%d" c i in
  Format.fprintf ppf "%a %+g"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") pp_term)
    t.coeffs t.constant
