open Relational

(* Greedy join ordering: repeatedly pick the atom sharing the most variables
   with those already placed; break ties towards atoms with fewer distinct
   variables (more selective). *)
let order_atoms atoms =
  let rec pick placed_vars remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ :: _ ->
      let score a =
        let vs = Atom.vars a in
        let bound = String_set.cardinal (String_set.inter vs placed_vars) in
        let free = String_set.cardinal vs - bound in
        (bound, -free)
      in
      let best =
        List.fold_left
          (fun best a ->
            match best with
            | None -> Some a
            | Some b -> if score a > score b then Some a else best)
          None remaining
      in
      (match best with
      | None -> List.rev acc
      | Some a ->
        let remaining = List.filter (fun x -> x != a) remaining in
        pick (String_set.union placed_vars (Atom.vars a)) remaining (a :: acc))
  in
  pick String_set.empty atoms []

(* Match one atom against one tuple under a substitution. *)
let match_atom s (a : Atom.t) (tu : Tuple.t) =
  let n = Array.length a.args in
  if n <> Array.length tu.Tuple.values then None
  else
    let rec loop i s =
      if i >= n then Some s
      else
        match a.args.(i), tu.Tuple.values.(i) with
        | Term.Cst c, v ->
          if Value.equal (Value.Const c) v then loop (i + 1) s else None
        | Term.Var x, v -> (
          match Subst.bind x v s with
          | None -> None
          | Some s -> loop (i + 1) s)
    in
    loop 0 s

let extensions_ordered inst s atoms =
  let rec eval s atoms acc =
    match atoms with
    | [] -> s :: acc
    | a :: tl ->
      Tuple.Set.fold
        (fun tu acc ->
          match match_atom s a tu with
          | None -> acc
          | Some s' -> eval s' tl acc)
        (Instance.tuples_of inst a.Atom.rel)
        acc
  in
  List.rev (eval s atoms [])

let extensions inst s atoms = extensions_ordered inst s (order_atoms atoms)

let answers inst atoms = extensions inst Subst.empty atoms

let answers_seq inst atoms = List.to_seq (answers inst atoms)

module Index = struct
  type t = {
    inst : Instance.t;
    table : (string * int * Value.t, Tuple.t list) Hashtbl.t;
  }

  let build inst =
    let table = Hashtbl.create 256 in
    Instance.iter
      (fun tu ->
        Array.iteri
          (fun pos v ->
            let key = (tu.Tuple.rel, pos, v) in
            let prev = Option.value ~default:[] (Hashtbl.find_opt table key) in
            Hashtbl.replace table key (tu :: prev))
          tu.Tuple.values)
      inst;
    { inst; table }

  let instance t = t.inst

  (* Candidate tuples for an atom under a substitution: probe the first
     bound position, or fall back to the full relation. *)
  let candidates t s (a : Atom.t) =
    let rec first_bound i =
      if i >= Array.length a.Atom.args then None
      else
        match Subst.apply_term s a.Atom.args.(i) with
        | Some v -> Some (i, v)
        | None -> first_bound (i + 1)
    in
    match first_bound 0 with
    | Some (pos, v) ->
      Option.value ~default:[] (Hashtbl.find_opt t.table (a.Atom.rel, pos, v))
    | None -> Tuple.Set.elements (Instance.tuples_of t.inst a.Atom.rel)
end

let extensions_indexed index s atoms =
  let ordered = order_atoms atoms in
  let rec eval s atoms acc =
    match atoms with
    | [] -> s :: acc
    | a :: tl ->
      List.fold_left
        (fun acc tu ->
          match match_atom s a tu with
          | None -> acc
          | Some s' -> eval s' tl acc)
        acc (Index.candidates index s a)
  in
  List.rev (eval s ordered [])

let answers_indexed index atoms = extensions_indexed index Subst.empty atoms

let holds inst atoms =
  let ordered = order_atoms atoms in
  let rec eval s = function
    | [] -> true
    | a :: tl ->
      Tuple.Set.exists
        (fun tu ->
          match match_atom s a tu with None -> false | Some s' -> eval s' tl)
        (Instance.tuples_of inst a.Atom.rel)
  in
  eval Subst.empty ordered
