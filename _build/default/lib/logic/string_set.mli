(** Sets of strings, shared by the logic modules. *)

include Set.S with type elt = string

val pp : Format.formatter -> t -> unit
