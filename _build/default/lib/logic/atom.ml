open Relational

type t = {
  rel : string;
  args : Term.t array;
}

let make rel args = { rel; args = Array.of_list args }

let arity a = Array.length a.args

let vars a =
  Array.fold_left
    (fun acc t ->
      match t with Term.Var v -> String_set.add v acc | Term.Cst _ -> acc)
    String_set.empty a.args

let vars_in_order a =
  let seen = Hashtbl.create 8 in
  Array.fold_left
    (fun acc t ->
      match t with
      | Term.Var v when not (Hashtbl.mem seen v) ->
        Hashtbl.add seen v ();
        v :: acc
      | Term.Var _ | Term.Cst _ -> acc)
    [] a.args
  |> List.rev

let compare a b =
  let c = String.compare a.rel b.rel in
  if c <> 0 then c else Stdlib.compare a.args b.args

let equal a b = compare a b = 0

let conforms_to schema a =
  match Schema.find_opt schema a.rel with
  | None -> false
  | Some r -> Relation.arity r = arity a

let pp ppf a =
  Format.fprintf ppf "%s(%a)" a.rel
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Term.pp)
    (Array.to_list a.args)
