(** Substitutions mapping variable names to instance values. *)

type t

val empty : t

val singleton : string -> Relational.Value.t -> t

val bind : string -> Relational.Value.t -> t -> t option
(** [bind v x s] extends [s] with [v ↦ x]. Returns [None] iff [v] is already
    bound to a different value. *)

val bind_exn : string -> Relational.Value.t -> t -> t
(** Like [bind] but raises [Invalid_argument] on conflict. *)

val find_opt : string -> t -> Relational.Value.t option

val mem : string -> t -> bool

val apply_term : t -> Term.t -> Relational.Value.t option
(** A constant maps to itself; a variable to its binding, if any. *)

val apply_atom : t -> Atom.t -> Relational.Tuple.t option
(** Grounds an atom into a tuple; [None] if some variable is unbound. *)

val apply_atom_exn : t -> Atom.t -> Relational.Tuple.t

val bindings : t -> (string * Relational.Value.t) list

val cardinal : t -> int

val compare : t -> t -> int

val equal : t -> t -> bool

val compatible : t -> t -> bool
(** [true] iff the two substitutions agree on shared variables. *)

val merge : t -> t -> t option
(** Union of two substitutions; [None] if they conflict. *)

val pp : Format.formatter -> t -> unit
