type t = {
  label : string;
  body : Atom.t list;
  head : Atom.t list;
}

let make ?(label = "tgd") ~body ~head () =
  if body = [] then invalid_arg "Tgd.make: empty body";
  if head = [] then invalid_arg "Tgd.make: empty head";
  { label; body; head }

let relabel label t = { t with label }

let vars_of_atoms atoms =
  List.fold_left (fun acc a -> String_set.union acc (Atom.vars a)) String_set.empty atoms

let body_vars t = vars_of_atoms t.body

let head_vars t = vars_of_atoms t.head

let frontier_vars t = String_set.inter (body_vars t) (head_vars t)

let existential_vars t = String_set.diff (head_vars t) (body_vars t)

let is_full t = String_set.is_empty (existential_vars t)

let size t =
  List.length t.body + List.length t.head
  + String_set.cardinal (existential_vars t)

let well_formed ~source ~target t =
  let check schema kind atoms =
    List.fold_left
      (fun acc a ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          if Atom.conforms_to schema a then Ok ()
          else
            Error
              (Format.asprintf "%s atom %a does not conform to the %s schema"
                 kind Atom.pp a kind))
      (Ok ()) atoms
  in
  match check source "source" t.body with
  | Error _ as e -> e
  | Ok () -> check target "target" t.head

let map_vars f t =
  let map_atom (a : Atom.t) =
    { a with
      Atom.args =
        Array.map
          (function Term.Var v -> Term.Var (f v) | Term.Cst _ as c -> c)
          a.Atom.args
    }
  in
  { t with body = List.map map_atom t.body; head = List.map map_atom t.head }

let canonicalize t =
  let mapping = Hashtbl.create 8 in
  let next = ref 0 in
  let visit_atom (a : Atom.t) =
    Array.iter
      (function
        | Term.Var v ->
          if not (Hashtbl.mem mapping v) then begin
            Hashtbl.add mapping v (Printf.sprintf "V%d" !next);
            incr next
          end
        | Term.Cst _ -> ())
      a.Atom.args
  in
  List.iter visit_atom t.body;
  List.iter visit_atom t.head;
  map_vars (Hashtbl.find mapping) t

let structural_compare a b =
  let cmp_atoms xs ys =
    let rec loop xs ys =
      match xs, ys with
      | [], [] -> 0
      | [], _ :: _ -> -1
      | _ :: _, [] -> 1
      | x :: xs, y :: ys ->
        let c = Atom.compare x y in
        if c <> 0 then c else loop xs ys
    in
    loop xs ys
  in
  let c = cmp_atoms a.body b.body in
  if c <> 0 then c else cmp_atoms a.head b.head

let compare a b = structural_compare a b

let equal a b = compare a b = 0

(* For renaming-insensitive equality we canonicalise under every atom order?
   That is exponential in general; instead we canonicalise after sorting the
   atoms by (relation, term shapes), which is a sound and — for the candidate
   tgds arising in schema mapping, where atoms within a side rarely share a
   relation symbol — complete normal form. When several atoms of the same
   side share a relation name we fall back to trying all permutations of that
   relation's atoms (the groups are tiny in practice). *)
let equal_up_to_renaming a b =
  let shape (x : Atom.t) =
    ( x.Atom.rel,
      Array.to_list x.Atom.args
      |> List.map (function Term.Cst c -> Some c | Term.Var _ -> None) )
  in
  let normalise t =
    let sort atoms =
      List.stable_sort (fun x y -> Stdlib.compare (shape x) (shape y)) atoms
    in
    canonicalize { t with body = sort t.body; head = sort t.head }
  in
  let quick = equal (normalise a) (normalise b) in
  if quick then true
  else begin
    (* Permutation fallback, bounded: only worth attempting when both sides
       have the same multiset of shapes. *)
    let shapes t = List.sort Stdlib.compare (List.map shape (t.body @ t.head)) in
    if shapes a <> shapes b then false
    else begin
      let rec permutations = function
        | [] -> [ [] ]
        | l ->
          List.concat_map
            (fun x ->
              let rest = List.filter (fun y -> y != x) l in
              List.map (fun p -> x :: p) (permutations rest))
            l
      in
      let bounded l = List.length l <= 6 in
      if not (bounded a.body && bounded a.head) then false
      else
        List.exists
          (fun body ->
            List.exists
              (fun head ->
                equal (canonicalize { a with body; head }) (canonicalize b))
              (permutations a.head))
          (permutations a.body)
    end
  end

let rename_apart ~suffix t = map_vars (fun v -> v ^ suffix) t

let pp ppf t =
  let pp_atoms =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
      Atom.pp
  in
  Format.fprintf ppf "%s: %a -> %a" t.label pp_atoms t.body pp_atoms t.head

let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
