include Set.Make (String)

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_string)
    (elements s)
