lib/logic/subst.ml: Array Atom Format Map Printf Relational String Term Tuple Value
