lib/logic/cq.mli: Atom Relational Seq Subst
