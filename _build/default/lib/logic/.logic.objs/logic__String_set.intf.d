lib/logic/string_set.mli: Format Set
