lib/logic/containment.mli: Atom String_set
