lib/logic/atom.ml: Array Format Hashtbl List Relation Relational Schema Stdlib String String_set Term
