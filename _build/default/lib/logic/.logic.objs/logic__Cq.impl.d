lib/logic/cq.ml: Array Atom Hashtbl Instance List Option Relational String_set Subst Term Tuple Value
