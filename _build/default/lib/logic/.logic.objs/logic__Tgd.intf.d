lib/logic/tgd.mli: Atom Format Relational Set String_set
