lib/logic/term.ml: Format Map Set String
