lib/logic/term.mli: Format Map Set
