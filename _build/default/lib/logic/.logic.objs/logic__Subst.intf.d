lib/logic/subst.mli: Atom Format Relational Term
