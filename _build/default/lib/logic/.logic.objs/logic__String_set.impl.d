lib/logic/string_set.ml: Format Set String
