lib/logic/atom.mli: Format Relational String_set Term
