lib/logic/tgd.ml: Array Atom Format Hashtbl List Printf Set Stdlib String_set Term
