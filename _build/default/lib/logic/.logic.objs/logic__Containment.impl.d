lib/logic/containment.ml: Array Atom Cq Instance List Relational String_set Subst Term Tuple Value
