open Relational
module Smap = Map.Make (String)

type t = Value.t Smap.t

let empty = Smap.empty

let singleton v x = Smap.singleton v x

let bind v x s =
  match Smap.find_opt v s with
  | None -> Some (Smap.add v x s)
  | Some x' -> if Value.equal x x' then Some s else None

let bind_exn v x s =
  match bind v x s with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Subst.bind_exn: conflicting binding for %s" v)

let find_opt v s = Smap.find_opt v s

let mem v s = Smap.mem v s

let apply_term s = function
  | Term.Cst c -> Some (Value.Const c)
  | Term.Var v -> Smap.find_opt v s

let apply_atom s (a : Atom.t) =
  let n = Array.length a.args in
  let values = Array.make n (Value.Const "") in
  let rec loop i =
    if i >= n then Some { Tuple.rel = a.rel; values }
    else
      match apply_term s a.args.(i) with
      | None -> None
      | Some x ->
        values.(i) <- x;
        loop (i + 1)
  in
  loop 0

let apply_atom_exn s a =
  match apply_atom s a with
  | Some t -> t
  | None -> invalid_arg "Subst.apply_atom_exn: unbound variable"

let bindings s = Smap.bindings s

let cardinal s = Smap.cardinal s

let compare a b = Smap.compare Value.compare a b

let equal a b = compare a b = 0

let compatible a b =
  Smap.for_all
    (fun v x -> match Smap.find_opt v b with None -> true | Some y -> Value.equal x y)
    a

let merge a b =
  if compatible a b then Some (Smap.union (fun _ x _ -> Some x) a b) else None

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (v, x) -> Format.fprintf ppf "%s↦%a" v Value.pp x))
    (bindings s)
