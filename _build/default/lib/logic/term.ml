type t =
  | Var of string
  | Cst of string

let compare a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Cst x, Cst y -> String.compare x y
  | Var _, Cst _ -> -1
  | Cst _, Var _ -> 1

let equal a b = compare a b = 0

let is_var = function Var _ -> true | Cst _ -> false

let var_name = function Var v -> Some v | Cst _ -> None

let pp ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Cst c -> Format.pp_print_string ppf c

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
