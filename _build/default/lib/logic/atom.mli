(** Relational atoms: a relation name applied to terms. *)

type t = {
  rel : string;
  args : Term.t array;
}

val make : string -> Term.t list -> t

val arity : t -> int

val vars : t -> String_set.t
(** Variable names occurring in the atom, in a set. *)

val vars_in_order : t -> string list
(** Variable names in first-occurrence order, without duplicates. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val conforms_to : Relational.Schema.t -> t -> bool
(** [true] iff the schema has a relation of this name with matching arity. *)

val pp : Format.formatter -> t -> unit
