(** Source-to-target tuple-generating dependencies (st tgds).

    An st tgd is a formula [∀x̄ (φ(x̄) → ∃ȳ ψ(x̄, ȳ))] where [φ] is a
    conjunction of atoms over the source schema and [ψ] a conjunction of
    atoms over the target schema. Variables of the head not occurring in the
    body are implicitly existentially quantified. A tgd is {e full} when it
    has no existential variables.

    The [size] of a tgd — the measure used in the selection objective — is
    the number of atoms plus the number of existential variables. This is the
    measure consistent with the appendix's worked example (size 3 for a
    copy-with-existential tgd with two atoms, size 4 for its three-atom
    variant). *)

type t = private {
  label : string;  (** a display label, e.g. ["theta1"] *)
  body : Atom.t list;  (** conjunction over the source schema; non-empty *)
  head : Atom.t list;  (** conjunction over the target schema; non-empty *)
}

val make : ?label : string -> body : Atom.t list -> head : Atom.t list -> unit -> t
(** Raises [Invalid_argument] if [body] or [head] is empty. The default label
    is ["tgd"]. *)

val relabel : string -> t -> t

val body_vars : t -> String_set.t

val head_vars : t -> String_set.t

val frontier_vars : t -> String_set.t
(** Variables shared between body and head (exported variables). *)

val existential_vars : t -> String_set.t
(** Head variables not bound by the body. *)

val is_full : t -> bool

val size : t -> int
(** [#atoms + #existential variables]. *)

val well_formed :
  source : Relational.Schema.t -> target : Relational.Schema.t -> t -> (unit, string) result
(** Checks that every body atom conforms to the source schema and every head
    atom to the target schema. *)

val canonicalize : t -> t
(** Renames variables to [v0, v1, ...] in first-occurrence order (body before
    head, left to right) and sorts neither body nor head; two tgds that are
    identical up to a variable renaming that preserves atom order
    canonicalise identically. *)

val equal_up_to_renaming : t -> t -> bool
(** Structural equality modulo variable names, insensitive to the order of
    atoms within body and head. *)

val equal : t -> t -> bool
(** Strict structural equality (including variable names); labels ignored. *)

val compare : t -> t -> int
(** Order compatible with {!equal}; labels ignored. *)

val rename_apart : suffix : string -> t -> t
(** Appends [suffix] to every variable name, so that two tgds can be used in
    the same scope without capture. *)

val pp : Format.formatter -> t -> unit
(** Prints as [label: body_atoms -> head_atoms]. *)

val to_string : t -> string

module Set : Set.S with type elt = t
