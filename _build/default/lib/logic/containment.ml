open Relational

let frozen v = Value.Const ("__frz_" ^ v)

let freeze atoms =
  List.map
    (fun (a : Atom.t) ->
      let values =
        Array.map
          (function Term.Var v -> frozen v | Term.Cst c -> Value.Const c)
          a.Atom.args
      in
      { Tuple.rel = a.Atom.rel; values })
    atoms

let contained_in ?(distinguished = String_set.empty) q q' =
  let canonical = Instance.of_tuples (freeze q) in
  let pinned =
    String_set.fold
      (fun v acc -> Subst.bind_exn v (frozen v) acc)
      distinguished Subst.empty
  in
  Cq.extensions canonical pinned q' <> []

let equivalent ?distinguished q q' =
  contained_in ?distinguished q q' && contained_in ?distinguished q' q

let vars_of atoms =
  List.fold_left (fun acc a -> String_set.union acc (Atom.vars a)) String_set.empty atoms

let minimize ?(distinguished = String_set.empty) atoms =
  let removable kept atom =
    let rest = List.filter (fun a -> a != atom) kept in
    rest <> []
    && String_set.subset
         (String_set.inter distinguished (vars_of kept))
         (vars_of rest)
    && equivalent ~distinguished rest kept
  in
  let rec shrink kept =
    match List.find_opt (removable kept) kept with
    | None -> kept
    | Some atom -> shrink (List.filter (fun a -> a != atom) kept)
  in
  shrink atoms
