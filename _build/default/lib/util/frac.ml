type t = {
  num : int;
  den : int;  (* invariant: den > 0, gcd (|num|, den) = 1 *)
}

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let make num den =
  if den = 0 then invalid_arg "Frac.make: zero denominator";
  let sign = if den < 0 then -1 else 1 in
  let num = sign * num and den = sign * den in
  let g = gcd (abs num) den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let zero = { num = 0; den = 1 }

let one = { num = 1; den = 1 }

let of_int n = { num = n; den = 1 }

let num t = t.num

let den t = t.den

let add a b = make ((a.num * b.den) + (b.num * a.den)) (a.den * b.den)

let sub a b = add a { b with num = -b.num }

let mul a b = make (a.num * b.num) (a.den * b.den)

let div a b = if b.num = 0 then raise Division_by_zero else make (a.num * b.den) (a.den * b.num)

let neg a = { a with num = -a.num }

let compare a b = Int.compare (a.num * b.den) (b.num * a.den)

let equal a b = compare a b = 0

let min a b = if compare a b <= 0 then a else b

let max a b = if compare a b >= 0 then a else b

let ( < ) a b = compare a b < 0

let ( <= ) a b = compare a b <= 0

let sum l = List.fold_left add zero l

let is_zero a = a.num = 0

let to_float a = float_of_int a.num /. float_of_int a.den

let pp ppf a =
  if a.den = 1 then Format.pp_print_int ppf a.num
  else if Stdlib.( < ) (abs a.num) a.den then
    Format.fprintf ppf "%d/%d" a.num a.den
  else begin
    let whole = a.num / a.den in
    let rest = abs (a.num mod a.den) in
    Format.fprintf ppf "%d %d/%d" whole rest a.den
  end

let to_string a = Format.asprintf "%a" pp a
