let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sqrt (ss /. float_of_int (List.length xs - 1))

let sorted xs = List.sort Float.compare xs

let percentile p xs =
  match sorted xs with
  | [] -> 0.
  | s ->
    let n = List.length s in
    let rank =
      int_of_float (ceil (p /. 100. *. float_of_int n)) |> Stdlib.max 1 |> Stdlib.min n
    in
    List.nth s (rank - 1)

let median xs = percentile 50. xs

let fmean f xs = mean (List.map f xs)

let harmonic a b = if a = 0. || b = 0. then 0. else 2. *. a *. b /. (a +. b)
