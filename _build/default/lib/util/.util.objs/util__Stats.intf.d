lib/util/stats.mli:
