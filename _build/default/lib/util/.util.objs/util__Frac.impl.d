lib/util/frac.ml: Format Int List Stdlib
