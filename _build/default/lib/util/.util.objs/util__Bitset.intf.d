lib/util/bitset.mli:
