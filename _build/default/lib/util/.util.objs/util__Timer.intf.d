lib/util/timer.mli:
