lib/util/frac.mli: Format
