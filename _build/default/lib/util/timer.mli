(** Wall-clock timing helper for the experiment harness. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock time in seconds. *)

val time_ms : (unit -> 'a) -> 'a * float
(** Like {!time}, in milliseconds. *)
