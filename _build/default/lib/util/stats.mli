(** Small numerical helpers for the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stddev : float list -> float
(** Sample standard deviation (n-1 denominator); 0 for fewer than two
    points. *)

val median : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], nearest-rank method. *)

val fmean : ('a -> float) -> 'a list -> float
(** Mean of a projection. *)

val harmonic : float -> float -> float
(** Harmonic mean of two numbers; 0 when either is 0 (the F1 convention). *)
