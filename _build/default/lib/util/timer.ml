let time f =
  let start = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. start)

let time_ms f =
  let x, s = time f in
  (x, s *. 1000.)
