lib/core/setcover.ml: Array Atom Exact Frac Instance List Logic Objective Problem Relational String Term Tgd Tuple Util
