lib/core/preprocess.mli: Problem Relational Util
