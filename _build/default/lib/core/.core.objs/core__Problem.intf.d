lib/core/problem.mli: Cover Logic Relational Util
