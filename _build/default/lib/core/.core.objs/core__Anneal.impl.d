lib/core/anneal.ml: Array Float Frac Objective Problem Random Util
