lib/core/full.ml: Array Bitset Frac Fun Int List Logic Printf Problem Util
