lib/core/local_search.ml: Array Frac Greedy Objective Problem Random Util
