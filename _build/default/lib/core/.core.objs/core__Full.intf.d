lib/core/full.mli: Logic Problem Relational Util
