lib/core/objective.ml: Array Cover Format Frac Problem Util
