lib/core/local_search.mli: Problem
