lib/core/anneal.mli: Problem
