lib/core/tune.mli: Problem
