lib/core/objective.mli: Format Problem Util
