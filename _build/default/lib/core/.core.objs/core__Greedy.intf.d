lib/core/greedy.mli: Problem Util
