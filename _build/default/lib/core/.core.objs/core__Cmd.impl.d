lib/core/cmd.ml: Array Float Frac Fun Greedy List Local_search Logic Objective Preprocess Printf Problem Psl Util
