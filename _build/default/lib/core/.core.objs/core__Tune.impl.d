lib/core/tune.ml: Array Cmd List Problem
