lib/core/problem.ml: Array Cover Frac Hashtbl Instance List Logic Relational Tuple Util
