lib/core/setcover.mli: Problem Util
