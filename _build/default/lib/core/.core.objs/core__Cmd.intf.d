lib/core/cmd.mli: Problem Psl Util
