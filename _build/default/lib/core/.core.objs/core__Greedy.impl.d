lib/core/greedy.ml: Array Frac Objective Problem Util
