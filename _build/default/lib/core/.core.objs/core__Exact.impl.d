lib/core/exact.ml: Array Frac Greedy Objective Printf Problem Util
