lib/core/preprocess.ml: Array Frac Hashtbl List Objective Problem Relational Util
