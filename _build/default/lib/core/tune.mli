(** Calibrating the objective weights from labelled scenarios.

    The appendix's weighted objective leaves [(w1, w2, w3)] open; when
    scenarios with known gold selections are available (e.g. generated ones
    whose MG is known), the weights can be tuned to them. This module does
    the simple, robust thing: grid search, scoring a weight triple by the
    number of per-candidate agreements between CMD's selection and the gold
    selection, summed over the training problems. *)

val default_grid : (int * int * int) list
(** The cross product of {1, 2, 4} per weight, 27 triples. *)

val score :
  Problem.t -> gold : bool array -> Problem.weights -> int
(** Agreements (Hamming similarity) between [Cmd.solve]'s selection under
    the given weights and [gold]. *)

val grid_search :
  ?grid : (int * int * int) list ->
  training : (Problem.t * bool array) list ->
  unit ->
  Problem.weights
(** The best-scoring weights on the training set; ties break towards the
    earlier grid entry, and the default grid puts [(1,1,1)] first. Raises
    [Invalid_argument] on an empty training set or grid. *)
