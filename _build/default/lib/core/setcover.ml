open Relational
open Logic
open Util

type instance = {
  universe : string list;
  sets : (string * string list) list;
  budget : int;
}

let validate inst =
  if inst.budget <= 0 then Error "budget must be positive"
  else if inst.sets = [] then Error "no sets"
  else
    let u = List.sort_uniq String.compare inst.universe in
    let bad =
      List.concat_map
        (fun (name, elems) ->
          List.filter_map
            (fun e ->
              if List.mem e u then None else Some (name ^ " contains " ^ e))
            elems)
        inst.sets
    in
    match bad with [] -> Ok () | msg :: _ -> Error (msg ^ " outside the universe")

type reduction = {
  problem : Problem.t;
  m : int;
  set_names : string array;
}

let reduce inst =
  (match validate inst with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Setcover.reduce: " ^ msg));
  let universe = List.sort_uniq String.compare inst.universe in
  let m = 2 * inst.budget in
  let domain = List.init (m + 1) (fun i -> string_of_int (i + 1)) in
  let instance_i =
    Instance.of_tuples
      (List.concat_map
         (fun (name, elems) ->
           List.concat_map
             (fun x -> List.map (fun y -> Tuple.of_consts name [ x; y ]) domain)
             (List.sort_uniq String.compare elems))
         inst.sets)
  in
  let j =
    Instance.of_tuples
      (List.concat_map
         (fun x -> List.map (fun y -> Tuple.of_consts "U" [ x; y ]) domain)
         universe)
  in
  let candidates =
    List.map
      (fun (name, _) ->
        Tgd.make ~label:("select_" ^ name)
          ~body:[ Atom.make name [ Term.Var "X"; Term.Var "Y" ] ]
          ~head:[ Atom.make "U" [ Term.Var "X"; Term.Var "Y" ] ]
          ())
      inst.sets
  in
  let problem = Problem.make ~source:instance_i ~j candidates in
  { problem; m; set_names = Array.of_list (List.map fst inst.sets) }

let closed_form inst ~selected =
  let universe = List.sort_uniq String.compare inst.universe in
  let m = 2 * inst.budget in
  let covered =
    List.concat_map
      (fun (name, elems) -> if List.mem name selected then elems else [])
      inst.sets
    |> List.sort_uniq String.compare
  in
  Frac.of_int
    (((m + 1) * (List.length universe - List.length covered))
    + (2 * List.length selected))

let cover_of_selection red sel =
  Problem.indices_of_selection sel |> List.map (fun i -> red.set_names.(i))

let decide inst =
  let red = reduce inst in
  let sel = Exact.solve ~max_candidates:20 red.problem in
  Frac.(Objective.value red.problem sel <= Frac.of_int red.m)
