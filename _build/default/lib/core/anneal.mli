(** Simulated annealing over selections — a randomised baseline.

    Standard geometric-cooling annealing on the selection mask: a random
    single-candidate flip is accepted when it improves the objective, or
    with probability [exp(−Δ/T)] otherwise. Deterministic for a fixed seed.
    Mostly useful as an independent check on the other solvers in tests and
    ablations; on this problem the greedy/CMD pipeline is both faster and
    better. *)

type options = {
  iterations : int;  (** total proposals; default 2000 *)
  initial_temperature : float;  (** default 2.0 *)
  cooling : float;  (** geometric factor per proposal; default 0.998 *)
  seed : int;  (** default 0 *)
}

val default_options : options

val solve : ?options : options -> Problem.t -> bool array
(** The best selection visited (which is at least as good as the final
    state). *)
