(** Preprocessing (Section III-C of the paper).

    Target tuples that no candidate covers contribute a constant
    [w1·(1 − 0) = w1] to the objective whatever the selection is; they can be
    removed before optimisation and their total added back to reported
    values. This shrinks the ground model the solvers work on. *)

type reduced = {
  problem : Problem.t;  (** the problem restricted to coverable tuples *)
  constant : Util.Frac.t;
      (** objective mass of the removed certainly-unexplained tuples *)
  removed_tuples : Relational.Tuple.t list;
}

val run : Problem.t -> reduced

val full_value : reduced -> bool array -> Util.Frac.t
(** The objective of a selection on the original problem:
    [Objective.value reduced.problem sel + reduced.constant]. *)
