let default_grid =
  (* (1,1,1) first so that ties keep the paper's default *)
  let axis = [ 1; 2; 4 ] in
  List.concat_map
    (fun w1 ->
      List.concat_map
        (fun w2 -> List.map (fun w3 -> (w1, w2, w3)) axis)
        axis)
    axis

let score p ~gold weights =
  let r = Cmd.solve (Problem.with_weights p weights) in
  let agreements = ref 0 in
  Array.iteri
    (fun i b -> if b = gold.(i) then incr agreements)
    r.Cmd.selection;
  !agreements

let grid_search ?(grid = default_grid) ~training () =
  if training = [] then invalid_arg "Tune.grid_search: empty training set";
  if grid = [] then invalid_arg "Tune.grid_search: empty grid";
  let best = ref None in
  List.iter
    (fun (w1, w2, w3) ->
      let weights =
        { Problem.w_unexplained = w1; w_errors = w2; w_size = w3 }
      in
      let total =
        List.fold_left
          (fun acc (p, gold) -> acc + score p ~gold weights)
          0 training
      in
      match !best with
      | Some (_, best_total) when best_total >= total -> ()
      | Some _ | None -> best := Some (weights, total))
    grid;
  match !best with
  | Some (weights, _) -> weights
  | None -> assert false
