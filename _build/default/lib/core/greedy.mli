(** Greedy mapping selection — the non-collective baseline.

    Forward pass: repeatedly add the candidate with the largest strict
    decrease of the objective. Backward pass: repeatedly drop any selected
    candidate whose removal decreases the objective. Terminates at a local
    optimum w.r.t. single additions/removals. *)

val solve : Problem.t -> bool array

val marginal_gain :
  Problem.t -> best : Util.Frac.t array -> int -> Util.Frac.t
(** [marginal_gain p ~best c]: the objective decrease obtained by adding
    candidate [c] when the current per-tuple coverage is [best] (positive =
    improvement). Exposed for testing and reuse. *)
