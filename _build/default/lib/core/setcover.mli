(** The SET COVER reduction of Theorem 1 (NP-hardness of mapping selection).

    A SET COVER instance [(U, R, n)] is turned into a mapping-selection
    instance with [m = 2n], auxiliary domain [D = {1, ..., m+1}], source
    relations [Ri/2], a single target relation [U/2], candidates
    [Ri(X,Y) → U(X,Y)], [I = ∪ Ri × D] and [J = U × D]. A selection [M]
    then has objective

    {v  F(M) = (m+1) · (|U| − |∪_{θi ∈ M} Ri|) + 2·|M|  v}

    so a cover of size ≤ n exists iff the optimum is ≤ m. *)

type instance = {
  universe : string list;  (** U; duplicates are ignored *)
  sets : (string * string list) list;  (** named subsets Ri ⊆ U *)
  budget : int;  (** n *)
}

val validate : instance -> (unit, string) result
(** Every set must be a subset of the universe and the budget positive. *)

type reduction = {
  problem : Problem.t;
  m : int;  (** the decision threshold [2·budget] *)
  set_names : string array;  (** candidate index → set name *)
}

val reduce : instance -> reduction
(** Raises [Invalid_argument] if {!validate} fails. *)

val closed_form : instance -> selected : string list -> Util.Frac.t
(** The objective value predicted by the proof for a selection of sets. *)

val decide : instance -> bool
(** Does a cover with at most [budget] sets exist? Decided by solving the
    constructed mapping-selection problem exactly — exponential in the
    number of sets, as the reduction promises nothing better. *)

val cover_of_selection : reduction -> bool array -> string list
(** Names of the sets a selection picks. *)
