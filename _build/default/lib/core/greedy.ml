open Util

let marginal_gain (p : Problem.t) ~best c =
  let coverage_gain =
    Array.fold_left
      (fun acc (ti, d) ->
        if Frac.(best.(ti) < d) then Frac.add acc (Frac.sub d best.(ti)) else acc)
      Frac.zero p.Problem.covers.(c)
  in
  Frac.sub
    (Frac.mul (Frac.of_int p.Problem.weights.Problem.w_unexplained) coverage_gain)
    p.Problem.cand_cost.(c)

let forward p =
  let m = Problem.num_candidates p in
  let sel = Array.make m false in
  let best = Array.make (Problem.num_tuples p) Frac.zero in
  let continue_ = ref true in
  while !continue_ do
    let pick = ref None in
    for c = 0 to m - 1 do
      if not sel.(c) then begin
        let gain = marginal_gain p ~best c in
        if Frac.(Frac.zero < gain) then
          match !pick with
          | Some (_, g) when Frac.(gain <= g) -> ()
          | Some _ | None -> pick := Some (c, gain)
      end
    done;
    match !pick with
    | None -> continue_ := false
    | Some (c, _) ->
      sel.(c) <- true;
      Array.iter
        (fun (ti, d) -> if Frac.(best.(ti) < d) then best.(ti) <- d)
        p.Problem.covers.(c)
  done;
  sel

let backward p sel =
  let improved = ref true in
  let current = ref (Objective.value p sel) in
  while !improved do
    improved := false;
    for c = 0 to Array.length sel - 1 do
      if sel.(c) then begin
        sel.(c) <- false;
        let v = Objective.value p sel in
        if Frac.(v < !current) then begin
          current := v;
          improved := true
        end
        else sel.(c) <- true
      end
    done
  done;
  sel

let solve p = backward p (forward p)
