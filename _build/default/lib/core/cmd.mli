(** CMD — collective mapping discovery, the paper's approach.

    The selection problem is translated into a ground probabilistic-soft-logic
    program over decision atoms [in(θ) ∈ [0,1]] (one per candidate) and
    auxiliary atoms [explained(t) ∈ [0,1]] (one per coverable target tuple):

    - soft, weight [w1]: [explained(t)] — a linear loss [1 − y_t];
    - hard: [explained(t) ≤ Σ_θ covers(θ,t)·in(θ)] — the Łukasiewicz
      disjunction of the candidates' support;
    - soft, weight [w2·errors(θ) + w3·size(θ)]: [¬in(θ)] — a linear loss
      [cost_θ · x_θ].

    MAP inference on the resulting hinge-loss MRF (consensus ADMM,
    {!Psl.Admm}) yields fractional [in(θ)] values; a discrete mapping is
    recovered by conditional rounding — candidates are visited in decreasing
    fractional value and kept iff they improve the exact discrete objective —
    followed by a single-flip repair pass. Certainly-unexplained tuples are
    removed before the model is built ({!Preprocess}).

    The LP relaxation uses the capped-sum semantics of Łukasiewicz
    disjunction for [explains]; the rounding and all reported objective
    values use the exact [max] semantics of Eq. 9. *)

type rounding =
  | Conditional  (** greedy acceptance in fractional order (default) *)
  | Threshold of float  (** keep candidates with [in(θ) ≥ τ] *)

type options = {
  admm : Psl.Admm.options;
  rounding : rounding;
  repair : bool;  (** run the single-flip repair pass (default true) *)
  squared : bool;
      (** square the soft potentials, PSL's default flavour; the objective
          relaxed is then the squared variant of Eq. 9 (default false) *)
}

val default_options : options

type result = {
  selection : bool array;
  objective : Util.Frac.t;  (** exact objective of [selection] *)
  fractional : float array;  (** the MAP values of [in(θ)], per candidate *)
  admm : Psl.Admm.outcome;
  num_vars : int;  (** variables of the ground model *)
  num_potentials : int;
  num_constraints : int;
}

val solve : ?options : options -> Problem.t -> result

val build_model : ?squared : bool -> Problem.t -> Psl.Hlmrf.t
(** The ground HL-MRF for a (typically preprocessed) problem, with variables
    [0..m-1] the candidates and [m..m+T-1] the explained-atoms. Exposed for
    testing and for the scaling benchmarks. *)
