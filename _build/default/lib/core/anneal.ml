open Util

type options = {
  iterations : int;
  initial_temperature : float;
  cooling : float;
  seed : int;
}

let default_options =
  { iterations = 2000; initial_temperature = 2.0; cooling = 0.998; seed = 0 }

let solve ?(options = default_options) (p : Problem.t) =
  let m = Problem.num_candidates p in
  if m = 0 then [||]
  else begin
    let rng = Random.State.make [| options.seed |] in
    let sel = Array.make m false in
    let current = ref (Objective.value p sel) in
    let best = Array.copy sel in
    let best_v = ref !current in
    let temperature = ref options.initial_temperature in
    for _ = 1 to options.iterations do
      let c = Random.State.int rng m in
      sel.(c) <- not sel.(c);
      let v = Objective.value p sel in
      let delta = Frac.to_float (Frac.sub v !current) in
      let accept =
        delta <= 0.
        || Random.State.float rng 1. < exp (-.delta /. Float.max 1e-9 !temperature)
      in
      if accept then begin
        current := v;
        if Frac.(v < !best_v) then begin
          best_v := v;
          Array.blit sel 0 best 0 m
        end
      end
      else sel.(c) <- not sel.(c);
      temperature := !temperature *. options.cooling
    done;
    best
  end
