open Util

type reduced = {
  problem : Problem.t;
  constant : Frac.t;
  removed_tuples : Relational.Tuple.t list;
}

let run (p : Problem.t) =
  let n_tuples = Array.length p.Problem.tuples in
  let coverable = Array.make n_tuples false in
  Array.iter
    (fun cover_list -> Array.iter (fun (ti, _) -> coverable.(ti) <- true) cover_list)
    p.Problem.covers;
  let keep = Array.to_list (Array.mapi (fun i b -> (i, b)) coverable) in
  let kept_indices = List.filter_map (fun (i, b) -> if b then Some i else None) keep in
  let removed =
    List.filter_map
      (fun (i, b) -> if b then None else Some p.Problem.tuples.(i))
      keep
  in
  let remap = Hashtbl.create (List.length kept_indices) in
  List.iteri (fun fresh old -> Hashtbl.replace remap old fresh) kept_indices;
  let problem =
    {
      p with
      Problem.tuples =
        Array.of_list (List.map (fun i -> p.Problem.tuples.(i)) kept_indices);
      covers =
        Array.map
          (fun cover_list ->
            Array.map (fun (ti, d) -> (Hashtbl.find remap ti, d)) cover_list)
          p.Problem.covers;
    }
  in
  let constant =
    Frac.of_int (p.Problem.weights.Problem.w_unexplained * List.length removed)
  in
  { problem; constant; removed_tuples = removed }

let full_value r sel = Frac.add (Objective.value r.problem sel) r.constant
