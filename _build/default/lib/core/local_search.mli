(** Single-flip local search over selections.

    [improve] repeatedly applies the best improving single candidate flip
    until none exists; [solve] runs [improve] from the greedy solution and,
    optionally, from additional random restarts, returning the best local
    optimum found. *)

val improve : Problem.t -> bool array -> bool array
(** Returns a (possibly) improved copy; the argument is not mutated. *)

val solve : ?restarts : int -> ?seed : int -> Problem.t -> bool array
(** Default: no restarts (greedy start only), seed 0. *)
