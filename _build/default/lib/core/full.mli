(** The Eq. 4 fast path: mapping selection for full st tgds.

    When every candidate is full, the chase produces only ground tuples, the
    coverage degrees are 0/1 and each candidate's error count is independent
    of the rest of the selection. Eq. 9 degenerates to Eq. 4:

    {v  F(M) = w1·|J \ covered(M)| + Σ_{θ∈M} (w2·err_θ + w3·size_θ)  v}

    — a weighted partial-set-cover objective. This module represents each
    candidate's covered-tuple set as a bitset, evaluates [F] in a handful of
    word operations, and provides a lazy-greedy solver and a bitset-based
    branch and bound that are much faster than the general machinery (the
    scaling comparison is experiment E13). Theorem 1's reduction targets
    exactly this problem. *)

type t

val of_problem : Problem.t -> (t, string) result
(** Specialises a general problem. Fails with the offending label if some
    candidate is not full. *)

val make :
  ?weights : Problem.weights ->
  source : Relational.Instance.t ->
  j : Relational.Instance.t ->
  Logic.Tgd.t list ->
  (t, string) result
(** Builds the specialised problem directly. *)

val num_candidates : t -> int

val value : t -> bool array -> Util.Frac.t
(** [F(M)]; agrees with {!Objective.value} on the originating problem. *)

val greedy : t -> bool array
(** Lazy greedy (priority queue over upper bounds on marginal gains) with a
    removal pass; equivalent results to {!Greedy.solve}, faster. *)

val exact : ?max_candidates : int -> t -> bool array
(** Branch and bound with bitset coverage bounds (default limit 30 — the
    specialised bound tolerates more candidates than {!Exact.solve}). *)

val problem : t -> Problem.t
(** The originating general problem (for metrics etc.). *)
