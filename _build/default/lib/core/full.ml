open Util

type t = {
  problem : Problem.t;
  cover_sets : Bitset.t array;  (* per candidate: set of covered tuple indices *)
  n_tuples : int;
  w1 : int;
}

let of_problem (p : Problem.t) =
  let not_full =
    Array.fold_left
      (fun acc (tgd : Logic.Tgd.t) ->
        match acc with
        | Some _ -> acc
        | None -> if Logic.Tgd.is_full tgd then None else Some tgd.Logic.Tgd.label)
      None p.Problem.candidates
  in
  match not_full with
  | Some label -> Error (Printf.sprintf "candidate %s is not full" label)
  | None ->
    let n_tuples = Problem.num_tuples p in
    let cover_sets =
      Array.map
        (fun cover_list ->
          let b = Bitset.create n_tuples in
          Array.iter
            (fun (ti, d) ->
              (* full tgds cover at degree exactly 1 *)
              if Frac.equal d Frac.one then Bitset.set b ti)
            cover_list;
          b)
        p.Problem.covers
    in
    Ok
      {
        problem = p;
        cover_sets;
        n_tuples;
        w1 = p.Problem.weights.Problem.w_unexplained;
      }

let make ?weights ~source ~j candidates =
  of_problem (Problem.make ?weights ~source ~j candidates)

let num_candidates t = Array.length t.cover_sets

let problem t = t.problem

let selection_cost t sel =
  let cost = ref Frac.zero in
  Array.iteri
    (fun c selected ->
      if selected then cost := Frac.add !cost t.problem.Problem.cand_cost.(c))
    sel;
  !cost

let covered_of t sel =
  let covered = Bitset.create t.n_tuples in
  Array.iteri
    (fun c selected -> if selected then Bitset.union_into covered t.cover_sets.(c))
    sel;
  covered

let value t sel =
  let covered = covered_of t sel in
  Frac.add
    (Frac.of_int (t.w1 * (t.n_tuples - Bitset.count covered)))
    (selection_cost t sel)

(* Lazy greedy: marginal gains only decrease as coverage grows (coverage is
   submodular), so a stale priority that is still the best after refresh is
   exact. *)
let greedy t =
  let m = num_candidates t in
  let sel = Array.make m false in
  let covered = Bitset.create t.n_tuples in
  let gain c =
    let new_tuples = Bitset.union_count covered t.cover_sets.(c) - Bitset.count covered in
    Frac.sub (Frac.of_int (t.w1 * new_tuples)) t.problem.Problem.cand_cost.(c)
  in
  (* priority list of (candidate, cached gain), kept sorted descending *)
  let module Pq = struct
    let compare (_, g1) (_, g2) = Frac.compare g2 g1
  end in
  let queue = ref (List.sort Pq.compare (List.init m (fun c -> (c, gain c)))) in
  let rec step () =
    match !queue with
    | [] -> ()
    | (c, cached) :: rest ->
      let fresh = gain c in
      if Frac.(fresh <= Frac.zero) && Frac.(cached <= Frac.zero) then ()
      else if Frac.equal fresh cached then begin
        (* cached value is exact and the largest: take it *)
        sel.(c) <- true;
        Bitset.union_into covered t.cover_sets.(c);
        queue := rest;
        step ()
      end
      else begin
        (* stale: refresh, re-sort, and look at the new head *)
        queue := List.sort Pq.compare ((c, fresh) :: rest);
        step ()
      end
  in
  step ();
  (* removal pass, as in the general greedy *)
  let current = ref (value t sel) in
  let improved = ref true in
  while !improved do
    improved := false;
    for c = 0 to m - 1 do
      if sel.(c) then begin
        sel.(c) <- false;
        let v = value t sel in
        if Frac.(v < !current) then begin
          current := v;
          improved := true
        end
        else sel.(c) <- true
      end
    done
  done;
  sel

let exact ?(max_candidates = 30) t =
  let m = num_candidates t in
  if m > max_candidates then
    invalid_arg
      (Printf.sprintf "Full.exact: %d candidates exceed the limit of %d" m
         max_candidates);
  (* order by decreasing coverage so that bounds tighten early *)
  let order =
    List.init m Fun.id
    |> List.sort (fun a b ->
           Int.compare (Bitset.count t.cover_sets.(b)) (Bitset.count t.cover_sets.(a)))
    |> Array.of_list
  in
  (* suffix_cover.(i) = union of cover sets of candidates order.(i..) *)
  let suffix_cover = Array.make (m + 1) (Bitset.create t.n_tuples) in
  for i = m - 1 downto 0 do
    let b = Bitset.copy suffix_cover.(i + 1) in
    Bitset.union_into b t.cover_sets.(order.(i));
    suffix_cover.(i) <- b
  done;
  let sel = Array.make m false in
  let best_sel = ref (greedy t) in
  let best_val = ref (value t !best_sel) in
  let covered = Bitset.create t.n_tuples in
  let rec branch i cost (covered : Bitset.t) =
    if i >= m then begin
      let v = Frac.add (Frac.of_int (t.w1 * (t.n_tuples - Bitset.count covered))) cost in
      if Frac.(v < !best_val) then begin
        best_val := v;
        best_sel := Array.copy sel
      end
    end
    else begin
      let optimistic_cover = Bitset.union_count covered suffix_cover.(i) in
      let bound =
        Frac.add (Frac.of_int (t.w1 * (t.n_tuples - optimistic_cover))) cost
      in
      if Frac.(bound < !best_val) then begin
        let c = order.(i) in
        (* include *)
        sel.(c) <- true;
        let covered' = Bitset.copy covered in
        Bitset.union_into covered' t.cover_sets.(c);
        branch (i + 1) (Frac.add cost t.problem.Problem.cand_cost.(c)) covered';
        sel.(c) <- false;
        (* exclude *)
        branch (i + 1) cost covered
      end
    end
  in
  branch 0 Frac.zero covered;
  !best_sel
