open Util

let improve p start =
  let sel = Array.copy start in
  let current = ref (Objective.value p sel) in
  let improved = ref true in
  while !improved do
    improved := false;
    let best_flip = ref None in
    for c = 0 to Array.length sel - 1 do
      sel.(c) <- not sel.(c);
      let v = Objective.value p sel in
      sel.(c) <- not sel.(c);
      if Frac.(v < !current) then
        match !best_flip with
        | Some (_, bv) when Frac.(bv <= v) -> ()
        | Some _ | None -> best_flip := Some (c, v)
    done;
    match !best_flip with
    | None -> ()
    | Some (c, v) ->
      sel.(c) <- not sel.(c);
      current := v;
      improved := true
  done;
  sel

let solve ?(restarts = 0) ?(seed = 0) p =
  let m = Problem.num_candidates p in
  let best = ref (improve p (Greedy.solve p)) in
  let best_v = ref (Objective.value p !best) in
  let rng = Random.State.make [| seed |] in
  for _ = 1 to restarts do
    let start = Array.init m (fun _ -> Random.State.bool rng) in
    let candidate = improve p start in
    let v = Objective.value p candidate in
    if Frac.(v < !best_v) then begin
      best := candidate;
      best_v := v
    end
  done;
  !best
