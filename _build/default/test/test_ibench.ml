open Relational
open Ibench

let default = Config.default

let gen ?(config = default) () = Generator.generate config

let only kind n =
  { default with Config.primitives = [ (kind, n) ]; seed = 7 }

let structure_tests =
  [
    Alcotest.test_case "ground truth is always among the candidates" `Quick
      (fun () ->
        let s = gen () in
        Alcotest.(check int)
          "one index per MG tgd"
          (List.length s.Scenario.ground_truth)
          (List.length s.Scenario.ground_truth_indices);
        Alcotest.(check int)
          "indices distinct"
          (List.length s.Scenario.ground_truth_indices)
          (List.length (List.sort_uniq Int.compare s.Scenario.ground_truth_indices));
        List.iter
          (fun i ->
            let c = List.nth s.Scenario.candidates i in
            Alcotest.(check bool)
              "index points at an MG member" true
              (List.exists (Logic.Tgd.equal_up_to_renaming c) s.Scenario.ground_truth))
          s.Scenario.ground_truth_indices);
    Alcotest.test_case "candidates and MG are well-formed" `Quick (fun () ->
        let s = gen () in
        List.iter
          (fun tgd ->
            Alcotest.(check bool)
              "well-formed" true
              (Logic.Tgd.well_formed ~source:s.Scenario.source
                 ~target:s.Scenario.target tgd
              = Ok ()))
          (s.Scenario.candidates @ s.Scenario.ground_truth));
    Alcotest.test_case "clean data example satisfies the ground truth" `Quick
      (fun () ->
        let s = gen () in
        Alcotest.(check bool)
          "satisfies" true
          (Chase.satisfies_all ~source:s.Scenario.instance_i
             ~target:s.Scenario.j_clean s.Scenario.ground_truth));
    Alcotest.test_case "instances are ground" `Quick (fun () ->
        let s = gen () in
        Alcotest.(check bool) "I" true (Instance.is_ground s.Scenario.instance_i);
        Alcotest.(check bool) "J" true (Instance.is_ground s.Scenario.instance_j);
        Alcotest.(check bool) "J clean" true (Instance.is_ground s.Scenario.j_clean));
    Alcotest.test_case "without noise, J equals the clean chase" `Quick
      (fun () ->
        let s = gen () in
        Alcotest.(check bool)
          "equal" true
          (Instance.equal s.Scenario.instance_j s.Scenario.j_clean));
  ]

let per_primitive_tests =
  List.map
    (fun kind ->
      Alcotest.test_case
        (Printf.sprintf "%s scenario shape" (Primitive.to_string kind))
        `Quick
        (fun () ->
          let s = gen ~config:(only kind 1) () in
          let expected_tgt =
            match kind with
            | Primitive.VP -> 2
            | Primitive.VNM -> 3
            | Primitive.CP | Primitive.ADD | Primitive.DL | Primitive.ADL
            | Primitive.ME ->
              1
          in
          let expected_src =
            match kind with
            | Primitive.ME -> 2
            | Primitive.CP | Primitive.ADD | Primitive.DL | Primitive.ADL
            | Primitive.VP | Primitive.VNM ->
              1
          in
          Alcotest.(check int) "target rels" expected_tgt (Schema.size s.Scenario.target);
          Alcotest.(check int) "source rels" expected_src (Schema.size s.Scenario.source);
          Alcotest.(check int) "one MG tgd" 1 (List.length s.Scenario.ground_truth);
          Alcotest.(check bool)
            "J nonempty" false
            (Instance.is_empty s.Scenario.instance_j)))
    Primitive.all

let determinism_tests =
  [
    Alcotest.test_case "same seed, same scenario" `Quick (fun () ->
        let s1 = gen () and s2 = gen () in
        Alcotest.(check bool)
          "J equal" true
          (Instance.equal s1.Scenario.instance_j s2.Scenario.instance_j);
        Alcotest.(check int)
          "same candidates"
          (List.length s1.Scenario.candidates)
          (List.length s2.Scenario.candidates));
    Alcotest.test_case "different seed, different data" `Quick (fun () ->
        let s1 = gen () in
        let s2 = gen ~config:{ default with Config.seed = 43 } () in
        Alcotest.(check bool)
          "I differs" false
          (Instance.equal s1.Scenario.instance_i s2.Scenario.instance_i));
  ]

let noise_tests =
  [
    Alcotest.test_case "pi_errors only deletes" `Quick (fun () ->
        let config = Config.with_noise ~pi_errors:50 default in
        let s = gen ~config () in
        Alcotest.(check bool)
          "J subset of clean" true
          (Instance.subset s.Scenario.instance_j s.Scenario.j_clean);
        Alcotest.(check bool)
          "something deleted" true
          (Instance.cardinal s.Scenario.instance_j
          < Instance.cardinal s.Scenario.j_clean));
    Alcotest.test_case "pi_unexplained only adds" `Quick (fun () ->
        (* spurious candidates require noise correspondences, otherwise there
           may be nothing to add; use pi_corresp too *)
        let config = Config.with_noise ~pi_corresp:100 ~pi_unexplained:100 default in
        let s = gen ~config () in
        Alcotest.(check bool)
          "clean subset of J" true
          (Instance.subset s.Scenario.j_clean s.Scenario.instance_j));
    Alcotest.test_case "pi_corresp adds correspondences and candidates" `Quick
      (fun () ->
        let clean = gen () in
        let noisy = gen ~config:(Config.with_noise ~pi_corresp:100 default) () in
        Alcotest.(check bool)
          "more correspondences" true
          (List.length noisy.Scenario.correspondences
          > List.length clean.Scenario.correspondences);
        Alcotest.(check bool)
          "at least as many candidates" true
          (List.length noisy.Scenario.candidates
          >= List.length clean.Scenario.candidates));
    Alcotest.test_case "added tuples are unexplained by the ground truth"
      `Quick (fun () ->
        let config = Config.with_noise ~pi_corresp:100 ~pi_unexplained:100 default in
        let s = gen ~config () in
        let added = Instance.diff s.Scenario.instance_j s.Scenario.j_clean in
        (* no MG trigger tuple can produce an added tuple: they came from
           spurious candidates only *)
        let { Chase.triggers; _ } =
          Chase.run s.Scenario.instance_i s.Scenario.ground_truth
        in
        let mg_tuples =
          List.concat_map (fun (tr : Chase.Trigger.t) -> tr.Chase.Trigger.tuples) triggers
        in
        Instance.iter
          (fun t ->
            Alcotest.(check bool)
              (Format.asprintf "%a not from MG" Tuple.pp t)
              false
              (List.exists (fun pattern -> Cover.matches ~pattern t) mg_tuples))
          added);
  ]

let select_pct_tests =
  let rng () = Random.State.make [| 1 |] in
  [
    Alcotest.test_case "0 percent selects nothing" `Quick (fun () ->
        Alcotest.(check int)
          "none" 0
          (List.length (Generator.select_pct (rng ()) 0 [ 1; 2; 3 ])));
    Alcotest.test_case "100 percent selects everything" `Quick (fun () ->
        Alcotest.(check int)
          "all" 3
          (List.length (Generator.select_pct (rng ()) 100 [ 1; 2; 3 ])));
    Alcotest.test_case "50 percent of 10 is 5" `Quick (fun () ->
        Alcotest.(check int)
          "five" 5
          (List.length (Generator.select_pct (rng ()) 50 (List.init 10 Fun.id))));
    Alcotest.test_case "selection is a subset" `Quick (fun () ->
        let l = List.init 20 Fun.id in
        List.iter
          (fun x -> Alcotest.(check bool) "member" true (List.mem x l))
          (Generator.select_pct (rng ()) 30 l));
  ]

let config_tests =
  [
    Alcotest.test_case "validate rejects bad percentages" `Quick (fun () ->
        Alcotest.(check bool)
          "over 100" true
          (Config.validate { default with Config.pi_errors = 101 } <> Ok ());
        Alcotest.(check bool)
          "negative" true
          (Config.validate { default with Config.pi_corresp = -1 } <> Ok ()));
    Alcotest.test_case "validate rejects tiny arity" `Quick (fun () ->
        Alcotest.(check bool)
          "arity 1" true
          (Config.validate { default with Config.src_arity = 1 } <> Ok ()));
    Alcotest.test_case "validate rejects delete range wiping the relation"
      `Quick (fun () ->
        Alcotest.(check bool)
          "wipes" true
          (Config.validate
             { default with Config.src_arity = 2; range_delete = (2, 2) }
          <> Ok ()));
    Alcotest.test_case "default is valid" `Quick (fun () ->
        Alcotest.(check bool) "ok" true (Config.validate default = Ok ()));
  ]

let property_tests =
  let open QCheck2 in
  let seed_gen = Gen.int_range 0 10_000 in
  [
    Test.make ~name:"MG always within candidates (random seeds)" ~count:20
      seed_gen (fun seed ->
        let s = gen ~config:{ default with Config.seed } () in
        List.length s.Scenario.ground_truth
        = List.length s.Scenario.ground_truth_indices);
    Test.make ~name:"noisy scenarios keep MG (random seeds)" ~count:10
      (Gen.pair seed_gen (Gen.int_range 0 100)) (fun (seed, pct) ->
        let config =
          Config.with_noise ~pi_corresp:pct ~pi_errors:pct ~pi_unexplained:pct
            { default with Config.seed }
        in
        let s = gen ~config () in
        List.for_all
          (fun i -> i < List.length s.Scenario.candidates)
          s.Scenario.ground_truth_indices);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ibench"
    [
      ("structure", structure_tests);
      ("per-primitive", per_primitive_tests);
      ("determinism", determinism_tests);
      ("noise", noise_tests);
      ("select-pct", select_pct_tests);
      ("config", config_tests);
      ("properties", property_tests);
    ]
