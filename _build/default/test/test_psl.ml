open Psl

let close ?(tol = 1e-3) () = Alcotest.float tol

let solve model = Admm.solve model

let linexpr_tests =
  [
    Alcotest.test_case "make merges duplicates and drops zeros" `Quick
      (fun () ->
        let e = Linexpr.make [ (0, 1.); (0, 2.); (1, 0.) ] 0.5 in
        Alcotest.(check (list int)) "vars" [ 0 ] (Linexpr.vars e);
        Alcotest.check (close ()) "eval" 3.5 (Linexpr.eval e [| 1.0; 9. |]));
    Alcotest.test_case "norm2" `Quick (fun () ->
        let e = Linexpr.make [ (0, 3.); (1, 4.) ] 0. in
        Alcotest.check (close ()) "25" 25. (Linexpr.norm2 e));
  ]

(* hinge w·max(0, Σ coeffs + b) *)
let hinge ?(squared = false) w coeffs b =
  Hlmrf.Hinge { weight = w; expr = Linexpr.make coeffs b; squared }

let linear w coeffs b = Hlmrf.Linear { weight = w; expr = Linexpr.make coeffs b }

let admm_tests =
  [
    Alcotest.test_case "interval of zero energy" `Quick (fun () ->
        (* max(0, 0.3−x) + max(0, x−0.7): any x in [0.3, 0.7] is optimal *)
        let m = Hlmrf.create ~num_vars:1 in
        Hlmrf.add_potential m (hinge 1. [ (0, -1.) ] 0.3);
        Hlmrf.add_potential m (hinge 1. [ (0, 1.) ] (-0.7));
        let r = solve m in
        Alcotest.(check bool) "converged" true r.Admm.converged;
        Alcotest.check (close ()) "zero energy" 0. r.Admm.energy;
        Alcotest.(check bool)
          "inside interval" true
          (r.Admm.solution.(0) >= 0.29 && r.Admm.solution.(0) <= 0.71));
    Alcotest.test_case "competing linear pulls" `Quick (fun () ->
        (* 2x + max(0, 1−x): optimum x = 0 with energy 1 *)
        let m = Hlmrf.create ~num_vars:1 in
        Hlmrf.add_potential m (linear 2. [ (0, 1.) ] 0.);
        Hlmrf.add_potential m (hinge 1. [ (0, -1.) ] 1.);
        let r = solve m in
        Alcotest.check (close ()) "x=0" 0. r.Admm.solution.(0);
        Alcotest.check (close ()) "energy 1" 1. r.Admm.energy);
    Alcotest.test_case "equality constraint pins the variable" `Quick
      (fun () ->
        let m = Hlmrf.create ~num_vars:1 in
        Hlmrf.add_potential m (linear 1. [ (0, 1.) ] 0.);
        Hlmrf.add_constraint m (Hlmrf.Eq (Linexpr.make [ (0, 1.) ] (-0.6)));
        let r = solve m in
        Alcotest.check (close ()) "x=0.6" 0.6 r.Admm.solution.(0));
    Alcotest.test_case "inequality constraint caps the maximizer" `Quick
      (fun () ->
        (* minimize −x subject to x ≤ 0.4 *)
        let m = Hlmrf.create ~num_vars:1 in
        Hlmrf.add_potential m (linear (-1.) [ (0, 1.) ] 0.);
        Hlmrf.add_constraint m (Hlmrf.Leq (Linexpr.make [ (0, 1.) ] (-0.4)));
        let r = solve m in
        Alcotest.check (close ()) "x=0.4" 0.4 r.Admm.solution.(0));
    Alcotest.test_case "squared hinge balances quadratically" `Quick (fun () ->
        (* max(0, x−0)² pulls to 0, max(0, 0.8−x)² pulls to 0.8: minimise
           x² + (0.8−x)² → x = 0.4, energy 0.32 *)
        let m = Hlmrf.create ~num_vars:1 in
        Hlmrf.add_potential m (hinge ~squared:true 1. [ (0, 1.) ] 0.);
        Hlmrf.add_potential m (hinge ~squared:true 1. [ (0, -1.) ] 0.8);
        let r = solve m in
        Alcotest.check (close ~tol:1e-2 ()) "x=0.4" 0.4 r.Admm.solution.(0);
        Alcotest.check (close ~tol:1e-2 ()) "energy" 0.32 r.Admm.energy);
    Alcotest.test_case "two-variable chain" `Quick (fun () ->
        (* strong pulls x→0.8, y→0.2 plus weak hinge max(0, x−y) *)
        let m = Hlmrf.create ~num_vars:2 in
        Hlmrf.add_potential m (hinge 10. [ (0, -1.) ] 0.8);
        Hlmrf.add_potential m (hinge 10. [ (1, 1.) ] (-0.2));
        Hlmrf.add_potential m (hinge 1. [ (0, 1.); (1, -1.) ] 0.);
        let r = solve m in
        Alcotest.check (close ~tol:5e-3 ()) "x" 0.8 r.Admm.solution.(0);
        Alcotest.check (close ~tol:5e-3 ()) "y" 0.2 r.Admm.solution.(1);
        Alcotest.check (close ~tol:1e-2 ()) "energy" 0.6 r.Admm.energy);
    Alcotest.test_case "box clipping" `Quick (fun () ->
        (* minimize −3x: pushed to the box boundary x = 1 *)
        let m = Hlmrf.create ~num_vars:1 in
        Hlmrf.add_potential m (linear (-3.) [ (0, 1.) ] 0.);
        let r = solve m in
        Alcotest.check (close ()) "x=1" 1. r.Admm.solution.(0));
    Alcotest.test_case "empty model converges immediately" `Quick (fun () ->
        let m = Hlmrf.create ~num_vars:3 in
        let r = solve m in
        Alcotest.(check bool) "converged" true r.Admm.converged;
        Alcotest.check (close ()) "zero" 0. r.Admm.energy);
  ]

(* Random constraint-free HL-MRFs; ADMM should never be beaten by projected
   subgradient descent by more than a small tolerance. *)
let random_model_gen =
  let open QCheck2.Gen in
  let* n = int_range 2 4 in
  let coeff = oneofl [ -1.; -0.5; 0.5; 1. ] in
  let potential_gen =
    let* k = int_range 1 n in
    let* idx = list_size (return k) (int_range 0 (n - 1)) in
    let* cs = list_size (return k) coeff in
    let* b = float_range (-1.) 1. in
    let* w = float_range 0.1 2. in
    let* squared = bool in
    let expr = Linexpr.make (List.combine idx cs) b in
    if expr.Linexpr.coeffs = [] then
      return (hinge w [ (0, 1.) ] b)
    else return (Hlmrf.Hinge { weight = w; expr; squared })
  in
  let* pots = list_size (int_range 1 6) potential_gen in
  let m = Hlmrf.create ~num_vars:n in
  List.iter (Hlmrf.add_potential m) pots;
  return m

let property_tests =
  let open QCheck2 in
  [
    Test.make ~name:"ADMM matches projected subgradient descent" ~count:60
      random_model_gen (fun m ->
        let admm = Admm.solve m in
        let gd = Gradient.solve ~iterations:3000 m in
        admm.Admm.energy <= Hlmrf.energy m gd +. 0.02);
    Test.make ~name:"ADMM solutions are feasible" ~count:60 random_model_gen
      (fun m ->
        let admm = Admm.solve m in
        Hlmrf.feasible ~tol:1e-4 m admm.Admm.solution);
  ]
  |> List.map QCheck_alcotest.to_alcotest

(* --- rule layer -------------------------------------------------------- *)

let smokers_db friends =
  Database.create
    [ Predicate.make ~closed:true "friend" 2; Predicate.make "smokes" 1 ]
  |> Database.observe_all
       (List.map (fun (a, b) -> (Gatom.make "friend" [ a; b ], 1.0)) friends)

let influence_rule =
  Rule.make ~label:"influence" ~weight:(Some 1.)
    ~body:[ Rule.pos "friend" [ Rule.V "X"; Rule.V "Y" ]; Rule.pos "smokes" [ Rule.V "X" ] ]
    ~head:[ Rule.pos "smokes" [ Rule.V "Y" ] ]
    ()

let grounding_tests =
  [
    Alcotest.test_case "one grounding per closed fact" `Quick (fun () ->
        let db = smokers_db [ ("a", "b"); ("b", "c") ] in
        let g = Grounding.ground db [ influence_rule ] in
        Alcotest.(check int) "2 groundings" 2 g.Grounding.groundings;
        Alcotest.(check int) "3 open atoms" 3 (Array.length g.Grounding.atoms));
    Alcotest.test_case "influence propagates smoking" `Quick (fun () ->
        let db = smokers_db [ ("a", "b") ] in
        let reward =
          Rule.make ~label:"fact" ~weight:(Some 2.) ~body:[]
            ~head:[ Rule.pos "smokes" [ Rule.C "a" ] ]
            ()
        in
        let prior =
          Rule.make ~label:"prior" ~weight:(Some 0.5)
            ~body:[ Rule.pos "smokes" [ Rule.V "X" ]; Rule.pos "friend" [ Rule.V "X"; Rule.V "Y" ] ]
            ~head:[] ()
        in
        ignore prior;
        let g = Grounding.ground db [ influence_rule; reward ] in
        let r = Grounding.map_inference g in
        let truth name =
          Option.get (Grounding.truth_in g r.Admm.solution (Gatom.make "smokes" [ name ]))
        in
        Alcotest.check (close ~tol:1e-2 ()) "a smokes" 1.0 (truth "a");
        Alcotest.check (close ~tol:1e-2 ()) "b smokes" 1.0 (truth "b"));
    Alcotest.test_case "hard rule forces truth" `Quick (fun () ->
        let db =
          Database.create [ Predicate.make "p" 1 ]
        in
        let force =
          Rule.make ~label:"force" ~weight:None ~body:[]
            ~head:[ Rule.pos "p" [ Rule.C "a" ] ]
            ()
        in
        let discourage =
          Rule.make ~label:"discourage" ~weight:(Some 5.)
            ~body:[ Rule.pos "p" [ Rule.C "a" ] ]
            ~head:[] ()
        in
        let g = Grounding.ground db [ force; discourage ] in
        let r = Grounding.map_inference g in
        Alcotest.check (close ~tol:1e-2 ()) "forced" 1.0
          (Option.get (Grounding.truth_in g r.Admm.solution (Gatom.make "p" [ "a" ]))));
    Alcotest.test_case "violated constant hard rule raises" `Quick (fun () ->
        let db = Database.create [ Predicate.make ~closed:true "q" 1 ] in
        let impossible =
          Rule.make ~label:"impossible" ~weight:None ~body:[]
            ~head:[ Rule.pos "q" [ Rule.C "a" ] ]
            ()
        in
        Alcotest.check_raises "raises"
          (Grounding.Unsatisfiable_hard_rule "impossible") (fun () ->
            ignore (Grounding.ground db [ impossible ])));
    Alcotest.test_case "trivially satisfied groundings are dropped" `Quick
      (fun () ->
        let db = smokers_db [ ("a", "b") ] in
        let tautology =
          Rule.make ~label:"taut" ~weight:(Some 1.)
            ~body:[ Rule.pos "friend" [ Rule.V "X"; Rule.V "Y" ] ]
            ~head:[ Rule.pos "friend" [ Rule.V "X"; Rule.V "Y" ] ]
            ()
        in
        let g = Grounding.ground db [ tautology ] in
        Alcotest.(check int) "0 groundings" 0 g.Grounding.groundings);
    Alcotest.test_case "unbound variable is rejected" `Quick (fun () ->
        let db = smokers_db [] in
        let bad =
          Rule.make ~label:"bad" ~weight:(Some 1.)
            ~body:[ Rule.pos "smokes" [ Rule.V "X" ] ]
            ~head:[ Rule.pos "smokes" [ Rule.V "Y" ] ]
            ()
        in
        Alcotest.(check bool)
          "raises" true
          (match Grounding.ground db [ bad ] with
          | exception Invalid_argument _ -> true
          | _ -> false));
    Alcotest.test_case "soft truth values weight the hinge" `Quick (fun () ->
        (* friend(a,b) observed at 0.5: the influence grounding becomes
           max(0, 0.5 + smokes(a) − 1 − smokes(b)) *)
        let db =
          Database.create
            [ Predicate.make ~closed:true "friend" 2; Predicate.make "smokes" 1 ]
          |> Database.observe (Gatom.make "friend" [ "a"; "b" ]) 0.5
        in
        let reward =
          Rule.make ~label:"fact" ~weight:(Some 10.) ~body:[]
            ~head:[ Rule.pos "smokes" [ Rule.C "a" ] ]
            ()
        in
        let discourage_b =
          Rule.make ~label:"disc" ~weight:(Some 1.)
            ~body:[ Rule.pos "smokes" [ Rule.C "b" ] ]
            ~head:[] ()
        in
        (* smokes(b) only needs to reach 0.5 to satisfy the influence rule *)
        let g = Grounding.ground db [ influence_rule; reward; discourage_b ] in
        let r = Grounding.map_inference g in
        let b = Option.get (Grounding.truth_in g r.Admm.solution (Gatom.make "smokes" [ "b" ])) in
        Alcotest.(check bool) "b near 0.5 or lower" true (b <= 0.55));
  ]

let database_tests =
  [
    Alcotest.test_case "closed world truth" `Quick (fun () ->
        let db = smokers_db [ ("a", "b") ] in
        Alcotest.check (close ()) "observed" 1.0
          (Database.truth_closed db (Gatom.make "friend" [ "a"; "b" ]));
        Alcotest.check (close ()) "unobserved" 0.0
          (Database.truth_closed db (Gatom.make "friend" [ "b"; "a" ])));
    Alcotest.test_case "observe validates" `Quick (fun () ->
        let db = smokers_db [] in
        Alcotest.(check bool)
          "bad arity" true
          (match Database.observe (Gatom.make "friend" [ "a" ]) 1.0 db with
          | exception Invalid_argument _ -> true
          | _ -> false);
        Alcotest.(check bool)
          "bad value" true
          (match Database.observe (Gatom.make "friend" [ "a"; "b" ]) 1.5 db with
          | exception Invalid_argument _ -> true
          | _ -> false));
  ]

(* --- weight learning ---------------------------------------------------- *)

let learning_tests =
  [
    Alcotest.test_case "influence weight grows, prior shrinks" `Quick
      (fun () ->
        (* labels say everyone smokes, but the initial weights make the MAP
           state non-smoking: learning must strengthen influence and weaken
           the prior until the MAP matches the labels *)
        let db =
          Database.create
            [ Predicate.make ~closed:true "friend" 2; Predicate.make "smokes" 1 ]
          |> Database.observe_all
               [
                 (Gatom.make "friend" [ "a"; "b" ], 1.0);
                 (Gatom.make "friend" [ "b"; "c" ], 1.0);
                 (* training labels for the open predicate *)
                 (Gatom.make "smokes" [ "a" ], 1.0);
                 (Gatom.make "smokes" [ "b" ], 1.0);
                 (Gatom.make "smokes" [ "c" ], 1.0);
               ]
        in
        let anchor =
          Rule.make ~label:"anchor" ~weight:None ~body:[]
            ~head:[ Rule.pos "smokes" [ Rule.C "a" ] ]
            ()
        in
        let influence =
          Rule.make ~label:"influence" ~weight:(Some 0.1)
            ~body:
              [ Rule.pos "friend" [ Rule.V "X"; Rule.V "Y" ];
                Rule.pos "smokes" [ Rule.V "X" ] ]
            ~head:[ Rule.pos "smokes" [ Rule.V "Y" ] ]
            ()
        in
        let prior =
          Rule.make ~label:"prior" ~weight:(Some 2.0)
            ~body:[ Rule.pos "smokes" [ Rule.V "Y" ];
                    Rule.pos "friend" [ Rule.V "X"; Rule.V "Y" ] ]
            ~head:[] ()
        in
        let rules = [ anchor; influence; prior ] in
        let learned = Learn.learn db rules in
        let weight_of label =
          Option.get
            (List.find_map
               (fun (r : Rule.t) ->
                 if String.equal r.Rule.label label then r.Rule.weight else None)
               learned)
        in
        Alcotest.(check bool) "influence grew" true (weight_of "influence" > 0.1);
        Alcotest.(check bool) "prior shrank" true (weight_of "prior" < 2.0);
        (* after learning, MAP inference reproduces the labels *)
        let g = Grounding.ground db learned in
        let r = Grounding.map_inference g in
        List.iter
          (fun p ->
            let truth =
              Option.get (Grounding.truth_in g r.Admm.solution (Gatom.make "smokes" [ p ]))
            in
            Alcotest.(check bool)
              (Printf.sprintf "%s smokes after learning" p)
              true (truth > 0.9))
          [ "a"; "b"; "c" ]);
    Alcotest.test_case "hard rules keep their weightlessness" `Quick (fun () ->
        let db = Database.create [ Predicate.make "p" 1 ] in
        let hard =
          Rule.make ~label:"hard" ~weight:None ~body:[]
            ~head:[ Rule.pos "p" [ Rule.C "a" ] ]
            ()
        in
        match Learn.learn db [ hard ] with
        | [ r ] -> Alcotest.(check bool) "still hard" true (r.Rule.weight = None)
        | _ -> Alcotest.fail "one rule expected");
    Alcotest.test_case "weights never fall below the floor" `Quick (fun () ->
        (* a rule contradicted by every label is driven to the floor, not
           below *)
        let db =
          Database.create [ Predicate.make ~closed:true "q" 1; Predicate.make "p" 1 ]
          |> Database.observe (Gatom.make "q" [ "a" ]) 1.0
          |> Database.observe (Gatom.make "p" [ "a" ]) 0.0
        in
        let wrong =
          Rule.make ~label:"wrong" ~weight:(Some 1.0)
            ~body:[ Rule.pos "q" [ Rule.V "X" ] ]
            ~head:[ Rule.pos "p" [ Rule.V "X" ] ]
            ()
        in
        match Learn.learn db [ wrong ] with
        | [ r ] ->
          Alcotest.(check bool)
            "floored" true
            (match r.Rule.weight with Some w -> w >= 0.0099 && w < 1.0 | None -> false)
        | _ -> Alcotest.fail "one rule expected");
    Alcotest.test_case "observed_assignment reads open observations" `Quick
      (fun () ->
        let db =
          Database.create [ Predicate.make ~closed:true "q" 1; Predicate.make "p" 1 ]
          |> Database.observe (Gatom.make "q" [ "a" ]) 1.0
          |> Database.observe (Gatom.make "p" [ "a" ]) 0.75
        in
        let rule =
          Rule.make ~weight:(Some 1.0)
            ~body:[ Rule.pos "q" [ Rule.V "X" ] ]
            ~head:[ Rule.pos "p" [ Rule.V "X" ] ]
            ()
        in
        let g = Grounding.ground db [ rule ] in
        let obs = Learn.observed_assignment db g in
        Alcotest.(check int) "one var" 1 (Array.length obs);
        Alcotest.(check (float 1e-9)) "label" 0.75 obs.(0));
    Alcotest.test_case "rule_distances sums per rule" `Quick (fun () ->
        let db =
          Database.create [ Predicate.make ~closed:true "q" 1; Predicate.make "p" 1 ]
          |> Database.observe (Gatom.make "q" [ "a" ]) 1.0
          |> Database.observe (Gatom.make "q" [ "b" ]) 1.0
        in
        let rule =
          Rule.make ~weight:(Some 1.0)
            ~body:[ Rule.pos "q" [ Rule.V "X" ] ]
            ~head:[ Rule.pos "p" [ Rule.V "X" ] ]
            ()
        in
        let g = Grounding.ground db [ rule ] in
        (* with p(a)=p(b)=0, both groundings have distance 1 *)
        let d = Grounding.rule_distances g ~num_rules:1 [| 0.; 0. |] in
        Alcotest.(check (float 1e-9)) "2.0" 2.0 d.(0));
  ]

(* --- program text format ------------------------------------------------ *)

let program_text = String.concat "\n"
  [
    "# comment";
    "predicate friend/2 closed";
    "predicate smokes/1";
    "observe friend(a, b) = 1.0";
    "observe smokes(a) = 0.8";
    "rule influence 2.0: friend(X, Y) & smokes(X) -> smokes(Y)";
    "rule prior 0.5: smokes(X) & friend(X, Y) ->";
    "rule anchor hard: -> smokes(a)";
    "rule sq 1.5 squared: smokes(X) & friend(X, Y) -> smokes(X)";
  ]

let program_tests =
  [
    Alcotest.test_case "parse the full feature set" `Quick (fun () ->
        match Program.parse program_text with
        | Error e -> Alcotest.failf "%a" Program.pp_error e
        | Ok p ->
          Alcotest.(check int) "2 predicates" 2 (List.length p.Program.predicates);
          Alcotest.(check int) "2 observations" 2 (List.length p.Program.observations);
          Alcotest.(check int) "4 rules" 4 (List.length p.Program.rules);
          let anchor = List.nth p.Program.rules 2 in
          Alcotest.(check bool) "hard" true (anchor.Rule.weight = None);
          let sq = List.nth p.Program.rules 3 in
          Alcotest.(check bool) "squared" true sq.Rule.squared);
    Alcotest.test_case "roundtrip through pp" `Quick (fun () ->
        match Program.parse program_text with
        | Error e -> Alcotest.failf "%a" Program.pp_error e
        | Ok p -> (
          match Program.parse (Format.asprintf "%a" Program.pp p) with
          | Error e -> Alcotest.failf "reparse: %a" Program.pp_error e
          | Ok p' ->
            Alcotest.(check int)
              "rules survive"
              (List.length p.Program.rules)
              (List.length p'.Program.rules);
            Alcotest.(check int)
              "observations survive"
              (List.length p.Program.observations)
              (List.length p'.Program.observations)));
    Alcotest.test_case "database applies the observations" `Quick (fun () ->
        match Program.parse program_text with
        | Error e -> Alcotest.failf "%a" Program.pp_error e
        | Ok p ->
          let db = Program.database p in
          Alcotest.check (close ()) "friend" 1.0
            (Database.truth_closed db (Gatom.make "friend" [ "a"; "b" ]));
          Alcotest.(check bool)
            "open label" true
            (Database.truth db (Gatom.make "smokes" [ "a" ]) = Some 0.8));
    Alcotest.test_case "errors carry line numbers" `Quick (fun () ->
        let bad = "predicate p/1\nnot a directive\n" in
        match Program.parse bad with
        | Ok _ -> Alcotest.fail "expected error"
        | Error e -> Alcotest.(check int) "line 2" 2 e.Program.line);
    Alcotest.test_case "bad weight rejected" `Quick (fun () ->
        Alcotest.(check bool)
          "rejected" true
          (Result.is_error (Program.parse "rule r nan-ish!: p(X) -> p(X)\n")));
    Alcotest.test_case "program is solvable end to end" `Quick (fun () ->
        match Program.parse program_text with
        | Error e -> Alcotest.failf "%a" Program.pp_error e
        | Ok p ->
          let db = Program.database p in
          let g = Grounding.ground db p.Program.rules in
          let r = Grounding.map_inference g in
          Alcotest.(check bool) "converged" true r.Admm.converged);
  ]

let admm_options_tests =
  [
    Alcotest.test_case "different rho, same optimum" `Quick (fun () ->
        let build () =
          let m = Hlmrf.create ~num_vars:2 in
          Hlmrf.add_potential m (hinge 3. [ (0, -1.) ] 0.7);
          Hlmrf.add_potential m (linear 1. [ (0, 1.); (1, 1.) ] 0.);
          Hlmrf.add_potential m (hinge 2. [ (1, 1.); (0, -1.) ] 0.1);
          m
        in
        let solve rho =
          (Admm.solve ~options:{ Admm.default_options with Admm.rho } (build ()))
            .Admm.energy
        in
        Alcotest.(check (float 5e-3)) "rho 0.5 vs 2" (solve 0.5) (solve 2.0));
    Alcotest.test_case "max_iter caps the iterations" `Quick (fun () ->
        let m = Hlmrf.create ~num_vars:1 in
        Hlmrf.add_potential m (hinge 1. [ (0, -1.) ] 0.5);
        let r =
          Admm.solve ~options:{ Admm.default_options with Admm.max_iter = 3 } m
        in
        Alcotest.(check bool) "at most 3" true (r.Admm.iterations <= 3));
    Alcotest.test_case "solver is deterministic" `Quick (fun () ->
        let m = Hlmrf.create ~num_vars:2 in
        Hlmrf.add_potential m (hinge 1. [ (0, 1.); (1, -1.) ] 0.2);
        Hlmrf.add_potential m (linear 0.5 [ (1, 1.) ] 0.);
        let a = Admm.solve m and b = Admm.solve m in
        Alcotest.(check bool) "same solution" true (a.Admm.solution = b.Admm.solution));
  ]

let () =
  Alcotest.run "psl"
    [
      ("linexpr", linexpr_tests);
      ("admm", admm_tests);
      ("admm-properties", property_tests);
      ("database", database_tests);
      ("grounding", grounding_tests);
      ("learning", learning_tests);
      ("program", program_tests);
      ("admm-options", admm_options_tests);
    ]
