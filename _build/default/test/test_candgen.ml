open Relational
open Logic
open Candgen

let v = Fixtures.v

(* The appendix schemas plus the target foreign key task.oid -> org.oid that
   makes {task, org} a logical association. *)
let tgt_fkeys = [ Fkey.make ~from:("task", "oid") ~to_:("org", "oid") ]

let corrs =
  [
    Correspondence.make ~src:("proj", "pname") ~tgt:("task", "pname");
    Correspondence.make ~src:("proj", "emp") ~tgt:("task", "emp");
    Correspondence.make ~src:("proj", "org") ~tgt:("org", "oname");
  ]

let fkey_tests =
  [
    Alcotest.test_case "validate" `Quick (fun () ->
        let fk = List.hd tgt_fkeys in
        Alcotest.(check bool)
          "ok" true
          (Fkey.validate Fixtures.target_schema fk = Ok ());
        let bad = Fkey.make ~from:("task", "nope") ~to_:("org", "oid") in
        Alcotest.(check bool)
          "bad attr" true
          (Fkey.validate Fixtures.target_schema bad <> Ok ()));
    Alcotest.test_case "outgoing" `Quick (fun () ->
        Alcotest.(check int) "task" 1 (List.length (Fkey.outgoing tgt_fkeys "task"));
        Alcotest.(check int) "org" 0 (List.length (Fkey.outgoing tgt_fkeys "org")));
  ]

let correspondence_tests =
  [
    Alcotest.test_case "validate endpoints" `Quick (fun () ->
        Alcotest.(check bool)
          "ok" true
          (Correspondence.validate ~source:Fixtures.source_schema
             ~target:Fixtures.target_schema (List.hd corrs)
          = Ok ());
        let bad = Correspondence.make ~src:("proj", "zz") ~tgt:("task", "pname") in
        Alcotest.(check bool)
          "bad" true
          (Correspondence.validate ~source:Fixtures.source_schema
             ~target:Fixtures.target_schema bad
          <> Ok ()));
  ]

let assoc_tests =
  [
    Alcotest.test_case "fkey closure joins task with org" `Quick (fun () ->
        let a =
          Assoc.of_relation ~schema:Fixtures.target_schema ~fkeys:tgt_fkeys "task"
        in
        Alcotest.(check (list string)) "relations" [ "task"; "org" ] a.Assoc.relations;
        (* the join variable is shared between task.oid and org.oid *)
        let v1 = Option.get (Assoc.var_of a "task" "oid") in
        let v2 = Option.get (Assoc.var_of a "org" "oid") in
        Alcotest.(check string) "joined" v1 v2);
    Alcotest.test_case "relation without outgoing fkeys is a singleton" `Quick
      (fun () ->
        let a =
          Assoc.of_relation ~schema:Fixtures.target_schema ~fkeys:tgt_fkeys "org"
        in
        Alcotest.(check (list string)) "relations" [ "org" ] a.Assoc.relations);
    Alcotest.test_case "cyclic foreign keys terminate" `Quick (fun () ->
        let schema =
          Schema.of_relations
            [ Relation.make "a" [ "x"; "y" ]; Relation.make "b" [ "u"; "w" ] ]
        in
        let fkeys =
          [
            Fkey.make ~from:("a", "y") ~to_:("b", "u");
            Fkey.make ~from:("b", "w") ~to_:("a", "x");
          ]
        in
        let a = Assoc.of_relation ~schema ~fkeys "a" in
        Alcotest.(check int) "two relations" 2 (List.length a.Assoc.relations);
        (* cycle also unifies b.w with a.x *)
        let v1 = Option.get (Assoc.var_of a "b" "w") in
        let v2 = Option.get (Assoc.var_of a "a" "x") in
        Alcotest.(check string) "cycle join" v1 v2);
    Alcotest.test_case "all produces one association per relation" `Quick
      (fun () ->
        let assocs = Assoc.all ~schema:Fixtures.target_schema ~fkeys:tgt_fkeys in
        Alcotest.(check int) "two" 2 (List.length assocs));
  ]

let generate_candidates () =
  Generate.generate ~source:Fixtures.source_schema ~target:Fixtures.target_schema
    ~src_fkeys:[] ~tgt_fkeys ~corrs

let generate_tests =
  [
    Alcotest.test_case "appendix candidates: join tgd and partial org tgd"
      `Quick (fun () ->
        let cands = generate_candidates () in
        Alcotest.(check int) "two candidates" 2 (List.length cands);
        Alcotest.(check bool)
          "theta3 generated" true
          (List.exists (Tgd.equal_up_to_renaming Fixtures.theta3) cands));
    Alcotest.test_case "no correspondences, no candidates" `Quick (fun () ->
        let cands =
          Generate.generate ~source:Fixtures.source_schema
            ~target:Fixtures.target_schema ~src_fkeys:[] ~tgt_fkeys ~corrs:[]
        in
        Alcotest.(check int) "none" 0 (List.length cands));
    Alcotest.test_case "candidates are well-formed" `Quick (fun () ->
        List.iter
          (fun tgd ->
            Alcotest.(check bool)
              "well-formed" true
              (Tgd.well_formed ~source:Fixtures.source_schema
                 ~target:Fixtures.target_schema tgd
              = Ok ()))
          (generate_candidates ()));
    Alcotest.test_case "labels are theta1..thetaN" `Quick (fun () ->
        List.iteri
          (fun i (tgd : Tgd.t) ->
            Alcotest.(check string)
              "label"
              (Printf.sprintf "theta%d" (i + 1))
              tgd.Tgd.label)
          (generate_candidates ()));
    Alcotest.test_case "without the target fkey, no join candidate" `Quick
      (fun () ->
        let cands =
          Generate.generate ~source:Fixtures.source_schema
            ~target:Fixtures.target_schema ~src_fkeys:[] ~tgt_fkeys:[] ~corrs
        in
        (* associations are singletons: proj->task and proj->org only *)
        Alcotest.(check int) "two" 2 (List.length cands);
        Alcotest.(check bool)
          "no theta3" false
          (List.exists (Tgd.equal_up_to_renaming Fixtures.theta3) cands);
        Alcotest.(check bool)
          "theta1 present" true
          (List.exists (Tgd.equal_up_to_renaming Fixtures.theta1) cands));
    Alcotest.test_case "duplicate correspondences do not duplicate candidates"
      `Quick (fun () ->
        let cands =
          Generate.generate ~source:Fixtures.source_schema
            ~target:Fixtures.target_schema ~src_fkeys:[] ~tgt_fkeys
            ~corrs:(corrs @ corrs)
        in
        Alcotest.(check int) "still two" 2 (List.length cands));
  ]

let roundtrip_tests =
  [
    Alcotest.test_case "correspondences_of_tgd recovers the evidence" `Quick
      (fun () ->
        let got =
          Generate.correspondences_of_tgd ~source:Fixtures.source_schema
            ~target:Fixtures.target_schema Fixtures.theta3
        in
        Alcotest.(check int) "three" 3 (List.length got);
        List.iter
          (fun c ->
            Alcotest.(check bool)
              (Format.asprintf "%a expected" Correspondence.pp c)
              true
              (List.exists (Correspondence.equal c)
                 (Correspondence.make ~src:("proj", "org") ~tgt:("org", "oname")
                 :: corrs)))
          got);
    Alcotest.test_case "constants induce no correspondences" `Quick (fun () ->
        let tgd =
          Tgd.make
            ~body:[ Atom.make "proj" [ v "P"; Term.Cst "Bob"; v "O" ] ]
            ~head:[ Atom.make "org" [ v "O"; Term.Cst "IBM" ] ]
            ()
        in
        let got =
          Generate.correspondences_of_tgd ~source:Fixtures.source_schema
            ~target:Fixtures.target_schema tgd
        in
        Alcotest.(check int) "one" 1 (List.length got));
  ]

let matcher_tests =
  [
    Alcotest.test_case "levenshtein" `Quick (fun () ->
        Alcotest.(check int) "identical" 0 (Matcher.levenshtein "abc" "abc");
        Alcotest.(check int) "kitten/sitting" 3 (Matcher.levenshtein "kitten" "sitting");
        Alcotest.(check int) "empty" 3 (Matcher.levenshtein "" "abc"));
    Alcotest.test_case "similarity is normalised and case-insensitive" `Quick
      (fun () ->
        Alcotest.(check (float 1e-9)) "equal" 1.0 (Matcher.similarity "Name" "name");
        Alcotest.(check (float 1e-9)) "empty pair" 1.0 (Matcher.similarity "" "");
        Alcotest.(check bool)
          "bounded" true
          (let s = Matcher.similarity "pname" "zzzzz" in
           s >= 0. && s <= 1.));
    Alcotest.test_case "propose finds renamed attributes" `Quick (fun () ->
        (* target attributes are near-copies of the source ones *)
        let source =
          Schema.of_relations [ Relation.make "projects" [ "pname"; "emp"; "org" ] ]
        in
        let target =
          Schema.of_relations [ Relation.make "tasks" [ "pname"; "employee"; "oid" ] ]
        in
        let corrs = Matcher.propose ~threshold:0.6 ~source ~target () in
        let has src tgt =
          List.exists
            (fun (c : Correspondence.t) ->
              String.equal c.Correspondence.src_attr src
              && String.equal c.Correspondence.tgt_attr tgt)
            corrs
        in
        Alcotest.(check bool) "pname" true (has "pname" "pname");
        Alcotest.(check bool) "employee" true (has "emp" "employee"));
    Alcotest.test_case "one match per target attribute per source relation"
      `Quick (fun () ->
        (* both source relations may map into t.name, but each only once,
           even though s1 has two name-like attributes *)
        let source =
          Schema.of_relations
            [ Relation.make "s1" [ "name"; "names" ]; Relation.make "s2" [ "name" ] ]
        in
        let target = Schema.of_relations [ Relation.make "t" [ "name" ] ] in
        Alcotest.(check int)
          "two" 2
          (List.length (Matcher.propose ~source ~target ())));
    Alcotest.test_case "threshold filters weak matches" `Quick (fun () ->
        let source = Schema.of_relations [ Relation.make "s" [ "abcdef" ] ] in
        let target = Schema.of_relations [ Relation.make "t" [ "zzzzzz" ] ] in
        Alcotest.(check int)
          "none" 0
          (List.length (Matcher.propose ~source ~target ())));
    Alcotest.test_case "matcher output feeds candidate generation" `Quick
      (fun () ->
        (* end to end: matcher -> Clio-style generation on the appendix
           schemas (attribute names overlap) *)
        let corrs =
          Matcher.propose ~threshold:0.7 ~source:Fixtures.source_schema
            ~target:Fixtures.target_schema ()
        in
        let cands =
          Generate.generate ~source:Fixtures.source_schema
            ~target:Fixtures.target_schema ~src_fkeys:[] ~tgt_fkeys ~corrs
        in
        Alcotest.(check bool) "some candidates" true (cands <> []));
  ]

let data_matcher_tests =
  [
    Alcotest.test_case "jaccard" `Quick (fun () ->
        let set l = Value.Set.of_list (List.map (fun c -> Value.Const c) l) in
        Alcotest.(check (float 1e-9)) "overlap" 0.5
          (Matcher.jaccard (set [ "a"; "b"; "c" ]) (set [ "b"; "c"; "d" ]));
        Alcotest.(check (float 1e-9)) "empty" 1.0
          (Matcher.jaccard (set []) (set []));
        Alcotest.(check (float 1e-9)) "disjoint" 0.0
          (Matcher.jaccard (set [ "a" ]) (set [ "b" ])));
    Alcotest.test_case "column_values skips nulls" `Quick (fun () ->
        let r = Relation.make "r" [ "a"; "b" ] in
        let inst =
          Instance.of_tuples
            [
              Tuple.make "r" [ Value.Const "x"; Value.Null 0 ];
              Tuple.of_consts "r" [ "y"; "z" ];
            ]
        in
        Alcotest.(check int) "a col" 2 (Value.Set.cardinal (Matcher.column_values inst r "a"));
        Alcotest.(check int) "b col" 1 (Value.Set.cardinal (Matcher.column_values inst r "b")));
    Alcotest.test_case "propose_from_data finds value-overlapping columns"
      `Quick (fun () ->
        (* opaque attribute names, shared values *)
        let source = Schema.of_relations [ Relation.make "s" [ "c1"; "c2" ] ] in
        let target = Schema.of_relations [ Relation.make "t" [ "k1"; "k2" ] ] in
        let source_inst =
          Instance.of_tuples
            [ Tuple.of_consts "s" [ "rome"; "it" ]; Tuple.of_consts "s" [ "paris"; "fr" ] ]
        in
        let target_inst =
          Instance.of_tuples
            [ Tuple.of_consts "t" [ "rome"; "xx" ]; Tuple.of_consts "t" [ "paris"; "yy" ] ]
        in
        let corrs =
          Matcher.propose_from_data ~source ~target ~source_inst ~target_inst ()
        in
        Alcotest.(check int) "one match" 1 (List.length corrs);
        match corrs with
        | [ c ] ->
          Alcotest.(check string) "src col" "c1" c.Correspondence.src_attr;
          Alcotest.(check string) "tgt col" "k1" c.Correspondence.tgt_attr
        | _ -> Alcotest.fail "unexpected");
    Alcotest.test_case "threshold filters weak overlap" `Quick (fun () ->
        let source = Schema.of_relations [ Relation.make "s" [ "c" ] ] in
        let target = Schema.of_relations [ Relation.make "t" [ "k" ] ] in
        let source_inst =
          Instance.of_tuples (List.init 10 (fun i -> Tuple.of_consts "s" [ string_of_int i ]))
        in
        let target_inst =
          Instance.of_tuples [ Tuple.of_consts "t" [ "0" ]; Tuple.of_consts "t" [ "99" ] ]
        in
        (* overlap 1 of 11 < default threshold *)
        Alcotest.(check int)
          "filtered" 0
          (List.length
             (Matcher.propose_from_data ~source ~target ~source_inst ~target_inst ())));
  ]

let () =
  Alcotest.run "candgen"
    [
      ("fkey", fkey_tests);
      ("correspondence", correspondence_tests);
      ("assoc", assoc_tests);
      ("generate", generate_tests);
      ("roundtrip", roundtrip_tests);
      ("matcher", matcher_tests);
      ("data-matcher", data_matcher_tests);
    ]
