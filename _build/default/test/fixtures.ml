(* Shared test fixtures: the appendix's running example and qcheck
   generators for random relational objects. *)

open Relational
open Logic

let v x = Term.Var x

let c x = Term.Cst x

(* --- the appendix example --------------------------------------------- *)

(* Source: proj(pname, emp, org); target: task(pname, emp, oid),
   org(oid, oname). Reconstructed so that every number in the appendix's
   worked table is reproduced exactly. *)

let source_schema =
  Schema.of_relations [ Relation.make "proj" [ "pname"; "emp"; "org" ] ]

let target_schema =
  Schema.of_relations
    [
      Relation.make "task" [ "pname"; "emp"; "oid" ];
      Relation.make "org" [ "oid"; "oname" ];
    ]

let instance_i =
  Instance.of_tuples
    [
      Tuple.of_consts "proj" [ "BigData"; "Bob"; "IBM" ];
      Tuple.of_consts "proj" [ "ML"; "Alice"; "SAP" ];
    ]

let instance_j =
  Instance.of_tuples
    [
      Tuple.of_consts "task" [ "ML"; "Alice"; "111" ];
      Tuple.of_consts "org" [ "111"; "SAP" ];
      Tuple.of_consts "task" [ "Social"; "Carl"; "222" ];
      Tuple.of_consts "org" [ "222"; "MSR" ];
    ]

let theta1 =
  Tgd.make ~label:"theta1"
    ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
    ~head:[ Atom.make "task" [ v "P"; v "E"; v "T" ] ]
    ()

let theta3 =
  Tgd.make ~label:"theta3"
    ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
    ~head:
      [
        Atom.make "task" [ v "P"; v "E"; v "T" ];
        Atom.make "org" [ v "T"; v "O" ];
      ]
    ()

(* The appendix's extension: [n] extra ML-like projects, i.e. pairs
   proj(Xi, Alice, SAP) in I and task(Xi, Alice, 111) in J. With n >= 5 the
   preferred mapping flips from {} to {theta3}. *)
let extended_example n =
  let name i = Printf.sprintf "Proj%d" i in
  let i' =
    List.fold_left
      (fun acc k ->
        Instance.add (Tuple.of_consts "proj" [ name k; "Alice"; "SAP" ]) acc)
      instance_i
      (List.init n (fun k -> k))
  in
  let j' =
    List.fold_left
      (fun acc k ->
        Instance.add (Tuple.of_consts "task" [ name k; "Alice"; "111" ]) acc)
      instance_j
      (List.init n (fun k -> k))
  in
  (i', j')

(* --- qcheck generators ------------------------------------------------ *)

let small_value_gen =
  QCheck2.Gen.(map (fun i -> Value.Const (Printf.sprintf "c%d" i)) (int_range 0 5))

let tuple_gen ~rel ~arity =
  QCheck2.Gen.(
    map (fun vs -> Tuple.make rel vs) (list_size (return arity) small_value_gen))

(* A random ground instance over relations r2/2 and r3/3. *)
let instance_gen =
  QCheck2.Gen.(
    let* twos = list_size (int_range 0 8) (tuple_gen ~rel:"r2" ~arity:2) in
    let* threes = list_size (int_range 0 8) (tuple_gen ~rel:"r3" ~arity:3) in
    return (Instance.of_tuples (twos @ threes)))

(* A random conjunctive query over r2/2 and r3/3 with variables from a small
   pool (shared variables make real joins likely). *)
let cq_gen =
  QCheck2.Gen.(
    let var_pool = [ "X"; "Y"; "Z"; "W" ] in
    let term_gen =
      frequency
        [
          (3, map (fun i -> Term.Var (List.nth var_pool i)) (int_range 0 3));
          (1, map (fun i -> Term.Cst (Printf.sprintf "c%d" i)) (int_range 0 5));
        ]
    in
    let atom_gen =
      let* which = bool in
      if which then
        let* a = term_gen and* b = term_gen in
        return (Atom.make "r2" [ a; b ])
      else
        let* a = term_gen and* b = term_gen and* c = term_gen in
        return (Atom.make "r3" [ a; b; c ])
    in
    list_size (int_range 1 3) atom_gen)
