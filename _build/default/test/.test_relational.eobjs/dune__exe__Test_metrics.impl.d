test/test_metrics.ml: Alcotest Core Fixtures Logic Metrics Problem
