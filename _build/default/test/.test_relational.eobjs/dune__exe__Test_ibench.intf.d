test/test_ibench.mli:
