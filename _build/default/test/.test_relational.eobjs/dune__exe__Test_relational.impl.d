test/test_relational.ml: Alcotest Bitset Csv Fixtures Frac Gen Instance List QCheck2 QCheck_alcotest Relation Relational Result Schema Stats Test Tuple Util Value
