test/test_serialize.ml: Alcotest Candgen Document Filename Fixtures Fun Ibench Instance List Logic Parser Psl Relational Result Schema Serialize Str_split String Sys
