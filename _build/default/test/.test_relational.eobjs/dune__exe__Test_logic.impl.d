test/test_logic.ml: Alcotest Array Atom Containment Cq Fixtures Gen Instance List Logic QCheck2 QCheck_alcotest Relation Relational Schema String_set Subst Term Test Tgd Tuple Value
