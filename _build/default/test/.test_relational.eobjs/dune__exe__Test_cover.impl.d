test/test_cover.ml: Alcotest Array Cover Fixtures Frac Gen Instance List Logic Printf QCheck2 QCheck_alcotest Relational Stdlib Test Tuple Util Value
