test/test_experiments.ml: Alcotest Experiments Frac List Printf String Util
