test/test_candgen.ml: Alcotest Assoc Atom Candgen Correspondence Fixtures Fkey Format Generate Instance List Logic Matcher Option Printf Relation Relational Schema String Term Tgd Tuple Value
