test/test_scenarios.ml: Alcotest Array Candgen Core Instance List Logic Metrics Option Relational Scenarios Serialize String Tuple Util Value Zoo
