test/test_ibench.ml: Alcotest Chase Config Cover Format Fun Gen Generator Ibench Instance Int List Logic Primitive Printf QCheck2 QCheck_alcotest Random Relational Scenario Schema Test Tuple
