test/test_candgen.mli:
