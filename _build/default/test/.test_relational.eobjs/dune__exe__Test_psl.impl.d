test/test_psl.ml: Admm Alcotest Array Database Format Gatom Gradient Grounding Hlmrf Learn Linexpr List Option Predicate Printf Program Psl QCheck2 QCheck_alcotest Result Rule String Test
