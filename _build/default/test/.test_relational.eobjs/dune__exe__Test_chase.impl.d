test/test_chase.ml: Alcotest Atom Chase Cq Fixtures Gen Instance List Logic Null_source QCheck2 QCheck_alcotest Relation Relational Result Schema String_set Term Test Tgd Tuple Value
