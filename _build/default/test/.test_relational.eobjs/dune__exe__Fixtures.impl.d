test/fixtures.ml: Atom Instance List Logic Printf QCheck2 Relation Relational Schema Term Tgd Tuple Value
