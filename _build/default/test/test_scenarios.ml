open Relational
open Scenarios

let entry_tests (e : Zoo.entry) =
  let doc = e.Zoo.doc in
  [
    Alcotest.test_case (e.Zoo.name ^ ": document is well-formed") `Quick
      (fun () ->
        List.iter
          (fun tgd ->
            Alcotest.(check bool)
              "candidate well-formed" true
              (Logic.Tgd.well_formed ~source:doc.Serialize.Document.source
                 ~target:doc.Serialize.Document.target tgd
              = Ok ()))
          (doc.Serialize.Document.tgds @ e.Zoo.ground_truth);
        List.iter
          (fun c ->
            Alcotest.(check bool)
              "correspondence valid" true
              (Candgen.Correspondence.validate
                 ~source:doc.Serialize.Document.source
                 ~target:doc.Serialize.Document.target c
              = Ok ()))
          doc.Serialize.Document.correspondences);
    Alcotest.test_case (e.Zoo.name ^ ": MG within the candidates") `Quick
      (fun () ->
        List.iter
          (fun mg ->
            Alcotest.(check bool)
              "present" true
              (List.exists
                 (Logic.Tgd.equal_up_to_renaming mg)
                 doc.Serialize.Document.tgds))
          e.Zoo.ground_truth);
    Alcotest.test_case (e.Zoo.name ^ ": serialization roundtrips") `Quick
      (fun () ->
        match Serialize.Parser.parse (Serialize.Document.to_string doc) with
        | Error err -> Alcotest.failf "%a" Serialize.Parser.pp_error err
        | Ok doc' ->
          Alcotest.(check bool)
            "I survives" true
            (Instance.equal doc.Serialize.Document.instance_i
               doc'.Serialize.Document.instance_i);
          Alcotest.(check bool)
            "J survives" true
            (Instance.equal doc.Serialize.Document.instance_j
               doc'.Serialize.Document.instance_j);
          Alcotest.(check int)
            "tgds survive"
            (List.length doc.Serialize.Document.tgds)
            (List.length doc'.Serialize.Document.tgds));
    Alcotest.test_case (e.Zoo.name ^ ": CMD solves it") `Quick (fun () ->
        let problem =
          Core.Problem.make ~source:doc.Serialize.Document.instance_i
            ~j:doc.Serialize.Document.instance_j doc.Serialize.Document.tgds
        in
        let r = Core.Cmd.solve problem in
        Alcotest.(check bool)
          "no worse than empty" true
          Util.Frac.(r.Core.Cmd.objective <= Core.Objective.empty_value problem));
  ]

let recovery_tests =
  (* on the clean data of the realistic entries, CMD recovers MG exactly *)
  List.map
    (fun name ->
      Alcotest.test_case (name ^ ": CMD recovers the ground truth") `Quick
        (fun () ->
          let e = Option.get (Zoo.find name) in
          let doc = e.Zoo.doc in
          let problem =
            Core.Problem.make ~source:doc.Serialize.Document.instance_i
              ~j:doc.Serialize.Document.instance_j doc.Serialize.Document.tgds
          in
          let r = Core.Cmd.solve problem in
          let scores =
            Metrics.mapping_level ~candidates:doc.Serialize.Document.tgds
              ~truth:e.Zoo.ground_truth r.Core.Cmd.selection
          in
          Alcotest.(check (float 1e-9)) "F1 = 1" 1.0 scores.Metrics.f1))
    [ "bibliography"; "hr"; "flights" ]

let zoo_tests =
  [
    Alcotest.test_case "four entries, stable names" `Quick (fun () ->
        Alcotest.(check (list string))
          "names"
          [ "appendix"; "bibliography"; "hr"; "flights" ]
          (Zoo.names ()));
    Alcotest.test_case "find is case-insensitive" `Quick (fun () ->
        Alcotest.(check bool) "HR" true (Zoo.find "HR" <> None);
        Alcotest.(check bool) "nope" true (Zoo.find "nope" = None));
    Alcotest.test_case "ground_chase grounds consistently per trigger" `Quick
      (fun () ->
        let e = Option.get (Zoo.find "flights") in
        let j =
          Zoo.ground_chase e.Zoo.doc.Serialize.Document.instance_i
            e.Zoo.ground_truth
        in
        Alcotest.(check bool) "ground" true (Instance.is_ground j);
        (* every route tuple's rid also appears in an operates tuple: the
           shared null was grounded to the same skolem *)
        Instance.iter
          (fun t ->
            if String.equal t.Tuple.rel "route" then begin
              let rid = t.Tuple.values.(0) in
              Alcotest.(check bool)
                "rid joined" true
                (Tuple.Set.exists
                   (fun o -> Value.equal o.Tuple.values.(0) rid)
                   (Instance.tuples_of j "operates"))
            end)
          j);
  ]

let () =
  Alcotest.run "scenarios"
    (("zoo", zoo_tests)
    :: ("recovery", recovery_tests)
    :: List.map (fun e -> (e.Zoo.name, entry_tests e)) Zoo.all)
