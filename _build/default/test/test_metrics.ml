open Core

let close = Alcotest.float 1e-6

let appendix_problem () =
  Problem.make ~source:Fixtures.instance_i ~j:Fixtures.instance_j
    [ Fixtures.theta1; Fixtures.theta3 ]

let tuple_level_tests =
  [
    Alcotest.test_case "empty selection: recall 0, precision 1" `Quick
      (fun () ->
        let p = appendix_problem () in
        let s = Metrics.tuple_level p (Problem.selection_of_indices p []) in
        Alcotest.check close "recall" 0. s.Metrics.recall;
        Alcotest.check close "precision" 1. s.Metrics.precision;
        Alcotest.check close "f1" 0. s.Metrics.f1);
    Alcotest.test_case "theta1: recall (2/3)/4, precision 1/2" `Quick
      (fun () ->
        let p = appendix_problem () in
        let s = Metrics.tuple_level p (Problem.selection_of_indices p [ 0 ]) in
        (* coverage mass 2/3 over 4 tuples; 2 produced, 1 error *)
        Alcotest.check close "recall" (2. /. 3. /. 4.) s.Metrics.recall;
        Alcotest.check close "precision" 0.5 s.Metrics.precision);
    Alcotest.test_case "theta3: recall 2/4, precision 2/4" `Quick (fun () ->
        let p = appendix_problem () in
        let s = Metrics.tuple_level p (Problem.selection_of_indices p [ 1 ]) in
        Alcotest.check close "recall" 0.5 s.Metrics.recall;
        Alcotest.check close "precision" 0.5 s.Metrics.precision;
        Alcotest.check close "f1" 0.5 s.Metrics.f1);
    Alcotest.test_case "extension: theta3 reaches high recall" `Quick
      (fun () ->
        let i', j' = Fixtures.extended_example 5 in
        let p = Problem.make ~source:i' ~j:j' [ Fixtures.theta1; Fixtures.theta3 ] in
        let s = Metrics.tuple_level p (Problem.selection_of_indices p [ 1 ]) in
        (* 7 of 9 tuples fully explained; 12 of 14 produced tuples land *)
        Alcotest.check close "recall" (7. /. 9.) s.Metrics.recall;
        Alcotest.check close "precision" (12. /. 14.) s.Metrics.precision);
  ]

let mapping_level_tests =
  [
    Alcotest.test_case "perfect selection" `Quick (fun () ->
        let cands = [ Fixtures.theta1; Fixtures.theta3 ] in
        let s =
          Metrics.mapping_level ~candidates:cands ~truth:[ Fixtures.theta3 ]
            [| false; true |]
        in
        Alcotest.check close "precision" 1. s.Metrics.precision;
        Alcotest.check close "recall" 1. s.Metrics.recall;
        Alcotest.check close "f1" 1. s.Metrics.f1);
    Alcotest.test_case "half precision" `Quick (fun () ->
        let cands = [ Fixtures.theta1; Fixtures.theta3 ] in
        let s =
          Metrics.mapping_level ~candidates:cands ~truth:[ Fixtures.theta3 ]
            [| true; true |]
        in
        Alcotest.check close "precision" 0.5 s.Metrics.precision;
        Alcotest.check close "recall" 1. s.Metrics.recall);
    Alcotest.test_case "empty selection is vacuously precise" `Quick (fun () ->
        let cands = [ Fixtures.theta1 ] in
        let s =
          Metrics.mapping_level ~candidates:cands ~truth:[ Fixtures.theta3 ]
            [| false |]
        in
        Alcotest.check close "precision" 1. s.Metrics.precision;
        Alcotest.check close "recall" 0. s.Metrics.recall;
        Alcotest.check close "f1" 0. s.Metrics.f1);
    Alcotest.test_case "renamed truth still matches" `Quick (fun () ->
        let renamed = Logic.Tgd.rename_apart ~suffix:"_z" Fixtures.theta3 in
        let s =
          Metrics.mapping_level ~candidates:[ Fixtures.theta3 ] ~truth:[ renamed ]
            [| true |]
        in
        Alcotest.check close "recall" 1. s.Metrics.recall);
  ]

let () =
  Alcotest.run "metrics"
    [ ("tuple-level", tuple_level_tests); ("mapping-level", mapping_level_tests) ]
