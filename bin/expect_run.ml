(* Declarative expectation suites (.rtest) compiled onto the solver
   registry.

   The report is a pure function of the suite — never of --jobs (tests fan
   out over a Parallel.Pool with results reassembled in file order, and
   counter tests run in a sequential phase) — so CI diffs parallel runs
   against sequential ones byte for byte. Exit status: 0 when every test
   meets its expectations (xfail / still-broken / skip are expected), 1 on
   failures, 2 on usage or malformed-suite errors. *)

open Cmdliner

let run dir filter jobs promote trace =
  Cli.install_trace trace;
  let jobs = Cli.resolve_jobs jobs in
  match Expect.Runner.load_dir dir with
  | Error msg -> Cli.die "%s" msg
  | Ok [] -> Cli.die "%s: no .rtest files" dir
  | Ok suites ->
    let report = Expect.Runner.run ~jobs ?filter suites in
    print_string (Expect.Runner.render report);
    if not promote then Expect.Runner.exit_code report
    else begin
      let rewrites = Expect.Runner.promote suites report in
      List.iter
        (fun (path, text) ->
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc text);
          Printf.printf "promoted %s\n" path)
        rewrites;
      (* value mismatches were just promoted; anything else still fails *)
      let leftover =
        List.exists
          (fun (_, results) ->
            List.exists
              (fun (r : Expect.Runner.result) ->
                match r.Expect.Runner.outcome with
                | Expect.Runner.Fail _ -> not (Expect.Runner.promotable r)
                | _ -> false)
              results)
          report.Expect.Runner.files
      in
      if leftover then 1 else 0
    end

let dir =
  Arg.(
    value & opt string "expect"
    & info [ "dir" ] ~docv:"DIR" ~doc:"Directory of .rtest suite files.")

let filter =
  Arg.(
    value
    & opt (some string) None
    & info [ "filter" ] ~docv:"SUBSTRING"
        ~doc:"Run only tests whose name contains $(docv).")

let promote =
  Arg.(
    value & flag
    & info [ "promote" ]
        ~doc:
          "Rewrite suite files in place, replacing mismatched expectation \
           values with the observed ones (only for unflagged tests whose \
           every listed solver agrees). On a clean suite this writes \
           nothing.")

let cmd =
  let doc = "Run declarative expectation suites against the solver registry" in
  Cmd.v
    (Cmd.info "expect_run" ~doc)
    Term.(const run $ dir $ filter $ Cli.jobs $ promote $ Cli.trace)

let () = exit (Cmd.eval' cmd)
