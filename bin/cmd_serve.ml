(* The mapping-selection daemon: NDJSON-RPC over a Unix or TCP socket.

   Thin shell around Server.serve — flag parsing, cache/telemetry wiring
   and a "listening" banner; every protocol and concurrency decision
   lives in lib/server. Telemetry is enabled even without --trace so
   progress notifications (span-sourced) stream to clients that ask for
   them; sinks are only attached when the trace flags say so. *)

open Cmdliner

let run socket port jobs queue batch deadline_ms cache trace =
  Cli.install_trace trace;
  Telemetry.set_enabled true;
  let endpoint =
    match Cli.resolve_endpoint ~socket ~port with
    | Cli.Unix_socket path -> `Unix_socket path
    | Cli.Tcp (host, p) -> `Tcp (host, p)
  in
  let cache = Cli.resolve_cache cache in
  let config =
    {
      Server.Daemon.endpoint;
      jobs = Cli.resolve_jobs jobs;
      queue;
      batch;
      deadline_ms = Cli.resolve_deadline deadline_ms;
    }
  in
  if queue < 1 then Cli.die "--queue must be at least 1";
  let on_ready addr =
    let where =
      match addr with
      | Unix.ADDR_UNIX path -> path
      | Unix.ADDR_INET (host, p) ->
        Printf.sprintf "%s:%d" (Unix.string_of_inet_addr host) p
    in
    Printf.eprintf "cmd_serve: listening on %s (jobs %d, queue %d)\n%!" where
      config.Server.Daemon.jobs queue
  in
  Server.Daemon.serve ?cache ~on_ready config

let queue =
  Arg.(value & opt int 256 & info [ "queue" ] ~docv:"N"
         ~doc:"Admission-queue capacity; a full queue sheds with a typed \
               $(i,overloaded) error.")

let batch =
  Arg.(value & opt int 64 & info [ "batch" ] ~docv:"N"
         ~doc:"Maximum calls drained into one scheduler round.")

let cmd =
  let doc = "Serve mapping selection over line-delimited JSON-RPC" in
  Cmd.v
    (Cmd.info "cmd_serve" ~doc)
    Term.(
      const run $ Cli.socket $ Cli.port $ Cli.jobs $ queue $ batch
      $ Cli.deadline_ms $ Cli.cache $ Cli.trace)

let () = exit (Cmd.eval cmd)
