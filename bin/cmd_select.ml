(* The mapping-selection CLI: load a scenario document (or generate one with
   iBench) and run a selection solver on it. Solvers are resolved by name
   through the Core.Solver registry, so a newly registered solver is
   immediately selectable here. *)

open Cmdliner

let run_problem ~solver ~jobs ~cache ~weights ~candidates ~source ~j ~truth =
  let solver_impl =
    match Core.Solver.find solver with
    | Some s -> s
    | None ->
      Cli.die "unknown solver %s (known: %s)" solver
        (String.concat ", " (Core.Solver.names ()))
  in
  let problem = Core.Problem.make ?cache ~weights ~source ~j candidates in
  (* every solver, cmd included, goes through the registry wrapper; the
     outcome carries the fractional ADMM solution (when the winning solver
     produced one and the selection was not served from the cache) for the
     per-candidate display *)
  let outcome =
    try
      if jobs > 1 then
        Parallel.Pool.with_pool ~jobs (fun pool ->
            Core.Solver.solve solver_impl ~pool ?cache problem)
      else Core.Solver.solve solver_impl ?cache problem
    with Core.Solver_error.Error _ as e ->
      Cli.die "%s" (Core.Solver_error.to_string e)
  in
  let selection = outcome.Core.Solver.selection in
  Format.printf "candidates (%d):@." (List.length candidates);
  List.iteri
    (fun i tgd ->
      let context =
        match (outcome.Core.Solver.fractional, solver) with
        | Some f, _ -> Printf.sprintf " in=%.3f" f.(i)
        | None, "all" ->
          (* 'all' does not optimise anything, so surface each candidate's
             objective contribution instead of a solver diagnostic *)
          let s = problem.Core.Problem.stats.(i) in
          Printf.sprintf " errors=%d size=%d" (Cover.error_count s)
            s.Cover.size
        | None, _ -> ""
      in
      Format.printf "  [%s]%s %a@."
        (if selection.(i) then "x" else " ")
        context Logic.Tgd.pp tgd)
    candidates;
  let b = Core.Objective.breakdown problem selection in
  Format.printf "objective: %a@." Core.Objective.pp_breakdown b;
  Format.printf "tuple-level: %a@." Metrics.pp (Metrics.tuple_level problem selection);
  match truth with
  | [] -> ()
  | _ :: _ ->
    Format.printf "mapping-level vs ground truth: %a@." Metrics.pp
      (Metrics.mapping_level ~candidates ~truth selection)

(* Multi-hop mode: generate an S -> T -> U chain, compose the per-hop
   candidate pools end-to-end with the mapping algebra, and select over the
   composed pool against the final observed instance. The ground truth for
   the mapping-level metric is the composition of the per-hop truths. *)
let run_multihop ~solver ~jobs ~cache ~weights ~seed ~rows ~hops ~pi_corresp
    ~pi_errors ~pi_unexplained =
  let config =
    {
      Ibench.Multihop.default with
      Ibench.Multihop.rows;
      hops;
      pi_corresp;
      pi_errors;
      pi_unexplained;
      seed;
    }
  in
  (match Ibench.Multihop.validate config with
  | Ok () -> ()
  | Error msg -> Cli.die "%s" msg);
  let s = Ibench.Multihop.generate config in
  Format.printf "%a@." Ibench.Multihop.pp_summary s;
  let pools = Ibench.Multihop.mappings s in
  List.iteri
    (fun i pool ->
      Format.printf "hop %d: %d candidate tgds@." (i + 1) (List.length pool))
    pools;
  let candidates = Algebra.compose_all pools in
  let truth =
    Algebra.compose_all
      (List.map
         (fun (h : Ibench.Multihop.hop) -> h.Ibench.Multihop.ground_truth)
         s.Ibench.Multihop.hops)
  in
  Format.printf "composed: %d end-to-end candidates@." (List.length candidates);
  run_problem ~solver ~jobs ~cache ~weights ~candidates
    ~source:s.Ibench.Multihop.source ~j:(Ibench.Multihop.target s) ~truth

let run file scenario seed solver jobs cache trace hops pi_corresp pi_errors
    pi_unexplained rows w1 w2 w3 =
  Cli.install_trace trace;
  let cache = Cli.resolve_cache cache in
  if Option.is_none (Core.Solver.find solver) then
    Cli.die "unknown solver %s (known: %s)" solver
      (String.concat ", " (Core.Solver.names ()));
  let weights = { Core.Problem.w_unexplained = w1; w_errors = w2; w_size = w3 } in
  let jobs = Cli.resolve_jobs jobs in
  if hops > 1 && (scenario <> None || file <> None) then
    Cli.die "--hops generates its own chain; drop --file/--scenario";
  if hops > 1 then
    run_multihop ~solver ~jobs ~cache ~weights ~seed ~rows ~hops ~pi_corresp
      ~pi_errors ~pi_unexplained
  else
  match scenario, file with
  | Some name, _ when String.lowercase_ascii name = "pipeline" ->
    (* the hand-crafted two-hop chain: compose the per-hop pools and select
       end-to-end, like --hops but deterministic and human-readable *)
    Format.printf "scenario pipeline: %s@." Scenarios.Pipeline.description;
    List.iteri
      (fun i pool ->
        Format.printf "hop %d: %d candidate tgds@." (i + 1) (List.length pool))
      Scenarios.Pipeline.pools;
    let candidates = Algebra.compose_all Scenarios.Pipeline.pools in
    Format.printf "composed: %d end-to-end candidates@."
      (List.length candidates);
    run_problem ~solver ~jobs ~cache ~weights ~candidates
      ~source:Scenarios.Pipeline.initial ~j:Scenarios.Pipeline.final
      ~truth:(Algebra.compose_all Scenarios.Pipeline.truth_pools)
  | Some name, _ -> (
    match Scenarios.Zoo.find name with
    | None ->
      Printf.eprintf "unknown scenario %s; known: %s\n" name
        (String.concat ", " (Scenarios.Zoo.names ()));
      exit 2
    | Some entry ->
      Format.printf "scenario %s: %s@." entry.Scenarios.Zoo.name
        entry.Scenarios.Zoo.description;
      let doc = entry.Scenarios.Zoo.doc in
      run_problem ~solver ~jobs ~cache ~weights
        ~candidates:doc.Serialize.Document.tgds
        ~source:doc.Serialize.Document.instance_i
        ~j:doc.Serialize.Document.instance_j
        ~truth:entry.Scenarios.Zoo.ground_truth)
  | None, Some path -> (
    match Serialize.Parser.parse_file path with
    | Error e ->
      Format.eprintf "%s: %a@." path Serialize.Parser.pp_error e;
      exit 1
    | Ok doc ->
      let candidates =
        match doc.Serialize.Document.tgds with
        | [] ->
          (* no explicit candidates: generate them Clio-style from the
             document's correspondences *)
          Candgen.Generate.generate ~source:doc.Serialize.Document.source
            ~target:doc.Serialize.Document.target
            ~src_fkeys:doc.Serialize.Document.src_fkeys
            ~tgt_fkeys:doc.Serialize.Document.tgt_fkeys
            ~corrs:doc.Serialize.Document.correspondences
        | tgds -> tgds
      in
      run_problem ~solver ~jobs ~cache ~weights ~candidates
        ~source:doc.Serialize.Document.instance_i
        ~j:doc.Serialize.Document.instance_j ~truth:[])
  | None, None ->
    let config =
      {
        Ibench.Config.default with
        Ibench.Config.seed;
        rows_per_relation = rows;
        pi_corresp;
        pi_errors;
        pi_unexplained;
      }
    in
    let s = Ibench.Generator.generate config in
    Format.printf "%a@." Ibench.Scenario.pp_summary s;
    run_problem ~solver ~jobs ~cache ~weights
      ~candidates:s.Ibench.Scenario.candidates
      ~source:s.Ibench.Scenario.instance_i ~j:s.Ibench.Scenario.instance_j
      ~truth:s.Ibench.Scenario.ground_truth

let file =
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE"
         ~doc:"Scenario document to load; a scenario is generated when omitted.")

let scenario =
  Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"NAME"
         ~doc:"A named scenario from the zoo (appendix, bibliography, hr, \
               flights), or 'pipeline' — the two-hop chain selected over \
               its end-to-end composition.")

let seed = Cli.seed ~default:42 ~doc:"Generator seed."

let solver =
  Arg.(value & opt string "cmd" & info [ "s"; "solver" ] ~docv:"NAME"
         ~doc:"Solver from the Core.Solver registry: cmd, greedy, local, \
               exact, anneal, all, or portfolio (race the roster, first \
               provably optimal or best objective wins).")

let hops =
  Arg.(value & opt int 1 & info [ "hops" ] ~docv:"N"
         ~doc:"Generate a multi-hop chain of N mappings (2 or 3), compose \
               them end-to-end with the mapping algebra and select over the \
               composed pool. 1 (default) keeps the single-hop generator.")

let pi name doc = Arg.(value & opt int 0 & info [ name ] ~doc)

let rows = Arg.(value & opt int 8 & info [ "rows" ] ~doc:"Source rows per relation.")

let weight name default doc = Arg.(value & opt int default & info [ name ] ~doc)

let cmd =
  let doc = "Collective, probabilistic mapping selection" in
  Cmd.v
    (Cmd.info "cmd_select" ~doc)
    Term.(
      const run $ file $ scenario $ seed $ solver $ Cli.jobs $ Cli.cache
      $ Cli.trace $ hops
      $ pi "pi-corresp" "Percent of target relations with random correspondences."
      $ pi "pi-errors" "Percent of non-certain error tuples deleted from J."
      $ pi "pi-unexplained" "Percent of non-certain unexplained tuples added to J."
      $ rows
      $ weight "w1" 1 "Weight of unexplained tuples."
      $ weight "w2" 1 "Weight of error tuples."
      $ weight "w3" 1 "Weight of mapping size.")

let () = exit (Cmd.eval cmd)
