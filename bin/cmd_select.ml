(* The mapping-selection CLI: load a scenario document (or generate one with
   iBench) and run a selection solver on it. *)

open Cmdliner

type solver_choice =
  | Cmd
  | Greedy
  | Local
  | Exact
  | All

let solver_conv =
  let parse = function
    | "cmd" -> Ok Cmd
    | "greedy" -> Ok Greedy
    | "local" -> Ok Local
    | "exact" -> Ok Exact
    | "all" -> Ok All
    | s -> Error (`Msg (Printf.sprintf "unknown solver %s" s))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with
      | Cmd -> "cmd"
      | Greedy -> "greedy"
      | Local -> "local"
      | Exact -> "exact"
      | All -> "all")
  in
  Arg.conv (parse, print)

let run_problem ~solver ~jobs ~weights ~candidates ~source ~j ~truth =
  let problem = Core.Problem.make ~weights ~source ~j candidates in
  let selection, fractional =
    match solver with
    | Cmd ->
      let r = Core.Cmd.solve problem in
      (r.Core.Cmd.selection, Some r.Core.Cmd.fractional)
    | Greedy -> (Core.Greedy.solve problem, None)
    | Local ->
      let sel =
        if jobs > 1 then
          Parallel.Pool.with_pool ~jobs (fun pool ->
              Core.Local_search.solve ~pool ~restarts:3 problem)
        else Core.Local_search.solve ~restarts:3 problem
      in
      (sel, None)
    | Exact -> (Core.Exact.solve problem, None)
    | All -> (Array.make (Core.Problem.num_candidates problem) true, None)
  in
  Format.printf "candidates (%d):@." (List.length candidates);
  List.iteri
    (fun i tgd ->
      let context =
        match (fractional, solver) with
        | Some f, _ -> Printf.sprintf " in=%.3f" f.(i)
        | None, All ->
          (* 'all' does not optimise anything, so surface each candidate's
             objective contribution instead of a solver diagnostic *)
          let s = problem.Core.Problem.stats.(i) in
          Printf.sprintf " errors=%d size=%d" (Cover.error_count s)
            s.Cover.size
        | None, _ -> ""
      in
      Format.printf "  [%s]%s %a@."
        (if selection.(i) then "x" else " ")
        context Logic.Tgd.pp tgd)
    candidates;
  let b = Core.Objective.breakdown problem selection in
  Format.printf "objective: %a@." Core.Objective.pp_breakdown b;
  Format.printf "tuple-level: %a@." Metrics.pp (Metrics.tuple_level problem selection);
  match truth with
  | [] -> ()
  | _ :: _ ->
    Format.printf "mapping-level vs ground truth: %a@." Metrics.pp
      (Metrics.mapping_level ~candidates ~truth selection)

let run file scenario seed solver jobs pi_corresp pi_errors pi_unexplained rows w1 w2 w3 =
  let weights = { Core.Problem.w_unexplained = w1; w_errors = w2; w_size = w3 } in
  let jobs = Option.value ~default:(Parallel.Pool.default_jobs ()) jobs in
  match scenario, file with
  | Some name, _ -> (
    match Scenarios.Zoo.find name with
    | None ->
      Printf.eprintf "unknown scenario %s; known: %s\n" name
        (String.concat ", " (Scenarios.Zoo.names ()));
      exit 2
    | Some entry ->
      Format.printf "scenario %s: %s@." entry.Scenarios.Zoo.name
        entry.Scenarios.Zoo.description;
      let doc = entry.Scenarios.Zoo.doc in
      run_problem ~solver ~jobs ~weights ~candidates:doc.Serialize.Document.tgds
        ~source:doc.Serialize.Document.instance_i
        ~j:doc.Serialize.Document.instance_j
        ~truth:entry.Scenarios.Zoo.ground_truth)
  | None, Some path -> (
    match Serialize.Parser.parse_file path with
    | Error e ->
      Format.eprintf "%s: %a@." path Serialize.Parser.pp_error e;
      exit 1
    | Ok doc ->
      let candidates =
        match doc.Serialize.Document.tgds with
        | [] ->
          (* no explicit candidates: generate them Clio-style from the
             document's correspondences *)
          Candgen.Generate.generate ~source:doc.Serialize.Document.source
            ~target:doc.Serialize.Document.target
            ~src_fkeys:doc.Serialize.Document.src_fkeys
            ~tgt_fkeys:doc.Serialize.Document.tgt_fkeys
            ~corrs:doc.Serialize.Document.correspondences
        | tgds -> tgds
      in
      run_problem ~solver ~jobs ~weights ~candidates
        ~source:doc.Serialize.Document.instance_i
        ~j:doc.Serialize.Document.instance_j ~truth:[])
  | None, None ->
    let config =
      {
        Ibench.Config.default with
        Ibench.Config.seed;
        rows_per_relation = rows;
        pi_corresp;
        pi_errors;
        pi_unexplained;
      }
    in
    let s = Ibench.Generator.generate config in
    Format.printf "%a@." Ibench.Scenario.pp_summary s;
    run_problem ~solver ~jobs ~weights ~candidates:s.Ibench.Scenario.candidates
      ~source:s.Ibench.Scenario.instance_i ~j:s.Ibench.Scenario.instance_j
      ~truth:s.Ibench.Scenario.ground_truth

let file =
  Arg.(value & opt (some file) None & info [ "f"; "file" ] ~docv:"FILE"
         ~doc:"Scenario document to load; a scenario is generated when omitted.")

let scenario =
  Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"NAME"
         ~doc:"A named scenario from the zoo (appendix, bibliography, hr, flights).")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed.")

let solver =
  Arg.(value & opt solver_conv Cmd & info [ "s"; "solver" ]
         ~doc:"Solver: cmd, greedy, local, exact or all.")

let jobs =
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains for parallel solver phases (default: the \
               $(b,PARALLEL_JOBS) environment variable, else the \
               recommended domain count). Results are identical for every \
               N; 1 disables parallelism.")

let pi name doc = Arg.(value & opt int 0 & info [ name ] ~doc)

let rows = Arg.(value & opt int 8 & info [ "rows" ] ~doc:"Source rows per relation.")

let weight name default doc = Arg.(value & opt int default & info [ name ] ~doc)

let cmd =
  let doc = "Collective, probabilistic mapping selection" in
  Cmd.v
    (Cmd.info "cmd_select" ~doc)
    Term.(
      const run $ file $ scenario $ seed $ solver $ jobs
      $ pi "pi-corresp" "Percent of target relations with random correspondences."
      $ pi "pi-errors" "Percent of non-certain error tuples deleted from J."
      $ pi "pi-unexplained" "Percent of non-certain unexplained tuples added to J."
      $ rows
      $ weight "w1" 1 "Weight of unexplained tuples."
      $ weight "w2" 1 "Weight of error tuples."
      $ weight "w3" 1 "Weight of mapping size.")

let () = exit (Cmd.eval cmd)
