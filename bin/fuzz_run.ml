(* Metamorphic fuzzing campaigns over generated selection scenarios.

   Output is a pure function of (--seed, --budget, --oracle, --inject-fault)
   — never of --jobs — so CI can diff parallel runs against sequential
   ones. Exit status: 0 clean, 1 oracle failures (counterexamples written to
   the corpus directory), 2 usage errors. *)

open Cmdliner

let die = Cli.die

let resolve_oracles spec =
  match spec with
  | None -> Fuzz.Oracle.all
  | Some spec ->
    String.split_on_char ',' spec
    |> List.map (fun name ->
           let name = String.trim name in
           match Fuzz.Oracle.find name with
           | Some o -> o
           | None ->
             die "unknown oracle '%s' (known: %s)" name
               (String.concat ", " Fuzz.Oracle.names))

let inject fault oracles =
  match fault with
  | None -> oracles
  | Some fault -> (
    match List.assoc_opt fault Fuzz.Oracle.faults with
    | None ->
      die "unknown fault '%s' (known: %s)" fault
        (String.concat ", " (List.map fst Fuzz.Oracle.faults))
    | Some broken ->
      if
        not
          (List.exists
             (fun (o : Fuzz.Oracle.t) -> o.Fuzz.Oracle.name = broken.Fuzz.Oracle.name)
             oracles)
      then
        die "fault '%s' targets oracle '%s', which is not selected" fault
          broken.Fuzz.Oracle.name;
      List.map
        (fun (o : Fuzz.Oracle.t) ->
          if o.Fuzz.Oracle.name = broken.Fuzz.Oracle.name then broken else o)
        oracles)

let replay_paths oracles paths =
  (* a dangling reference is a usage error (exit 2), distinct from oracle
     failures (exit 1) *)
  (match List.filter (fun p -> not (Sys.file_exists p)) paths with
  | [] -> ()
  | missing ->
    die "no such corpus file or directory: %s" (String.concat ", " missing));
  let files =
    List.concat_map
      (fun path ->
        if Sys.file_exists path && Sys.is_directory path then
          match Fuzz.Corpus.load_dir path with
          | Ok entries -> List.map (fun e -> (path, Ok e)) entries
          | Error msg -> [ (path, Error msg) ]
        else [ (path, Fuzz.Corpus.load path) ])
      paths
  in
  let failed = ref false in
  List.iter
    (fun (path, entry) ->
      match entry with
      | Error msg ->
        failed := true;
        Printf.printf "ERROR %s\n" msg
      | Ok e -> (
        match Fuzz.Driver.replay ~oracles e with
        | Ok () ->
          Printf.printf "PASS  %s seed %d (%s)\n" e.Fuzz.Corpus.oracle
            e.Fuzz.Corpus.case.Fuzz.Case.seed path
        | Error msg ->
          failed := true;
          Printf.printf "FAIL  %s seed %d (%s): %s\n" e.Fuzz.Corpus.oracle
            e.Fuzz.Corpus.case.Fuzz.Case.seed path msg))
    files;
  if !failed then 1 else 0

let run seed budget oracle_spec fault jobs cache trace corpus_dir replay
    list_oracles =
  Cli.install_trace trace;
  let cache = Cli.resolve_cache cache in
  Cli.install_signal_flush ?cache ();
  if list_oracles then begin
    List.iter
      (fun (o : Fuzz.Oracle.t) ->
        Printf.printf "%-18s %s\n" o.Fuzz.Oracle.name o.Fuzz.Oracle.doc)
      Fuzz.Oracle.all;
    0
  end
  else
    let oracles = inject fault (resolve_oracles oracle_spec) in
    match replay with
    | _ :: _ -> (
      try replay_paths oracles replay
      with Sys_error msg -> die "%s" msg)
    | [] ->
      if budget < 0 then die "--budget must be nonnegative";
      let jobs = Cli.resolve_jobs jobs in
      let summary =
        Parallel.Pool.with_pool ~jobs (fun pool ->
            Fuzz.Driver.run ~pool ?cache ~oracles ~seed ~budget ())
      in
      Format.printf "%a" Fuzz.Driver.pp_summary summary;
      if summary.Fuzz.Driver.failures = [] then 0
      else begin
        let paths = Fuzz.Driver.save_failures ~dir:corpus_dir summary in
        List.iter (Printf.printf "wrote %s\n") paths;
        1
      end

let seed =
  Cli.seed ~default:42
    ~doc:"Campaign seed; case $(i,i) uses the derived seed $(i,derive seed i)."

let budget =
  Arg.(value & opt int 200 & info [ "budget" ] ~doc:"Number of generated cases.")

let oracle =
  Arg.(value & opt (some string) None & info [ "oracle" ] ~docv:"NAMES"
         ~doc:"Comma-separated oracle families to run; all when omitted.")

let fault =
  Arg.(value & opt (some string) None & info [ "inject-fault" ] ~docv:"NAME"
         ~doc:"Replace an oracle with a deliberately broken variant, to exercise the shrink/corpus pipeline.")

let corpus_dir =
  Arg.(value & opt string "corpus" & info [ "corpus" ] ~docv:"DIR"
         ~doc:"Directory where shrunk counterexamples are written.")

let replay =
  Arg.(value & opt_all string [] & info [ "replay" ] ~docv:"PATH"
         ~doc:"Replay a corpus file (or every *.scn of a directory) instead of fuzzing; repeatable.")

let list_oracles =
  Arg.(value & flag & info [ "list-oracles" ] ~doc:"List oracle families and exit.")

let cmd =
  let doc = "Metamorphic fuzzing of the mapping-selection engine" in
  Cmd.v
    (Cmd.info "fuzz_run" ~doc)
    Term.(
      const run $ seed $ budget $ oracle $ fault $ Cli.jobs $ Cli.cache
      $ Cli.trace $ corpus_dir $ replay $ list_oracles)

let () = exit (Cmd.eval' cmd)
