(* Generate an iBench-style scenario and write it as a scenario document. *)

open Cmdliner

let parse_primitives spec =
  (* "CP=2,ME=1" *)
  let parts = String.split_on_char ',' spec in
  let parse_part part =
    match String.split_on_char '=' (String.trim part) with
    | [ kind; count ] -> (
      match Ibench.Primitive.of_string kind, int_of_string_opt count with
      | Some k, Some n when n >= 0 -> Ok (k, n)
      | None, _ -> Error (Printf.sprintf "unknown primitive %s" kind)
      | _, None -> Error (Printf.sprintf "bad count %s" count)
      | Some _, Some _ -> Error (Printf.sprintf "negative count in %s" part))
    | [ kind ] -> (
      match Ibench.Primitive.of_string kind with
      | Some k -> Ok (k, 1)
      | None -> Error (Printf.sprintf "unknown primitive %s" kind))
    | _ -> Error (Printf.sprintf "bad primitive spec %s" part)
  in
  List.fold_left
    (fun acc part ->
      match acc, parse_part part with
      | Error _, _ -> acc
      | _, Error e -> Error e
      | Ok l, Ok p -> Ok (l @ [ p ]))
    (Ok []) parts

let run primitives seed cache trace rows pi_corresp pi_errors pi_unexplained
    stats output =
 try
  Cli.install_trace trace;
  let primitives =
    match primitives with
    | None -> List.map (fun k -> (k, 1)) Ibench.Primitive.all
    | Some spec -> (
      match parse_primitives spec with
      | Ok l -> l
      | Error msg -> Cli.die "%s" msg)
  in
  let config =
    {
      Ibench.Config.default with
      Ibench.Config.primitives;
      seed;
      rows_per_relation = rows;
      pi_corresp;
      pi_errors;
      pi_unexplained;
    }
  in
  (match Ibench.Config.validate config with
  | Ok () -> ()
  | Error msg -> Cli.die "scenario_gen: invalid configuration: %s" msg);
  let s = Ibench.Generator.generate config in
  let doc =
    {
      Serialize.Document.source = s.Ibench.Scenario.source;
      target = s.Ibench.Scenario.target;
      src_fkeys = s.Ibench.Scenario.src_fkeys;
      tgt_fkeys = s.Ibench.Scenario.tgt_fkeys;
      correspondences = s.Ibench.Scenario.correspondences;
      tgds = s.Ibench.Scenario.candidates;
      instance_i = s.Ibench.Scenario.instance_i;
      instance_j = s.Ibench.Scenario.instance_j;
    }
  in
  Format.eprintf "%a@." Ibench.Scenario.pp_summary s;
  if stats then begin
    (* chase each candidate (through the evaluation cache, when one is
       configured) and report what the selection pipeline would see *)
    let p =
      Core.Problem.make
        ?cache:(Cli.resolve_cache cache)
        ~source:s.Ibench.Scenario.instance_i ~j:s.Ibench.Scenario.instance_j
        s.Ibench.Scenario.candidates
    in
    Format.eprintf "candidate statistics:@.";
    Array.iter
      (fun (st : Cover.tgd_stats) ->
        Format.eprintf "  %-10s covers=%d errors=%d produced=%d size=%d@."
          st.Cover.tgd.Logic.Tgd.label
          (List.length (Cover.covered_targets st))
          (Cover.error_count st) st.Cover.produced st.Cover.size)
      p.Core.Problem.stats
  end;
  match output with
  | None -> print_string (Serialize.Document.to_string doc)
  | Some path -> Serialize.Document.save path doc
 with Sys_error msg ->
  (* a dangling --cache or --output reference is a usage error, not a crash *)
  Cli.die "scenario_gen: %s" msg

let primitives =
  Arg.(value & opt (some string) None & info [ "p"; "primitives" ]
         ~docv:"SPEC" ~doc:"Primitive counts, e.g. 'CP=2,ME=1,VP=1'; one of each when omitted.")

let seed = Cli.seed ~default:42 ~doc:"Generator seed."

let rows = Arg.(value & opt int 8 & info [ "rows" ] ~doc:"Source rows per relation.")

let pi name doc = Arg.(value & opt int 0 & info [ name ] ~doc)

let stats =
  Arg.(value & flag & info [ "stats" ]
         ~doc:"Chase each candidate and print its coverage/error statistics \
               to stderr (uses the evaluation cache when one is configured).")

let output =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
         ~doc:"Output file; stdout when omitted.")

let cmd =
  let doc = "Generate iBench-style mapping-selection scenarios" in
  Cmd.v
    (Cmd.info "scenario_gen" ~doc)
    Term.(
      const run $ primitives $ seed $ Cli.cache $ Cli.trace $ rows
      $ pi "pi-corresp" "Percent of target relations with random correspondences."
      $ pi "pi-errors" "Percent of non-certain error tuples deleted from J."
      $ pi "pi-unexplained" "Percent of non-certain unexplained tuples added to J."
      $ stats $ output)

let () = exit (Cmd.eval cmd)
