(* CLI for the experiment suite: run all tables/figures or a selection by
   id, in plain text, markdown or CSV. *)

open Cmdliner

type format =
  | Text
  | Markdown
  | Csv

let render format table =
  match format with
  | Text -> Experiments.Table.to_string table
  | Markdown -> Experiments.Table.to_markdown table
  | Csv -> Experiments.Table.to_csv table

let run_ids format jobs cache trace ids =
  Cli.install_trace trace;
  let cache = Cli.resolve_cache cache in
  Cli.install_signal_flush ?cache ();
  let ctx =
    Experiments.Common.Ctx.create ?cache ~jobs:(Cli.resolve_jobs jobs) ()
  in
  let to_run =
    match ids with
    | [] -> List.map (fun (id, _, run) -> (id, run)) Experiments.Registry.all
    | ids ->
      List.map
        (fun id ->
          match Experiments.Registry.find id with
          | Some run -> (String.uppercase_ascii id, run)
          | None ->
            Printf.eprintf "unknown experiment %s; known:\n" id;
            List.iter
              (fun (id, desc, _) -> Printf.eprintf "  %-4s %s\n" id desc)
              Experiments.Registry.all;
            exit 2)
        ids
  in
  (* a single experiment parallelises internally (per-seed scenario solves);
     several independent experiments additionally fan out over the context's
     pool, each rendered off-line and printed in request order *)
  Fun.protect
    ~finally:(fun () -> Experiments.Common.Ctx.shutdown ctx)
    (fun () ->
      let rendered =
        match to_run with
        | [ (_, run) ] -> [ render format (run ctx) ]
        | _ when Experiments.Common.Ctx.jobs ctx <= 1 ->
          List.map (fun (_, run) -> render format (run ctx)) to_run
        | _ ->
          Parallel.Pool.parallel_map_list ~chunk:1
            (Experiments.Common.Ctx.pool ctx)
            (fun (_, run) -> render format (run ctx))
            to_run
      in
      List.iter print_endline rendered)

let ids =
  Arg.(value & pos_all string [] & info [] ~docv:"ID"
         ~doc:"Experiment ids (E1..E15); all when omitted.")

let fmt_conv =
  Arg.conv
    ( (function
        | "text" -> Ok Text
        | "md" | "markdown" -> Ok Markdown
        | "csv" -> Ok Csv
        | s -> Error (`Msg (Printf.sprintf "unknown format %s" s))),
      fun ppf f ->
        Format.pp_print_string ppf
          (match f with Text -> "text" | Markdown -> "md" | Csv -> "csv") )

let format =
  Arg.(value & opt fmt_conv Text & info [ "format" ] ~docv:"FMT"
         ~doc:"Output format: text, md or csv.")

let cmd =
  let doc = "Run the reproduction's experiment suite" in
  Cmd.v (Cmd.info "run_experiments" ~doc)
    Term.(const run_ids $ format $ Cli.jobs $ Cli.cache $ Cli.trace $ ids)

let () = exit (Cmd.eval cmd)
