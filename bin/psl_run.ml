(* Run a PSL program from a file: ground, MAP-infer, print the open atoms;
   optionally learn rule weights from the open-predicate observations
   first. *)

open Cmdliner

let run path learn iterations rate trace =
  Cli.install_trace trace;
  match Psl.Program.parse_file path with
  | Error e ->
    Format.eprintf "%s: %a@." path Psl.Program.pp_error e;
    exit 1
  | Ok program ->
    let db = Psl.Program.database program in
    let rules =
      if learn then begin
        let options =
          { Psl.Learn.default_options with Psl.Learn.iterations; rate }
        in
        let learned = Psl.Learn.learn ~options db program.Psl.Program.rules in
        Format.printf "learned weights:@.";
        List.iter
          (fun (r : Psl.Rule.t) ->
            match r.Psl.Rule.weight with
            | Some w -> Format.printf "  %-12s %.4f@." r.Psl.Rule.label w
            | None -> Format.printf "  %-12s hard@." r.Psl.Rule.label)
          learned;
        learned
      end
      else program.Psl.Program.rules
    in
    (match Psl.Grounding.ground db rules with
    | exception Psl.Grounding.Unsatisfiable_hard_rule label ->
      Format.eprintf "hard rule %s is unsatisfiable@." label;
      exit 1
    | g ->
      let r = Psl.Grounding.map_inference g in
      Format.printf
        "ground model: %d atoms, %d groundings; ADMM %d iterations \
         (converged %b), energy %.4f@.@."
        (Array.length g.Psl.Grounding.atoms)
        g.Psl.Grounding.groundings r.Psl.Admm.iterations r.Psl.Admm.converged
        (r.Psl.Admm.energy +. g.Psl.Grounding.constant_energy);
      Array.iteri
        (fun i atom ->
          Format.printf "%-40s %.3f@."
            (Psl.Gatom.to_string atom)
            r.Psl.Admm.solution.(i))
        g.Psl.Grounding.atoms)

let path =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM"
         ~doc:"The PSL program file.")

let learn =
  Arg.(value & flag & info [ "l"; "learn" ]
         ~doc:"Learn rule weights from the open-predicate observations first.")

let iterations =
  Arg.(value & opt int 25 & info [ "iterations" ] ~doc:"Learning iterations.")

let rate = Arg.(value & opt float 0.5 & info [ "rate" ] ~doc:"Learning rate.")

let cmd =
  let doc = "MAP inference (and weight learning) for PSL programs" in
  Cmd.v (Cmd.info "psl_run" ~doc)
    Term.(const run $ path $ learn $ iterations $ rate $ Cli.trace)

let () = exit (Cmd.eval cmd)
