(* The perf regression gate: diff a fresh BENCH_<n>.json against the
   committed baseline with a multiplicative tolerance band.

   Exit status: 0 within bands, 1 on a regression (every violation listed
   on stdout), 2 on usage errors or unreadable/invalid reports. *)

open Cmdliner

let run baseline fresh band =
  if band < 1. then Cli.die "--band must be >= 1 (got %g)" band;
  let read what path =
    match Perf.Report.load path with
    | Ok r -> r
    | Error msg -> Cli.die "%s report: %s" what msg
  in
  let baseline = read "baseline" baseline in
  let fresh = read "fresh" fresh in
  match Perf.Report.gate ~band ~baseline ~fresh () with
  | [] ->
    Printf.printf "bench gate: OK (%d ratios, %d kernels within band %.1f)\n"
      (List.length baseline.Perf.Report.ratios)
      (List.length baseline.Perf.Report.kernels)
      band;
    0
  | violations ->
    List.iter (Printf.printf "REGRESSION %s\n") violations;
    Printf.printf "bench gate: %d violation(s)\n" (List.length violations);
    1

let baseline =
  Arg.(
    required
    & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:"The committed baseline BENCH_<n>.json.")

let fresh =
  Arg.(
    required
    & opt (some string) None
    & info [ "fresh" ] ~docv:"FILE" ~doc:"A freshly generated report.")

let band =
  Arg.(
    value & opt float 3.0
    & info [ "band" ] ~docv:"FACTOR"
        ~doc:
          "Multiplicative tolerance: ratios may drop to baseline/$(docv), \
           kernel timings may grow to baseline*$(docv).")

let cmd =
  let doc = "Gate a fresh bench report against the committed baseline" in
  Cmd.v
    (Cmd.info "bench_gate" ~doc)
    Term.(const run $ baseline $ fresh $ band)

let () = exit (Cmd.eval' cmd)
