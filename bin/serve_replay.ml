(* Replay harness for the serving daemon.

   Generates a deterministic campaign of fuzz-derived solve calls (request
   r<i> always carries the same content, whatever the arrival order),
   drives them through C concurrent client connections against a running
   cmd_serve, and then holds the daemon to its contracts:

   - byte-identity: the sorted response log is identical for any --jobs on
     the server side and any --shuffle arrival order, because ids are
     generation-indexed and bodies are pure functions of content;
   - duplicate contents (every request whose index collides mod
     --distinct) must receive byte-identical bodies within the run;
   - load behaviour: zero connection resets always; typed overloaded
     errors only when --expect-shed says the queue was sized to shed.

   Latency percentiles and throughput go into a schema-v2 Perf.Report
   (--json) whose server.* ratios bench_gate can floor against the
   committed baseline. *)

open Cmdliner

module Json = Util.Json

let now_ms () = Int64.to_float (Util.Timer.now_ns ()) /. 1.e6

(* --- campaign generation ------------------------------------------------ *)

let solvers = [| "greedy"; "local"; "anneal" |]

(* Mapping-case generator seeds: walk the seed line from the root, keeping
   seeds whose case is a mapping scenario (SET COVER cases would answer
   with unsupported_case — deterministic too, but useless for latency). *)
let content_seeds ~seed ~distinct =
  let out = Array.make distinct 0 in
  let rec fill i candidate =
    if i < distinct then
      let case = Fuzz.Gen.case ~seed:candidate in
      match case.Fuzz.Case.payload with
      | Fuzz.Case.Mapping _ ->
        out.(i) <- candidate;
        fill (i + 1) (candidate + 1)
      | Fuzz.Case.Setcover _ | Fuzz.Case.Multihop _ -> fill i (candidate + 1)
  in
  fill 0 seed;
  out

let request_line ~contents ~distinct i =
  let c = i mod distinct in
  let j =
    Json.Obj
      [
        ("id", Json.Str (Printf.sprintf "r%d" i));
        ("method", Json.Str "solve");
        ( "params",
          Json.Obj
            [
              ("case_seed", Json.Num (float_of_int contents.(c)));
              ("solver", Json.Str solvers.(c mod Array.length solvers));
              ("seed", Json.Num (float_of_int c));
            ] );
      ]
  in
  Json.to_string j

let arrival_order ~requests ~shuffle =
  let order = Array.init requests Fun.id in
  (match shuffle with
  | None -> ()
  | Some s ->
    let rng = Random.State.make [| s |] in
    for i = requests - 1 downto 1 do
      let k = Random.State.int rng (i + 1) in
      let tmp = order.(i) in
      order.(i) <- order.(k);
      order.(k) <- tmp
    done);
  order

(* --- client connections ------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  pending : int Queue.t;  (* assigned request indices, arrival order *)
  mutable cur : (string * int * int) option;  (* line+\n, idx, offset *)
  sendq : (string * int) Queue.t;
  mutable outstanding : int;
}

let connect endpoint =
  let addr, domain =
    match endpoint with
    | Cli.Unix_socket path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
    | Cli.Tcp (host, port) ->
      (Unix.ADDR_INET (Unix.inet_addr_of_string host, port), Unix.PF_INET)
  in
  (* the daemon may still be booting (CI starts it in the background) *)
  let rec attempt tries =
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when tries > 0 ->
      Unix.close fd;
      Unix.sleepf 0.1;
      attempt (tries - 1)
  in
  let fd = attempt 100 in
  Unix.set_nonblock fd;
  fd

let top_up ~window ~lines conn =
  let cap = if window <= 0 then max_int else window in
  while conn.outstanding < cap && not (Queue.is_empty conn.pending) do
    let idx = Queue.pop conn.pending in
    Queue.add (lines.(idx) ^ "\n", idx) conn.sendq;
    conn.outstanding <- conn.outstanding + 1
  done

let flush_sendq ~sent_at conn =
  let rec loop () =
    (match conn.cur with
    | None -> (
      match Queue.take_opt conn.sendq with
      | Some (line, idx) -> conn.cur <- Some (line, idx, 0)
      | None -> ())
    | Some _ -> ());
    match conn.cur with
    | None -> ()
    | Some (line, idx, off) -> (
      let len = String.length line - off in
      match Unix.write_substring conn.fd line off len with
      | n when n = len ->
        sent_at.(idx) <- now_ms ();
        conn.cur <- None;
        loop ()
      | n ->
        conn.cur <- Some (line, idx, off + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ())
  in
  loop ()

(* --- response accounting ------------------------------------------------ *)

type tally = {
  bodies : string option array;  (* canonical result/error body per idx *)
  shed_mask : bool array;  (* idx answered with a typed overloaded error *)
  done_at : float array;
  mutable completed : int;
  mutable shed : int;
  mutable resets : int;
  unexpected : (string * string) Queue.t;  (* id, error line *)
}

let record tally line =
  match Json.parse_line line with
  | Error e ->
    Queue.add ("?", Format.asprintf "unparseable frame (%a)" Json.pp_error e)
      tally.unexpected
  | Ok j -> (
    if Json.member "progress" j <> None then ()
    else
      let idx =
        match Option.bind (Json.member "id" j) Json.to_str with
        | Some s when String.length s > 1 && s.[0] = 'r' ->
          int_of_string_opt (String.sub s 1 (String.length s - 1))
        | _ -> None
      in
      match idx with
      | None -> Queue.add ("?", line) tally.unexpected
      | Some i ->
        let body, kind =
          match (Json.member "result" j, Json.member "error" j) with
          | Some r, _ -> (Json.to_string r, None)
          | None, Some e ->
            ( Json.to_string e,
              Option.bind (Json.member "kind" e) Json.to_str )
          | None, None -> (line, Some "malformed")
        in
        (match kind with
        | None -> ()
        | Some "overloaded" ->
          tally.shed <- tally.shed + 1;
          tally.shed_mask.(i) <- true
        | Some k -> Queue.add (Printf.sprintf "r%d" i, k ^ ": " ^ body) tally.unexpected);
        if tally.bodies.(i) = None then begin
          tally.bodies.(i) <- Some body;
          tally.done_at.(i) <- now_ms ();
          tally.completed <- tally.completed + 1
        end)

let drain_lines conn handle =
  let data = Buffer.contents conn.inbuf in
  let n = String.length data in
  let start = ref 0 in
  (try
     while !start < n do
       match String.index_from data !start '\n' with
       | nl ->
         handle (String.sub data !start (nl - !start));
         start := nl + 1
       | exception Not_found -> raise Exit
     done
   with Exit -> ());
  Buffer.clear conn.inbuf;
  Buffer.add_substring conn.inbuf data !start (n - !start)

(* --- the drive loop ----------------------------------------------------- *)

let drive ~conns ~lines ~owner ~window ~tally ~sent_at ~requests =
  let idx_conn i = conns.(owner.(i)) in
  let handle_response line =
    record tally line;
    (* top up whichever connection just freed a slot *)
    match Json.parse_line line with
    | Ok j when Json.member "progress" j = None -> (
      match Option.bind (Json.member "id" j) Json.to_str with
      | Some s when String.length s > 1 && s.[0] = 'r' -> (
        match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
        | Some i when i >= 0 && i < requests ->
          let c = idx_conn i in
          c.outstanding <- c.outstanding - 1;
          top_up ~window ~lines c
        | _ -> ())
      | _ -> ())
    | _ -> ()
  in
  let deadline = now_ms () +. 300_000. in
  while tally.completed < requests && now_ms () < deadline do
    let rfds = Array.to_list (Array.map (fun c -> c.fd) conns) in
    let wfds =
      Array.to_list conns
      |> List.filter (fun c -> c.cur <> None || not (Queue.is_empty c.sendq))
      |> List.map (fun c -> c.fd)
    in
    match Unix.select rfds wfds [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
      List.iter
        (fun fd ->
          let conn = Array.to_list conns |> List.find (fun c -> c.fd = fd) in
          flush_sendq ~sent_at conn)
        writable;
      List.iter
        (fun fd ->
          let conn = Array.to_list conns |> List.find (fun c -> c.fd = fd) in
          let chunk = Bytes.create 8192 in
          let rec rd () =
            match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
            | 0 -> tally.resets <- tally.resets + 1
            | n ->
              Buffer.add_subbytes conn.inbuf chunk 0 n;
              rd ()
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
              -> ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> rd ()
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
              -> tally.resets <- tally.resets + 1
          in
          rd ();
          drain_lines conn handle_response)
        readable
  done

(* One synchronous call on an already-drained connection. *)
let call conn line =
  let payload = line ^ "\n" in
  let len = String.length payload in
  let off = ref 0 in
  while !off < len do
    match Unix.write_substring conn.fd payload !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ignore (Unix.select [] [ conn.fd ] [] 1.0)
  done;
  let answer = ref None in
  let deadline = now_ms () +. 30_000. in
  while !answer = None && now_ms () < deadline do
    (match Unix.select [ conn.fd ] [] [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      let chunk = Bytes.create 8192 in
      match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
      | 0 -> failwith "connection closed mid-call"
      | n -> Buffer.add_subbytes conn.inbuf chunk 0 n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()));
    drain_lines conn (fun l -> if !answer = None then answer := Some l)
  done;
  match !answer with
  | Some l -> l
  | None -> failwith "no answer to control call within 30s"

(* --- reporting ---------------------------------------------------------- *)

let build_report ~bench ~jobs ~requests ~connections ~latencies ~wall_s ~shed
    ~coalesced ~s_identical ~s_at_ms =
  let p50 = Util.Stats.percentile 50. latencies in
  let p99 = Util.Stats.percentile 99. latencies in
  let mean = Util.Stats.mean latencies in
  let throughput = float_of_int requests /. wall_s in
  let ratio name value = { Perf.Report.r_name = name; value } in
  {
    Perf.Report.schema_version = 2;
    bench;
    jobs;
    kernels = [];
    ratios =
      [
        ratio "server.throughput-rps" throughput;
        ratio "server.p50-rps" (1000. /. p50);
        ratio "server.p99-rps" (1000. /. p99);
      ];
    pool = [];
    cache = None;
    telemetry = None;
    server =
      Some
        {
          Perf.Report.requests;
          concurrency = connections;
          p50_ms = p50;
          p99_ms = p99;
          mean_ms = mean;
          throughput_rps = throughput;
          shed;
          coalesced;
          s_identical;
          s_at_ms;
        };
  }

(* --- main --------------------------------------------------------------- *)

let run socket port requests connections distinct seed shuffle jobs window
    expect_shed bench json_out log_out do_shutdown =
  let endpoint = Cli.resolve_endpoint ~socket ~port in
  if requests < 1 then Cli.die "--requests must be at least 1";
  if connections < 1 then Cli.die "--connections must be at least 1";
  let distinct = min distinct requests in
  if distinct < 1 then Cli.die "--distinct must be at least 1";
  let t0 = now_ms () in
  let contents = content_seeds ~seed ~distinct in
  let lines = Array.init requests (request_line ~contents ~distinct) in
  let order = arrival_order ~requests ~shuffle in
  let conns = Array.init connections (fun _ -> connect endpoint) in
  let conns =
    Array.map
      (fun fd ->
        {
          fd;
          inbuf = Buffer.create 4096;
          pending = Queue.create ();
          cur = None;
          sendq = Queue.create ();
          outstanding = 0;
        })
      conns
  in
  (* request at arrival position p goes to connection p mod C *)
  let owner = Array.make requests 0 in
  Array.iteri
    (fun p idx ->
      owner.(idx) <- p mod connections;
      Queue.add idx conns.(p mod connections).pending)
    order;
  let sent_at = Array.make requests 0. in
  let tally =
    {
      bodies = Array.make requests None;
      shed_mask = Array.make requests false;
      done_at = Array.make requests 0.;
      completed = 0;
      shed = 0;
      resets = 0;
      unexpected = Queue.create ();
    }
  in
  Array.iter (top_up ~window ~lines) conns;
  let start = now_ms () in
  drive ~conns ~lines ~owner ~window ~tally ~sent_at ~requests;
  let wall_s = (now_ms () -. start) /. 1000. in
  if tally.completed < requests then
    Cli.die "replay stalled: %d of %d responses after %.0fs" tally.completed
      requests wall_s;
  (* identity within the run: same content (and not shed) => same body *)
  let groups = Hashtbl.create distinct in
  Array.iteri
    (fun i body ->
      match body with
      | None -> ()
      | Some _ when tally.shed_mask.(i) -> ()
      | Some b -> (
        let c = i mod distinct in
        match Hashtbl.find_opt groups c with
        | None -> Hashtbl.replace groups c b
        | Some prev when prev = b -> ()
        | Some _ -> Hashtbl.replace groups c "\000mismatch"))
    tally.bodies;
  let s_identical =
    Hashtbl.fold (fun _ b acc -> acc && b <> "\000mismatch") groups true
  in
  (* server-side accounting *)
  let stats_line =
    call conns.(0)
      (Json.to_string
         (Json.Obj [ ("id", Json.Str "stats"); ("method", Json.Str "stats") ]))
  in
  let coalesced =
    match Json.parse_line stats_line with
    | Ok j ->
      Option.value ~default:0
        (Option.bind
           (Option.bind (Json.member "result" j) (Json.member "coalesced"))
           Json.to_int)
    | Error _ -> 0
  in
  if do_shutdown then
    ignore
      (call conns.(0)
         (Json.to_string
            (Json.Obj
               [ ("id", Json.Str "bye"); ("method", Json.Str "shutdown") ])));
  Array.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
  (* the sorted response log: id-keyed frames, content-stable ids *)
  Option.iter
    (fun path ->
      let entries =
        Array.to_list
          (Array.mapi
             (fun i b -> Printf.sprintf "r%d\t%s" i (Option.value b ~default:""))
             tally.bodies)
      in
      let oc = open_out path in
      List.iter (fun l -> output_string oc (l ^ "\n")) (List.sort compare entries);
      close_out oc)
    log_out;
  let latencies =
    Array.to_list (Array.mapi (fun i d -> d -. sent_at.(i)) tally.done_at)
  in
  let report =
    build_report ~bench ~jobs ~requests ~connections ~latencies ~wall_s
      ~shed:tally.shed ~coalesced ~s_identical ~s_at_ms:(now_ms () -. t0)
  in
  (match Perf.Report.validate report with
  | [] -> ()
  | issues ->
    Cli.die "internal: replay report fails validation: %s"
      (String.concat "; " issues));
  Option.iter (fun path -> Perf.Report.save path report) json_out;
  Printf.printf
    "replay: %d requests over %d connections in %.2fs (%.0f rps)\n\
     latency ms: p50 %.2f  p99 %.2f  mean %.2f\n\
     shed %d  coalesced %d  resets %d  identical %b\n"
    requests connections wall_s
    (float_of_int requests /. wall_s)
    (Util.Stats.percentile 50. latencies)
    (Util.Stats.percentile 99. latencies)
    (Util.Stats.mean latencies) tally.shed coalesced tally.resets s_identical;
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  if tally.resets > 0 then fail "%d connection resets (must be 0)" tally.resets;
  if not s_identical then fail "duplicate contents got different bodies";
  if expect_shed && tally.shed = 0 then
    fail "--expect-shed, but no overloaded responses";
  if (not expect_shed) && tally.shed > 0 then
    fail "%d overloaded responses in a run sized not to shed" tally.shed;
  Queue.iter
    (fun (id, msg) -> fail "unexpected response for %s: %s" id msg)
    tally.unexpected;
  match !failures with
  | [] -> ()
  | fs ->
    List.iter (fun m -> Printf.eprintf "serve_replay: %s\n" m) (List.rev fs);
    exit 1

let requests =
  Arg.(value & opt int 1000 & info [ "n"; "requests" ] ~docv:"N"
         ~doc:"Solve calls to issue.")

let connections =
  Arg.(value & opt int 8 & info [ "c"; "connections" ] ~docv:"C"
         ~doc:"Concurrent client connections.")

let distinct =
  Arg.(value & opt int 25 & info [ "distinct" ] ~docv:"D"
         ~doc:"Distinct request contents; request i reuses content i mod D, \
               so duplicates exercise coalescing and the warm cache.")

let seed = Cli.seed ~default:7 ~doc:"Root seed for the fuzz-generated scenarios."

let shuffle =
  Arg.(value & opt (some int) None & info [ "shuffle" ] ~docv:"SEED"
         ~doc:"Shuffle the arrival order with this seed (default: issue in \
               generation order). Any two shuffles must produce the same \
               sorted response log.")

let jobs_flag =
  Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N"
         ~doc:"Recorded in the report: the --jobs the daemon was started \
               with (the replay itself is single-threaded).")

let window =
  Arg.(value & opt int 8 & info [ "window" ] ~docv:"W"
         ~doc:"In-flight requests per connection; 0 floods every request at \
               once (pair with --expect-shed and an undersized --queue).")

let expect_shed =
  Arg.(value & flag & info [ "expect-shed" ]
         ~doc:"Require at least one typed overloaded response (and exclude \
               shed responses from the identity check).")

let bench =
  Arg.(value & opt int 7 & info [ "bench" ] ~docv:"N"
         ~doc:"Trajectory index recorded in the report.")

let json_out =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"PATH"
         ~doc:"Write the schema-v2 Perf.Report here.")

let log_out =
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"PATH"
         ~doc:"Write the sorted response log here (byte-identical across \
               daemon --jobs and arrival shuffles).")

let do_shutdown =
  Arg.(value & flag & info [ "shutdown" ]
         ~doc:"Send a shutdown call once the campaign completes.")

let cmd =
  let doc = "Drive a running cmd_serve and check its contracts" in
  Cmd.v
    (Cmd.info "serve_replay" ~doc)
    Term.(
      const run $ Cli.socket $ Cli.port $ requests $ connections $ distinct
      $ seed $ shuffle $ jobs_flag $ window $ expect_shed $ bench $ json_out
      $ log_out $ do_shutdown)

let () = exit (Cmd.eval cmd)
