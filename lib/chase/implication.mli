(** Logical implication between st tgds, decided with the chase.

    [θ ⊨ θ'] iff every pair [(I, J)] satisfying [θ] also satisfies [θ'].
    The standard test freezes the body of [θ'] into a canonical source
    instance, chases it with [θ], and checks whether the frozen head of
    [θ'] is entailed — i.e. whether the head maps homomorphically into the
    chase result with the frontier variables fixed to their frozen values.

    Variables are frozen into labeled nulls with negative labels: a
    namespace no tgd can name (a [Term.Cst] only matches a [Value.Const])
    and that the chase never invents (its nulls are labeled from 0 upward).
    This makes the test sound for arbitrary constants, including ones that
    look like frozen variables.

    Implication is what candidate-set minimisation needs: a candidate
    implied by another candidate of no greater size is redundant. The
    set-level and multi-hop variants ({!implied_by}, {!implied_through})
    are the primitives of the mapping algebra ({!Algebra}): whole-mapping
    containment and the verification step of chase-based composition. *)

val implies : Logic.Tgd.t -> Logic.Tgd.t -> bool
(** [implies strong weak] is [true] iff [strong ⊨ weak]. *)

val implied_by : by : Logic.Tgd.t list -> Logic.Tgd.t -> bool
(** [implied_by ~by θ] is [true] iff the tgd set [by] logically implies [θ]:
    the frozen body of [θ] chased with every tgd of [by] (one round — st
    tgds never feed each other) entails the frozen head. *)

val implied_through : hops : Logic.Tgd.t list list -> Logic.Tgd.t -> bool
(** [implied_through ~hops:[m1; ...; mk] θ] decides whether [θ] holds in
    the composition [m1 ∘ ... ∘ mk]: the frozen body of [θ] is chased with
    [m1], the result with [m2], and so on (one shared null source, so hop
    labels never collide), and the frozen head must be entailed by the final
    instance. [implied_by ~by m] is [implied_through ~hops:[m]]. *)

val equivalent : Logic.Tgd.t -> Logic.Tgd.t -> bool
(** Mutual implication. Coarser than [Tgd.equal_up_to_renaming] — it also
    identifies tgds that differ by redundant atoms. *)

val minimize : Logic.Tgd.t list -> Logic.Tgd.t list
(** Removes every candidate implied by an earlier-or-smaller candidate:
    among logically equivalent candidates the smallest (then earliest)
    survives; a candidate strictly implied by a {e smaller or equal-sized}
    one is dropped. The relative order of survivors is preserved. *)

val minimize_tgd : Logic.Tgd.t -> Logic.Tgd.t
(** Removes redundant body atoms (greedily, by position, keeping the tgd
    logically equivalent), lowering [Tgd.size] and therefore the selection
    cost of an otherwise identical candidate. The frontier is preserved: an
    atom whose removal would unbind a head variable is kept. *)
