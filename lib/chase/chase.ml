include Engine
module Core_solution = Core_solution
module Implication = Implication
module Certain = Certain
module Egd = Egd
