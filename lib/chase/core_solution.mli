(** Core universal solutions (ten Cate et al., "Laconic schema mappings").

    The core of an instance with labeled nulls is its minimal retract: the
    smallest sub-instance it maps into homomorphically with constants fixed.
    Cores of universal solutions are themselves universal, so coring the
    chased target shrinks [K_M] without losing solutions — the opt-in
    [~core:true] stage of [Core.Problem.make].

    [core] runs iterated proper-endomorphism elimination: while some
    non-ground tuple [t0] admits a homomorphism of its null-connected
    component into the instance minus [t0], replace the component by its
    image. The search is deterministic (ascending tuple order), so the
    returned sub-instance is a pure function of its input — the
    [core-solution] fuzz family pins sub-instance containment,
    homomorphic equivalence in both directions, and idempotence. *)

val core : Relational.Instance.t -> Relational.Instance.t
(** The core, as a sub-instance of the input. *)

val is_core : Relational.Instance.t -> bool
(** [true] iff the instance has no proper endomorphism. *)

val hom_exists :
  from:Relational.Instance.t -> into:Relational.Instance.t -> bool
(** [true] iff a homomorphism maps every tuple of [from] onto a tuple of
    [into], fixing constants and mapping labeled nulls anywhere. *)
