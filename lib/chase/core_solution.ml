open Relational
open Util

(* Core universal solutions by iterated proper-endomorphism elimination
   (ten Cate, Chiticariu, Kolaitis, Tan — "Laconic schema mappings").

   A proper endomorphism of an instance J with labeled nulls is a
   homomorphism h : J -> J (constants fixed, nulls anywhere) whose image
   misses at least one tuple; J is a core iff none exists. Since ground
   tuples are fixed points, only a non-ground tuple t0 can be missed, and a
   proper endomorphism avoiding t0 exists iff the connected component of t0
   (tuples linked through shared nulls) maps homomorphically into J minus
   t0 — tuples outside the component ride along on the identity. The chase
   invents nulls per trigger, so components are trigger-group-sized and the
   backtracking search stays local even on large solutions. *)

let tuple_nulls (t : Tuple.t) =
  Array.fold_left
    (fun acc v -> match v with Value.Null _ -> Value.Set.add v acc | Value.Const _ -> acc)
    Value.Set.empty t.values

let is_ground (t : Tuple.t) =
  Array.for_all (function Value.Const _ -> true | Value.Null _ -> false) t.values

(* Extend [asg] (null -> value) so that tuple [pattern] maps exactly onto
   [target]; [None] on conflict. Targets may themselves contain nulls: an
   endomorphism is free to map a null onto another null. *)
let match_onto ~asg (pattern : Tuple.t) (target : Tuple.t) =
  if not (String.equal pattern.Tuple.rel target.Tuple.rel) then None
  else if Array.length pattern.values <> Array.length target.values then None
  else
    let n = Array.length pattern.values in
    let rec loop i asg =
      if i >= n then Some asg
      else
        match pattern.values.(i) with
        | Value.Const _ as c ->
          if Value.equal c target.values.(i) then loop (i + 1) asg else None
        | Value.Null _ as nul -> (
          match Value.Map.find_opt nul asg with
          | Some bound ->
            if Value.equal bound target.values.(i) then loop (i + 1) asg
            else None
          | None -> loop (i + 1) (Value.Map.add nul target.values.(i) asg))
    in
    loop 0 asg

let apply_asg asg (t : Tuple.t) =
  {
    t with
    Tuple.values =
      Array.map
        (fun v ->
          match v with
          | Value.Const _ -> v
          | Value.Null _ -> (
            match Value.Map.find_opt v asg with Some v' -> v' | None -> v))
        t.values;
  }

(* Search a homomorphism sending every pattern tuple onto some target
   tuple, extending [asg]; patterns are tried in order, targets in the
   order given. Deterministic and complete. *)
let rec search_hom ~targets ~asg = function
  | [] -> Some asg
  | (pattern : Tuple.t) :: rest ->
    List.fold_left
      (fun found target ->
        match found with
        | Some _ -> found
        | None -> (
          match match_onto ~asg pattern target with
          | None -> None
          | Some asg' -> search_hom ~targets ~asg:asg' rest))
      None (targets pattern)

(* Connected component of [start] within [tuples] (an [(id, nulls)] list of
   non-ground tuples): the least set containing [start] and closed under
   sharing a null. Returned ascending by id. *)
let component ~tuples start =
  let seen = Hashtbl.create 16 in
  let rec grow frontier_nulls members =
    let fresh =
      List.filter
        (fun (i, nulls) ->
          (not (Hashtbl.mem seen i))
          && not (Value.Set.is_empty (Value.Set.inter nulls frontier_nulls)))
        tuples
    in
    if fresh = [] then members
    else begin
      List.iter (fun (i, _) -> Hashtbl.replace seen i ()) fresh;
      let nulls =
        List.fold_left
          (fun acc (_, ns) -> Value.Set.union acc ns)
          frontier_nulls fresh
      in
      grow nulls (List.rev_append (List.map fst fresh) members)
    end
  in
  let _, start_nulls = List.find (fun (i, _) -> i = start) tuples in
  Hashtbl.replace seen start ();
  List.sort compare (grow start_nulls [ start ])

let hom_exists ~from ~into =
  let targets (pattern : Tuple.t) =
    Tuple.Set.elements (Instance.tuples_of into pattern.Tuple.rel)
  in
  let ground, nonground = List.partition is_ground (Instance.tuples from) in
  (* constants are fixed, so a ground tuple can only map to itself *)
  List.for_all (fun t -> Instance.mem t into) ground
  &&
  (* nulls never cross components, so the search factorizes per component *)
  let indexed = List.mapi (fun i t -> (i, t)) nonground in
  let with_nulls = List.map (fun (i, t) -> (i, tuple_nulls t)) indexed in
  let rec check remaining =
    match remaining with
    | [] -> true
    | (i, _) :: _ ->
      let comp = component ~tuples:with_nulls i in
      let patterns = List.map (fun k -> List.assoc k indexed) comp in
      Option.is_some (search_hom ~targets ~asg:Value.Map.empty patterns)
      && check (List.filter (fun (k, _) -> not (List.mem k comp)) remaining)
  in
  check with_nulls

let core inst =
  let tuples = Array.of_list (Instance.tuples inst) in
  let n = Array.length tuples in
  let alive = Bitset.create n in
  for i = 0 to n - 1 do
    Bitset.set alive i
  done;
  let id_of = Hashtbl.create (2 * n) in
  Array.iteri (fun i t -> Hashtbl.replace id_of t i) tuples;
  let by_rel = Hashtbl.create 16 in
  Array.iteri
    (fun i (t : Tuple.t) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_rel t.rel) in
      Hashtbl.replace by_rel t.rel (i :: prev))
    tuples;
  Hashtbl.iter (fun rel ids -> Hashtbl.replace by_rel rel (List.rev ids)) by_rel;
  let alive_of_rel rel =
    List.filter (Bitset.get alive)
      (Option.value ~default:[] (Hashtbl.find_opt by_rel rel))
  in
  (* try to eliminate [avoid]: map its component into alive \ {avoid} *)
  let try_avoid nonground avoid =
    let comp = component ~tuples:nonground avoid in
    let targets (pattern : Tuple.t) =
      List.filter_map
        (fun i -> if i = avoid then None else Some tuples.(i))
        (alive_of_rel pattern.Tuple.rel)
    in
    let patterns = List.map (fun i -> tuples.(i)) comp in
    match search_hom ~targets ~asg:Value.Map.empty patterns with
    | None -> None
    | Some asg -> Some (comp, asg)
  in
  let progress = ref true in
  while !progress do
    progress := false;
    let nonground =
      List.filter_map
        (fun i ->
          if Bitset.get alive i && not (is_ground tuples.(i)) then
            Some (i, tuple_nulls tuples.(i))
          else None)
        (List.init n Fun.id)
    in
    let eliminated =
      List.fold_left
        (fun done_ (i, _) ->
          if done_ || not (Bitset.get alive i) then done_
          else
            match try_avoid nonground i with
            | None -> false
            | Some (comp, asg) ->
              (* replace the component by its image; everything else is
                 untouched (the endomorphism is the identity there) *)
              let image =
                List.map (fun k -> Hashtbl.find id_of (apply_asg asg tuples.(k))) comp
              in
              List.iter (Bitset.clear alive) comp;
              List.iter (Bitset.set alive) image;
              true)
        false nonground
    in
    if eliminated then progress := true
  done;
  let out = ref Instance.empty in
  Bitset.iter_set (fun i -> out := Instance.add tuples.(i) !out) alive;
  !out

let is_core inst = Instance.equal (core inst) inst
