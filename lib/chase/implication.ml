open Relational
open Logic

module Smap = Map.Make (String)

(* Freeze variables into labeled nulls with negative labels. The frozen
   namespace is collision-proof twice over: a tgd can only name ordinary
   constants ([Term.Cst c] matches [Value.Const c] and nothing else), and the
   chase invents its nulls from 0 upward, so negative labels never clash with
   a null produced while chasing the frozen body. (The previous encoding
   froze [v] into the ordinary constant ["__frz_" ^ v]; a tgd or instance
   mentioning a real constant with that prefix made the test silently
   unsound.) *)
let freeze_map vars =
  String_set.elements vars
  |> List.mapi (fun i v -> (v, Value.Null (-i - 1)))
  |> List.to_seq |> Smap.of_seq

let freeze_atoms fm atoms =
  List.map
    (fun (a : Atom.t) ->
      let values =
        Array.map
          (function Term.Var v -> Smap.find v fm | Term.Cst c -> Value.Const c)
          a.Atom.args
      in
      { Tuple.rel = a.Atom.rel; values })
    atoms

let implied_through ~hops weak =
  (* Rename apart so freezing cannot capture variables across the tgds. *)
  let weak = Tgd.rename_apart ~suffix:"_w" weak in
  let fm = freeze_map (Tgd.body_vars weak) in
  let source = Instance.of_tuples (freeze_atoms fm weak.Tgd.body) in
  (* One null source threads through every hop, so the labels invented while
     chasing hop k can never collide with those carried over from hop k-1. *)
  let nulls = Null_source.create () in
  let chased =
    List.fold_left
      (fun inst hop -> Engine.universal_solution ~nulls inst hop)
      source hops
  in
  (* The frozen head must map into the chase result with frontier variables
     pinned to their frozen values. *)
  let frontier = Tgd.frontier_vars weak in
  let pinned =
    String_set.fold
      (fun v acc -> Subst.bind_exn v (Smap.find v fm) acc)
      frontier Subst.empty
  in
  Cq.extensions chased pinned weak.Tgd.head <> []

let implied_by ~by weak = implied_through ~hops:[ by ] weak

let implies strong weak = implied_by ~by:[ strong ] weak

let equivalent a b = implies a b && implies b a

let remove_at i l = List.filteri (fun j _ -> j <> i) l

let minimize_tgd (tgd : Tgd.t) =
  let head_vars = Tgd.head_vars tgd in
  let vars_of atoms =
    List.fold_left
      (fun acc a -> String_set.union acc (Atom.vars a))
      String_set.empty atoms
  in
  (* Positional removal: dropping index [i] removes exactly one occurrence,
     so a body sharing one physical atom twice shrinks one step at a time. *)
  let rec shrink (current : Tgd.t) =
    let try_without i =
      let body = remove_at i current.Tgd.body in
      if body = [] then None
      else
        let frontier_kept =
          String_set.subset
            (String_set.inter head_vars (vars_of current.Tgd.body))
            (vars_of body)
        in
        if not frontier_kept then None
        else
          let candidate =
            Tgd.make ~label:current.Tgd.label ~body ~head:current.Tgd.head ()
          in
          if equivalent candidate current then Some candidate else None
    in
    match
      List.find_map try_without
        (List.init (List.length current.Tgd.body) Fun.id)
    with
    | Some smaller -> shrink smaller
    | None -> current
  in
  shrink tgd

let minimize tgds =
  let arr = Array.of_list tgds in
  let n = Array.length arr in
  let redundant = Array.make n false in
  (* j is dropped when some other candidate i implies it and wins the
     tie-break: smaller size, or equal size and earlier position. *)
  let beats i j =
    let si = Tgd.size arr.(i) and sj = Tgd.size arr.(j) in
    si < sj || (si = sj && i < j)
  in
  for j = 0 to n - 1 do
    let i = ref 0 in
    while (not redundant.(j)) && !i < n do
      if !i <> j && (not redundant.(!i)) && beats !i j && implies arr.(!i) arr.(j)
      then redundant.(j) <- true;
      incr i
    done
  done;
  List.filteri (fun j _ -> not redundant.(j)) tgds
