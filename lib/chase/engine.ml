open Relational
open Logic

module Trigger = struct
  type t = {
    tgd_index : int;
    tgd : Tgd.t;
    subst : Subst.t;
    tuples : Tuple.t list;
    nulls : Value.Set.t;
  }

  let pp ppf t =
    Format.fprintf ppf "@[<h>%s[%a] => %a@]" t.tgd.Tgd.label Subst.pp t.subst
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         Tuple.pp)
      t.tuples
end

type result = {
  solution : Instance.t;
  triggers : Trigger.t list;
}

(* Instantiate one tgd over its body homomorphisms, inventing fresh nulls
   per firing. Shared by the row-major and columnar frontiers: the two only
   differ in how [answers] was computed, and since the columnar evaluator
   returns the same answer list in the same order, null labels — and hence
   the whole result — are byte-identical between the two paths. *)
let fire_answers ~nulls ~tgd_index (tgd : Tgd.t) answers =
  let existentials = String_set.elements (Tgd.existential_vars tgd) in
  let fire subst =
    let subst, invented =
      List.fold_left
        (fun (s, inv) v ->
          let null = Null_source.fresh nulls in
          (Subst.bind_exn v null s, Value.Set.add null inv))
        (subst, Value.Set.empty) existentials
    in
    let tuples = List.map (Subst.apply_atom_exn subst) tgd.Tgd.head in
    { Trigger.tgd_index; tgd; subst; tuples; nulls = invented }
  in
  List.map fire answers

let fire_tgd ~nulls ~tgd_index (tgd : Tgd.t) index =
  fire_answers ~nulls ~tgd_index tgd (Cq.answers_indexed index tgd.Tgd.body)

let runs_counter = Telemetry.Counter.make "chase.runs"

let triggers_counter = Telemetry.Counter.make "chase.triggers"

let tuples_counter = Telemetry.Counter.make "chase.tuples_produced"

let triggers_hist = Telemetry.Histogram.make "chase.triggers_per_run"

let finish triggers =
  let solution =
    List.fold_left
      (fun inst (tr : Trigger.t) -> Instance.add_all tr.Trigger.tuples inst)
      Instance.empty triggers
  in
  if Telemetry.enabled () then begin
    Telemetry.Counter.incr runs_counter;
    let n_triggers = List.length triggers in
    Telemetry.Counter.add triggers_counter n_triggers;
    Telemetry.Counter.add tuples_counter
      (List.fold_left
         (fun acc (tr : Trigger.t) -> acc + List.length tr.Trigger.tuples)
         0 triggers);
    Telemetry.Histogram.observe triggers_hist (float_of_int n_triggers)
  end;
  { solution; triggers }

let run ?nulls ?index src tgds =
  Telemetry.with_span "chase.run" @@ fun () ->
  let nulls = match nulls with Some n -> n | None -> Null_source.create () in
  (* one index over the source serves every tgd body; callers chasing the
     same source repeatedly (e.g. once per candidate) should build it once
     and pass it in *)
  let index = match index with Some i -> i | None -> Cq.Index.build src in
  let triggers =
    List.concat (List.mapi (fun i tgd -> fire_tgd ~nulls ~tgd_index:i tgd index) tgds)
  in
  finish triggers

let universal_solution ?nulls ?index src tgds = (run ?nulls ?index src tgds).solution

let run_columnar ?nulls col tgds =
  Telemetry.with_span "chase.run" @@ fun () ->
  let nulls = match nulls with Some n -> n | None -> Null_source.create () in
  let triggers =
    List.concat
      (List.mapi
         (fun i tgd ->
           fire_answers ~nulls ~tgd_index:i tgd
             (Cq.Columnar.answers col tgd.Tgd.body))
         tgds)
  in
  finish triggers

let check_result ~source { solution; triggers } =
  let union =
    List.fold_left
      (fun inst (tr : Trigger.t) -> Instance.add_all tr.Trigger.tuples inst)
      Instance.empty triggers
  in
  if not (Instance.equal union solution) then
    Error "solution is not the union of the trigger tuples"
  else
    let rec check_triggers seen = function
      | [] -> Ok ()
      | (tr : Trigger.t) :: rest ->
        if not (Value.Set.is_empty (Value.Set.inter seen tr.Trigger.nulls))
        then Error "two triggers share an invented null"
        else if
          List.exists
            (fun t ->
              not
                (Value.Set.subset (Tuple.nulls t)
                   (Value.Set.union seen tr.Trigger.nulls)))
            tr.Trigger.tuples
        then Error "a trigger tuple carries a null no trigger invented"
        else
          let body_hom =
            List.for_all
              (fun atom ->
                match Subst.apply_atom tr.Trigger.subst atom with
                | Some t -> Instance.mem t source
                | None -> false)
              tr.Trigger.tgd.Tgd.body
          in
          if not body_hom then
            Error "a trigger substitution is not a body homomorphism"
          else if
            not
              (List.equal Tuple.equal tr.Trigger.tuples
                 (List.map
                    (Subst.apply_atom_exn tr.Trigger.subst)
                    tr.Trigger.tgd.Tgd.head))
          then Error "trigger tuples disagree with the instantiated head"
          else check_triggers (Value.Set.union seen tr.Trigger.nulls) rest
    in
    check_triggers Value.Set.empty triggers

let satisfies ~source ~target (tgd : Tgd.t) =
  let frontier = Tgd.frontier_vars tgd in
  Cq.answers source tgd.Tgd.body
  |> List.for_all (fun subst ->
         let restricted =
           List.fold_left
             (fun acc (v, x) ->
               if String_set.mem v frontier then Subst.bind_exn v x acc else acc)
             Subst.empty (Subst.bindings subst)
         in
         Cq.extensions target restricted tgd.Tgd.head <> [])

let satisfies_all ~source ~target tgds =
  List.for_all (satisfies ~source ~target) tgds
