(** The oblivious chase for source-to-target tgds.

    Because st tgds only read from the source and only write to the target,
    the chase terminates after a single pass: every tgd fires once per body
    homomorphism into the source instance, with fresh nulls per firing. The
    union of the produced tuples is the canonical universal solution [K_M] of
    the source instance under the mapping. *)

(** One firing of one st tgd.

    The tuples produced by a single trigger share the nulls invented for the
    tgd's existential variables; this grouping ("trigger group") is what the
    Eq. 9 coverage semantics needs in order to corroborate null positions. *)
module Trigger : sig
  type t = {
    tgd_index : int;  (** index of the tgd within the chased mapping *)
    tgd : Logic.Tgd.t;
    subst : Logic.Subst.t;
        (** the body homomorphism, extended with the invented nulls for the
            existential variables *)
    tuples : Relational.Tuple.t list;
        (** head tuples produced, in head-atom order *)
    nulls : Relational.Value.Set.t;  (** nulls invented by this trigger *)
  }

  val pp : Format.formatter -> t -> unit
end

type result = {
  solution : Relational.Instance.t;  (** the canonical universal solution *)
  triggers : Trigger.t list;
      (** all firings, ordered by tgd index then substitution *)
}

val run :
  ?nulls : Relational.Null_source.t ->
  ?index : Logic.Cq.Index.t ->
  Relational.Instance.t ->
  Logic.Tgd.t list ->
  result
(** [run src tgds] chases [src] with the mapping [tgds]. Fresh nulls are
    drawn from [nulls] (a new source starting at 0 by default). Bodies are
    evaluated through [index] (built on demand when absent); callers that
    chase the same source many times should build the index once with
    [Logic.Cq.Index.build] and pass it in. *)

val universal_solution :
  ?nulls : Relational.Null_source.t ->
  ?index : Logic.Cq.Index.t ->
  Relational.Instance.t ->
  Logic.Tgd.t list ->
  Relational.Instance.t
(** Just the instance part of {!run}. *)

val run_columnar :
  ?nulls : Relational.Null_source.t ->
  Relational.Columnar.t ->
  Logic.Tgd.t list ->
  result
(** The chase over a columnar source. Byte-identical to {!run} on the
    corresponding row-major instance — the columnar evaluator enumerates
    body homomorphisms in the row-major order, so triggers fire in the same
    sequence and draw the same null labels (the [columnar-identity] fuzz
    family holds every build to this). Build the columnar instance once
    with {!Relational.Columnar.of_instance} and chase it per candidate. *)

val check_result :
  source : Relational.Instance.t -> result -> (unit, string) Stdlib.result
(** Verifies the internal invariants of a chase result: the solution is the
    union of the trigger tuples, invented nulls are pairwise disjoint across
    triggers and every null in a trigger tuple was invented by some trigger,
    each trigger's substitution is a body homomorphism into [source], and
    the trigger tuples are exactly the instantiated head atoms. A diagnostic
    hook for the fuzzing harness. *)

val satisfies :
  source : Relational.Instance.t ->
  target : Relational.Instance.t ->
  Logic.Tgd.t ->
  bool
(** [satisfies ~source ~target θ] is [true] iff the pair [(source, target)]
    satisfies [θ]: every homomorphism of the body into [source] extends to a
    homomorphism of the head into [target]. *)

val satisfies_all :
  source : Relational.Instance.t ->
  target : Relational.Instance.t ->
  Logic.Tgd.t list ->
  bool

(** Core universal solutions (see {!Core_solution}). *)
module Core_solution : module type of Core_solution

(** Logical implication between st tgds (see {!Implication}). *)
module Implication : module type of Implication

(** Certain answers over instances with labeled nulls (see {!Certain}). *)
module Certain : module type of Certain

(** Equality-generating dependencies and their chase (see {!Egd}). *)
module Egd : module type of Egd
