(** Exact rational arithmetic on machine integers.

    Coverage degrees and objective values in the selection problem are small
    rationals (sums of [k/arity] terms); representing them exactly lets tests
    compare against the paper's numbers without epsilons, and lets reports
    print values such as [7 1/3] the way the paper's appendix does.

    Numerators and denominators stay tiny in this workload, so machine
    integers suffice; operations normalise eagerly. Arithmetic is exact over
    the whole native range: {!add}, {!mul} and {!div} cross-reduce by gcd
    before multiplying (so intermediate products never exceed what the
    result itself needs) and raise {!Overflow} rather than wrap when the
    result is unrepresentable; {!compare} runs on the continued-fraction
    expansion and never overflows at all. *)

type t

exception Overflow
(** Raised by {!make}, {!add}, {!sub}, {!mul}, {!div}, {!neg} and {!sum}
    when the normalised result does not fit in native integers (for {!neg},
    only on the single value with numerator [min_int]). Never raised by
    {!compare}/{!equal}/{!min}/{!max}, which are total and exact. *)

val zero : t

val one : t

val of_int : int -> t

val make : int -> int -> t
(** [make num den] is the normalised fraction [num/den]. Raises
    [Invalid_argument] if [den = 0]. *)

val num : t -> int
(** Numerator of the normal form (sign lives here). *)

val den : t -> int
(** Denominator of the normal form; always positive. *)

val add : t -> t -> t

val sub : t -> t -> t

val mul : t -> t -> t

val div : t -> t -> t
(** Raises [Division_by_zero] on a zero divisor. *)

val neg : t -> t

val min : t -> t -> t

val max : t -> t -> t

val sum : t list -> t

val compare : t -> t -> int

val equal : t -> t -> bool

val ( < ) : t -> t -> bool

val ( <= ) : t -> t -> bool

val is_zero : t -> bool

val to_float : t -> float

val pp : Format.formatter -> t -> unit
(** Prints integers plainly, proper fractions as [n/d], and mixed numbers as
    [w n/d] (e.g. [7 1/3]), matching the paper's table style. *)

val to_string : t -> string
