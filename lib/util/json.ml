type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_string f =
  if not (Float.is_finite f) then
    invalid_arg "Json.to_string: non-finite number";
  if Float.is_integer f && Float.abs f <= 1e15 then
    Printf.sprintf "%.0f" f
  else
    (* shortest rendering that round-trips a float exactly *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write ~indent ~level buf v =
  let nl_sep k =
    (* pretty mode separates items with a newline and indents; compact mode
       writes nothing *)
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * k) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_string f)
  | Str s -> escape_string buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        nl_sep (level + 1);
        write ~indent ~level:(level + 1) buf item)
      items;
    nl_sep level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        nl_sep (level + 1);
        escape_string buf k;
        Buffer.add_char buf ':';
        if indent then Buffer.add_char buf ' ';
        write ~indent ~level:(level + 1) buf item)
      fields;
    nl_sep level;
    Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 256 in
  write ~indent ~level:0 buf v;
  Buffer.contents buf

let to_string v = render ~indent:false v

let to_string_pretty v = render ~indent:true v

(* --- parsing ------------------------------------------------------------- *)

exception Parse_error of int * string

type error = {
  line : int;
  column : int;
  offset : int;
  message : string;
}

(* Positions are derived from the byte offset only when a parse actually
   fails, so the happy path never pays for line accounting. *)
let locate s offset =
  let offset = min offset (String.length s) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to offset - 1 do
    if s.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, offset - !bol + 1)

let error_at s offset message =
  let line, column = locate s offset in
  { line; column; offset; message }

let pp_error ppf e =
  Format.fprintf ppf "line %d, column %d: %s" e.line e.column e.message

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected '%c', found '%c'" c c')
    | None -> fail (Printf.sprintf "expected '%c', found end of input" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail (Printf.sprintf "bad \\u escape \\u%s" h)
  in
  let add_utf8 buf c =
    (* encode a basic-plane code point as UTF-8 *)
    if c < 0x80 then Buffer.add_char buf (Char.chr c)
    else if c < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            let c = parse_hex4 () in
            if c >= 0xD800 && c <= 0xDFFF then fail "surrogate \\u escape"
            else add_utf8 buf c
          | c -> fail (Printf.sprintf "bad escape \\%c" c)));
        loop ()
      | Some c when Char.code c < 0x20 -> fail "raw control character in string"
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f when Float.is_finite f -> f
    | Some _ | None -> fail (Printf.sprintf "bad number '%s'" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        elements ();
        List (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content after value";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (error_at s at msg)

let parse_line s =
  (* strip exactly one frame terminator; everything else must be one line *)
  let n = String.length s in
  let n = if n > 0 && s.[n - 1] = '\n' then n - 1 else n in
  let n = if n > 0 && s.[n - 1] = '\r' then n - 1 else n in
  let s = String.sub s 0 n in
  match String.index_opt s '\n' with
  | Some i -> Error (error_at s i "newline inside NDJSON frame")
  | None ->
    if String.for_all (function ' ' | '\t' | '\r' -> true | _ -> false) s then
      Error (error_at s 0 "blank NDJSON frame")
    else parse s

let of_string s =
  match parse s with
  | Ok v -> Ok v
  | Error e ->
    Error
      (Format.asprintf "JSON parse error at offset %d (%a)" e.offset pp_error e)

let load path =
  match
    In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)
  with
  | text -> (
    match of_string text with
    | Ok v -> Ok v
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  | exception Sys_error msg -> Error msg

(* --- accessors ----------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f
    when Float.is_integer f
         && f >= Int.to_float min_int
         && f <= Int.to_float max_int -> Some (Float.to_int f)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_list = function List l -> Some l | _ -> None
