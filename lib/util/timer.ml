(* Monotonic elapsed time via bechamel's CLOCK_MONOTONIC stub (int64
   nanoseconds since an arbitrary origin): immune to NTP slew and
   settimeofday jumps, unlike the wall clock this module used to read. *)

let now_ns () = Monotonic_clock.now ()

let time f =
  let start = now_ns () in
  let x = f () in
  let stop = now_ns () in
  (x, Int64.to_float (Int64.sub stop start) /. 1e9)

let time_ms f =
  let x, s = time f in
  (x, s *. 1000.)
