(** Monotonic timing helper for the experiment harness.

    Readings come from the system monotonic clock ([CLOCK_MONOTONIC], via
    bechamel's stub), so measured durations are unaffected by NTP slew or
    wall-clock adjustments mid-measurement. *)

val now_ns : unit -> int64
(** Nanoseconds since an arbitrary (boot-time) origin on the monotonic
    clock. The raw reading {!time} is built on; exposed so other layers
    (e.g. [Telemetry] spans) share the same clock. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    monotonic time in seconds. *)

val time_ms : (unit -> 'a) -> 'a * float
(** Like {!time}, in milliseconds. *)
