(** Monotonic timing helper for the experiment harness.

    Readings come from the system monotonic clock ([CLOCK_MONOTONIC], via
    bechamel's stub), so measured durations are unaffected by NTP slew or
    wall-clock adjustments mid-measurement. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    monotonic time in seconds. *)

val time_ms : (unit -> 'a) -> 'a * float
(** Like {!time}, in milliseconds. *)
