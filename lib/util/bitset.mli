(** Fixed-width mutable bitsets, used by the Eq. 4 fast path to represent
    sets of target tuples. *)

type t

val create : int -> t
(** All bits clear. The width is fixed at creation. *)

val length : t -> int

val set : t -> int -> unit

val clear : t -> int -> unit

val get : t -> int -> bool

val copy : t -> t

val union_into : t -> t -> unit
(** [union_into dst src] ors [src] into [dst]. Widths must match. *)

val inter_into : t -> t -> unit
(** [inter_into dst src] ands [src] into [dst]. Widths must match. *)

val count : t -> int
(** Number of set bits. *)

val cardinal : t -> int
(** Alias of {!count}. *)

val iter_set : (int -> unit) -> t -> unit
(** Applies the function to every set bit, ascending. *)

val union_count : t -> t -> int
(** [count (dst ∪ src)] without materialising the union. *)

val is_empty : t -> bool

val equal : t -> t -> bool

val of_list : int -> int list -> t
(** [of_list width bits]. *)

val to_list : t -> int list
(** Set bits, ascending. *)
