type t = {
  num : int;
  den : int;  (* invariant: den > 0, gcd (|num|, den) = 1 *)
}

exception Overflow

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* gcd of |a| and d, for d > 0. [abs a] itself would wrap at [min_int], so
   reduce modulo d first: |a mod d| < d is always representable, and every
   later Euclid step stays non-negative. *)
let gcd_abs a d = gcd d (abs (a mod d))

(* Overflow-checked native arithmetic. The objective pipeline compares and
   sums many reduced fractions; a silent wraparound here would corrupt
   solver decisions without any observable failure, so every product and
   sum that can exceed the native range either proves it cannot (operands
   cross-reduced first) or raises [Overflow]. *)
let mul_exn a b =
  if a = 0 || b = 0 then 0
  else
    let p = a * b in
    if p / b <> a || (a = min_int && b = -1) then raise Overflow else p

let add_exn a b =
  let s = a + b in
  (* overflow flips the sign of same-signed operands *)
  if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then raise Overflow else s

let neg_exn a = if a = min_int then raise Overflow else -a

let make num den =
  if den = 0 then invalid_arg "Frac.make: zero denominator";
  let num, den = if den < 0 then (neg_exn num, neg_exn den) else (num, den) in
  let g = gcd_abs num den in
  { num = num / g; den = den / g }

let zero = { num = 0; den = 1 }

let one = { num = 1; den = 1 }

let of_int n = { num = n; den = 1 }

let num t = t.num

let den t = t.den

(* a/b + c/d with b, d > 0 reduced: let g = gcd b d. The exact sum is
   (a·(d/g) + c·(b/g)) / ((b/g)·d), and the only further reduction possible
   is by a divisor of g — so one more gcd against g normalises fully
   without ever forming b·d. *)
let add a b =
  let g = gcd a.den b.den in
  let bg = a.den / g and dg = b.den / g in
  let num = add_exn (mul_exn a.num dg) (mul_exn b.num bg) in
  let g2 = gcd_abs num g in
  { num = num / g2; den = mul_exn bg (b.den / g2) }

let neg a = { a with num = neg_exn a.num }

let sub a b = add a (neg b)

(* a/b · c/d: cross-reduce (gcd of each numerator with the opposite
   denominator) before multiplying, so the products are as small as the
   result allows; [Overflow] only when the result itself is unrepresentable. *)
let mul a b =
  let g1 = gcd_abs a.num b.den and g2 = gcd_abs b.num a.den in
  {
    num = mul_exn (a.num / g1) (b.num / g2);
    den = mul_exn (a.den / g2) (b.den / g1);
  }

let div a b =
  if b.num = 0 then raise Division_by_zero
  else if b.num < 0 then mul a { num = neg_exn b.den; den = neg_exn b.num }
  else mul a { num = b.den; den = b.num }

(* Exact comparison without forming cross products: compare integer parts,
   then recurse on the reciprocals of the remainders (the continued-fraction
   expansion). Every intermediate stays within the native range, so compare
   never overflows and never raises. *)
let compare a b =
  (* a/b vs c/d with b, d > 0; a, c may be negative. Floor quotient and
     remainder come from truncating division corrected by the remainder's
     sign — no products, so no range to exceed (min_int included). *)
  let floor_div a b = if a mod b < 0 then (a / b) - 1 else a / b in
  let floor_mod a b = let r = a mod b in if r < 0 then r + b else r in
  let rec cf a b c d =
    let q1 = floor_div a b and q2 = floor_div c d in
    if q1 <> q2 then Int.compare q1 q2
    else
      let r1 = floor_mod a b and r2 = floor_mod c d in
      (* 0 <= r1 < b, 0 <= r2 < d *)
      if r1 = 0 && r2 = 0 then 0
      else if r1 = 0 then -1
      else if r2 = 0 then 1
      else cf d r2 b r1
  in
  if a.den = b.den then Int.compare a.num b.num
  else cf a.num a.den b.num b.den

let equal a b = compare a b = 0

let min a b = if compare a b <= 0 then a else b

let max a b = if compare a b >= 0 then a else b

let ( < ) a b = compare a b < 0

let ( <= ) a b = compare a b <= 0

let sum l = List.fold_left add zero l

let is_zero a = a.num = 0

let to_float a = float_of_int a.num /. float_of_int a.den

let pp ppf a =
  if a.den = 1 then Format.pp_print_int ppf a.num
  else if Stdlib.( < ) (abs a.num) a.den then
    Format.fprintf ppf "%d/%d" a.num a.den
  else begin
    let whole = a.num / a.den in
    let rest = abs (a.num mod a.den) in
    Format.fprintf ppf "%d %d/%d" whole rest a.den
  end

let to_string a = Format.asprintf "%a" pp a
