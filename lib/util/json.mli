(** A minimal JSON value type with a printer and parser.

    The repo's machine-readable artifacts (the [BENCH_<n>.json] perf
    trajectory, its CI regression gate) need JSON both ways, and the
    container policy forbids new dependencies — so this is the smallest
    self-contained implementation that round-trips what we emit. It is not
    a general interchange codec: numbers are OCaml floats (53-bit integer
    precision), [\uXXXX] escapes outside the basic plane and surrogate
    pairs are rejected, and object key order is preserved verbatim. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. Raises [Invalid_argument] on a non-finite {!Num}
    (JSON has no representation for [nan]/[inf]; guard before emitting). *)

val to_string_pretty : t -> string
(** Two-space-indented rendering, for committed artifacts that humans
    diff. Same [Invalid_argument] behaviour as {!to_string}. *)

val of_string : string -> (t, string) result
(** Parses one JSON value (surrounding whitespace allowed; trailing
    garbage is an error). Error strings include a character offset. *)

val load : string -> (t, string) result
(** Reads and parses a file; the error string includes the path (a missing
    or unreadable file is an [Error], never an exception). *)

(** {2 Accessors} — each returns [None] on a shape mismatch. *)

val member : string -> t -> t option
(** Field of an {!Obj} ([None] on missing field or non-object). *)

val to_float : t -> float option

val to_int : t -> int option
(** {!Num} with an integral value in native-int range. *)

val to_bool : t -> bool option

val to_str : t -> string option

val to_list : t -> t list option
