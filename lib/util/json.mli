(** A minimal JSON value type with a printer and parser.

    The repo's machine-readable artifacts (the [BENCH_<n>.json] perf
    trajectory, its CI regression gate) need JSON both ways, and the
    container policy forbids new dependencies — so this is the smallest
    self-contained implementation that round-trips what we emit. It is not
    a general interchange codec: numbers are OCaml floats (53-bit integer
    precision), [\uXXXX] escapes outside the basic plane and surrogate
    pairs are rejected, and object key order is preserved verbatim. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering. Raises [Invalid_argument] on a non-finite {!Num}
    (JSON has no representation for [nan]/[inf]; guard before emitting). *)

val to_string_pretty : t -> string
(** Two-space-indented rendering, for committed artifacts that humans
    diff. Same [Invalid_argument] behaviour as {!to_string}. *)

type error = {
  line : int;  (** 1-based line of the offending character *)
  column : int;  (** 1-based column within that line *)
  offset : int;  (** 0-based byte offset into the input *)
  message : string;
}
(** A parse error, always positioned: every rejected input names the line
    and column where parsing stopped (property-tested in
    [test/test_json.ml]). *)

val pp_error : Format.formatter -> error -> unit
(** ["line L, column C: message"]. *)

val parse : string -> (t, error) result
(** Parses one JSON value (surrounding whitespace allowed; trailing
    garbage is an error), reporting failures with their position. *)

val parse_line : string -> (t, error) result
(** {!parse} for one NDJSON frame: at most one trailing [\n] (optionally
    preceded by [\r]) is stripped, and any other newline in the input is
    an error — a frame is exactly one line. The empty (or blank) frame is
    an error too; NDJSON readers skip blank lines before framing. *)

val of_string : string -> (t, string) result
(** {!parse} with the error rendered as a string (includes line, column
    and byte offset). *)

val load : string -> (t, string) result
(** Reads and parses a file; the error string includes the path (a missing
    or unreadable file is an [Error], never an exception). *)

(** {2 Accessors} — each returns [None] on a shape mismatch. *)

val member : string -> t -> t option
(** Field of an {!Obj} ([None] on missing field or non-object). *)

val to_float : t -> float option

val to_int : t -> int option
(** {!Num} with an integral value in native-int range. *)

val to_bool : t -> bool option

val to_str : t -> string option

val to_list : t -> t list option
