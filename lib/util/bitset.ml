type t = {
  width : int;
  words : int array;
}

let bits_per_word = Sys.int_size

let create width =
  if width < 0 then invalid_arg "Bitset.create: negative width";
  { width; words = Array.make ((width + bits_per_word - 1) / bits_per_word) 0 }

let length t = t.width

let check t i =
  if i < 0 || i >= t.width then invalid_arg "Bitset: index out of range"

let set t i =
  check t i;
  t.words.(i / bits_per_word) <-
    t.words.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))

let clear t i =
  check t i;
  t.words.(i / bits_per_word) <-
    t.words.(i / bits_per_word) land lnot (1 lsl (i mod bits_per_word))

let get t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let copy t = { t with words = Array.copy t.words }

let check_same a b =
  if a.width <> b.width then invalid_arg "Bitset: width mismatch"

let union_into dst src =
  check_same dst src;
  Array.iteri (fun k w -> dst.words.(k) <- dst.words.(k) lor w) src.words

let inter_into dst src =
  check_same dst src;
  Array.iteri (fun k w -> dst.words.(k) <- dst.words.(k) land w) src.words

let popcount w =
  let rec loop w acc = if w = 0 then acc else loop (w lsr 1) (acc + (w land 1)) in
  loop w 0

let count t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let cardinal = count

let iter_set f t =
  Array.iteri
    (fun k w ->
      if w <> 0 then begin
        let base = k * bits_per_word in
        for b = 0 to bits_per_word - 1 do
          if w land (1 lsl b) <> 0 then f (base + b)
        done
      end)
    t.words

let union_count a b =
  check_same a b;
  let acc = ref 0 in
  Array.iteri (fun k w -> acc := !acc + popcount (w lor b.words.(k))) a.words;
  !acc

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let equal a b = a.width = b.width && a.words = b.words

let of_list width bits =
  let t = create width in
  List.iter (set t) bits;
  t

let to_list t =
  let acc = ref [] in
  for i = t.width - 1 downto 0 do
    if get t i then acc := i :: !acc
  done;
  !acc
