(* Process-global observability state. The enabled flag and the counters
   are atomics (hot paths touch nothing else); the registries, the span
   aggregates and the buffered span tree are protected by [state_mutex];
   sink channels are written under [out_mutex] so concurrent domains never
   interleave half-lines. *)

let now_ns = Util.Timer.now_ns

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

let state_mutex = Mutex.create ()

let out_mutex = Mutex.create ()

let human_out : out_channel option ref = ref None

let jsonl_out : out_channel option ref = ref None

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* --- JSON lines ------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit_jsonl line =
  locked out_mutex (fun () ->
      match !jsonl_out with
      | None -> ()
      | Some oc ->
        output_string oc line;
        output_char oc '\n')

(* --- metrics ----------------------------------------------------------- *)

module Counter = struct
  type t = { name : string; v : int Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    locked state_mutex (fun () ->
        match Hashtbl.find_opt registry name with
        | Some c -> c
        | None ->
          let c = { name; v = Atomic.make 0 } in
          Hashtbl.add registry name c;
          c)

  let incr c = if enabled () then Atomic.incr c.v

  let add c n = if enabled () && n > 0 then ignore (Atomic.fetch_and_add c.v n)

  let value c = Atomic.get c.v

  let name c = c.name
end

module Gauge = struct
  type t = { name : string; v : float Atomic.t }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let make name =
    locked state_mutex (fun () ->
        match Hashtbl.find_opt registry name with
        | Some g -> g
        | None ->
          let g = { name; v = Atomic.make Float.nan } in
          Hashtbl.add registry name g;
          g)

  let set g x = if enabled () then Atomic.set g.v x

  let value g = Atomic.get g.v

  let name g = g.name
end

module Histogram = struct
  type t = {
    name : string;
    lock : Mutex.t;
    mutable n : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
  }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let make name =
    locked state_mutex (fun () ->
        match Hashtbl.find_opt registry name with
        | Some h -> h
        | None ->
          let h =
            { name; lock = Mutex.create (); n = 0; sum = 0.; min = 0.; max = 0. }
          in
          Hashtbl.add registry name h;
          h)

  let observe h x =
    if enabled () then
      locked h.lock (fun () ->
          if h.n = 0 then begin
            h.min <- x;
            h.max <- x
          end
          else begin
            if x < h.min then h.min <- x;
            if x > h.max then h.max <- x
          end;
          h.n <- h.n + 1;
          h.sum <- h.sum +. x)

  let count h = locked h.lock (fun () -> h.n)

  let name h = h.name
end

(* --- spans ------------------------------------------------------------- *)

type open_span = { sp_name : string; sp_start : int64; sp_depth : int }

(* Each domain nests its own spans; a worker-side span never closes a
   caller-side parent. *)
let stack_key : open_span list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

type span_agg = { mutable sa_count : int; mutable sa_total_ns : int64 }

let span_aggs : (string, span_agg) Hashtbl.t = Hashtbl.create 32

type closed_span = {
  cs_name : string;
  cs_domain : int;
  cs_depth : int;
  cs_start : int64;
  cs_dur : int64;
}

(* Bounded sample of closed spans for the human tree; aggregates above stay
   complete when the buffer saturates. *)
let tree_cap = 4096

let tree : closed_span list ref = ref []

let tree_len = ref 0

let tree_dropped = ref 0

type span_tap = domain:int -> name:string -> dur_ns:int64 -> unit

let span_tap : span_tap option Atomic.t = Atomic.make None

let set_span_tap tap = Atomic.set span_tap tap

let close_span ~attrs (s : open_span) ~stop =
  let dur = Int64.sub stop s.sp_start in
  let domain = (Domain.self () :> int) in
  (match Atomic.get span_tap with
  | None -> ()
  | Some tap -> ( try tap ~domain ~name:s.sp_name ~dur_ns:dur with _ -> ()));
  locked state_mutex (fun () ->
      (match Hashtbl.find_opt span_aggs s.sp_name with
      | Some a ->
        a.sa_count <- a.sa_count + 1;
        a.sa_total_ns <- Int64.add a.sa_total_ns dur
      | None ->
        Hashtbl.add span_aggs s.sp_name { sa_count = 1; sa_total_ns = dur });
      if !tree_len < tree_cap then begin
        tree :=
          {
            cs_name = s.sp_name;
            cs_domain = domain;
            cs_depth = s.sp_depth;
            cs_start = s.sp_start;
            cs_dur = dur;
          }
          :: !tree;
        incr tree_len
      end
      else incr tree_dropped);
  if !jsonl_out <> None then begin
    let attrs_json =
      match attrs with
      | [] -> ""
      | attrs ->
        Printf.sprintf ",\"attrs\":{%s}"
          (String.concat ","
             (List.map
                (fun (k, v) ->
                  Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
                attrs))
    in
    emit_jsonl
      (Printf.sprintf
         "{\"type\":\"span\",\"name\":\"%s\",\"domain\":%d,\"depth\":%d,\"start_ns\":%Ld,\"dur_ns\":%Ld%s}"
         (json_escape s.sp_name) domain s.sp_depth s.sp_start dur attrs_json)
  end

let with_span ?(attrs = []) name f =
  if not (enabled ()) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let depth = match !stack with [] -> 0 | s :: _ -> s.sp_depth + 1 in
    let s = { sp_name = name; sp_start = now_ns (); sp_depth = depth } in
    stack := s :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (match !stack with
        | top :: rest when top == s -> stack := rest
        | _ ->
          (* an inner span leaked past its scope; drop down to [s] *)
          let rec pop = function
            | top :: rest when top == s -> rest
            | _ :: rest -> pop rest
            | [] -> []
          in
          stack := pop !stack);
        close_span ~attrs s ~stop:(now_ns ()))
      f
  end

(* --- reading ----------------------------------------------------------- *)

let sorted_by_name pairs =
  List.sort (fun (a, _) (b, _) -> String.compare a b) pairs

let counters () =
  locked state_mutex (fun () ->
      Hashtbl.fold
        (fun name c acc -> (name, Counter.value c) :: acc)
        Counter.registry [])
  |> sorted_by_name

let span_counts () =
  locked state_mutex (fun () ->
      Hashtbl.fold (fun name a acc -> (name, a.sa_count) :: acc) span_aggs [])
  |> sorted_by_name

(* --- reporting --------------------------------------------------------- *)

let pp_dur ppf ns =
  let ns = Int64.to_float ns in
  if ns >= 1e9 then Format.fprintf ppf "%8.2f s " (ns /. 1e9)
  else if ns >= 1e6 then Format.fprintf ppf "%8.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Format.fprintf ppf "%8.2f us" (ns /. 1e3)
  else Format.fprintf ppf "%8.0f ns" ns

let human_report oc =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  let tree_rows, dropped, aggs, counter_rows, gauge_rows, hist_rows =
    locked state_mutex (fun () ->
        ( List.rev !tree,
          !tree_dropped,
          Hashtbl.fold
            (fun name a acc -> (name, a.sa_count, a.sa_total_ns) :: acc)
            span_aggs []
          |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b),
          Hashtbl.fold
            (fun name c acc -> (name, Counter.value c) :: acc)
            Counter.registry []
          |> sorted_by_name,
          Hashtbl.fold
            (fun name g acc -> (name, Gauge.value g) :: acc)
            Gauge.registry []
          |> sorted_by_name,
          Hashtbl.fold
            (fun name (h : Histogram.t) acc ->
              (name, h.Histogram.n, h.Histogram.sum, h.Histogram.min,
               h.Histogram.max)
              :: acc)
            Histogram.registry []
          |> List.sort (fun (a, _, _, _, _) (b, _, _, _, _) ->
                 String.compare a b) ))
  in
  Format.fprintf ppf "== telemetry ==@.";
  if tree_rows <> [] then begin
    Format.fprintf ppf "spans (start order per domain):@.";
    let rows =
      List.sort
        (fun a b ->
          match compare a.cs_domain b.cs_domain with
          | 0 -> Int64.compare a.cs_start b.cs_start
          | c -> c)
        tree_rows
    in
    List.iter
      (fun r ->
        let indent = String.make (2 * min 18 r.cs_depth) ' ' in
        Format.fprintf ppf "  [d%d] %s%-*s %a@." r.cs_domain indent
          (max 1 (40 - String.length indent))
          r.cs_name pp_dur r.cs_dur)
      rows;
    if dropped > 0 then
      Format.fprintf ppf "  ... %d more spans not sampled@." dropped
  end;
  if aggs <> [] then begin
    Format.fprintf ppf "span aggregates:@.";
    List.iter
      (fun (name, count, total) ->
        Format.fprintf ppf "  %-36s count %7d   total %a   mean %a@." name
          count pp_dur total pp_dur
          (Int64.div total (Int64.of_int (max 1 count))))
      aggs
  end;
  if counter_rows <> [] then begin
    Format.fprintf ppf "counters:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-36s %d@." name v)
      counter_rows
  end;
  let live_gauges = List.filter (fun (_, v) -> not (Float.is_nan v)) gauge_rows in
  if live_gauges <> [] then begin
    Format.fprintf ppf "gauges:@.";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-36s %g@." name v)
      live_gauges
  end;
  let live_hists = List.filter (fun (_, n, _, _, _) -> n > 0) hist_rows in
  if live_hists <> [] then begin
    Format.fprintf ppf "histograms:@.";
    List.iter
      (fun (name, n, sum, mn, mx) ->
        Format.fprintf ppf
          "  %-36s count %7d   sum %g   min %g   max %g   mean %g@." name n
          sum mn mx
          (sum /. float_of_int (max 1 n)))
      live_hists
  end;
  Format.pp_print_flush ppf ();
  output_string oc (Buffer.contents buf)

let jsonl_aggregates () =
  let lines =
    locked state_mutex (fun () ->
        let counters =
          Hashtbl.fold
            (fun name c acc -> (name, Counter.value c) :: acc)
            Counter.registry []
          |> sorted_by_name
          |> List.map (fun (name, v) ->
                 Printf.sprintf "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}"
                   (json_escape name) v)
        in
        let gauges =
          Hashtbl.fold
            (fun name g acc -> (name, Gauge.value g) :: acc)
            Gauge.registry []
          |> sorted_by_name
          |> List.filter (fun (_, v) -> not (Float.is_nan v))
          |> List.map (fun (name, v) ->
                 Printf.sprintf "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%.17g}"
                   (json_escape name) v)
        in
        let hists =
          Hashtbl.fold
            (fun name (h : Histogram.t) acc ->
              if h.Histogram.n = 0 then acc
              else
                Printf.sprintf
                  "{\"type\":\"histogram\",\"name\":\"%s\",\"count\":%d,\"sum\":%.17g,\"min\":%.17g,\"max\":%.17g}"
                  (json_escape name) h.Histogram.n h.Histogram.sum
                  h.Histogram.min h.Histogram.max
                :: acc)
            Histogram.registry []
          |> List.sort String.compare
        in
        let spans =
          Hashtbl.fold
            (fun name a acc -> (name, a.sa_count, a.sa_total_ns) :: acc)
            span_aggs []
          |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
          |> List.map (fun (name, count, total) ->
                 Printf.sprintf
                   "{\"type\":\"span-agg\",\"name\":\"%s\",\"count\":%d,\"total_ns\":%Ld}"
                   (json_escape name) count total)
        in
        counters @ gauges @ hists @ spans)
  in
  List.iter emit_jsonl lines

let set_human oc = locked out_mutex (fun () -> human_out := oc)

let set_jsonl oc = locked out_mutex (fun () -> jsonl_out := oc)

let flush () =
  (match !jsonl_out with None -> () | Some _ -> jsonl_aggregates ());
  locked out_mutex (fun () ->
      (match !human_out with None -> () | Some oc -> human_report oc; flush oc);
      match !jsonl_out with None -> () | Some oc -> Stdlib.flush oc)

let at_exit_registered = ref false

let flush_at_exit () =
  locked state_mutex (fun () ->
      if not !at_exit_registered then begin
        at_exit_registered := true;
        Stdlib.at_exit flush
      end)

let reset () =
  locked state_mutex (fun () ->
      Hashtbl.iter (fun _ (c : Counter.t) -> Atomic.set c.Counter.v 0)
        Counter.registry;
      Hashtbl.iter
        (fun _ (g : Gauge.t) -> Atomic.set g.Gauge.v Float.nan)
        Gauge.registry;
      Hashtbl.iter
        (fun _ (h : Histogram.t) ->
          Mutex.lock h.Histogram.lock;
          h.Histogram.n <- 0;
          h.Histogram.sum <- 0.;
          h.Histogram.min <- 0.;
          h.Histogram.max <- 0.;
          Mutex.unlock h.Histogram.lock)
        Histogram.registry;
      Hashtbl.reset span_aggs;
      tree := [];
      tree_len := 0;
      tree_dropped := 0)

(* --- TELEMETRY environment hook ---------------------------------------- *)

(* Runs at program start in any binary that links an instrumented library,
   so `TELEMETRY=1 dune runtest` exercises every instrumented path with no
   code changes. *)
let () =
  match Sys.getenv_opt "TELEMETRY" with
  | None | Some "" | Some "0" -> ()
  | Some "1" | Some "on" -> set_enabled true
  | Some "human" ->
    set_human (Some stderr);
    set_enabled true;
    flush_at_exit ()
  | Some v when String.length v > 6 && String.sub v 0 6 = "jsonl:" ->
    let path = String.sub v 6 (String.length v - 6) in
    (match open_out path with
    | oc ->
      set_jsonl (Some oc);
      set_enabled true;
      flush_at_exit ()
    | exception Sys_error msg ->
      Printf.eprintf "TELEMETRY: cannot open %s: %s\n%!" path msg)
  | Some v ->
    Printf.eprintf
      "TELEMETRY: unknown value %S (expected 0, 1, on, human, jsonl:PATH)\n%!" v
