(** Structured observability: hierarchical spans, monotone counters, gauges
    and histograms, with pluggable reporters.

    The layer is built for instrumenting hot paths that must stay hot and
    deterministic:

    - {b disabled is (near) free} — every recording entry point starts with
      a single atomic-load-and-branch on the global enabled flag, so
      compiled-in instrumentation costs one predicted branch per call site
      when telemetry is off (guarded by the [telemetry-overhead] section of
      [bench/main.exe]);
    - {b observation never changes results} — nothing here touches
      [Random], solver state, or control flow; enabling telemetry is
      byte-identical to disabling it as far as every instrumented
      computation is concerned (qcheck-verified in [test/test_telemetry.ml]);
    - {b counters merge deterministically} — counters are process-global
      atomics, and instrumented call sites are placed so the same logical
      work performs the same increments whether it runs inline or fanned
      out over a {!Parallel.Pool} of any size. Counter totals are therefore
      a pure function of the workload, for any [--jobs]. (Gauges are
      last-write-wins and span {e timings} are wall-clock readings; neither
      is part of the determinism contract — span {e counts} per name are.)

    Clock readings come from the same monotonic clock as [Util.Timer]
    (bechamel's [CLOCK_MONOTONIC] stub).

    {2 Reporters}

    Three sinks, combinable: a no-op (metrics still accumulate and can be
    read programmatically), a human-readable span tree plus aggregate
    tables written on {!flush} (typically to stderr), and a JSON-lines
    stream for machine diffing — one object per closed span as it closes,
    plus one object per counter/gauge/histogram/span-aggregate on
    {!flush}. See DESIGN.md § "Observability" for the line schema.

    The [TELEMETRY] environment variable configures the layer at program
    start, so any build (including [dune runtest]) can be traced without
    code changes: [0]/unset — disabled; [1]/[on] — enabled, no-op sink;
    [human] — enabled, human report to stderr at exit; [jsonl:PATH] —
    enabled, JSON lines to [PATH], flushed at exit. *)

val enabled : unit -> bool
(** The global switch, read (atomically) by every recording entry point. *)

val set_enabled : bool -> unit

(** {2 Metrics} *)

module Counter : sig
  type t

  val make : string -> t
  (** [make name] registers (or retrieves — [make] is idempotent per name)
      a process-global monotone counter. Intended to be called once at
      module initialisation; the returned handle is a single atomic. *)

  val incr : t -> unit
  (** One atomic increment when telemetry is enabled; a no-op otherwise. *)

  val add : t -> int -> unit
  (** [add c n] adds [n >= 0]; negative deltas are ignored (counters are
      monotone). No-op when disabled. *)

  val value : t -> int
  val name : t -> string
end

module Gauge : sig
  type t

  val make : string -> t
  val set : t -> float -> unit
  (** Last write wins (across domains the winner is scheduling-dependent;
      gauges are informational, not part of the determinism contract). *)

  val value : t -> float
  (** [nan] until first set. *)

  val name : t -> string
end

module Histogram : sig
  type t

  val make : string -> t
  val observe : t -> float -> unit
  (** Records count/sum/min/max under the histogram's own lock. No-op when
      disabled. *)

  val count : t -> int
  val name : t -> string
end

val counters : unit -> (string * int) list
(** Current counter totals, sorted by name. *)

val span_counts : unit -> (string * int) list
(** Closed spans per span name, sorted by name — deterministic for a fixed
    workload, like counters. *)

(** {2 Spans} *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()] inside a span: start/stop on the
    monotonic clock, nested via a per-domain stack (each domain of a
    {!Parallel.Pool} keeps its own stack, so worker-side spans nest under
    worker-side parents only). The span is closed — aggregates updated,
    JSONL line written — when [f] returns or raises; the result or
    exception is propagated untouched. When telemetry is disabled this is
    exactly [f ()] after one branch. *)

val set_span_tap :
  (domain:int -> name:string -> dur_ns:int64 -> unit) option -> unit
(** Installs (or removes) a process-global listener invoked once per closed
    span, from the closing domain, after aggregates are updated. Built for
    live progress streaming (the mapping-selection server forwards span
    closes as progress notifications): because one domain closes one span
    at a time, a consumer can attribute events to in-flight work by
    [domain]. The tap only fires while telemetry is enabled; exceptions it
    raises are swallowed — observation must never change results. *)

(** {2 Sinks and lifecycle} *)

val set_human : out_channel option -> unit
(** Channel for the human report written by {!flush} ([None] = no human
    output). *)

val set_jsonl : out_channel option -> unit
(** Channel for JSON lines. Spans stream as they close; {!flush} appends
    the aggregate objects. [None] = no JSONL output. *)

val flush : unit -> unit
(** Writes the human report and/or the JSONL aggregate records to the
    configured sinks and flushes them. Safe to call with no sinks. *)

val flush_at_exit : unit -> unit
(** Registers {!flush} to run at process exit, at most once per process no
    matter how many times this is called. *)

val reset : unit -> unit
(** Zeroes every counter/gauge/histogram and clears span aggregates and
    the buffered span tree, keeping registrations and sinks. For tests and
    multi-phase drivers that want per-phase totals. *)
