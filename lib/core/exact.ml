open Util

let solve ?(max_candidates = 25) (p : Problem.t) =
  let m = Problem.num_candidates p in
  if m > max_candidates then
    Solver_error.raise_ ~solver:"exact"
      "%d candidates exceed the branch-and-bound limit of %d" m max_candidates;
  let n_tuples = Problem.num_tuples p in
  let w1 = Frac.of_int p.Problem.weights.Problem.w_unexplained in
  (* Incumbent from greedy. *)
  let best_sel = ref (Greedy.solve p) in
  let best_val = ref (Objective.value p !best_sel) in
  let sel = Array.make m false in
  (* excluded.(c) = candidate decided out on the current path *)
  let excluded = Array.make m false in
  (* Optimistic per-tuple coverage given the exclusions: max over candidates
     not excluded. Recomputed per node only over the affected tuples would be
     fancier; at ≤25 candidates a full pass is cheap. *)
  let optimistic_unexplained () =
    let best = Array.make n_tuples Frac.zero in
    for c = 0 to m - 1 do
      if not excluded.(c) then
        Array.iter
          (fun (ti, d) -> if Frac.(best.(ti) < d) then best.(ti) <- d)
          p.Problem.covers.(c)
    done;
    let covered = Array.fold_left Frac.add Frac.zero best in
    Frac.mul w1 (Frac.sub (Frac.of_int n_tuples) covered)
  in
  let rec branch i cost =
    if i >= m then begin
      let v = Objective.value p sel in
      if Frac.(v < !best_val) then begin
        best_val := v;
        best_sel := Array.copy sel
      end
    end
    else begin
      let bound = Frac.add cost (optimistic_unexplained ()) in
      if Frac.(bound < !best_val) then begin
        (* include candidate i *)
        sel.(i) <- true;
        branch (i + 1) (Frac.add cost p.Problem.cand_cost.(i));
        sel.(i) <- false;
        (* exclude candidate i *)
        excluded.(i) <- true;
        branch (i + 1) cost;
        excluded.(i) <- false
      end
    end
  in
  branch 0 Frac.zero;
  !best_sel
