type outcome = {
  selection : bool array;
  fractional : float array option;
}

module type S = sig
  val name : string

  val solve : ?pool:Parallel.Pool.t -> ?seed:int -> Problem.t -> outcome
end

type t = (module S)

let discrete selection = { selection; fractional = None }

(* Canonical settings live here, once: [local] keeps cmd_select's historical
   3 restarts, [anneal]/[cmd]/[exact] their module defaults. *)

module Greedy_s = struct
  let name = "greedy"

  let solve ?pool:_ ?seed:_ p = discrete (Greedy.solve p)
end

module Exact_s = struct
  let name = "exact"

  let solve ?pool:_ ?seed:_ p = discrete (Exact.solve p)
end

module Local_s = struct
  let name = "local"

  let solve ?pool ?seed p = discrete (Local_search.solve ?pool ?seed ~restarts:3 p)
end

module Anneal_s = struct
  let name = "anneal"

  let solve ?pool ?seed p = discrete (Anneal.solve ?pool ?seed p)
end

module Cmd_s = struct
  let name = "cmd"

  let solve ?pool:_ ?seed:_ p =
    let r = Cmd.solve p in
    { selection = r.Cmd.selection; fractional = Some r.Cmd.fractional }
end

module All_s = struct
  let name = "all"

  let solve ?pool:_ ?seed:_ p = discrete (Array.make (Problem.num_candidates p) true)
end

module Portfolio_s = struct
  let name = "portfolio"

  (* Racing order = preference order on ties: the paper's solver first, then
     exact (an automatic prover when the problem is small enough — it drops
     out via [Solver_error] past its candidate limit), then the cheap
     heuristics. *)
  let roster =
    let entry r_exact (module M : S) =
      {
        Portfolio.r_name = M.name;
        r_solve = (fun ?pool ?seed p -> (M.solve ?pool ?seed p).selection);
        r_exact;
      }
    in
    [
      entry false (module Cmd_s);
      entry true (module Exact_s);
      entry false (module Greedy_s);
      entry false (module Local_s);
      entry false (module Anneal_s);
    ]

  let solve ?pool ?seed p = discrete (Portfolio.race ~roster ?pool ?seed p).Portfolio.selection
end

let all : t list =
  [
    (module Greedy_s);
    (module Exact_s);
    (module Local_s);
    (module Anneal_s);
    (module Cmd_s);
    (module All_s);
    (module Portfolio_s);
  ]

let name (module S : S) = S.name

let names () = List.map name all

let find n =
  let n = String.lowercase_ascii n in
  List.find_opt (fun (module S : S) -> String.equal S.name n) all

let objective_best = Telemetry.Gauge.make "solver.objective_best"

let solve (module S : S) ?pool ?seed ?cache p =
  Telemetry.with_span ("solver." ^ S.name) (fun () ->
      let stash = ref None in
      let run () =
        let o = S.solve ?pool ?seed p in
        stash := Some o;
        o.selection
      in
      let sel =
        match cache with
        | None -> run ()
        | Some cache ->
          (* Sound because [S.solve] is deterministic in (problem, seed) —
             the interface contract above — and never in [pool]. *)
          Cache.selection cache ~solver:S.name ~seed
            ~problem_key:(Problem.digest p) run
      in
      if Telemetry.enabled () then
        Telemetry.Gauge.set objective_best
          (Util.Frac.to_float (Objective.value p sel));
      match !stash with
      | Some o -> { o with selection = sel }
      | None -> discrete sel)
