module type S = sig
  val name : string

  val solve : ?pool:Parallel.Pool.t -> ?seed:int -> Problem.t -> bool array
end

type t = (module S)

(* Canonical settings live here, once: [local] keeps cmd_select's historical
   3 restarts, [anneal]/[cmd]/[exact] their module defaults. *)

module Greedy_s = struct
  let name = "greedy"

  let solve ?pool:_ ?seed:_ p = Greedy.solve p
end

module Exact_s = struct
  let name = "exact"

  let solve ?pool:_ ?seed:_ p = Exact.solve p
end

module Local_s = struct
  let name = "local"

  let solve ?pool ?seed p = Local_search.solve ?pool ?seed ~restarts:3 p
end

module Anneal_s = struct
  let name = "anneal"

  let solve ?pool ?seed p = Anneal.solve ?pool ?seed p
end

module Cmd_s = struct
  let name = "cmd"

  let solve ?pool:_ ?seed:_ p = (Cmd.solve p).Cmd.selection
end

module All_s = struct
  let name = "all"

  let solve ?pool:_ ?seed:_ p = Array.make (Problem.num_candidates p) true
end

let all : t list =
  [
    (module Greedy_s);
    (module Exact_s);
    (module Local_s);
    (module Anneal_s);
    (module Cmd_s);
    (module All_s);
  ]

let name (module S : S) = S.name

let names () = List.map name all

let find n =
  let n = String.lowercase_ascii n in
  List.find_opt (fun (module S : S) -> String.equal S.name n) all

let objective_best = Telemetry.Gauge.make "solver.objective_best"

let solve (module S : S) ?pool ?seed ?cache p =
  Telemetry.with_span ("solver." ^ S.name) (fun () ->
      let run () = S.solve ?pool ?seed p in
      let sel =
        match cache with
        | None -> run ()
        | Some cache ->
          (* Sound because [S.solve] is deterministic in (problem, seed) —
             the interface contract above — and never in [pool]. *)
          Cache.selection cache ~solver:S.name ~seed
            ~problem_key:(Problem.digest p) run
      in
      if Telemetry.enabled () then
        Telemetry.Gauge.set objective_best
          (Util.Frac.to_float (Objective.value p sel));
      sel)
