open Util

module Fmap = Map.Make (struct
  type t = Frac.t

  let compare = Frac.compare
end)

type t = {
  problem : Problem.t;
  sel : bool array;
  degrees : int Fmap.t array;
      (* per tuple: degree → how many selected candidates cover it at that
         degree; [explains] is the maximum key *)
  best : Frac.t array;  (* cached multiset maxima ([Frac.zero] when empty) *)
  mutable covered : Frac.t;  (* Σ best *)
  mutable errors : int;
  mutable size : int;
  mutable cand_cost : Frac.t;
}

let add_degree st ti d =
  let m = st.degrees.(ti) in
  let n = match Fmap.find_opt d m with Some n -> n | None -> 0 in
  st.degrees.(ti) <- Fmap.add d (n + 1) m;
  if Frac.(st.best.(ti) < d) then begin
    st.covered <- Frac.add st.covered (Frac.sub d st.best.(ti));
    st.best.(ti) <- d
  end

let remove_degree st ti d =
  let m = st.degrees.(ti) in
  let n = Fmap.find d m in
  let m' = if n = 1 then Fmap.remove d m else Fmap.add d (n - 1) m in
  st.degrees.(ti) <- m';
  if n = 1 && Frac.equal d st.best.(ti) then begin
    let next =
      match Fmap.max_binding_opt m' with
      | Some (d', _) -> d'
      | None -> Frac.zero
    in
    st.covered <- Frac.sub st.covered (Frac.sub st.best.(ti) next);
    st.best.(ti) <- next
  end

let select st c =
  let p = st.problem in
  st.sel.(c) <- true;
  Array.iter (fun (ti, d) -> add_degree st ti d) p.Problem.covers.(c);
  st.errors <- st.errors + Cover.error_count p.Problem.stats.(c);
  st.size <- st.size + p.Problem.stats.(c).Cover.size;
  st.cand_cost <- Frac.add st.cand_cost p.Problem.cand_cost.(c)

let deselect st c =
  let p = st.problem in
  st.sel.(c) <- false;
  Array.iter (fun (ti, d) -> remove_degree st ti d) p.Problem.covers.(c);
  st.errors <- st.errors - Cover.error_count p.Problem.stats.(c);
  st.size <- st.size - p.Problem.stats.(c).Cover.size;
  st.cand_cost <- Frac.sub st.cand_cost p.Problem.cand_cost.(c)

(* Hot-path instrumentation: when telemetry is disabled each counter call
   is a single atomic-load-and-branch (< 2% on the bench flip kernel). *)
let flips_counter = Telemetry.Counter.make "incremental.flips"

let probes_counter = Telemetry.Counter.make "incremental.probes"

let self_checks_counter = Telemetry.Counter.make "incremental.self_checks"

let flip st c =
  Telemetry.Counter.incr flips_counter;
  if st.sel.(c) then deselect st c else select st c

let create (p : Problem.t) sel =
  if Array.length sel <> Problem.num_candidates p then
    invalid_arg "Incremental.create: selection length mismatch";
  let st =
    {
      problem = p;
      sel = Array.make (Problem.num_candidates p) false;
      degrees = Array.make (Problem.num_tuples p) Fmap.empty;
      best = Array.make (Problem.num_tuples p) Frac.zero;
      covered = Frac.zero;
      errors = 0;
      size = 0;
      cand_cost = Frac.zero;
    }
  in
  Array.iteri (fun c selected -> if selected then select st c) sel;
  st

let flip_delta st c =
  Telemetry.Counter.incr probes_counter;
  let p = st.problem in
  let w1 = Frac.of_int p.Problem.weights.Problem.w_unexplained in
  if st.sel.(c) then
    (* Dropping [c]: each tuple it covers at the current maximum with
       multiplicity one falls back to the next-largest degree. *)
    let lost =
      Array.fold_left
        (fun acc (ti, d) ->
          if Frac.(d < st.best.(ti)) then acc
          else if Fmap.find d st.degrees.(ti) > 1 then acc
          else
            let next =
              match
                Fmap.find_last_opt
                  (fun d' -> Frac.compare d' d < 0)
                  st.degrees.(ti)
              with
              | Some (d', _) -> d'
              | None -> Frac.zero
            in
            Frac.add acc (Frac.sub d next))
        Frac.zero p.Problem.covers.(c)
    in
    Frac.sub (Frac.mul w1 lost) p.Problem.cand_cost.(c)
  else
    let gained =
      Array.fold_left
        (fun acc (ti, d) ->
          if Frac.(st.best.(ti) < d) then
            Frac.add acc (Frac.sub d st.best.(ti))
          else acc)
        Frac.zero p.Problem.covers.(c)
    in
    Frac.sub p.Problem.cand_cost.(c) (Frac.mul w1 gained)

let unexplained st =
  let p = st.problem in
  Frac.mul
    (Frac.of_int p.Problem.weights.Problem.w_unexplained)
    (Frac.sub (Frac.of_int (Problem.num_tuples p)) st.covered)

let value st = Frac.add (unexplained st) st.cand_cost

let breakdown st =
  let unexplained = unexplained st in
  {
    Objective.unexplained;
    errors = st.errors;
    size = st.size;
    total = Frac.add unexplained st.cand_cost;
  }

let self_check st =
  Telemetry.Counter.incr self_checks_counter;
  let p = st.problem in
  let naive = Objective.breakdown p st.sel in
  let mine = breakdown st in
  let best = Objective.best_coverage p st.sel in
  if not (Frac.equal naive.Objective.total mine.Objective.total) then
    Error
      (Format.asprintf "total drifted: naive %a, incremental %a" Frac.pp
         naive.Objective.total Frac.pp mine.Objective.total)
  else if not (Frac.equal naive.Objective.unexplained mine.Objective.unexplained)
  then Error "unexplained accumulator drifted"
  else if naive.Objective.errors <> mine.Objective.errors then
    Error "error accumulator drifted"
  else if naive.Objective.size <> mine.Objective.size then
    Error "size accumulator drifted"
  else
    let bad = ref None in
    Array.iteri
      (fun ti b ->
        if !bad = None then begin
          if not (Frac.equal b st.best.(ti)) then
            bad := Some (Printf.sprintf "cached maximum of tuple %d drifted" ti);
          let count =
            Fmap.fold (fun _ n acc -> n + acc) st.degrees.(ti) 0
          in
          let expected =
            Array.to_seq p.Problem.covers |> Seq.mapi (fun c covers -> (c, covers))
            |> Seq.fold_left
                 (fun acc (c, covers) ->
                   if st.sel.(c) then
                     acc
                     + Array.fold_left
                         (fun acc (ti', _) -> if ti' = ti then acc + 1 else acc)
                         0 covers
                   else acc)
                 0
          in
          if count <> expected && !bad = None then
            bad :=
              Some
                (Printf.sprintf "degree multiset of tuple %d has %d entries, expected %d"
                   ti count expected)
        end)
      best;
    match !bad with None -> Ok () | Some msg -> Error msg

let is_selected st c = st.sel.(c)

let selection st = Array.copy st.sel

let problem st = st.problem
