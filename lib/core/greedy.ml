open Util

let marginal_gain (p : Problem.t) ~best c =
  let coverage_gain =
    Array.fold_left
      (fun acc (ti, d) ->
        if Frac.(best.(ti) < d) then Frac.add acc (Frac.sub d best.(ti)) else acc)
      Frac.zero p.Problem.covers.(c)
  in
  Frac.sub
    (Frac.mul (Frac.of_int p.Problem.weights.Problem.w_unexplained) coverage_gain)
    p.Problem.cand_cost.(c)

(* Forward pass on a shared incremental state: the marginal gain of adding a
   candidate is the negated flip delta, so each sweep is one pass over the
   unselected candidates' cover lists. *)
let forward st =
  let m = Problem.num_candidates (Incremental.problem st) in
  let continue_ = ref true in
  while !continue_ do
    let pick = ref None in
    for c = 0 to m - 1 do
      if not (Incremental.is_selected st c) then begin
        let gain = Frac.neg (Incremental.flip_delta st c) in
        if Frac.(Frac.zero < gain) then
          match !pick with
          | Some (_, g) when Frac.(gain <= g) -> ()
          | Some _ | None -> pick := Some (c, gain)
      end
    done;
    match !pick with
    | None -> continue_ := false
    | Some (c, _) -> Incremental.flip st c
  done

let backward st =
  let m = Problem.num_candidates (Incremental.problem st) in
  let improved = ref true in
  while !improved do
    improved := false;
    for c = 0 to m - 1 do
      if Incremental.is_selected st c then
        if Frac.(Incremental.flip_delta st c < Frac.zero) then begin
          Incremental.flip st c;
          improved := true
        end
    done
  done

let solve p =
  let st = Incremental.create p (Array.make (Problem.num_candidates p) false) in
  forward st;
  backward st;
  Incremental.selection st
