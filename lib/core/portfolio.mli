(** Portfolio racing: run a roster of solvers (concurrently, when a pool is
    given) and return the first provably good result.

    A finisher is a {e prover} when its exact-rational objective meets
    {!Objective.lower_bound} — optimality-or-dominance — or when the entry
    is flagged exact (branch and bound proves by construction). Once a
    prover finishes, roster entries with a larger index skip before starting
    (cooperative cancellation); entries that raise {!Solver_error.Error}
    (e.g. exact on an oversized problem) drop out deterministically.

    The raced result is deterministic in [(problem, seed)] for any pool
    size: the winner is the least-index prover, or — when no entry proves —
    the best objective with lowest-index tie-breaking, and a skipped entry
    always has a larger index than the prover that caused the skip. Without
    a pool the roster runs sequentially in index order with the same skip
    rule, so the work done is deterministic too. *)

type runner = {
  r_name : string;
  r_solve : ?pool : Parallel.Pool.t -> ?seed : int -> Problem.t -> bool array;
  r_exact : bool;  (** a finisher of this entry is optimal by construction *)
}

type race_result = {
  selection : bool array;
  winner : string;  (** roster name of the winning entry *)
  proved : bool;  (** the winner carried an optimality certificate *)
}

val race :
  roster : runner list ->
  ?pool : Parallel.Pool.t ->
  ?seed : int ->
  Problem.t ->
  race_result
(** Raises [Invalid_argument] on an empty roster and
    {!Solver_error.Error} when every entry refuses the problem. *)
