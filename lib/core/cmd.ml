open Util

type rounding =
  | Conditional
  | Threshold of float

type options = {
  admm : Psl.Admm.options;
  rounding : rounding;
  repair : bool;
  squared : bool;
}

let default_options =
  {
    admm = Psl.Admm.default_options;
    rounding = Conditional;
    repair = true;
    squared = false;
  }

type warm = {
  model : Psl.Hlmrf.t;
  state : Psl.Admm.state;
}

type result = {
  selection : bool array;
  objective : Frac.t;
  fractional : float array;
  admm : Psl.Admm.outcome;
  num_vars : int;
  num_potentials : int;
  num_constraints : int;
  warm_out : warm;
}

let build_model ?(squared = false) (p : Problem.t) =
  (* Linear soft losses become squared hinges in the squared flavour; their
     expressions are non-negative over the box, so the hinge is exact. *)
  let soft weight expr =
    if squared then Psl.Hlmrf.Hinge { weight; expr; squared = true }
    else Psl.Hlmrf.Linear { weight; expr }
  in
  let m = Problem.num_candidates p in
  let n_tuples = Problem.num_tuples p in
  let model = Psl.Hlmrf.create ~num_vars:(m + n_tuples) in
  let w1 = float_of_int p.Problem.weights.Problem.w_unexplained in
  (* per-candidate selection cost: w2·errors + w3·size, as ¬in(θ) priors *)
  Array.iteri
    (fun c cost ->
      let cost = Frac.to_float cost in
      if cost > 0. then
        Psl.Hlmrf.add_potential model
          (soft cost (Psl.Linexpr.make [ (c, 1.) ] 0.)))
    p.Problem.cand_cost;
  (* per-tuple: the "wants to be explained" loss and its support constraint *)
  let support = Array.make n_tuples [] in
  Array.iteri
    (fun c cover_list ->
      Array.iter
        (fun (ti, d) -> support.(ti) <- (c, Frac.to_float d) :: support.(ti))
        cover_list)
    p.Problem.covers;
  Array.iteri
    (fun ti sup ->
      let y = m + ti in
      Psl.Hlmrf.add_potential model
        (soft w1 (Psl.Linexpr.make [ (y, -1.) ] 1.));
      Psl.Hlmrf.add_constraint model
        (Psl.Hlmrf.Leq
           (Psl.Linexpr.make
              ((y, 1.) :: List.map (fun (c, d) -> (c, -.d)) sup)
              0.)))
    support;
  Array.iteri
    (fun c (tgd : Logic.Tgd.t) ->
      Psl.Hlmrf.set_var_name model c (Printf.sprintf "in(%s)" tgd.Logic.Tgd.label))
    p.Problem.candidates;
  (* Stable names for the explained-atoms too: {!Psl.Grounding.delta} matches
     variables by name, so adjacent sweep points must agree on them. *)
  Array.iteri
    (fun ti tuple ->
      Psl.Hlmrf.set_var_name model (m + ti)
        (Printf.sprintf "ex(%s)" (Relational.Tuple.to_string tuple)))
    p.Problem.tuples;
  model

let conditional_round (p : Problem.t) fractional =
  let m = Problem.num_candidates p in
  let order =
    List.init m Fun.id
    |> List.sort (fun a b -> Float.compare fractional.(b) fractional.(a))
  in
  let sel = Array.make m false in
  let best = Array.make (Problem.num_tuples p) Frac.zero in
  List.iter
    (fun c ->
      let gain = Greedy.marginal_gain p ~best c in
      if Frac.(Frac.zero < gain) then begin
        sel.(c) <- true;
        Array.iter
          (fun (ti, d) -> if Frac.(best.(ti) < d) then best.(ti) <- d)
          p.Problem.covers.(c)
      end)
    order;
  sel

let threshold_round (p : Problem.t) tau fractional =
  Array.init (Problem.num_candidates p) (fun c -> fractional.(c) >= tau)

let solve ?(options = default_options) ?warm (p : Problem.t) =
  let reduced, model =
    Telemetry.with_span "cmd.ground" (fun () ->
        let reduced = Preprocess.run p in
        (reduced, build_model ~squared:options.squared reduced.Preprocess.problem))
  in
  let rp = reduced.Preprocess.problem in
  let warm_state =
    match warm with
    | None -> None
    | Some w ->
      (* A transported state is applied only when the two ground models are
         exactly isomorphic — every variable and factor matched on both
         sides. The state then already sits at the new model's own fixed
         point, and ADMM re-converges to the same solution in a handful of
         iterations. Partial overlaps start cold instead: an ADMM run from a
         foreign point can converge to a different optimum of the same
         objective and silently change the rounded selection, breaking the
         warm-equals-cold contract. *)
      let d = Psl.Grounding.delta ~prev:w.model ~next:model in
      let next_factors = Array.length d.Psl.Grounding.factor_map in
      if
        d.Psl.Grounding.matched_vars = d.Psl.Grounding.next_num_vars
        && Psl.Hlmrf.num_vars w.model = d.Psl.Grounding.next_num_vars
        && d.Psl.Grounding.matched_factors = next_factors
        && Array.length w.state.Psl.Admm.duals = next_factors
      then Some (Psl.Grounding.transport d w.state)
      else None
  in
  let admm =
    Telemetry.with_span "cmd.solve" (fun () ->
        Psl.Admm.solve ~options:options.admm ?warm:warm_state model)
  in
  let m = Problem.num_candidates p in
  let fractional = Array.sub admm.Psl.Admm.solution 0 m in
  let selection =
    Telemetry.with_span "cmd.round" (fun () ->
        let rounded =
          match options.rounding with
          | Conditional -> conditional_round rp fractional
          | Threshold tau -> threshold_round rp tau fractional
        in
        if options.repair then Local_search.improve rp rounded else rounded)
  in
  {
    selection;
    objective = Objective.value p selection;
    fractional;
    admm;
    num_vars = Psl.Hlmrf.num_vars model;
    num_potentials = Psl.Hlmrf.num_potentials model;
    num_constraints = Psl.Hlmrf.num_constraints model;
    warm_out = { model; state = admm.Psl.Admm.state };
  }
