(** Simulated annealing over selections — a randomised baseline.

    Standard geometric-cooling annealing on the selection mask: a random
    single-candidate flip is accepted when it improves the objective, or
    with probability [exp(−Δ/T)] otherwise. Deterministic for a fixed seed.
    Mostly useful as an independent check on the other solvers in tests and
    ablations; on this problem the greedy/CMD pipeline is both faster and
    better. *)

type options = {
  iterations : int;  (** total proposals; default 2000 *)
  initial_temperature : float;  (** default 2.0 *)
  cooling : float;  (** geometric factor per proposal; default 0.998 *)
  seed : int;  (** default 0 *)
}

val default_options : options

val solve :
  ?pool : Parallel.Pool.t ->
  ?seed : int ->
  ?options : options ->
  Problem.t ->
  bool array
(** The best selection visited (which is at least as good as the final
    state). [seed] overrides [options.seed]; [pool] is accepted for
    signature parity with the sibling solvers ({!Core.Solver}) and ignored
    — a single annealing chain is inherently sequential (use {!solve_multi}
    to fan chains out). *)

val solve_multi :
  ?pool : Parallel.Pool.t ->
  ?options : options ->
  ?chains : int ->
  Problem.t ->
  bool array
(** [solve_multi ~chains] runs [chains] independent annealing chains (on
    the pool's workers when given) and returns the best selection by exact
    objective value, ties broken towards the lowest chain index. Chain [i]
    is seeded with [Parallel.Seed.derive options.seed i] — chain 0 keeps
    the base seed, so [solve_multi ~chains:1] equals [solve], and results
    do not depend on the pool size. Default: 1 chain. Raises
    [Invalid_argument] on [chains < 1]. *)
