(** The selection objective (Eq. 4 / Eq. 9 of the paper, with the appendix's
    weighted generalisation).

    For a selection [M ⊆ C]:

    {v
      F(M) =  w1 · Σ_{t ∈ J}  (1 − explains(M, t))
            + w2 · Σ_{θ ∈ M}  errors(θ)
            + w3 · Σ_{θ ∈ M}  size(θ)
    v}

    with [explains(M, t) = max_{θ ∈ M} covers(θ, t)]. All values are exact
    rationals. *)

type breakdown = {
  unexplained : Util.Frac.t;  (** [w1 · Σ (1 − explains)] *)
  errors : int;  (** [Σ_{θ ∈ M} errors(θ)], unweighted count *)
  size : int;  (** [Σ_{θ ∈ M} size(θ)], unweighted *)
  total : Util.Frac.t;  (** the weighted objective [F(M)] *)
}

val value : Problem.t -> bool array -> Util.Frac.t
(** [F] of a selection (given as a membership mask over the candidates). *)

val breakdown : Problem.t -> bool array -> breakdown

val explains : Problem.t -> bool array -> int -> Util.Frac.t
(** [explains problem sel i]: the degree to which the selection explains the
    [i]-th target tuple. *)

val best_coverage : Problem.t -> bool array -> Util.Frac.t array
(** Per-tuple [explains] values for a selection, as a fresh array. *)

val empty_value : Problem.t -> Util.Frac.t
(** [F({})] — [w1 · |J|]. *)

val lower_bound : Problem.t -> Util.Frac.t
(** An exact-rational lower bound on [F] over all selections:
    [w1 · Σ_t (1 − max_θ covers(θ, t))], i.e. candidates cost nothing and
    every tuple gets its best achievable coverage. A solver whose achieved
    objective equals this bound is provably optimal — the certificate the
    portfolio's racing uses. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
