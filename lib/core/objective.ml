open Util

type breakdown = {
  unexplained : Frac.t;
  errors : int;
  size : int;
  total : Frac.t;
}

let best_coverage (p : Problem.t) sel =
  let best = Array.make (Array.length p.Problem.tuples) Frac.zero in
  Array.iteri
    (fun c selected ->
      if selected then
        Array.iter
          (fun (ti, d) -> if Frac.(best.(ti) < d) then best.(ti) <- d)
          p.Problem.covers.(c))
    sel;
  best

let explains (p : Problem.t) sel ti =
  let best = ref Frac.zero in
  Array.iteri
    (fun c selected ->
      if selected then
        Array.iter
          (fun (ti', d) -> if ti' = ti && Frac.(!best < d) then best := d)
          p.Problem.covers.(c))
    sel;
  !best

let breakdown (p : Problem.t) sel =
  let best = best_coverage p sel in
  let covered = Array.fold_left Frac.add Frac.zero best in
  let unexplained =
    Frac.mul
      (Frac.of_int p.Problem.weights.Problem.w_unexplained)
      (Frac.sub (Frac.of_int (Array.length p.Problem.tuples)) covered)
  in
  let errors = ref 0 and size = ref 0 and cost = ref Frac.zero in
  Array.iteri
    (fun c selected ->
      if selected then begin
        errors := !errors + Cover.error_count p.Problem.stats.(c);
        size := !size + p.Problem.stats.(c).Cover.size;
        cost := Frac.add !cost p.Problem.cand_cost.(c)
      end)
    sel;
  { unexplained; errors = !errors; size = !size; total = Frac.add unexplained !cost }

let value p sel = (breakdown p sel).total

let lower_bound (p : Problem.t) =
  (* The root bound of the branch-and-bound search: selecting is free and
     every tuple enjoys its best achievable coverage over all candidates.
     No selection can score below this. *)
  let best = Array.make (Array.length p.Problem.tuples) Frac.zero in
  Array.iter
    (fun cover_list ->
      Array.iter
        (fun (ti, d) -> if Frac.(best.(ti) < d) then best.(ti) <- d)
        cover_list)
    p.Problem.covers;
  let covered = Array.fold_left Frac.add Frac.zero best in
  Frac.mul
    (Frac.of_int p.Problem.weights.Problem.w_unexplained)
    (Frac.sub (Frac.of_int (Array.length p.Problem.tuples)) covered)

let empty_value (p : Problem.t) =
  Frac.of_int (p.Problem.weights.Problem.w_unexplained * Array.length p.Problem.tuples)

let pp_breakdown ppf b =
  Format.fprintf ppf "unexplained %a + errors %d + size %d = %a" Frac.pp
    b.unexplained b.errors b.size Frac.pp b.total
