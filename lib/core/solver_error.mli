(** The typed refusal a solver raises when it cannot handle a problem
    (rather than failing to solve it): branch and bound past its candidate
    limit, for instance. Callers that fan out over solvers — the portfolio
    roster, [cmd_select], the serve daemon — catch it by type and either
    skip the solver deterministically or surface a structured error, where a
    bare [Invalid_argument] used to crash or land in the generic
    internal-error bucket. *)

exception Error of { solver : string; reason : string }

val raise_ : solver : string -> ('a, unit, string, 'b) format4 -> 'a
(** [raise_ ~solver fmt ...] raises {!Error} with a formatted reason. *)

val to_string : exn -> string
(** Renders an {!Error}; raises [Invalid_argument] on any other exception.
    Also installed as a [Printexc] printer. *)
