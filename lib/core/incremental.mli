(** Incremental (delta) evaluation of the selection objective.

    The naive evaluator ([Objective.value]) walks every candidate and every
    cover list on each call, so a solver probing single-candidate flips pays
    O(m · |covers|) per probe. This module maintains a mutable evaluation
    state from which the objective of the current selection — and the exact
    effect of any single flip — is available in O(|covers(c)| · log k) per
    flip, where k bounds the number of selected candidates covering one
    tuple.

    Per target tuple the state keeps the multiset of coverage degrees
    contributed by the currently selected candidates; [explains(M, t)] is
    the multiset maximum, so committing or probing a flip only touches the
    tuples the flipped candidate covers. Running accumulators track the
    covered mass, error and size counts, and the summed candidate cost.

    All arithmetic is exact [Util.Frac] rationals: every value produced here
    is bit-identical to the naive evaluator's, which the qcheck differential
    suite in [test/test_incremental.ml] enforces. *)

type t

val create : Problem.t -> bool array -> t
(** [create p sel] builds the evaluation state for selection [sel] (the
    array is copied, not aliased). Cost: one naive-evaluation sweep. *)

val flip : t -> int -> unit
(** [flip st c] toggles candidate [c] in the selection, updating the state
    in O(|covers(c)| · log k). *)

val flip_delta : t -> int -> Util.Frac.t
(** [flip_delta st c] is [F(sel with c flipped) − F(sel)] — negative when
    the flip improves (decreases) the objective — without committing the
    flip. Same per-call cost as [flip]. *)

val value : t -> Util.Frac.t
(** The objective of the current selection, O(1). *)

val breakdown : t -> Objective.breakdown
(** The current selection's breakdown, O(1); exactly equal to
    [Objective.breakdown p (selection st)]. *)

val self_check : t -> (unit, string) result
(** Verifies the internal state (accumulators, cached per-tuple maxima,
    degree-multiset cardinalities) against a from-scratch naive evaluation.
    O(full evaluation) — a diagnostic hook for the fuzzing harness, not for
    hot paths. *)

val is_selected : t -> int -> bool

val selection : t -> bool array
(** A fresh copy of the current selection mask. *)

val problem : t -> Problem.t
