open Util

type runner = {
  r_name : string;
  r_solve : ?pool:Parallel.Pool.t -> ?seed:int -> Problem.t -> bool array;
  r_exact : bool;
}

type race_result = {
  selection : bool array;
  winner : string;
  proved : bool;
}

(* Monotone minimum over prover indices; the threshold only ever falls. *)
let rec note_prover a i =
  let cur = Atomic.get a in
  if i < cur && not (Atomic.compare_and_set a cur i) then note_prover a i

let race ~roster ?pool ?seed p =
  if roster = [] then invalid_arg "Portfolio.race: empty roster";
  let roster = Array.of_list roster in
  let bound = Objective.lower_bound p in
  (* Lowest roster index of a finisher whose result is provably optimal.
     Entries past it skip before starting — the cooperative cancellation.
     A skipped entry always has a larger index than some prover, so it can
     never be the winner: the raced result is a pure function of
     (problem, seed) for any pool size, including none. *)
  let prover = Atomic.make max_int in
  let attempt i =
    if Atomic.get prover < i then None
    else
      let entry = roster.(i) in
      match entry.r_solve ?pool ?seed p with
      | exception Solver_error.Error _ -> None
      | selection ->
        let objective = Objective.value p selection in
        let proved = entry.r_exact || Frac.compare objective bound <= 0 in
        if proved then note_prover prover i;
        Some (selection, objective, proved)
  in
  let indices = Array.init (Array.length roster) Fun.id in
  let results =
    match pool with
    | Some pool when Parallel.Pool.jobs pool > 1 && not (Parallel.Pool.on_worker ())
      ->
      Parallel.Pool.parallel_map ~chunk:1 pool attempt indices
    | _ -> Array.map attempt indices
  in
  (* Least-index prover wins; otherwise the best objective, lowest index
     breaking ties (Array.iteri keeps the first minimum it sees). *)
  let winner = ref None in
  Array.iteri
    (fun i -> function
      | Some (_, _, true) when !winner = None -> winner := Some i
      | _ -> ())
    results;
  let winner =
    match !winner with
    | Some i -> Some (i, true)
    | None ->
      let best = ref None in
      Array.iteri
        (fun i -> function
          | Some (_, obj, _) -> (
            match !best with
            | Some (_, b) when Frac.compare b obj <= 0 -> ()
            | _ -> best := Some (i, obj))
          | None -> ())
        results;
      Option.map (fun (i, _) -> (i, false)) !best
  in
  match winner with
  | None ->
    Solver_error.raise_ ~solver:"portfolio" "every roster solver refused"
  | Some (i, proved) ->
    let selection, _, _ = Option.get results.(i) in
    { selection; winner = roster.(i).r_name; proved }
