exception Error of { solver : string; reason : string }

let raise_ ~solver fmt =
  Printf.ksprintf (fun reason -> raise (Error { solver; reason })) fmt

let to_string = function
  | Error { solver; reason } -> Printf.sprintf "solver %s: %s" solver reason
  | _ -> invalid_arg "Solver_error.to_string"

let () =
  Printexc.register_printer (function
    | Error _ as e -> Some (to_string e)
    | _ -> None)
