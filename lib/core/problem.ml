open Relational
open Util

type weights = {
  w_unexplained : int;
  w_errors : int;
  w_size : int;
}

let default_weights = { w_unexplained = 1; w_errors = 1; w_size = 1 }

type t = {
  candidates : Logic.Tgd.t array;
  stats : Cover.tgd_stats array;
  tuples : Tuple.t array;
  covers : (int * Frac.t) array array;
  cand_cost : Frac.t array;
  weights : weights;
}

let check_weights w =
  if w.w_unexplained <= 0 || w.w_errors <= 0 || w.w_size <= 0 then
    invalid_arg "Problem: weights must be positive"

let of_stats ?(weights = default_weights) ~j stats =
  check_weights weights;
  let tuples = Array.of_list (Instance.tuples j) in
  let tuple_index = Hashtbl.create (Array.length tuples) in
  Array.iteri (fun i t -> Hashtbl.replace tuple_index t i) tuples;
  let covers =
    Array.map
      (fun s ->
        Tuple.Map.fold
          (fun t d acc ->
            match Hashtbl.find_opt tuple_index t with
            | Some i -> (i, d) :: acc
            | None -> acc)
          s.Cover.covers []
        |> List.rev |> Array.of_list)
      stats
  in
  let cand_cost =
    Array.map
      (fun s ->
        Frac.of_int
          ((weights.w_errors * Cover.error_count s)
          + (weights.w_size * s.Cover.size)))
      stats
  in
  {
    candidates = Array.map (fun s -> s.Cover.tgd) stats;
    stats;
    tuples;
    covers;
    cand_cost;
    weights;
  }

let with_weights t weights =
  check_weights weights;
  let cand_cost =
    Array.map
      (fun s ->
        Frac.of_int
          ((weights.w_errors * Cover.error_count s) + (weights.w_size * s.Cover.size)))
      t.stats
  in
  { t with cand_cost; weights }

let make ?weights ?semantics ?(core = false) ?cache ~source ~j candidates =
  let stats =
    match cache with
    | None -> Cover.analyze ?semantics ~core ~source ~j candidates
    | Some cache ->
      (* Same per-candidate derivation as [Cover.analyze], each candidate
         memoized separately: one shared columnar source (or row-major
         index on the mixed-arity fallback), a fresh chase per tgd. The
         chase restarts its null labels per run, so the cached stats are
         position-independent and [Cache.tgd_stats] can re-index them for
         this candidate list. The data digest is computed once and the
         chase fixture lazily — a fully warm build touches neither the
         chase nor the source data beyond this one rendering. *)
      let source_key, data_key = Cache.example_keys ~source ~j in
      let chase =
        lazy
          (match Relational.Columnar.of_instance source with
          | col -> fun tgd -> Chase.run_columnar col [ tgd ]
          | exception Invalid_argument _ ->
            let index = Logic.Cq.Index.build source in
            fun tgd -> Chase.run ~index source [ tgd ])
      in
      (* The chase tier sits under the stats tier: a stats miss whose chase
         was already run for another target instance (a neighbouring sweep
         point) redoes only the coverage fold. *)
      let chase tgd =
        Cache.chase cache ~source_key tgd (fun () -> (Lazy.force chase) tgd)
      in
      Array.of_list
        (List.mapi
           (fun index tgd ->
             Cache.tgd_stats cache ?semantics ~core ~data_key ~index tgd
               (fun () ->
                 Cover.stats_of_result ?semantics ~core ~j ~index tgd
                   (chase tgd)))
           candidates)
  in
  of_stats ?weights ~j stats

let digest t =
  let stat_part (s : Cover.tgd_stats) =
    let buf = Buffer.create 128 in
    Buffer.add_string buf (Cache.Key.tgd s.Cover.tgd);
    Buffer.add_string buf "|cost ";
    Buffer.add_string buf (Cache.Key.frac t.cand_cost.(s.Cover.index));
    Tuple.Map.iter
      (fun tu d ->
        Buffer.add_string buf "|cover ";
        Buffer.add_string buf (Cache.Key.tuple tu);
        Buffer.add_char buf ' ';
        Buffer.add_string buf (Cache.Key.frac d))
      s.Cover.covers;
    List.iter
      (fun tu ->
        Buffer.add_string buf "|error ";
        Buffer.add_string buf (Cache.Key.tuple tu))
      s.Cover.error_tuples;
    Buffer.add_string buf
      (Printf.sprintf "|produced %d|size %d" s.Cover.produced s.Cover.size);
    Buffer.contents buf
  in
  Cache.Key.digest
    ([
       "problem";
       Printf.sprintf "w %d %d %d" t.weights.w_unexplained t.weights.w_errors
         t.weights.w_size;
     ]
    @ List.map Cache.Key.tuple (Array.to_list t.tuples)
    @ List.map stat_part (Array.to_list t.stats))

let num_candidates t = Array.length t.candidates

let num_tuples t = Array.length t.tuples

let selection_of_indices t indices =
  let sel = Array.make (num_candidates t) false in
  List.iter
    (fun i ->
      if i < 0 || i >= Array.length sel then
        invalid_arg "Problem.selection_of_indices: index out of range";
      sel.(i) <- true)
    indices;
  sel

let indices_of_selection sel =
  Array.to_list (Array.mapi (fun i b -> (i, b)) sel)
  |> List.filter_map (fun (i, b) -> if b then Some i else None)
