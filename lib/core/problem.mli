(** A mapping-selection problem instance, precomputed for fast objective
    evaluation.

    Construction chases the source instance once per candidate and computes
    the Eq. 9 coverage/error statistics ({!Cover.analyze}); afterwards every
    objective evaluation is a cheap pass over the precomputed degrees. The
    weighted objective of the appendix is supported through the positive
    integer weights [(w1, w2, w3)] on coverage, errors and size; the paper's
    Eq. 9 is [(1, 1, 1)]. *)

type weights = {
  w_unexplained : int;  (** w1: per unit of unexplained target tuple *)
  w_errors : int;  (** w2: per error tuple *)
  w_size : int;  (** w3: per unit of tgd size *)
}

val default_weights : weights
(** [(1, 1, 1)] — the unweighted objective of Eq. 9. *)

type t = {
  candidates : Logic.Tgd.t array;
  stats : Cover.tgd_stats array;  (** aligned with [candidates] *)
  tuples : Relational.Tuple.t array;  (** the target tuples of [J] *)
  covers : (int * Util.Frac.t) array array;
      (** per candidate: (tuple index, coverage degree), positive degrees
          only *)
  cand_cost : Util.Frac.t array;
      (** per candidate: [w2·errors + w3·size] — its selection cost *)
  weights : weights;
}

val make :
  ?weights : weights ->
  ?semantics : Cover.semantics ->
  ?core : bool ->
  ?cache : Cache.t ->
  source : Relational.Instance.t ->
  j : Relational.Instance.t ->
  Logic.Tgd.t list ->
  t
(** Builds the problem from a data example and candidate list. [semantics]
    selects the coverage semantics (default the paper's corroborated Eq. 9;
    the others are ablation variants). [core] (default [false]) shrinks each
    candidate's chased target to its core universal solution before the
    coverage fold ({!Cover.stats_of_result}) — fewer produced tuples and
    errors, hence a different (not bit-identical) problem, cached under
    core-flagged keys. With [cache], each candidate's chase and coverage
    statistics are memoized content-addressed (bit-identical to the uncached
    analysis; the cached stats are weight-independent, so any weights share
    the entries). Raises [Invalid_argument] on non-positive weights. *)

val digest : t -> string
(** A content digest of the full problem (weights, target tuples, per
    candidate: tgd, cost, coverage degrees, error tuples) — the key under
    which {!Cache.selection} memoizes solver results. *)

val of_stats :
  ?weights : weights ->
  j : Relational.Instance.t ->
  Cover.tgd_stats array ->
  t
(** Builds the problem from precomputed statistics (e.g. to avoid re-chasing
    when several solvers share one analysis). *)

val with_weights : t -> weights -> t
(** The same problem under different weights — the coverage degrees are
    weight-independent, so only the candidate costs are recomputed. Raises
    [Invalid_argument] on non-positive weights. *)

val num_candidates : t -> int

val num_tuples : t -> int

val selection_of_indices : t -> int list -> bool array

val indices_of_selection : bool array -> int list
