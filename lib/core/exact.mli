(** Exact mapping selection by branch and bound.

    Mapping selection is NP-hard (Theorem 1 of the appendix), so this solver
    is exponential in the worst case; it is intended for small candidate sets
    (ground truth for experiments, correctness oracle for tests). The search
    enumerates include/exclude decisions in candidate order, pruning with the
    bound [cost(selected) + w1·Σ_t (1 − maxcover(t))] where [maxcover] is the
    best coverage achievable by the candidates not yet excluded; the greedy
    solution provides the initial incumbent. *)

val solve : ?max_candidates : int -> Problem.t -> bool array
(** Raises {!Solver_error.Error} when the problem has more than
    [max_candidates] (default 25) candidates — a guard against accidental
    exponential blow-ups, typed so the portfolio and the daemons can skip or
    report it. The returned selection attains the minimum of
    {!Objective.value}. *)
