(** The unified selection-solver interface.

    Every solver in the repo answers the same question — given a
    {!Problem.t}, which candidate subset minimises the Eq. 9 objective? —
    but historically each exposed its own signature (restarts here, an
    options record there, a result record for CMD). This module is the one
    seam: a first-class-module interface with a fixed [solve] shape, a
    registry keyed by name, and the telemetry hook
    (a [solver.<name>] span plus the [solver.objective_best] gauge) that
    instruments all of them at once.

    Since solvers now return an {!outcome} — selection plus the fractional
    MAP values when the solver computes them — CMD no longer needs an
    out-of-band entry point anywhere; [cmd_select]'s fractional column comes
    straight through the registry.

    The per-module entry points ([Greedy.solve], [Exact.solve], …) remain
    the implementations — the registry wraps them, so existing call sites
    keep working and registry calls stay bit-identical to direct ones. *)

type outcome = {
  selection : bool array;
  fractional : float array option;
      (** per-candidate relaxed [in(θ)] values, for solvers that produce
          them (CMD); [None] otherwise and on cache hits *)
}

module type S = sig
  val name : string
  (** Registry key, lowercase (["greedy"], ["cmd"], …). *)

  val solve : ?pool:Parallel.Pool.t -> ?seed:int -> Problem.t -> outcome
  (** Solves under the solver's canonical settings. Deterministic in
      [(problem, seed)] — never in [pool] (the {!Parallel.Pool} determinism
      contract); solvers without internal randomness or parallel phases
      ignore the respective argument. May raise {!Solver_error.Error} when
      the solver cannot handle the problem shape (exact past its candidate
      limit). *)
end

type t = (module S)

val all : t list
(** Every registered solver, in registry order: greedy, exact, local,
    anneal, cmd, all, portfolio. The portfolio races the others
    ({!Portfolio.race}) under the same determinism contract. *)

val names : unit -> string list

val find : string -> t option
(** Case-insensitive lookup by {!S.name}. *)

val name : t -> string

val solve :
  t ->
  ?pool:Parallel.Pool.t ->
  ?seed:int ->
  ?cache:Cache.t ->
  Problem.t ->
  outcome
(** [solve s ?pool ?seed p] runs the solver inside a [solver.<name>]
    telemetry span and records the achieved objective on the
    [solver.objective_best] gauge (when telemetry is enabled; the outcome
    returned is byte-identical either way). With [cache], the selection is
    memoized under [(name, seed, Problem.digest p)] — sound because every
    registered solver is deterministic in [(problem, seed)]; on a cache hit
    [fractional] is [None]. *)
