(** CMD — collective mapping discovery, the paper's approach.

    The selection problem is translated into a ground probabilistic-soft-logic
    program over decision atoms [in(θ) ∈ [0,1]] (one per candidate) and
    auxiliary atoms [explained(t) ∈ [0,1]] (one per coverable target tuple):

    - soft, weight [w1]: [explained(t)] — a linear loss [1 − y_t];
    - hard: [explained(t) ≤ Σ_θ covers(θ,t)·in(θ)] — the Łukasiewicz
      disjunction of the candidates' support;
    - soft, weight [w2·errors(θ) + w3·size(θ)]: [¬in(θ)] — a linear loss
      [cost_θ · x_θ].

    MAP inference on the resulting hinge-loss MRF (consensus ADMM,
    {!Psl.Admm}) yields fractional [in(θ)] values; a discrete mapping is
    recovered by conditional rounding — candidates are visited in decreasing
    fractional value and kept iff they improve the exact discrete objective —
    followed by a single-flip repair pass. Certainly-unexplained tuples are
    removed before the model is built ({!Preprocess}).

    The LP relaxation uses the capped-sum semantics of Łukasiewicz
    disjunction for [explains]; the rounding and all reported objective
    values use the exact [max] semantics of Eq. 9. *)

type rounding =
  | Conditional  (** greedy acceptance in fractional order (default) *)
  | Threshold of float  (** keep candidates with [in(θ) ≥ τ] *)

type options = {
  admm : Psl.Admm.options;
  rounding : rounding;
  repair : bool;  (** run the single-flip repair pass (default true) *)
  squared : bool;
      (** square the soft potentials, PSL's default flavour; the objective
          relaxed is then the squared variant of Eq. 9 (default false) *)
}

val default_options : options

type warm = {
  model : Psl.Hlmrf.t;  (** the ground model the state was captured on *)
  state : Psl.Admm.state;
}
(** A warm-start handle from a previous solve of a structurally similar
    problem (a re-served sweep point). {!solve} diffs the two ground models
    with {!Psl.Grounding.delta} and transports the ADMM state across. *)

type result = {
  selection : bool array;
  objective : Util.Frac.t;  (** exact objective of [selection] *)
  fractional : float array;  (** the MAP values of [in(θ)], per candidate *)
  admm : Psl.Admm.outcome;
  num_vars : int;  (** variables of the ground model *)
  num_potentials : int;
  num_constraints : int;
  warm_out : warm;  (** handle for warm-starting the next sweep point *)
}

val solve : ?options : options -> ?warm : warm -> Problem.t -> result
(** Omitting [warm] is bit-identical to the historical cold start. With
    [warm], the transported state is applied only when {!Psl.Grounding.delta}
    matches the two ground models exactly — the state then sits at the new
    model's own fixed point and ADMM re-converges in a handful of
    iterations; any partial overlap falls back to the cold start, because a
    foreign starting point can reach a different optimum of the same
    objective and flip the rounded selection. Warm and cold runs therefore
    always select identically (fuzz `warm-start` family, [test_cmd]). *)

val build_model : ?squared : bool -> Problem.t -> Psl.Hlmrf.t
(** The ground HL-MRF for a (typically preprocessed) problem, with variables
    [0..m-1] the candidates and [m..m+T-1] the explained-atoms. Exposed for
    testing and for the scaling benchmarks. *)
