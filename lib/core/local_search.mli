(** Single-flip local search over selections.

    [improve] repeatedly applies the best improving single candidate flip
    until none exists; [solve] runs [improve] from the greedy solution and,
    optionally, from additional random restarts, returning the best local
    optimum found. *)

val improve : Problem.t -> bool array -> bool array
(** Returns a (possibly) improved copy; the argument is not mutated. *)

val solve :
  ?pool : Parallel.Pool.t ->
  ?restarts : int ->
  ?seed : int ->
  Problem.t ->
  bool array
(** Default: no restarts (greedy start only), seed 0. With [pool] the
    greedy-start descent and the restarts run on the worker domains;
    restart starts are still drawn sequentially from the single seeded rng
    and the best local optimum is chosen by exact objective value with ties
    broken towards the lowest restart index, so the result is bit-identical
    to the sequential run. *)
