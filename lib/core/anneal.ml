open Util

type options = {
  iterations : int;
  initial_temperature : float;
  cooling : float;
  seed : int;
}

let default_options =
  { iterations = 2000; initial_temperature = 2.0; cooling = 0.998; seed = 0 }

(* Each proposal costs one [Incremental.flip_delta] probe (plus a commit when
   accepted) rather than a full objective re-evaluation. The rng is consumed
   in exactly the same order as the naive implementation — a float is drawn
   only for non-improving proposals — so solutions are unchanged for a given
   seed. [?pool] exists for signature parity with the other solvers (a single
   chain is inherently sequential); [?seed] overrides [options.seed]. *)
let solve ?pool:_ ?seed ?(options = default_options) (p : Problem.t) =
  let options =
    match seed with Some seed -> { options with seed } | None -> options
  in
  let m = Problem.num_candidates p in
  if m = 0 then [||]
  else begin
    let rng = Random.State.make [| options.seed |] in
    let st = Incremental.create p (Array.make m false) in
    let current = ref (Incremental.value st) in
    let best = Incremental.selection st in
    let best_v = ref !current in
    let temperature = ref options.initial_temperature in
    for _ = 1 to options.iterations do
      let c = Random.State.int rng m in
      let delta_f = Incremental.flip_delta st c in
      let delta = Frac.to_float delta_f in
      let accept =
        delta <= 0.
        || Random.State.float rng 1. < exp (-.delta /. Float.max 1e-9 !temperature)
      in
      if accept then begin
        Incremental.flip st c;
        let v = Frac.add !current delta_f in
        current := v;
        if Frac.(v < !best_v) then begin
          best_v := v;
          Array.blit (Incremental.selection st) 0 best 0 m
        end
      end;
      temperature := !temperature *. options.cooling
    done;
    best
  end

(* Independent chains with explicitly split seeds (chain 0 keeps the base
   seed, so one chain degenerates to [solve]); best by exact objective, ties
   to the lowest chain index. Chains never share rng state, so pool and
   sequential runs agree bit for bit. *)
let solve_multi ?pool ?(options = default_options) ?(chains = 1) p =
  if chains < 1 then invalid_arg "Anneal.solve_multi: chains must be >= 1";
  let run_chain i =
    let options = { options with seed = Parallel.Seed.derive options.seed i } in
    let sel = solve ~options p in
    (sel, Objective.value p sel)
  in
  let results =
    let indices = Array.init chains Fun.id in
    match pool with
    | Some pool -> Parallel.Pool.parallel_map ~chunk:1 pool run_chain indices
    | None -> Array.map run_chain indices
  in
  let best = ref (fst results.(0)) in
  let best_v = ref (snd results.(0)) in
  for i = 1 to chains - 1 do
    let sel, v = results.(i) in
    if Frac.(v < !best_v) then begin
      best := sel;
      best_v := v
    end
  done;
  !best
