open Util

(* The best-flip scan probes every candidate through [Incremental.flip_delta]
   (O(|covers(c)| · log k) each) instead of re-evaluating the whole objective
   per probe; only the chosen flip is committed. Tie-breaking — first
   candidate with the strictly smallest post-flip value — matches the
   original naive implementation, so the visited selections are identical. *)
let improve p start =
  let st = Incremental.create p start in
  let improved = ref true in
  while !improved do
    improved := false;
    let best_flip = ref None in
    for c = 0 to Problem.num_candidates p - 1 do
      let delta = Incremental.flip_delta st c in
      if Frac.(delta < Frac.zero) then
        match !best_flip with
        | Some (_, bd) when Frac.(bd <= delta) -> ()
        | Some _ | None -> best_flip := Some (c, delta)
    done;
    match !best_flip with
    | None -> ()
    | Some (c, _) ->
      Incremental.flip st c;
      improved := true
  done;
  Incremental.selection st

(* Restart starts are drawn upfront from the single restart rng, in restart
   order, exactly as the sequential loop always did; only the (rng-free)
   [improve] descents fan out to the pool. Each descent is a pure function
   of its start, results land at their restart's index, and the winner is
   picked by exact-rational objective with ties broken towards the lowest
   index — so pool runs are bit-identical to sequential ones. *)
let solve ?pool ?(restarts = 0) ?(seed = 0) p =
  let m = Problem.num_candidates p in
  let rng = Random.State.make [| seed |] in
  let starts = Array.make (restarts + 1) [||] in
  starts.(0) <- Greedy.solve p;
  for r = 1 to restarts do
    starts.(r) <- Array.init m (fun _ -> Random.State.bool rng)
  done;
  let descend start =
    let sel = improve p start in
    (sel, Objective.value p sel)
  in
  let results =
    match pool with
    | Some pool -> Parallel.Pool.parallel_map ~chunk:1 pool descend starts
    | None -> Array.map descend starts
  in
  let best = ref (fst results.(0)) in
  let best_v = ref (snd results.(0)) in
  for r = 1 to restarts do
    let candidate, v = results.(r) in
    if Frac.(v < !best_v) then begin
      best := candidate;
      best_v := v
    end
  done;
  !best
