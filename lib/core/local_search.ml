open Util

(* The best-flip scan probes every candidate through [Incremental.flip_delta]
   (O(|covers(c)| · log k) each) instead of re-evaluating the whole objective
   per probe; only the chosen flip is committed. Tie-breaking — first
   candidate with the strictly smallest post-flip value — matches the
   original naive implementation, so the visited selections are identical. *)
let improve p start =
  let st = Incremental.create p start in
  let improved = ref true in
  while !improved do
    improved := false;
    let best_flip = ref None in
    for c = 0 to Problem.num_candidates p - 1 do
      let delta = Incremental.flip_delta st c in
      if Frac.(delta < Frac.zero) then
        match !best_flip with
        | Some (_, bd) when Frac.(bd <= delta) -> ()
        | Some _ | None -> best_flip := Some (c, delta)
    done;
    match !best_flip with
    | None -> ()
    | Some (c, _) ->
      Incremental.flip st c;
      improved := true
  done;
  Incremental.selection st

let solve ?(restarts = 0) ?(seed = 0) p =
  let m = Problem.num_candidates p in
  let best = ref (improve p (Greedy.solve p)) in
  let best_v = ref (Objective.value p !best) in
  let rng = Random.State.make [| seed |] in
  for _ = 1 to restarts do
    let start = Array.init m (fun _ -> Random.State.bool rng) in
    let candidate = improve p start in
    let v = Objective.value p candidate in
    if Frac.(v < !best_v) then begin
      best := candidate;
      best_v := v
    end
  done;
  !best
