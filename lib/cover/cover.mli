(** Coverage and error degrees for st tgds — the Eq. 9 semantics.

    Given the target instance [J] of a data example and the chase triggers of
    a candidate tgd [θ], this module computes:

    - [covers(θ, t)] for every [t ∈ J]: the degree in [0,1] to which [θ]
      explains [t]. It is the maximum, over trigger groups of [θ] and
      consistent assignments [h] of the group's nulls to constants, of the
      fraction of [t]'s positions accounted for. A position is accounted for
      when the chase tuple carries an equal constant there, or carries a null
      [n] with [h n = t.(pos)] that is {e corroborated}: [n] also occurs in a
      different tuple of the same trigger group whose image under [h] lies in
      [J]. Corroboration is what distinguishes a join-carried value from an
      arbitrary placeholder; it reproduces the appendix's degrees (2/3 for a
      lone task tuple, 3/3 once a joined org tuple lands in [J]).

    - [error(θ, t')] for every trigger tuple [t']: 1 when no assignment of
      [t']'s nulls maps it onto a tuple of [J], else 0 (the appendix's
      [creates]).

    [explains(M, t)] for a mapping [M] is the maximum of [covers(θ, t)] over
    [θ ∈ M]. *)

(** How null positions of a matched chase tuple count towards coverage.
    [Corroborated] is the paper's Eq. 9 semantics and the default; the other
    two are ablation variants (experiment E11): [Strict] never credits an
    invented value, [Generous] always does. Only [Corroborated] reproduces
    the appendix's worked numbers. *)
type semantics =
  | Corroborated
      (** a null counts iff it also occurs in a sibling tuple of the trigger
          group whose image lies in [J] *)
  | Strict  (** nulls never count *)
  | Generous  (** a matched null always counts *)

type tgd_stats = {
  index : int;  (** position of the tgd in the candidate list *)
  tgd : Logic.Tgd.t;
  covers : Util.Frac.t Relational.Tuple.Map.t;
      (** per target tuple: best coverage degree; tuples with degree 0 are
          absent *)
  error_tuples : Relational.Tuple.t list;
      (** trigger tuples with error 1, with multiplicity across triggers *)
  produced : int;  (** total trigger tuples produced (with multiplicity) *)
  size : int;  (** [Tgd.size] of the tgd, cached *)
}

val covers : tgd_stats -> Relational.Tuple.t -> Util.Frac.t
(** Coverage degree of one target tuple (0 if absent). *)

val error_count : tgd_stats -> int
(** Number of error tuples, i.e. [Σ_{t'} error(θ, t')]. *)

val covered_targets : tgd_stats -> Relational.Tuple.t list
(** Target tuples with a strictly positive coverage degree. *)

val stats_of_triggers :
  ?semantics : semantics ->
  j : Relational.Instance.t ->
  index : int ->
  Logic.Tgd.t ->
  Chase.Trigger.t list ->
  tgd_stats
(** Statistics of one tgd from its chase triggers. The triggers must all
    belong to the given tgd. *)

val stats_of_result :
  ?semantics : semantics ->
  ?core : bool ->
  j : Relational.Instance.t ->
  index : int ->
  Logic.Tgd.t ->
  Chase.result ->
  tgd_stats
(** Statistics of one tgd from its chase result. With [~core:true] the
    chased target is first shrunk to its core universal solution
    ({!Chase.Core_solution}): trigger tuples retracted away by the core are
    dropped before coverage and errors are computed, so [produced] counts
    the cored [K_M]. The default ([false]) is {!stats_of_triggers} on the
    result's triggers, bit-identical to the historical pipeline. *)

val analyze :
  ?semantics : semantics ->
  ?core : bool ->
  source : Relational.Instance.t ->
  j : Relational.Instance.t ->
  Logic.Tgd.t list ->
  tgd_stats array
(** Chases [source] with each candidate separately and computes statistics
    for each; [analyze] is the precomputation step of the selection
    pipeline. The chase runs on the columnar kernel (bit-identical to the
    row-major chase; mixed-arity relations fall back to it), and
    [~core:true] applies the {!stats_of_result} core stage per candidate. *)

val explains : tgd_stats list -> Relational.Tuple.t -> Util.Frac.t
(** [explains stats t] is the maximum coverage degree of [t] over the given
    tgds — the Eq. 9 [explains(M, t)] for the mapping they form. *)

val matches : pattern : Relational.Tuple.t -> Relational.Tuple.t -> bool
(** [matches ~pattern t] is [true] iff [t] is an image of [pattern] under
    some assignment of [pattern]'s nulls (same relation, equal constants
    positionwise, nulls bound consistently within the tuple). [t] itself may
    contain nulls; a pattern null may map onto them. *)

val maps_into : Relational.Tuple.t -> Relational.Instance.t -> bool
(** [maps_into pattern inst]: some tuple of [inst] matches [pattern]. *)

val uncovered_targets :
  tgd_stats array -> Relational.Instance.t -> Relational.Tuple.Set.t
(** Target tuples of [J] that no candidate covers to any positive degree —
    the "certainly unexplained" tuples that preprocessing removes (each
    contributes a constant 1 to the objective regardless of the selection). *)
