open Relational
open Logic
open Util

type semantics =
  | Corroborated
  | Strict
  | Generous

type tgd_stats = {
  index : int;
  tgd : Tgd.t;
  covers : Frac.t Tuple.Map.t;
  error_tuples : Tuple.t list;
  produced : int;
  size : int;
}

let covers stats t =
  match Tuple.Map.find_opt t stats.covers with None -> Frac.zero | Some d -> d

let error_count stats = List.length stats.error_tuples

let covered_targets stats = Tuple.Map.bindings stats.covers |> List.map fst

(* --- tuple pattern matching ------------------------------------------- *)

(* Extend a null assignment so that [pattern] maps onto the ground tuple
   [t]; [None] on conflict. *)
let match_with ~assignment ~(pattern : Tuple.t) (t : Tuple.t) =
  if not (String.equal pattern.Tuple.rel t.Tuple.rel) then None
  else if Array.length pattern.values <> Array.length t.values then None
  else
    let n = Array.length pattern.values in
    let rec loop i asg =
      if i >= n then Some asg
      else
        match pattern.values.(i) with
        | Value.Const _ as c ->
          if Value.equal c t.values.(i) then loop (i + 1) asg else None
        | Value.Null _ as nul -> (
          match Value.Map.find_opt nul asg with
          | Some bound ->
            if Value.equal bound t.values.(i) then loop (i + 1) asg else None
          | None -> loop (i + 1) (Value.Map.add nul t.values.(i) asg))
    in
    loop 0 assignment

let matches ~pattern t =
  match match_with ~assignment:Value.Map.empty ~pattern t with
  | Some _ -> true
  | None -> false

let maps_into pattern inst =
  Tuple.Set.exists (fun t -> matches ~pattern t) (Instance.tuples_of inst pattern.Tuple.rel)

(* --- per-trigger-group analysis --------------------------------------- *)

(* J interned once per analysis: per-relation tuple arrays in canonical
   order. The homomorphism search used to call [Instance.tuples_of] and
   re-materialise the relation's tuple set per probe — per group tuple per
   trigger per configuration — which dominated [stats_of_triggers] on wide
   groups. The arrays are built once and shared by every probe below. *)
type j_interned = (string, Tuple.t array) Hashtbl.t

let intern_j j : j_interned =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun rel ->
      Hashtbl.replace tbl rel
        (Array.of_list (Tuple.Set.elements (Instance.tuples_of j rel))))
    (Instance.relations j);
  tbl

let interned_rel (jx : j_interned) rel =
  Option.value ~default:[||] (Hashtbl.find_opt jx rel)

(* All J-tuples a group tuple can individually map onto, with the null
   assignment each match induces, in canonical J order. *)
let options_of ~jx (pattern : Tuple.t) =
  Array.fold_left
    (fun acc t ->
      match match_with ~assignment:Value.Map.empty ~pattern t with
      | None -> acc
      | Some asg -> (t, asg) :: acc)
    []
    (interned_rel jx pattern.Tuple.rel)
  |> List.rev

let maps_into_interned (jx : j_interned) pattern =
  Array.exists (fun t -> matches ~pattern t) (interned_rel jx pattern.Tuple.rel)

(* Merge two null assignments; [None] on conflict. *)
let merge_assignments a b =
  Value.Map.fold
    (fun k v acc ->
      match acc with
      | None -> None
      | Some m -> (
        match Value.Map.find_opt k m with
        | None -> Some (Value.Map.add k v m)
        | Some v' -> if Value.equal v v' then acc else None))
    b (Some a)

(* Degree to which group-tuple [i] covers its image, given which group
   tuples are matched in the current configuration. *)
let degree_of ~semantics ~group ~matched i =
  let pattern = group.(i) in
  let arity = Array.length pattern.Tuple.values in
  let corroborated nul =
    let contains_null (t : Tuple.t) = Array.exists (Value.equal nul) t.Tuple.values in
    List.exists (fun k -> k <> i && contains_null group.(k)) matched
  in
  let null_counts v =
    match semantics with
    | Corroborated -> corroborated v
    | Strict -> false
    | Generous -> true
  in
  let covered =
    Array.fold_left
      (fun n v ->
        match v with
        | Value.Const _ -> n + 1
        | Value.Null _ -> if null_counts v then n + 1 else n)
      0 pattern.Tuple.values
  in
  Frac.make covered arity

(* Enumerate all consistent configurations of one trigger group and fold the
   per-target-tuple maximum coverage into [acc]. A configuration assigns each
   group tuple either to a J-tuple (consistently with the shared nulls) or to
   "unmatched". *)
let fold_group_covers ~semantics ~jx group acc =
  let n = Array.length group in
  let options = Array.map (fun pattern -> options_of ~jx pattern) group in
  let best : (Tuple.t * Frac.t) list ref = ref [] in
  let record t d =
    best := (t, d) :: !best
  in
  (* choices.(i) = Some (j_tuple) if matched *)
  let choices = Array.make n None in
  let rec explore i assignment =
    if i >= n then begin
      let matched =
        List.filter (fun k -> choices.(k) <> None) (List.init n Fun.id)
      in
      List.iter
        (fun k ->
          match choices.(k) with
          | None -> ()
          | Some t -> record t (degree_of ~semantics ~group ~matched k))
        matched
    end
    else begin
      choices.(i) <- None;
      explore (i + 1) assignment;
      List.iter
        (fun (t, asg) ->
          match merge_assignments assignment asg with
          | None -> ()
          | Some merged ->
            choices.(i) <- Some t;
            explore (i + 1) merged;
            choices.(i) <- None)
        options.(i)
    end
  in
  explore 0 Value.Map.empty;
  List.fold_left
    (fun acc (t, d) ->
      if Frac.is_zero d then acc
      else
        Tuple.Map.update t
          (function
            | None -> Some d
            | Some d' -> Some (Frac.max d d'))
          acc)
    acc !best

let stats_of_triggers ?(semantics = Corroborated) ~j ~index tgd triggers =
  let jx = intern_j j in
  let covers, errors, produced =
    List.fold_left
      (fun (covers, errors, produced) (tr : Chase.Trigger.t) ->
        let group = Array.of_list tr.Chase.Trigger.tuples in
        let covers = fold_group_covers ~semantics ~jx group covers in
        let errors =
          Array.fold_left
            (fun errs pattern ->
              if maps_into_interned jx pattern then errs else pattern :: errs)
            errors group
        in
        (covers, errors, produced + Array.length group))
      (Tuple.Map.empty, [], 0)
      triggers
  in
  { index; tgd; covers; error_tuples = List.rev errors; produced; size = Tgd.size tgd }

(* Keep only the trigger tuples that survive into the core of the chased
   target; a trigger whose whole group was retracted away disappears. With
   coring on, coverage and errors are computed against the core universal
   solution, so redundant chase tuples stop inflating [K_M] (and stop
   counting as errors) — which is why cored stats are cached under their
   own key and pinned by their own goldens. *)
let core_triggers (result : Chase.result) =
  let c = Chase.Core_solution.core result.Chase.solution in
  if Instance.equal c result.Chase.solution then result.Chase.triggers
  else
    List.filter_map
      (fun (tr : Chase.Trigger.t) ->
        match List.filter (fun t -> Instance.mem t c) tr.Chase.Trigger.tuples with
        | [] -> None
        | tuples -> Some { tr with Chase.Trigger.tuples })
      result.Chase.triggers

let stats_of_result ?semantics ?(core = false) ~j ~index tgd result =
  let triggers =
    if core then core_triggers result else result.Chase.triggers
  in
  stats_of_triggers ?semantics ~j ~index tgd triggers

let analyze ?semantics ?(core = false) ~source ~j tgds =
  (* the columnar chase is bit-identical to the row-major one; only a
     mixed-arity relation (expressible row-major, not columnar) falls back *)
  let chase =
    match Columnar.of_instance source with
    | col -> fun tgd -> Chase.run_columnar col [ tgd ]
    | exception Invalid_argument _ ->
      let source_index = Logic.Cq.Index.build source in
      fun tgd -> Chase.run ~index:source_index source [ tgd ]
  in
  let stats_of index tgd =
    stats_of_result ?semantics ~core ~j ~index tgd (chase tgd)
  in
  Array.of_list (List.mapi stats_of tgds)

let explains stats t =
  List.fold_left (fun acc s -> Frac.max acc (covers s t)) Frac.zero stats

let uncovered_targets stats j =
  Instance.fold
    (fun t acc ->
      let covered =
        Array.exists (fun s -> not (Frac.is_zero (covers s t))) stats
      in
      if covered then acc else Tuple.Set.add t acc)
    j Tuple.Set.empty
