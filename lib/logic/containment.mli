(** Containment of conjunctive queries (Chandra–Merlin).

    [q ⊆ q'] — every database's answers to [q] are answers to [q'] — holds
    iff there is a homomorphism from [q'] to [q] that fixes the
    distinguished (output) variables. The test freezes [q]'s variables,
    turning its atoms into a canonical instance, and looks for a match of
    [q'] in it. Variables are frozen into labeled nulls with negative labels
    — a namespace disjoint from every constant a query or instance can
    mention and from every chase-invented null — so the test is sound for
    arbitrary data, including constants that look like frozen variables. *)

val contained_in :
  ?distinguished : String_set.t -> Atom.t list -> Atom.t list -> bool
(** [contained_in ~distinguished q q'] is [true] iff [q ⊆ q'] as queries
    with the given output variables (default: none, i.e. boolean queries).
    Variables of [q'] not shared with [distinguished] are matched freely. *)

val equivalent :
  ?distinguished : String_set.t -> Atom.t list -> Atom.t list -> bool

val minimize : ?distinguished : String_set.t -> Atom.t list -> Atom.t list
(** The core of the query: greedily removes atoms whose removal keeps the
    query equivalent (the result is a minimal equivalent subquery —
    unique up to isomorphism by Chandra–Merlin). Atoms containing
    distinguished variables are kept whenever their removal would unbind
    one. *)
