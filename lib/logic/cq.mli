(** Evaluation of conjunctive queries (conjunctions of atoms) over instances.

    The evaluator computes all substitutions of the query's variables under
    which every atom is a tuple of the instance, i.e. all homomorphisms from
    the canonical instance of the query into the database. Atoms are joined
    left-to-right after a greedy reordering that prefers atoms with the most
    already-bound variables (and, as a tie-break, the smallest relation), a
    standard heuristic that keeps intermediate results small. *)

val answers : Relational.Instance.t -> Atom.t list -> Subst.t list
(** All satisfying substitutions, each binding exactly the variables of the
    query. The empty query has the single answer [Subst.empty]. *)

val answers_seq : Relational.Instance.t -> Atom.t list -> Subst.t Seq.t
(** Lazy variant of {!answers}; substitutions are produced on demand. *)

val holds : Relational.Instance.t -> Atom.t list -> bool
(** [true] iff the query has at least one answer. *)

val extensions :
  Relational.Instance.t -> Subst.t -> Atom.t list -> Subst.t list
(** [extensions inst s atoms] lists all extensions of the partial
    substitution [s] satisfying [atoms]. [answers inst q] is
    [extensions inst Subst.empty q]. *)

val order_atoms : Atom.t list -> Atom.t list
(** The join order the evaluator would use, exposed for testing. *)

(** Hash indexes over an instance, for repeated evaluation.

    The plain evaluator scans a whole relation per atom; an index maps
    [(relation, position, value)] to the matching tuples, so atoms with at
    least one bound position (a constant or an already-bound variable) probe
    only candidates. Build once per instance and reuse across queries — the
    chase does this for every tgd body it fires over the same source. *)
module Index : sig
  type t

  val build : Relational.Instance.t -> t

  val instance : t -> Relational.Instance.t
end

val answers_indexed : Index.t -> Atom.t list -> Subst.t list
(** Same results as {!answers} on the indexed instance. *)

val extensions_indexed : Index.t -> Subst.t -> Atom.t list -> Subst.t list

(** Columnar evaluation over a {!Relational.Columnar.t}.

    Joins compare dictionary codes (machine ints) and probe per-column hash
    indexes; atoms with two or more constant positions are pre-filtered by a
    bitset semi-join computed once per query. The enumeration order is the
    row-major indexed order exactly, so after decoding, the answer {e list}
    (not just the answer set) is identical to {!answers_indexed} on the
    corresponding row-major instance — the [columnar-identity] fuzz family
    holds every run to that. *)
module Columnar : sig
  val answers : Relational.Columnar.t -> Atom.t list -> Subst.t list

  val extensions :
    Relational.Columnar.t -> Subst.t -> Atom.t list -> Subst.t list
end
