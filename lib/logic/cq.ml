open Relational

(* Greedy join ordering: repeatedly pick the atom sharing the most variables
   with those already placed; break ties towards atoms with fewer distinct
   variables (more selective). *)
let order_atoms atoms =
  let rec pick placed_vars remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ :: _ ->
      let score a =
        let vs = Atom.vars a in
        let bound = String_set.cardinal (String_set.inter vs placed_vars) in
        let free = String_set.cardinal vs - bound in
        (bound, -free)
      in
      let best =
        List.fold_left
          (fun best a ->
            match best with
            | None -> Some a
            | Some b -> if score a > score b then Some a else best)
          None remaining
      in
      (match best with
      | None -> List.rev acc
      | Some a ->
        let remaining = List.filter (fun x -> x != a) remaining in
        pick (String_set.union placed_vars (Atom.vars a)) remaining (a :: acc))
  in
  pick String_set.empty atoms []

(* Match one atom against one tuple under a substitution. *)
let match_atom s (a : Atom.t) (tu : Tuple.t) =
  let n = Array.length a.args in
  if n <> Array.length tu.Tuple.values then None
  else
    let rec loop i s =
      if i >= n then Some s
      else
        match a.args.(i), tu.Tuple.values.(i) with
        | Term.Cst c, v ->
          if Value.equal (Value.Const c) v then loop (i + 1) s else None
        | Term.Var x, v -> (
          match Subst.bind x v s with
          | None -> None
          | Some s -> loop (i + 1) s)
    in
    loop 0 s

let extensions_ordered inst s atoms =
  let rec eval s atoms acc =
    match atoms with
    | [] -> s :: acc
    | a :: tl ->
      Tuple.Set.fold
        (fun tu acc ->
          match match_atom s a tu with
          | None -> acc
          | Some s' -> eval s' tl acc)
        (Instance.tuples_of inst a.Atom.rel)
        acc
  in
  List.rev (eval s atoms [])

let extensions inst s atoms = extensions_ordered inst s (order_atoms atoms)

let answers inst atoms = extensions inst Subst.empty atoms

let answers_seq inst atoms = List.to_seq (answers inst atoms)

module Index = struct
  type t = {
    inst : Instance.t;
    table : (string * int * Value.t, Tuple.t list) Hashtbl.t;
  }

  let build inst =
    let table = Hashtbl.create 256 in
    Instance.iter
      (fun tu ->
        Array.iteri
          (fun pos v ->
            let key = (tu.Tuple.rel, pos, v) in
            let prev = Option.value ~default:[] (Hashtbl.find_opt table key) in
            Hashtbl.replace table key (tu :: prev))
          tu.Tuple.values)
      inst;
    { inst; table }

  let instance t = t.inst

  (* Candidate tuples for an atom under a substitution: probe the first
     bound position, or fall back to the full relation. *)
  let candidates t s (a : Atom.t) =
    let rec first_bound i =
      if i >= Array.length a.Atom.args then None
      else
        match Subst.apply_term s a.Atom.args.(i) with
        | Some v -> Some (i, v)
        | None -> first_bound (i + 1)
    in
    match first_bound 0 with
    | Some (pos, v) ->
      Option.value ~default:[] (Hashtbl.find_opt t.table (a.Atom.rel, pos, v))
    | None -> Tuple.Set.elements (Instance.tuples_of t.inst a.Atom.rel)
end

let extensions_indexed index s atoms =
  let ordered = order_atoms atoms in
  let rec eval s atoms acc =
    match atoms with
    | [] -> s :: acc
    | a :: tl ->
      List.fold_left
        (fun acc tu ->
          match match_atom s a tu with
          | None -> acc
          | Some s' -> eval s' tl acc)
        acc (Index.candidates index s a)
  in
  List.rev (eval s ordered [])

let answers_indexed index atoms = extensions_indexed index Subst.empty atoms

(* Columnar evaluation: index-nested-loop joins over dictionary codes.

   The enumeration replicates [extensions_indexed] exactly — same greedy
   atom order, same first-bound-position probe (constants always count as
   bound), same candidate order (posting lists descending, full scans
   ascending, matching the row-major bucket and [Tuple.Set] orders) — so
   the answer list is byte-identical after dictionary decode. The columnar
   win is that all joins compare machine ints, and atoms with several
   constant positions are pre-filtered by one bitset semi-join computed
   once per query instead of per candidate row. *)
module Columnar = struct
  module Store = Relational.Columnar
  module Env = Map.Make (String)

  type slot =
    | K of int  (* constant code; -1 when the constant is not in the dict *)
    | V of string

  type catom = {
    slots : slot array;
    tbl : Store.table option;  (* None: unmatchable (missing/arity/constant) *)
    mask : Util.Bitset.t option;  (* semi-join over the constant positions *)
  }

  let compile store (a : Atom.t) =
    let dict = Store.dict store in
    let slots =
      Array.map
        (function
          | Term.Cst c -> (
            match Dict.find_opt dict (Value.Const c) with
            | Some k -> K k
            | None -> K (-1))
          | Term.Var x -> V x)
        a.Atom.args
    in
    let unmatchable =
      Array.exists (function K k -> k < 0 | V _ -> false) slots
    in
    let tbl =
      match Store.table store a.Atom.rel with
      | Some t when (not unmatchable) && t.Store.arity = Array.length slots ->
        Some t
      | _ -> None
    in
    let mask =
      match tbl with
      | None -> None
      | Some t -> (
        let ks = ref [] in
        Array.iteri
          (fun pos -> function K k -> ks := (pos, k) :: !ks | V _ -> ())
          slots;
        match !ks with
        | (p0, k0) :: ((_ :: _) as rest) ->
          let m = Column.mask_of t.Store.columns.(p0) k0 in
          List.iter
            (fun (p, k) ->
              Util.Bitset.inter_into m (Column.mask_of t.Store.columns.(p) k))
            rest;
          Some m
        | [] | [ _ ] -> None)
    in
    { slots; tbl; mask }

  let first_bound slots env =
    let n = Array.length slots in
    let rec go i =
      if i >= n then None
      else
        match slots.(i) with
        | K k -> Some (i, k)
        | V x -> (
          match Env.find_opt x env with
          | Some k -> Some (i, k)
          | None -> go (i + 1))
    in
    go 0

  let match_row (tbl : Store.table) slots env row =
    let n = Array.length slots in
    let rec loop i env =
      if i >= n then Some env
      else
        let cell = Column.get tbl.Store.columns.(i) row in
        match slots.(i) with
        | K k -> if k = cell then loop (i + 1) env else None
        | V x -> (
          match Env.find_opt x env with
          | Some k -> if k = cell then loop (i + 1) env else None
          | None -> loop (i + 1) (Env.add x cell env))
    in
    loop 0 env

  let extensions store s atoms =
    let ordered = order_atoms atoms in
    let dict = Store.dict store in
    let qvars =
      List.fold_left
        (fun acc a -> String_set.union acc (Atom.vars a))
        String_set.empty ordered
    in
    (* a seed binding outside the dictionary can never match a cell; code
       -1 makes the probe come back empty, like the row-major bucket miss *)
    let env0 =
      List.fold_left
        (fun env (x, v) ->
          if not (String_set.mem x qvars) then env
          else
            Env.add x
              (match Dict.find_opt dict v with Some k -> k | None -> -1)
              env)
        Env.empty (Subst.bindings s)
    in
    let compiled = List.map (compile store) ordered in
    let subst_of env =
      Env.fold
        (fun x code acc ->
          if Subst.mem x acc then acc
          else Subst.bind_exn x (Dict.decode dict code) acc)
        env s
    in
    let rec eval env atoms acc =
      match atoms with
      | [] -> subst_of env :: acc
      | ca :: tl -> (
        match ca.tbl with
        | None -> acc
        | Some tbl ->
          let consider acc row =
            if
              match ca.mask with
              | None -> true
              | Some m -> Util.Bitset.get m row
            then
              match match_row tbl ca.slots env row with
              | None -> acc
              | Some env' -> eval env' tl acc
            else acc
          in
          (match first_bound ca.slots env with
          | Some (pos, k) ->
            List.fold_left consider acc
              (Column.rows_with tbl.Store.columns.(pos) k)
          | None ->
            let acc = ref acc in
            for row = 0 to tbl.Store.nrows - 1 do
              acc := consider !acc row
            done;
            !acc))
    in
    List.rev (eval env0 compiled [])

  let answers store atoms = extensions store Subst.empty atoms
end

let holds inst atoms =
  let ordered = order_atoms atoms in
  let rec eval s = function
    | [] -> true
    | a :: tl ->
      Tuple.Set.exists
        (fun tu ->
          match match_atom s a tu with None -> false | Some s' -> eval s' tl)
        (Instance.tuples_of inst a.Atom.rel)
  in
  eval Subst.empty ordered
