open Relational

module Smap = Map.Make (String)

let vars_of atoms =
  List.fold_left (fun acc a -> String_set.union acc (Atom.vars a)) String_set.empty atoms

(* Freeze variables into labeled nulls with negative labels. Nulls live in a
   namespace no query can name — [Term.Cst c] only ever matches
   [Value.Const c] — so the canonical instance cannot conflate a frozen
   variable with a data constant. (The previous encoding froze [v] into the
   ordinary constant ["__frz_" ^ v]; any query or instance that mentioned a
   real constant with that prefix made the test silently unsound.) Negative
   labels additionally keep frozen values disjoint from chase-invented nulls,
   which are labeled from 0 upward. *)
let freeze_map vars =
  String_set.elements vars
  |> List.mapi (fun i v -> (v, Value.Null (-i - 1)))
  |> List.to_seq |> Smap.of_seq

let freeze fm atoms =
  List.map
    (fun (a : Atom.t) ->
      let values =
        Array.map
          (function Term.Var v -> Smap.find v fm | Term.Cst c -> Value.Const c)
          a.Atom.args
      in
      { Tuple.rel = a.Atom.rel; values })
    atoms

let contained_in ?(distinguished = String_set.empty) q q' =
  let fm = freeze_map (String_set.union (vars_of q) distinguished) in
  let canonical = Instance.of_tuples (freeze fm q) in
  let pinned =
    String_set.fold
      (fun v acc -> Subst.bind_exn v (Smap.find v fm) acc)
      distinguished Subst.empty
  in
  Cq.extensions canonical pinned q' <> []

let equivalent ?distinguished q q' =
  contained_in ?distinguished q q' && contained_in ?distinguished q' q

let remove_at i l = List.filteri (fun j _ -> j <> i) l

let minimize ?(distinguished = String_set.empty) atoms =
  (* Positional removal: dropping the atom at index [i] removes exactly one
     occurrence, so a body containing the same atom twice (even the same
     physical atom) shrinks one step at a time. *)
  let removable kept rest =
    rest <> []
    && String_set.subset
         (String_set.inter distinguished (vars_of kept))
         (vars_of rest)
    && equivalent ~distinguished rest kept
  in
  let rec shrink kept =
    let n = List.length kept in
    let rec try_at i =
      if i >= n then kept
      else
        let rest = remove_at i kept in
        if removable kept rest then shrink rest else try_at (i + 1)
    in
    try_at 0
  in
  shrink atoms
