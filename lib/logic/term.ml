type t =
  | Var of string
  | Cst of string

let compare a b =
  match a, b with
  | Var x, Var y -> String.compare x y
  | Cst x, Cst y -> String.compare x y
  | Var _, Cst _ -> -1
  | Cst _, Var _ -> 1

let equal a b = compare a b = 0

let is_var = function Var _ -> true | Cst _ -> false

let var_name = function Var v -> Some v | Cst _ -> None

(* The textual grammar (Serialize.Parser) reads a bare identifier with a
   leading lowercase letter, digit or '-' as a constant and anything else
   as a variable, so a constant spelled otherwise must be quoted to survive
   a print/parse round trip. *)
let ident_char ch =
  (ch >= 'a' && ch <= 'z')
  || (ch >= 'A' && ch <= 'Z')
  || (ch >= '0' && ch <= '9')
  || ch = '_' || ch = '-'

let constant_needs_quoting c =
  match c with
  | "" -> true
  | _ -> (
    match c.[0] with
    | 'a' .. 'z' | '0' .. '9' | '-' -> not (String.for_all ident_char c)
    | _ -> true)

let pp ppf = function
  | Var v -> Format.pp_print_string ppf v
  | Cst c ->
    if constant_needs_quoting c then Format.fprintf ppf "%S" c
    else Format.pp_print_string ppf c

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
