(** Terms of tgd formulas: variables or constants.

    Labeled nulls never appear in formulas — only in instances — so a formula
    constant is a plain string. *)

type t =
  | Var of string  (** a first-order variable *)
  | Cst of string  (** a constant *)

val compare : t -> t -> int

val equal : t -> t -> bool

val is_var : t -> bool

val var_name : t -> string option

val pp : Format.formatter -> t -> unit
(** Variables print as written. A constant prints verbatim when the textual
    grammar would read it back as a constant (leading lowercase letter,
    digit or ['-'], identifier characters throughout), and double-quoted
    otherwise — so a constant that spells like a variable (e.g. one starting
    with ['_']) still round-trips through {!Serialize}. *)

module Set : Set.S with type elt = t

module Map : Map.S with type key = t
