(** Shared command-line plumbing for the repo's binaries.

    Every binary used to hand-roll its own [--jobs], [--seed] and tracing
    flags; this module is the single copy. The flags are parsed, validated
    and documented identically everywhere:

    - [--jobs]/[-j] (and the [PARALLEL_JOBS] environment variable) size the
      {!Parallel.Pool}; results are identical for every value, 1 disables
      parallelism. Non-positive values exit with status 2.
    - [--seed] is the deterministic root seed of whatever the binary
      generates.
    - [--trace] prints a human telemetry report (span tree, span/counter
      aggregates) to stderr at exit; [--trace-out FILE] streams JSON-lines
      telemetry to [FILE] (combinable with [--trace]). Either flag enables
      the {!Telemetry} layer; neither changes any result.

    Validation failures exit with status 2, matching [scenario_gen]'s
    config validation. *)

val die : ('a, unit, string, 'b) format4 -> 'a
(** Prints the message to stderr and exits with status 2 — the shared
    usage-error convention. *)

val jobs : int option Cmdliner.Term.t
(** [--jobs]/[-j N]; [None] when omitted. Resolve with {!resolve_jobs}. *)

val resolve_jobs : int option -> int
(** The effective worker count: the flag when given (exit 2 unless
    [>= 1]), else [PARALLEL_JOBS] (exit 2 when set but invalid), else
    [Domain.recommended_domain_count ()]. *)

val seed : default:int -> doc:string -> int Cmdliner.Term.t
(** [--seed N] with the binary's default. *)

val cache : string option Cmdliner.Term.t
(** [--cache DIR] (or [--cache mem]); [None] when omitted. Resolve with
    {!resolve_cache}. *)

val resolve_cache : string option -> Cache.t option
(** The effective evaluation cache: the flag's spelling when given, else
    the [CACHE_DIR] environment variable ({!Cache.of_spec} either way —
    [""] disables, ["mem"] is in-memory, anything else directory-backed).
    Purely an optimisation: results are bit-identical with and without. *)

val socket : string option Cmdliner.Term.t
(** [--socket PATH]: a Unix-domain socket endpoint, for the serving
    daemon and its replay harness. Mutually exclusive with {!port};
    enforce with {!resolve_endpoint}. *)

val port : int option Cmdliner.Term.t
(** [--port N]: a TCP endpoint on 127.0.0.1. *)

type endpoint =
  | Unix_socket of string
  | Tcp of string * int

val resolve_endpoint :
  socket:string option -> port:int option -> endpoint
(** The effective endpoint: exactly one of the two flags must be given
    (TCP ports must be within [1, 65535]); anything else exits with
    status 2. *)

val deadline_ms : float option Cmdliner.Term.t
(** [--deadline-ms MS]: per-request deadline. Non-positive values exit
    with status 2 via {!resolve_deadline}. *)

val resolve_deadline : float option -> float option

val install_signal_flush : ?cache:Cache.t -> unit -> unit
(** Installs SIGTERM/SIGINT handlers that end the process through [exit]
    (status 143/130) instead of the default immediate kill, after
    {!Cache.sync}ing [cache]. Because [exit] runs the [at_exit] chain,
    the telemetry sinks installed by {!install_trace} (or the [TELEMETRY]
    hook) are flushed too — a campaign or serving process killed
    mid-stream never truncates its JSONL trace or strands its disk-tier
    cache. Long-running binaries call this once at startup; the serving
    daemon installs its own handlers (graceful drain) instead. *)

type trace = {
  trace : bool;  (** [--trace]: human report to stderr at exit *)
  trace_out : string option;  (** [--trace-out FILE]: JSONL stream *)
}

val trace : trace Cmdliner.Term.t
(** The two tracing flags, as one term. *)

val install_trace : trace -> unit
(** Enables and wires the {!Telemetry} sinks per the flags (a no-op when
    both are off), registering a single at-exit flush. Exit 2 when the
    [--trace-out] file cannot be opened. *)
