open Cmdliner

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline s;
      exit 2)
    fmt

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel phases (default: the \
           $(b,PARALLEL_JOBS) environment variable, else the recommended \
           domain count). Results are identical for every N; 1 disables \
           parallelism.")

let resolve_jobs = function
  | Some j when j >= 1 -> j
  | Some j -> die "--jobs must be a positive integer, got %d" j
  | None -> (
    try Parallel.Pool.default_jobs ()
    with Invalid_argument msg -> die "%s" msg)

let seed ~default ~doc =
  Arg.(value & opt int default & info [ "seed" ] ~doc)

let cache =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Content-addressed evaluation cache: memoizes per-candidate chase \
           statistics and solver selections. $(docv) is a directory for the \
           persistent tier, or $(b,mem) for in-memory only. Default: the \
           $(b,CACHE_DIR) environment variable (same spellings; empty or \
           unset disables). Results are bit-identical with and without the \
           cache.")

let resolve_cache = function
  | None -> Cache.default ()
  | Some spec -> Cache.of_spec spec

type trace = {
  trace : bool;
  trace_out : string option;
}

let trace =
  let trace_flag =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Print a telemetry report (span tree, span/counter aggregates) \
             to stderr at exit. Observability only: results are identical \
             with and without tracing.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Stream telemetry as JSON lines to $(docv): one object per \
             span as it closes, plus counter/gauge/histogram/span \
             aggregates at exit. Combinable with $(b,--trace).")
  in
  Term.(
    const (fun trace trace_out -> { trace; trace_out }) $ trace_flag $ trace_out)

let install_trace { trace; trace_out } =
  (match trace_out with
  | None -> ()
  | Some path -> (
    match open_out path with
    | oc -> Telemetry.set_jsonl (Some oc)
    | exception Sys_error msg -> die "--trace-out: %s" msg));
  if trace then Telemetry.set_human (Some stderr);
  if trace || trace_out <> None then begin
    Telemetry.set_enabled true;
    Telemetry.flush_at_exit ()
  end
