open Cmdliner

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline s;
      exit 2)
    fmt

let jobs =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel phases (default: the \
           $(b,PARALLEL_JOBS) environment variable, else the recommended \
           domain count). Results are identical for every N; 1 disables \
           parallelism.")

let resolve_jobs = function
  | Some j when j >= 1 -> j
  | Some j -> die "--jobs must be a positive integer, got %d" j
  | None -> (
    try Parallel.Pool.default_jobs ()
    with Invalid_argument msg -> die "%s" msg)

let seed ~default ~doc =
  Arg.(value & opt int default & info [ "seed" ] ~doc)

let cache =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Content-addressed evaluation cache: memoizes per-candidate chase \
           statistics and solver selections. $(docv) is a directory for the \
           persistent tier, or $(b,mem) for in-memory only. Default: the \
           $(b,CACHE_DIR) environment variable (same spellings; empty or \
           unset disables). Results are bit-identical with and without the \
           cache.")

let resolve_cache = function
  | None -> Cache.default ()
  | Some spec -> Cache.of_spec spec

let socket =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket of the mapping-selection daemon (serve: bind \
           and listen; replay: connect). Exactly one of $(b,--socket) and \
           $(b,--port) must be given.")

let port =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"N"
        ~doc:"TCP port of the daemon, on 127.0.0.1.")

type endpoint =
  | Unix_socket of string
  | Tcp of string * int

let resolve_endpoint ~socket ~port =
  match socket, port with
  | Some path, None -> Unix_socket path
  | None, Some p when p >= 1 && p <= 65535 -> Tcp ("127.0.0.1", p)
  | None, Some p -> die "--port must be within [1, 65535], got %d" p
  | Some _, Some _ -> die "--socket and --port are mutually exclusive"
  | None, None -> die "an endpoint is required: --socket PATH or --port N"

let deadline_ms =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-request deadline: requests still queued after $(docv) \
           milliseconds are answered with a typed deadline error instead \
           of being solved. Unset means no deadline.")

let resolve_deadline = function
  | None -> None
  | Some ms when ms > 0. -> Some ms
  | Some ms -> die "--deadline-ms must be positive, got %g" ms

let install_signal_flush ?cache () =
  let graceful status (_ : int) =
    Option.iter Cache.sync cache;
    (* [exit] runs the at_exit chain, which holds the telemetry flush when
       tracing is on — the handler itself never writes to the sinks *)
    exit status
  in
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle (graceful 143))
   with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigint (Sys.Signal_handle (graceful 130))
  with Invalid_argument _ | Sys_error _ -> ()

type trace = {
  trace : bool;
  trace_out : string option;
}

let trace =
  let trace_flag =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Print a telemetry report (span tree, span/counter aggregates) \
             to stderr at exit. Observability only: results are identical \
             with and without tracing.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Stream telemetry as JSON lines to $(docv): one object per \
             span as it closes, plus counter/gauge/histogram/span \
             aggregates at exit. Combinable with $(b,--trace).")
  in
  Term.(
    const (fun trace trace_out -> { trace; trace_out }) $ trace_flag $ trace_out)

let install_trace { trace; trace_out } =
  (match trace_out with
  | None -> ()
  | Some path -> (
    match open_out path with
    | oc -> Telemetry.set_jsonl (Some oc)
    | exception Sys_error msg -> die "--trace-out: %s" msg));
  if trace then Telemetry.set_human (Some stderr);
  if trace || trace_out <> None then begin
    Telemetry.set_enabled true;
    Telemetry.flush_at_exit ()
  end
