(** A hand-crafted deterministic two-hop chain (S -> T -> U) for the
    mapping-algebra workload: project staffing restructured twice by
    independently designed mappings. The end-to-end candidate pool is the
    algebraic composition of the per-hop pools ({!Algebra.compose_all} in
    consumers — this module stays algebra-free so the scenario zoo keeps
    its small dependency cone).

    Observed instances are grounded chases of each hop's input under the
    hop's ground truth, so the chain is clean: the composed ground truth
    explains the final instance exactly, and the noise twins ([t1x],
    [u1x]) are pure errors. *)

val description : string

val initial : Relational.Instance.t
(** The source instance of hop 1 ([proj] tuples). *)

val hops : (Logic.Tgd.t list * Relational.Instance.t) list
(** Per hop: its candidate pool (ground truth then noise twins) and its
    observed instance. *)

val pools : Logic.Tgd.t list list
(** The candidate pools alone, hop order. *)

val truth_pools : Logic.Tgd.t list list
(** The per-hop ground truths, hop order. *)

val mid : Relational.Instance.t
(** Hop 1's observed instance (the intermediate schema T). *)

val final : Relational.Instance.t
(** Hop 2's observed instance: the selection target of the composed
    problem. *)
