(* A hand-crafted two-hop chain continuing the appendix example: project
   staffing flows S -> T -> U through two independently designed mappings,
   and the end-to-end mapping is their algebraic composition. Everything is
   deterministic and human-readable, which makes it the demo workload for
   cmd_select --scenario pipeline and the expect suite's composed goldens. *)

open Relational
open Logic

let description =
  "two-hop project staffing: proj -> task/staff -> report/person; the \
   end-to-end candidates are the composition of the per-hop pools"

let tgd label body head = Tgd.make ~label ~body ~head ()

let atom rel vars = Atom.make rel (List.map (fun v -> Term.Var v) vars)

(* hop 1: S (proj) -> T (task, staff) *)

let hop1_truth =
  [
    tgd "t1" [ atom "proj" [ "P"; "E" ] ] [ atom "task" [ "P"; "E" ] ];
    tgd "t2" [ atom "proj" [ "P"; "E" ] ] [ atom "staff" [ "E" ] ];
  ]

let hop1_pool =
  hop1_truth
  @ [ (* a plausible but wrong twin: the projection swapped *)
      tgd "t1x" [ atom "proj" [ "P"; "E" ] ] [ atom "task" [ "E"; "P" ] ];
    ]

(* hop 2: T -> U (report, person) *)

let hop2_truth =
  [
    tgd "u1"
      [ atom "task" [ "P"; "E" ]; atom "staff" [ "E" ] ]
      [ atom "report" [ "P"; "E" ] ];
    tgd "u2" [ atom "staff" [ "E" ] ] [ atom "person" [ "E" ] ];
  ]

let hop2_pool =
  hop2_truth
  @ [
      tgd "u1x" [ atom "task" [ "P"; "E" ] ] [ atom "report" [ "E"; "P" ] ];
    ]

let initial =
  Instance.of_tuples
    [
      Tuple.of_consts "proj" [ "BigData"; "Bob" ];
      Tuple.of_consts "proj" [ "ML"; "Alice" ];
      Tuple.of_consts "proj" [ "Web"; "Carol" ];
    ]

(* observed instances: the grounded chase of each hop's input under the hop's
   ground truth — clean by construction, so the composed truth explains the
   final instance exactly *)

let mid = Zoo.ground_chase initial hop1_truth

let final = Zoo.ground_chase mid hop2_truth

let hops = [ (hop1_pool, mid); (hop2_pool, final) ]

let pools = List.map fst hops

let truth_pools = [ hop1_truth; hop2_truth ]
