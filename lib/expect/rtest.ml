type scenario =
  | Inline of string list
  | File of string

type expectation =
  | Objective of Util.Frac.t
  | Selected of string list
  | Value of Util.Frac.t * string list
  | Counter of string * int

type flag =
  | Expect_failure of string
  | Broken of string
  | Skip of string

type test = {
  name : string;
  scenario : scenario;
  solvers : string list;
  seed : int option;
  weights : (int * int * int) option;
  cache : bool;
  core : bool;
  compose : bool;
  expects : expectation list;
  flag : flag option;
}

type file = test list

let equal_expectation a b =
  match (a, b) with
  | Objective x, Objective y -> Util.Frac.equal x y
  | Selected xs, Selected ys -> List.equal String.equal xs ys
  | Value (x, xs), Value (y, ys) ->
    Util.Frac.equal x y && List.equal String.equal xs ys
  | Counter (n, c), Counter (m, d) -> String.equal n m && c = d
  | (Objective _ | Selected _ | Value _ | Counter _), _ -> false

let equal_test a b =
  String.equal a.name b.name
  && a.scenario = b.scenario
  && List.equal String.equal a.solvers b.solvers
  && a.seed = b.seed
  && a.weights = b.weights
  && a.cache = b.cache
  && a.core = b.core
  && a.compose = b.compose
  && List.equal equal_expectation a.expects b.expects
  && a.flag = b.flag

let equal_file = List.equal equal_test

(* --- lexing -------------------------------------------------------------- *)

exception Fail of int * string

let failf ln fmt = Printf.ksprintf (fun m -> raise (Fail (ln, m))) fmt

let is_space c = c = ' ' || c = '\t'

(* Tokens of one directive line: bare words (no whitespace, no quotes) and
   double-quoted strings with backslash escapes for quote, backslash,
   newline, carriage return and tab. *)
let tokens ln line =
  let n = String.length line in
  let rec skip i = if i < n && is_space line.[i] then skip (i + 1) else i in
  let rec go acc i =
    let i = skip i in
    if i >= n then List.rev acc
    else if line.[i] = '"' then begin
      let buf = Buffer.create 16 in
      let rec str j =
        if j >= n then failf ln "unterminated quoted string"
        else
          match line.[j] with
          | '"' -> j + 1
          | '\\' ->
            if j + 1 >= n then failf ln "unterminated escape"
            else begin
              (match line.[j + 1] with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | c -> failf ln "bad escape \\%c" c);
              str (j + 2)
            end
          | c ->
            Buffer.add_char buf c;
            str (j + 1)
      in
      let j = str (i + 1) in
      if j < n && not (is_space line.[j]) then
        failf ln "quoted token must be followed by whitespace";
      go (Buffer.contents buf :: acc) j
    end
    else begin
      let j = ref i in
      while !j < n && (not (is_space line.[!j])) && line.[!j] <> '"' do
        incr j
      done;
      if !j < n && line.[!j] = '"' then
        failf ln "unexpected '\"' inside a bare token";
      go (String.sub line i (!j - i) :: acc) !j
    end
  in
  go [] 0

(* A flag's reason: the rest of the line, either one quoted string (nothing
   but whitespace may follow it) or the raw remainder, trimmed. *)
let reason_of_rest ln rest =
  let rest =
    let i = ref 0 in
    while !i < String.length rest && is_space rest.[!i] do
      incr i
    done;
    String.sub rest !i (String.length rest - !i)
  in
  let r =
    if String.length rest > 0 && rest.[0] = '"' then
      match tokens ln rest with
      | [ r ] -> r
      | _ -> failf ln "a quoted reason must be the rest of the line"
    else begin
      let j = ref (String.length rest) in
      while !j > 0 && is_space rest.[!j - 1] do
        decr j
      done;
      String.sub rest 0 !j
    end
  in
  if r = "" then failf ln "a reason string is mandatory";
  r

let int_of_token ln what tok =
  match int_of_string_opt tok with
  | Some n -> n
  | None -> failf ln "%s: expected an integer, found '%s'" what tok

let frac_of_token ln tok =
  let bad () = failf ln "bad fraction literal '%s' (expected N or N/D)" tok in
  match String.index_opt tok '/' with
  | None -> (
    match int_of_string_opt tok with
    | Some n -> Util.Frac.of_int n
    | None -> bad ())
  | Some i -> (
    let num = String.sub tok 0 i in
    let den = String.sub tok (i + 1) (String.length tok - i - 1) in
    match (int_of_string_opt num, int_of_string_opt den) with
    | Some n, Some d -> (
      match Util.Frac.make n d with
      | f -> f
      | exception Invalid_argument _ -> failf ln "zero denominator in '%s'" tok
      | exception Util.Frac.Overflow ->
        failf ln "fraction '%s' overflows native integers" tok)
    | _ -> bad ())

(* --- parsing ------------------------------------------------------------- *)

type builder = {
  b_name : string;
  b_line : int;  (** the [test] line, for end-of-block errors *)
  mutable b_scenario : scenario option;
  mutable b_solvers : string list option;
  mutable b_seed : int option;
  mutable b_weights : (int * int * int) option;
  mutable b_cache : bool;
  mutable b_core : bool;
  mutable b_compose : bool;
  mutable b_expects : expectation list;  (** reversed *)
  mutable b_flag : flag option;
}

let finish b =
  let scenario =
    match b.b_scenario with
    | Some s -> s
    | None -> failf b.b_line "test '%s' has no scenario" b.b_name
  in
  let solvers = Option.value b.b_solvers ~default:[] in
  let expects = List.rev b.b_expects in
  if solvers = [] then
    List.iter
      (fun e ->
        match e with
        | Objective _ | Selected _ | Counter _ ->
          failf b.b_line
            "test '%s': objective/selected/counter expectations need a \
             'solver' directive"
            b.b_name
        | Value _ -> ())
      expects;
  {
    name = b.b_name;
    scenario;
    solvers;
    seed = b.b_seed;
    weights = b.b_weights;
    cache = b.b_cache;
    core = b.b_core;
    compose = b.b_compose;
    expects;
    flag = b.b_flag;
  }

let first_word line =
  let n = String.length line in
  let rec skip i = if i < n && is_space line.[i] then skip (i + 1) else i in
  let i = skip 0 in
  let j = ref i in
  while !j < n && not (is_space line.[!j]) do
    incr j
  done;
  (String.sub line i (!j - i), String.sub line !j (n - !j))

let parse text =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let n = Array.length lines in
  let tests = ref [] in
  let current = ref None in
  let seen = Hashtbl.create 16 in
  let close () =
    match !current with
    | None -> ()
    | Some b ->
      tests := finish b :: !tests;
      current := None
  in
  let need ln what =
    match !current with
    | Some b -> b
    | None -> failf ln "'%s' before any 'test' line" what
  in
  let set_once ln what get set =
    let b = need ln what in
    if get b then failf ln "duplicate '%s' directive" what else set b
  in
  let i = ref 0 in
  (try
     while !i < n do
       let ln = !i + 1 in
       let line = lines.(!i) in
       let kw, rest = first_word line in
       incr i;
       if kw = "" || kw.[0] = '#' then ()
       else
         match kw with
         | "test" -> (
           close ();
           match tokens ln rest with
           | [ name ] when name <> "" ->
             if Hashtbl.mem seen name then
               failf ln "duplicate test name '%s'" name;
             Hashtbl.add seen name ();
             current :=
               Some
                 {
                   b_name = name;
                   b_line = ln;
                   b_scenario = None;
                   b_solvers = None;
                   b_seed = None;
                   b_weights = None;
                   b_cache = false;
                   b_core = false;
                   b_compose = false;
                   b_expects = [];
                   b_flag = None;
                 }
           | _ -> failf ln "'test' takes exactly one nonempty name")
         | "solver" ->
           set_once ln "solver"
             (fun b -> b.b_solvers <> None)
             (fun b ->
               match tokens ln rest with
               | [ spec ] ->
                 let names = String.split_on_char ',' spec in
                 if List.exists (fun s -> s = "") names then
                   failf ln "empty solver name in '%s'" spec;
                 b.b_solvers <- Some names
               | _ -> failf ln "'solver' takes one comma-separated name list")
         | "seed" ->
           set_once ln "seed"
             (fun b -> b.b_seed <> None)
             (fun b ->
               match tokens ln rest with
               | [ s ] -> b.b_seed <- Some (int_of_token ln "seed" s)
               | _ -> failf ln "'seed' takes exactly one integer")
         | "weights" ->
           set_once ln "weights"
             (fun b -> b.b_weights <> None)
             (fun b ->
               match tokens ln rest with
               | [ w1; w2; w3 ] ->
                 b.b_weights <-
                   Some
                     ( int_of_token ln "weights" w1,
                       int_of_token ln "weights" w2,
                       int_of_token ln "weights" w3 )
               | _ -> failf ln "'weights' takes exactly three integers")
         | "cache" ->
           set_once ln "cache"
             (fun b -> b.b_cache)
             (fun b ->
               match tokens ln rest with
               | [ "on" ] -> b.b_cache <- true
               | _ -> failf ln "'cache' takes exactly 'on'")
         | "core" ->
           set_once ln "core"
             (fun b -> b.b_core)
             (fun b ->
               match tokens ln rest with
               | [ "on" ] -> b.b_core <- true
               | _ -> failf ln "'core' takes exactly 'on'")
         | "compose" ->
           set_once ln "compose"
             (fun b -> b.b_compose)
             (fun b ->
               match tokens ln rest with
               | [ "on" ] -> b.b_compose <- true
               | _ -> failf ln "'compose' takes exactly 'on'")
         | "scenario" ->
           set_once ln "scenario"
             (fun b -> b.b_scenario <> None)
             (fun b ->
               match tokens ln rest with
               | [ "file"; path ] when path <> "" ->
                 b.b_scenario <- Some (File path)
               | [ "inline" ] ->
                 if !i >= n || lines.(!i) <> "---" then
                   failf ln "'scenario inline' must be followed by '---'";
                 incr i;
                 let body = ref [] in
                 let closed = ref false in
                 while (not !closed) && !i < n do
                   if lines.(!i) = "---" then closed := true
                   else body := lines.(!i) :: !body;
                   incr i
                 done;
                 if not !closed then
                   failf ln "unterminated inline scenario (missing '---')";
                 b.b_scenario <- Some (Inline (List.rev !body))
               | _ -> failf ln "'scenario' takes 'file PATH' or 'inline'")
         | "expect" -> (
           let b = need ln "expect" in
           match tokens ln rest with
           | "objective" :: args -> (
             match args with
             | [ f ] -> b.b_expects <- Objective (frac_of_token ln f) :: b.b_expects
             | _ -> failf ln "'expect objective' takes exactly one fraction")
           | "selected" :: labels ->
             b.b_expects <- Selected labels :: b.b_expects
           | "value" :: args -> (
             match args with
             | f :: labels ->
               b.b_expects <- Value (frac_of_token ln f, labels) :: b.b_expects
             | [] -> failf ln "'expect value' takes a fraction then labels")
           | "counter" :: args -> (
             match args with
             | [ name; count ] when name <> "" ->
               b.b_expects <-
                 Counter (name, int_of_token ln "counter" count) :: b.b_expects
             | _ -> failf ln "'expect counter' takes a name and an integer")
           | kind :: _ -> failf ln "unknown expectation kind '%s'" kind
           | [] -> failf ln "'expect' needs a kind")
         | "expect_failure" | "broken" | "skip" ->
           let b = need ln kw in
           if b.b_flag <> None then
             failf ln "at most one of expect_failure/broken/skip per test";
           let r = reason_of_rest ln rest in
           b.b_flag <-
             Some
               (match kw with
               | "expect_failure" -> Expect_failure r
               | "broken" -> Broken r
               | _ -> Skip r)
         | "---" -> failf ln "'---' outside an inline scenario"
         | _ -> failf ln "unknown directive '%s'" kw
     done;
     close ()
   with Fail _ as e -> raise e);
  Ok (List.rev !tests)

let parse text =
  match parse text with
  | r -> r
  | exception Fail (ln, msg) -> Error (Printf.sprintf "line %d: %s" ln msg)

(* --- printing ------------------------------------------------------------ *)

let frac_to_string f =
  let num = Util.Frac.num f and den = Util.Frac.den f in
  if den = 1 then string_of_int num else Printf.sprintf "%d/%d" num den

let needs_quoting s =
  s = ""
  || s.[0] = '#'
  || String.exists
       (fun c -> is_space c || c = '"' || c = '\\' || Char.code c < 0x20)
       s

let render_token s =
  if not (needs_quoting s) then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

(* A reason prints raw when the raw form parses back to itself: nonempty, no
   control characters, not starting with a quote or space, not ending with a
   space (the parser trims). *)
let render_reason s =
  let raw_ok =
    s <> ""
    && s.[0] <> '"'
    && (not (is_space s.[0]))
    && (not (is_space s.[String.length s - 1]))
    && not (String.exists (fun c -> Char.code c < 0x20) s)
  in
  if raw_ok then s else render_token s

let print_test buf t =
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "test %s" (render_token t.name);
  (match t.flag with
  | Some (Expect_failure r) -> line "expect_failure %s" (render_reason r)
  | Some (Broken r) -> line "broken %s" (render_reason r)
  | Some (Skip r) -> line "skip %s" (render_reason r)
  | None -> ());
  if t.solvers <> [] then
    line "solver %s" (render_token (String.concat "," t.solvers));
  (match t.seed with Some s -> line "seed %d" s | None -> ());
  (match t.weights with
  | Some (w1, w2, w3) -> line "weights %d %d %d" w1 w2 w3
  | None -> ());
  if t.cache then line "cache on";
  if t.core then line "core on";
  if t.compose then line "compose on";
  (match t.scenario with
  | File path -> line "scenario file %s" (render_token path)
  | Inline body ->
    line "scenario inline";
    line "---";
    List.iter (fun l -> line "%s" l) body;
    line "---");
  List.iter
    (fun e ->
      match e with
      | Objective f -> line "expect objective %s" (frac_to_string f)
      | Selected labels ->
        line "expect selected%s"
          (String.concat "" (List.map (fun l -> " " ^ render_token l) labels))
      | Value (f, labels) ->
        line "expect value %s%s" (frac_to_string f)
          (String.concat "" (List.map (fun l -> " " ^ render_token l) labels))
      | Counter (name, count) ->
        line "expect counter %s %d" (render_token name) count)
    t.expects

let print file =
  let buf = Buffer.create 1024 in
  List.iteri
    (fun i t ->
      if i > 0 then Buffer.add_char buf '\n';
      print_test buf t)
    file;
  Buffer.contents buf
