(** Evaluating [.rtest] suites against the solver registry.

    The runner compiles each {!Rtest.test} onto {!Core.Solver.solve}: the
    scenario becomes a {!Core.Problem.t} (inline documents through
    {!Serialize.Parser}, file references through {!Fuzz.Corpus} for
    [*.scn] corpus entries and {!Serialize.Parser.parse_file} for bare
    documents), every listed solver runs on it, and each expectation is
    checked exactly (objectives as {!Util.Frac}, selections as label
    multisets, counters against {!Telemetry} totals).

    Determinism: the report for a suite is byte-identical for any [jobs] —
    tests fan out over a {!Parallel.Pool} with results reassembled in
    (file, test) order, solvers run without an internal pool, and tests
    with [expect counter] lines run in a sequential phase after the pool
    phase with the telemetry layer reset/enabled around each (counter
    totals are jobs-invariant, but the counters themselves are
    process-global, so concurrent tests would observe each other). *)

exception Scenario_error of string
(** The scenario resolved but could not be turned into a problem: a parse
    error, a malformed corpus entry, or a multi-hop entry without
    [compose on]. Reported as a positioned hard failure (prefixed with the
    [.rtest] path) even under [expect_failure] — an expected failure must
    come from the scenario's semantics, not from the harness failing to
    read it. *)

type failure =
  | Mismatch of {
      index : int;  (** position in the test's [expects] list *)
      expected : Rtest.expectation;
      actual : Rtest.expectation option;
          (** the promotable replacement; [None] when the listed solvers
              disagree on the actual value *)
      message : string;
    }
  | Hard of string
      (** non-promotable: exceptions, unknown solvers/counters/labels,
          dangling scenario files, cache identity violations, a completed
          run under [expect_failure], a [broken] test that passes *)

type outcome =
  | Pass
  | Fail of failure list
  | Xfail of string  (** [expect_failure] and the run did fail *)
  | Still_broken of string  (** [broken] and the expectations still miss *)
  | Skipped of string

type result = {
  test : Rtest.test;
  outcome : outcome;
}

type report = {
  files : (string * result list) list;  (** suite order, as loaded *)
  passed : int;
  failed : int;
  xfailed : int;
  broken : int;
  skipped : int;
}

val load_dir :
  string -> ((string * Rtest.file) list, string) Stdlib.result
(** Parses every [*.rtest] file of a directory in lexicographic filename
    order, keyed by its path. A missing directory or malformed file is an
    [Error] naming the offending path. *)

val run :
  ?jobs:int -> ?filter:string -> (string * Rtest.file) list -> report
(** Evaluates a suite. [filter] keeps only tests whose name contains the
    substring (filtered-out tests are absent from the report). [jobs]
    sizes the pool (default 1); the report is identical for any value. *)

val render : report -> string
(** The human report: one status line per test with indented failure
    details, then a summary — no timings, no absolute paths, so the
    output is byte-stable across machines and [--jobs]. *)

val exit_code : report -> int
(** [1] if any test failed, else [0] (xfail/still-broken/skip all count
    as expected outcomes). *)

val promotable : result -> bool
(** Whether a result is a pure value-mismatch failure that {!promote}
    would rewrite (unflagged, and every failure carries an agreed
    actual). *)

val promote : (string * Rtest.file) list -> report -> (string * string) list
(** Rewritten file contents for suites whose failures are {e all} pure
    value mismatches with an agreed actual ([Mismatch] with
    [actual = Some _]): each such expectation is replaced by its actual
    and the file re-rendered canonically. Tests with any [Hard] failure,
    solver disagreement, or a [broken]/[expect_failure] flag are left
    untouched. A clean (all-passing) suite yields [[]] — promoting is a
    no-op. *)
