(** The declarative expectation-test format ([.rtest]).

    One file carries a sequence of named scenario tests in a line-oriented
    text format, in the spirit of rai-test-julia's [@test_rel] blocks:

    {v
    # comment
    test e1-appendix-flip
    solver exact,greedy
    seed 7
    scenario inline
    ---
    source relation proj(pname, emp, org)
    target relation task(pname, emp, oid)
    tgd theta1: proj(P, E, O) -> task(P, E, T)
    source tuple proj(BigData, Bob, IBM)
    target tuple task(ML, Alice, 111)
    ---
    expect objective 22/3
    expect selected theta1
    v}

    Directives of one test block, in any order after its [test] line:

    - [scenario inline] followed by a [---]-delimited document in the
      {!Serialize.Document} textual format, or [scenario file PATH] — a
      reference to a corpus entry ([corpus/*.scn], parsed by
      {!Fuzz.Corpus}) or to a bare scenario document. Mandatory.
    - [solver NAMES] — comma-separated {!Core.Solver} registry names
      (including the registry's [all], the select-everything solver);
      every expectation below must hold for each listed solver. Omitted:
      no solver runs, only [expect value] clauses are allowed.
    - [seed N] — passed to {!Core.Solver.solve}.
    - [weights W1 W2 W3] — objective weights (overriding a corpus entry's
      recorded weights; validated at run time, so a bad triple is a
      runnable expected-failure).
    - [cache on] — additionally build the problem and solve through a
      fresh evaluation cache, cold and warm, and fail unless digests and
      selections are byte-identical to the uncached run.
    - [compose on] — resolve the scenario as a hop chain and select over
      its end-to-end composition ({!Algebra.compose_all}). Mandatory for
      multi-hop corpus entries ([payload multihop]); a no-op for
      single-hop scenarios, whose composition is the pool itself.
    - [core on] — build the problem with [~core:true]
      ({!Core.Problem.make}): each candidate's chased target is shrunk to
      its core universal solution before coverage statistics are
      computed. Off by default, so existing goldens pin the uncored
      pipeline; cored goldens are pinned by their own tests.
    - [expect objective FRAC] — the solver's achieved Eq. 9 objective,
      written [N] or [N/D] (exact {!Util.Frac} comparison, no epsilons).
    - [expect selected LABELS...] — the selected candidates, compared as a
      multiset of tgd labels; no labels means the empty selection.
    - [expect value FRAC LABELS...] — solver-independent: the objective of
      selecting exactly [LABELS] is [FRAC] (the appendix-table form).
    - [expect counter NAME N] — the named {!Telemetry} counter's total
      over this test's evaluation equals [N] (counter tests run
      sequentially with the telemetry layer reset and enabled around
      them; totals are jobs-invariant by the telemetry contract).
    - [expect_failure REASON], [broken REASON], [skip REASON] — at most
      one, reason mandatory. [expect_failure]: the evaluation must raise
      (a completed run fails the test). [broken]: the expectations are
      known wrong — a mismatch reports as still-broken, and a broken test
      that starts passing is itself a failure (testrel semantics).
      [skip]: not evaluated at all.

    Names, labels, paths and reasons are bare words when they contain no
    whitespace or quotes, and double-quoted strings otherwise (with
    backslash escapes for quote, backslash, newline, carriage return and
    tab). {!print} renders the canonical
    form and {!parse} inverts it exactly: [parse (print f) = Ok f] for
    every representable file (qcheck-pinned in [test/test_expect.ml]),
    which is what makes [--promote] a no-op on a clean tree. *)

type scenario =
  | Inline of string list
      (** the document's lines, verbatim (no line may be the three-dash
          delimiter) *)
  | File of string  (** path as written, resolved by the runner *)

type expectation =
  | Objective of Util.Frac.t
  | Selected of string list  (** labels; order-insensitive multiset *)
  | Value of Util.Frac.t * string list
  | Counter of string * int

type flag =
  | Expect_failure of string
  | Broken of string
  | Skip of string

type test = {
  name : string;
  scenario : scenario;
  solvers : string list;  (** empty = no solver runs *)
  seed : int option;
  weights : (int * int * int) option;
  cache : bool;
  core : bool;  (** build the problem on core universal solutions *)
  compose : bool;
      (** select over the end-to-end composition of the scenario's hops *)
  expects : expectation list;  (** in file order *)
  flag : flag option;
}

type file = test list

val equal_test : test -> test -> bool

val equal_file : file -> file -> bool

val parse : string -> (file, string) result
(** Errors carry a 1-based line number. Enforced shape: nonempty unique
    test names, exactly one scenario per test, mandatory flag reasons, at
    most one flag, solver-requiring expectations only under a [solver]
    directive.

    Solver {e names} are checked against the registry by the runner, not
    here — the format stays parseable without linking the solvers. *)

val print : file -> string
(** Canonical rendering; [parse (print f) = Ok f]. *)

val frac_to_string : Util.Frac.t -> string
(** The format's fraction literal: [N] or [N/D] (never the pretty-printed
    mixed-number form). *)
