(* A scenario that resolved (the file exists, or is inline) but cannot be
   turned into a problem: parse errors, malformed corpus entries, a
   multi-hop entry without 'compose on'. Typed rather than [failwith] so
   the evaluator can report it as a positioned hard failure — never as an
   [expect_failure] pass, which must come from the scenario's semantics,
   not from the harness failing to read it. *)
exception Scenario_error of string

let scenario_error ~path fmt =
  Printf.ksprintf (fun m -> raise (Scenario_error (path ^ ": " ^ m))) fmt

type failure =
  | Mismatch of {
      index : int;
      expected : Rtest.expectation;
      actual : Rtest.expectation option;
      message : string;
    }
  | Hard of string

type outcome =
  | Pass
  | Fail of failure list
  | Xfail of string
  | Still_broken of string
  | Skipped of string

type result = {
  test : Rtest.test;
  outcome : outcome;
}

type report = {
  files : (string * result list) list;
  passed : int;
  failed : int;
  xfailed : int;
  broken : int;
  skipped : int;
}

(* --- scenario resolution and problem construction ------------------------ *)

(* A resolved scenario source. Resolution (does the referenced file exist?)
   happens before the guarded evaluation region, so a dangling reference is
   a hard failure even under [expect_failure] — an expected failure must
   come from the scenario, not from a typo in its path. *)
type source =
  | Src_inline of string list
  | Src_file of string

let resolve_source ~path scenario =
  match scenario with
  | Rtest.Inline body -> Ok (Src_inline body)
  | Rtest.File f ->
    if not (Filename.is_relative f) then
      if Sys.file_exists f then Ok (Src_file f)
      else Error (Printf.sprintf "scenario file not found: %s" f)
    else begin
      (* relative to the .rtest file's directory, then to its parent (so a
         suite under expect/ can reference corpus/foo.scn at the repo root) *)
      let base = Filename.dirname path in
      let c1 = Filename.concat base f in
      let c2 = Filename.concat (Filename.dirname base) f in
      if Sys.file_exists c1 then Ok (Src_file c1)
      else if Sys.file_exists c2 then Ok (Src_file c2)
      else
        Error
          (Printf.sprintf "scenario file not found: %s (tried %s and %s)" f c1
             c2)
    end

let weights_override (test : Rtest.test) =
  Option.map
    (fun (w1, w2, w3) ->
      { Core.Problem.w_unexplained = w1; w_errors = w2; w_size = w3 })
    test.weights

let problem_of_doc ?(core = false) ?cache ?weights (doc : Serialize.Document.t) =
  Core.Problem.make ?weights ~core ?cache
    ~source:doc.Serialize.Document.instance_i
    ~j:doc.Serialize.Document.instance_j doc.Serialize.Document.tgds

let problem_of_source ~rtest ?cache (test : Rtest.test) source =
  let weights = weights_override test in
  let core = test.core in
  match source with
  | Src_inline body -> (
    match Serialize.Parser.parse (String.concat "\n" body) with
    | Ok doc -> problem_of_doc ~core ?cache ?weights doc
    | Error e ->
      scenario_error ~path:rtest "inline scenario: %s"
        (Format.asprintf "%a" Serialize.Parser.pp_error e))
  | Src_file path when Filename.check_suffix path ".scn" -> (
    match Fuzz.Corpus.load path with
    | Error msg -> scenario_error ~path:rtest "%s" msg
    | Ok entry -> (
      match entry.Fuzz.Corpus.case.Fuzz.Case.payload with
      | Fuzz.Case.Mapping m ->
        let weights = Option.value weights ~default:m.Fuzz.Case.weights in
        Core.Problem.make ~weights ~core ?cache ~source:m.Fuzz.Case.source
          ~j:m.Fuzz.Case.j m.Fuzz.Case.candidates
      | Fuzz.Case.Multihop mh ->
        (* the end-to-end view of the chain: initial instance, final
           observed instance, composed candidate pool *)
        if not test.compose then
          scenario_error ~path:rtest
            "%s is a multi-hop corpus entry; add 'compose on'" path;
        let weights = Option.value weights ~default:mh.Fuzz.Case.hop_weights in
        let j =
          match List.rev mh.Fuzz.Case.hops with
          | (_, observed) :: _ -> observed
          | [] -> Relational.Instance.empty
        in
        Core.Problem.make ~weights ~core ?cache ~source:mh.Fuzz.Case.initial ~j
          (Algebra.compose_all (List.map fst mh.Fuzz.Case.hops))
      | Fuzz.Case.Setcover inst -> (
        (* a reduced SET COVER problem is prebuilt; [core] has no chase to
           act on and is ignored *)
        let red = Core.Setcover.reduce inst in
        match weights with
        | Some w -> Core.Problem.with_weights red.Core.Setcover.problem w
        | None -> red.Core.Setcover.problem)))
  | Src_file path -> (
    match Serialize.Parser.parse_file path with
    | Ok doc -> problem_of_doc ~core ?cache ?weights doc
    | Error e ->
      scenario_error ~path:rtest "%s: %s" path
        (Format.asprintf "%a" Serialize.Parser.pp_error e))

(* --- evaluation ---------------------------------------------------------- *)

type run_data = {
  problem : Core.Problem.t;
  selections : (string * bool array) list;  (** per solver, in test order *)
  hard : string list;
  counters : (string * int) list;
}

let pipeline ~rtest (test : Rtest.test) source =
  let build ?cache () = problem_of_source ~rtest ?cache test source in
  let problem = build () in
  let hard = ref [] in
  let add_hard m = hard := m :: !hard in
  let cache =
    if test.cache then begin
      let c = Cache.create () in
      let cold = build ~cache:c () in
      let warm = build ~cache:c () in
      let d = Core.Problem.digest problem in
      if Core.Problem.digest cold <> d then
        add_hard "cache identity: cold cached problem digest differs";
      if Core.Problem.digest warm <> d then
        add_hard "cache identity: warm cached problem digest differs";
      Some (c, cold)
    end
    else None
  in
  let selections =
    List.filter_map
      (fun name ->
        match Core.Solver.find name with
        | None ->
          add_hard
            (Printf.sprintf "unknown solver '%s' (registry: %s)" name
               (String.concat ", " (Core.Solver.names ())));
          None
        | Some impl -> (
          try
            let sel =
              (Core.Solver.solve impl ?seed:test.seed problem)
                .Core.Solver.selection
            in
            (match cache with
            | None -> ()
            | Some (c, cached) ->
              let run () =
                (Core.Solver.solve impl ?seed:test.seed ~cache:c cached)
                  .Core.Solver.selection
              in
              let cold = run () in
              let warm = run () in
              if cold <> sel then
                add_hard
                  (name ^ ": cache identity: cold cached selection differs");
              if warm <> sel then
                add_hard
                  (name ^ ": cache identity: warm cached selection differs"));
            Some (name, sel)
          with Core.Solver_error.Error _ as e ->
            add_hard (name ^ ": " ^ Core.Solver_error.to_string e);
            None))
      test.solvers
  in
  { problem; selections; hard = List.rev !hard; counters = [] }

let has_counter (test : Rtest.test) =
  List.exists
    (function Rtest.Counter _ -> true | _ -> false)
    test.expects

(* Counter tests wrap their whole pipeline (scenario parse, problem builds,
   solver runs) in a reset/enabled telemetry window. Counters are
   process-global, which is why [run] keeps these tests out of the pool
   phase — they must not observe each other. *)
let run_measured ~rtest test source =
  if has_counter test then begin
    let prev = Telemetry.enabled () in
    Fun.protect
      ~finally:(fun () -> Telemetry.set_enabled prev)
      (fun () ->
        Telemetry.reset ();
        Telemetry.set_enabled true;
        let data = pipeline ~rtest test source in
        { data with counters = Telemetry.counters () })
  end
  else pipeline ~rtest test source

let selection_of_labels (p : Core.Problem.t) labels =
  let sel = Array.make (Array.length p.Core.Problem.candidates) false in
  let missing =
    List.filter
      (fun l ->
        let found = ref false in
        Array.iteri
          (fun i c ->
            if String.equal c.Logic.Tgd.label l then begin
              found := true;
              sel.(i) <- true
            end)
          p.Core.Problem.candidates;
        not !found)
      (List.sort_uniq String.compare labels)
  in
  if missing <> [] then
    Error ("unknown candidate label(s): " ^ String.concat ", " missing)
  else Ok sel

let selected_labels (p : Core.Problem.t) sel =
  let out = ref [] in
  Array.iteri
    (fun i c -> if sel.(i) then out := c.Logic.Tgd.label :: !out)
    p.Core.Problem.candidates;
  List.sort String.compare !out

let show_labels ls = "{" ^ String.concat ", " ls ^ "}"

(* One expectation checked against every listed solver's result. The
   mismatch is promotable only when all solvers agree on the actual. *)
let solverwise ~index ~expected_e ~what ~equal ~show ~wrap expected runs add =
  let bad = List.filter (fun (_, v) -> not (equal v expected)) runs in
  if bad <> [] then begin
    let agreed =
      match runs with
      | (_, v0) :: rest when List.for_all (fun (_, v) -> equal v v0) rest ->
        Some (wrap v0)
      | _ -> None
    in
    let message =
      Printf.sprintf "%s: expected %s, got %s" what (show expected)
        (String.concat "; "
           (List.map
              (fun (name, v) -> Printf.sprintf "%s [%s]" (show v) name)
              bad))
    in
    add (Mismatch { index; expected = expected_e; actual = agreed; message })
  end

let check (test : Rtest.test) data =
  let failures = ref [] in
  let add f = failures := f :: !failures in
  List.iter (fun m -> add (Hard m)) data.hard;
  let fr = Rtest.frac_to_string in
  List.iteri
    (fun index e ->
      match e with
      | Rtest.Value (expected, labels) -> (
        match selection_of_labels data.problem labels with
        | Error msg -> add (Hard msg)
        | Ok sel ->
          let v = Core.Objective.value data.problem sel in
          if not (Util.Frac.equal v expected) then
            add
              (Mismatch
                 {
                   index;
                   expected = e;
                   actual = Some (Rtest.Value (v, labels));
                   message =
                     Printf.sprintf "value of %s: expected %s, got %s"
                       (show_labels labels) (fr expected) (fr v);
                 }))
      | Rtest.Objective expected ->
        let runs =
          List.map
            (fun (name, sel) -> (name, Core.Objective.value data.problem sel))
            data.selections
        in
        solverwise ~index ~expected_e:e ~what:"objective"
          ~equal:Util.Frac.equal ~show:fr
          ~wrap:(fun v -> Rtest.Objective v)
          expected runs add
      | Rtest.Selected labels ->
        let runs =
          List.map
            (fun (name, sel) -> (name, selected_labels data.problem sel))
            data.selections
        in
        solverwise ~index ~expected_e:e ~what:"selected"
          ~equal:(List.equal String.equal)
          ~show:show_labels
          ~wrap:(fun v -> Rtest.Selected v)
          (List.sort String.compare labels)
          runs add
      | Rtest.Counter (name, count) -> (
        match List.assoc_opt name data.counters with
        | None ->
          add (Hard (Printf.sprintf "no such telemetry counter '%s'" name))
        | Some v ->
          if v <> count then
            add
              (Mismatch
                 {
                   index;
                   expected = e;
                   actual = Some (Rtest.Counter (name, v));
                   message =
                     Printf.sprintf "counter %s: expected %d, got %d" name
                       count v;
                 })))
    test.expects;
  List.rev !failures

let eval ~path (test : Rtest.test) =
  match test.flag with
  | Some (Rtest.Skip r) -> Skipped r
  | flag -> (
    match resolve_source ~path test.scenario with
    | Error msg -> Fail [ Hard msg ]
    | Ok source -> (
      match run_measured ~rtest:path test source with
      | data -> (
        let failures = check test data in
        match flag with
        | Some (Rtest.Expect_failure _) ->
          Fail [ Hard "expected the evaluation to fail, but it completed" ]
        | Some (Rtest.Broken r) ->
          if failures = [] then
            Fail [ Hard "broken test passed; remove the 'broken' flag" ]
          else Still_broken r
        | Some (Rtest.Skip _) | None ->
          if failures = [] then Pass else Fail failures)
      | exception Scenario_error msg ->
        (* hard even under expect_failure: the harness could not read the
           scenario, so the "failure" would not be the scenario's *)
        Fail [ Hard msg ]
      | exception e -> (
        match flag with
        | Some (Rtest.Expect_failure r) -> Xfail r
        | _ -> Fail [ Hard ("exception: " ^ Printexc.to_string e) ])))

(* --- suite driving ------------------------------------------------------- *)

let load_dir dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> Error msg
  | names ->
    let names =
      names |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".rtest")
      |> List.sort String.compare
    in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | f :: rest -> (
        let path = Filename.concat dir f in
        match In_channel.with_open_bin path In_channel.input_all with
        | exception Sys_error msg -> Error msg
        | text -> (
          match Rtest.parse text with
          | Ok tests -> go ((path, tests) :: acc) rest
          | Error msg -> Error (Printf.sprintf "%s: %s" path msg)))
    in
    go [] names

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else begin
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  end

let run ?(jobs = 1) ?filter suites =
  let keep (t : Rtest.test) =
    match filter with None -> true | Some f -> contains ~sub:f t.name
  in
  let flat =
    Array.of_list
      (List.concat_map
         (fun (path, tests) ->
           List.filter_map
             (fun t -> if keep t then Some (path, t) else None)
             tests)
         suites)
  in
  let n = Array.length flat in
  let outcomes = Array.make n Pass in
  (* counter tests run sequentially after the pool phase: telemetry counters
     are process-global, so concurrent tests would observe each other *)
  let counter_phase i =
    let _, (t : Rtest.test) = flat.(i) in
    has_counter t
    && match t.flag with Some (Rtest.Skip _) -> false | _ -> true
  in
  let indices = List.init n Fun.id in
  let pool_idx =
    Array.of_list (List.filter (fun i -> not (counter_phase i)) indices)
  in
  let seq_idx = List.filter counter_phase indices in
  Parallel.Pool.with_pool ~jobs (fun pool ->
      let res =
        Parallel.Pool.parallel_map pool
          (fun i ->
            let path, t = flat.(i) in
            eval ~path t)
          pool_idx
      in
      Array.iteri (fun k i -> outcomes.(i) <- res.(k)) pool_idx);
  List.iter
    (fun i ->
      let path, t = flat.(i) in
      outcomes.(i) <- eval ~path t)
    seq_idx;
  let cursor = ref 0 in
  let files =
    List.map
      (fun (path, tests) ->
        let results =
          List.filter_map
            (fun t ->
              if keep t then begin
                let o = outcomes.(!cursor) in
                incr cursor;
                Some { test = t; outcome = o }
              end
              else None)
            tests
        in
        (path, results))
      suites
  in
  let count p =
    List.fold_left
      (fun acc (_, rs) ->
        acc + List.length (List.filter (fun r -> p r.outcome) rs))
      0 files
  in
  {
    files;
    passed = count (function Pass -> true | _ -> false);
    failed = count (function Fail _ -> true | _ -> false);
    xfailed = count (function Xfail _ -> true | _ -> false);
    broken = count (function Still_broken _ -> true | _ -> false);
    skipped = count (function Skipped _ -> true | _ -> false);
  }

(* --- reporting ----------------------------------------------------------- *)

let status_of = function
  | Pass -> "PASS"
  | Fail _ -> "FAIL"
  | Xfail _ -> "XFAIL"
  | Still_broken _ -> "BROKEN"
  | Skipped _ -> "SKIP"

let render report =
  let buf = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  List.iteri
    (fun i (path, results) ->
      if i > 0 then line "";
      line "== %s" path;
      List.iter
        (fun r ->
          let note =
            match r.outcome with
            | Xfail reason | Still_broken reason | Skipped reason ->
              Printf.sprintf " (%s)" reason
            | Pass | Fail _ -> ""
          in
          line "%-6s %s%s" (status_of r.outcome) r.test.Rtest.name note;
          match r.outcome with
          | Fail fs ->
            List.iter
              (fun f ->
                let msg =
                  match f with Mismatch m -> m.message | Hard m -> m
                in
                List.iter
                  (fun l -> line "       %s" l)
                  (String.split_on_char '\n' msg))
              fs
          | _ -> ())
        results)
    report.files;
  line "";
  line "summary: %d passed, %d failed, %d xfailed, %d still-broken, %d skipped"
    report.passed report.failed report.xfailed report.broken report.skipped;
  Buffer.contents buf

let exit_code report = if report.failed > 0 then 1 else 0

(* --- promotion ----------------------------------------------------------- *)

let promotable r =
  match r.outcome with
  | Fail fs ->
    r.test.Rtest.flag = None
    && fs <> []
    && List.for_all
         (function
           | Mismatch { actual = Some _; _ } -> true
           | Mismatch { actual = None; _ } | Hard _ -> false)
         fs
  | Pass | Xfail _ | Still_broken _ | Skipped _ -> false

let promote suites report =
  List.filter_map
    (fun (path, tests) ->
      match List.assoc_opt path report.files with
      | None -> None
      | Some results ->
        let changed = ref false in
        let tests' =
          List.map
            (fun (t : Rtest.test) ->
              let r =
                List.find_opt
                  (fun r -> String.equal r.test.Rtest.name t.name)
                  results
              in
              match r with
              | Some ({ outcome = Fail fs; _ } as r) when promotable r ->
                let arr = Array.of_list t.expects in
                List.iter
                  (function
                    | Mismatch { index; actual = Some a; _ } -> arr.(index) <- a
                    | Mismatch { actual = None; _ } | Hard _ -> ())
                  fs;
                changed := true;
                { t with expects = Array.to_list arr }
              | _ -> t)
            tests
        in
        if !changed then Some (path, Rtest.print tests') else None)
    suites
