(** The mapping algebra: composition, containment, and quasi-inverse
    recovery over st-tgd mappings.

    A mapping here is a finite set of st tgds. The algebra treats a set as
    the specification of the binary relation \{(I, J) | (I, J) ⊨ Σ\} and
    provides the three classical operators over such relations:

    - {!compose} unfolds a two-hop program [M12 ; M23] over the
      intermediate schema into a single S→U tgd set, verifying each
      unfolding with a two-hop chase ({!Chase.Implication.implied_through})
      and pruning with tgd minimisation;
    - {!contained_in} / {!equivalent} lift per-tgd implication to whole
      mappings;
    - {!invert} / {!recovery} swap bodies and heads and report how much of
      a source instance survives a forward-then-back chase.

    Everything is chase-based and therefore exact on the st-tgd fragment
    the selection engine uses; nothing here is approximate. *)

open Relational
open Logic

val chase_through : Instance.t -> Tgd.t list list -> Instance.t
(** [chase_through i hops] chases [i] with each hop in turn. A single null
    source, seeded above every null already present in [i], threads through
    all hops so labels never collide between rounds — the hop-by-hop
    counterpart of chasing once with a composed mapping. *)

val compose : ?limit : int -> Tgd.t list -> Tgd.t list -> Tgd.t list
(** [compose m12 m23] is a tgd set over source and final schemas capturing
    the sequential application of [m12] then [m23], obtained by resolution
    unfolding of every [m23] body atom against [m12] heads. Unfoldings
    that would equate existentials of distinct triggers are syntactically
    generated but rejected by the two-hop chase check, so every returned
    tgd is sound; [limit] (default 64) bounds the number of unfoldings
    explored per [m23] tgd. Results are shrunk with
    {!Chase.Implication.minimize_tgd} and pruned with
    {!Chase.Implication.minimize}.

    The result is exact — logically equivalent to the sequential
    application — when [m12] is full. With existentials in [m12] heads it
    is a sound under-approximation: an [m12] null consumed by two [m23]
    triggers yields facts correlated through a shared null, which no
    first-order tgd set expresses (composition then needs second-order
    tgds, Fagin et al. 2005). Ground consequences are still captured,
    since each arises from a single unfoldable derivation tree. *)

val compose_all : ?limit : int -> Tgd.t list list -> Tgd.t list
(** Left fold of {!compose} over a hop list; [[]] composes to [[]]. *)

val contained_in : Tgd.t list -> Tgd.t list -> bool
(** [contained_in m m'] is [true] iff every (I, J) pair satisfying [m] also
    satisfies [m'] — i.e. [m] implies each tgd of [m']; [m] is the stronger
    (more constraining) mapping. *)

val equivalent : Tgd.t list -> Tgd.t list -> bool
(** Mutual containment: the two tgd sets specify the same relation. *)

val invert : Tgd.t list -> Tgd.t list
(** Swaps body and head of every tgd (labels gain an ["inv_"] prefix).
    Source variables not carried into the head of the original tgd become
    existentials of the inverse — the recovered fact remembers {e that}
    a witness existed, not {e which}. *)

val recover : source : Instance.t -> Tgd.t list -> Instance.t
(** [recover ~source m] chases [source] forward with [m] and back with
    [invert m]: the part of [source] the mapping can reconstruct, with
    nulls standing for values [m] forgot. *)

type recovery = {
  inverse : Tgd.t list;
  recovered : Instance.t;  (** [recover ~source m] *)
  certain : Tuple.t list;  (** ground (null-free) recovered facts *)
  sound : bool;
      (** every recovered fact, nulls read as wildcards, has a witness in
          the source — holds when [m] admits a recovery in the
          Fagin et al. sense, and is reported rather than assumed because
          not every mapping does *)
  certain_sound : bool;  (** every ground recovered fact is a source fact *)
}

val recovery : source : Instance.t -> Tgd.t list -> recovery
(** Runs {!recover} and reports how faithful the round trip was. *)
