open Relational
open Logic

module Smap = Map.Make (String)

(* --- term unification ---------------------------------------------------- *)

(* Terms are flat (variables and constants, no function symbols), so
   unification is union-find-light: walk a term to its representative, bind
   unbound variables. Walking before binding keeps the substitution acyclic. *)
let rec walk s t =
  match t with
  | Term.Var v -> (
    match Smap.find_opt v s with Some t' -> walk s t' | None -> t)
  | Term.Cst _ -> t

let unify_term s t1 t2 =
  let t1 = walk s t1 and t2 = walk s t2 in
  match (t1, t2) with
  | Term.Cst a, Term.Cst b -> if String.equal a b then Some s else None
  | Term.Var v, t | t, Term.Var v ->
    if t = Term.Var v then Some s else Some (Smap.add v t s)

let unify_atom s (a : Atom.t) (b : Atom.t) =
  if (not (String.equal a.Atom.rel b.Atom.rel)) || Atom.arity a <> Atom.arity b
  then None
  else
    let rec go s i =
      if i >= Array.length a.Atom.args then Some s
      else
        match unify_term s a.Atom.args.(i) b.Atom.args.(i) with
        | Some s -> go s (i + 1)
        | None -> None
    in
    go s 0

let apply_atom s (a : Atom.t) =
  Atom.make a.Atom.rel (Array.to_list (Array.map (walk s) a.Atom.args))

(* --- chase through hops -------------------------------------------------- *)

let next_null_label inst =
  List.fold_left
    (fun acc (t : Tuple.t) ->
      Array.fold_left
        (fun acc v ->
          match v with Value.Null k -> max acc (k + 1) | Value.Const _ -> acc)
        acc t.Tuple.values)
    0 (Instance.tuples inst)

let chase_through source hops =
  (* One null source threads through every hop, starting above any null
     already present in [source], so labels never collide across rounds. *)
  let nulls = Null_source.create ~first:(next_null_label source) () in
  List.fold_left
    (fun inst hop -> Chase.universal_solution ~nulls inst hop)
    source hops

(* --- composition --------------------------------------------------------- *)

(* Unfold one M23 tgd against the heads of M12 (resolution over the
   intermediate schema): each T-atom of the body is unified either with a
   head atom of an M12 tgd instantiated earlier on this branch (so joins on
   a shared existential resolve within one trigger) or with a head atom of a
   freshly renamed M12 instance, whose body atoms accumulate into the
   composed body. The search is purely syntactic and may overshoot — an
   unfolding that equates existentials of distinct triggers is unsound — so
   every result is verified against the two-hop chase before it survives. *)
let unfold ~limit m12 (t23 : Tgd.t) =
  let t23 = Tgd.rename_apart ~suffix:"_c" t23 in
  let results = ref [] in
  let n_results = ref 0 in
  let max_inst = List.length t23.Tgd.body in
  let counter = ref 0 in
  let rec go remaining avail bodies s n_inst =
    if !n_results >= limit then ()
    else
      match remaining with
      | [] ->
        let body = List.map (apply_atom s) (List.concat (List.rev bodies)) in
        let head = List.map (apply_atom s) t23.Tgd.head in
        if body <> [] then begin
          incr n_results;
          results := (body, head) :: !results
        end
      | a :: rest ->
        List.iter
          (fun h ->
            match unify_atom s a h with
            | Some s' -> go rest avail bodies s' n_inst
            | None -> ())
          avail;
        if n_inst < max_inst then
          List.iter
            (fun (t12 : Tgd.t) ->
              let k = !counter in
              incr counter;
              let t12 =
                Tgd.rename_apart ~suffix:(Printf.sprintf "_g%d" k) t12
              in
              List.iter
                (fun h ->
                  match unify_atom s a h with
                  | Some s' ->
                    go rest (avail @ t12.Tgd.head) (t12.Tgd.body :: bodies) s'
                      (n_inst + 1)
                  | None -> ())
                t12.Tgd.head)
            m12
  in
  go t23.Tgd.body [] [] Smap.empty 0;
  List.rev !results

let compose ?(limit = 64) m12 m23 =
  let candidates =
    List.concat_map
      (fun (t23 : Tgd.t) ->
        List.mapi
          (fun i (body, head) ->
            Tgd.make
              ~label:(Printf.sprintf "%s.%d" t23.Tgd.label i)
              ~body ~head ())
          (unfold ~limit m12 t23))
      m23
  in
  (* Drop unsound unfoldings: a composed tgd survives only if it actually
     holds in M12 ∘ M23, decided by chasing its frozen body through both
     hops. Then shrink each survivor and prune the set. *)
  let sound =
    List.filter
      (fun c -> Chase.Implication.implied_through ~hops:[ m12; m23 ] c)
      candidates
  in
  let shrunk = List.map Chase.Implication.minimize_tgd sound in
  let _, deduped =
    List.fold_left
      (fun (seen, acc) c ->
        let key = Tgd.canonicalize c in
        if Tgd.Set.mem key seen then (seen, acc)
        else (Tgd.Set.add key seen, c :: acc))
      (Tgd.Set.empty, []) shrunk
  in
  Chase.Implication.minimize (List.rev deduped)

let compose_all ?limit = function
  | [] -> []
  | m :: rest -> List.fold_left (fun acc hop -> compose ?limit acc hop) m rest

(* --- whole-mapping containment ------------------------------------------- *)

let contained_in m m' = List.for_all (Chase.Implication.implied_by ~by:m) m'

let equivalent m m' = contained_in m m' && contained_in m' m

(* --- quasi-inverse recovery ---------------------------------------------- *)

let invert m =
  List.map
    (fun (t : Tgd.t) ->
      Tgd.make ~label:("inv_" ^ t.Tgd.label) ~body:t.Tgd.head ~head:t.Tgd.body
        ())
    m

let recover ~source m = chase_through source [ m; invert m ]

let tuple_pattern (t : Tuple.t) =
  Atom.make t.Tuple.rel
    (Array.to_list
       (Array.map
          (function
            | Value.Const c -> Term.Cst c
            | Value.Null k -> Term.Var (Printf.sprintf "_n%d" k))
          t.Tuple.values))

let tuple_is_ground (t : Tuple.t) =
  Array.for_all
    (function Value.Const _ -> true | Value.Null _ -> false)
    t.Tuple.values

type recovery = {
  inverse : Tgd.t list;
  recovered : Instance.t;
  certain : Tuple.t list;
  sound : bool;
  certain_sound : bool;
}

let recovery ~source m =
  let inverse = invert m in
  let recovered = chase_through source [ m; inverse ] in
  let tuples = Instance.tuples recovered in
  let certain = List.filter tuple_is_ground tuples in
  let witnessed t = Cq.holds source [ tuple_pattern t ] in
  {
    inverse;
    recovered;
    certain;
    sound = List.for_all witnessed tuples;
    certain_sound = List.for_all (fun t -> Instance.mem t source) certain;
  }
