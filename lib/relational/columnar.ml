type table = {
  arity : int;
  nrows : int;
  columns : Column.t array;
}

type t = {
  dict : Dict.t;
  tables : (string, table) Hashtbl.t;
  rels : string list;
}

let dict t = t.dict

let relations t = t.rels

let table t rel = Hashtbl.find_opt t.tables rel

let cardinal t =
  Hashtbl.fold (fun _ tbl acc -> acc + tbl.nrows) t.tables 0

let of_instance inst =
  let dict = Dict.create () in
  let tables = Hashtbl.create 16 in
  let rels = Instance.relations inst in
  List.iter
    (fun rel ->
      let tuples = Tuple.Set.elements (Instance.tuples_of inst rel) in
      let arity =
        match tuples with
        | [] -> 0
        | t :: rest ->
          let a = Array.length t.Tuple.values in
          List.iter
            (fun (t' : Tuple.t) ->
              if Array.length t'.values <> a then
                invalid_arg
                  (Printf.sprintf
                     "Columnar.of_instance: relation %s mixes arities" rel))
            rest;
          a
      in
      let nrows = List.length tuples in
      let cols = Array.init arity (fun _ -> Array.make nrows 0) in
      (* [Tuple.Set.elements] is ascending, so row ids follow the canonical
         tuple order of the relation — the invariant every columnar
         evaluator relies on for bit-identity with the row-major path *)
      List.iteri
        (fun row (t : Tuple.t) ->
          Array.iteri (fun pos v -> cols.(pos).(row) <- Dict.intern dict v) t.values)
        tuples;
      Hashtbl.replace tables rel
        { arity; nrows; columns = Array.map Column.of_array cols })
    rels;
  { dict; tables; rels }

let tuple_of_row t tbl rel row =
  let values =
    Array.init tbl.arity (fun pos ->
        Dict.decode t.dict (Column.get tbl.columns.(pos) row))
  in
  { Tuple.rel; values }

let to_instance t =
  List.fold_left
    (fun inst rel ->
      match table t rel with
      | None -> inst
      | Some tbl ->
        let acc = ref inst in
        for row = 0 to tbl.nrows - 1 do
          acc := Instance.add (tuple_of_row t tbl rel row) !acc
        done;
        !acc)
    Instance.empty t.rels
