(** Minimal CSV import/export for instances.

    Supports the common subset: comma separators, [""]-quoted fields with
    doubled inner quotes, records separated by [\n], [\r\n] or a lone [\r].
    Quoted fields may contain separators, quotes and record terminators, so
    everything {!to_csv} emits loads back: [load_relation] assembles records
    with a quote-aware scan of the whole text rather than splitting on
    newlines first. Intended for loading small data examples, not for
    streaming large files. *)

val parse_line : string -> (string list, string) result
(** One CSV record (no record-terminator handling: a bare [\n] in [line] is
    field content only if it lies inside quotes). *)

val load_relation : rel : string -> ?arity : int -> string -> (Tuple.t list, string) result
(** [load_relation ~rel text] parses one tuple per record, skipping blank
    records. All rows must have the same width (and match [arity] when
    given); errors carry the line number the offending record starts on. *)

val load :
  (string * string) list -> (Instance.t, string) result
(** [load [(rel, csv); ...]] builds an instance from several relations. *)

val to_csv : Instance.t -> string -> string
(** [to_csv inst rel]: the tuples of one relation as CSV (nulls print as
    [_N<label>]). Fields containing separators, quotes, CR/LF or boundary
    whitespace — and empty fields — are quoted so the output re-loads to the
    same tuples. *)
