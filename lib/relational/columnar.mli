(** Dictionary-encoded, column-major instances.

    A columnar instance is the same set of tuples as a {!Instance.t}, stored
    as one {!Column.t} of dense {!Dict.t} codes per attribute position, with
    a per-column hash index from code to rows. Within each relation, row ids
    follow the canonical (ascending) tuple order of the row-major instance,
    so the columnar CQ evaluator and chase enumerate homomorphisms in
    exactly the row-major order and stay bit-identical to it.

    The conversion is lossless: [to_instance (of_instance i)] equals [i]
    (pinned by the [columnar-identity] fuzz family and qcheck suites). *)

type table = {
  arity : int;
  nrows : int;
  columns : Column.t array;
}

type t

val of_instance : Instance.t -> t
(** Raises [Invalid_argument] if some relation mixes tuple arities (the
    row-major representation allows it; a column store cannot). *)

val to_instance : t -> Instance.t

val dict : t -> Dict.t

val table : t -> string -> table option

val relations : t -> string list
(** Relation names, ascending (the row-major canonical order). *)

val cardinal : t -> int

val tuple_of_row : t -> table -> string -> int -> Tuple.t
(** Decodes one row back to a tuple. *)
