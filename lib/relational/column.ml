type t = {
  data : int array;
  index : (int, int list) Hashtbl.t;
}

let of_array data =
  let index = Hashtbl.create (max 16 (Array.length data)) in
  (* Rows are appended in ascending (canonical) order, so consing leaves
     every posting list in descending row order — the same order the
     row-major [Cq.Index] bucket enumerates, which the bit-identity
     contract of the columnar evaluator depends on. *)
  Array.iteri
    (fun row code ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt index code) in
      Hashtbl.replace index code (row :: prev))
    data;
  { data; index }

let length t = Array.length t.data

let get t row = t.data.(row)

let rows_with t code = Option.value ~default:[] (Hashtbl.find_opt t.index code)

let mask_of t code =
  let bs = Util.Bitset.create (Array.length t.data) in
  List.iter (Util.Bitset.set bs) (rows_with t code);
  bs
