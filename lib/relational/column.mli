(** One column of a columnar relation: dictionary codes in a dense int
    array, with a hash index from code to the rows carrying it. *)

type t

val of_array : int array -> t
(** [data.(row)] is the code at [row]; the index is built eagerly. *)

val length : t -> int

val get : t -> int -> int

val rows_with : t -> int -> int list
(** Rows whose cell equals the code, in descending row order ([[]] for a
    code that never occurs). The descending order mirrors the row-major
    [Cq.Index] bucket order — see {!of_array}. *)

val mask_of : t -> int -> Util.Bitset.t
(** The same posting list as a bitset over row ids, for semi-join
    intersection via {!Util.Bitset.inter_into}. *)
