type t = {
  table : (Value.t, int) Hashtbl.t;
  mutable values : Value.t array;
  mutable size : int;
}

let create ?(capacity = 64) () =
  {
    table = Hashtbl.create capacity;
    values = Array.make (max capacity 1) (Value.Const "");
    size = 0;
  }

let size t = t.size

let find_opt t v = Hashtbl.find_opt t.table v

let intern t v =
  match Hashtbl.find_opt t.table v with
  | Some code -> code
  | None ->
    let code = t.size in
    if code >= Array.length t.values then begin
      let grown = Array.make (2 * Array.length t.values) (Value.Const "") in
      Array.blit t.values 0 grown 0 t.size;
      t.values <- grown
    end;
    t.values.(code) <- v;
    Hashtbl.replace t.table v code;
    t.size <- code + 1;
    code

let decode t code =
  if code < 0 || code >= t.size then invalid_arg "Dict.decode: unknown code";
  t.values.(code)
