(** Per-problem value dictionaries: constants and labeled nulls interned to
    dense integer codes.

    Interning is injective and first-come-first-served, so two values compare
    equal iff their codes do — the columnar evaluators join on machine ints
    and decode back to {!Value.t} only at the boundary. Codes are dense
    ([0 .. size-1]), which lets columns, posting lists and bitsets use them
    as array indexes directly. *)

type t

val create : ?capacity:int -> unit -> t

val size : t -> int
(** Number of distinct values interned so far. *)

val intern : t -> Value.t -> int
(** The code of the value, allocating the next dense code on first sight. *)

val find_opt : t -> Value.t -> int option
(** The code of the value, or [None] if it was never interned. *)

val decode : t -> int -> Value.t
(** Inverse of {!intern}. Raises [Invalid_argument] on an unknown code. *)
