let parse_line line =
  let n = String.length line in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let push () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  (* states: outside quotes / inside quotes *)
  let rec outside i =
    if i >= n then Ok (push ())
    else
      match line.[i] with
      | ',' ->
        push ();
        outside (i + 1)
      | '"' ->
        if Buffer.length buf = 0 then inside (i + 1)
        else Error (Printf.sprintf "unexpected quote at column %d" (i + 1))
      | c ->
        Buffer.add_char buf c;
        outside (i + 1)
  and inside i =
    if i >= n then Error "unterminated quoted field"
    else
      match line.[i] with
      | '"' ->
        if i + 1 < n && line.[i + 1] = '"' then begin
          Buffer.add_char buf '"';
          inside (i + 2)
        end
        else after_quote (i + 1)
      | c ->
        Buffer.add_char buf c;
        inside (i + 1)
  and after_quote i =
    if i >= n then Ok (push ())
    else
      match line.[i] with
      | ',' ->
        push ();
        outside (i + 1)
      | c -> Error (Printf.sprintf "unexpected %c after closing quote" c)
  in
  Result.map (fun () -> List.rev !fields) (outside 0)

(* Split a CSV text into records without breaking quoted fields apart. A
   record ends at a '\n', "\r\n" or lone '\r' that lies outside quotes;
   inside quotes those bytes are field content (which [escape] emits, and
   which the line-by-line splitter this replaces could write but never read
   back). Quote state is tracked by parity: quotes legally occur only as
   field delimiters or doubled inside a quoted field, and both keep the
   parity honest — a stray quote elsewhere may join two physical lines, but
   [parse_line] then rejects the joined record with the right line number.
   Each record is returned with the 1-based line it starts on. *)
let split_records text =
  let n = String.length text in
  let records = ref [] in
  let buf = Buffer.create 32 in
  let line = ref 1 in
  let start_line = ref 1 in
  let push () =
    records := (!start_line, Buffer.contents buf) :: !records;
    Buffer.clear buf;
    start_line := !line
  in
  let rec go i in_quotes =
    if i >= n then begin
      if Buffer.length buf > 0 then push ();
      List.rev !records
    end
    else
      match text.[i] with
      | '"' ->
        Buffer.add_char buf '"';
        go (i + 1) (not in_quotes)
      | '\n' when not in_quotes ->
        incr line;
        push ();
        go (i + 1) false
      | '\r' when not in_quotes ->
        incr line;
        push ();
        if i + 1 < n && text.[i + 1] = '\n' then go (i + 2) false
        else go (i + 1) false
      | c ->
        if c = '\n' then incr line;
        Buffer.add_char buf c;
        go (i + 1) in_quotes
  in
  go 0 false

let load_relation ~rel ?arity text =
  let records =
    split_records text
    |> List.map (fun (ln, r) -> (ln, String.trim r))
    |> List.filter (fun (_, r) -> r <> "")
  in
  let rec loop acc width = function
    | [] -> Ok (List.rev acc)
    | (ln, record) :: rest -> (
      match parse_line record with
      | Error msg -> Error (Printf.sprintf "line %d: %s" ln msg)
      | Ok fields -> (
        let w = List.length fields in
        match width with
        | Some expected when expected <> w ->
          Error
            (Printf.sprintf "line %d: %d fields where %d were expected" ln w
               expected)
        | Some _ | None ->
          loop (Tuple.of_consts rel fields :: acc) (Some w) rest))
  in
  loop [] arity records

let load rels =
  List.fold_left
    (fun acc (rel, text) ->
      Result.bind acc (fun inst ->
          Result.map
            (fun tuples -> Instance.add_all tuples inst)
            (Result.map_error
               (fun msg -> rel ^ ": " ^ msg)
               (load_relation ~rel text))))
    (Ok Instance.empty) rels

let escape field =
  (* Quoting covers the separators, '\r' (which [String.trim] in the loader
     would otherwise strip from a record's ends) and boundary whitespace
     (ditto). The empty string is quoted so a record of empty fields is not
     mistaken for a blank line. *)
  let is_ws c = c = ' ' || c = '\t' in
  let needs_quoting =
    field = ""
    || is_ws field.[0]
    || is_ws field.[String.length field - 1]
    || String.exists
         (function ',' | '"' | '\n' | '\r' -> true | _ -> false)
         field
  in
  if not needs_quoting then field
  else begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv inst rel =
  Tuple.Set.fold
    (fun tu acc ->
      let line =
        Array.to_list tu.Tuple.values
        |> List.map (fun v -> escape (Value.to_string v))
        |> String.concat ","
      in
      line :: acc)
    (Instance.tuples_of inst rel)
    []
  |> List.rev |> String.concat "\n"
