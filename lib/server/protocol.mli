(** The NDJSON-RPC wire protocol of the mapping-selection service.

    One JSON object per line, both directions. A client sends {e calls} —

    {v
    {"id": "r1", "method": "ping"}
    {"id": "r2", "method": "solve",
     "params": {"solver": "greedy", "seed": 7,
                "scenario": "source relation s(a)\n..."}}
    v}

    — and the server answers each call with exactly one {e response} line
    carrying the echoed [id] and either a ["result"] object or a typed
    ["error"] object, possibly preceded by any number of ["progress"]
    notification lines for that [id]. Responses to different calls may
    interleave in any order; the [id] is the correlation key.

    {b Determinism contract}: the response body of a [solve] call (the
    ["result"]/["error"] member, [id] aside) is a pure function of the
    call's content — scenario, solver, seed, weights — never of arrival
    order, connection, batching, pool size or cache state. That is the
    engine's bit-identity contract surfaced at the wire, and
    [bin/serve_replay] holds the daemon to it byte-for-byte. Progress
    notifications and [stats] bodies are observational and exempt.

    This module is pure data and codecs: framing is {!Util.Json.parse_line},
    rendering is {!Util.Json.to_string}; sockets live in {!Server}. *)

type scenario =
  | Inline of string
      (** a {!Serialize.Document} in its textual format; candidates are
          generated Clio-style from the correspondences when the document
          lists no tgds (mirrors [cmd_select --file]) *)
  | File of string
      (** server-side path: a [*.scn] corpus entry ({!Fuzz.Corpus}) or a
          bare scenario document *)
  | Case_seed of int
      (** generate the scenario with {!Fuzz.Gen.case} — tiny request,
          full-size workload; the seed pins the content *)

type solve_params = {
  scenario : scenario;
  solver : string;  (** {!Core.Solver} registry name *)
  seed : int option;
  weights : Core.Problem.weights option;
      (** overrides the scenario's own weights (corpus entries and
          generated cases carry some); default [(1,1,1)] otherwise *)
  deadline_ms : float option;  (** overrides the server default *)
  progress : bool;  (** stream progress notifications for this call *)
}

type call =
  | Ping
  | Stats
  | Solve of solve_params
  | Compose of solve_params
      (** the mapping-algebra endpoint: resolve the scenario's hop chain
          (a multi-hop corpus entry, or a single hop for plain scenarios),
          compose it end-to-end with {!Algebra.compose_all}, solve the
          composed selection problem, and report the composed tgds next to
          the usual [solve] fields. Same params object as [solve]. *)
  | Shutdown  (** graceful: drain the queue, flush, exit *)

type request = {
  id : Util.Json.t;  (** [Str] or [Num], echoed verbatim; [Null] only in
                         error responses to unparseable calls *)
  call : call;
}

type error_kind =
  | Parse_error of { line : int; column : int }
      (** the frame was not valid JSON; positions from {!Util.Json} *)
  | Invalid_request  (** valid JSON, not a valid call envelope *)
  | Unknown_method of string
  | Unknown_solver of string
  | Solver_failure of string
      (** a registered solver refused the problem with a typed
          {!Core.Solver_error.Error} (e.g. [exact] past its candidate
          limit); carries the solver name *)
  | Bad_scenario  (** unparseable or unreadable scenario *)
  | Unsupported_case
      (** a [case_seed] that generates a SET COVER case — those exercise
          the Theorem 1 reduction, not the selection pipeline *)
  | Overloaded
      (** typed load-shedding: the admission queue is full; the
          connection stays open and the client may retry *)
  | Deadline_exceeded  (** still queued when the deadline passed *)
  | Shutting_down
  | Internal

type response =
  | Result of { id : Util.Json.t; body : Util.Json.t }
  | Error of { id : Util.Json.t; kind : error_kind; message : string }

val response_id : response -> Util.Json.t

val kind_label : error_kind -> string
(** The wire spelling, e.g. ["overloaded"]. *)

val parse_request : string -> (request, response) result
(** Decodes one frame. On failure the [Error] is the ready-to-send
    response: a {!Parse_error} (with the frame's line/column) when the
    frame is not JSON, an {!Invalid_request} or {!Unknown_method}
    (echoing the frame's [id] when one was recoverable) otherwise.
    Unknown [params] fields are rejected, not ignored — a typo'd
    ["seeed"] must not silently select a different problem. *)

val render_response : response -> string
(** One frame, no trailing newline. *)

val render_progress :
  id:Util.Json.t ->
  event:string ->
  ?name:string ->
  ?dur_ns:int64 ->
  unit ->
  string
(** A progress notification frame:
    [{"id": ..., "progress": {"event": E, "name"?: N, "dur_ns"?: D}}]. *)

val solve_key : ?meth:string -> solve_params -> string
(** Canonical digest of everything the response body may depend on
    (method, scenario source, solver, seed, weights — not [deadline_ms] or
    [progress]): the batching key. Equal keys are identical problems, so
    the scheduler sorts batches by it and the cache's single-flight
    selection tier coalesces equal keys onto one solver invocation.
    [meth] defaults to ["solve"]; pass ["compose"] for {!Compose} calls so
    the two methods never coalesce onto one response body. *)
