(** The daemon: socket accept/read/write event loop around one warm
    {!Engine.t}, one shared {!Parallel.Pool} and one bounded {!Batcher}.

    Concurrency model: a single dispatcher thread (the caller of {!serve})
    owns all socket IO through a [select] loop and is the only submitter
    of batches to the pool — compute parallelism lives in the pool
    workers, which touch connections only through the mutex-serialised
    per-connection writer. That shape keeps the determinism argument
    short: request bodies are computed by a deterministic engine, framed
    one per line, and correlated by id, so nothing the event loop does
    (arrival interleaving, batch boundaries, worker scheduling) can show
    up in response bytes.

    Lifecycle: [serve] blocks until stopped — by SIGTERM/SIGINT (handlers
    installed by [serve] set the stop flag; the loop notices via [EINTR]),
    by a [shutdown] call from any client, or by an external flip of the
    [stop] atomic (in-process tests). Stopping is graceful: the listener
    closes, every already-admitted job is solved and answered, then
    connections close, {!Cache.sync} re-persists any warm entries missing
    from the disk tier, the pool shuts down, and [serve] returns — so a
    normal [at_exit] telemetry flush still runs. Under SIGKILL the cache
    loses nothing either (entries persist as they complete); only the
    telemetry aggregate lines are lost. *)

type config = {
  endpoint : [ `Unix_socket of string | `Tcp of string * int ];
      (** a filesystem socket path (stale socket files are replaced) or a
          host/port to bind (port [0] binds an ephemeral port — see
          [on_ready]) *)
  jobs : int;  (** pool workers; [1] solves inline in the dispatcher *)
  queue : int;  (** admission-queue capacity; full ⇒ typed [overloaded] *)
  batch : int;  (** max calls drained into one scheduler round *)
  deadline_ms : float option;
      (** default per-call deadline; a call's own [deadline_ms] overrides *)
}

val serve :
  ?cache:Cache.t ->
  ?stop:bool Atomic.t ->
  ?on_ready:(Unix.sockaddr -> unit) ->
  config ->
  unit
(** Runs the daemon to completion. [cache] is the warm cache shared by
    every connection (fresh in-memory one when omitted). [on_ready] is
    called once with the bound address (the actual port for [Tcp (_, 0)])
    after [listen] succeeds — tests connect from its callback. Raises
    [Unix.Unix_error] only for startup failures (bind/listen); per-
    connection errors are contained. *)
