(* The request handler over one warm cache.

   Thread-safety: [handle] runs concurrently on pool workers. The cache is
   internally synchronised, the counters are atomics, and everything else
   here is per-call immutable data — so the engine needs no lock of its
   own. *)

module Json = Util.Json

type t = {
  cache : Cache.t;
  handled : int Atomic.t;
  solves : int Atomic.t;
  ok : int Atomic.t;
  errors : int Atomic.t;
}

type stats = { handled : int; solves : int; coalesced : int; errors : int }

let create ?cache () =
  let cache = match cache with Some c -> c | None -> Cache.create () in
  {
    cache;
    handled = Atomic.make 0;
    solves = Atomic.make 0;
    ok = Atomic.make 0;
    errors = Atomic.make 0;
  }

let cache t = t.cache

let stats (t : t) : stats =
  {
    handled = Atomic.get t.handled;
    solves = Atomic.get t.solves;
    coalesced = Stdlib.max 0 (Atomic.get t.ok - Atomic.get t.solves);
    errors = Atomic.get t.errors;
  }

let stats_body t ~extra =
  let s = stats t in
  let c = Cache.stats t.cache in
  Json.Obj
    ([
       ("requests", Json.Num (float_of_int s.handled));
       ("solves", Json.Num (float_of_int s.solves));
       ("coalesced", Json.Num (float_of_int s.coalesced));
       ("errors", Json.Num (float_of_int s.errors));
       ( "cache",
         Json.Obj
           [
             ("hits", Json.Num (float_of_int c.Cache.hits));
             ("misses", Json.Num (float_of_int c.Cache.misses));
             ("evictions", Json.Num (float_of_int c.Cache.evictions));
             ("capacity", Json.Num (float_of_int (Cache.capacity t.cache)));
           ] );
     ]
    @ extra)

(* --- scenario resolution ------------------------------------------------ *)

exception Fail of Protocol.error_kind * string

let fail kind fmt = Printf.ksprintf (fun m -> raise (Fail (kind, m))) fmt

type resolved = {
  source : Relational.Instance.t;
  j : Relational.Instance.t;
  candidates : Logic.Tgd.t list;
      (** the end-to-end pool: the scenario's own candidates for a
          single-hop scenario, [Algebra.compose_all hops] for a multi-hop
          one *)
  hops : Logic.Tgd.t list list;
      (** the hop chain behind [candidates]; a singleton for single-hop
          scenarios, so [compose] is total over every scenario kind *)
  scenario_weights : Core.Problem.weights;
}

let of_document doc =
  let candidates =
    match doc.Serialize.Document.tgds with
    | [] ->
      (* no explicit candidates: generate them Clio-style from the
         correspondences, exactly as cmd_select does *)
      Candgen.Generate.generate ~source:doc.Serialize.Document.source
        ~target:doc.Serialize.Document.target
        ~src_fkeys:doc.Serialize.Document.src_fkeys
        ~tgt_fkeys:doc.Serialize.Document.tgt_fkeys
        ~corrs:doc.Serialize.Document.correspondences
    | tgds -> tgds
  in
  {
    source = doc.Serialize.Document.instance_i;
    j = doc.Serialize.Document.instance_j;
    candidates;
    hops = [ candidates ];
    scenario_weights = Core.Problem.default_weights;
  }

let of_case ~what = function
  | Fuzz.Case.Mapping m ->
    {
      source = m.Fuzz.Case.source;
      j = m.Fuzz.Case.j;
      candidates = m.Fuzz.Case.candidates;
      hops = [ m.Fuzz.Case.candidates ];
      scenario_weights = m.Fuzz.Case.weights;
    }
  | Fuzz.Case.Multihop mh ->
    (* end-to-end view of the chain: select over the composed pool against
       the final observed instance *)
    let hops = List.map fst mh.Fuzz.Case.hops in
    {
      source = mh.Fuzz.Case.initial;
      j =
        (match List.rev mh.Fuzz.Case.hops with
        | (_, observed) :: _ -> observed
        | [] -> Relational.Instance.empty);
      candidates = Algebra.compose_all hops;
      hops;
      scenario_weights = mh.Fuzz.Case.hop_weights;
    }
  | Fuzz.Case.Setcover _ ->
    fail Protocol.Unsupported_case
      "%s is a SET COVER case; the service solves mapping selection" what

let resolve = function
  | Protocol.Inline text -> (
    match Serialize.Parser.parse text with
    | Ok doc -> of_document doc
    | Error e ->
      fail Protocol.Bad_scenario "scenario: %s"
        (Format.asprintf "%a" Serialize.Parser.pp_error e))
  | Protocol.File path when Filename.check_suffix path ".scn" -> (
    match Fuzz.Corpus.load path with
    | Ok entry -> of_case ~what:path entry.Fuzz.Corpus.case.Fuzz.Case.payload
    | Error msg -> fail Protocol.Bad_scenario "%s" msg)
  | Protocol.File path -> (
    match Serialize.Parser.parse_file path with
    | Ok doc -> of_document doc
    | Error e ->
      fail Protocol.Bad_scenario "%s: %s" path
        (Format.asprintf "%a" Serialize.Parser.pp_error e)
    | exception Sys_error msg -> fail Protocol.Bad_scenario "%s" msg)
  | Protocol.Case_seed seed ->
    let case = Fuzz.Gen.case ~seed in
    of_case
      ~what:(Printf.sprintf "case_seed %d (tag %s)" seed case.Fuzz.Case.tag)
      case.Fuzz.Case.payload

(* --- solving ------------------------------------------------------------ *)

let frac f =
  Json.Obj
    [
      ("num", Json.Num (float_of_int (Util.Frac.num f)));
      ("den", Json.Num (float_of_int (Util.Frac.den f)));
    ]

let emit progress ~event ?name ?dur_ns () =
  match progress with None -> () | Some p -> p ~event ?name ?dur_ns ()

(* The shared solve pipeline. [compose] calls report the hop chain and the
   composed pool next to the usual fields; their selection runs over the
   same end-to-end problem (for single-hop scenarios the composition of one
   mapping is the mapping itself, so [compose] is total). *)
let solve ?(compose = false) t ~progress (p : Protocol.solve_params) =
  let impl =
    match Core.Solver.find p.Protocol.solver with
    | Some s -> s
    | None ->
      fail (Protocol.Unknown_solver p.Protocol.solver)
        "unknown solver %S (known: %s)" p.Protocol.solver
        (String.concat ", " (Core.Solver.names ()))
  in
  emit progress ~event:"started" ();
  let r = resolve p.Protocol.scenario in
  let weights =
    match p.Protocol.weights with Some w -> w | None -> r.scenario_weights
  in
  let problem =
    Core.Problem.make ~weights ~cache:t.cache ~source:r.source ~j:r.j
      r.candidates
  in
  let digest = Core.Problem.digest problem in
  emit progress ~event:"resolved" ~name:digest ();
  let seed = p.Protocol.seed in
  let selection =
    try
      Cache.selection t.cache ~solver:(Core.Solver.name impl) ~seed
        ~problem_key:digest (fun () ->
          Atomic.incr t.solves;
          (Core.Solver.solve impl ?seed problem).Core.Solver.selection)
    with Core.Solver_error.Error { solver; reason } ->
      fail (Protocol.Solver_failure solver) "solver %s: %s" solver reason
  in
  let b = Core.Objective.breakdown problem selection in
  emit progress ~event:"done" ();
  let composed_fields =
    if not compose then []
    else
      [
        ("hops", Json.Num (float_of_int (List.length r.hops)));
        ( "composed",
          Json.List
            (List.map (fun c -> Json.Str (Logic.Tgd.to_string c)) r.candidates)
        );
      ]
  in
  Json.Obj
    (composed_fields
    @ [
        ("solver", Json.Str (Core.Solver.name impl));
        ("digest", Json.Str digest);
        ("candidates", Json.Num (float_of_int (Core.Problem.num_candidates problem)));
        ("tuples", Json.Num (float_of_int (Core.Problem.num_tuples problem)));
        ( "selection",
          Json.List
            (List.map
               (fun i -> Json.Num (float_of_int i))
               (Core.Problem.indices_of_selection selection)) );
        ( "objective",
          Json.Obj
            [
              ("total", frac b.Core.Objective.total);
              ("unexplained", frac b.Core.Objective.unexplained);
              ("errors", Json.Num (float_of_int b.Core.Objective.errors));
              ("size", Json.Num (float_of_int b.Core.Objective.size));
            ] );
      ])

let handle (t : t) ?progress (req : Protocol.request) =
  let id = req.Protocol.id in
  let answer ~compose p =
    Atomic.incr t.handled;
    let progress = if p.Protocol.progress then progress else None in
    match solve ~compose t ~progress p with
    | body ->
      Atomic.incr t.ok;
      Protocol.Result { id; body }
    | exception Fail (kind, message) ->
      Atomic.incr t.errors;
      Protocol.Error { id; kind; message }
    | exception exn ->
      Atomic.incr t.errors;
      Protocol.Error
        { id; kind = Protocol.Internal; message = Printexc.to_string exn }
  in
  match req.Protocol.call with
  | Protocol.Ping -> Protocol.Result { id; body = Json.Obj [ ("pong", Json.Bool true) ] }
  | Protocol.Stats -> Protocol.Result { id; body = stats_body t ~extra:[] }
  | Protocol.Shutdown ->
    Protocol.Result { id; body = Json.Obj [ ("stopping", Json.Bool true) ] }
  | Protocol.Solve p -> answer ~compose:false p
  | Protocol.Compose p -> answer ~compose:true p
