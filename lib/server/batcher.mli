(** The bounded admission queue between connection IO and the scheduler.

    Admission control is where load-shedding happens: a full queue makes
    {!try_add} return [false] and the server answers that call with a
    typed [overloaded] error instead of letting work pile up unboundedly
    (or, worse, dropping the connection). The queue is FIFO, so a drained
    batch preserves arrival order — the scheduler re-sorts by content key
    for cache locality but replies in arrival order. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val capacity : 'a t -> int

val length : 'a t -> int

val try_add : 'a t -> 'a -> bool
(** [false] when the queue is at capacity — the caller sheds the item. *)

val drain : max:int -> 'a t -> 'a list
(** Removes and returns up to [max] items in arrival order; [[]] when the
    queue is empty. Raises [Invalid_argument] when [max < 1]. *)
