(* Wire types and codecs for the NDJSON-RPC service. Pure: no sockets, no
   clocks — parse_request/render_response are total functions on frames,
   which is what lets the tests exercise the protocol without a server. *)

module Json = Util.Json

type scenario = Inline of string | File of string | Case_seed of int

type solve_params = {
  scenario : scenario;
  solver : string;
  seed : int option;
  weights : Core.Problem.weights option;
  deadline_ms : float option;
  progress : bool;
}

type call = Ping | Stats | Solve of solve_params | Compose of solve_params | Shutdown

type request = { id : Json.t; call : call }

type error_kind =
  | Parse_error of { line : int; column : int }
  | Invalid_request
  | Unknown_method of string
  | Unknown_solver of string
  | Solver_failure of string
  | Bad_scenario
  | Unsupported_case
  | Overloaded
  | Deadline_exceeded
  | Shutting_down
  | Internal

type response =
  | Result of { id : Json.t; body : Json.t }
  | Error of { id : Json.t; kind : error_kind; message : string }

let response_id = function Result { id; _ } -> id | Error { id; _ } -> id

let kind_label = function
  | Parse_error _ -> "parse_error"
  | Invalid_request -> "invalid_request"
  | Unknown_method _ -> "unknown_method"
  | Unknown_solver _ -> "unknown_solver"
  | Solver_failure _ -> "solver_error"
  | Bad_scenario -> "bad_scenario"
  | Unsupported_case -> "unsupported_case"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

(* --- decoding ----------------------------------------------------------- *)

let err ?(id = Json.Null) kind message = Error { id; kind; message }

(* A decoder that threads the request id (once recovered) into every
   subsequent error, so a malformed solve call still correlates. *)
exception Reject of response

let reject ?id kind message = raise (Reject (err ?id kind message))

let known_fields ?id ~where allowed = function
  | Json.Obj members ->
    List.iter
      (fun (k, _) ->
        if not (List.mem k allowed) then
          reject ?id Invalid_request
            (Printf.sprintf "unknown %s field %S" where k))
      members
  | _ -> reject ?id Invalid_request (Printf.sprintf "%s must be an object" where)

let field_int ?id ~where name j =
  Option.map
    (fun v ->
      match Json.to_int v with
      | Some i -> i
      | None -> reject ?id Invalid_request (Printf.sprintf "%s.%s must be an integer" where name))
    (Json.member name j)

let field_str ?id ~where name j =
  Option.map
    (fun v ->
      match Json.to_str v with
      | Some s -> s
      | None -> reject ?id Invalid_request (Printf.sprintf "%s.%s must be a string" where name))
    (Json.member name j)

let decode_weights ~id j =
  match Json.to_list j with
  | Some [ a; b; c ] -> (
    match (Json.to_int a, Json.to_int b, Json.to_int c) with
    | Some w1, Some w2, Some w3 when w1 > 0 && w2 > 0 && w3 > 0 ->
      { Core.Problem.w_unexplained = w1; w_errors = w2; w_size = w3 }
    | _ ->
      reject ~id Invalid_request "params.weights must be three positive integers")
  | _ -> reject ~id Invalid_request "params.weights must be [w1, w2, w3]"

(* Shared by [solve] and [compose]: both take the same params object (a
   scenario plus solver/seed/weights); they differ only in what the engine
   does with the resolved hops. *)
let decode_solve_params ~id params =
  let where = "params" in
  known_fields ~id ~where
    [ "scenario"; "file"; "case_seed"; "solver"; "seed"; "weights";
      "deadline_ms"; "progress" ]
    params;
  let scenario =
    match
      ( field_str ~id ~where "scenario" params,
        field_str ~id ~where "file" params,
        field_int ~id ~where "case_seed" params )
    with
    | Some text, None, None -> Inline text
    | None, Some path, None -> File path
    | None, None, Some seed -> Case_seed seed
    | None, None, None ->
      reject ~id Invalid_request
        "params needs a scenario: one of \"scenario\", \"file\", \"case_seed\""
    | _ ->
      reject ~id Invalid_request
        "params has more than one of \"scenario\", \"file\", \"case_seed\""
  in
  let solver =
    match field_str ~id ~where "solver" params with
    | Some s -> String.lowercase_ascii s
    | None -> reject ~id Invalid_request "params.solver is required"
  in
  let deadline_ms =
    Option.map
      (fun v ->
        match Json.to_float v with
        | Some f when Float.is_finite f && f > 0. -> f
        | _ ->
          reject ~id Invalid_request "params.deadline_ms must be a positive number")
      (Json.member "deadline_ms" params)
  in
  let progress =
    match Json.member "progress" params with
    | None -> false
    | Some v -> (
      match Json.to_bool v with
      | Some b -> b
      | None -> reject ~id Invalid_request "params.progress must be a boolean")
  in
  {
    scenario;
    solver;
    seed = field_int ~id ~where "seed" params;
    weights = Option.map (decode_weights ~id) (Json.member "weights" params);
    deadline_ms;
    progress;
  }

let decode_request j =
  known_fields ~where:"request" [ "id"; "method"; "params" ] j;
  let id =
    match Json.member "id" j with
    | Some (Json.Str _ as id) | Some (Json.Num _ as id) -> id
    | Some _ -> reject Invalid_request "id must be a string or a number"
    | None -> reject Invalid_request "id is required"
  in
  let meth =
    match field_str ~id ~where:"request" "method" j with
    | Some m -> m
    | None -> reject ~id Invalid_request "method is required"
  in
  let params = Json.member "params" j in
  let no_params () =
    match params with
    | None | Some (Json.Obj []) -> ()
    | Some _ ->
      reject ~id Invalid_request (Printf.sprintf "%s takes no params" meth)
  in
  let call =
    match meth with
    | "ping" -> no_params (); Ping
    | "stats" -> no_params (); Stats
    | "shutdown" -> no_params (); Shutdown
    | "solve" -> (
      match params with
      | Some p -> Solve (decode_solve_params ~id p)
      | None -> reject ~id Invalid_request "solve requires params")
    | "compose" -> (
      match params with
      | Some p -> Compose (decode_solve_params ~id p)
      | None -> reject ~id Invalid_request "compose requires params")
    | other -> reject ~id (Unknown_method other) (Printf.sprintf "unknown method %S" other)
  in
  { id; call }

let parse_request frame =
  match Json.parse_line frame with
  | Error e ->
    Result.Error
      (err (Parse_error { line = e.Json.line; column = e.Json.column })
         (Format.asprintf "%a" Json.pp_error e))
  | Ok j -> ( try Ok (decode_request j) with Reject resp -> Result.Error resp)

(* --- encoding ----------------------------------------------------------- *)

let render_response = function
  | Result { id; body } -> Json.to_string (Json.Obj [ ("id", id); ("result", body) ])
  | Error { id; kind; message } ->
    let position =
      match kind with
      | Parse_error { line; column } ->
        [ ("line", Json.Num (float_of_int line));
          ("column", Json.Num (float_of_int column)) ]
      | _ -> []
    in
    Json.to_string
      (Json.Obj
         [
           ("id", id);
           ( "error",
             Json.Obj
               ([ ("kind", Json.Str (kind_label kind)); ("message", Json.Str message) ]
               @ position) );
         ])

let render_progress ~id ~event ?name ?dur_ns () =
  let fields =
    [ ("event", Json.Str event) ]
    @ (match name with None -> [] | Some n -> [ ("name", Json.Str n) ])
    @
    match dur_ns with
    | None -> []
    | Some d -> [ ("dur_ns", Json.Num (Int64.to_float d)) ]
  in
  Json.to_string (Json.Obj [ ("id", id); ("progress", Json.Obj fields) ])

(* --- batching key ------------------------------------------------------- *)

let solve_key ?(meth = "solve") p =
  let scenario_parts =
    match p.scenario with
    | Inline text -> [ "inline"; text ]
    | File path -> [ "file"; path ]
    | Case_seed seed -> [ "case"; string_of_int seed ]
  in
  let seed = match p.seed with None -> "_" | Some s -> string_of_int s in
  let weights =
    match p.weights with
    | None -> "_"
    | Some w ->
      Printf.sprintf "%d.%d.%d" w.Core.Problem.w_unexplained w.Core.Problem.w_errors
        w.Core.Problem.w_size
  in
  (* the method is part of the key: a [compose] and a [solve] over identical
     params have different response bodies, so they must never coalesce *)
  Cache.Key.digest (("serve" :: meth :: scenario_parts) @ [ p.solver; seed; weights ])
