(* The NDJSON-RPC event loop.

   One dispatcher, many workers: this module's functions all run on the
   caller's thread except [send], which pool workers invoke through
   Scheduler jobs — hence the per-connection write mutex and the [alive]
   flag it guards (a worker must never write to a file descriptor the
   dispatcher has already closed and the OS may have reused). *)

type config = {
  endpoint : [ `Unix_socket of string | `Tcp of string * int ];
  jobs : int;
  queue : int;
  batch : int;
  deadline_ms : float option;
}

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  wlock : Mutex.t;
  mutable alive : bool;
}

(* --- connection writer (worker-safe) ------------------------------------ *)

let rec write_all fd bytes off len =
  if len > 0 then
    match Unix.write fd bytes off len with
    | n -> write_all fd bytes (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd bytes off len
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* the peer is slow; block this worker until the socket drains *)
      (try ignore (Unix.select [] [ fd ] [] 1.0) with
      | Unix.Unix_error (Unix.EINTR, _, _) -> ());
      write_all fd bytes off len

let send conn line =
  Mutex.lock conn.wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.wlock)
    (fun () ->
      if conn.alive then
        let payload = Bytes.of_string (line ^ "\n") in
        try write_all conn.fd payload 0 (Bytes.length payload) with
        | Unix.Unix_error
            ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN), _, _)
          ->
          (* peer went away mid-reply; drop the rest of this conn's output *)
          conn.alive <- false)

(* --- listener ----------------------------------------------------------- *)

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found ->
      raise (Unix.Unix_error (Unix.EINVAL, "gethostbyname", host)))

let listen_on = function
  | `Unix_socket path ->
    (match (Unix.stat path).Unix.st_kind with
    | Unix.S_SOCK -> Unix.unlink path (* stale socket from a previous run *)
    | _ -> ()
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    fd
  | `Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
    Unix.listen fd 64;
    fd

(* --- request admission -------------------------------------------------- *)

let overloaded id =
  Protocol.Error
    {
      id;
      kind = Protocol.Overloaded;
      message = "admission queue full; retry";
    }

let shutting_down id =
  Protocol.Error
    {
      id;
      kind = Protocol.Shutting_down;
      message = "server is draining; no new work accepted";
    }

type state = {
  engine : Engine.t;
  pool : Parallel.Pool.t;
  batcher : Scheduler.job Batcher.t;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  stop : bool Atomic.t;
  config : config;
}

let admit st conn (req : Protocol.request) ~key (p : Protocol.solve_params) =
  if Atomic.get st.stop then send conn (Protocol.render_response (shutting_down req.Protocol.id))
  else begin
    let deadline_at_ns =
      match (p.Protocol.deadline_ms, st.config.deadline_ms) with
      | None, None -> None
      | d, default ->
        let ms = Option.value d ~default:(Option.get default) in
        Some
          (Int64.add (Util.Timer.now_ns ())
             (Int64.of_float (ms *. 1_000_000.)))
    in
    let job =
      {
        Scheduler.key;
        request = req;
        send = send conn;
        deadline_at_ns;
      }
    in
    if Batcher.try_add st.batcher job then begin
      if p.Protocol.progress then
        send conn (Protocol.render_progress ~id:req.Protocol.id ~event:"queued" ())
    end
    else send conn (Protocol.render_response (overloaded req.Protocol.id))
  end

let process_line st conn line =
  if String.trim line <> "" then
    match Protocol.parse_request line with
    | Error resp -> send conn (Protocol.render_response resp)
    | Ok req -> (
      match req.Protocol.call with
      | Protocol.Solve p -> admit st conn req ~key:(Protocol.solve_key p) p
      | Protocol.Compose p ->
        admit st conn req ~key:(Protocol.solve_key ~meth:"compose" p) p
      | Protocol.Stats ->
        let extra =
          [
            ("queue", Util.Json.Num (float_of_int (Batcher.length st.batcher)));
            ( "connections",
              Util.Json.Num (float_of_int (Hashtbl.length st.conns)) );
            ("jobs", Util.Json.Num (float_of_int (Parallel.Pool.jobs st.pool)));
          ]
        in
        send conn
          (Protocol.render_response
             (Protocol.Result
                {
                  id = req.Protocol.id;
                  body = Engine.stats_body st.engine ~extra;
                }))
      | Protocol.Ping ->
        send conn (Protocol.render_response (Engine.handle st.engine req))
      | Protocol.Shutdown ->
        send conn (Protocol.render_response (Engine.handle st.engine req));
        Atomic.set st.stop true)

(* --- reading ------------------------------------------------------------ *)

let close_conn st conn =
  Mutex.lock conn.wlock;
  conn.alive <- false;
  Mutex.unlock conn.wlock;
  Hashtbl.remove st.conns conn.fd;
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* Splits off every complete frame in the connection buffer, leaving the
   trailing partial line (if any) buffered. *)
let drain_frames st conn =
  let data = Buffer.contents conn.inbuf in
  let n = String.length data in
  let start = ref 0 in
  (try
     while !start < n do
       match String.index_from data !start '\n' with
       | nl ->
         process_line st conn (String.sub data !start (nl - !start));
         start := nl + 1
       | exception Not_found -> raise Exit
     done
   with Exit -> ());
  Buffer.clear conn.inbuf;
  Buffer.add_substring conn.inbuf data !start (n - !start)

let read_conn st conn =
  let chunk = Bytes.create 4096 in
  let rec loop () =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | 0 -> close_conn st conn
    | n ->
      Buffer.add_subbytes conn.inbuf chunk 0 n;
      loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_conn st conn
  in
  loop ();
  if Hashtbl.mem st.conns conn.fd then drain_frames st conn

let accept_loop st listen_fd =
  let rec loop () =
    match Unix.accept ~cloexec:true listen_fd with
    | fd, _ ->
      Unix.set_nonblock fd;
      Hashtbl.replace st.conns fd
        { fd; inbuf = Buffer.create 256; wlock = Mutex.create (); alive = true };
      loop ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> loop ()
  in
  loop ()

(* --- main loop ---------------------------------------------------------- *)

let install_signals stop =
  let request_stop = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
  List.iter
    (fun signal ->
      try Sys.set_signal signal request_stop
      with Invalid_argument _ | Sys_error _ -> ())
    [ Sys.sigterm; Sys.sigint ];
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let run_pending st =
  match Batcher.drain ~max:st.config.batch st.batcher with
  | [] -> ()
  | jobs -> Scheduler.run_batch st.engine ~pool:st.pool jobs

let serve ?cache ?(stop = Atomic.make false) ?on_ready config =
  if config.jobs < 1 then invalid_arg "Daemon.serve: jobs < 1";
  if config.batch < 1 then invalid_arg "Daemon.serve: batch < 1";
  Scheduler.install_tap ();
  install_signals stop;
  let engine = Engine.create ?cache () in
  let pool = Parallel.Pool.create ~jobs:config.jobs () in
  let st =
    {
      engine;
      pool;
      batcher = Batcher.create ~capacity:config.queue;
      conns = Hashtbl.create 16;
      stop;
      config;
    }
  in
  let listen_fd = listen_on config.endpoint in
  Unix.set_nonblock listen_fd;
  Option.iter (fun f -> f (Unix.getsockname listen_fd)) on_ready;
  while not (Atomic.get stop) do
    let timeout = if Batcher.length st.batcher > 0 then 0. else 0.2 in
    let fds = listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) st.conns [] in
    (match Unix.select fds [] [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, _, _ ->
      List.iter
        (fun fd ->
          if fd = listen_fd then accept_loop st listen_fd
          else
            match Hashtbl.find_opt st.conns fd with
            | Some conn -> read_conn st conn
            | None -> ())
        readable);
    run_pending st
  done;
  (* graceful drain: answer everything already admitted, then tear down *)
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  while Batcher.length st.batcher > 0 do
    run_pending st
  done;
  let open_conns = Hashtbl.fold (fun _ conn acc -> conn :: acc) st.conns [] in
  List.iter (close_conn st) open_conns;
  (match config.endpoint with
  | `Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
  | `Tcp _ -> ());
  Cache.sync (Engine.cache engine);
  Parallel.Pool.shutdown pool
