(** The warm solving engine behind the daemon: one shared {!Cache.t}, the
    scenario resolver, and the request handler.

    [handle] is deterministic in the request content: the response body of
    a [solve] call depends only on (scenario, solver, seed, weights) —
    never on cache state, concurrency or call order. The cache can only
    change {e how fast} the answer arrives, because every solver in the
    registry is deterministic in [(problem, seed)] and the cache's
    selection tier is keyed by the full {!Core.Problem.digest}.

    Coalescing accounting: [solves] counts actual solver invocations (the
    compute closures the cache actually ran), so for [n] concurrent
    requests with equal content the engine reports [solves = 1] and
    [coalesced = n - 1] — the cache's single-flight lookup ran one
    computation and parked the rest. *)

type t

type stats = {
  handled : int;  (** [solve] requests answered (errors included) *)
  solves : int;  (** solver invocations actually executed *)
  coalesced : int;
      (** successful [solve] responses served without a solver invocation
          (single-flight waiters and warm selection-tier hits) *)
  errors : int;  (** [solve] requests answered with a typed error *)
}

val create : ?cache:Cache.t -> unit -> t
(** A fresh engine. [cache] is the shared warm cache (its disk tier, if
    any, survives restarts); an in-memory cache of default capacity is
    created when omitted. *)

val cache : t -> Cache.t

val stats : t -> stats

val stats_body : t -> extra:(string * Util.Json.t) list -> Util.Json.t
(** The [stats] response body: engine counters plus the cache's
    hit/miss/eviction totals, with [extra] server-level fields (queue
    depth, connections, jobs) appended. *)

val handle :
  t ->
  ?progress:(event:string -> ?name:string -> ?dur_ns:int64 -> unit -> unit) ->
  Protocol.request ->
  Protocol.response
(** Answers one request. Never raises: scenario and solver problems map to
    their typed {!Protocol.error_kind}s and anything unexpected to
    [Internal]. [progress] (only invoked for [solve] calls that asked for
    it) receives lifecycle events — [queued] is the server's, the engine
    emits [started], [resolved] (with the problem digest as [name]) and
    [done]; span-derived events are routed by the scheduler, not here. *)
