(* Batch fan-out.

   Progress routing: Telemetry's span tap reports (domain, name, dur) on
   every span close. One domain runs one request at a time, so a
   domain-indexed table of emitters attributes each close to the in-flight
   request of that domain; workers register themselves around the engine
   call. The table is shared mutable state touched from workers —
   mutex-protected, and the emitter itself sends through the job's
   (already serialised) connection writer. *)

type job = {
  key : string;
  request : Protocol.request;
  send : string -> unit;
  deadline_at_ns : int64 option;
}

let routes : (int, string -> int64 -> unit) Hashtbl.t = Hashtbl.create 16

let routes_lock = Mutex.create ()

let with_routes f =
  Mutex.lock routes_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock routes_lock) f

let tap ~domain ~name ~dur_ns =
  match with_routes (fun () -> Hashtbl.find_opt routes domain) with
  | Some emit -> emit name dur_ns
  | None -> ()

let tap_installed = Atomic.make false

let install_tap () =
  if not (Atomic.exchange tap_installed true) then
    Telemetry.set_span_tap (Some tap)

let wants_progress job =
  match job.request.Protocol.call with
  | Protocol.Solve p | Protocol.Compose p -> p.Protocol.progress
  | _ -> false

let run_job engine job =
  let id = job.request.Protocol.id in
  let progress ~event ?name ?dur_ns () =
    job.send (Protocol.render_progress ~id ~event ?name ?dur_ns ())
  in
  let routed = wants_progress job in
  let domain = (Domain.self () :> int) in
  if routed then
    with_routes (fun () ->
        Hashtbl.replace routes domain (fun name dur_ns ->
            progress ~event:"span" ~name ~dur_ns ()));
  Fun.protect
    ~finally:(fun () ->
      if routed then with_routes (fun () -> Hashtbl.remove routes domain))
    (fun () -> Engine.handle engine ~progress job.request)

let run_batch engine ~pool jobs =
  let now = Util.Timer.now_ns () in
  let expired, live =
    List.partition
      (fun job ->
        match job.deadline_at_ns with
        | Some d -> Int64.compare d now < 0
        | None -> false)
      jobs
  in
  List.iter
    (fun job ->
      job.send
        (Protocol.render_response
           (Protocol.Error
              {
                id = job.request.Protocol.id;
                kind = Protocol.Deadline_exceeded;
                message = "deadline passed while queued";
              })))
    expired;
  (* Sort by content key (ties keep arrival order) so identical requests
     are adjacent for the cache's single-flight tier; remember arrival
     positions to reply in arrival order. *)
  let indexed = Array.of_list (List.mapi (fun i job -> (i, job)) live) in
  let sorted = Array.copy indexed in
  Array.sort
    (fun (i, a) (j, b) ->
      match String.compare a.key b.key with 0 -> compare i j | c -> c)
    sorted;
  let responses =
    Parallel.Pool.parallel_map pool
      (fun (i, job) -> (i, Protocol.render_response (run_job engine job)))
      sorted
  in
  Array.sort (fun (i, _) (j, _) -> compare i j) responses;
  Array.iter
    (fun (i, line) ->
      let _, job = indexed.(i) in
      job.send line)
    responses
