(** Batch execution: content-sorted fan-out of queued solve calls onto the
    shared {!Parallel.Pool}, with deadline enforcement and span-derived
    progress routing.

    The dispatcher (the server's event loop) drains the {!Batcher} and
    hands each batch here. The batch is sorted by {!Protocol.solve_key}
    before fan-out so that requests with identical content land adjacent:
    concurrent duplicates coalesce on the cache's single-flight selection
    tier (one solver invocation, the rest park on it), and already-warm
    keys hit without recomputation. Sorting affects scheduling only —
    responses are written in arrival order, and every response body is a
    pure function of its request's content, so arrival order, sort order
    and pool size are all unobservable in the bytes. *)

type job = {
  key : string;  (** {!Protocol.solve_key} of the request *)
  request : Protocol.request;
  send : string -> unit;
      (** writes one frame to the requesting connection; must be safe to
          call from pool workers (the server's per-connection writes are
          mutex-serialised) and must swallow writes to a dead peer *)
  deadline_at_ns : int64 option;
      (** absolute monotonic deadline ({!Util.Timer.now_ns} scale) *)
}

val install_tap : unit -> unit
(** Installs the process-global {!Telemetry.set_span_tap} listener that
    forwards span closes as [progress] notifications to whichever request
    the closing domain is currently running (idempotent; a no-op source of
    events while no batch runs or telemetry is disabled). *)

val run_batch : Engine.t -> pool:Parallel.Pool.t -> job list -> unit
(** Executes one drained batch: jobs whose deadline already passed are
    answered with [deadline_exceeded] without solving; the rest are sorted
    by [key], solved on the pool, and their responses sent in arrival
    order. Never raises. Intended to be called from a single dispatcher
    (responses ordering is per-batch). *)
