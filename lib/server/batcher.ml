(* A mutex-protected bounded FIFO. No condition variable: the server's
   event loop polls between select rounds, so nobody ever blocks here. *)

type 'a t = { capacity : int; queue : 'a Queue.t; lock : Mutex.t }

let create ~capacity =
  if capacity < 1 then invalid_arg "Batcher.create: capacity < 1";
  { capacity; queue = Queue.create (); lock = Mutex.create () }

let capacity t = t.capacity

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let length t = locked t (fun () -> Queue.length t.queue)

let try_add t x =
  locked t (fun () ->
      if Queue.length t.queue >= t.capacity then false
      else (
        Queue.add x t.queue;
        true))

let drain ~max t =
  if max < 1 then invalid_arg "Batcher.drain: max < 1";
  locked t (fun () ->
      let rec take n acc =
        if n = 0 || Queue.is_empty t.queue then List.rev acc
        else take (n - 1) (Queue.pop t.queue :: acc)
      in
      take max [])
