(* Spawn-once worker domains around a single locked queue of thunks. Each
   batch (one [parallel_map] call) tracks its own completion under its own
   mutex, so concurrent batches from different domains could share the pool;
   the queue mutex is only ever held for a push/pop. *)

type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable workers : unit Domain.t list;
  mutable closed : bool;
}

(* Marks pool workers so nested batch operations run inline instead of
   queueing sub-tasks their own worker would then deadlock waiting on. *)
let worker_key = Domain.DLS.new_key (fun () -> false)

let on_worker () = Domain.DLS.get worker_key

let default_jobs () =
  match Sys.getenv_opt "PARALLEL_JOBS" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> j
    | Some _ | None ->
      invalid_arg
        (Printf.sprintf "PARALLEL_JOBS must be a positive integer, got %S" s))

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.closed do
    Condition.wait pool.nonempty pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex (* closed *)
  else begin
    let task = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    task ();
    worker_loop pool
  end

let create ?jobs () =
  let jobs =
    match jobs with
    | None -> default_jobs ()
    | Some j when j >= 1 -> j
    | Some j -> invalid_arg (Printf.sprintf "Parallel.Pool.create: jobs = %d" j)
  in
  let pool =
    {
      jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      workers = [];
      closed = false;
    }
  in
  if jobs > 1 then
    pool.workers <-
      List.init jobs (fun _ ->
          Domain.spawn (fun () ->
              Domain.DLS.set worker_key true;
              worker_loop pool));
  pool

let jobs pool = pool.jobs

let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.closed then Mutex.unlock pool.mutex
  else begin
    pool.closed <- true;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mutex;
    List.iter Domain.join pool.workers;
    pool.workers <- []
  end

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Per-batch completion state. [error] keeps the failure from the
   lowest-index chunk; since chunks are contiguous and each chunk stops at
   its first failing element, that is exactly the exception a sequential
   left-to-right run would have raised. *)
type batch = {
  b_mutex : Mutex.t;
  b_finished : Condition.t;
  mutable b_pending : int;
  mutable b_error : (int * exn * Printexc.raw_backtrace) option;
}

(* Runs [run_one i] for all [i] in [0, n) on the pool, [chunk] indices per
   queued task. Blocks until the batch completes; re-raises the
   deterministically-first error, if any. *)
let run_batch pool ~n ~chunk run_one =
  let nchunks = (n + chunk - 1) / chunk in
  let b =
    {
      b_mutex = Mutex.create ();
      b_finished = Condition.create ();
      b_pending = nchunks;
      b_error = None;
    }
  in
  let chunk_task ci () =
    (* A recorded error from an earlier chunk makes this chunk's results
       unobservable (the batch will re-raise), so skip the work; a recorded
       error from a LATER chunk must not cancel us — an earlier chunk may
       still fail and must win the tie-break. *)
    let cancelled =
      Mutex.lock b.b_mutex;
      let c =
        match b.b_error with Some (cj, _, _) -> cj < ci | None -> false
      in
      Mutex.unlock b.b_mutex;
      c
    in
    (if not cancelled then
       try
         let hi = Stdlib.min n ((ci + 1) * chunk) in
         for i = ci * chunk to hi - 1 do
           run_one i
         done
       with exn ->
         let bt = Printexc.get_raw_backtrace () in
         Mutex.lock b.b_mutex;
         (match b.b_error with
         | Some (cj, _, _) when cj <= ci -> ()
         | Some _ | None -> b.b_error <- Some (ci, exn, bt));
         Mutex.unlock b.b_mutex);
    Mutex.lock b.b_mutex;
    b.b_pending <- b.b_pending - 1;
    if b.b_pending = 0 then Condition.signal b.b_finished;
    Mutex.unlock b.b_mutex
  in
  Mutex.lock pool.mutex;
  if pool.closed then begin
    Mutex.unlock pool.mutex;
    invalid_arg "Parallel.Pool: batch submitted to a shut-down pool"
  end;
  for ci = 0 to nchunks - 1 do
    Queue.add (chunk_task ci) pool.queue
  done;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.mutex;
  Mutex.lock b.b_mutex;
  while b.b_pending > 0 do
    Condition.wait b.b_finished b.b_mutex
  done;
  let error = b.b_error in
  Mutex.unlock b.b_mutex;
  match error with
  | None -> ()
  | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt

(* The sequential oracle path: strict left-to-right evaluation, so the
   first failing element raises — matching the parallel tie-break. *)
let sequential_map f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f xs.(0)) in
    for i = 1 to n - 1 do
      out.(i) <- f xs.(i)
    done;
    out
  end

(* Batches and tasks are counted here — before the sequential/pooled split
   and per logical work item, never per chunk — so the totals are a pure
   function of the submitted work, identical for every pool size. *)
let batches_counter = Telemetry.Counter.make "pool.batches"

let tasks_counter = Telemetry.Counter.make "pool.tasks"

let parallel_map ?chunk pool f xs =
  Telemetry.with_span "pool.batch" @@ fun () ->
  let n = Array.length xs in
  Telemetry.Counter.incr batches_counter;
  Telemetry.Counter.add tasks_counter n;
  if n = 0 then [||]
  else if pool.jobs <= 1 || on_worker () then sequential_map f xs
  else begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some c -> invalid_arg (Printf.sprintf "Parallel.Pool: chunk = %d" c)
      | None ->
        (* quarter shares keep workers busy when task durations vary *)
        Stdlib.max 1 ((n + (4 * pool.jobs) - 1) / (4 * pool.jobs))
    in
    let results = Array.make n None in
    run_batch pool ~n ~chunk (fun i -> results.(i) <- Some (f xs.(i)));
    Array.map
      (function Some v -> v | None -> assert false (* batch completed *))
      results
  end

let parallel_map_list ?chunk pool f xs =
  Array.to_list (parallel_map ?chunk pool f (Array.of_list xs))

let parallel_map_reduce ?chunk pool ~map ~combine ~init xs =
  Array.fold_left combine init (parallel_map ?chunk pool map xs)
