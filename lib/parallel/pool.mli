(** A reusable pool of worker domains with deterministic batch operations.

    Workers are spawned once at {!create} and reused across every batch, so
    fanning out many small batches (one per solver restart, per experiment
    seed, per registry entry) costs no domain churn. Work is submitted as
    contiguous index chunks through a [Mutex]/[Condition]-protected queue —
    no dependencies beyond the OCaml 5 stdlib and the (zero-dependency)
    [Telemetry] layer, which observes each batch as a [pool.batch] span and
    counts batches/tasks per logical work item, before the
    sequential/pooled split — so counter totals never depend on the pool
    size.

    {2 Determinism contract}

    Parallel results are bit-identical to sequential ones, for any pool size
    and chunking:

    - tasks must be pure functions of their input (give each task an
      explicit seed via {!Seed.derive} instead of sharing a [Random.State]);
    - every result is stored at its input's index, so completion order is
      irrelevant;
    - {!parallel_map_reduce} runs [combine] in the calling domain, strictly
      in index order — never as a scheduling-dependent tree — so even
      non-associative combines are deterministic;
    - when several tasks raise, the exception that propagates is the one the
      sequential run would have hit first (lowest index), making failure
      behaviour reproducible too.

    A pool of [jobs <= 1] spawns no domains and runs every batch inline in
    the caller — that sequential path is the test oracle the qcheck suite
    compares against. *)

type t

val default_jobs : unit -> int
(** The [PARALLEL_JOBS] environment variable when set (must be a positive
    integer), otherwise [Domain.recommended_domain_count ()]. *)

val create : ?jobs : int -> unit -> t
(** [create ~jobs ()] spawns [jobs] worker domains ([default_jobs ()] when
    omitted; no domains at all for [jobs <= 1]). Raises [Invalid_argument]
    on [jobs < 1]. *)

val jobs : t -> int

val on_worker : unit -> bool
(** Whether the calling domain is a pool worker. Batch operations invoked
    from inside a worker run inline (sequentially) instead of re-entering
    the queue, so nested parallelism degrades gracefully rather than
    deadlocking. *)

val parallel_map : ?chunk : int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f xs] is [Array.map f xs], with elements evaluated on
    the workers. [chunk] elements are grouped per queued task (default: a
    quarter of an even share per worker, at least 1) — chunking affects only
    scheduling granularity, never results. If any [f] raises, outstanding
    chunks are cancelled and the lowest-index exception is re-raised in the
    caller with its backtrace. *)

val parallel_map_list : ?chunk : int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** List counterpart of {!parallel_map}. *)

val parallel_map_reduce :
  ?chunk : int ->
  t ->
  map : ('a -> 'b) ->
  combine : ('acc -> 'b -> 'acc) ->
  init : 'acc ->
  'a array ->
  'acc
(** [parallel_map_reduce pool ~map ~combine ~init xs] maps on the workers,
    then folds [combine] over the results in the calling domain in index
    order — exactly [Array.fold_left combine init (Array.map map xs)]. *)

val shutdown : t -> unit
(** Signals the workers to exit and joins them. Idempotent; subsequent batch
    submissions raise [Invalid_argument]. *)

val with_pool : ?jobs : int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] on a fresh pool and shuts it down afterwards,
    also on exception. *)
