(* SplitMix64's finalizer (Steele et al., "Fast splittable pseudorandom
   number generators"): two xor-shift-multiply rounds give full avalanche,
   so consecutive task indices yield statistically independent seeds. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let derive base i =
  if i < 0 then invalid_arg "Parallel.Seed.derive: negative task index"
  else if i = 0 then base
  else
    let z =
      Int64.add (Int64.mul (Int64.of_int base) 0x9e3779b97f4a7c15L) (Int64.of_int i)
    in
    Int64.to_int (mix64 z) land max_int
