(** Deterministic RNG seed splitting for parallel fan-out.

    A parallel batch must not share one [Random.State] between tasks — the
    interleaving of draws would depend on scheduling. Instead every task
    receives its own seed, derived from the batch seed and the task index by
    a fixed bijective mixing function, so the set of per-task streams is a
    pure function of [(base, index)] and parallel runs reproduce sequential
    ones bit for bit. *)

val derive : int -> int -> int
(** [derive base i] is the seed for task [i] of a batch seeded with [base].

    [derive base 0 = base] — the first task keeps the caller's seed, so a
    one-task batch behaves exactly like the pre-existing sequential code
    path. For [i > 0] the seed is a SplitMix64-style hash of [(base, i)]
    (golden-ratio increment, two xor-shift-multiply rounds), truncated to a
    non-negative OCaml [int]. Raises [Invalid_argument] on negative [i]. *)
