open Relational
open Logic

type mapping = {
  source : Instance.t;
  j : Instance.t;
  candidates : Tgd.t list;
  weights : Core.Problem.weights;
}

type payload =
  | Mapping of mapping
  | Setcover of Core.Setcover.instance

type t = {
  seed : int;
  tag : string;
  payload : payload;
}

let problem ?cache m =
  Core.Problem.make ?cache ~weights:m.weights ~source:m.source ~j:m.j
    m.candidates

let num_candidates t =
  match t.payload with
  | Mapping m -> List.length m.candidates
  | Setcover s -> List.length s.Core.Setcover.sets

let num_tuples t =
  match t.payload with
  | Mapping m -> Instance.cardinal m.source + Instance.cardinal m.j
  | Setcover s -> List.length s.Core.Setcover.universe

let weights_equal (a : Core.Problem.weights) (b : Core.Problem.weights) =
  a.Core.Problem.w_unexplained = b.Core.Problem.w_unexplained
  && a.Core.Problem.w_errors = b.Core.Problem.w_errors
  && a.Core.Problem.w_size = b.Core.Problem.w_size

let equal a b =
  a.seed = b.seed && a.tag = b.tag
  &&
  match a.payload, b.payload with
  | Mapping ma, Mapping mb ->
    Instance.equal ma.source mb.source
    && Instance.equal ma.j mb.j
    && List.length ma.candidates = List.length mb.candidates
    && List.for_all2
         (fun (x : Tgd.t) (y : Tgd.t) ->
           x.Tgd.label = y.Tgd.label && Tgd.equal x y)
         ma.candidates mb.candidates
    && weights_equal ma.weights mb.weights
  | Setcover sa, Setcover sb -> sa = sb
  | Mapping _, Setcover _ | Setcover _, Mapping _ -> false

let pp ppf t =
  match t.payload with
  | Mapping m ->
    Format.fprintf ppf
      "@[<h>%s (seed %d): %d candidates, %d source + %d target tuples@]" t.tag
      t.seed (List.length m.candidates)
      (Instance.cardinal m.source)
      (Instance.cardinal m.j)
  | Setcover s ->
    Format.fprintf ppf
      "@[<h>%s (seed %d): %d sets over %d elements, budget %d@]" t.tag t.seed
      (List.length s.Core.Setcover.sets)
      (List.length s.Core.Setcover.universe)
      s.Core.Setcover.budget
