open Relational
open Logic

type mapping = {
  source : Instance.t;
  j : Instance.t;
  candidates : Tgd.t list;
  weights : Core.Problem.weights;
}

type multihop = {
  initial : Instance.t;
  hops : (Tgd.t list * Instance.t) list;
  hop_weights : Core.Problem.weights;
}

type payload =
  | Mapping of mapping
  | Setcover of Core.Setcover.instance
  | Multihop of multihop

type t = {
  seed : int;
  tag : string;
  payload : payload;
}

let problem ?cache m =
  Core.Problem.make ?cache ~weights:m.weights ~source:m.source ~j:m.j
    m.candidates

(* The end-to-end selection problem of a multi-hop case: candidates are the
   composed hop pools, the data example is (initial, last observed). *)
let multihop_problem ?cache mh =
  let composed = Algebra.compose_all (List.map fst mh.hops) in
  let j =
    match List.rev mh.hops with
    | (_, observed) :: _ -> observed
    | [] -> Instance.empty
  in
  Core.Problem.make ?cache ~weights:mh.hop_weights ~source:mh.initial ~j
    composed

let num_candidates t =
  match t.payload with
  | Mapping m -> List.length m.candidates
  | Setcover s -> List.length s.Core.Setcover.sets
  | Multihop mh ->
    List.fold_left (fun n (tgds, _) -> n + List.length tgds) 0 mh.hops

let num_tuples t =
  match t.payload with
  | Mapping m -> Instance.cardinal m.source + Instance.cardinal m.j
  | Setcover s -> List.length s.Core.Setcover.universe
  | Multihop mh ->
    List.fold_left
      (fun n (_, observed) -> n + Instance.cardinal observed)
      (Instance.cardinal mh.initial)
      mh.hops

let weights_equal (a : Core.Problem.weights) (b : Core.Problem.weights) =
  a.Core.Problem.w_unexplained = b.Core.Problem.w_unexplained
  && a.Core.Problem.w_errors = b.Core.Problem.w_errors
  && a.Core.Problem.w_size = b.Core.Problem.w_size

let equal a b =
  a.seed = b.seed && a.tag = b.tag
  &&
  match a.payload, b.payload with
  | Mapping ma, Mapping mb ->
    Instance.equal ma.source mb.source
    && Instance.equal ma.j mb.j
    && List.length ma.candidates = List.length mb.candidates
    && List.for_all2
         (fun (x : Tgd.t) (y : Tgd.t) ->
           x.Tgd.label = y.Tgd.label && Tgd.equal x y)
         ma.candidates mb.candidates
    && weights_equal ma.weights mb.weights
  | Setcover sa, Setcover sb -> sa = sb
  | Multihop ma, Multihop mb ->
    Instance.equal ma.initial mb.initial
    && weights_equal ma.hop_weights mb.hop_weights
    && List.length ma.hops = List.length mb.hops
    && List.for_all2
         (fun (ta, oa) (tb, ob) ->
           Instance.equal oa ob
           && List.length ta = List.length tb
           && List.for_all2
                (fun (x : Tgd.t) (y : Tgd.t) ->
                  x.Tgd.label = y.Tgd.label && Tgd.equal x y)
                ta tb)
         ma.hops mb.hops
  | (Mapping _ | Setcover _ | Multihop _), _ -> false

let pp ppf t =
  match t.payload with
  | Mapping m ->
    Format.fprintf ppf
      "@[<h>%s (seed %d): %d candidates, %d source + %d target tuples@]" t.tag
      t.seed (List.length m.candidates)
      (Instance.cardinal m.source)
      (Instance.cardinal m.j)
  | Setcover s ->
    Format.fprintf ppf
      "@[<h>%s (seed %d): %d sets over %d elements, budget %d@]" t.tag t.seed
      (List.length s.Core.Setcover.sets)
      (List.length s.Core.Setcover.universe)
      s.Core.Setcover.budget
  | Multihop mh ->
    Format.fprintf ppf
      "@[<h>%s (seed %d): %d hops, %d tgds, %d source + %d observed tuples@]"
      t.tag t.seed (List.length mh.hops) (num_candidates t)
      (Instance.cardinal mh.initial)
      (List.fold_left
         (fun n (_, o) -> n + Instance.cardinal o)
         0 mh.hops)
