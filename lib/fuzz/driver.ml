type failure = {
  oracle : string;
  detail : string;
  original : Case.t;
  shrunk : Case.t;
}

type summary = {
  seed : int;
  budget : int;
  passed : int;
  skipped : int;
  by_oracle : (string * (int * int * int)) list;
  by_tag : (string * int) list;
  failures : failure list;
}

(* One worker task: generate case [i], run every oracle on it, shrink any
   failure. Pure in [(seed, i, oracles)], per the pool's determinism
   contract — the cache only memoizes bit-identical results, so it leaves
   the outcomes untouched too. *)
let check_case ?cache oracles ~seed i =
  let case = Gen.case ~seed:(Parallel.Seed.derive seed i) in
  let outcomes =
    List.map
      (fun (o : Oracle.t) ->
        match Oracle.run ?cache o case with
        | Oracle.Pass -> (o.Oracle.name, Oracle.Pass, None)
        | Oracle.Skip -> (o.Oracle.name, Oracle.Skip, None)
        | Oracle.Fail _ as v ->
          let shrunk = Shrink.shrink ~fails:(Oracle.is_failure ?cache o) case in
          (* Re-run on the shrunk case for the message that matches what
             lands in the corpus. *)
          let v =
            match Oracle.run ?cache o shrunk with
            | Oracle.Fail _ as v' -> v'
            | _ -> v
          in
          (o.Oracle.name, v, Some shrunk))
      oracles
  in
  (case, outcomes)

(* Campaign counters are bumped in the deterministic fold below — never in
   the worker tasks — so the totals are a pure function of (seed, budget,
   oracles), identical for any pool size. *)
let cases_counter = Telemetry.Counter.make "fuzz.cases"

let checks_counter = Telemetry.Counter.make "fuzz.checks"

let failures_counter = Telemetry.Counter.make "fuzz.failures"

let run ?pool ?cache ?(oracles = Oracle.all) ~seed ~budget () =
  Telemetry.with_span "fuzz.campaign" @@ fun () ->
  let indices = Array.init (max budget 0) Fun.id in
  let reports =
    let task = check_case ?cache oracles ~seed in
    match pool with
    | Some pool -> Parallel.Pool.parallel_map pool task indices
    | None -> Array.map task indices
  in
  (* Fold in case order (the array is already index-ordered). *)
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (o : Oracle.t) -> Hashtbl.replace counts o.Oracle.name (0, 0, 0))
    oracles;
  let tag_counts = Hashtbl.create 8 in
  let passed = ref 0 and skipped = ref 0 in
  let failures = ref [] in
  Array.iter
    (fun ((case : Case.t), outcomes) ->
      Hashtbl.replace tag_counts case.Case.tag
        (1 + Option.value (Hashtbl.find_opt tag_counts case.Case.tag) ~default:0);
      List.iter
        (fun (name, verdict, shrunk) ->
          let p, s, f = Hashtbl.find counts name in
          match verdict with
          | Oracle.Pass ->
            incr passed;
            Hashtbl.replace counts name (p + 1, s, f)
          | Oracle.Skip ->
            incr skipped;
            Hashtbl.replace counts name (p, s + 1, f)
          | Oracle.Fail detail ->
            Hashtbl.replace counts name (p, s, f + 1);
            let shrunk = Option.value shrunk ~default:case in
            failures :=
              { oracle = name; detail; original = case; shrunk } :: !failures)
        outcomes)
    reports;
  Telemetry.Counter.add cases_counter (max budget 0);
  Telemetry.Counter.add checks_counter
    (!passed + !skipped + List.length !failures);
  Telemetry.Counter.add failures_counter (List.length !failures);
  {
    seed;
    budget = max budget 0;
    passed = !passed;
    skipped = !skipped;
    by_oracle =
      List.map
        (fun (o : Oracle.t) -> (o.Oracle.name, Hashtbl.find counts o.Oracle.name))
        oracles;
    by_tag =
      List.filter_map
        (fun tag ->
          Option.map (fun n -> (tag, n)) (Hashtbl.find_opt tag_counts tag))
        Gen.tags;
    failures = List.rev !failures;
  }

let pp_summary ppf s =
  let failed = List.length s.failures in
  Format.fprintf ppf "fuzz: seed %d, budget %d, %d oracle families@." s.seed
    s.budget (List.length s.by_oracle);
  Format.fprintf ppf "  %-18s %6s %6s %6s@." "oracle" "pass" "skip" "fail";
  List.iter
    (fun (name, (p, sk, f)) ->
      Format.fprintf ppf "  %-18s %6d %6d %6d@." name p sk f)
    s.by_oracle;
  Format.fprintf ppf "  cases by tag:%s@."
    (String.concat ","
       (List.map (fun (t, n) -> Printf.sprintf " %s %d" t n) s.by_tag));
  List.iter
    (fun f ->
      Format.fprintf ppf "  FAIL %s on seed %d (%s): %s@." f.oracle
        f.original.Case.seed f.original.Case.tag f.detail;
      Format.fprintf ppf "    shrunk to %a@." Case.pp f.shrunk)
    s.failures;
  Format.fprintf ppf "  %d checks: %d passed, %d skipped, %d failed@."
    (s.passed + s.skipped + failed)
    s.passed s.skipped failed

let save_failures ~dir s =
  List.map
    (fun f ->
      Corpus.save ~dir
        {
          Corpus.oracle = f.oracle;
          detail = f.detail;
          case = f.shrunk;
        })
    s.failures

let replay ?(oracles = Oracle.all) (e : Corpus.entry) =
  match
    List.find_opt (fun (o : Oracle.t) -> o.Oracle.name = e.Corpus.oracle) oracles
  with
  | None -> Error (Printf.sprintf "unknown oracle '%s'" e.Corpus.oracle)
  | Some o -> (
    match Oracle.run o e.Corpus.case with
    | Oracle.Pass | Oracle.Skip -> Ok ()
    | Oracle.Fail msg -> Error msg)
