open Relational
open Logic
open Util
open Core

type ctx = {
  case : Case.t;
  problem : Problem.t option Lazy.t;
}

let make_ctx ?cache case =
  {
    case;
    problem =
      lazy
        (match case.Case.payload with
        | Case.Mapping m -> Some (Case.problem ?cache m)
        | Case.Setcover _ -> None
        | Case.Multihop mh -> Some (Case.multihop_problem ?cache mh));
  }

type verdict =
  | Pass
  | Skip
  | Fail of string

type t = {
  name : string;
  doc : string;
  check : ctx -> verdict;
}

let failf fmt = Printf.ksprintf (fun s -> Fail s) fmt

(* Auxiliary randomness, a pure function of (case seed, oracle salt). *)
let rng_of ctx salt = Random.State.make [| 0x0f4c; ctx.case.Case.seed; salt |]

(* Selections to probe: exhaustive up to 6 candidates, 40 random masks
   beyond. Always includes the empty and the full selection. *)
let probe_selections rng m =
  if m <= 6 then
    List.init (1 lsl m) (fun mask ->
        Array.init m (fun i -> (mask lsr i) land 1 = 1))
  else
    Array.make m false :: Array.make m true
    :: List.init 38 (fun _ -> Array.init m (fun _ -> Random.State.bool rng))

let breakdown_equal (a : Objective.breakdown) (b : Objective.breakdown) =
  Frac.equal a.Objective.unexplained b.Objective.unexplained
  && a.Objective.errors = b.Objective.errors
  && a.Objective.size = b.Objective.size
  && Frac.equal a.Objective.total b.Objective.total

let selection_to_string sel =
  String.concat ""
    (Array.to_list (Array.map (fun b -> if b then "1" else "0") sel))

(* --- eq4-eq9: the Full fast path vs the general evaluator -------------- *)

let check_eq4_eq9 ctx =
  match ctx.case.Case.payload with
  | Case.Setcover _ | Case.Multihop _ -> Skip
  | Case.Mapping m when not (List.for_all Tgd.is_full m.Case.candidates) ->
    Skip
  | Case.Mapping _ -> (
    let p = Option.get (Lazy.force ctx.problem) in
    match Full.of_problem p with
    | Error e -> failf "Full.of_problem rejected a full-tgd problem: %s" e
    | Ok fp ->
      let rng = rng_of ctx 1 in
      let n = Problem.num_candidates p in
      let mismatch =
        List.find_map
          (fun sel ->
            let v4 = Full.value fp sel in
            let v9 = Objective.value p sel in
            if Frac.equal v4 v9 then None
            else
              Some
                (Format.asprintf "Eq.4 gives %a, Eq.9 gives %a on %s" Frac.pp
                   v4 Frac.pp v9 (selection_to_string sel)))
          (probe_selections rng n)
      in
      (match mismatch with
      | Some msg -> Fail msg
      | None ->
        if n <= 8 then
          let v_full = Objective.value p (Full.exact fp) in
          let v_gen = Objective.value p (Exact.solve p) in
          if Frac.equal v_full v_gen then Pass
          else
            Fail
              (Format.asprintf "Full.exact finds %a but Exact.solve finds %a"
                 Frac.pp v_full Frac.pp v_gen)
        else Pass))

(* --- incremental: delta engine vs the naive evaluator ------------------ *)

(* [expected_tweak] is a hook for fault injection: the real oracle adds
   nothing; the broken variant perturbs the expected delta of candidates
   covering at least two tuples, simulating a delta-computation bug. *)
let incremental_check ~expected_tweak ctx =
  match ctx.case.Case.payload with
  | Case.Setcover _ | Case.Multihop _ -> Skip
  | Case.Mapping _ ->
    let p = Option.get (Lazy.force ctx.problem) in
    let m = Problem.num_candidates p in
    let rng = rng_of ctx 2 in
    let sel = Array.init m (fun _ -> Random.State.bool rng) in
    let st = Incremental.create p sel in
    let steps = (2 * m) + 6 in
    let rec drive step =
      if step >= steps then
        match Incremental.self_check st with
        | Ok () -> Pass
        | Error msg -> failf "self_check after %d flips: %s" steps msg
      else
        let cur = Incremental.selection st in
        let value_now = Objective.value p cur in
        (* probe every candidate's delta against the naive evaluator *)
        let bad_probe =
          List.find_map
            (fun c ->
              cur.(c) <- not cur.(c);
              let naive = Frac.sub (Objective.value p cur) value_now in
              cur.(c) <- not cur.(c);
              let expected = Frac.add naive (expected_tweak p c) in
              let got = Incremental.flip_delta st c in
              if Frac.equal expected got then None
              else
                Some
                  (Format.asprintf
                     "flip_delta of candidate %d at step %d: expected %a, \
                      got %a"
                     c step Frac.pp expected Frac.pp got))
            (List.init m Fun.id)
        in
        match bad_probe with
        | Some msg -> Fail msg
        | None ->
          if m = 0 then
            if Frac.equal (Incremental.value st) value_now then Pass
            else Fail "value drifted on the empty candidate set"
          else begin
            let c = Random.State.int rng m in
            Incremental.flip st c;
            let now = Incremental.selection st in
            if
              not
                (breakdown_equal
                   (Objective.breakdown p now)
                   (Incremental.breakdown st))
            then
              failf "breakdown diverged after flipping candidate %d at step %d"
                c step
            else drive (step + 1)
          end
    in
    drive 0

let check_incremental = incremental_check ~expected_tweak:(fun _ _ -> Frac.zero)

(* --- solver-order: exact optimum bounds every registered solver -------- *)

let check_solver_order ctx =
  match ctx.case.Case.payload with
  | Case.Setcover _ | Case.Multihop _ -> Skip
  | Case.Mapping _ ->
    let p = Option.get (Lazy.force ctx.problem) in
    if Problem.num_candidates p > 8 || Problem.num_tuples p > 40 then Skip
    else
      let seed = ctx.case.Case.seed land 0xFFFFFF in
      (* every solver in the registry, so a newly registered solver is
         bounded by the exact optimum without touching this oracle *)
      let values =
        List.map
          (fun impl ->
            ( Solver.name impl,
              Objective.value p (Solver.solve impl ~seed p).Solver.selection ))
          Solver.all
      in
      let v name = List.assoc name values in
      let v_exact = v "exact" in
      let v_empty = Objective.empty_value p in
      let checks =
        List.filter_map
          (fun (name, value) ->
            if String.equal name "exact" then None
            else Some (Printf.sprintf "exact <= %s" name, v_exact, value))
          values
        @ [
            ("local <= greedy", v "local", v "greedy");
            ("greedy <= F({})", v "greedy", v_empty);
            ("anneal <= F({})", v "anneal", v_empty);
          ]
      in
      (match
         List.find_map
           (fun (name, lo, hi) ->
             if Frac.(lo <= hi) then None
             else
               Some
                 (Format.asprintf "%s violated: %a > %a" name Frac.pp lo
                    Frac.pp hi))
           checks
       with
      | Some msg -> Fail msg
      | None -> Pass)

(* --- setcover: the Theorem 1 closed form ------------------------------- *)

(* [slope] is the coefficient of the uncovered-element term; the proof says
   [m + 1]. The [closed-form] fault lowers it to [m]. *)
let setcover_check ~slope ctx =
  match ctx.case.Case.payload with
  | Case.Mapping _ | Case.Multihop _ -> Skip
  | Case.Setcover inst -> (
    match Setcover.validate inst with
    | Error e -> failf "invalid SET COVER instance: %s" e
    | Ok () ->
      let red = Setcover.reduce inst in
      let n = Array.length red.Setcover.set_names in
      let rng = rng_of ctx 4 in
      let universe =
        List.sort_uniq String.compare inst.Setcover.universe
      in
      let mismatch =
        List.find_map
          (fun sel ->
            let selected = Setcover.cover_of_selection red sel in
            let covered =
              List.concat_map
                (fun (name, elems) ->
                  if List.mem name selected then elems else [])
                inst.Setcover.sets
              |> List.sort_uniq String.compare
            in
            let expected =
              Frac.of_int
                ((slope red.Setcover.m
                 * (List.length universe - List.length covered))
                + (2 * List.length selected))
            in
            let got = Objective.value red.Setcover.problem sel in
            if Frac.equal expected got then None
            else
              Some
                (Format.asprintf
                   "closed form predicts %a, Eq.9 evaluator gives %a for \
                    selection %s"
                   Frac.pp expected Frac.pp got (selection_to_string sel)))
          (probe_selections rng n)
      in
      (match mismatch with Some msg -> Fail msg | None -> Pass))

let check_setcover = setcover_check ~slope:(fun m -> m + 1)

(* --- cq-index: indexed vs unindexed CQ evaluation ---------------------- *)

let check_cq_index ctx =
  match ctx.case.Case.payload with
  | Case.Setcover _ | Case.Multihop _ -> Skip
  | Case.Mapping m ->
    let rng = rng_of ctx 5 in
    let check_inst inst queries =
      let index = Cq.Index.build inst in
      let norm answers = List.sort_uniq Subst.compare answers in
      List.find_map
        (fun q ->
          let plain = norm (Cq.answers inst q) in
          let indexed = norm (Cq.answers_indexed index q) in
          let lazily = norm (List.of_seq (Cq.answers_seq inst q)) in
          if not (List.equal Subst.equal plain indexed) then
            Some
              (Printf.sprintf
                 "indexed evaluator differs on a %d-atom query (%d vs %d \
                  answers)"
                 (List.length q) (List.length plain) (List.length indexed))
          else if not (List.equal Subst.equal plain lazily) then
            Some "answers_seq differs from answers"
          else
            (* extend a partial substitution binding a random variable *)
            let vars =
              List.fold_left
                (fun acc a -> String_set.union acc (Atom.vars a))
                String_set.empty q
              |> String_set.elements
            in
            match vars, Value.Set.elements (Instance.constants inst) with
            | [], _ | _, [] -> None
            | vs, consts ->
              let x = List.nth vs (Random.State.int rng (List.length vs)) in
              let value =
                List.nth consts (Random.State.int rng (List.length consts))
              in
              let s = Subst.singleton x value in
              let plain_ext = norm (Cq.extensions inst s q) in
              let indexed_ext = norm (Cq.extensions_indexed index s q) in
              if List.equal Subst.equal plain_ext indexed_ext then None
              else Some "extensions_indexed differs from extensions")
        queries
    in
    let bodies = List.map (fun (t : Tgd.t) -> t.Tgd.body) m.Case.candidates in
    let heads = List.map (fun (t : Tgd.t) -> t.Tgd.head) m.Case.candidates in
    (match check_inst m.Case.source bodies with
    | Some msg -> failf "on the source instance: %s" msg
    | None -> (
      match check_inst m.Case.j heads with
      | Some msg -> failf "on the target instance: %s" msg
      | None -> Pass))

(* --- chase-determinism: permutation invariance and internal checks ----- *)

let shuffle rng l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let triggers_equal (a : Chase.Trigger.t) (b : Chase.Trigger.t) =
  a.Chase.Trigger.tgd_index = b.Chase.Trigger.tgd_index
  && Subst.equal a.Chase.Trigger.subst b.Chase.Trigger.subst
  && List.equal Tuple.equal a.Chase.Trigger.tuples b.Chase.Trigger.tuples
  && Value.Set.equal a.Chase.Trigger.nulls b.Chase.Trigger.nulls

let results_equal (a : Chase.result) (b : Chase.result) =
  Instance.equal a.Chase.solution b.Chase.solution
  && List.length a.Chase.triggers = List.length b.Chase.triggers
  && List.for_all2 triggers_equal a.Chase.triggers b.Chase.triggers

let check_chase_determinism ctx =
  match ctx.case.Case.payload with
  | Case.Setcover _ | Case.Multihop _ -> Skip
  | Case.Mapping m ->
    let rng = rng_of ctx 6 in
    let source2 =
      Instance.of_tuples (shuffle rng (Instance.tuples m.Case.source))
    in
    if not (Instance.equal m.Case.source source2) then
      Fail "instances are not canonical under tuple permutation"
    else
      let r1 = Chase.run m.Case.source m.Case.candidates in
      let r2 = Chase.run source2 m.Case.candidates in
      let r3 =
        Chase.run
          ~index:(Cq.Index.build m.Case.source)
          m.Case.source m.Case.candidates
      in
      if not (results_equal r1 r2) then
        Fail "chase differs after permuting the source tuples"
      else if not (results_equal r1 r3) then
        Fail "chase differs with a prebuilt index"
      else (
        match Chase.check_result ~source:m.Case.source r1 with
        | Error msg -> failf "chase invariant violated: %s" msg
        | Ok () ->
          let n = List.length m.Case.candidates in
          if n = 0 || n > 10 then Pass
          else
            let order = shuffle rng (List.init n Fun.id) in
            let permuted =
              List.map (fun i -> List.nth m.Case.candidates i) order
            in
            let p = Option.get (Lazy.force ctx.problem) in
            let p' =
              Problem.make ~weights:m.Case.weights ~source:m.Case.source
                ~j:m.Case.j permuted
            in
            let order = Array.of_list order in
            let mismatch =
              List.find_map
                (fun sel ->
                  let sel' = Array.init n (fun k -> sel.(order.(k))) in
                  let v = Objective.value p sel in
                  let v' = Objective.value p' sel' in
                  if Frac.equal v v' then None
                  else
                    Some
                      (Format.asprintf
                         "objective not invariant under candidate \
                          permutation: %a vs %a on %s"
                         Frac.pp v Frac.pp v' (selection_to_string sel)))
                (probe_selections rng n)
            in
            (match mismatch with Some msg -> Fail msg | None -> Pass))

(* --- cache-identity: cached evaluation is bit-identical to uncached ----- *)

(* The differential oracle behind the cache's central contract: building a
   problem through a cache — cold or warm — and solving through a cache must
   be byte-for-byte what the uncached pipeline produces. Runs against a
   private cache so the verdict is independent of any campaign-level
   cache. *)
let check_cache_identity ctx =
  match ctx.case.Case.payload with
  | Case.Setcover _ | Case.Multihop _ -> Skip
  | Case.Mapping m -> (
    let cache = Cache.create ~capacity:1024 () in
    let p_plain = Option.get (Lazy.force ctx.problem) in
    let p_cold = Case.problem ~cache m in
    let after_cold = (Cache.stats cache).Cache.misses in
    let p_warm = Case.problem ~cache m in
    let after_warm = (Cache.stats cache).Cache.misses in
    let key = Problem.digest p_plain in
    if Problem.digest p_cold <> key then
      Fail "cold cached problem differs from the uncached problem"
    else if Problem.digest p_warm <> key then
      Fail "warm cached problem differs from the uncached problem"
    else if after_warm <> after_cold then
      failf "warm rebuild recomputed %d candidate analyses"
        (after_warm - after_cold)
    else
      let solvers =
        if Problem.num_candidates p_plain <= 6 then [ "greedy"; "local" ]
        else [ "greedy" ]
      in
      let seed = ctx.case.Case.seed land 0xFFFFFF in
      let mismatch =
        List.find_map
          (fun name ->
            let impl = Option.get (Solver.find name) in
            let plain = (Solver.solve impl ~seed p_plain).Solver.selection in
            let cold =
              (Solver.solve impl ~seed ~cache p_cold).Solver.selection
            in
            let warm =
              (Solver.solve impl ~seed ~cache p_warm).Solver.selection
            in
            if plain <> cold then
              Some (name ^ ": cold cached selection differs")
            else if plain <> warm then
              Some (name ^ ": warm cached selection differs")
            else None)
          solvers
      in
      match mismatch with Some msg -> Fail msg | None -> Pass)

(* --- columnar-identity: the column store is bit-identical to row-major -- *)

(* The differential oracle behind the columnar kernel's contract: the
   dictionary-encoded store round-trips losslessly, and the columnar CQ
   evaluator and chase return exactly — list order, null labels and all —
   what the row-major indexed pipeline returns. The metamorph rebuilds the
   store from a permuted tuple list: interning order must not show through,
   because row ids follow the canonical tuple order, not insertion order. *)
let check_columnar_identity ctx =
  match ctx.case.Case.payload with
  | Case.Setcover _ | Case.Multihop _ -> Skip
  | Case.Mapping m -> (
    match
      (Columnar.of_instance m.Case.source, Columnar.of_instance m.Case.j)
    with
    | exception Invalid_argument _ -> Skip (* mixed-arity: row-major only *)
    | col_src, col_j ->
      let rng = rng_of ctx 7 in
      let check_inst tag inst col queries =
        if not (Instance.equal (Columnar.to_instance col) inst) then
          Some (tag ^ ": to_instance (of_instance i) <> i")
        else
          let index = Cq.Index.build inst in
          let col' =
            Columnar.of_instance
              (Instance.of_tuples (shuffle rng (Instance.tuples inst)))
          in
          List.find_map
            (fun q ->
              let indexed = Cq.answers_indexed index q in
              let columnar = Cq.Columnar.answers col q in
              if not (List.equal Subst.equal indexed columnar) then
                Some
                  (Printf.sprintf
                     "%s: columnar answers differ from indexed on a %d-atom \
                      query (%d vs %d answers)"
                     tag (List.length q) (List.length indexed)
                     (List.length columnar))
              else if
                not
                  (List.equal Subst.equal indexed (Cq.Columnar.answers col' q))
              then
                Some
                  (tag
                 ^ ": columnar answers change when the store is rebuilt from \
                    permuted tuples")
              else
                let vars =
                  List.fold_left
                    (fun acc a -> String_set.union acc (Atom.vars a))
                    String_set.empty q
                  |> String_set.elements
                in
                match
                  (vars, Value.Set.elements (Instance.constants inst))
                with
                | [], _ | _, [] -> None
                | vs, consts ->
                  let x =
                    List.nth vs (Random.State.int rng (List.length vs))
                  in
                  let value =
                    List.nth consts (Random.State.int rng (List.length consts))
                  in
                  let s = Subst.singleton x value in
                  let indexed_ext = Cq.extensions_indexed index s q in
                  let columnar_ext = Cq.Columnar.extensions col s q in
                  if List.equal Subst.equal indexed_ext columnar_ext then None
                  else
                    Some
                      (tag
                     ^ ": columnar extensions differ from extensions_indexed"))
            queries
      in
      let bodies =
        List.map (fun (t : Tgd.t) -> t.Tgd.body) m.Case.candidates
      in
      let heads = List.map (fun (t : Tgd.t) -> t.Tgd.head) m.Case.candidates in
      (match check_inst "source" m.Case.source col_src bodies with
      | Some msg -> Fail msg
      | None -> (
        match check_inst "target" m.Case.j col_j heads with
        | Some msg -> Fail msg
        | None ->
          let r_row = Chase.run m.Case.source m.Case.candidates in
          let r_col = Chase.run_columnar col_src m.Case.candidates in
          let col_src' =
            Columnar.of_instance
              (Instance.of_tuples (shuffle rng (Instance.tuples m.Case.source)))
          in
          let r_col' = Chase.run_columnar col_src' m.Case.candidates in
          if not (results_equal r_row r_col) then
            Fail "columnar chase differs from the row-major chase"
          else if not (results_equal r_row r_col') then
            Fail "columnar chase differs on a store built from permuted tuples"
          else Pass)))

(* --- core-solution: the core is a minimal homomorphic retract ----------- *)

let tuple_is_ground (t : Tuple.t) =
  Array.for_all
    (function Value.Const _ -> true | Value.Null _ -> false)
    t.Tuple.values

let check_core_solution ctx =
  match ctx.case.Case.payload with
  | Case.Setcover _ | Case.Multihop _ -> Skip
  | Case.Mapping m ->
    let jc = (Chase.run m.Case.source m.Case.candidates).Chase.solution in
    (* the endomorphism search is worst-case exponential in a
       null-connected component; bound the instance like solver-order
       bounds the problem *)
    if Instance.cardinal jc > 40 then Skip
    else
      let c = Chase.Core_solution.core jc in
      if not (Instance.subset c jc) then
        Fail "core is not a sub-instance of the chased target"
      else if
        not
          (List.for_all
             (fun t -> (not (tuple_is_ground t)) || Instance.mem t c)
             (Instance.tuples jc))
      then Fail "core dropped a ground tuple"
      else if not (Chase.Core_solution.hom_exists ~from:jc ~into:c) then
        Fail "no homomorphism from the chased target into its core"
      else if not (Chase.Core_solution.hom_exists ~from:c ~into:jc) then
        Fail "no homomorphism from the core into the chased target"
      else if not (Instance.equal (Chase.Core_solution.core c) c) then
        Fail "core is not idempotent"
      else if not (Chase.Core_solution.is_core c) then
        Fail "core still admits a proper endomorphism"
      else if List.length m.Case.candidates > 6 then Pass
      else
        (* coring can only retract chase tuples away, never add them *)
        let produced stats =
          Array.fold_left (fun n s -> n + s.Cover.produced) 0 stats
        in
        let plain =
          produced
            (Cover.analyze ~source:m.Case.source ~j:m.Case.j m.Case.candidates)
        in
        let cored =
          produced
            (Cover.analyze ~core:true ~source:m.Case.source ~j:m.Case.j
               m.Case.candidates)
        in
        if cored <= plain then Pass
        else
          failf "coring grew K_M: %d produced tuples uncored, %d cored" plain
            cored

(* --- warm-start: warm solves are bit-identical to cold ------------------ *)

(* The sweep machinery re-serves a point from its own ADMM state
   (Common.run_solver's warm_key) and the portfolio races the registry
   roster; both are only sound if (a) a warm-started CMD solve returns
   exactly the cold selection — on the same problem, where the state is
   applied, and on a neighbouring one, where the partial Grounding.delta
   must make Cmd fall back to the cold start — and (b) a portfolio race is
   a pure function of (problem, seed). *)
let check_warm_start ctx =
  match ctx.case.Case.payload with
  | Case.Setcover _ | Case.Multihop _ -> Skip
  | Case.Mapping m ->
    let p = Option.get (Lazy.force ctx.problem) in
    (* portfolio runs exact too; bound the problem like solver-order *)
    if Problem.num_candidates p > 8 || Problem.num_tuples p > 40 then Skip
    else
      let cold = Cmd.solve p in
      let self = Cmd.solve ~warm:cold.Cmd.warm_out p in
      if self.Cmd.selection <> cold.Cmd.selection then
        failf "self-warm-started CMD differs from cold: %s vs %s"
          (selection_to_string self.Cmd.selection)
          (selection_to_string cold.Cmd.selection)
      else
        let neighbour_mismatch =
          match List.rev m.Case.candidates with
          | [] | [ _ ] -> None (* no neighbouring problem to derive *)
          | _ :: rest ->
            let q = Case.problem { m with Case.candidates = List.rev rest } in
            let q_cold = Cmd.solve q in
            let q_warm = Cmd.solve ~warm:cold.Cmd.warm_out q in
            if q_warm.Cmd.selection <> q_cold.Cmd.selection then
              Some
                (Printf.sprintf
                   "neighbour warm-started CMD differs from cold: %s vs %s"
                   (selection_to_string q_warm.Cmd.selection)
                   (selection_to_string q_cold.Cmd.selection))
            else None
        in
        (match neighbour_mismatch with
        | Some msg -> Fail msg
        | None -> (
          let impl = Option.get (Solver.find "portfolio") in
          let seed = ctx.case.Case.seed land 0xFFFFFF in
          let r1 = (Solver.solve impl ~seed p).Solver.selection in
          let r2 = (Solver.solve impl ~seed p).Solver.selection in
          if r1 <> r2 then
            Fail "portfolio race is not deterministic in (problem, seed)"
          else
            (* the race returns the best (or a provably optimal) roster
               result, so no individually-run roster member may beat it *)
            let vp = Objective.value p r1 in
            let beaten name sel =
              if Frac.compare vp (Objective.value p sel) <= 0 then None
              else
                Some
                  (Printf.sprintf "portfolio (F = %s) beaten by %s"
                     (Frac.to_string vp) name)
            in
            match beaten "cmd" cold.Cmd.selection with
            | Some msg -> Fail msg
            | None -> (
              match beaten "greedy" (Greedy.solve p) with
              | Some msg -> Fail msg
              | None -> Pass)))

(* --- algebra: the homomorphism checkers and the mapping algebra --------- *)

let take n l = List.filteri (fun i _ -> i < n) l

let ground_tuples inst =
  List.filter tuple_is_ground (Instance.tuples inst) |> List.sort compare

(* On single-mapping cases the oracle holds the checkers to their semantic
   contracts on the case's own data — a syntactically-confused [implies] or
   [contained_in] (the frozen-constant capture bug) shows up as a verdict
   the instance refutes. On multi-hop cases it holds composition to its
   defining property: chasing once with the composed mapping is sound
   against chasing hop by hop with identical ground facts, and fully
   hom-equivalent whenever every hop before the last is full (the fragment
   where first-order composition is complete). *)
let check_algebra ctx =
  match ctx.case.Case.payload with
  | Case.Setcover _ -> Skip
  | Case.Mapping m ->
    let cands = take 4 m.Case.candidates in
    let indexed = List.mapi (fun i c -> (i, c)) cands in
    let pairs =
      List.concat_map
        (fun (i, a) ->
          List.filter_map
            (fun (j, b) -> if i = j then None else Some (a, b))
            indexed)
        indexed
    in
    let implication_unsound =
      List.find_map
        (fun ((a : Tgd.t), (b : Tgd.t)) ->
          if not (Chase.Implication.implies a b) then None
          else
            (* (I, chase(I, [a])) satisfies a by universality, so a ⊨ b
               promises it satisfies b too *)
            let target = (Chase.run m.Case.source [ a ]).Chase.solution in
            if Chase.satisfies ~source:m.Case.source ~target b then None
            else
              Some
                (Printf.sprintf
                   "implies %s %s holds but (I, chase(I, [%s])) violates %s"
                   a.Tgd.label b.Tgd.label a.Tgd.label b.Tgd.label))
        pairs
    in
    (match implication_unsound with
    | Some msg -> Fail msg
    | None -> (
      let containment_unsound =
        List.find_map
          (fun ((a : Tgd.t), (b : Tgd.t)) ->
            if not (Containment.contained_in a.Tgd.body b.Tgd.body) then None
            else if
              Cq.holds m.Case.source a.Tgd.body
              && not (Cq.holds m.Case.source b.Tgd.body)
            then
              Some
                (Printf.sprintf
                   "body(%s) ⊆ body(%s) as boolean queries, but only the \
                    former holds on I"
                   a.Tgd.label b.Tgd.label)
            else None)
          pairs
      in
      match containment_unsound with
      | Some msg -> Fail msg
      | None -> (
        let minimize_broken =
          List.find_map
            (fun (c : Tgd.t) ->
              let small = Chase.Implication.minimize_tgd c in
              if not (Chase.Implication.equivalent small c) then
                Some
                  (Printf.sprintf "minimize_tgd changed the meaning of %s"
                     c.Tgd.label)
              else
                match c.Tgd.body with
                | [] -> None
                | a :: _ ->
                  (* duplicating an atom never changes the minimal core *)
                  let minimized = Containment.minimize (c.Tgd.body @ [ a ]) in
                  if Containment.equivalent minimized c.Tgd.body then None
                  else
                    Some
                      (Printf.sprintf
                         "Containment.minimize broke a duplicated body of %s"
                         c.Tgd.label))
            cands
        in
        match minimize_broken with Some msg -> Fail msg | None -> Pass)))
  | Case.Multihop mh ->
    if mh.Case.hops = [] then Skip
    else
      let maps = List.map fst mh.Case.hops in
      let k_hop = Algebra.chase_through mh.Case.initial maps in
      if
        Instance.cardinal k_hop > 40
        || Case.num_tuples ctx.case > 60
        || Case.num_candidates ctx.case > 12
      then Skip
      else
        let composed = Algebra.compose_all maps in
        let k_comp = Algebra.chase_through mh.Case.initial [ composed ] in
        (* Completeness of first-order composition is only promised when no
           intermediate existential can be consumed downstream: a hop-1 null
           shared by two hop-2 facts is a correlation no tgd set expresses
           (that is SO-tgd territory, Fagin et al.), so the hop-by-hop chase
           need not map into the composed one. Ground facts are exempt —
           each comes from a single derivation tree, which unfolding does
           capture — so their sets must always agree. *)
        let intermediate_full =
          match List.rev maps with
          | [] -> true
          | _last :: earlier -> List.for_all (List.for_all Tgd.is_full) earlier
        in
        if not (Chase.Core_solution.hom_exists ~from:k_comp ~into:k_hop) then
          Fail "no homomorphism from the composed chase into the hop-by-hop one"
        else if
          intermediate_full
          && not (Chase.Core_solution.hom_exists ~from:k_hop ~into:k_comp)
        then
          Fail
            "intermediate hops are full but the hop-by-hop chase does not \
             map into the composed one"
        else if ground_tuples k_comp <> ground_tuples k_hop then
          failf "ground facts differ: %d composed vs %d hop-by-hop"
            (List.length (ground_tuples k_comp))
            (List.length (ground_tuples k_hop))
        else if not (Algebra.contained_in composed composed) then
          Fail "containment is not reflexive on the composed mapping"
        else (
          match maps with
          | [ m1; m2; m3 ] ->
            let left = Algebra.compose (Algebra.compose m1 m2) m3 in
            let right = Algebra.compose m1 (Algebra.compose m2 m3) in
            if Algebra.equivalent left right then Pass
            else Fail "composition is not associative up to equivalence"
          | _ -> Pass)

(* --- registry ----------------------------------------------------------- *)

let all =
  [
    {
      name = "eq4-eq9";
      doc = "Full (Eq. 4) fast path agrees with the Eq. 9 evaluator";
      check = check_eq4_eq9;
    };
    {
      name = "incremental";
      doc = "Core.Incremental matches the naive objective on flip sequences";
      check = check_incremental;
    };
    {
      name = "solver-order";
      doc = "exact bounds every registered solver; local <= greedy <= F({})";
      check = check_solver_order;
    };
    {
      name = "setcover";
      doc = "Theorem 1 closed form equals the evaluator on reductions";
      check = check_setcover;
    };
    {
      name = "cq-index";
      doc = "indexed CQ evaluation agrees with the unindexed evaluator";
      check = check_cq_index;
    };
    {
      name = "chase-determinism";
      doc = "chase invariant under permutation, indexing, and self-checks";
      check = check_chase_determinism;
    };
    {
      name = "cache-identity";
      doc = "cached problems and selections are bit-identical to uncached";
      check = check_cache_identity;
    };
    {
      name = "columnar-identity";
      doc = "columnar CQ evaluation and chase are bit-identical to row-major";
      check = check_columnar_identity;
    };
    {
      name = "core-solution";
      doc = "the core is a sub-instance, equivalent both ways, idempotent";
      check = check_core_solution;
    };
    {
      name = "warm-start";
      doc = "warm-started CMD equals cold; portfolio races deterministically";
      check = check_warm_start;
    };
    {
      name = "algebra";
      doc =
        "implication/containment verdicts hold semantically; composed chase \
         sound vs hop-by-hop, exact on full intermediate hops";
      check = check_algebra;
    };
  ]

let names = List.map (fun o -> o.name) all

let find name = List.find_opt (fun o -> o.name = name) all

let run ?cache o case =
  match o.check (make_ctx ?cache case) with
  | verdict -> verdict
  | exception e ->
    Fail (Printf.sprintf "exception: %s" (Printexc.to_string e))

let is_failure ?cache o case =
  match run ?cache o case with Fail _ -> true | Pass | Skip -> false

let faults =
  [
    ( "flip-delta",
      {
        name = "incremental";
        doc = "BROKEN: perturbs the flip delta of multi-cover candidates";
        check =
          incremental_check ~expected_tweak:(fun p c ->
              if Array.length p.Problem.covers.(c) >= 2 then Frac.one
              else Frac.zero);
      } );
    ( "closed-form",
      {
        name = "setcover";
        doc = "BROKEN: drops the +1 from the closed-form slope";
        check = setcover_check ~slope:(fun m -> m);
      } );
  ]
