(** Greedy counterexample shrinking.

    [shrink ~fails case] repeatedly tries to delete one element at a time —
    candidates, then target tuples, then source tuples of a mapping case;
    sets, universe elements, set members, then budget decrements of a SET
    COVER case — keeping a deletion whenever [fails] still holds on the
    smaller case, until a full sweep removes nothing. The result is
    1-minimal: removing any single remaining element makes the failure
    disappear. Deterministic: deletion order is fixed, so the same failing
    case always shrinks to the same counterexample.

    [fails] must be a pure predicate (the oracle checks qualify: their
    auxiliary randomness is derived from the case seed, which shrinking
    preserves). *)

val shrink : fails : (Case.t -> bool) -> Case.t -> Case.t
(** Returns the input unchanged if [fails] does not hold on it. *)
