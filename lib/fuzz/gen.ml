open Relational
open Logic

let int_in rng lo hi = lo + Random.State.int rng (hi - lo + 1)

let pick rng arr = arr.(Random.State.int rng (Array.length arr))

let chance rng p = Random.State.float rng 1.0 < p

(* --- the small-mapping generator --------------------------------------- *)

type vocab = {
  src_rels : (string * int) array;  (* name, arity *)
  tgt_rels : (string * int) array;
  consts : string array;
  vars : string array;
}

let vocab_gen rng ~n_consts =
  let rels prefix =
    Array.init (int_in rng 1 2) (fun i ->
        (Printf.sprintf "%s%d" prefix i, int_in rng 1 3))
  in
  {
    src_rels = rels "s";
    tgt_rels = rels "u";
    consts = Array.init n_consts (fun i -> Printf.sprintf "c%d" i);
    vars = [| "A"; "B"; "C"; "D" |];
  }

let tuple_gen rng v (name, arity) =
  Tuple.of_consts name (List.init arity (fun _ -> pick rng v.consts))

let body_term rng v =
  if chance rng 0.15 then Term.Cst (pick rng v.consts)
  else Term.Var (pick rng v.vars)

let candidate_gen rng v ~full_only ~label =
  let body =
    List.init (int_in rng 1 2) (fun _ ->
        let name, arity = pick rng v.src_rels in
        Atom.make name (List.init arity (fun _ -> body_term rng v)))
  in
  let body_vars =
    List.fold_left
      (fun acc a -> String_set.union acc (Atom.vars a))
      String_set.empty body
    |> String_set.elements |> Array.of_list
  in
  let head_term rng =
    let r = Random.State.float rng 1.0 in
    if Array.length body_vars > 0 && r < 0.6 then Term.Var (pick rng body_vars)
    else if (not full_only) && r < 0.85 then
      Term.Var (if chance rng 0.5 then "X" else "Y")
    else Term.Cst (pick rng v.consts)
  in
  let head =
    List.init (int_in rng 1 2) (fun _ ->
        let name, arity = pick rng v.tgt_rels in
        Atom.make name (List.init arity (fun _ -> head_term rng)))
  in
  Tgd.make ~label ~body ~head ()

let weights_gen rng =
  if chance rng 0.7 then Core.Problem.default_weights
  else
    {
      Core.Problem.w_unexplained = int_in rng 1 3;
      w_errors = int_in rng 1 3;
      w_size = int_in rng 1 3;
    }

(* The target instance, built the iBench way: ground the chase of a random
   ground-truth subset of the candidates (nulls become fresh constants),
   delete a share of it (piErrors), then add noise tuples (piUnexplained). *)
let target_gen rng v candidates source ~noise_consts ~keep_p ~n_noise =
  let ground_truth = List.filter (fun _ -> chance rng 0.5) candidates in
  let chased = Chase.universal_solution source ground_truth in
  let grounded =
    Instance.map_values
      (function
        | Value.Null k -> Value.Const (Printf.sprintf "v%d" k)
        | Value.Const _ as c -> c)
      chased
  in
  let kept = Instance.filter (fun _ -> chance rng keep_p) grounded in
  let noise_pool = Array.append v.consts noise_consts in
  let noise =
    List.init n_noise (fun _ ->
        let name, arity = pick rng v.tgt_rels in
        Tuple.of_consts name (List.init arity (fun _ -> pick rng noise_pool)))
  in
  Instance.add_all noise kept

let mapping_gen rng ?(full_only = false) ?(n_consts = 5) () =
  let v = vocab_gen rng ~n_consts in
  let candidates =
    List.init (int_in rng 1 6) (fun i ->
        candidate_gen rng v ~full_only ~label:(Printf.sprintf "t%d" i))
  in
  let source =
    Instance.of_tuples
      (List.init (int_in rng 0 6) (fun _ ->
           tuple_gen rng v (pick rng v.src_rels)))
  in
  let noise_consts = Array.init 3 (fun i -> Printf.sprintf "z%d" i) in
  let j =
    target_gen rng v candidates source ~noise_consts ~keep_p:0.75
      ~n_noise:(int_in rng 0 3)
  in
  { Case.source; j; candidates; weights = weights_gen rng }

(* --- adversarial corner cases ------------------------------------------ *)

let empty_j rng =
  let m = mapping_gen rng () in
  { m with Case.j = Instance.empty }

let all_noise_j rng =
  (* target tuples over a constant alphabet disjoint from the source's, so
     every candidate production is an error and coverage can only come from
     (corroborated) invented values *)
  let v = vocab_gen rng ~n_consts:4 in
  let candidates =
    List.init (int_in rng 1 4) (fun i ->
        candidate_gen rng v ~full_only:false ~label:(Printf.sprintf "t%d" i))
  in
  let source =
    Instance.of_tuples
      (List.init (int_in rng 1 5) (fun _ ->
           tuple_gen rng v (pick rng v.src_rels)))
  in
  let noise = Array.init 3 (fun i -> Printf.sprintf "z%d" i) in
  let j =
    Instance.of_tuples
      (List.init (int_in rng 1 5) (fun _ ->
           let name, arity = pick rng v.tgt_rels in
           Tuple.of_consts name (List.init arity (fun _ -> pick rng noise))))
  in
  { Case.source; j; candidates; weights = weights_gen rng }

let dup_candidates rng =
  let m = mapping_gen rng () in
  match m.Case.candidates with
  | [] -> m
  | first :: _ ->
    let dup =
      Tgd.relabel (first.Tgd.label ^ "_dup")
        (List.nth m.Case.candidates
           (Random.State.int rng (List.length m.Case.candidates)))
    in
    { m with Case.candidates = m.Case.candidates @ [ dup ] }

let empty_source rng =
  let m = mapping_gen rng () in
  { m with Case.source = Instance.empty }

(* --- SET COVER instances ------------------------------------------------ *)

let setcover_gen rng =
  let u_size = int_in rng 1 6 in
  let universe = List.init u_size (fun i -> Printf.sprintf "e%d" i) in
  let sets =
    List.init (int_in rng 1 5) (fun i ->
        ( Printf.sprintf "S%d" i,
          List.filter (fun _ -> chance rng 0.5) universe ))
  in
  { Core.Setcover.universe; sets; budget = int_in rng 1 3 }

(* --- genuine iBench scenarios ------------------------------------------ *)

let ibench_gen rng =
  let kinds = Array.of_list Ibench.Primitive.all in
  let n = int_in rng 1 3 in
  let primitives =
    List.sort_uniq compare (List.init n (fun _ -> pick rng kinds))
    |> List.map (fun k -> (k, 1))
  in
  let pis = [| 0; 20; 40; 60 |] in
  let config =
    {
      Ibench.Config.default with
      Ibench.Config.primitives;
      rows_per_relation = int_in rng 2 3;
      pi_corresp = pick rng pis;
      pi_errors = pick rng pis;
      pi_unexplained = pick rng pis;
      seed = Random.State.int rng 0x3FFFFFFF;
    }
  in
  let s = Ibench.Generator.generate config in
  {
    Case.source = s.Ibench.Scenario.instance_i;
    j = s.Ibench.Scenario.instance_j;
    candidates = s.Ibench.Scenario.candidates;
    weights = Core.Problem.default_weights;
  }

(* --- multi-hop chains for the mapping algebra --------------------------- *)

let multihop_gen rng =
  let pis = [| 0; 20; 40 |] in
  let config =
    {
      Ibench.Multihop.relations = int_in rng 1 2;
      arity = int_in rng 1 3;
      rows = int_in rng 2 3;
      hops = int_in rng 2 3;
      pi_corresp = pick rng pis;
      pi_errors = pick rng pis;
      pi_unexplained = pick rng pis;
      seed = Random.State.int rng 0x3FFFFFFF;
    }
  in
  let s = Ibench.Multihop.generate config in
  {
    Case.initial = s.Ibench.Multihop.source;
    hops =
      List.map
        (fun (h : Ibench.Multihop.hop) ->
          (h.Ibench.Multihop.tgds, h.Ibench.Multihop.observed))
        s.Ibench.Multihop.hops;
    hop_weights = weights_gen rng;
  }

(* --- family dispatch ---------------------------------------------------- *)

let tags =
  [
    "random-mapping";
    "full-mapping";
    "setcover";
    "ibench";
    "empty-j";
    "all-noise-j";
    "dup-candidates";
    "empty-source";
    "tiny-domain";
    "multihop";
  ]

let case ~seed =
  let rng = Random.State.make [| 0x5eed; seed |] in
  let r = Random.State.int rng 100 in
  let tag, payload =
    if r < 35 then ("random-mapping", Case.Mapping (mapping_gen rng ()))
    else if r < 55 then
      ("full-mapping", Case.Mapping (mapping_gen rng ~full_only:true ()))
    else if r < 65 then ("setcover", Case.Setcover (setcover_gen rng))
    else if r < 75 then ("ibench", Case.Mapping (ibench_gen rng))
    else if r < 80 then ("empty-j", Case.Mapping (empty_j rng))
    else if r < 85 then ("all-noise-j", Case.Mapping (all_noise_j rng))
    else if r < 90 then ("dup-candidates", Case.Mapping (dup_candidates rng))
    else if r < 93 then ("empty-source", Case.Mapping (empty_source rng))
    else if r < 96 then
      ("tiny-domain", Case.Mapping (mapping_gen rng ~n_consts:1 ()))
    else ("multihop", Case.Multihop (multihop_gen rng))
  in
  { Case.seed; tag; payload }
