(** A fuzzing scenario: the unit of generation, oracle checking, shrinking
    and corpus persistence.

    Most cases are {!Mapping} cases — a data example plus a candidate set,
    exactly the input of the selection pipeline. {!Setcover} cases carry a
    SET COVER instance instead, exercising the Theorem 1 reduction and its
    closed-form objective. Every case records the seed it was generated from
    (shrunk descendants keep their ancestor's seed) and a tag naming the
    generator family, so a corpus entry documents its own provenance. *)

type mapping = {
  source : Relational.Instance.t;
  j : Relational.Instance.t;
  candidates : Logic.Tgd.t list;
  weights : Core.Problem.weights;
}

type payload =
  | Mapping of mapping
  | Setcover of Core.Setcover.instance

type t = {
  seed : int;  (** the generator seed this case (or its ancestor) came from *)
  tag : string;  (** generator family, e.g. ["random-mapping"], ["empty-j"] *)
  payload : payload;
}

val problem : ?cache : Cache.t -> mapping -> Core.Problem.t
(** [Problem.make] under the case's weights — the shared precomputation the
    mapping oracles evaluate against. [cache] memoizes the per-candidate
    analysis (bit-identical on or off — the cache-identity oracle holds the
    whole campaign to that). *)

val num_candidates : t -> int
(** Candidate tgds of a mapping case; sets of a SET COVER case. *)

val num_tuples : t -> int
(** Source plus target tuples of a mapping case; universe size of a
    SET COVER case. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** A one-line summary (tag, seed, sizes). *)
