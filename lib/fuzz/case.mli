(** A fuzzing scenario: the unit of generation, oracle checking, shrinking
    and corpus persistence.

    Most cases are {!Mapping} cases — a data example plus a candidate set,
    exactly the input of the selection pipeline. {!Setcover} cases carry a
    SET COVER instance instead, exercising the Theorem 1 reduction and its
    closed-form objective. Every case records the seed it was generated from
    (shrunk descendants keep their ancestor's seed) and a tag naming the
    generator family, so a corpus entry documents its own provenance. *)

type mapping = {
  source : Relational.Instance.t;
  j : Relational.Instance.t;
  candidates : Logic.Tgd.t list;
  weights : Core.Problem.weights;
}

type multihop = {
  initial : Relational.Instance.t;  (** the first hop's source instance *)
  hops : (Logic.Tgd.t list * Relational.Instance.t) list;
      (** per hop: the candidate tgd pool and the observed instance its
          output schema carries; hop [k]'s observed instance is hop
          [k+1]'s input *)
  hop_weights : Core.Problem.weights;
}

type payload =
  | Mapping of mapping
  | Setcover of Core.Setcover.instance
  | Multihop of multihop
      (** an S → T → U (optionally → W) chain — the mapping-algebra
          workload: composition, hop-by-hop vs composed chases, and the
          end-to-end selection problem *)

type t = {
  seed : int;  (** the generator seed this case (or its ancestor) came from *)
  tag : string;  (** generator family, e.g. ["random-mapping"], ["empty-j"] *)
  payload : payload;
}

val problem : ?cache : Cache.t -> mapping -> Core.Problem.t
(** [Problem.make] under the case's weights — the shared precomputation the
    mapping oracles evaluate against. [cache] memoizes the per-candidate
    analysis (bit-identical on or off — the cache-identity oracle holds the
    whole campaign to that). *)

val multihop_problem : ?cache : Cache.t -> multihop -> Core.Problem.t
(** The end-to-end problem of a multi-hop case: candidates are
    [Algebra.compose_all] of the hop pools, the data example is the initial
    instance paired with the last hop's observed instance. *)

val num_candidates : t -> int
(** Candidate tgds of a mapping case; sets of a SET COVER case; total tgds
    across the hops of a multi-hop case. *)

val num_tuples : t -> int
(** Source plus target tuples of a mapping case; universe size of a
    SET COVER case. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** A one-line summary (tag, seed, sizes). *)
