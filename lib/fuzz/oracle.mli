(** The oracle library: every mechanically checkable invariant the paper's
    appendix (and the engine's own contracts) pin down, as named checks over
    fuzz cases.

    The ten families:

    - [eq4-eq9] — on full-tgd scenarios the Eq. 4 bitset fast path
      ({!Core.Full}) and the general Eq. 9 evaluator agree on every probed
      selection, and their exact solvers find equal optima;
    - [incremental] — {!Core.Incremental} matches the naive
      {!Core.Objective} after every flip of a random flip sequence, every
      probed [flip_delta] is exact, and the internal state passes
      {!Core.Incremental.self_check};
    - [solver-order] — [F(exact) <= F(local-search) <= F(greedy) <= F({})]
      and [F(exact) <= F(anneal) <= F({})] on small problems;
    - [setcover] — the Theorem 1 closed form
      [F(M) = (m+1)(|U| - |∪ R_i|) + 2|M|] equals the Eq. 9 evaluator on
      the reduced problem for every probed selection;
    - [cq-index] — {!Logic.Cq.answers_indexed} (and the indexed extension
      evaluator) agree with the unindexed evaluator on the case's tgd bodies
      and heads;
    - [chase-determinism] — the chase is invariant under permutation of the
      source tuples, with and without a prebuilt index, passes
      {!Chase.check_result}, and the objective is invariant under
      permutation of the candidate list;
    - [cache-identity] — building the problem through a private
      {!Cache.t} (cold and warm) and solving through it yields problems
      and selections byte-identical to the uncached pipeline, and a warm
      rebuild recomputes nothing;
    - [columnar-identity] — {!Relational.Columnar.of_instance} round-trips
      losslessly, {!Logic.Cq.Columnar} returns exactly the indexed
      row-major answer lists (order included) on bodies and heads, with
      and without a seeded partial substitution, {!Chase.run_columnar}
      equals {!Chase.run} trigger for trigger, and none of it changes when
      the store is rebuilt from a permuted tuple list;
    - [core-solution] — the core of the chased target is a sub-instance
      retaining every ground tuple, homomorphically equivalent to it in
      both directions, idempotent, and coring never grows the produced
      [K_M];
    - [warm-start] — a {!Core.Cmd} solve warm-started from a previous
      solve's ADMM state ({!Core.Cmd.warm}) returns the cold selection
      bit-for-bit, both on the same problem (exact model match, state
      applied) and on a neighbouring one (last candidate dropped — the
      {!Psl.Grounding.delta} mismatch makes Cmd fall back to the cold
      start); and a sequential {!Core.Portfolio} race is deterministic in
      [(problem, seed)] and never beaten by an individually-run roster
      member.

    Checks are deterministic functions of the case: auxiliary randomness
    (probed selections, flip sequences, permutations) is derived from the
    case seed, so a failing case replays identically from the corpus. *)

type ctx
(** A case plus its lazily shared precomputation ({!Core.Problem.make}
    chases once per candidate; the oracles share one problem per case). *)

val make_ctx : ?cache : Cache.t -> Case.t -> ctx
(** [cache] is used for the context's shared problem construction — results
    are identical with or without it. *)

type verdict =
  | Pass
  | Skip  (** the oracle does not apply to this case shape *)
  | Fail of string  (** invariant violated; the payload describes how *)

type t = {
  name : string;
  doc : string;
  check : ctx -> verdict;
}

val all : t list
(** The ten families, in the order above. *)

val names : string list

val find : string -> t option

val run : ?cache : Cache.t -> t -> Case.t -> verdict
(** [check] on a fresh context (built with [cache] when given), with
    exceptions converted to [Fail]. *)

val is_failure : ?cache : Cache.t -> t -> Case.t -> bool
(** The shrinking predicate: does the oracle fail (or raise) on this case? *)

val faults : (string * t) list
(** Deliberately broken oracle variants, keyed by fault name, for exercising
    the shrinking and corpus pipeline end to end: [flip-delta] perturbs the
    expected flip delta of candidates covering at least two tuples;
    [closed-form] drops the [+1] from the SET COVER closed form. Each is a
    drop-in replacement for the real oracle of the same [t.name]. *)
