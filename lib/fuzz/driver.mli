(** The fuzzing campaign driver.

    A campaign runs [budget] generated cases through a set of oracles. Case
    [i] is generated from [Parallel.Seed.derive seed i], cases are fanned
    out over a {!Parallel.Pool} (shrinking included, in-worker), and the
    per-case reports are folded into a summary strictly in case order — so
    for a fixed [seed] and [budget] the summary (and {!pp_summary} output)
    is bit-identical for any [--jobs]. *)

type failure = {
  oracle : string;  (** name of the failing oracle family *)
  detail : string;  (** failure message on the shrunk case *)
  original : Case.t;  (** the generated case that first failed *)
  shrunk : Case.t;  (** its 1-minimal shrink, still failing *)
}

type summary = {
  seed : int;
  budget : int;
  passed : int;  (** (case, oracle) checks that passed *)
  skipped : int;  (** checks whose oracle did not apply *)
  by_oracle : (string * (int * int * int)) list;
      (** per oracle: (pass, skip, fail), in oracle order *)
  by_tag : (string * int) list;
      (** generated cases per generator family, in {!Gen.tags} order *)
  failures : failure list;  (** in case order, then oracle order *)
}

val run :
  ?pool : Parallel.Pool.t ->
  ?cache : Cache.t ->
  ?oracles : Oracle.t list ->
  seed : int ->
  budget : int ->
  unit ->
  summary
(** Runs the campaign. [oracles] defaults to {!Oracle.all}; without a
    [pool] the cases run sequentially in the caller. [cache] memoizes the
    per-case problem construction across oracles and duplicate cases; the
    summary is bit-identical with or without it (the cache-identity oracle
    checks exactly that per case), and the cache's hit/miss totals are
    jobs-invariant because lookups are single-flight. *)

val pp_summary : Format.formatter -> summary -> unit
(** Deterministic (no timing, no paths): two summaries compare equal iff
    their rendered forms do. *)

val save_failures : dir : string -> summary -> string list
(** Persists each failure's shrunk case as a corpus entry; returns the
    paths written, in failure order. *)

val replay : ?oracles : Oracle.t list -> Corpus.entry -> (unit, string) result
(** Re-runs the entry's recorded oracle on its case. [Ok ()] on pass or
    skip; [Error] carries the failure message, or a note that the recorded
    oracle name is unknown. *)
