open Relational
open Logic

type entry = {
  oracle : string;
  detail : string;
  case : Case.t;
}

let filename e =
  Printf.sprintf "%s__%s__s%d.scn" e.oracle e.case.Case.tag e.case.Case.seed

(* --- schema inference --------------------------------------------------- *)

(* The case format stores bare tuples and tgds; the Document format wants
   schemas. Infer them: every relation mentioned in a candidate body or a
   source tuple is a source relation, every relation in a head or a target
   tuple is a target one, with attributes a1..ak. Arities must agree across
   mentions (the generator guarantees this). *)
let infer_schemas (m : Case.mapping) =
  let add tbl name arity =
    match Hashtbl.find_opt tbl name with
    | None -> Hashtbl.replace tbl name arity
    | Some a when a = arity -> ()
    | Some a ->
      invalid_arg
        (Printf.sprintf "Corpus: relation %s used with arities %d and %d" name
           a arity)
  in
  let src = Hashtbl.create 8 and tgt = Hashtbl.create 8 in
  List.iter
    (fun (t : Tgd.t) ->
      List.iter (fun (a : Atom.t) -> add src a.Atom.rel (Atom.arity a)) t.Tgd.body;
      List.iter (fun (a : Atom.t) -> add tgt a.Atom.rel (Atom.arity a)) t.Tgd.head)
    m.Case.candidates;
  Instance.iter (fun t -> add src t.Tuple.rel (Tuple.arity t)) m.Case.source;
  Instance.iter (fun t -> add tgt t.Tuple.rel (Tuple.arity t)) m.Case.j;
  let schema tbl =
    Hashtbl.fold
      (fun name arity acc ->
        Relation.make name
          (List.init arity (fun i -> Printf.sprintf "a%d" (i + 1)))
        :: acc)
      tbl []
    |> List.sort (fun (a : Relation.t) b -> compare a.Relation.name b.Relation.name)
    |> Schema.of_relations
  in
  (schema src, schema tgt)

(* --- rendering ----------------------------------------------------------- *)

let first_line s =
  match String.index_opt s '\n' with
  | None -> s
  | Some i -> String.sub s 0 i

let to_string e =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "# cmd-fuzz counterexample; replay with: fuzz_run --replay <this file>";
  line "oracle %s" e.oracle;
  line "seed %d" e.case.Case.seed;
  line "tag %s" e.case.Case.tag;
  (match first_line e.detail with
  | "" -> ()
  | d -> line "detail %s" d);
  (match e.case.Case.payload with
  | Case.Mapping m ->
    line "payload mapping";
    line "weights %d %d %d" m.Case.weights.Core.Problem.w_unexplained
      m.Case.weights.Core.Problem.w_errors m.Case.weights.Core.Problem.w_size;
    line "---";
    let source, target = infer_schemas m in
    let doc =
      {
        Serialize.Document.empty with
        Serialize.Document.source;
        target;
        tgds = m.Case.candidates;
        instance_i = m.Case.source;
        instance_j = m.Case.j;
      }
    in
    Buffer.add_string buf (Serialize.Document.to_string doc)
  | Case.Multihop mh ->
    line "payload multihop";
    line "weights %d %d %d" mh.Case.hop_weights.Core.Problem.w_unexplained
      mh.Case.hop_weights.Core.Problem.w_errors
      mh.Case.hop_weights.Core.Problem.w_size;
    line "hops %d" (List.length mh.Case.hops);
    (* One document section per hop, '---'-separated: hop k's tgds and its
       observed instance as instance_j; instance_i repeats the hop's input
       (the initial instance for hop 1) so each section reads standalone. *)
    let _ =
      List.fold_left
        (fun input (tgds, observed) ->
          line "---";
          let source, target =
            infer_schemas
              {
                Case.source = input;
                j = observed;
                candidates = tgds;
                weights = mh.Case.hop_weights;
              }
          in
          let doc =
            {
              Serialize.Document.empty with
              Serialize.Document.source;
              target;
              tgds;
              instance_i = input;
              instance_j = observed;
            }
          in
          Buffer.add_string buf (Serialize.Document.to_string doc);
          observed)
        mh.Case.initial mh.Case.hops
    in
    ()
  | Case.Setcover s ->
    line "payload setcover";
    line "budget %d" s.Core.Setcover.budget;
    line "universe%s"
      (String.concat "" (List.map (fun e -> " " ^ e) s.Core.Setcover.universe));
    List.iter
      (fun (name, elems) ->
        line "set %s%s" name
          (String.concat "" (List.map (fun e -> " " ^ e) elems)))
      s.Core.Setcover.sets);
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------- *)

let ( let* ) = Result.bind

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

(* Split a header line into directive and remainder. *)
let directive line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
    ( String.sub line 0 i,
      String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let of_string text =
  let lines = String.split_on_char '\n' text in
  (* Header: everything up to the "---" separator (or end of file for
     setcover entries, which have no document section). *)
  let rec split_header acc = function
    | [] -> (List.rev acc, [])
    | "---" :: rest -> (List.rev acc, rest)
    | l :: rest -> split_header (l :: acc) rest
  in
  let header, body = split_header [] lines in
  let header =
    List.filter
      (fun l ->
        let l = String.trim l in
        l <> "" && l.[0] <> '#')
      header
  in
  let fields = List.map directive header in
  let find key = List.assoc_opt key fields in
  let require key =
    match find key with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing '%s' header" key)
  in
  let int_field key v =
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "bad integer in '%s %s'" key v)
  in
  let* oracle = require "oracle" in
  let* seed = Result.bind (require "seed") (int_field "seed") in
  let* tag = require "tag" in
  let detail = Option.value (find "detail") ~default:"" in
  let* payload_kind = require "payload" in
  let* payload =
    match payload_kind with
    | "mapping" ->
      let* weights =
        match find "weights" with
        | None -> Ok Core.Problem.default_weights
        | Some w -> (
          match List.map int_of_string_opt (split_words w) with
          | [ Some w1; Some w2; Some w3 ] ->
            Ok { Core.Problem.w_unexplained = w1; w_errors = w2; w_size = w3 }
          | _ -> Error (Printf.sprintf "bad 'weights %s'" w))
      in
      let* doc =
        match Serialize.Parser.parse (String.concat "\n" body) with
        | Ok doc -> Ok doc
        | Error e -> Error (Format.asprintf "%a" Serialize.Parser.pp_error e)
      in
      Ok
        (Case.Mapping
           {
             Case.source = doc.Serialize.Document.instance_i;
             j = doc.Serialize.Document.instance_j;
             candidates = doc.Serialize.Document.tgds;
             weights;
           })
    | "multihop" ->
      let* weights =
        match find "weights" with
        | None -> Ok Core.Problem.default_weights
        | Some w -> (
          match List.map int_of_string_opt (split_words w) with
          | [ Some w1; Some w2; Some w3 ] ->
            Ok { Core.Problem.w_unexplained = w1; w_errors = w2; w_size = w3 }
          | _ -> Error (Printf.sprintf "bad 'weights %s'" w))
      in
      let* n = Result.bind (require "hops") (int_field "hops") in
      (* the body is one '---'-separated document section per hop *)
      let rec split_sections acc cur = function
        | [] -> List.rev (List.rev cur :: acc)
        | "---" :: rest -> split_sections (List.rev cur :: acc) [] rest
        | l :: rest -> split_sections acc (l :: cur) rest
      in
      let sections =
        split_sections [] [] body
        |> List.filter (fun ls -> List.exists (fun l -> String.trim l <> "") ls)
      in
      if List.length sections <> n then
        Error
          (Printf.sprintf "expected %d hop sections, found %d" n
             (List.length sections))
      else
        let* docs =
          List.fold_left
            (fun acc section ->
              let* docs = acc in
              match Serialize.Parser.parse (String.concat "\n" section) with
              | Ok doc -> Ok (doc :: docs)
              | Error e ->
                Error (Format.asprintf "%a" Serialize.Parser.pp_error e))
            (Ok []) sections
          |> Result.map List.rev
        in
        let initial =
          match docs with
          | d :: _ -> d.Serialize.Document.instance_i
          | [] -> Instance.empty
        in
        Ok
          (Case.Multihop
             {
               Case.initial;
               hops =
                 List.map
                   (fun (d : Serialize.Document.t) ->
                     ( d.Serialize.Document.tgds,
                       d.Serialize.Document.instance_j ))
                   docs;
               hop_weights = weights;
             })
    | "setcover" ->
      let* budget = Result.bind (require "budget") (int_field "budget") in
      let universe =
        match find "universe" with None -> [] | Some u -> split_words u
      in
      let sets =
        List.filter_map
          (fun (key, v) ->
            if key <> "set" then None
            else
              match split_words v with
              | [] -> None
              | name :: elems -> Some (name, elems))
          fields
      in
      if sets = [] then Error "setcover entry has no 'set' lines"
      else Ok (Case.Setcover { Core.Setcover.universe; sets; budget })
    | k -> Error (Printf.sprintf "unknown payload kind '%s'" k)
  in
  Ok { oracle; detail; case = { Case.seed; tag; payload } }

(* --- filesystem ---------------------------------------------------------- *)

let save ~dir e =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (filename e) in
  let oc = open_out path in
  output_string oc (to_string e);
  close_out oc;
  path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | text -> (
    match of_string text with
    | Ok e -> Ok e
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then Ok []
  else
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".scn")
      |> List.sort compare
    in
    List.fold_left
      (fun acc f ->
        let* entries = acc in
        let* e = load (Filename.concat dir f) in
        Ok (e :: entries))
      (Ok []) files
    |> Result.map List.rev
