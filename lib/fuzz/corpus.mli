(** The replayable regression corpus.

    Every counterexample the fuzzer shrinks is persisted as one text file in
    a corpus directory, and the test suite replays every file forever after.
    A corpus file is a small header —

    {v
    # cmd-fuzz counterexample
    oracle incremental
    seed 4242
    tag random-mapping
    detail flip delta mismatch for candidate 1
    payload mapping
    weights 1 1 1
    ---
    v}

    — followed (for [payload mapping]) by a scenario in the
    {!Serialize.Document} textual format, with schemas inferred from the
    case's candidates and tuples. A [payload setcover] file instead carries
    [budget n], [universe e0 e1 ...] and [set NAME e0 ...] lines in the
    header and no document section.

    The format round-trips: [load] of a [save]d entry reconstructs a case
    that is {!Case.equal} to the original, so a corpus entry replays the
    exact failure that produced it (oracle randomness is derived from the
    recorded seed). *)

type entry = {
  oracle : string;  (** name of the oracle family that failed *)
  detail : string;  (** first line of the failure message, or [""] *)
  case : Case.t;
}

val filename : entry -> string
(** [oracle__tag__s<seed>.scn] — deterministic, so re-fuzzing the same seed
    overwrites rather than accumulates. *)

val to_string : entry -> string

val of_string : string -> (entry, string) result

val save : dir : string -> entry -> string
(** Writes [to_string entry] to [dir/filename entry] (creating [dir] if
    needed) and returns the path written. *)

val load : string -> (entry, string) result
(** Reads one corpus file. The error string includes the path; an
    unreadable or missing file is an [Error], never a [Sys_error]. *)

val load_dir : string -> (entry list, string) result
(** Loads every [*.scn] file of a directory in lexicographic filename
    order. Returns [Ok []] if the directory does not exist; the first
    malformed file aborts the load. *)
