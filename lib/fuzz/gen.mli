(** Seeded random-scenario generation.

    [case ~seed] is a pure function of [seed]: the same seed always yields
    the same case, so any counterexample is reproducible from its seed alone
    (and parallel fuzzing runs, which derive per-case seeds with
    {!Parallel.Seed.derive}, are bit-identical to sequential ones).

    The generator generalises the paper's Section VI-A procedure to
    property-test scale. Most seeds produce a small random mapping scenario:
    a random source/target vocabulary, random candidate tgds (a Clio-shaped
    mix of frontier, existential and constant head positions), a random
    source instance, and a target instance built the iBench way — the
    grounded chase of a random ground-truth subset with [piErrors]-style
    deletions and [piUnexplained]-style noise tuples. The remaining seeds
    are split between full-tgd scenarios (the Eq. 4 regime), SET COVER
    instances (the Theorem 1 reduction), genuine {!Ibench.Generator}
    scenarios with random primitive mixes and noise sweeps, multi-hop
    {!Ibench.Multihop} chains (the mapping-algebra workload), and
    adversarial corner cases: empty target, all-noise target, duplicate
    candidates, empty source, and a one-constant domain. *)

val case : seed : int -> Case.t

val tags : string list
(** All generator family tags, for reporting. *)
