open Relational

(* One pass: try deleting each element of [items] (as rebuilt into a case by
   [rebuild]) in order, accumulating every deletion that keeps the failure.
   Returns the surviving items and whether anything was removed. *)
let sweep ~fails ~rebuild items =
  let removed = ref false in
  let rec go kept = function
    | [] -> List.rev kept
    | x :: rest ->
      let candidate = rebuild (List.rev_append kept rest) in
      if fails candidate then begin
        removed := true;
        go kept rest
      end
      else go (x :: kept) rest
  in
  let survivors = go [] items in
  (survivors, !removed)

(* Like {!sweep}, but never empties the list (Setcover.validate rejects an
   empty set list). *)
let sweep_keep_one ~fails ~rebuild items =
  let removed = ref false in
  let rec go kept = function
    | [] -> List.rev kept
    | [ x ] when kept = [] -> [ x ]
    | x :: rest ->
      let candidate = rebuild (List.rev_append kept rest) in
      if fails candidate then begin
        removed := true;
        go kept rest
      end
      else go (x :: kept) rest
  in
  let survivors = go [] items in
  (survivors, !removed)

let shrink_mapping ~fails (case : Case.t) (m : Case.mapping) =
  let rebuild m' = { case with Case.payload = Case.Mapping m' } in
  let rec fixpoint m =
    let candidates, r1 =
      sweep ~fails
        ~rebuild:(fun candidates -> rebuild { m with Case.candidates })
        m.Case.candidates
    in
    let m = { m with Case.candidates } in
    let j_tuples, r2 =
      sweep ~fails
        ~rebuild:(fun ts -> rebuild { m with Case.j = Instance.of_tuples ts })
        (Instance.tuples m.Case.j)
    in
    let m = { m with Case.j = Instance.of_tuples j_tuples } in
    let src_tuples, r3 =
      sweep ~fails
        ~rebuild:(fun ts ->
          rebuild { m with Case.source = Instance.of_tuples ts })
        (Instance.tuples m.Case.source)
    in
    let m = { m with Case.source = Instance.of_tuples src_tuples } in
    if r1 || r2 || r3 then fixpoint m else m
  in
  rebuild (fixpoint m)

let shrink_setcover ~fails (case : Case.t) (s : Core.Setcover.instance) =
  let rebuild s' = { case with Case.payload = Case.Setcover s' } in
  let rec fixpoint (s : Core.Setcover.instance) =
    (* sets (validate demands at least one, so never empty the list) *)
    let sets, r1 =
      sweep_keep_one ~fails
        ~rebuild:(fun sets -> rebuild { s with Core.Setcover.sets })
        s.Core.Setcover.sets
    in
    let s = { s with Core.Setcover.sets } in
    (* universe elements (removal also filters them out of every set) *)
    let universe, r2 =
      sweep ~fails
        ~rebuild:(fun universe ->
          rebuild
            {
              s with
              Core.Setcover.universe;
              sets =
                List.map
                  (fun (name, elems) ->
                    (name, List.filter (fun e -> List.mem e universe) elems))
                  s.Core.Setcover.sets;
            })
        s.Core.Setcover.universe
    in
    let s =
      {
        s with
        Core.Setcover.universe;
        sets =
          List.map
            (fun (name, elems) ->
              (name, List.filter (fun e -> List.mem e universe) elems))
            s.Core.Setcover.sets;
      }
    in
    (* members within each set *)
    let r3 = ref false in
    let sets = ref s.Core.Setcover.sets in
    List.iteri
      (fun idx (name, _) ->
        let replace_at elems =
          List.mapi
            (fun k (n, es) -> if k = idx then (name, elems) else (n, es))
            !sets
        in
        let elems, removed =
          sweep ~fails
            ~rebuild:(fun elems ->
              rebuild { s with Core.Setcover.sets = replace_at elems })
            (List.assoc name !sets)
        in
        if removed then begin
          r3 := true;
          sets := replace_at elems
        end)
      s.Core.Setcover.sets;
    let r3 = !r3 in
    let s = { s with Core.Setcover.sets = !sets } in
    (* budget decrements *)
    let rec lower_budget s changed =
      if s.Core.Setcover.budget <= 1 then (s, changed)
      else
        let smaller =
          { s with Core.Setcover.budget = s.Core.Setcover.budget - 1 }
        in
        if fails (rebuild smaller) then lower_budget smaller true
        else (s, changed)
    in
    let s, r4 = lower_budget s false in
    if r1 || r2 || r3 || r4 then fixpoint s else s
  in
  rebuild (fixpoint s)

let shrink_multihop ~fails (case : Case.t) (mh : Case.multihop) =
  let rebuild mh' = { case with Case.payload = Case.Multihop mh' } in
  let rec fixpoint (mh : Case.multihop) =
    (* whole hops (keep at least one so the chain stays a chain) *)
    let hops, r0 =
      sweep_keep_one ~fails
        ~rebuild:(fun hops -> rebuild { mh with Case.hops })
        mh.Case.hops
    in
    let mh = { mh with Case.hops } in
    (* tgds and observed tuples within each hop *)
    let r1 = ref false in
    let hops = ref mh.Case.hops in
    List.iteri
      (fun idx _ ->
        let replace_at v =
          List.mapi (fun k h -> if k = idx then v else h) !hops
        in
        let tgds, obs = List.nth !hops idx in
        let tgds, removed =
          sweep ~fails
            ~rebuild:(fun tgds ->
              rebuild { mh with Case.hops = replace_at (tgds, obs) })
            tgds
        in
        if removed then begin
          r1 := true;
          hops := replace_at (tgds, obs)
        end;
        let tgds, obs = List.nth !hops idx in
        let obs_tuples, removed =
          sweep ~fails
            ~rebuild:(fun ts ->
              rebuild
                { mh with Case.hops = replace_at (tgds, Instance.of_tuples ts) })
            (Instance.tuples obs)
        in
        if removed then begin
          r1 := true;
          hops := replace_at (tgds, Instance.of_tuples obs_tuples)
        end)
      mh.Case.hops;
    let mh = { mh with Case.hops = !hops } in
    let initial_tuples, r2 =
      sweep ~fails
        ~rebuild:(fun ts ->
          rebuild { mh with Case.initial = Instance.of_tuples ts })
        (Instance.tuples mh.Case.initial)
    in
    let mh = { mh with Case.initial = Instance.of_tuples initial_tuples } in
    if r0 || !r1 || r2 then fixpoint mh else mh
  in
  rebuild (fixpoint mh)

let shrink ~fails case =
  if not (fails case) then case
  else
    match case.Case.payload with
    | Case.Mapping m -> shrink_mapping ~fails case m
    | Case.Setcover s -> shrink_setcover ~fails case s
    | Case.Multihop mh -> shrink_multihop ~fails case mh
