(** Deterministic multi-hop (S → T → U [→ W]) scenario generation.

    The single-hop generator ({!Generator}) exercises one mapping-selection
    problem; this one chains two or three, so the mapping algebra
    ({!Algebra}) has something to compose. Hop 1 is one
    copy/project/permute tgd per source relation — each with its own head
    relation, so a later unfolding can always tell which tgd produced an
    atom — optionally inventing an existential column. Later hops join one
    or two relations of the previous hop's head schema on a shared variable
    and project onto frontier variables. Observed instances are grounded
    chases of the previous hop's observed instance, perturbed by the
    configured noise, so hop [k]'s output is literally hop [k+1]'s input. *)

type config = {
  relations : int;  (** source relations, and tgds per later hop *)
  arity : int;  (** arity of the source relations *)
  rows : int;  (** tuples per source relation *)
  hops : int;  (** 2 or 3 *)
  pi_corresp : int;
      (** percent chance each ground-truth tgd gains a permuted spurious
          twin in the hop's candidate pool *)
  pi_errors : int;  (** percent of clean observed tuples deleted *)
  pi_unexplained : int;
      (** percent of noise-only chase tuples added to the observed
          instance *)
  seed : int;
}

val default : config
(** 2 relations of arity 2, 3 rows, 2 hops, no noise, seed 42. *)

val validate : config -> (unit, string) result

type hop = {
  tgds : Logic.Tgd.t list;  (** candidate pool: ground truth then noise twins *)
  ground_truth : Logic.Tgd.t list;
  observed : Relational.Instance.t;
      (** grounded chase of the previous hop's observed instance under
          [ground_truth], after noise *)
}

and t = { config : config; source : Relational.Instance.t; hops : hop list }

val generate : config -> t
(** Deterministic in [config] (including [seed]).
    @raise Invalid_argument when [validate] rejects the config. *)

val mappings : t -> Logic.Tgd.t list list
(** The per-hop candidate pools, in hop order — the argument
    {!Algebra.compose_all} expects. *)

val target : t -> Relational.Instance.t
(** The last hop's observed instance: the selection target of the
    end-to-end problem. *)

val pp_summary : Format.formatter -> t -> unit
