open Relational
open Logic

type config = {
  relations : int;
  arity : int;
  rows : int;
  hops : int;
  pi_corresp : int;
  pi_errors : int;
  pi_unexplained : int;
  seed : int;
}

let default =
  {
    relations = 2;
    arity = 2;
    rows = 3;
    hops = 2;
    pi_corresp = 0;
    pi_errors = 0;
    pi_unexplained = 0;
    seed = 42;
  }

let validate c =
  if c.relations < 1 then Error "relations must be >= 1"
  else if c.arity < 1 then Error "arity must be >= 1"
  else if c.rows < 1 then Error "rows must be >= 1"
  else if c.hops < 2 || c.hops > 3 then Error "hops must be 2 or 3"
  else if
    List.exists
      (fun p -> p < 0 || p > 100)
      [ c.pi_corresp; c.pi_errors; c.pi_unexplained ]
  then Error "noise percentages must be in [0, 100]"
  else Ok ()

type hop = {
  tgds : Tgd.t list;
  ground_truth : Tgd.t list;
  observed : Instance.t;
}

type t = { config : config; source : Instance.t; hops : hop list }

let mappings t = List.map (fun h -> h.tgds) t.hops

let target t =
  match List.rev t.hops with
  | last :: _ -> last.observed
  | [] -> Instance.empty

(* --- small deterministic helpers --------------------------------------- *)

let shuffle rng l =
  let arr = Array.of_list l in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  Array.to_list arr

let select_pct rng pct l =
  let n = List.length l in
  let count = max 0 (min n (((pct * n) + 50) / 100)) in
  List.filteri (fun i _ -> i < count) (shuffle rng l)

let permutation rng n = shuffle rng (List.init n Fun.id)

(* Swap two head-argument positions — the spurious twin of a ground-truth
   tgd. Returns [None] when the head has no two distinct arguments to swap. *)
let permuted_twin rng (tgd : Tgd.t) =
  match tgd.Tgd.head with
  | [ h ] when Atom.arity h >= 2 ->
    let n = Atom.arity h in
    let i = Random.State.int rng n in
    let j = (i + 1 + Random.State.int rng (n - 1)) mod n in
    let args = Array.copy h.Atom.args in
    let t = args.(i) in
    args.(i) <- args.(j);
    args.(j) <- t;
    if args = h.Atom.args then None
    else
      Some
        (Tgd.make
           ~label:(tgd.Tgd.label ^ "_x")
           ~body:tgd.Tgd.body
           ~head:[ Atom.make h.Atom.rel (Array.to_list args) ]
           ())
  | _ -> None

(* --- tgd construction --------------------------------------------------- *)

let vars n = List.init n (fun i -> Term.Var (Printf.sprintf "V%d" i))

(* Hop 1: one copy/project/permute tgd per source relation, each with its
   own head relation (so unfolding a later hop can always tell which tgd
   produced an atom), optionally inventing one existential column. *)
let hop1_tgds rng ~relations ~arity =
  List.init relations (fun i ->
      let body = [ Atom.make (Printf.sprintf "s%d" i) (vars arity) ] in
      let keep = max 1 (arity - Random.State.int rng 2) in
      let positions = List.filteri (fun q _ -> q < keep) (permutation rng arity) in
      let kept = List.map (fun p -> Term.Var (Printf.sprintf "V%d" p)) positions in
      let extra =
        if Random.State.int rng 100 < 40 then
          [ Term.Var (Printf.sprintf "E%d" i) ]
        else []
      in
      Tgd.make
        ~label:(Printf.sprintf "h1_%d" i)
        ~body
        ~head:[ Atom.make (Printf.sprintf "t%d" i) (kept @ extra) ]
        ())

let head_arities tgds =
  List.concat_map
    (fun (t : Tgd.t) ->
      List.map (fun (a : Atom.t) -> (a.Atom.rel, Atom.arity a)) t.Tgd.head)
    tgds
  |> List.sort_uniq compare

(* Hop k (k >= 2): one tgd per output relation, joining one or two atoms of
   the previous hop's head schema on a shared variable; heads project onto
   frontier variables only. *)
let join_tgds rng ~prev ~count ~out_prefix ~label_prefix =
  let prev = Array.of_list prev in
  let n_prev = Array.length prev in
  List.init count (fun k ->
      let rel1, ar1 = prev.(k mod n_prev) in
      let a1 =
        Atom.make rel1 (List.init ar1 (fun i -> Term.Var (Printf.sprintf "A%d" i)))
      in
      let join = n_prev >= 1 && Random.State.int rng 100 < 60 in
      let body =
        if not join then [ a1 ]
        else
          let rel2, ar2 = prev.((k + 1) mod n_prev) in
          let args2 =
            Array.init ar2 (fun i -> Term.Var (Printf.sprintf "B%d" i))
          in
          let p = Random.State.int rng ar2 in
          let q = Random.State.int rng ar1 in
          args2.(p) <- a1.Atom.args.(q);
          [ a1; Atom.make rel2 (Array.to_list args2) ]
      in
      let body_vars =
        List.concat_map
          (fun (a : Atom.t) ->
            Array.to_list a.Atom.args
            |> List.filter_map (function
                 | Term.Var v -> Some v
                 | Term.Cst _ -> None))
          body
        |> List.sort_uniq String.compare
      in
      let width = 1 + Random.State.int rng (min 3 (List.length body_vars)) in
      let head_args =
        shuffle rng body_vars
        |> List.filteri (fun i _ -> i < width)
        |> List.map (fun v -> Term.Var v)
      in
      Tgd.make
        ~label:(Printf.sprintf "%s%d" label_prefix k)
        ~body
        ~head:[ Atom.make (Printf.sprintf "%s%d" out_prefix k) head_args ]
        ())

(* --- data --------------------------------------------------------------- *)

(* All columns draw from one small shared pool, so cross-relation joins
   actually fire. *)
let source_instance rng ~relations ~arity ~rows =
  let pool = rows + 2 in
  let tuples =
    List.concat_map
      (fun r ->
        List.init rows (fun _ ->
            {
              Tuple.rel = Printf.sprintf "s%d" r;
              values =
                Array.init arity (fun _ ->
                    Value.Const
                      (Printf.sprintf "d%d" (Random.State.int rng pool)));
            }))
      (List.init relations Fun.id)
  in
  Instance.of_tuples tuples

(* Grounded chase: chase [inst] with [tgds] and replace the invented nulls
   with fresh constants, consistently within each trigger group (the same
   grounding discipline as {!Generator.generate}). *)
let grounded_chase skolem inst tgds =
  let triggers = (Chase.run inst tgds).Chase.triggers in
  List.fold_left
    (fun acc (tr : Chase.Trigger.t) ->
      let mapping = Hashtbl.create 4 in
      List.fold_left
        (fun acc tu ->
          let grounded =
            Tuple.map_values
              (fun v ->
                match v with
                | Value.Const _ -> v
                | Value.Null n -> (
                  match Hashtbl.find_opt mapping n with
                  | Some c -> c
                  | None ->
                    let c = Value.Const (Printf.sprintf "mk%d" !skolem) in
                    incr skolem;
                    Hashtbl.add mapping n c;
                    c))
              tu
          in
          Instance.add grounded acc)
        acc tr.Chase.Trigger.tuples)
    Instance.empty triggers

let generate config =
  (match validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Multihop.generate: " ^ msg));
  let rng = Random.State.make [| 0x4a0b; config.seed |] in
  let skolem = ref 0 in
  let source =
    source_instance rng ~relations:config.relations ~arity:config.arity
      ~rows:config.rows
  in
  let hop1 = hop1_tgds rng ~relations:config.relations ~arity:config.arity in
  let hop2 =
    join_tgds rng ~prev:(head_arities hop1) ~count:config.relations
      ~out_prefix:"u" ~label_prefix:"h2_"
  in
  let hop3 =
    if config.hops < 3 then []
    else
      join_tgds rng ~prev:(head_arities hop2) ~count:config.relations
        ~out_prefix:"w" ~label_prefix:"h3_"
  in
  let ground = List.filter (fun m -> m <> []) [ hop1; hop2; hop3 ] in
  let build_hop prev_observed gt =
    let noise_tgds =
      List.filter_map
        (fun t ->
          if Random.State.int rng 100 < config.pi_corresp then
            permuted_twin rng t
          else None)
        gt
    in
    let clean = grounded_chase skolem prev_observed gt in
    let deletions =
      select_pct rng config.pi_errors (Instance.tuples clean)
    in
    let additions =
      grounded_chase skolem prev_observed noise_tgds
      |> Instance.tuples
      |> List.filter (fun t -> not (Instance.mem t clean))
      |> select_pct rng config.pi_unexplained
    in
    let observed =
      List.fold_left
        (fun acc t -> Instance.remove t acc)
        clean deletions
      |> Instance.add_all additions
    in
    { tgds = gt @ noise_tgds; ground_truth = gt; observed }
  in
  let _, hops =
    List.fold_left
      (fun (prev, acc) gt ->
        let hop = build_hop prev gt in
        (hop.observed, hop :: acc))
      (source, []) ground
  in
  { config; source; hops = List.rev hops }

let pp_summary fmt t =
  let hop_line i h =
    Format.fprintf fmt "hop %d: %d tgds (%d ground truth), %d observed tuples@,"
      (i + 1) (List.length h.tgds)
      (List.length h.ground_truth)
      (List.length (Instance.tuples h.observed))
  in
  Format.fprintf fmt "@[<v>multi-hop scenario: %d source tuples, %d hops@,"
    (List.length (Instance.tuples t.source))
    (List.length t.hops);
  List.iteri hop_line t.hops;
  Format.fprintf fmt "@]"
