open Relational
open Util

(* --- canonical keys ----------------------------------------------------- *)

module Key = struct
  (* Percent-encode everything outside [A-Za-z0-9_.~-] so renderings can be
     joined with spaces/commas and split back unambiguously (the disk format
     reuses this). *)
  let enc s =
    let plain = function
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' | '~' | '-' -> true
      | _ -> false
    in
    if String.for_all plain s then s
    else begin
      let buf = Buffer.create (String.length s + 8) in
      String.iter
        (fun c ->
          if plain c then Buffer.add_char buf c
          else Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c)))
        s;
      Buffer.contents buf
    end

  let dec s =
    let n = String.length s in
    let buf = Buffer.create n in
    let hex c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let rec go i =
      if i >= n then Some (Buffer.contents buf)
      else if s.[i] <> '%' then begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
      else if i + 2 >= n then None
      else
        match hex s.[i + 1], hex s.[i + 2] with
        | Some hi, Some lo ->
          Buffer.add_char buf (Char.chr ((hi * 16) + lo));
          go (i + 3)
        | _ -> None
    in
    go 0

  let digest parts =
    let buf = Buffer.create 256 in
    List.iter
      (fun p ->
        Buffer.add_string buf (string_of_int (String.length p));
        Buffer.add_char buf ':';
        Buffer.add_string buf p)
      parts;
    Digest.to_hex (Digest.string (Buffer.contents buf))

  let value = function
    | Value.Const s -> "C" ^ enc s
    | Value.Null n -> "N" ^ string_of_int n

  let tuple (t : Tuple.t) =
    let fields = Array.to_list t.Tuple.values |> List.map value in
    String.concat " " (("R" ^ enc t.Tuple.rel) :: fields)

  let instance inst =
    Instance.tuples inst |> List.map tuple |> String.concat ","

  let tgd t = enc (Logic.Tgd.to_string t)

  let frac f = Printf.sprintf "%d/%d" (Frac.num f) (Frac.den f)

  let semantics = function
    | Cover.Corroborated -> "corroborated"
    | Cover.Strict -> "strict"
    | Cover.Generous -> "generous"
end

(* --- cache structure ---------------------------------------------------- *)

type payload =
  | Stats of Cover.tgd_stats  (* stored with [index = 0] *)
  | Selection of bool array
  | Chase_result of Chase.result
      (* memory-only tier: encodes to "" and never touches the disk *)

(* Completed entries sit in a circular doubly-linked list through a
   sentinel: most recent after the sentinel, eviction victim before it.
   In-flight entries are only in the table, so the LRU bound can never
   drop a computation someone is waiting on. *)
type node = {
  nkey : string;
  payload : payload;
  mutable prev : node;
  mutable next : node;
}

type slot =
  | Pending
  | Ready of node

type stats = {
  hits : int;
  misses : int;
  evictions : int;
}

type t = {
  cap : int;
  dir_ : string option;
  table : (string, slot) Hashtbl.t;
  sentinel : node;
  mutable len : int;  (* completed entries, = DLL length *)
  mutex : Mutex.t;
  cond : Condition.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let hits_counter = Telemetry.Counter.make "cache.hits"

let misses_counter = Telemetry.Counter.make "cache.misses"

let evictions_counter = Telemetry.Counter.make "cache.evictions"

let unlink n =
  n.prev.next <- n.next;
  n.next.prev <- n.prev;
  n.prev <- n;
  n.next <- n

let push_front t n =
  let h = t.sentinel in
  n.next <- h.next;
  n.prev <- h;
  h.next.prev <- n;
  h.next <- n

let rec mkdirs d =
  if d = "" || d = "." || d = "/" || Sys.file_exists d then ()
  else begin
    mkdirs (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let create ?(capacity = 16384) ?dir () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  Option.iter mkdirs dir;
  let rec sentinel =
    { nkey = ""; payload = Selection [||]; prev = sentinel; next = sentinel }
  in
  {
    cap = capacity;
    dir_ = dir;
    table = Hashtbl.create 256;
    sentinel;
    len = 0;
    mutex = Mutex.create ();
    cond = Condition.create ();
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.cap

let dir t = t.dir_

let stats t =
  Mutex.lock t.mutex;
  let s = { hits = t.hits; misses = t.misses; evictions = t.evictions } in
  Mutex.unlock t.mutex;
  s

let of_spec = function
  | "" -> None
  | "mem" -> Some (create ())
  | dir -> Some (create ~dir ())

let default =
  let cache =
    lazy
      (match Sys.getenv_opt "CACHE_DIR" with
      | None -> None
      | Some spec -> of_spec spec)
  in
  fun () -> Lazy.force cache

(* --- disk tier ---------------------------------------------------------- *)

let disk_path dir key = Filename.concat dir (key ^ ".cache")

let disk_read dir key decode =
  let path = disk_path dir key in
  if not (Sys.file_exists path) then None
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | text -> decode text
    | exception Sys_error _ -> None

(* Write-to-temp then rename, so a reader never sees a torn file. Two
   processes racing on one key write the same content; any mishap is
   caught by decode-or-recompute on the next read. *)
let disk_write dir key text =
  let path = disk_path dir key in
  let tmp = path ^ ".tmp" in
  try
    Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc text);
    Sys.rename tmp path
  with Sys_error _ -> ()

(* --- single-flight lookup ----------------------------------------------- *)

let count_hit t =
  t.hits <- t.hits + 1;
  Telemetry.Counter.incr hits_counter

let count_miss t =
  t.misses <- t.misses + 1;
  Telemetry.Counter.incr misses_counter

let evict_lru t =
  let victim = t.sentinel.prev in
  if victim != t.sentinel then begin
    unlink victim;
    Hashtbl.remove t.table victim.nkey;
    t.len <- t.len - 1;
    t.evictions <- t.evictions + 1;
    Telemetry.Counter.incr evictions_counter
  end

let lookup t key ~encode ~decode compute =
  Mutex.lock t.mutex;
  (* [counted]: this call already booked its hit (while waiting on an
     in-flight computation); never book a second one. *)
  let counted = ref false in
  let finish ~miss payload =
    Mutex.lock t.mutex;
    if miss then count_miss t else if not !counted then count_hit t;
    let rec node = { nkey = key; payload; prev = node; next = node } in
    Hashtbl.replace t.table key (Ready node);
    push_front t node;
    t.len <- t.len + 1;
    while t.len > t.cap do
      evict_lru t
    done;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    payload
  in
  let produce () =
    (* lock not held: the chase/solve behind [compute] is the expensive
       part, and disk probes should not serialize other keys either *)
    match Option.bind t.dir_ (fun dir -> disk_read dir key decode) with
    | Some payload -> finish ~miss:false payload
    | None -> (
      match compute () with
      | payload ->
        (* an empty encoding marks a memory-only payload (chase tier) *)
        Option.iter
          (fun dir ->
            let text = encode payload in
            if text <> "" then disk_write dir key text)
          t.dir_;
        finish ~miss:true payload
      | exception e ->
        Mutex.lock t.mutex;
        Hashtbl.remove t.table key;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex;
        raise e)
  in
  let rec await () =
    match Hashtbl.find_opt t.table key with
    | Some (Ready node) ->
      if not !counted then count_hit t;
      unlink node;
      push_front t node;
      let payload = node.payload in
      Mutex.unlock t.mutex;
      payload
    | Some Pending ->
      if not !counted then begin
        count_hit t;
        counted := true
      end;
      Condition.wait t.cond t.mutex;
      await ()
    | None ->
      Hashtbl.replace t.table key Pending;
      Mutex.unlock t.mutex;
      produce ()
  in
  await ()

(* --- payload codecs ----------------------------------------------------- *)

(* Line-oriented, like the serialize format: a kind tag, then one line per
   component. Tuples reuse the space-separated [Key] token rendering, which
   decodes exactly. Any malformed input decodes to [None] and is treated as
   a miss. *)

let tuple_of_tokens = function
  | [] -> None
  | rel :: fields ->
    if String.length rel < 1 || rel.[0] <> 'R' then None
    else
      Option.bind (Key.dec (String.sub rel 1 (String.length rel - 1)))
        (fun rel ->
          let field tok =
            if tok = "" then None
            else
              let rest = String.sub tok 1 (String.length tok - 1) in
              match tok.[0] with
              | 'C' -> Option.map (fun s -> Value.Const s) (Key.dec rest)
              | 'N' -> Option.map (fun n -> Value.Null n) (int_of_string_opt rest)
              | _ -> None
          in
          let rec all acc = function
            | [] -> Some (List.rev acc)
            | tok :: rest -> (
              match field tok with
              | None -> None
              | Some v -> all (v :: acc) rest)
          in
          Option.map (fun values -> Tuple.make rel values) (all [] fields))

let encode_stats (s : Cover.tgd_stats) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "tgd-stats\n";
  Buffer.add_string buf (Printf.sprintf "produced %d\n" s.Cover.produced);
  Buffer.add_string buf (Printf.sprintf "size %d\n" s.Cover.size);
  Tuple.Map.iter
    (fun t d ->
      Buffer.add_string buf
        (Printf.sprintf "cover %s %d %d\n" (Key.tuple t) (Frac.num d)
           (Frac.den d)))
    s.Cover.covers;
  List.iter
    (fun t -> Buffer.add_string buf (Printf.sprintf "error %s\n" (Key.tuple t)))
    s.Cover.error_tuples;
  Buffer.contents buf

(* Rebuilds the stats around the caller's [tgd]: the digest already pins the
   exact tgd text, so storing it again would only add a parser. *)
let decode_stats ~tgd text =
  let ( let* ) = Option.bind in
  let rec take_rev n l acc =
    if n <= 0 then Some (acc, l)
    else match l with [] -> None | x :: rest -> take_rev (n - 1) rest (x :: acc)
  in
  let int_field name line =
    match String.split_on_char ' ' line with
    | [ tag; v ] when tag = name -> int_of_string_opt v
    | _ -> None
  in
  match String.split_on_char '\n' text with
  | "tgd-stats" :: produced_l :: size_l :: rest ->
    let* produced = int_field "produced" produced_l in
    let* size = int_field "size" size_l in
    let rec go covers errors = function
      | [] | [ "" ] ->
        Some
          {
            Cover.index = 0;
            tgd;
            covers;
            error_tuples = List.rev errors;
            produced;
            size;
          }
      | line :: rest -> (
        match String.split_on_char ' ' line with
        | "cover" :: tokens ->
          let* (frac_toks, tuple_toks) = take_rev 2 (List.rev tokens) [] in
          let* t = tuple_of_tokens (List.rev tuple_toks) in
          let* num, den =
            match frac_toks with
            | [ a; b ] -> (
              match int_of_string_opt a, int_of_string_opt b with
              | Some a, Some b when b > 0 -> Some (a, b)
              | _ -> None)
            | _ -> None
          in
          go (Tuple.Map.add t (Frac.make num den) covers) errors rest
        | "error" :: tokens ->
          let* t = tuple_of_tokens tokens in
          go covers (t :: errors) rest
        | _ -> None)
    in
    go Tuple.Map.empty [] rest
  | _ -> None

let encode_selection sel =
  let bits =
    String.init (Array.length sel) (fun i -> if sel.(i) then '1' else '0')
  in
  "selection\n" ^ bits

let decode_selection text =
  match String.split_on_char '\n' text with
  | [ "selection"; bits ] ->
    if String.for_all (function '0' | '1' -> true | _ -> false) bits then
      Some (Array.init (String.length bits) (fun i -> bits.[i] = '1'))
    else None
  | _ -> None

(* --- disk re-sync ------------------------------------------------------- *)

let encode_payload = function
  | Stats s -> encode_stats s
  | Selection sel -> encode_selection sel
  | Chase_result _ -> ""

(* Snapshot the completed entries under the lock, write outside it: the
   writes are pure repair work and must not serialize concurrent lookups. *)
let sync t =
  match t.dir_ with
  | None -> ()
  | Some dir ->
    let entries =
      Mutex.lock t.mutex;
      let rec walk acc n =
        if n == t.sentinel then acc
        else walk ((n.nkey, n.payload) :: acc) n.next
      in
      let entries = walk [] t.sentinel.next in
      Mutex.unlock t.mutex;
      entries
    in
    List.iter
      (fun (key, payload) ->
        if not (Sys.file_exists (disk_path dir key)) then
          let text = encode_payload payload in
          if text <> "" then disk_write dir key text)
      entries

(* --- typed entry points ------------------------------------------------- *)

(* Rendering both instances is linear in the data; digesting them once per
   (source, j) pair keeps the per-candidate key derivation O(|tgd|). *)
let data_key ~source ~j =
  Key.digest [ "data"; Key.instance source; Key.instance j ]

let source_key ~source = Key.digest [ "src"; Key.instance source ]

(* A problem build needs both keys; rendering the source once for the pair
   halves the dominant cost of a fully warm build. *)
let example_keys ~source ~j =
  let src = Key.instance source in
  (Key.digest [ "src"; src ], Key.digest [ "data"; src; Key.instance j ])

(* The chase depends on (source, tgd) only — not on the target instance —
   so a sweep over noise levels that perturb only [J] reuses every chase
   from the neighbouring level. Memory-only: a chase result is cheap to
   hold and expensive to serialize, and the derived [tgd_stats] already
   carry the durable tier. *)
let chase t ~source_key tgd compute =
  let key = Key.digest [ "chase"; Key.tgd tgd; source_key ] in
  let payload =
    lookup t key
      ~encode:(fun _ -> "")
      ~decode:(fun _ -> None)
      (fun () -> Chase_result (compute ()))
  in
  match payload with
  | Chase_result r -> r
  | _ -> assert false

let tgd_stats t ?(semantics = Cover.Corroborated) ?(core = false) ~data_key
    ~index tgd compute =
  (* the core flag joins the key only when set, so uncored entries keep
     their historical keys (warm disk tiers stay valid) while cored and
     uncored stats can never collide *)
  let key =
    Key.digest
      (("stats" :: Key.semantics semantics :: (if core then [ "core" ] else []))
      @ [ Key.tgd tgd; data_key ])
  in
  let payload =
    lookup t key
      ~encode:(function Stats s -> encode_stats s | _ -> "")
      ~decode:(fun text -> Option.map (fun s -> Stats s) (decode_stats ~tgd text))
      (fun () -> Stats { (compute ()) with Cover.index = 0 })
  in
  match payload with
  | Stats s -> { s with Cover.index }
  | _ -> assert false

let selection t ~solver ~seed ~problem_key compute =
  let key =
    Key.digest
      [
        "sel";
        solver;
        (match seed with None -> "-" | Some s -> string_of_int s);
        problem_key;
      ]
  in
  let payload =
    lookup t key
      ~encode:(function Selection s -> encode_selection s | _ -> "")
      ~decode:(fun text ->
        Option.map (fun s -> Selection s) (decode_selection text))
      (fun () -> Selection (Array.copy (compute ())))
  in
  match payload with
  | Selection sel -> Array.copy sel
  | _ -> assert false
