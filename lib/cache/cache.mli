(** Content-addressed memoization of per-candidate evaluation results.

    Every solver run re-derives the same expensive structure for a candidate
    st tgd: chase the source instance, then fold the triggers into the
    Eq. 9 [covers]/[errors] statistics ({!Cover.tgd_stats}). Across local
    search restarts, annealing chains, noise-sweep seeds and fuzz cases the
    inputs repeat constantly, so the derivation is cached here, keyed by a
    canonical digest of everything the result depends on — the candidate tgd
    (exact text: variable names fix the chase's null labels), the source and
    target instances, and the coverage semantics. Solver selections are
    cached the same way, keyed by (solver name, seed, problem digest).

    {b Determinism contract} (mirrors the telemetry layer's):

    - {b bit-identity} — a cached result is exactly the value the
      computation would produce. Chase null invention is deterministic per
      [(source, tgd)] (a fresh label counter per run), so a
      {!Cover.tgd_stats} is position-independent except for its [index]
      field, which the cache strips on store and re-applies on return.
      Selections are stored and returned as copies so callers can never
      mutate a cached array.
    - {b jobs-invariant accounting} — lookups are single-flight: the first
      requester of a key counts the miss and computes while concurrent
      requesters wait on it and count hits. Misses therefore equal the
      number of distinct keys computed and hits the remaining lookups —
      both pure functions of the workload, identical for any
      {!Parallel.Pool} size (as long as the working set fits the capacity;
      an eviction can turn a would-be hit into a recomputed miss).

    The in-memory tier is a bounded LRU over completed entries. The
    optional disk tier stores one content-addressed file per key
    ([<digest>.cache], written atomically via a temp file and rename);
    eviction only drops the in-memory copy, and an unreadable or corrupt
    file is treated as a miss and rewritten. *)

type t

val create : ?capacity : int -> ?dir : string -> unit -> t
(** [create ()] is a fresh in-memory cache holding at most [capacity]
    completed entries (default 16384). [dir] adds the disk tier, creating
    the directory if needed. Raises [Invalid_argument] when
    [capacity < 1]. *)

val capacity : t -> int

val dir : t -> string option

type stats = {
  hits : int;  (** lookups served without running the computation *)
  misses : int;  (** lookups that ran the computation *)
  evictions : int;  (** completed entries dropped by the LRU bound *)
}

val stats : t -> stats
(** Per-cache totals; the [cache.hits]/[cache.misses]/[cache.evictions]
    telemetry counters aggregate the same events across all caches. *)

val sync : t -> unit
(** Re-persists every completed in-memory entry whose disk file is missing
    (a no-op without a disk tier). Entries are normally written as they
    complete, so this only repairs files lost to a failed or raced write —
    long-lived processes (the serving daemon, campaign drivers) call it
    from their SIGTERM/SIGINT path so a kill never strands warm state that
    the next process could have reloaded. *)

val of_spec : string -> t option
(** Maps the [--cache]/[CACHE_DIR] spelling to a cache: [""] is no cache,
    ["mem"] an in-memory cache, anything else a directory-backed one. *)

val default : unit -> t option
(** The process-wide cache configured by the [CACHE_DIR] environment
    variable ({!of_spec} on its value; [None] when unset). Evaluated once,
    so every call shares one cache. *)

(** Canonical renderings of the engine's values, for key derivation. Each
    rendering is injective on its type (length-prefixed and
    percent-encoded where needed), so distinct inputs never share a
    digest other than by hash collision. *)
module Key : sig
  val digest : string list -> string
  (** Hex digest of a part list; parts are length-prefixed, so the digest
      is injective in the list (no concatenation ambiguity). *)

  val value : Relational.Value.t -> string

  val tuple : Relational.Tuple.t -> string

  val instance : Relational.Instance.t -> string
  (** Tuples in the instance's canonical order. *)

  val tgd : Logic.Tgd.t -> string
  (** The exact rendering, label and variable names included — variable
      names determine the chase's null labels, so alpha-variants must not
      share a key. *)

  val frac : Util.Frac.t -> string

  val semantics : Cover.semantics -> string
end

val data_key :
  source : Relational.Instance.t -> j : Relational.Instance.t -> string
(** Digest of a data example, the expensive half of a {!tgd_stats} key.
    Rendering the instances is linear in the data, so callers looking up
    many candidates against one [(source, j)] pair compute this once and
    pass it to every lookup. *)

val tgd_stats :
  t ->
  ?semantics : Cover.semantics ->
  ?core : bool ->
  data_key : string ->
  index : int ->
  Logic.Tgd.t ->
  (unit -> Cover.tgd_stats) ->
  Cover.tgd_stats
(** [tgd_stats t ~data_key ~index tgd compute] is [compute ()] memoized
    under the digest of [(semantics, core, tgd, data_key)], with [data_key]
    from {!data_key} on the example [compute] evaluates against. The [core]
    flag (default [false]) must say whether [compute] runs the core stage
    ({!Cover.stats_of_result}): cored statistics differ from uncored ones
    on the same example, so the flag is part of the key — uncored entries
    keep their historical keys, and the two can never collide. The stored
    value is normalised to candidate position 0 and returned re-indexed at
    [index], so one cached analysis serves a candidate wherever it appears
    in a list. [compute] must derive its result from exactly the keyed
    inputs (chase [source] with [tgd], fold against [j]). *)

val source_key : source : Relational.Instance.t -> string
(** Digest of the source instance alone — the key half of the chase tier.
    Computed once per source, like {!data_key}. *)

val example_keys :
  source : Relational.Instance.t ->
  j : Relational.Instance.t ->
  string * string
(** [(source_key, data_key)] of one data example, rendering the source
    instance once instead of twice — exactly {!source_key} and {!data_key},
    byte for byte. Problem builds need both, and on a fully warm build the
    key derivation is the dominant cost. *)

val chase :
  t ->
  source_key : string ->
  Logic.Tgd.t ->
  (unit -> Chase.result) ->
  Chase.result
(** [chase t ~source_key tgd compute] memoizes a single-tgd chase of the
    source under [(tgd, source_key)]. The chase depends only on the source
    and the tgd (null labels are deterministic per run), never on the
    target instance — so a noise sweep that perturbs only [J] hits this
    tier at every level. Memory-only: entries are never written to the disk
    tier and vanish with the cache. The returned result is shared, not
    copied; callers must treat it as immutable. *)

val selection :
  t ->
  solver : string ->
  seed : int option ->
  problem_key : string ->
  (unit -> bool array) ->
  bool array
(** [selection t ~solver ~seed ~problem_key compute] memoizes a solver's
    selection; [problem_key] must digest the full problem content (see
    [Core.Problem.digest]). Sound because every registered solver is
    deterministic in [(problem, seed)]. The returned array is a fresh
    copy. *)
