(** MAP inference for HL-MRFs by consensus ADMM.

    This is the standard PSL inference algorithm (Boyd-style consensus ADMM
    with analytic prox steps per potential, as in Bach et al., "Hinge-Loss
    Markov Random Fields and Probabilistic Soft Logic", JMLR 2017): every
    potential and hard constraint keeps a local copy of the variables it
    touches; local copies are updated by a closed-form proximal step, the
    consensus variables by averaging and clipping to [0,1], and scaled duals
    by the consensus gap. Convergence follows Boyd's combined
    absolute/relative criterion on the primal and dual residuals. *)

type options = {
  rho : float;  (** ADMM step size; default 1.0 *)
  max_iter : int;  (** default 10_000 *)
  eps_abs : float;  (** absolute tolerance; default 1e-5 *)
  eps_rel : float;  (** relative tolerance; default 1e-4 *)
}

val default_options : options

type state = {
  consensus : float array;  (** the consensus vector [z] at exit *)
  duals : float array array;
      (** scaled dual [y] per retained factor, in factor order (potentials
          first, then hard constraints, each in model insertion order,
          skipping empty/zero-weight entries) *)
}
(** A snapshot of the solver's internal state, suitable for warm-starting a
    later run on the same model — or, after {!Grounding.transport}, on a
    structurally similar one. *)

type outcome = {
  solution : float array;  (** consensus assignment, inside the box *)
  iterations : int;
  converged : bool;  (** [false] iff stopped by [max_iter] *)
  energy : float;  (** {!Hlmrf.energy} of [solution] *)
  state : state;  (** final state, for warm-starting a neighbouring solve *)
}

type factor_view = {
  f_kind : string;  (** prox kind + weight, canonically rendered *)
  f_vars : int array;
  f_coeffs : float array;
  f_constant : float;
}
(** The shape of one retained factor, as the solver will build it. *)

val factor_views : Hlmrf.t -> factor_view list
(** The retained factors of a model, in solver order — the order and filter
    {!solve} uses internally, and the row order of {!state.duals}. This is
    what {!Grounding.delta} matches on; keeping it here means the retention
    filter cannot drift from the solver's. *)

val solve : ?options : options -> ?warm : state -> Hlmrf.t -> outcome
(** Minimises the HL-MRF energy over the box subject to its hard
    constraints. Deterministic. [warm] seeds the consensus vector and the
    per-factor duals from a previous state; components whose shapes do not
    match the model fall back to the cold zeros, and omitting [warm] is
    bit-identical to the historical cold start. *)
