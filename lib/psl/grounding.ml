module Smap = Map.Make (String)

exception Unsatisfiable_hard_rule of string

type ground_rule = {
  rule_index : int;
  expr : Linexpr.t;
  squared : bool;
}

type t = {
  model : Hlmrf.t;
  atoms : Gatom.t array;
  index : int Gatom.Map.t;
  constant_energy : float;
  groundings : int;
  soft_groundings : ground_rule list;
}

(* A pending potential before variable indices are final. *)
type pending = {
  weight : float option;
  squared : bool;
  expr : Linexpr.t;
  label : string;
  rule_index : int;
}

let subst_term subst = function
  | Rule.C c -> Some c
  | Rule.V v -> Smap.find_opt v subst

let ground_atom subst (lit : Rule.literal) =
  let args =
    List.map
      (fun term ->
        match subst_term subst term with
        | Some c -> c
        | None -> invalid_arg "Grounding: unbound variable in literal")
      lit.Rule.args
  in
  Gatom.make lit.Rule.pred args

(* Try to extend [subst] so that [lit]'s arguments match the ground atom. *)
let match_literal subst (lit : Rule.literal) (atom : Gatom.t) =
  let rec loop subst terms k =
    match terms with
    | [] -> Some subst
    | t :: rest -> (
      let arg = atom.Gatom.args.(k) in
      match t with
      | Rule.C c -> if String.equal c arg then loop subst rest (k + 1) else None
      | Rule.V v -> (
        match Smap.find_opt v subst with
        | Some bound ->
          if String.equal bound arg then loop subst rest (k + 1) else None
        | None -> loop (Smap.add v arg subst) rest (k + 1)))
  in
  if List.length lit.Rule.args <> Array.length atom.Gatom.args then None
  else loop subst lit.Rule.args 0

(* All substitutions binding the rule's variables, obtained by joining the
   positive closed body literals over observed atoms with non-zero truth. *)
let bindings db (rule : Rule.t) =
  let closed lit =
    match Database.predicate db lit.Rule.pred with
    | p -> p.Predicate.closed
    | exception Not_found ->
      invalid_arg
        (Printf.sprintf "Grounding: unknown predicate %s in rule %s"
           lit.Rule.pred rule.Rule.label)
  in
  let anchors =
    List.filter (fun l -> l.Rule.positive && closed l) rule.Rule.body
  in
  let rec join subst = function
    | [] -> [ subst ]
    | lit :: rest ->
      Database.observed_of db lit.Rule.pred
      |> List.concat_map (fun (atom, truth) ->
             if truth <= 0. then []
             else
               match match_literal subst lit atom with
               | None -> []
               | Some subst -> join subst rest)
  in
  (* Also force a well-formedness check: every rule variable must be bound. *)
  let bound_vars =
    List.fold_left
      (fun acc lit ->
        List.fold_left
          (fun acc t -> match t with Rule.V v -> v :: acc | Rule.C _ -> acc)
          acc lit.Rule.args)
      [] anchors
  in
  List.iter
    (fun v ->
      if not (List.mem v bound_vars) then
        invalid_arg
          (Printf.sprintf
             "Grounding: variable %s of rule %s is not bound by a positive \
              closed body literal"
             v rule.Rule.label))
    (Rule.vars rule);
  join Smap.empty anchors

(* Distance-to-satisfaction expression of one grounding, over a growing
   variable table. *)
let clause_expr db var_index next_var subst (rule : Rule.t) =
  let coeffs = ref [] in
  let constant = ref 1. in
  let add_truth ~sign lit =
    (* contribution of a clause literal with sign [sign] on [lit]'s atom:
       positive: -I(A);  negative: -1 + I(A) *)
    let atom = ground_atom subst lit in
    let p = Database.predicate db lit.Rule.pred in
    if p.Predicate.closed then begin
      let v = Option.value ~default:0. (Database.truth db atom) in
      if sign then constant := !constant -. v
      else constant := !constant -. (1. -. v)
    end
    else begin
      let idx =
        match Gatom.Map.find_opt atom !var_index with
        | Some i -> i
        | None ->
          let i = !next_var in
          incr next_var;
          var_index := Gatom.Map.add atom i !var_index;
          i
      in
      if sign then coeffs := (idx, -1.) :: !coeffs
      else begin
        constant := !constant -. 1.;
        coeffs := (idx, 1.) :: !coeffs
      end
    end
  in
  (* Body literals appear negated in the clause, head literals as-is. *)
  List.iter (fun l -> add_truth ~sign:(not l.Rule.positive) l) rule.Rule.body;
  List.iter (fun l -> add_truth ~sign:l.Rule.positive l) rule.Rule.head;
  Linexpr.make !coeffs !constant

let groundings_counter = Telemetry.Counter.make "psl.groundings"

let ground db rules =
  Telemetry.with_span "psl.ground" @@ fun () ->
  let var_index = ref Gatom.Map.empty in
  let next_var = ref 0 in
  let pendings = ref [] in
  let constant_energy = ref 0. in
  let groundings = ref 0 in
  List.iteri
    (fun rule_index (rule : Rule.t) ->
      List.iter
        (fun subst ->
          let expr = clause_expr db var_index next_var subst rule in
          let upper_bound =
            List.fold_left
              (fun acc (_, c) -> acc +. Float.max 0. c)
              expr.Linexpr.constant expr.Linexpr.coeffs
          in
          if upper_bound <= 0. then () (* trivially satisfied everywhere *)
          else if expr.Linexpr.coeffs = [] then begin
            (* constant violation *)
            match rule.Rule.weight with
            | None -> raise (Unsatisfiable_hard_rule rule.Rule.label)
            | Some w ->
              let d = Float.max 0. expr.Linexpr.constant in
              incr groundings;
              constant_energy :=
                !constant_energy +. (w *. if rule.Rule.squared then d *. d else d)
          end
          else begin
            incr groundings;
            pendings :=
              {
                weight = rule.Rule.weight;
                squared = rule.Rule.squared;
                expr;
                label = rule.Rule.label;
                rule_index;
              }
              :: !pendings
          end)
        (bindings db rule))
    rules;
  let model = Hlmrf.create ~num_vars:!next_var in
  List.iter
    (fun p ->
      match p.weight with
      | None -> Hlmrf.add_constraint model (Hlmrf.Leq p.expr)
      | Some w ->
        Hlmrf.add_potential model
          (Hlmrf.Hinge { weight = w; expr = p.expr; squared = p.squared }))
    (List.rev !pendings);
  let atoms = Array.make !next_var (Gatom.make "_" [ "_" ]) in
  Gatom.Map.iter
    (fun atom i ->
      atoms.(i) <- atom;
      Hlmrf.set_var_name model i (Gatom.to_string atom))
    !var_index;
  let soft_groundings =
    List.rev !pendings
    |> List.filter_map (fun p ->
           match p.weight with
           | None -> None
           | Some _ ->
             Some { rule_index = p.rule_index; expr = p.expr; squared = p.squared })
  in
  Telemetry.Counter.add groundings_counter !groundings;
  {
    model;
    atoms;
    index = !var_index;
    constant_energy = !constant_energy;
    groundings = !groundings;
    soft_groundings;
  }

let var_of t atom = Gatom.Map.find_opt atom t.index

let truth_in t solution atom =
  Option.map (fun i -> solution.(i)) (var_of t atom)

let map_inference ?options t =
  Telemetry.with_span "psl.infer" (fun () -> Admm.solve ?options t.model)

let rule_distances t ~num_rules x =
  let d = Array.make num_rules 0. in
  List.iter
    (fun (g : ground_rule) ->
      let v = Float.max 0. (Linexpr.eval g.expr x) in
      d.(g.rule_index) <- d.(g.rule_index) +. (if g.squared then v *. v else v))
    t.soft_groundings;
  d
