module Smap = Map.Make (String)

exception Unsatisfiable_hard_rule of string

type ground_rule = {
  rule_index : int;
  expr : Linexpr.t;
  squared : bool;
}

type t = {
  model : Hlmrf.t;
  atoms : Gatom.t array;
  index : int Gatom.Map.t;
  constant_energy : float;
  groundings : int;
  soft_groundings : ground_rule list;
}

(* A pending potential before variable indices are final. *)
type pending = {
  weight : float option;
  squared : bool;
  expr : Linexpr.t;
  label : string;
  rule_index : int;
}

let subst_term subst = function
  | Rule.C c -> Some c
  | Rule.V v -> Smap.find_opt v subst

let ground_atom subst (lit : Rule.literal) =
  let args =
    List.map
      (fun term ->
        match subst_term subst term with
        | Some c -> c
        | None -> invalid_arg "Grounding: unbound variable in literal")
      lit.Rule.args
  in
  Gatom.make lit.Rule.pred args

(* Try to extend [subst] so that [lit]'s arguments match the ground atom. *)
let match_literal subst (lit : Rule.literal) (atom : Gatom.t) =
  let rec loop subst terms k =
    match terms with
    | [] -> Some subst
    | t :: rest -> (
      let arg = atom.Gatom.args.(k) in
      match t with
      | Rule.C c -> if String.equal c arg then loop subst rest (k + 1) else None
      | Rule.V v -> (
        match Smap.find_opt v subst with
        | Some bound ->
          if String.equal bound arg then loop subst rest (k + 1) else None
        | None -> loop (Smap.add v arg subst) rest (k + 1)))
  in
  if List.length lit.Rule.args <> Array.length atom.Gatom.args then None
  else loop subst lit.Rule.args 0

(* All substitutions binding the rule's variables, obtained by joining the
   positive closed body literals over observed atoms with non-zero truth. *)
let bindings db (rule : Rule.t) =
  let closed lit =
    match Database.predicate db lit.Rule.pred with
    | p -> p.Predicate.closed
    | exception Not_found ->
      invalid_arg
        (Printf.sprintf "Grounding: unknown predicate %s in rule %s"
           lit.Rule.pred rule.Rule.label)
  in
  let anchors =
    List.filter (fun l -> l.Rule.positive && closed l) rule.Rule.body
  in
  let rec join subst = function
    | [] -> [ subst ]
    | lit :: rest ->
      Database.observed_of db lit.Rule.pred
      |> List.concat_map (fun (atom, truth) ->
             if truth <= 0. then []
             else
               match match_literal subst lit atom with
               | None -> []
               | Some subst -> join subst rest)
  in
  (* Also force a well-formedness check: every rule variable must be bound. *)
  let bound_vars =
    List.fold_left
      (fun acc lit ->
        List.fold_left
          (fun acc t -> match t with Rule.V v -> v :: acc | Rule.C _ -> acc)
          acc lit.Rule.args)
      [] anchors
  in
  List.iter
    (fun v ->
      if not (List.mem v bound_vars) then
        invalid_arg
          (Printf.sprintf
             "Grounding: variable %s of rule %s is not bound by a positive \
              closed body literal"
             v rule.Rule.label))
    (Rule.vars rule);
  join Smap.empty anchors

(* Distance-to-satisfaction expression of one grounding, over a growing
   variable table. *)
let clause_expr db var_index next_var subst (rule : Rule.t) =
  let coeffs = ref [] in
  let constant = ref 1. in
  let add_truth ~sign lit =
    (* contribution of a clause literal with sign [sign] on [lit]'s atom:
       positive: -I(A);  negative: -1 + I(A) *)
    let atom = ground_atom subst lit in
    let p = Database.predicate db lit.Rule.pred in
    if p.Predicate.closed then begin
      let v = Option.value ~default:0. (Database.truth db atom) in
      if sign then constant := !constant -. v
      else constant := !constant -. (1. -. v)
    end
    else begin
      let idx =
        match Gatom.Map.find_opt atom !var_index with
        | Some i -> i
        | None ->
          let i = !next_var in
          incr next_var;
          var_index := Gatom.Map.add atom i !var_index;
          i
      in
      if sign then coeffs := (idx, -1.) :: !coeffs
      else begin
        constant := !constant -. 1.;
        coeffs := (idx, 1.) :: !coeffs
      end
    end
  in
  (* Body literals appear negated in the clause, head literals as-is. *)
  List.iter (fun l -> add_truth ~sign:(not l.Rule.positive) l) rule.Rule.body;
  List.iter (fun l -> add_truth ~sign:l.Rule.positive l) rule.Rule.head;
  Linexpr.make !coeffs !constant

let groundings_counter = Telemetry.Counter.make "psl.groundings"

let ground db rules =
  Telemetry.with_span "psl.ground" @@ fun () ->
  let var_index = ref Gatom.Map.empty in
  let next_var = ref 0 in
  let pendings = ref [] in
  let constant_energy = ref 0. in
  let groundings = ref 0 in
  List.iteri
    (fun rule_index (rule : Rule.t) ->
      List.iter
        (fun subst ->
          let expr = clause_expr db var_index next_var subst rule in
          let upper_bound =
            List.fold_left
              (fun acc (_, c) -> acc +. Float.max 0. c)
              expr.Linexpr.constant expr.Linexpr.coeffs
          in
          if upper_bound <= 0. then () (* trivially satisfied everywhere *)
          else if expr.Linexpr.coeffs = [] then begin
            (* constant violation *)
            match rule.Rule.weight with
            | None -> raise (Unsatisfiable_hard_rule rule.Rule.label)
            | Some w ->
              let d = Float.max 0. expr.Linexpr.constant in
              incr groundings;
              constant_energy :=
                !constant_energy +. (w *. if rule.Rule.squared then d *. d else d)
          end
          else begin
            incr groundings;
            pendings :=
              {
                weight = rule.Rule.weight;
                squared = rule.Rule.squared;
                expr;
                label = rule.Rule.label;
                rule_index;
              }
              :: !pendings
          end)
        (bindings db rule))
    rules;
  let model = Hlmrf.create ~num_vars:!next_var in
  List.iter
    (fun p ->
      match p.weight with
      | None -> Hlmrf.add_constraint model (Hlmrf.Leq p.expr)
      | Some w ->
        Hlmrf.add_potential model
          (Hlmrf.Hinge { weight = w; expr = p.expr; squared = p.squared }))
    (List.rev !pendings);
  let atoms = Array.make !next_var (Gatom.make "_" [ "_" ]) in
  Gatom.Map.iter
    (fun atom i ->
      atoms.(i) <- atom;
      Hlmrf.set_var_name model i (Gatom.to_string atom))
    !var_index;
  let soft_groundings =
    List.rev !pendings
    |> List.filter_map (fun p ->
           match p.weight with
           | None -> None
           | Some _ ->
             Some { rule_index = p.rule_index; expr = p.expr; squared = p.squared })
  in
  Telemetry.Counter.add groundings_counter !groundings;
  {
    model;
    atoms;
    index = !var_index;
    constant_energy = !constant_energy;
    groundings = !groundings;
    soft_groundings;
  }

let var_of t atom = Gatom.Map.find_opt atom t.index

let truth_in t solution atom =
  Option.map (fun i -> solution.(i)) (var_of t atom)

let map_inference ?options t =
  Telemetry.with_span "psl.infer" (fun () -> Admm.solve ?options t.model)

let rule_distances t ~num_rules x =
  let d = Array.make num_rules 0. in
  List.iter
    (fun (g : ground_rule) ->
      let v = Float.max 0. (Linexpr.eval g.expr x) in
      d.(g.rule_index) <- d.(g.rule_index) +. (if g.squared then v *. v else v))
    t.soft_groundings;
  d

(* --- deltas between adjacent ground models ----------------------------- *)

type delta = {
  next_num_vars : int;
  next_dims : int array;  (* local dimension per retained factor of [next] *)
  var_map : int array;  (* next var index -> prev var index, or -1 *)
  factor_map : int array;  (* next factor index -> prev factor index, or -1 *)
  matched_vars : int;
  matched_factors : int;
}

(* Variable names that occur more than once in a model cannot anchor a
   correspondence; treat them as unmatched. *)
let name_table model =
  let n = Hlmrf.num_vars model in
  let tbl = Hashtbl.create (2 * n) in
  for i = 0 to n - 1 do
    let name = Hlmrf.var_name model i in
    match Hashtbl.find_opt tbl name with
    | None -> Hashtbl.replace tbl name i
    | Some _ -> Hashtbl.replace tbl name (-1)
  done;
  tbl

(* Canonical signature of a retained factor: prox kind + constant + the
   (variable-name, coefficient) pairs in local order. [None] when any local
   variable's name is ambiguous in its model — such factors never match. *)
let factor_signature names (f : Admm.factor_view) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf f.Admm.f_kind;
  Buffer.add_string buf (Printf.sprintf "|%h" f.Admm.f_constant);
  let ok = ref true in
  Array.iteri
    (fun k i ->
      let name = names i in
      if name = None then ok := false
      else
        Buffer.add_string buf
          (Printf.sprintf "|%s:%h" (Option.get name) f.Admm.f_coeffs.(k)))
    f.Admm.f_vars;
  if !ok then Some (Buffer.contents buf) else None

let delta ~prev ~next =
  let prev_names = name_table prev and next_names = name_table next in
  let unambiguous tbl model i =
    let name = Hlmrf.var_name model i in
    match Hashtbl.find_opt tbl name with
    | Some j when j >= 0 -> Some name
    | _ -> None
  in
  (* variables: matched by unambiguous name *)
  let n_next = Hlmrf.num_vars next in
  let matched_vars = ref 0 in
  let var_map =
    Array.init n_next (fun i ->
        match unambiguous next_names next i with
        | None -> -1
        | Some name -> (
          match Hashtbl.find_opt prev_names name with
          | Some j when j >= 0 ->
            incr matched_vars;
            j
          | _ -> -1))
  in
  (* factors: multiset-matched by canonical signature, in solver order *)
  let prev_factors = Array.of_list (Admm.factor_views prev) in
  let next_factors = Array.of_list (Admm.factor_views next) in
  let prev_sig = factor_signature (unambiguous prev_names prev) in
  let next_sig = factor_signature (unambiguous next_names next) in
  let by_sig = Hashtbl.create (2 * Array.length prev_factors) in
  Array.iteri
    (fun j f ->
      match prev_sig f with
      | None -> ()
      | Some s ->
        let q =
          match Hashtbl.find_opt by_sig s with
          | Some q -> q
          | None ->
            let q = Queue.create () in
            Hashtbl.replace by_sig s q;
            q
        in
        Queue.push j q)
    prev_factors;
  let matched_factors = ref 0 in
  let factor_map =
    Array.map
      (fun f ->
        match next_sig f with
        | None -> -1
        | Some s -> (
          match Hashtbl.find_opt by_sig s with
          | Some q when not (Queue.is_empty q) ->
            incr matched_factors;
            Queue.pop q
          | _ -> -1))
      next_factors
  in
  {
    next_num_vars = n_next;
    next_dims = Array.map (fun f -> Array.length f.Admm.f_vars) next_factors;
    var_map;
    factor_map;
    matched_vars = !matched_vars;
    matched_factors = !matched_factors;
  }

let transport d (s : Admm.state) =
  let consensus = Array.make d.next_num_vars 0. in
  Array.iteri
    (fun i j ->
      if j >= 0 && j < Array.length s.Admm.consensus then
        consensus.(i) <- s.Admm.consensus.(j))
    d.var_map;
  let duals =
    Array.mapi
      (fun i dim ->
        let row = Array.make dim 0. in
        let j = d.factor_map.(i) in
        if j >= 0 && j < Array.length s.Admm.duals
           && Array.length s.Admm.duals.(j) = dim
        then Array.blit s.Admm.duals.(j) 0 row 0 dim;
        row)
      d.next_dims
  in
  { Admm.consensus; duals }
