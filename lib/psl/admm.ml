type options = {
  rho : float;
  max_iter : int;
  eps_abs : float;
  eps_rel : float;
}

let default_options = { rho = 1.0; max_iter = 10_000; eps_abs = 1e-5; eps_rel = 1e-4 }

type state = {
  consensus : float array;
  duals : float array array;
}

type outcome = {
  solution : float array;
  iterations : int;
  converged : bool;
  energy : float;
  state : state;
}

(* The prox operation a factor performs on its local copy. *)
type step =
  | Prox_linear of { weight : float }
  | Prox_hinge of { weight : float; squared : bool }
  | Prox_leq
  | Prox_eq

type factor = {
  step : step;
  vars : int array;  (* global indices of the local variables *)
  coeffs : float array;  (* coefficient per local variable *)
  constant : float;
  norm2 : float;  (* ‖coeffs‖² *)
  x : float array;  (* local copy *)
  y : float array;  (* scaled-by-rho dual *)
}

let factor_of_expr step expr =
  let pairs = expr.Linexpr.coeffs in
  let n = List.length pairs in
  let vars = Array.make n 0 and coeffs = Array.make n 0. in
  List.iteri
    (fun k (i, c) ->
      vars.(k) <- i;
      coeffs.(k) <- c)
    pairs;
  {
    step;
    vars;
    coeffs;
    constant = expr.Linexpr.constant;
    norm2 = Linexpr.norm2 expr;
    x = Array.make n 0.;
    y = Array.make n 0.;
  }

let factors_of_model model =
  let of_potential = function
    | Hlmrf.Hinge { weight; expr; squared } ->
      if expr.Linexpr.coeffs = [] || weight = 0. then None
      else Some (factor_of_expr (Prox_hinge { weight; squared }) expr)
    | Hlmrf.Linear { weight; expr } ->
      if expr.Linexpr.coeffs = [] || weight = 0. then None
      else Some (factor_of_expr (Prox_linear { weight }) expr)
  in
  let of_constraint = function
    | Hlmrf.Leq e -> if e.Linexpr.coeffs = [] then None else Some (factor_of_expr Prox_leq e)
    | Hlmrf.Eq e -> if e.Linexpr.coeffs = [] then None else Some (factor_of_expr Prox_eq e)
  in
  List.filter_map of_potential (Hlmrf.potentials model)
  @ List.filter_map of_constraint (Hlmrf.constraints model)

type factor_view = {
  f_kind : string;
  f_vars : int array;
  f_coeffs : float array;
  f_constant : float;
}

let factor_views model =
  List.map
    (fun f ->
      let f_kind =
        match f.step with
        | Prox_linear { weight } -> Printf.sprintf "lin:%h" weight
        | Prox_hinge { weight; squared = false } -> Printf.sprintf "hinge:%h" weight
        | Prox_hinge { weight; squared = true } -> Printf.sprintf "hinge2:%h" weight
        | Prox_leq -> "leq"
        | Prox_eq -> "eq"
      in
      { f_kind; f_vars = f.vars; f_coeffs = f.coeffs; f_constant = f.constant })
    (factors_of_model model)

let dot f v =
  let acc = ref f.constant in
  Array.iteri (fun k c -> acc := !acc +. (c *. v.(k))) f.coeffs;
  !acc

(* x := v + t * coeffs *)
let axpy f v t =
  Array.iteri (fun k c -> f.x.(k) <- v.(k) +. (t *. c)) f.coeffs

let project_hyperplane f v =
  if f.norm2 = 0. then Array.blit v 0 f.x 0 (Array.length v)
  else axpy f v (-.dot f v /. f.norm2)

(* Closed-form local prox: argmin_x φ(x) + ρ/2‖x − v‖². *)
let local_solve ~rho f v =
  match f.step with
  | Prox_linear { weight } -> axpy f v (-.weight /. rho)
  | Prox_hinge { weight; squared = false } ->
    if dot f v <= 0. then Array.blit v 0 f.x 0 (Array.length v)
    else begin
      axpy f v (-.weight /. rho);
      if dot f f.x < 0. then project_hyperplane f v
    end
  | Prox_hinge { weight; squared = true } ->
    let margin = dot f v in
    if margin <= 0. then Array.blit v 0 f.x 0 (Array.length v)
    else axpy f v (-.(2. *. weight *. margin) /. (rho +. (2. *. weight *. f.norm2)))
  | Prox_leq ->
    if dot f v <= 0. then Array.blit v 0 f.x 0 (Array.length v)
    else project_hyperplane f v
  | Prox_eq -> project_hyperplane f v

let clip01 v = Float.max 0. (Float.min 1. v)

let admm_iterations_counter = Telemetry.Counter.make "admm.iterations"

let solve ?(options = default_options) ?warm model =
  let n = Hlmrf.num_vars model in
  let factors = factors_of_model model in
  let z = Array.make n 0. in
  (* Warm start: seed the consensus vector and the per-factor scaled duals
     from a previous run. Shapes that do not line up fall back to the cold
     zeros — [warm = None] leaves every buffer exactly as the cold path
     allocates it. *)
  (match warm with
  | None -> ()
  | Some w ->
    if Array.length w.consensus = n then Array.blit w.consensus 0 z 0 n;
    let num_factors = List.length factors in
    if Array.length w.duals = num_factors then
      List.iteri
        (fun idx f ->
          let src = w.duals.(idx) in
          let d = Array.length f.y in
          if Array.length src = d then Array.blit src 0 f.y 0 d)
        factors);
  let counts = Array.make n 0 in
  List.iter
    (fun f -> Array.iter (fun i -> counts.(i) <- counts.(i) + 1) f.vars)
    factors;
  let rho = options.rho in
  let total_copies =
    List.fold_left (fun acc f -> acc + Array.length f.vars) 0 factors
  in
  let v_buf = Array.make (List.fold_left (fun m f -> max m (Array.length f.vars)) 1 factors) 0. in
  let sums = Array.make n 0. in
  let iterations = ref 0 in
  let converged = ref false in
  (try
     for iter = 1 to options.max_iter do
       iterations := iter;
       (* local steps *)
       List.iter
         (fun f ->
           let d = Array.length f.vars in
           for k = 0 to d - 1 do
             v_buf.(k) <- z.(f.vars.(k)) -. (f.y.(k) /. rho)
           done;
           local_solve ~rho f (Array.sub v_buf 0 d))
         factors;
       (* consensus step *)
       Array.fill sums 0 n 0.;
       List.iter
         (fun f ->
           Array.iteri
             (fun k i -> sums.(i) <- sums.(i) +. f.x.(k) +. (f.y.(k) /. rho))
             f.vars)
         factors;
       let dual_sq = ref 0. in
       for i = 0 to n - 1 do
         if counts.(i) > 0 then begin
           let znew = clip01 (sums.(i) /. float_of_int counts.(i)) in
           let dz = znew -. z.(i) in
           dual_sq := !dual_sq +. (float_of_int counts.(i) *. dz *. dz);
           z.(i) <- znew
         end
       done;
       (* dual step and primal residual *)
       let primal_sq = ref 0. in
       let x_sq = ref 0. and z_sq = ref 0. and y_sq = ref 0. in
       List.iter
         (fun f ->
           Array.iteri
             (fun k i ->
               let r = f.x.(k) -. z.(i) in
               f.y.(k) <- f.y.(k) +. (rho *. r);
               primal_sq := !primal_sq +. (r *. r);
               x_sq := !x_sq +. (f.x.(k) *. f.x.(k));
               z_sq := !z_sq +. (z.(i) *. z.(i));
               y_sq := !y_sq +. (f.y.(k) *. f.y.(k)))
             f.vars)
         factors;
       let sqn = sqrt (float_of_int (max 1 total_copies)) in
       let eps_pri =
         (sqn *. options.eps_abs)
         +. (options.eps_rel *. Float.max (sqrt !x_sq) (sqrt !z_sq))
       in
       let eps_dual = (sqn *. options.eps_abs) +. (options.eps_rel *. sqrt !y_sq) in
       if sqrt !primal_sq <= eps_pri && rho *. sqrt !dual_sq <= eps_dual then begin
         converged := true;
         raise Exit
       end
     done
   with Exit -> ());
  Telemetry.Counter.add admm_iterations_counter !iterations;
  let state =
    {
      consensus = Array.copy z;
      duals = Array.of_list (List.map (fun f -> Array.copy f.y) factors);
    }
  in
  {
    solution = z;
    iterations = !iterations;
    converged = !converged;
    energy = Hlmrf.energy model z;
    state;
  }
