(** Grounding PSL rules against a database into an HL-MRF.

    Every rule variable must occur in at least one positive body literal of a
    closed predicate (the standard PSL well-formedness condition); bindings
    are enumerated by joining those literals over the observed atoms with
    non-zero truth. Ground atoms of open predicates become MAP variables;
    closed atoms fold into the hinge expressions as constants. Groundings
    that are trivially satisfied (their distance to satisfaction cannot be
    positive anywhere in the box) are dropped. *)

exception Unsatisfiable_hard_rule of string
(** Raised when a hard rule grounds to a violated constant constraint; the
    payload is the rule label. *)

type ground_rule = {
  rule_index : int;  (** position of the rule in the input list *)
  expr : Linexpr.t;  (** the distance-to-satisfaction expression *)
  squared : bool;
}

type t = {
  model : Hlmrf.t;  (** one variable per open ground atom *)
  atoms : Gatom.t array;  (** variable index → open ground atom *)
  index : int Gatom.Map.t;  (** open ground atom → variable index *)
  constant_energy : float;
      (** energy contributed by soft groundings without open atoms *)
  groundings : int;  (** number of non-trivial ground rules produced *)
  soft_groundings : ground_rule list;
      (** the soft groundings with their rule of origin — what weight
          learning needs *)
}

val ground : Database.t -> Rule.t list -> t
(** Raises [Invalid_argument] if a rule has an unbound variable, an unknown
    predicate, or an arity mismatch; raises {!Unsatisfiable_hard_rule} as
    described above. *)

val var_of : t -> Gatom.t -> int option

val truth_in : t -> float array -> Gatom.t -> float option
(** The value of an open ground atom in a MAP solution. *)

val map_inference : ?options : Admm.options -> t -> Admm.outcome
(** Convenience: run {!Admm.solve} on the ground model. *)

val rule_distances : t -> num_rules : int -> float array -> float array
(** [rule_distances g ~num_rules x]: the total (unweighted) distance to
    satisfaction of each input rule's soft groundings under assignment [x],
    as an array of length [num_rules]. *)

(** {2 Deltas between adjacent ground models}

    Two sweep points ground to structurally near-identical HL-MRFs: most
    variables and factors carry over, only the noise-dependent groundings
    change. [delta] computes a conservative correspondence — variables
    matched by (unambiguous) name, retained factors multiset-matched by a
    canonical signature of prox kind, weight, constant and named
    coefficients, in {!Admm.factor_views} order — and [transport] rebases an
    {!Admm.state} across it, zero-filling everything unmatched. Transported
    warm starts are therefore always shape-correct for the new model, and
    degrade gracefully to the cold start as the overlap shrinks. *)

type delta = {
  next_num_vars : int;
  next_dims : int array;  (** local dimension per retained factor of [next] *)
  var_map : int array;  (** next var index → prev var index, or [-1] *)
  factor_map : int array;  (** next factor index → prev factor index, or [-1] *)
  matched_vars : int;
  matched_factors : int;
}

val delta : prev : Hlmrf.t -> next : Hlmrf.t -> delta
(** Pure and deterministic; ambiguous (duplicate) variable names on either
    side are never matched. *)

val transport : delta -> Admm.state -> Admm.state
(** Rebase a state captured on [prev] onto [next]'s shapes. Unmatched
    variables and factors start cold (zeros). *)
