(** E9 — Theorem 1: the SET COVER reduction, checked numerically.

    For seeded random SET COVER instances, the table reports the closed-form
    objective of the proof against Eq. 9 evaluated on the constructed
    mapping-selection instance, and the decision (cover within budget?)
    obtained through exact mapping selection against brute-force set
    cover. *)

val run : ?count : int -> Common.Ctx.t -> Table.t
