(** E10 — ablation: CMD's rounding strategy.

    DESIGN.md calls out conditional rounding + repair as a design choice;
    this ablation compares it against plain threshold rounding and against
    dropping the repair pass, on noisy scenarios. *)

val run : ?seeds : int list -> Common.Ctx.t -> Table.t
