open Relational
open Logic
open Util

(* The running example reconstructed from the appendix; identical to the
   test fixtures but self-contained so the bench binary does not depend on
   the test tree. *)

let v x = Term.Var x

let instance_i =
  Instance.of_tuples
    [
      Tuple.of_consts "proj" [ "BigData"; "Bob"; "IBM" ];
      Tuple.of_consts "proj" [ "ML"; "Alice"; "SAP" ];
    ]

let instance_j =
  Instance.of_tuples
    [
      Tuple.of_consts "task" [ "ML"; "Alice"; "111" ];
      Tuple.of_consts "org" [ "111"; "SAP" ];
      Tuple.of_consts "task" [ "Social"; "Carl"; "222" ];
      Tuple.of_consts "org" [ "222"; "MSR" ];
    ]

let theta1 =
  Tgd.make ~label:"theta1"
    ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
    ~head:[ Atom.make "task" [ v "P"; v "E"; v "T" ] ]
    ()

let theta3 =
  Tgd.make ~label:"theta3"
    ~body:[ Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
    ~head:
      [
        Atom.make "task" [ v "P"; v "E"; v "T" ];
        Atom.make "org" [ v "T"; v "O" ];
      ]
    ()

let problem ~extra =
  let name k = Printf.sprintf "Proj%d" k in
  let i =
    List.fold_left
      (fun acc k -> Instance.add (Tuple.of_consts "proj" [ name k; "Alice"; "SAP" ]) acc)
      instance_i
      (List.init extra Fun.id)
  in
  let j =
    List.fold_left
      (fun acc k -> Instance.add (Tuple.of_consts "task" [ name k; "Alice"; "111" ]) acc)
      instance_j
      (List.init extra Fun.id)
  in
  Core.Problem.make ~source:i ~j [ theta1; theta3 ]

let subsets = [ ("{}", []); ("{theta1}", [ 0 ]); ("{theta3}", [ 1 ]); ("{theta1,theta3}", [ 0; 1 ]) ]

let appendix_values () =
  let p = problem ~extra:0 in
  List.map
    (fun (name, idx) ->
      (name, Core.Objective.value p (Core.Problem.selection_of_indices p idx)))
    subsets

let run (_ : Common.Ctx.t) =
  let p = problem ~extra:0 in
  let rows =
    List.map
      (fun (name, idx) ->
        let sel = Core.Problem.selection_of_indices p idx in
        let b = Core.Objective.breakdown p sel in
        [
          name;
          Frac.to_string b.Core.Objective.unexplained;
          string_of_int b.Core.Objective.errors;
          string_of_int b.Core.Objective.size;
          Frac.to_string b.Core.Objective.total;
        ])
      subsets
  in
  let optimal extra =
    let p = problem ~extra in
    let best = Core.Exact.solve p in
    match Core.Problem.indices_of_selection best with
    | [] -> "{}"
    | l -> "{" ^ String.concat "," (List.map (fun i -> if i = 0 then "theta1" else "theta3") l) ^ "}"
  in
  Table.make ~id:"E1" ~title:"appendix objective table (Eq. 9)"
    ~header:[ "M"; "sum 1-explains"; "errors"; "size"; "Eq.9" ]
    ~notes:
      [
        Printf.sprintf "optimal mapping on the base example: %s (paper: {})"
          (optimal 0);
        Printf.sprintf
          "optimal mapping with 5 extra ML-like projects: %s (paper: {theta3})"
          (optimal 5);
        "paper's table: {} -> 4, {theta1} -> 7 1/3, {theta3} -> 8, \
         {theta1,theta3} -> 12";
      ]
    rows
