(** E11 — ablation: the coverage semantics of Eq. 9.

    The corroboration rule (an invented value only counts when a sibling
    tuple of the trigger group confirms it in [J]) is what makes join
    candidates preferable to their projections. This ablation compares the
    paper's semantics against the strict (nulls never count) and generous
    (nulls always count) variants — both on the appendix example, where only
    the corroborated semantics reproduces the published degrees, and on
    noisy scenarios. *)

val run : ?seeds : int list -> Common.Ctx.t -> Table.t
