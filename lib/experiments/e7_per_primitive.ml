let run ?(seeds = E2_parameters.seeds) ctx =
  (* the (primitive, seed) grid fans out over the shared pool; regrouping
     below preserves seed order so the averages match a sequential run *)
  let grid =
    List.concat_map
      (fun kind -> List.map (fun seed -> (kind, seed)) seeds)
      Ibench.Primitive.all
  in
  let solved =
    Common.parallel_map ctx
      (fun (kind, seed) ->
        (* 40 rows: enough data that even the low-coverage ADD/ADL
           primitives (whose invented-value positions never count as
           covered) are worth their size under Eq. 9 *)
        let config =
          Common.noise_config ~rows:40
            ~primitives:[ (kind, 2) ]
            ~seed ~pi_corresp:25 ~pi_errors:25 ~pi_unexplained:25 ()
        in
        let s = Ibench.Generator.generate config in
        let p = Common.problem_of_scenario ctx s in
        ( kind,
          ( Common.run_solver ctx Common.Cmd_solver s p,
            Common.run_solver ctx Common.Greedy_solver s p ) ))
      grid
  in
  let rows =
    List.map
      (fun kind ->
        let per_seed =
          List.filter_map
            (fun (k, outcomes) -> if k = kind then Some outcomes else None)
            solved
        in
        let avg pick = Util.Stats.fmean pick per_seed in
        [
          Ibench.Primitive.to_string kind;
          Common.fmt_f (avg (fun (c, _) -> c.Common.mapping.Metrics.f1));
          Common.fmt_f (avg (fun (c, _) -> c.Common.tuples.Metrics.f1));
          Common.fmt_f (avg (fun (_, g) -> g.Common.mapping.Metrics.f1));
          Common.fmt_f (avg (fun (_, g) -> g.Common.tuples.Metrics.f1));
        ])
      Ibench.Primitive.all
  in
  Table.make ~id:"E7"
    ~title:"selection quality per primitive (25/25/25 noise, 2 instances)"
    ~header:[ "primitive"; "CMD map-F1"; "CMD tup-F1"; "greedy map-F1"; "greedy tup-F1" ]
    rows
