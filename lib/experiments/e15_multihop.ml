(* Multi-hop composition: does selecting over the composed end-to-end pool
   recover the chain as well as selecting each hop separately and composing
   the winners? Both routes are scored mapping-level against the composed
   ground truth, across a noise sweep. The composed route sees only the
   initial and final instances (the intermediate schema is invisible), so
   any quality it keeps is quality the algebra preserved. *)

let f2 = Printf.sprintf "%.2f"

let avg xs = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

(* Chains are small (a handful of tuples per relation), so an unexplained
   weight of 1 lets the size term eat the coverage gain and greedy stalls
   at the empty selection; weighting unexplained tuples up matches how the
   noise sweeps configure small scenarios. *)
let weights = { Core.Problem.w_unexplained = 2; w_errors = 1; w_size = 1 }

let run ?(pis = [ 0; 20; 40 ]) ?(seeds = [ 1; 2; 3 ]) ctx =
  let cache = Common.Ctx.cache ctx in
  let rows =
    List.map
      (fun pi ->
        let per_seed =
          List.map
            (fun seed ->
              let config =
                {
                  Ibench.Multihop.default with
                  Ibench.Multihop.relations = 2;
                  rows = 5;
                  hops = 2;
                  pi_corresp = pi;
                  pi_errors = pi / 2;
                  pi_unexplained = pi;
                  seed;
                }
              in
              let s = Ibench.Multihop.generate config in
              let pools = Ibench.Multihop.mappings s in
              let truth =
                Algebra.compose_all
                  (List.map
                     (fun (h : Ibench.Multihop.hop) ->
                       h.Ibench.Multihop.ground_truth)
                     s.Ibench.Multihop.hops)
              in
              (* end-to-end: one problem over the composed pool *)
              let composed = Algebra.compose_all pools in
              let problem =
                Core.Problem.make ?cache ~weights
                  ~source:s.Ibench.Multihop.source
                  ~j:(Ibench.Multihop.target s) composed
              in
              let sel = Core.Greedy.solve problem in
              let direct =
                Metrics.mapping_level ~candidates:composed ~truth sel
              in
              (* hop-by-hop: select within each hop, then compose winners *)
              let _, picked =
                List.fold_left
                  (fun (input, acc) (h : Ibench.Multihop.hop) ->
                    let p =
                      Core.Problem.make ?cache ~weights ~source:input
                        ~j:h.Ibench.Multihop.observed h.Ibench.Multihop.tgds
                    in
                    let sel = Core.Greedy.solve p in
                    let chosen =
                      List.filteri
                        (fun i _ -> sel.(i))
                        h.Ibench.Multihop.tgds
                    in
                    (h.Ibench.Multihop.observed, chosen :: acc))
                  (s.Ibench.Multihop.source, [])
                  s.Ibench.Multihop.hops
              in
              let stitched = Algebra.compose_all (List.rev picked) in
              let hopwise =
                Metrics.mapping_level ~candidates:stitched ~truth
                  (Array.make (List.length stitched) true)
              in
              (float_of_int (List.length composed), direct, hopwise))
            seeds
        in
        let pool = avg (List.map (fun (n, _, _) -> n) per_seed) in
        let d = List.map (fun (_, m, _) -> m.Metrics.f1) per_seed in
        let h = List.map (fun (_, _, m) -> m.Metrics.f1) per_seed in
        [ string_of_int pi; f2 pool; f2 (avg d); f2 (avg h) ])
      pis
  in
  Table.make ~id:"E15" ~title:"multi-hop: composed vs hop-by-hop selection"
    ~header:[ "pi"; "composed pool"; "F1 end-to-end"; "F1 hop-by-hop" ]
    rows
