let run ctx = Noise_sweep.run ctx ~id:"E3" Noise_sweep.Errors
