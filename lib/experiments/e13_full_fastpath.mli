(** E13 — extension: the Eq. 4 fast path on full-tgd scenarios.

    Scenarios built from CP/DL primitives only have exclusively full
    candidates, so Eq. 9 degenerates to Eq. 4 and the bitset-based
    specialised solvers apply. The table checks that the specialised and
    general solvers agree on the objective and compares their wall-clock
    time as the scenario grows. *)

val run : ?blocks : int list -> ?seed : int -> Common.Ctx.t -> Table.t
