let semantics_name = function
  | Cover.Corroborated -> "corroborated (paper)"
  | Cover.Strict -> "strict"
  | Cover.Generous -> "generous"

let appendix_degrees semantics =
  let stats =
    Cover.analyze ~semantics ~source:E1_appendix_example.instance_i
      ~j:E1_appendix_example.instance_j
      [ E1_appendix_example.theta1; E1_appendix_example.theta3 ]
  in
  let ml_task = Relational.Tuple.of_consts "task" [ "ML"; "Alice"; "111" ] in
  ( Util.Frac.to_string (Cover.covers stats.(0) ml_task),
    Util.Frac.to_string (Cover.covers stats.(1) ml_task) )

let run ?(seeds = E2_parameters.seeds) ctx =
  let rows =
    List.map
      (fun semantics ->
        let theta1_deg, theta3_deg = appendix_degrees semantics in
        let f1 =
          Util.Stats.mean
            (List.map
               (fun seed ->
                 let s =
                   Ibench.Generator.generate
                     (Common.noise_config ~seed ~pi_corresp:50 ~pi_errors:25
                        ~pi_unexplained:25 ())
                 in
                 let p =
                   Core.Problem.make ~semantics ?cache:(Common.Ctx.cache ctx)
                     ~source:s.Ibench.Scenario.instance_i
                     ~j:s.Ibench.Scenario.instance_j s.Ibench.Scenario.candidates
                 in
                 let r = Core.Cmd.solve p in
                 (Metrics.mapping_level ~candidates:s.Ibench.Scenario.candidates
                    ~truth:s.Ibench.Scenario.ground_truth r.Core.Cmd.selection)
                   .Metrics.f1)
               seeds)
        in
        [
          semantics_name semantics;
          theta1_deg;
          theta3_deg;
          Common.fmt_f f1;
        ])
      [ Cover.Corroborated; Cover.Strict; Cover.Generous ]
  in
  Table.make ~id:"E11" ~title:"ablation: coverage semantics"
    ~header:
      [ "semantics"; "theta1 covers ML task"; "theta3 covers ML task"; "map-F1 (noisy)" ]
    ~notes:
      [
        "the appendix's published degrees are 2/3 for theta1 and 1 for theta3;";
        "only the corroborated semantics reproduces them";
      ]
    rows
