(** E7 — table: selection quality per iBench primitive type under mixed
    noise. *)

val run : ?seeds : int list -> Common.Ctx.t -> Table.t
