let scenario_problem ctx seed =
  let s =
    Ibench.Generator.generate
      (Common.noise_config ~seed ~pi_corresp:50 ~pi_errors:25 ~pi_unexplained:25 ())
  in
  let p = Common.problem_of_scenario ctx s in
  let gold =
    Core.Problem.selection_of_indices p s.Ibench.Scenario.ground_truth_indices
  in
  (s, p, gold)

let eval ctx weights seeds =
  Util.Stats.mean
    (List.map
       (fun seed ->
         let s, p, _ = scenario_problem ctx seed in
         let r = Core.Cmd.solve (Core.Problem.with_weights p weights) in
         (Metrics.mapping_level ~candidates:s.Ibench.Scenario.candidates
            ~truth:s.Ibench.Scenario.ground_truth r.Core.Cmd.selection)
           .Metrics.f1)
       seeds)

let run ?(train_seeds = [ 1; 2 ]) ?(test_seeds = [ 3; 4; 5 ]) ctx =
  let training =
    List.map
      (fun seed ->
        let _, p, gold = scenario_problem ctx seed in
        (p, gold))
      train_seeds
  in
  let tuned = Core.Tune.grid_search ~training () in
  let default = Core.Problem.default_weights in
  let row name (w : Core.Problem.weights) =
    [
      name;
      Printf.sprintf "(%d,%d,%d)" w.Core.Problem.w_unexplained
        w.Core.Problem.w_errors w.Core.Problem.w_size;
      Common.fmt_f (eval ctx w train_seeds);
      Common.fmt_f (eval ctx w test_seeds);
    ]
  in
  Table.make ~id:"E14" ~title:"weight calibration on labelled scenarios"
    ~header:[ "weights"; "(w1,w2,w3)"; "train map-F1"; "test map-F1" ]
    ~notes:
      [
        Printf.sprintf "grid-searched on seeds {%s}, evaluated on seeds {%s}"
          (String.concat "," (List.map string_of_int train_seeds))
          (String.concat "," (List.map string_of_int test_seeds));
        "noise: piCorresp 50%, piErrors 25%, piUnexplained 25%";
      ]
    [ row "default" default; row "tuned" tuned ]
