(** E4 — figure: selection quality as piUnexplained grows. *)

val run : Common.Ctx.t -> Table.t
