(** E12 — the weighted objective (appendix, Theorem 1 generalisation):
    sensitivity of the selection to the coverage/size trade-off. *)

val run : ?seeds : int list -> Common.Ctx.t -> Table.t
