open Util

let run ?(blocks = [ 1; 2; 4; 8; 16 ]) ?(seed = 1) ctx =
  let rows =
    List.map
      (fun b ->
        let primitives =
          List.map (fun k -> (k, b)) Ibench.Primitive.all
        in
        let config =
          Common.noise_config ~primitives ~seed ~pi_corresp:25 ~pi_errors:10
            ~pi_unexplained:10 ()
        in
        let scenario, gen_ms = Timer.time_ms (fun () -> Ibench.Generator.generate config) in
        let problem, pre_ms =
          Timer.time_ms (fun () -> Common.problem_of_scenario ctx scenario)
        in
        let m = Core.Problem.num_candidates problem in
        let cmd, cmd_ms = Timer.time_ms (fun () -> Core.Cmd.solve problem) in
        let exact_ms =
          if m <= 20 then
            let _, ms = Timer.time_ms (fun () -> Core.Exact.solve problem) in
            Common.fmt_ms ms
          else "-"
        in
        [
          string_of_int (7 * b);
          string_of_int m;
          string_of_int cmd.Core.Cmd.num_vars;
          string_of_int (cmd.Core.Cmd.num_potentials + cmd.Core.Cmd.num_constraints);
          Common.fmt_ms gen_ms;
          Common.fmt_ms pre_ms;
          Common.fmt_ms cmd_ms;
          exact_ms;
        ])
      blocks
  in
  Table.make ~id:"E6" ~title:"runtime scaling with scenario size"
    ~header:
      [
        "primitives"; "candidates"; "model vars"; "ground rules"; "gen ms";
        "precompute ms"; "CMD ms"; "exact ms";
      ]
    ~notes:
      [ "exact search is skipped ('-') beyond 20 candidates";
        "noise: piCorresp 25%, piErrors 10%, piUnexplained 10%" ]
    rows
