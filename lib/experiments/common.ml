open Util

type solver =
  | Cmd_solver
  | Greedy_solver
  | All_candidates
  | Exact_solver
  | Portfolio_solver

let solver_name = function
  | Cmd_solver -> "CMD"
  | Greedy_solver -> "greedy"
  | All_candidates -> "all"
  | Exact_solver -> "exact"
  | Portfolio_solver -> "portfolio"

(* the Core.Solver registry name; only the CMD display label differs *)
let registry_name = function
  | Cmd_solver -> "cmd"
  | Greedy_solver -> "greedy"
  | All_candidates -> "all"
  | Exact_solver -> "exact"
  | Portfolio_solver -> "portfolio"

module Ctx = struct
  type t = {
    cache : Cache.t option;
    jobs : int;
    mutex : Mutex.t;
    mutable pool_slot : Parallel.Pool.t option;
    mutable closed : bool;
    warm : (string, Core.Cmd.warm) Hashtbl.t;
  }

  let create ?cache ?jobs () =
    let jobs =
      match jobs with
      | None -> Parallel.Pool.default_jobs ()
      | Some j ->
        if j < 1 then invalid_arg "Experiments.Common.Ctx.create: jobs must be >= 1";
        j
    in
    {
      cache;
      jobs;
      mutex = Mutex.create ();
      pool_slot = None;
      closed = false;
      warm = Hashtbl.create 16;
    }

  let cache t = t.cache

  let jobs t = t.jobs

  let pool t =
    Mutex.lock t.mutex;
    let r =
      if t.closed then Error ()
      else
        Ok
          (match t.pool_slot with
          | Some p -> p
          | None ->
            let p = Parallel.Pool.create ~jobs:t.jobs () in
            t.pool_slot <- Some p;
            p)
    in
    Mutex.unlock t.mutex;
    match r with
    | Ok p -> p
    | Error () -> invalid_arg "Experiments.Common.Ctx.pool: context is shut down"

  (* Take the slot under the lock, join the workers outside it: two racing
     shutdowns see the slot exactly once between them, and neither can
     observe a half-shut pool — the old [set_jobs] accessor could shut a
     pool down while a sweep was still fanning out on it. *)
  let shutdown t =
    Mutex.lock t.mutex;
    let p = t.pool_slot in
    t.pool_slot <- None;
    t.closed <- true;
    Mutex.unlock t.mutex;
    Option.iter Parallel.Pool.shutdown p

  let warm_find t key =
    Mutex.lock t.mutex;
    let v = Hashtbl.find_opt t.warm key in
    Mutex.unlock t.mutex;
    v

  let warm_set t key v =
    Mutex.lock t.mutex;
    Hashtbl.replace t.warm key v;
    Mutex.unlock t.mutex

  let warm_clear t =
    Mutex.lock t.mutex;
    Hashtbl.reset t.warm;
    Mutex.unlock t.mutex

  let with_ctx ?cache ?jobs f =
    let t = create ?cache ?jobs () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
end

let problem_of_scenario ctx (s : Ibench.Scenario.t) =
  Core.Problem.make ?cache:(Ctx.cache ctx) ~source:s.Ibench.Scenario.instance_i
    ~j:s.Ibench.Scenario.instance_j s.Ibench.Scenario.candidates

type outcome = {
  selection : bool array;
  objective : Frac.t;
  mapping : Metrics.scores;
  tuples : Metrics.scores;
  runtime_ms : float;
}

let run_solver ctx ?warm_key solver (s : Ibench.Scenario.t) problem =
  let selection, runtime_ms =
    match (solver, warm_key) with
    | Cmd_solver, Some key ->
      (* Warm-started sweep point. A re-served point (same key, same ground
         model) restarts ADMM from its own previous fixed point and
         re-converges in a handful of iterations; Cmd applies the state only
         on an exact model match, so selections are bit-identical to the
         cold path (the warm-start fuzz family and test_cmd pin this) and
         only the wall clock changes. When the context carries a cache, the
         selection tier short-circuits exact repeats outright — under the
         same key Core.Solver.solve uses for the registered cmd solver, so
         entries interoperate. *)
      let solve () =
        let prev = Ctx.warm_find ctx key in
        let r =
          Telemetry.with_span "solver.cmd" (fun () ->
              Core.Cmd.solve ?warm:prev problem)
        in
        Ctx.warm_set ctx key r.Core.Cmd.warm_out;
        r.Core.Cmd.selection
      in
      Timer.time_ms (fun () ->
          match Ctx.cache ctx with
          | None -> solve ()
          | Some cache ->
            Cache.selection cache ~solver:"cmd" ~seed:None
              ~problem_key:(Core.Problem.digest problem) solve)
    | _ ->
      let impl =
        match Core.Solver.find (registry_name solver) with
        | Some impl -> impl
        | None -> assert false (* every variant is registered *)
      in
      Timer.time_ms (fun () ->
          (Core.Solver.solve impl ?cache:(Ctx.cache ctx) problem)
            .Core.Solver.selection)
  in
  {
    selection;
    objective = Core.Objective.value problem selection;
    mapping =
      Metrics.mapping_level ~candidates:s.Ibench.Scenario.candidates
        ~truth:s.Ibench.Scenario.ground_truth selection;
    tuples = Metrics.tuple_level problem selection;
    runtime_ms;
  }

let noise_config ?(rows = 15) ?primitives ~seed ~pi_corresp ~pi_errors
    ~pi_unexplained () =
  let base = Ibench.Config.default in
  {
    base with
    Ibench.Config.primitives =
      Option.value
        ~default:base.Ibench.Config.primitives
        primitives;
    rows_per_relation = rows;
    pi_corresp;
    pi_errors;
    pi_unexplained;
    seed;
  }

let parallel_map ctx f xs =
  (* chunk 1: each task is a whole scenario generate + solve, far heavier
     than the queue overhead. On a worker (the registry fanning experiments
     out) or with one job, stay inline — and don't spawn the shared pool. *)
  if Parallel.Pool.on_worker () || Ctx.jobs ctx <= 1 then List.map f xs
  else Parallel.Pool.parallel_map_list ~chunk:1 (Ctx.pool ctx) f xs

let fmt_f v = Printf.sprintf "%.2f" v

let fmt_ms v = Printf.sprintf "%.1f" v

let average f ~seeds =
  let scores = List.map f seeds in
  {
    Metrics.precision = Stats.fmean (fun s -> s.Metrics.precision) scores;
    recall = Stats.fmean (fun s -> s.Metrics.recall) scores;
    f1 = Stats.fmean (fun s -> s.Metrics.f1) scores;
  }
