open Util

type solver =
  | Cmd_solver
  | Greedy_solver
  | All_candidates
  | Exact_solver

let solver_name = function
  | Cmd_solver -> "CMD"
  | Greedy_solver -> "greedy"
  | All_candidates -> "all"
  | Exact_solver -> "exact"

(* the Core.Solver registry name; only the CMD display label differs *)
let registry_name = function
  | Cmd_solver -> "cmd"
  | Greedy_solver -> "greedy"
  | All_candidates -> "all"
  | Exact_solver -> "exact"

(* The suite-wide evaluation cache, [None] by default. A plain atomic slot
   (not a lazy): `--cache` / [set_cache] runs before the suite, and reads
   from pool workers must be race-free. *)
let shared_cache = Atomic.make None

let set_cache c = Atomic.set shared_cache c

let cache () = Atomic.get shared_cache

let problem_of_scenario (s : Ibench.Scenario.t) =
  Core.Problem.make ?cache:(cache ()) ~source:s.Ibench.Scenario.instance_i
    ~j:s.Ibench.Scenario.instance_j s.Ibench.Scenario.candidates

type outcome = {
  selection : bool array;
  objective : Frac.t;
  mapping : Metrics.scores;
  tuples : Metrics.scores;
  runtime_ms : float;
}

let run_solver solver (s : Ibench.Scenario.t) problem =
  let impl =
    match Core.Solver.find (registry_name solver) with
    | Some impl -> impl
    | None -> assert false (* every variant is registered *)
  in
  let solve () = Core.Solver.solve impl ?cache:(cache ()) problem in
  let selection, runtime_ms = Timer.time_ms solve in
  {
    selection;
    objective = Core.Objective.value problem selection;
    mapping =
      Metrics.mapping_level ~candidates:s.Ibench.Scenario.candidates
        ~truth:s.Ibench.Scenario.ground_truth selection;
    tuples = Metrics.tuple_level problem selection;
    runtime_ms;
  }

let noise_config ?(rows = 15) ?primitives ~seed ~pi_corresp ~pi_errors
    ~pi_unexplained () =
  let base = Ibench.Config.default in
  {
    base with
    Ibench.Config.primitives =
      Option.value
        ~default:base.Ibench.Config.primitives
        primitives;
    rows_per_relation = rows;
    pi_corresp;
    pi_errors;
    pi_unexplained;
    seed;
  }

(* The suite-wide shared pool. Created lazily on first use so `--jobs` /
   [set_jobs] can still override the PARALLEL_JOBS/default sizing; guarded
   by a mutex because experiments themselves may run on pool workers. *)

let pool_mutex = Mutex.create ()

let jobs_override = ref None

let shared_pool = ref None

let jobs () =
  Mutex.lock pool_mutex;
  let j =
    match !jobs_override with
    | Some j -> j
    | None -> Parallel.Pool.default_jobs ()
  in
  Mutex.unlock pool_mutex;
  j

let set_jobs j =
  if j < 1 then invalid_arg "Experiments.Common.set_jobs: jobs must be >= 1";
  Mutex.lock pool_mutex;
  jobs_override := Some j;
  let old = !shared_pool in
  shared_pool := None;
  Mutex.unlock pool_mutex;
  Option.iter Parallel.Pool.shutdown old

let pool () =
  Mutex.lock pool_mutex;
  let p =
    match !shared_pool with
    | Some p -> p
    | None ->
      let j =
        match !jobs_override with
        | Some j -> j
        | None -> Parallel.Pool.default_jobs ()
      in
      let p = Parallel.Pool.create ~jobs:j () in
      shared_pool := Some p;
      p
  in
  Mutex.unlock pool_mutex;
  p

let parallel_map f xs =
  (* chunk 1: each task is a whole scenario generate + solve, far heavier
     than the queue overhead. On a worker (the registry fanning experiments
     out) or with one job, stay inline — and don't spawn the shared pool. *)
  if Parallel.Pool.on_worker () || jobs () <= 1 then List.map f xs
  else Parallel.Pool.parallel_map_list ~chunk:1 (pool ()) f xs

let fmt_f v = Printf.sprintf "%.2f" v

let fmt_ms v = Printf.sprintf "%.1f" v

let average f ~seeds =
  let scores = List.map f seeds in
  {
    Metrics.precision = Stats.fmean (fun s -> s.Metrics.precision) scores;
    recall = Stats.fmean (fun s -> s.Metrics.recall) scores;
    f1 = Stats.fmean (fun s -> s.Metrics.f1) scores;
  }
