(* Every runner is wrapped in an [experiment.<id>] span at registration, so
   both the `find` path (single ids from the CLI) and `run_all` are traced. *)
let spanned (id, desc, run) =
  (id, desc, fun () -> Telemetry.with_span ("experiment." ^ id) run)

let all =
  List.map spanned
  @@ [
    ("E1", "appendix worked example: the Eq. 9 objective table",
     E1_appendix_example.run);
    ("E2", "Table I: scenario generation parameters", E2_parameters.run);
    ("E3", "figure: quality vs piErrors", E3_errors.run);
    ("E4", "figure: quality vs piUnexplained", E4_unexplained.run);
    ("E5", "figure: quality vs piCorresp", E5_corresp.run);
    ("E6", "figure: runtime scaling", (fun () -> E6_scaling.run ()));
    ("E7", "table: quality per primitive", (fun () -> E7_per_primitive.run ()));
    ("E8", "figure: CMD vs exact optimum", (fun () -> E8_relaxation_gap.run ()));
    ("E9", "Theorem 1: SET COVER reduction", (fun () -> E9_setcover.run ()));
    ("E10", "ablation: CMD rounding strategy", (fun () -> E10_rounding.run ()));
    ("E11", "ablation: coverage semantics", (fun () -> E11_semantics.run ()));
    ("E12", "weighted objective sensitivity", (fun () -> E12_weights.run ()));
    ("E13", "Eq. 4 fast path on full tgds", (fun () -> E13_full_fastpath.run ()));
    ("E14", "weight calibration on labelled scenarios",
     (fun () -> E14_weight_tuning.run ()));
  ]

let find id =
  List.find_map
    (fun (id', _, run) ->
      if String.equal (String.uppercase_ascii id) id' then Some run else None)
    all

(* Experiments are independent of one another, so with a pool each runs on
   a worker and only the rendered tables are printed — in registry order,
   whatever the completion order. An experiment's own per-seed fan-out
   (Common.parallel_map) detects it is on a worker and runs inline. *)
let run_all ?pool ppf =
  match pool with
  | None ->
    List.iter
      (fun (_, _, run) -> Format.fprintf ppf "%a@." Table.pp (run ()))
      all
  | Some pool ->
    Parallel.Pool.parallel_map_list ~chunk:1 pool
      (fun (_, _, run) -> Format.asprintf "%a" Table.pp (run ()))
      all
    |> List.iter (Format.fprintf ppf "%s@.")
