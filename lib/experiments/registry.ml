(* Every runner is wrapped in an [experiment.<id>] span at registration, so
   both the `find` path (single ids from the CLI) and `run_all` are traced. *)
let spanned (id, desc, run) =
  ( id,
    desc,
    fun ctx -> Telemetry.with_span ("experiment." ^ id) (fun () -> run ctx) )

let all =
  List.map spanned
  @@ [
    ("E1", "appendix worked example: the Eq. 9 objective table",
     E1_appendix_example.run);
    ("E2", "Table I: scenario generation parameters", E2_parameters.run);
    ("E3", "figure: quality vs piErrors", E3_errors.run);
    ("E4", "figure: quality vs piUnexplained", E4_unexplained.run);
    ("E5", "figure: quality vs piCorresp", E5_corresp.run);
    ("E6", "figure: runtime scaling", (fun ctx -> E6_scaling.run ctx));
    ("E7", "table: quality per primitive",
     (fun ctx -> E7_per_primitive.run ctx));
    ("E8", "figure: CMD vs exact optimum",
     (fun ctx -> E8_relaxation_gap.run ctx));
    ("E9", "Theorem 1: SET COVER reduction", (fun ctx -> E9_setcover.run ctx));
    ("E10", "ablation: CMD rounding strategy", (fun ctx -> E10_rounding.run ctx));
    ("E11", "ablation: coverage semantics", (fun ctx -> E11_semantics.run ctx));
    ("E12", "weighted objective sensitivity", (fun ctx -> E12_weights.run ctx));
    ("E13", "Eq. 4 fast path on full tgds",
     (fun ctx -> E13_full_fastpath.run ctx));
    ("E14", "weight calibration on labelled scenarios",
     (fun ctx -> E14_weight_tuning.run ctx));
    ("E15", "multi-hop: composed vs hop-by-hop selection",
     (fun ctx -> E15_multihop.run ctx));
  ]

let find id =
  List.find_map
    (fun (id', _, run) ->
      if String.equal (String.uppercase_ascii id) id' then Some run else None)
    all

(* Experiments are independent of one another, so with more than one job
   each runs on a worker of the context's pool and only the rendered tables
   are printed — in registry order, whatever the completion order. An
   experiment's own per-seed fan-out (Common.parallel_map) detects it is on
   a worker and runs inline. *)
let run_all ctx ppf =
  if Common.Ctx.jobs ctx <= 1 then
    List.iter
      (fun (_, _, run) -> Format.fprintf ppf "%a@." Table.pp (run ctx))
      all
  else
    Parallel.Pool.parallel_map_list ~chunk:1 (Common.Ctx.pool ctx)
      (fun (_, _, run) -> Format.asprintf "%a" Table.pp (run ctx))
      all
    |> List.iter (Format.fprintf ppf "%s@.")
