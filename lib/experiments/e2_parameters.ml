let noise_levels = [ 0; 10; 25; 50 ]

let seeds = [ 1; 2; 3; 4; 5 ]

let run (_ : Common.Ctx.t) =
  let d = Ibench.Config.default in
  let levels = String.concat ", " (List.map string_of_int noise_levels) in
  Table.make ~id:"E2" ~title:"scenario generation parameters (Table I)"
    ~header:[ "parameter"; "value(s)" ]
    ~notes:
      [
        "the appendix fixes the primitives and the (2,4) ranges; the sweep";
        "grids cover the no/low/medium/high noise regimes of the paper";
      ]
    [
      [ "iBench primitives";
        String.concat ", "
          (List.map Ibench.Primitive.to_string Ibench.Primitive.all) ];
      [ "instances per primitive"; "1 (E3-E5, E7-E8), 1..112 (E6)" ];
      [ "source relation arity"; string_of_int d.Ibench.Config.src_arity ];
      [ "ADD/ADL added attributes";
        Printf.sprintf "(%d,%d)" (fst d.Ibench.Config.range_add)
          (snd d.Ibench.Config.range_add) ];
      [ "DL/ADL removed attributes";
        Printf.sprintf "(%d,%d)" (fst d.Ibench.Config.range_delete)
          (snd d.Ibench.Config.range_delete) ];
      [ "rows per source relation"; "15" ];
      [ "piCorresp (%)"; levels ];
      [ "piErrors (%)"; levels ];
      [ "piUnexplained (%)"; levels ];
      [ "seeds per configuration";
        string_of_int (List.length seeds) ];
      [ "objective weights (w1,w2,w3)"; "(1,1,1)" ];
    ]
