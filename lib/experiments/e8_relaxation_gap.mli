(** E8 — figure: how close CMD's rounded solution gets to the exact optimum
    on scenarios small enough for branch and bound. *)

val run : ?seeds : int list -> Common.Ctx.t -> Table.t
