open Util

let variants =
  [
    ("conditional+repair", { Core.Cmd.default_options with Core.Cmd.repair = true });
    ("conditional", { Core.Cmd.default_options with Core.Cmd.repair = false });
    ( "threshold 0.5",
      { Core.Cmd.default_options with Core.Cmd.rounding = Core.Cmd.Threshold 0.5; repair = false } );
    ( "threshold 0.5+repair",
      { Core.Cmd.default_options with Core.Cmd.rounding = Core.Cmd.Threshold 0.5; repair = true } );
    ( "threshold 0.9",
      { Core.Cmd.default_options with Core.Cmd.rounding = Core.Cmd.Threshold 0.9; repair = false } );
    ( "squared potentials",
      { Core.Cmd.default_options with Core.Cmd.squared = true } );
  ]

let run ?(seeds = E2_parameters.seeds) ctx =
  let scenarios =
    List.map
      (fun seed ->
        let s =
          Ibench.Generator.generate
            (Common.noise_config ~seed ~pi_corresp:50 ~pi_errors:25
               ~pi_unexplained:25 ())
        in
        (s, Common.problem_of_scenario ctx s))
      seeds
  in
  let rows =
    List.map
      (fun (name, options) ->
        let objectives, f1s =
          List.split
            (List.map
               (fun (s, p) ->
                 let r = Core.Cmd.solve ~options p in
                 let f1 =
                   (Metrics.mapping_level
                      ~candidates:s.Ibench.Scenario.candidates
                      ~truth:s.Ibench.Scenario.ground_truth r.Core.Cmd.selection)
                     .Metrics.f1
                 in
                 (Frac.to_float r.Core.Cmd.objective, f1))
               scenarios)
        in
        [
          name;
          Common.fmt_f (Stats.mean objectives);
          Common.fmt_f (Stats.mean f1s);
        ])
      variants
  in
  Table.make ~id:"E10" ~title:"ablation: rounding strategy of CMD"
    ~header:[ "rounding"; "mean objective"; "mean map-F1" ]
    ~notes:[ "noise: piCorresp 50%, piErrors 25%, piUnexplained 25%; lower objective is better" ]
    rows
