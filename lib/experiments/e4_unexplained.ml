let run ctx = Noise_sweep.run ctx ~id:"E4" Noise_sweep.Unexplained
