open Util

let random_instance rng =
  let u_size = 3 + Random.State.int rng 4 in
  let universe = List.init u_size string_of_int in
  let n_sets = 2 + Random.State.int rng 4 in
  let sets =
    List.init n_sets (fun i ->
        let members =
          List.filter (fun _ -> Random.State.bool rng) universe
        in
        let members = if members = [] then [ List.hd universe ] else members in
        (Printf.sprintf "S%d" i, members))
  in
  let budget = 1 + Random.State.int rng 3 in
  { Core.Setcover.universe; sets; budget }

let brute_force_cover (inst : Core.Setcover.instance) =
  let universe = List.sort_uniq String.compare inst.Core.Setcover.universe in
  let n = List.length inst.Core.Setcover.sets in
  List.exists
    (fun mask ->
      let chosen =
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0) inst.Core.Setcover.sets
      in
      List.length chosen <= inst.Core.Setcover.budget
      && List.sort_uniq String.compare (List.concat_map snd chosen) = universe)
    (List.init (1 lsl n) Fun.id)

let run ?(count = 8) (_ : Common.Ctx.t) =
  let rng = Random.State.make [| 2017 |] in
  let rows =
    List.init count (fun i ->
        let inst = random_instance rng in
        let red = Core.Setcover.reduce inst in
        let best = Core.Exact.solve red.Core.Setcover.problem in
        let f_min = Core.Objective.value red.Core.Setcover.problem best in
        let closed =
          Core.Setcover.closed_form inst
            ~selected:(Core.Setcover.cover_of_selection red best)
        in
        let decide = Core.Setcover.decide inst in
        let brute = brute_force_cover inst in
        [
          string_of_int (i + 1);
          Printf.sprintf "|U|=%d, %d sets, n=%d"
            (List.length (List.sort_uniq String.compare inst.Core.Setcover.universe))
            (List.length inst.Core.Setcover.sets)
            inst.Core.Setcover.budget;
          Frac.to_string f_min;
          Frac.to_string closed;
          string_of_int red.Core.Setcover.m;
          (if decide then "yes" else "no");
          (if decide = brute then "ok" else "MISMATCH");
        ])
  in
  Table.make ~id:"E9" ~title:"Theorem 1: SET COVER reduction"
    ~header:
      [ "#"; "instance"; "min F"; "closed form"; "m=2n"; "cover<=n?"; "vs brute force" ]
    ~notes:[ "'min F' and 'closed form' agree by Theorem 1; decision is F <= m" ]
    rows
