(** E6 — figure: runtime scaling with scenario size.

    Scenarios grow by adding whole primitive-mix blocks (one instance of each
    of the seven primitives per block). For each size the table reports the
    candidate count, the ground model size, and wall-clock times of the
    precomputation (chase + degrees), CMD (ADMM + rounding) and exact branch
    and bound (skipped beyond 20 candidates, where it blows up — that is the
    point of the figure). *)

val run : ?blocks : int list -> ?seed : int -> Common.Ctx.t -> Table.t
(** Default blocks: [1; 2; 4; 8; 16]. *)
