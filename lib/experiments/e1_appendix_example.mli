(** E1 — the appendix's worked example (its objective table, reproduced
    exactly), plus the preference flip after adding five ML-like projects. *)

val run : Common.Ctx.t -> Table.t

val appendix_values : unit -> (string * Util.Frac.t) list
(** The four objective values [({}, 4); ({θ1}, 7 1/3); ...] as computed by
    the library — the gold numbers the tests pin down. *)

(** The reconstructed example itself, reused by the ablations. *)

val instance_i : Relational.Instance.t

val instance_j : Relational.Instance.t

val theta1 : Logic.Tgd.t

val theta3 : Logic.Tgd.t
