open Util

let run ?(seeds = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]) ctx =
  let primitives = Ibench.Primitive.[ (CP, 1); (ME, 1); (VP, 1) ] in
  let results =
    List.filter_map
      (fun seed ->
        let config =
          Common.noise_config ~primitives ~seed ~pi_corresp:50 ~pi_errors:25
            ~pi_unexplained:25 ()
        in
        let s = Ibench.Generator.generate config in
        let p = Common.problem_of_scenario ctx s in
        if Core.Problem.num_candidates p > 18 then None
        else
          let opt = Core.Objective.value p (Core.Exact.solve p) in
          let cmd = (Core.Cmd.solve p).Core.Cmd.objective in
          let greedy = Core.Objective.value p (Core.Greedy.solve p) in
          Some (seed, Core.Problem.num_candidates p, opt, cmd, greedy))
      seeds
  in
  let rows =
    List.map
      (fun (seed, m, opt, cmd, greedy) ->
        [
          string_of_int seed;
          string_of_int m;
          Frac.to_string opt;
          Frac.to_string cmd;
          Frac.to_string greedy;
          (if Frac.equal opt cmd then "yes" else "no");
        ])
      results
  in
  let hits =
    List.length (List.filter (fun (_, _, opt, cmd, _) -> Frac.equal opt cmd) results)
  in
  Table.make ~id:"E8" ~title:"CMD vs exact optimum on small scenarios"
    ~header:[ "seed"; "candidates"; "exact F"; "CMD F"; "greedy F"; "CMD optimal?" ]
    ~notes:
      [
        Printf.sprintf "CMD attains the exact optimum on %d of %d scenarios"
          hits (List.length results);
        "noise: piCorresp 50%, piErrors 25%, piUnexplained 25%";
      ]
    rows
