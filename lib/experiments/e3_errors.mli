(** E3 — figure: selection quality as piErrors grows. *)

val run : Common.Ctx.t -> Table.t
