(** The experiment registry: every table/figure of the reproduction, by id. *)

val all : (string * string * (unit -> Table.t)) list
(** [(id, one-line description, runner)] for E1..E9, in order. *)

val find : string -> (unit -> Table.t) option
(** Case-insensitive lookup by id. *)

val run_all : ?pool : Parallel.Pool.t -> Format.formatter -> unit
(** Runs every experiment and prints its table, in registry order. With
    [pool] the (mutually independent) experiments run concurrently on the
    worker domains; tables are rendered off-formatter and printed in
    registry order, so the output is identical to a sequential run. *)
