(** The experiment registry: every table/figure of the reproduction, by id.
    Runners take the solver context ({!Common.Ctx}) that carries the cache,
    the parallelism degree and the warm-start store. *)

val all : (string * string * (Common.Ctx.t -> Table.t)) list
(** [(id, one-line description, runner)] for E1..E15, in order. *)

val find : string -> (Common.Ctx.t -> Table.t) option
(** Case-insensitive lookup by id. *)

val run_all : Common.Ctx.t -> Format.formatter -> unit
(** Runs every experiment and prints its table, in registry order. With
    [Ctx.jobs ctx > 1] the (mutually independent) experiments run
    concurrently on the context's pool; tables are rendered off-formatter
    and printed in registry order, so the output is identical to a
    sequential run. *)
