(** Shared implementation of the quality-vs-noise figures (E3, E4, E5).

    For each noise level of the swept parameter (other noise parameters 0)
    and each seed, a scenario is generated, the selection problem built, and
    each solver run; the table reports the mapping-level and tuple-level F1
    averaged over seeds. Seeds fan out over the context's pool; each CMD
    solve carries a per-(sweep, seed, level) warm key
    ({!Common.run_solver}'s [warm_key]), so re-serving a sweep under the
    same context warm-starts each point from its own previous ADMM state —
    the table is bit-identical to a cold sequential sweep for any
    [jobs]. *)

type dimension =
  | Errors  (** sweep piErrors — E3 *)
  | Unexplained  (** sweep piUnexplained — E4 *)
  | Corresp  (** sweep piCorresp — E5 *)

val run :
  Common.Ctx.t ->
  ?levels : int list ->
  ?seeds : int list ->
  ?solvers : Common.solver list ->
  id : string ->
  dimension ->
  Table.t
(** Defaults: levels {!E2_parameters.noise_levels}, seeds
    {!E2_parameters.seeds}, solvers CMD/greedy/all. *)
