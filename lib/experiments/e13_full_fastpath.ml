open Util

let run ?(blocks = [ 2; 4; 8; 16 ]) ?(seed = 5) ctx =
  let rows =
    List.map
      (fun b ->
        let primitives = Ibench.Primitive.[ (CP, b); (DL, b) ] in
        let config =
          Common.noise_config ~primitives ~seed ~pi_corresp:25 ~pi_errors:10
            ~pi_unexplained:10 ()
        in
        let s = Ibench.Generator.generate config in
        let p = Common.problem_of_scenario ctx s in
        match Core.Full.of_problem p with
        | Error msg -> [ string_of_int (2 * b); "not full: " ^ msg ]
        | Ok full ->
          let m = Core.Problem.num_candidates p in
          let g_general, g_general_ms = Timer.time_ms (fun () -> Core.Greedy.solve p) in
          let g_fast, g_fast_ms = Timer.time_ms (fun () -> Core.Full.greedy full) in
          let agree_greedy =
            Frac.equal (Core.Objective.value p g_general) (Core.Full.value full g_fast)
          in
          let exact_cols =
            if m <= 18 then begin
              let e_general, e_general_ms =
                Timer.time_ms (fun () -> Core.Exact.solve p)
              in
              let e_fast, e_fast_ms = Timer.time_ms (fun () -> Core.Full.exact full) in
              let agree =
                Frac.equal (Core.Objective.value p e_general)
                  (Core.Full.value full e_fast)
              in
              [
                Common.fmt_ms e_general_ms;
                Common.fmt_ms e_fast_ms;
                (if agree then "yes" else "NO");
              ]
            end
            else if m <= 30 then begin
              (* the bitset bound still copes where the general B&B is
                 hopeless *)
              let _, e_fast_ms = Timer.time_ms (fun () -> Core.Full.exact full) in
              [ "-"; Common.fmt_ms e_fast_ms; "-" ]
            end
            else [ "-"; "-"; "-" ]
          in
          [
            string_of_int (2 * b);
            string_of_int m;
            Common.fmt_ms g_general_ms;
            Common.fmt_ms g_fast_ms;
            (if agree_greedy then "yes" else "NO");
          ]
          @ exact_cols)
      blocks
  in
  Table.make ~id:"E13" ~title:"Eq. 4 fast path on full-tgd scenarios"
    ~header:
      [
        "primitives"; "candidates"; "greedy ms"; "fast greedy ms"; "same F?";
        "exact ms"; "fast exact ms"; "same F?";
      ]
    ~notes:
      [ "CP/DL only: every candidate is full, so Eq. 9 = Eq. 4";
        "noise: piCorresp 25%, piErrors 10%, piUnexplained 10%" ]
    rows
