(** E5 — figure: selection quality as piCorresp grows (spurious metadata). *)

val run : Common.Ctx.t -> Table.t
