(** Shared plumbing for the experiments: scenario → problem conversion,
    solver invocation and metric aggregation. *)

type solver =
  | Cmd_solver  (** the paper's approach *)
  | Greedy_solver  (** the non-collective baseline *)
  | All_candidates  (** select everything Clio proposed *)
  | Exact_solver  (** branch and bound (small problems only) *)

val solver_name : solver -> string

val set_cache : Cache.t option -> unit
(** CLI override (`--cache`): the evaluation cache {!problem_of_scenario}
    and {!run_solver} consult. [None] (the default) disables caching. *)

val cache : unit -> Cache.t option
(** The suite's shared evaluation cache, if any. *)

val problem_of_scenario : Ibench.Scenario.t -> Core.Problem.t
(** Chases the source instance per candidate and precomputes degrees,
    memoized through {!cache} when one is set. The noise sweeps re-solve
    near-identical scenarios per seed, so warm runs skip most chases. *)

type outcome = {
  selection : bool array;
  objective : Util.Frac.t;
  mapping : Metrics.scores;  (** selected tgds vs MG *)
  tuples : Metrics.scores;  (** data quality of the selection *)
  runtime_ms : float;
}

val run_solver :
  solver -> Ibench.Scenario.t -> Core.Problem.t -> outcome
(** Runs one solver; [runtime_ms] covers only the solve, not the
    precomputation. *)

val noise_config :
  ?rows : int ->
  ?primitives : (Ibench.Primitive.kind * int) list ->
  seed : int ->
  pi_corresp : int ->
  pi_errors : int ->
  pi_unexplained : int ->
  unit ->
  Ibench.Config.t
(** The standard experiment configuration: all seven primitives once, 8 rows
    per relation, unless overridden. *)

val jobs : unit -> int
(** The suite's parallelism degree: {!set_jobs} override when set, else
    [PARALLEL_JOBS], else [Domain.recommended_domain_count ()]. *)

val set_jobs : int -> unit
(** CLI override (`--jobs`). Shuts down a previously created shared pool so
    the next {!pool} call resizes. Raises [Invalid_argument] on [j < 1]. *)

val pool : unit -> Parallel.Pool.t
(** The shared, lazily created worker pool of the experiment suite, sized
    by {!jobs}. Thread-safe. *)

val parallel_map : ('a -> 'b) -> 'a list -> 'b list
(** [List.map f xs] fanned out over {!pool}, one task per element; results
    keep list order and are bit-identical to the sequential map for pure
    [f]. Runs inline when {!jobs}[ () <= 1] or when already on a pool
    worker (nested fan-out), without spawning the shared pool. *)

val fmt_f : float -> string
(** Two decimals. *)

val fmt_ms : float -> string
(** Milliseconds with one decimal. *)

val average : (int -> Metrics.scores) -> seeds : int list -> Metrics.scores
(** Component-wise mean over seeds. *)
