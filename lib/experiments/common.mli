(** Shared plumbing for the experiments: the solver context, scenario →
    problem conversion, solver invocation and metric aggregation. *)

type solver =
  | Cmd_solver  (** the paper's approach *)
  | Greedy_solver  (** the non-collective baseline *)
  | All_candidates  (** select everything Clio proposed *)
  | Exact_solver  (** branch and bound (small problems only) *)
  | Portfolio_solver  (** {!Core.Portfolio} race over the registry roster *)

val solver_name : solver -> string
(** Display label ([CMD], [greedy], ...). *)

val registry_name : solver -> string
(** The {!Core.Solver.find} name of the variant. *)

(** The solver context: every run-wide resource the suite used to keep in
    process globals — the evaluation cache, the parallelism degree, the
    shared worker pool and the warm-start store — bundled into one value
    threaded explicitly through the experiments. A [Ctx.t] is immutable in
    its configuration (no mid-run cache swaps or pool resizes; the old
    [set_jobs] could shut a pool down under a running sweep), and its
    shutdown is idempotent and race-free. *)
module Ctx : sig
  type t

  val create : ?cache : Cache.t -> ?jobs : int -> unit -> t
  (** A fresh context. [jobs] defaults to {!Parallel.Pool.default_jobs}
      ([PARALLEL_JOBS], else the recommended domain count); the pool itself
      is created lazily on first {!pool} call. Raises [Invalid_argument]
      on [jobs < 1]. *)

  val cache : t -> Cache.t option

  val jobs : t -> int

  val pool : t -> Parallel.Pool.t
  (** The context's shared worker pool, created on first use. Thread-safe.
      Raises [Invalid_argument] after {!shutdown}. *)

  val shutdown : t -> unit
  (** Joins the pool's workers (if one was created) and closes the context.
      Idempotent and safe to race: the pool is detached under a lock, so
      exactly one caller joins it and later {!pool} calls fail instead of
      resurrecting workers. *)

  val warm_find : t -> string -> Core.Cmd.warm option
  (** The warm-start state last stored under a sweep-point key. *)

  val warm_set : t -> string -> Core.Cmd.warm -> unit

  val warm_clear : t -> unit
  (** Drops all stored warm states (e.g. between unrelated sweeps). *)

  val with_ctx : ?cache : Cache.t -> ?jobs : int -> (t -> 'a) -> 'a
  (** [create], run, [shutdown] — even on exceptions. *)
end

val problem_of_scenario : Ctx.t -> Ibench.Scenario.t -> Core.Problem.t
(** Chases the source instance per candidate and precomputes degrees,
    memoized through the context's cache when one is set. The noise sweeps
    re-solve near-identical scenarios per seed, so warm runs skip most
    chases. *)

type outcome = {
  selection : bool array;
  objective : Util.Frac.t;
  mapping : Metrics.scores;  (** selected tgds vs MG *)
  tuples : Metrics.scores;  (** data quality of the selection *)
  runtime_ms : float;
}

val run_solver :
  Ctx.t ->
  ?warm_key : string ->
  solver ->
  Ibench.Scenario.t ->
  Core.Problem.t ->
  outcome
(** Runs one solver; [runtime_ms] covers only the solve, not the
    precomputation. With [warm_key] and {!Cmd_solver}, the solve warm-starts
    from the state stored under that key (if any) and stores its own state
    back — sweep runners use one key per (dimension, seed, level) point, so
    a re-served sweep restarts each ADMM from its own previous fixed point;
    {!Core.Cmd.solve} applies the state only on an exact ground-model
    match, so selections are bit-identical to the cold path. When the
    context carries a cache, the warm path additionally serves exact
    repeats from the cache's selection tier without solving at all.
    [warm_key] is ignored for other solvers. May raise
    {!Core.Solver_error.Error} (e.g. {!Exact_solver} on oversized
    problems). *)

val noise_config :
  ?rows : int ->
  ?primitives : (Ibench.Primitive.kind * int) list ->
  seed : int ->
  pi_corresp : int ->
  pi_errors : int ->
  pi_unexplained : int ->
  unit ->
  Ibench.Config.t
(** The standard experiment configuration: all seven primitives once, 8 rows
    per relation, unless overridden. *)

val parallel_map : Ctx.t -> ('a -> 'b) -> 'a list -> 'b list
(** [List.map f xs] fanned out over the context's pool, one task per
    element; results keep list order and are bit-identical to the
    sequential map for pure [f]. Runs inline when [Ctx.jobs ctx <= 1] or
    when already on a pool worker (nested fan-out), without spawning the
    shared pool. *)

val fmt_f : float -> string
(** Two decimals. *)

val fmt_ms : float -> string
(** Milliseconds with one decimal. *)

val average : (int -> Metrics.scores) -> seeds : int list -> Metrics.scores
(** Component-wise mean over seeds. *)
