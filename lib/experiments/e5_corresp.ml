let run ctx = Noise_sweep.run ctx ~id:"E5" Noise_sweep.Corresp
