(** Multi-hop composition quality: end-to-end selection over the composed
    candidate pool ({!Algebra.compose_all}) versus per-hop selection with
    the winners composed afterwards, both scored mapping-level against the
    composed ground truth across a noise sweep on {!Ibench.Multihop}
    chains. *)

val run :
  ?pis : int list -> ?seeds : int list -> Common.Ctx.t -> Table.t
