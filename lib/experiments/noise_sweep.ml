type dimension =
  | Errors
  | Unexplained
  | Corresp

let dimension_name = function
  | Errors -> "piErrors"
  | Unexplained -> "piUnexplained"
  | Corresp -> "piCorresp"

let config_of dimension ~seed ~level =
  let pi_errors, pi_unexplained, pi_corresp =
    match dimension with
    | Errors -> (level, 0, 0)
    | Unexplained -> (0, level, 25)
      (* spurious tuples require spurious candidates to exist, hence a fixed
         moderate piCorresp when sweeping piUnexplained *)
    | Corresp -> (0, 0, level)
  in
  Common.noise_config ~seed ~pi_corresp ~pi_errors ~pi_unexplained ()

let run ?(levels = E2_parameters.noise_levels) ?(seeds = E2_parameters.seeds)
    ?(solvers = Common.[ Cmd_solver; Greedy_solver; All_candidates ]) ~id
    dimension =
  (* every (level, seed) scenario is generated and solved independently, so
     the whole grid fans out over the shared pool; regrouping by level below
     preserves seed order, keeping the averages identical to a sequential
     sweep *)
  let grid =
    List.concat_map
      (fun level -> List.map (fun seed -> (level, seed)) seeds)
      levels
  in
  let solved =
    Common.parallel_map
      (fun (level, seed) ->
        let s = Ibench.Generator.generate (config_of dimension ~seed ~level) in
        let p = Common.problem_of_scenario s in
        (level, List.map (fun solver -> Common.run_solver solver s p) solvers))
      grid
  in
  let rows =
    List.map
      (fun level ->
        let per_seed =
          List.filter_map
            (fun (l, outcomes) -> if l = level then Some outcomes else None)
            solved
        in
        let avg pick i =
          Util.Stats.fmean (fun outcomes -> pick (List.nth outcomes i)) per_seed
        in
        string_of_int level
        :: (List.concat
              (List.mapi
                 (fun i _ ->
                   [
                     Common.fmt_f (avg (fun o -> o.Common.mapping.Metrics.f1) i);
                     Common.fmt_f (avg (fun o -> o.Common.tuples.Metrics.f1) i);
                   ])
                 solvers)))
      levels
  in
  let header =
    dimension_name dimension
    :: List.concat_map
         (fun s ->
           let n = Common.solver_name s in
           [ n ^ " map-F1"; n ^ " tup-F1" ])
         solvers
  in
  Table.make ~id
    ~title:
      (Printf.sprintf "selection quality vs %s (mean over %d seeds)"
         (dimension_name dimension) (List.length seeds))
    ~header
    ~notes:
      (match dimension with
      | Unexplained ->
        [ "piCorresp fixed at 25% so that spurious candidates exist" ]
      | Errors | Corresp -> [])
    rows
