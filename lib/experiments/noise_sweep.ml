type dimension =
  | Errors
  | Unexplained
  | Corresp

let dimension_name = function
  | Errors -> "piErrors"
  | Unexplained -> "piUnexplained"
  | Corresp -> "piCorresp"

let config_of dimension ~seed ~level =
  let pi_errors, pi_unexplained, pi_corresp =
    match dimension with
    | Errors -> (level, 0, 0)
    | Unexplained -> (0, level, 25)
      (* spurious tuples require spurious candidates to exist, hence a fixed
         moderate piCorresp when sweeping piUnexplained *)
    | Corresp -> (0, 0, level)
  in
  Common.noise_config ~seed ~pi_corresp ~pi_errors ~pi_unexplained ()

let run ctx ?(levels = E2_parameters.noise_levels)
    ?(seeds = E2_parameters.seeds)
    ?(solvers = Common.[ Cmd_solver; Greedy_solver; All_candidates ]) ~id
    dimension =
  (* Seeds fan out over the shared pool; each CMD solve carries one warm
     key per (sweep, seed, level) point, so a re-served sweep — a repeated
     table, the serving daemon — restarts every ADMM from that point's own
     previous fixed point (and, with a context cache, skips the solve via
     the selection tier). Adjacent levels are deliberately NOT chained:
     their ground models differ, and Cmd applies warm state only on an
     exact model match because a foreign starting point can reach a
     different optimum and flip the selection. Warm selections are
     therefore bit-identical to cold ones, and regrouping by level below
     preserves seed order, keeping the table identical to a sequential cold
     sweep. *)
  let per_seed =
    Common.parallel_map ctx
      (fun seed ->
        List.map
          (fun level ->
            let s =
              Ibench.Generator.generate (config_of dimension ~seed ~level)
            in
            let p = Common.problem_of_scenario ctx s in
            ( level,
              List.map
                (fun solver ->
                  let warm_key =
                    match solver with
                    | Common.Cmd_solver ->
                      Some
                        (Printf.sprintf "%s:%s:%d:%d" id
                           (dimension_name dimension) seed level)
                    | _ -> None
                  in
                  Common.run_solver ctx ?warm_key solver s p)
                solvers ))
          levels)
      seeds
  in
  let solved = List.concat per_seed in
  let rows =
    List.map
      (fun level ->
        let per_seed =
          List.filter_map
            (fun (l, outcomes) -> if l = level then Some outcomes else None)
            solved
        in
        let avg pick i =
          Util.Stats.fmean (fun outcomes -> pick (List.nth outcomes i)) per_seed
        in
        string_of_int level
        :: (List.concat
              (List.mapi
                 (fun i _ ->
                   [
                     Common.fmt_f (avg (fun o -> o.Common.mapping.Metrics.f1) i);
                     Common.fmt_f (avg (fun o -> o.Common.tuples.Metrics.f1) i);
                   ])
                 solvers)))
      levels
  in
  let header =
    dimension_name dimension
    :: List.concat_map
         (fun s ->
           let n = Common.solver_name s in
           [ n ^ " map-F1"; n ^ " tup-F1" ])
         solvers
  in
  Table.make ~id
    ~title:
      (Printf.sprintf "selection quality vs %s (mean over %d seeds)"
         (dimension_name dimension) (List.length seeds))
    ~header
    ~notes:
      (match dimension with
      | Unexplained ->
        [ "piCorresp fixed at 25% so that spurious candidates exist" ]
      | Errors | Corresp -> [])
    rows
