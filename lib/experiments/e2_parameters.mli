(** E2 — Table I: the scenario-generation parameter space used by the
    experiment suite. *)

val noise_levels : int list
(** The sweep grid shared by E3–E5: [0; 10; 25; 50]. *)

val seeds : int list
(** Seeds every averaged experiment uses: [1..5]. *)

val run : Common.Ctx.t -> Table.t
