(** E14 — extension: calibrating the objective weights on labelled scenarios.

    The weights are grid-searched against the gold selections of training
    scenarios ({!Core.Tune}) and evaluated on held-out scenarios under the
    same noise profile, against the paper's default (1,1,1). *)

val run : ?train_seeds : int list -> ?test_seeds : int list -> Common.Ctx.t -> Table.t
