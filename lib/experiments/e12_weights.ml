let weight_grid = [ (1, 1, 1); (2, 1, 1); (4, 1, 1); (1, 1, 2); (1, 1, 4); (1, 4, 1) ]

let run ?(seeds = [ 1; 2; 3 ]) ctx =
  let scenarios =
    List.map
      (fun seed ->
        Ibench.Generator.generate
          (Common.noise_config ~seed ~pi_corresp:25 ~pi_errors:25
             ~pi_unexplained:25 ()))
      seeds
  in
  let rows =
    List.map
      (fun (w1, w2, w3) ->
        let weights =
          { Core.Problem.w_unexplained = w1; w_errors = w2; w_size = w3 }
        in
        let per_scenario =
          List.map
            (fun (s : Ibench.Scenario.t) ->
              let p =
                Core.Problem.make ~weights ?cache:(Common.Ctx.cache ctx)
                  ~source:s.Ibench.Scenario.instance_i
                  ~j:s.Ibench.Scenario.instance_j s.Ibench.Scenario.candidates
              in
              let r = Core.Cmd.solve p in
              let selected =
                Array.fold_left (fun n b -> if b then n + 1 else n) 0
                  r.Core.Cmd.selection
              in
              let f1 =
                (Metrics.mapping_level ~candidates:s.Ibench.Scenario.candidates
                   ~truth:s.Ibench.Scenario.ground_truth r.Core.Cmd.selection)
                  .Metrics.f1
              in
              (float_of_int selected, f1))
            scenarios
        in
        [
          Printf.sprintf "(%d,%d,%d)" w1 w2 w3;
          Common.fmt_f (Util.Stats.fmean fst per_scenario);
          Common.fmt_f (Util.Stats.fmean snd per_scenario);
        ])
      weight_grid
  in
  Table.make ~id:"E12"
    ~title:"weighted objective: sensitivity to (w1,w2,w3)"
    ~header:[ "(w1,w2,w3)"; "mean |M|"; "mean map-F1" ]
    ~notes:
      [
        "w1 rewards coverage (larger mappings), w3 penalises size (smaller";
        "mappings), w2 penalises errors; (1,1,1) is the paper's Eq. 9";
      ]
    rows
