open Relational
open Logic

type error = {
  line : int;
  message : string;
}

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Fail of string

let fail fmt = Format.kasprintf (fun msg -> raise (Fail msg)) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-'

(* A double-quoted argument is a constant whatever its spelling — the
   escape hatch for constants the bare grammar would read as variables
   (e.g. a leading '_'). Quotes are kept here and stripped by the
   consumer ([term_of_string], [unquote]). *)
let check_quoted_arg a ctx =
  let n = String.length a in
  if n < 3 || a.[n - 1] <> '"' then fail "unterminated quote in %S in %s" a ctx;
  String.iteri
    (fun i c ->
      if i > 0 && i < n - 1 && not (is_ident_char c) then
        fail "bad argument %S in %s" a ctx)
    a

let unquote a =
  let n = String.length a in
  if n >= 2 && a.[0] = '"' && a.[n - 1] = '"' then String.sub a 1 (n - 2)
  else a

(* Split "rel(a, b, c)" into ("rel", ["a"; "b"; "c"]). *)
let parse_application s =
  let s = String.trim s in
  match String.index_opt s '(' with
  | None -> fail "expected '(' in %s" s
  | Some i ->
    if not (String.length s > 0 && s.[String.length s - 1] = ')') then
      fail "expected ')' at the end of %s" s;
    let name = String.trim (String.sub s 0 i) in
    let inside = String.sub s (i + 1) (String.length s - i - 2) in
    if String.equal name "" then fail "empty relation name in %s" s;
    String.iter
      (fun c -> if not (is_ident_char c) then fail "bad relation name %s" name)
      name;
    let args =
      if String.trim inside = "" then []
      else
        String.split_on_char ',' inside
        |> List.map (fun a ->
               let a = String.trim a in
               if a = "" then fail "empty argument in %s" s;
               if a.[0] = '"' then check_quoted_arg a s
               else
                 String.iter
                   (fun c ->
                     if not (is_ident_char c) then
                       fail "bad argument %S in %s" a s)
                   a;
               a)
    in
    (name, args)

(* "rel.attr" *)
let parse_qualified s =
  match String.split_on_char '.' (String.trim s) with
  | [ rel; attr ] when rel <> "" && attr <> "" -> (rel, attr)
  | _ -> fail "expected rel.attr, got %s" s

let term_of_string a =
  if a = "" then fail "empty term"
  else
    match a.[0] with
    | 'A' .. 'Z' | '_' -> Term.Var a
    | 'a' .. 'z' | '0' .. '9' | '-' -> Term.Cst a
    | '"' -> Term.Cst (unquote a)
    | c -> fail "bad term start %c" c

let parse_atoms s =
  (* split a conjunction "a(X), b(Y, Z)" on commas at paren depth 0 *)
  let parts = ref [] in
  let buf = Buffer.create 32 in
  let depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' ->
        incr depth;
        Buffer.add_char buf c
      | ')' ->
        decr depth;
        Buffer.add_char buf c
      | ',' when !depth = 0 ->
        parts := Buffer.contents buf :: !parts;
        Buffer.clear buf
      | _ -> Buffer.add_char buf c)
    s;
  parts := Buffer.contents buf :: !parts;
  List.rev !parts
  |> List.map (fun part ->
         let name, args = parse_application part in
         Atom.make name (List.map term_of_string args))

let parse_tgd_exn s =
  let label, rest =
    match String.index_opt s ':' with
    | Some i ->
      (String.trim (String.sub s 0 i),
       String.sub s (i + 1) (String.length s - i - 1))
    | None -> ("tgd", s)
  in
  (* split on "->" at paren depth 0 *)
  let arrow = ref None in
  let depth = ref 0 in
  String.iteri
    (fun i c ->
      match c with
      | '(' -> incr depth
      | ')' -> decr depth
      | '-'
        when !depth = 0 && !arrow = None
             && i + 1 < String.length rest
             && rest.[i + 1] = '>' ->
        arrow := Some i
      | _ -> ())
    rest;
  match !arrow with
  | None -> fail "tgd needs '->'"
  | Some i ->
    let body = String.sub rest 0 i in
    let head = String.sub rest (i + 2) (String.length rest - i - 2) in
    Tgd.make ~label ~body:(parse_atoms body) ~head:(parse_atoms head) ()

let parse_tgd s = match parse_tgd_exn s with t -> Ok t | exception Fail m -> Error m

let strip_prefix prefix s =
  let lp = String.length prefix in
  if String.length s >= lp && String.equal (String.sub s 0 lp) prefix then
    Some (String.trim (String.sub s lp (String.length s - lp)))
  else None

let parse_fkey rest =
  match Str_split.split_on_substring "->" rest with
  | [ from_; to_ ] ->
    Candgen.Fkey.make ~from:(parse_qualified from_) ~to_:(parse_qualified to_)
  | _ -> fail "fkey needs exactly one '->'"

let parse_corr rest =
  match Str_split.split_on_substring "~>" rest with
  | [ src; tgt ] ->
    Candgen.Correspondence.make ~src:(parse_qualified src)
      ~tgt:(parse_qualified tgt)
  | _ -> fail "correspondence needs exactly one '~>'"

let add_tuple which rest (doc : Document.t) =
  let rel, args = parse_application rest in
  let schema, side =
    match which with
    | `Source -> (doc.Document.source, "source")
    | `Target -> (doc.Document.target, "target")
  in
  (match Schema.find_opt schema rel with
  | None -> fail "tuple of unknown %s relation %s" side rel
  | Some r ->
    if Relation.arity r <> List.length args then
      fail "arity mismatch for %s (%d expected, %d given)" rel
        (Relation.arity r) (List.length args));
  let tu = Tuple.of_consts rel (List.map unquote args) in
  match which with
  | `Source -> { doc with Document.instance_i = Instance.add tu doc.Document.instance_i }
  | `Target -> { doc with Document.instance_j = Instance.add tu doc.Document.instance_j }

let parse_line doc line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then doc
  else
    let try_directive (prefix, handle) acc =
      match acc with
      | Some _ -> acc
      | None -> Option.map handle (strip_prefix prefix line)
    in
    let directives =
      [
        ( "source relation",
          fun rest ->
            let name, attrs = parse_application rest in
            { doc with
              Document.source = Schema.add (Relation.make name attrs) doc.Document.source
            } );
        ( "target relation",
          fun rest ->
            let name, attrs = parse_application rest in
            { doc with
              Document.target = Schema.add (Relation.make name attrs) doc.Document.target
            } );
        ( "source fkey",
          fun rest ->
            { doc with Document.src_fkeys = doc.Document.src_fkeys @ [ parse_fkey rest ] } );
        ( "target fkey",
          fun rest ->
            { doc with Document.tgt_fkeys = doc.Document.tgt_fkeys @ [ parse_fkey rest ] } );
        ( "correspondence",
          fun rest ->
            { doc with
              Document.correspondences = doc.Document.correspondences @ [ parse_corr rest ]
            } );
        ("tgd", fun rest -> { doc with Document.tgds = doc.Document.tgds @ [ parse_tgd_exn rest ] });
        ("source tuple", fun rest -> add_tuple `Source rest doc);
        ("target tuple", fun rest -> add_tuple `Target rest doc);
      ]
    in
    match List.fold_right try_directive directives None with
    | Some doc -> doc
    | None -> fail "unknown directive: %s" line

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec loop doc n = function
    | [] -> Ok doc
    | line :: rest -> (
      match parse_line doc line with
      | doc -> loop doc (n + 1) rest
      | exception Fail message -> Error { line = n; message }
      | exception Invalid_argument message -> Error { line = n; message })
  in
  loop Document.empty 1 lines

let parse_file path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse text
