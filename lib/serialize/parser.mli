(** Parser for the textual scenario format of {!Document}. *)

type error = {
  line : int;  (** 1-based line number *)
  message : string;
}

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Document.t, error) result
(** Parses a whole document. Unknown directives, malformed atoms, tuples of
    unknown relations and arity mismatches are reported with their line
    number. *)

val parse_file : string -> (Document.t, error) result
(** Raises [Sys_error] if the file cannot be read. *)

val parse_tgd : string -> (Logic.Tgd.t, string) result
(** Parses a single tgd body, e.g.
    ["theta1: proj(P, E, O) -> task(P, E, T)"] (the [tgd] keyword is not
    part of the input). A bare argument starting with an uppercase letter
    or ['_'] is a variable, one starting with a lowercase letter, digit or
    ['-'] is a constant; a double-quoted argument is a constant whatever
    its spelling, matching what {!Logic.Term.pp} emits for constants the
    bare grammar cannot express. Exposed for the CLI. *)
