(** The machine-readable perf trajectory ([BENCH_<n>.json]).

    [bench/main.exe --json PATH] serialises its measurements — microkernel
    timings, sequential-vs-pool comparisons, the cache cold/warm build
    section and the telemetry overhead probe — into one JSON document per
    run. The committed [BENCH_8.json] is the baseline; CI regenerates a
    fresh report and {!gate}s it against the baseline with a
    multiplicative tolerance band, so the ROADMAP's raw-speed claims are
    tracked numbers instead of prose.

    Timestamps: every section records [at_ms], milliseconds on the
    monotonic clock since the process started measuring. Emission order is
    kernels, then parallel comparisons, then cache, then telemetry, and
    {!validate} checks the concatenated [at_ms] sequence is nondecreasing
    — a cheap structural proof that the file came from one run, in order,
    not from splicing. *)

type kernel = {
  k_name : string;
  ns_per_run : float;  (** bechamel OLS estimate *)
  k_at_ms : float;
}

type ratio = {
  r_name : string;
  value : float;  (** bigger is better; must be finite and positive *)
}

type pool_compare = {
  p_name : string;
  seq_ms : float;
  par_ms : float;
  speedup : float;
  identical : bool;  (** pooled result bit-identical to sequential *)
  p_at_ms : float;
}

type cache_section = {
  uncached_ms : float;
  cold_ms : float;
  warm_ms : float;
  warm_speedup : float;  (** uncached over warm *)
  hits : int;
  misses : int;
  evictions : int;
  hit_rate : float;
  bit_identical : bool;  (** cached problem digest equals uncached *)
  c_at_ms : float;
}

type telemetry_section = {
  disabled_ms : float;
  enabled_ms : float;
  overhead_pct : float;
  within_budget : bool;  (** informational; never gated (too noisy) *)
  t_at_ms : float;
}

type server_section = {
  requests : int;  (** completed requests measured *)
  concurrency : int;  (** client connections driving the daemon *)
  p50_ms : float;  (** median request latency *)
  p99_ms : float;
  mean_ms : float;
  throughput_rps : float;  (** completed requests per wall-clock second *)
  shed : int;  (** typed [overloaded] responses (0 outside shed tests) *)
  coalesced : int;
      (** requests answered without a solver invocation — served by the
          warm cache's single-flight selection tier *)
  s_identical : bool;
      (** every duplicate-content request in the campaign received a
          byte-identical response body; gated like the other identity
          booleans *)
  s_at_ms : float;
}
(** The daemon's latency/throughput section, emitted by
    [bin/serve_replay --json] (schema v2). The gated ratio floors —
    [server.throughput-rps], [server.p50-rps], [server.p99-rps]
    (inverse latencies, bigger is better) — are derived into {!t.ratios}
    so {!gate} covers the daemon with the same machinery as the kernels. *)

type t = {
  schema_version : int;  (** 1 (bench-only) or 2 (optional sections) *)
  bench : int;  (** the trajectory index; 8 for [BENCH_8.json] *)
  jobs : int;  (** pool size used for the parallel/serving section *)
  kernels : kernel list;
      (** may be empty in a v2 server report — {!validate} then requires
          a {!server_section} instead *)
  ratios : ratio list;
      (** derived bigger-is-better numbers (kernel speedups, pool
          speedups, cache warm speedup, server throughput/inverse
          latencies) — the values {!gate} compares *)
  pool : pool_compare list;
  cache : cache_section option;  (** required by schema v1 *)
  telemetry : telemetry_section option;  (** required by schema v1 *)
  server : server_section option;  (** v2 only *)
}

val to_json : t -> Util.Json.t

val of_json : Util.Json.t -> (t, string) result

val save : string -> t -> unit
(** Pretty-printed, trailing newline. Raises [Sys_error] on an unwritable
    path. *)

val load : string -> (t, string) result
(** Read, parse and decode; errors name the path. *)

val validate : t -> string list
(** Schema-level checks, [[]] when clean: a known [schema_version] (v1
    additionally requires the cache and telemetry sections and forbids
    the server one), nonempty ratios, nonempty kernels unless a server
    section carries the report, finite nonnegative timings, finite
    positive ratio values, hit rate within [0, 1], [p50 <= p99], and the
    concatenated [at_ms] sequence (kernels, pool, cache, telemetry,
    server) nondecreasing. *)

val gate : ?band:float -> baseline:t -> fresh:t -> unit -> string list
(** Regression check of [fresh] against [baseline]; [[]] when clean.
    [band] (default 3.0, must be [>= 1]) is the multiplicative tolerance
    absorbing machine-to-machine variance: every baseline ratio must
    reappear in [fresh] with [value >= baseline / band], every baseline
    kernel with [ns_per_run <= baseline * band], every section present in
    the baseline must be present in [fresh], and the fresh boolean
    identities ([identical], [bit_identical], [s_identical]) must hold.
    One ratio carries a band-independent hard floor: a fresh
    [core.km_shrink] below 1.0 is always a violation (coring may never
    grow [K_M]). The telemetry budget verdict is deliberately not gated.
    Both reports are {!validate}d first. *)
