type kernel = {
  k_name : string;
  ns_per_run : float;
  k_at_ms : float;
}

type ratio = {
  r_name : string;
  value : float;
}

type pool_compare = {
  p_name : string;
  seq_ms : float;
  par_ms : float;
  speedup : float;
  identical : bool;
  p_at_ms : float;
}

type cache_section = {
  uncached_ms : float;
  cold_ms : float;
  warm_ms : float;
  warm_speedup : float;
  hits : int;
  misses : int;
  evictions : int;
  hit_rate : float;
  bit_identical : bool;
  c_at_ms : float;
}

type telemetry_section = {
  disabled_ms : float;
  enabled_ms : float;
  overhead_pct : float;
  within_budget : bool;
  t_at_ms : float;
}

type server_section = {
  requests : int;
  concurrency : int;
  p50_ms : float;
  p99_ms : float;
  mean_ms : float;
  throughput_rps : float;
  shed : int;
  coalesced : int;
  s_identical : bool;
  s_at_ms : float;
}

type t = {
  schema_version : int;
  bench : int;
  jobs : int;
  kernels : kernel list;
  ratios : ratio list;
  pool : pool_compare list;
  cache : cache_section option;
  telemetry : telemetry_section option;
  server : server_section option;
}

(* --- JSON encoding ------------------------------------------------------- *)

open Util.Json

let to_json r =
  Obj
    ([
      ("schema_version", Num (float_of_int r.schema_version));
      ("bench", Num (float_of_int r.bench));
      ("jobs", Num (float_of_int r.jobs));
      ( "kernels",
        List
          (List.map
             (fun k ->
               Obj
                 [
                   ("name", Str k.k_name);
                   ("ns_per_run", Num k.ns_per_run);
                   ("at_ms", Num k.k_at_ms);
                 ])
             r.kernels) );
      ( "ratios",
        List
          (List.map
             (fun x -> Obj [ ("name", Str x.r_name); ("value", Num x.value) ])
             r.ratios) );
      ( "pool",
        List
          (List.map
             (fun p ->
               Obj
                 [
                   ("name", Str p.p_name);
                   ("seq_ms", Num p.seq_ms);
                   ("par_ms", Num p.par_ms);
                   ("speedup", Num p.speedup);
                   ("identical", Bool p.identical);
                   ("at_ms", Num p.p_at_ms);
                 ])
             r.pool) );
    ]
    @ (match r.cache with
      | None -> []
      | Some c ->
        [
          ( "cache",
            Obj
              [
                ("uncached_ms", Num c.uncached_ms);
                ("cold_ms", Num c.cold_ms);
                ("warm_ms", Num c.warm_ms);
                ("warm_speedup", Num c.warm_speedup);
                ("hits", Num (float_of_int c.hits));
                ("misses", Num (float_of_int c.misses));
                ("evictions", Num (float_of_int c.evictions));
                ("hit_rate", Num c.hit_rate);
                ("bit_identical", Bool c.bit_identical);
                ("at_ms", Num c.c_at_ms);
              ] );
        ])
    @ (match r.telemetry with
      | None -> []
      | Some t ->
        [
          ( "telemetry",
            Obj
              [
                ("disabled_ms", Num t.disabled_ms);
                ("enabled_ms", Num t.enabled_ms);
                ("overhead_pct", Num t.overhead_pct);
                ("within_budget", Bool t.within_budget);
                ("at_ms", Num t.t_at_ms);
              ] );
        ])
    @
    (match r.server with
    | None -> []
    | Some s ->
      [
        ( "server",
          Obj
            [
              ("requests", Num (float_of_int s.requests));
              ("concurrency", Num (float_of_int s.concurrency));
              ("p50_ms", Num s.p50_ms);
              ("p99_ms", Num s.p99_ms);
              ("mean_ms", Num s.mean_ms);
              ("throughput_rps", Num s.throughput_rps);
              ("shed", Num (float_of_int s.shed));
              ("coalesced", Num (float_of_int s.coalesced));
              ("identical", Bool s.s_identical);
              ("at_ms", Num s.s_at_ms);
            ] );
      ]))

(* --- JSON decoding ------------------------------------------------------- *)

exception Decode of string

let get what conv key j =
  match Option.bind (member key j) conv with
  | Some v -> v
  | None -> raise (Decode (Printf.sprintf "%s: missing or bad field '%s'" what key))

let get_list what key j =
  match Option.bind (member key j) to_list with
  | Some l -> l
  | None -> raise (Decode (Printf.sprintf "%s: missing or bad field '%s'" what key))

let of_json j =
  match
    let kernel j =
      {
        k_name = get "kernel" to_str "name" j;
        ns_per_run = get "kernel" to_float "ns_per_run" j;
        k_at_ms = get "kernel" to_float "at_ms" j;
      }
    in
    let ratio j =
      {
        r_name = get "ratio" to_str "name" j;
        value = get "ratio" to_float "value" j;
      }
    in
    let pool_compare j =
      {
        p_name = get "pool" to_str "name" j;
        seq_ms = get "pool" to_float "seq_ms" j;
        par_ms = get "pool" to_float "par_ms" j;
        speedup = get "pool" to_float "speedup" j;
        identical = get "pool" to_bool "identical" j;
        p_at_ms = get "pool" to_float "at_ms" j;
      }
    in
    let cache_section j =
      {
        uncached_ms = get "cache" to_float "uncached_ms" j;
        cold_ms = get "cache" to_float "cold_ms" j;
        warm_ms = get "cache" to_float "warm_ms" j;
        warm_speedup = get "cache" to_float "warm_speedup" j;
        hits = get "cache" to_int "hits" j;
        misses = get "cache" to_int "misses" j;
        evictions = get "cache" to_int "evictions" j;
        hit_rate = get "cache" to_float "hit_rate" j;
        bit_identical = get "cache" to_bool "bit_identical" j;
        c_at_ms = get "cache" to_float "at_ms" j;
      }
    in
    let telemetry_section j =
      {
        disabled_ms = get "telemetry" to_float "disabled_ms" j;
        enabled_ms = get "telemetry" to_float "enabled_ms" j;
        overhead_pct = get "telemetry" to_float "overhead_pct" j;
        within_budget = get "telemetry" to_bool "within_budget" j;
        t_at_ms = get "telemetry" to_float "at_ms" j;
      }
    in
    let server_section j =
      {
        requests = get "server" to_int "requests" j;
        concurrency = get "server" to_int "concurrency" j;
        p50_ms = get "server" to_float "p50_ms" j;
        p99_ms = get "server" to_float "p99_ms" j;
        mean_ms = get "server" to_float "mean_ms" j;
        throughput_rps = get "server" to_float "throughput_rps" j;
        shed = get "server" to_int "shed" j;
        coalesced = get "server" to_int "coalesced" j;
        s_identical = get "server" to_bool "identical" j;
        s_at_ms = get "server" to_float "at_ms" j;
      }
    in
    (* sections are optional at the decoding layer; [validate] enforces
       what each schema version requires *)
    {
      schema_version = get "report" to_int "schema_version" j;
      bench = get "report" to_int "bench" j;
      jobs = get "report" to_int "jobs" j;
      kernels = List.map kernel (get_list "report" "kernels" j);
      ratios = List.map ratio (get_list "report" "ratios" j);
      pool = List.map pool_compare (get_list "report" "pool" j);
      cache = Option.map cache_section (member "cache" j);
      telemetry = Option.map telemetry_section (member "telemetry" j);
      server = Option.map server_section (member "server" j);
    }
  with
  | r -> Ok r
  | exception Decode msg -> Error msg

let save path r =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (to_string_pretty (to_json r));
      Out_channel.output_char oc '\n')

let load path =
  match Util.Json.load path with
  | Error msg -> Error msg
  | Ok j -> (
    match of_json j with
    | Ok r -> Ok r
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

(* --- validation ---------------------------------------------------------- *)

let validate r =
  let issues = ref [] in
  let bad fmt = Printf.ksprintf (fun m -> issues := m :: !issues) fmt in
  let finite_nonneg what v =
    if not (Float.is_finite v && v >= 0.) then
      bad "%s: expected a finite nonnegative number, got %g" what v
  in
  (match r.schema_version with
  | 1 ->
    (* v1 predates optional sections: cache and telemetry are mandatory
       and the server section does not exist yet *)
    if r.cache = None then bad "schema v1: missing cache section";
    if r.telemetry = None then bad "schema v1: missing telemetry section";
    if r.server <> None then bad "schema v1: unexpected server section"
  | 2 -> ()
  | v -> bad "schema_version: expected 1 or 2, got %d" v);
  if r.bench < 1 then bad "bench: expected a positive index, got %d" r.bench;
  if r.jobs < 1 then bad "jobs: expected >= 1, got %d" r.jobs;
  if r.kernels = [] && r.server = None then
    bad "kernels: expected at least one entry (or a server section)";
  if r.ratios = [] then bad "ratios: expected at least one entry";
  List.iter
    (fun k -> finite_nonneg (Printf.sprintf "kernel %s" k.k_name) k.ns_per_run)
    r.kernels;
  List.iter
    (fun x ->
      if not (Float.is_finite x.value && x.value > 0.) then
        bad "ratio %s: expected a finite positive value, got %g" x.r_name
          x.value)
    r.ratios;
  List.iter
    (fun p ->
      finite_nonneg (Printf.sprintf "pool %s seq_ms" p.p_name) p.seq_ms;
      finite_nonneg (Printf.sprintf "pool %s par_ms" p.p_name) p.par_ms;
      if not (Float.is_finite p.speedup && p.speedup > 0.) then
        bad "pool %s: expected a finite positive speedup, got %g" p.p_name
          p.speedup)
    r.pool;
  Option.iter
    (fun c ->
      finite_nonneg "cache uncached_ms" c.uncached_ms;
      finite_nonneg "cache cold_ms" c.cold_ms;
      finite_nonneg "cache warm_ms" c.warm_ms;
      if not (Float.is_finite c.warm_speedup && c.warm_speedup > 0.) then
        bad "cache warm_speedup: expected finite positive, got %g"
          c.warm_speedup;
      if not (Float.is_finite c.hit_rate
              && c.hit_rate >= 0.
              && c.hit_rate <= 1.)
      then bad "cache hit_rate: expected within [0, 1], got %g" c.hit_rate;
      if c.hits < 0 || c.misses < 0 || c.evictions < 0 then
        bad "cache counters: expected nonnegative counts")
    r.cache;
  Option.iter
    (fun t ->
      finite_nonneg "telemetry disabled_ms" t.disabled_ms;
      finite_nonneg "telemetry enabled_ms" t.enabled_ms)
    r.telemetry;
  Option.iter
    (fun s ->
      if s.requests < 1 then
        bad "server requests: expected at least one measured request, got %d"
          s.requests;
      if s.concurrency < 1 then
        bad "server concurrency: expected >= 1, got %d" s.concurrency;
      List.iter
        (fun (what, v) ->
          if not (Float.is_finite v && v > 0.) then
            bad "server %s: expected finite positive, got %g" what v)
        [
          ("p50_ms", s.p50_ms);
          ("p99_ms", s.p99_ms);
          ("mean_ms", s.mean_ms);
          ("throughput_rps", s.throughput_rps);
        ];
      if s.p50_ms > s.p99_ms then
        bad "server latency: p50 %g ms exceeds p99 %g ms" s.p50_ms s.p99_ms;
      if s.shed < 0 || s.coalesced < 0 then
        bad "server counters: expected nonnegative counts")
    r.server;
  (* the concatenated at_ms sequence must be nondecreasing: one run, in
     emission order *)
  let stamps =
    List.map (fun k -> (Printf.sprintf "kernel %s" k.k_name, k.k_at_ms)) r.kernels
    @ List.map (fun p -> (Printf.sprintf "pool %s" p.p_name, p.p_at_ms)) r.pool
    @ (match r.cache with None -> [] | Some c -> [ ("cache", c.c_at_ms) ])
    @ (match r.telemetry with
      | None -> []
      | Some t -> [ ("telemetry", t.t_at_ms) ])
    @ match r.server with None -> [] | Some s -> [ ("server", s.s_at_ms) ]
  in
  List.iter (fun (what, v) -> finite_nonneg (what ^ " at_ms") v) stamps;
  let rec monotone = function
    | (wa, a) :: ((wb, b) :: _ as rest) ->
      if b < a then bad "timestamps not monotone: %s (%g ms) after %s (%g ms)"
          wb b wa a;
      monotone rest
    | [ _ ] | [] -> ()
  in
  monotone stamps;
  List.rev !issues

(* --- the regression gate ------------------------------------------------- *)

let gate ?(band = 3.0) ~baseline ~fresh () =
  if band < 1. then invalid_arg "Report.gate: band must be >= 1";
  let issues = ref [] in
  let bad fmt = Printf.ksprintf (fun m -> issues := m :: !issues) fmt in
  List.iter (fun m -> bad "baseline: %s" m) (validate baseline);
  List.iter (fun m -> bad "fresh: %s" m) (validate fresh);
  if !issues = [] then begin
    if fresh.schema_version <> baseline.schema_version then
      bad "schema_version changed: %d -> %d" baseline.schema_version
        fresh.schema_version;
    List.iter
      (fun (b : ratio) ->
        match
          List.find_opt (fun (f : ratio) -> f.r_name = b.r_name) fresh.ratios
        with
        | None -> bad "ratio %s: missing from the fresh report" b.r_name
        | Some f ->
          let floor = b.value /. band in
          if f.value < floor then
            bad "ratio %s regressed: %.3f < %.3f (baseline %.3f / band %.1f)"
              b.r_name f.value floor b.value band)
      baseline.ratios;
    (* a hard floor, not a band: coring may never grow K_M, so the shrink
       ratio below 1 is a correctness bug regardless of the baseline *)
    List.iter
      (fun (f : ratio) ->
        if f.r_name = "core.km_shrink" && f.value < 1.0 then
          bad "ratio core.km_shrink fell below 1: %.3f (coring grew K_M)"
            f.value)
      fresh.ratios;
    (* likewise a hard floor: warm-started sweeps must stay >= 5x over the
       cold grid — the whole point of chaining chase hits and ADMM state
       through a sweep — independent of whatever the baseline measured *)
    List.iter
      (fun (f : ratio) ->
        if f.r_name = "sweep.warm_speedup" && f.value < 5.0 then
          bad "ratio sweep.warm_speedup fell below 5: %.3f" f.value)
      fresh.ratios;
    List.iter
      (fun (b : kernel) ->
        match
          List.find_opt (fun (f : kernel) -> f.k_name = b.k_name) fresh.kernels
        with
        | None -> bad "kernel %s: missing from the fresh report" b.k_name
        | Some f ->
          let ceiling = b.ns_per_run *. band in
          if f.ns_per_run > ceiling then
            bad
              "kernel %s regressed: %.0f ns > %.0f ns (baseline %.0f ns x \
               band %.1f)"
              b.k_name f.ns_per_run ceiling b.ns_per_run band)
      baseline.kernels;
    List.iter
      (fun (f : pool_compare) ->
        if not f.identical then
          bad "pool %s: pooled result no longer identical to sequential"
            f.p_name)
      fresh.pool;
    (match baseline.cache, fresh.cache with
    | Some _, None -> bad "cache: section missing from the fresh report"
    | _ -> ());
    (match baseline.server, fresh.server with
    | Some _, None -> bad "server: section missing from the fresh report"
    | _ -> ());
    Option.iter
      (fun c ->
        if not c.bit_identical then
          bad "cache: cached problem no longer bit-identical to uncached")
      fresh.cache;
    Option.iter
      (fun s ->
        if not s.s_identical then
          bad
            "server: duplicate requests no longer received identical \
             response bodies")
      fresh.server
  end;
  List.rev !issues
