(* The benchmark harness.

   Part 1 regenerates every table and figure of the reproduction (E1..E14) by
   running the experiment registry — these are the rows/series the paper
   reports (skippable with --skip-experiments). Part 2 runs one Bechamel
   micro-benchmark per experiment, measuring the computational kernel that
   dominates it, plus the substrate kernels (conjunctive queries, chase,
   grounding, ADMM), followed by the sequential-vs-pool, cache cold/warm and
   telemetry-overhead sections.

   With --json PATH the harness additionally serialises every measurement as
   a Perf.Report (the BENCH_<n>.json trajectory format) so CI can gate fresh
   numbers against the committed baseline via bench_gate. *)

open Bechamel
open Toolkit

(* timestamps for the JSON report: ms on the monotonic clock since startup,
   stamped as each section completes (Report.validate checks monotonicity) *)
let t_start = Util.Timer.now_ns ()

let at_ms () = Int64.to_float (Int64.sub (Util.Timer.now_ns ()) t_start) /. 1e6

(* --- fixtures shared by the micro-benchmarks --------------------------- *)

let scenario ~seed ~pi_corresp ~pi_errors ~pi_unexplained =
  Ibench.Generator.generate
    (Experiments.Common.noise_config ~seed ~pi_corresp ~pi_errors
       ~pi_unexplained ())

let problem_of (s : Ibench.Scenario.t) =
  Core.Problem.make ~source:s.Ibench.Scenario.instance_i
    ~j:s.Ibench.Scenario.instance_j s.Ibench.Scenario.candidates

let e1_problem =
  lazy
    (let s = scenario ~seed:1 ~pi_corresp:0 ~pi_errors:0 ~pi_unexplained:0 in
     problem_of s)

let noisy_problem =
  lazy
    (let s = scenario ~seed:2 ~pi_corresp:25 ~pi_errors:25 ~pi_unexplained:10 in
     problem_of s)

let small_problem =
  lazy
    (let config =
       Experiments.Common.noise_config
         ~primitives:Ibench.Primitive.[ (CP, 1); (ME, 1); (VP, 1) ]
         ~seed:3 ~pi_corresp:50 ~pi_errors:25 ~pi_unexplained:25 ()
     in
     problem_of (Ibench.Generator.generate config))

let big_problem =
  lazy
    (let config =
       Experiments.Common.noise_config
         ~primitives:(List.map (fun k -> (k, 2)) Ibench.Primitive.all)
         ~seed:4 ~pi_corresp:25 ~pi_errors:10 ~pi_unexplained:10 ()
     in
     let p = problem_of (Ibench.Generator.generate config) in
     (Core.Preprocess.run p).Core.Preprocess.problem)

let big_model = lazy (Core.Cmd.build_model (Lazy.force big_problem))

(* Single-flip kernels on the big problem: the naive one re-evaluates the
   whole objective around a flip, the incremental one probes the same flip
   through the shared evaluation state. Both cycle over the candidates so
   the distribution of touched cover lists is identical. *)
let flip_state =
  lazy
    (let p = Lazy.force big_problem in
     let sel = Core.Greedy.solve p in
     (p, sel, Core.Incremental.create p sel))

let naive_flip_counter = ref 0

let incr_flip_counter = ref 0

(* A frozen copy of the pre-rewrite local search, kept as the end-to-end
   naive baseline for the solver wall-time comparison. *)
let naive_improve p start =
  let open Util in
  let sel = Array.copy start in
  let current = ref (Core.Objective.value p sel) in
  let improved = ref true in
  while !improved do
    improved := false;
    let best_flip = ref None in
    for c = 0 to Array.length sel - 1 do
      sel.(c) <- not sel.(c);
      let v = Core.Objective.value p sel in
      sel.(c) <- not sel.(c);
      if Frac.(v < !current) then
        match !best_flip with
        | Some (_, bv) when Frac.(bv <= v) -> ()
        | Some _ | None -> best_flip := Some (c, v)
    done;
    match !best_flip with
    | None -> ()
    | Some (c, v) ->
      sel.(c) <- not sel.(c);
      current := v;
      improved := true
  done;
  sel

(* The E6-scale scenario again, this time with a pre-warmed evaluation
   cache: the warm kernel measures problem construction when every
   candidate's chase and coverage stats come out of the cache. *)
let cache_fixture =
  lazy
    (let config =
       Experiments.Common.noise_config
         ~primitives:(List.map (fun k -> (k, 2)) Ibench.Primitive.all)
         ~seed:4 ~pi_corresp:25 ~pi_errors:10 ~pi_unexplained:10 ()
     in
     let s = Ibench.Generator.generate config in
     let cache = Cache.create () in
     ignore
       (Core.Problem.make ~cache ~source:s.Ibench.Scenario.instance_i
          ~j:s.Ibench.Scenario.instance_j s.Ibench.Scenario.candidates);
     (s, cache))

let me_scenario =
  lazy
    (Ibench.Generator.generate
       (Experiments.Common.noise_config
          ~primitives:[ (Ibench.Primitive.ME, 2) ]
          ~seed:5 ~pi_corresp:25 ~pi_errors:25 ~pi_unexplained:25 ()))

let setcover_instance =
  {
    Core.Setcover.universe = [ "a"; "b"; "c"; "d"; "e" ];
    sets =
      [ ("S1", [ "a"; "b" ]); ("S2", [ "b"; "c"; "d" ]); ("S3", [ "d"; "e" ]);
        ("S4", [ "a"; "e" ]) ];
    budget = 2;
  }

let full_selection p = Array.make (Core.Problem.num_candidates p) true

(* spawn-once 4-worker pool shared by the parallel solver kernels *)
let pool4 = lazy (Parallel.Pool.create ~jobs:4 ())

let full_problem_fixture =
  lazy
    (let config =
       Experiments.Common.noise_config
         ~primitives:Ibench.Primitive.[ (CP, 4); (DL, 4) ]
         ~seed:6 ~pi_corresp:25 ~pi_errors:10 ~pi_unexplained:10 ()
     in
     problem_of (Ibench.Generator.generate config))

(* a 2-atom join over the HR-style source, evaluated plain vs indexed *)
let cq_query =
  let v x = Logic.Term.Var x in
  [
    Logic.Atom.make "me1_s1" [ v "A0"; v "A1"; v "A2"; v "A3"; v "F" ];
    Logic.Atom.make "me1_s2" [ v "F"; v "B0"; v "B1"; v "B2"; v "B3" ];
  ]

let cq_fixture =
  lazy
    (let s = Lazy.force me_scenario in
     (s.Ibench.Scenario.instance_i, cq_query))

let cq_indexed_fixture =
  lazy
    (let inst, q = Lazy.force cq_fixture in
     (Logic.Cq.Index.build inst, q))

(* The same ME source dictionary-encoded: the columnar CQ/chase kernels run
   the exact workload of their row-major counterparts (bit-identical
   results), so the relational ratios below compare representation cost
   only. *)
let columnar_fixture =
  lazy
    (let s = Lazy.force me_scenario in
     (s, Relational.Columnar.of_instance s.Ibench.Scenario.instance_i))

let cq_columnar_fixture =
  lazy
    (let inst, q = Lazy.force cq_fixture in
     (Relational.Columnar.of_instance inst, q))

let egd_fixture =
  lazy
    (let entry = Option.get (Scenarios.Zoo.find "hr") in
     let doc = entry.Scenarios.Zoo.doc in
     let exchanged =
       Chase.universal_solution doc.Serialize.Document.instance_i
         entry.Scenarios.Zoo.ground_truth
     in
     let unit_schema =
       Relational.Schema.of_relations
         [ Relational.Relation.make "unit" [ "uid"; "uname" ] ]
     in
     (exchanged, Chase.Egd.key ~rel:"unit" ~key:[ "uname" ] unit_schema))

(* --- the test suite ----------------------------------------------------- *)

let stage = Staged.stage

let tests =
  Test.make_grouped ~name:"repro"
    [
      (* per-experiment kernels *)
      Test.make ~name:"e1-objective-eval"
        (stage (fun () ->
             let p = Lazy.force e1_problem in
             Core.Objective.value p (full_selection p)));
      Test.make ~name:"e2-scenario-generation"
        (stage (fun () -> Ibench.Generator.generate Ibench.Config.default));
      Test.make ~name:"e3-cmd-solve-noisy"
        (stage (fun () -> Core.Cmd.solve (Lazy.force noisy_problem)));
      Test.make ~name:"e4-greedy-solve-noisy"
        (stage (fun () -> Core.Greedy.solve (Lazy.force noisy_problem)));
      Test.make ~name:"e5-candidate-generation"
        (stage (fun () ->
             let s = Lazy.force me_scenario in
             Candgen.Generate.generate ~source:s.Ibench.Scenario.source
               ~target:s.Ibench.Scenario.target
               ~src_fkeys:s.Ibench.Scenario.src_fkeys
               ~tgt_fkeys:s.Ibench.Scenario.tgt_fkeys
               ~corrs:s.Ibench.Scenario.correspondences));
      Test.make ~name:"e6-admm-big-model"
        (stage (fun () -> Psl.Admm.solve (Lazy.force big_model)));
      Test.make ~name:"e7-cover-analysis-me"
        (stage (fun () ->
             let s = Lazy.force me_scenario in
             Cover.analyze ~source:s.Ibench.Scenario.instance_i
               ~j:s.Ibench.Scenario.instance_j s.Ibench.Scenario.candidates));
      Test.make ~name:"e8-exact-branch-and-bound"
        (stage (fun () -> Core.Exact.solve (Lazy.force small_problem)));
      Test.make ~name:"e9-setcover-decide"
        (stage (fun () -> Core.Setcover.decide setcover_instance));
      Test.make ~name:"e10-cmd-squared"
        (stage (fun () ->
             Core.Cmd.solve
               ~options:{ Core.Cmd.default_options with Core.Cmd.squared = true }
               (Lazy.force noisy_problem)));
      Test.make ~name:"e13-full-fastpath-greedy"
        (stage (fun () ->
             match Core.Full.of_problem (Lazy.force full_problem_fixture) with
             | Ok full -> ignore (Core.Full.greedy full)
             | Error msg -> failwith msg));
      Test.make ~name:"e14-weight-scoring"
        (stage (fun () ->
             let p = Lazy.force small_problem in
             let gold = Array.make (Core.Problem.num_candidates p) false in
             Core.Tune.score p ~gold
               { Core.Problem.w_unexplained = 2; w_errors = 1; w_size = 1 }));
      (* incremental-evaluation kernels (naive vs delta engine) *)
      Test.make ~name:"flip-naive-big"
        (stage (fun () ->
             let p, sel, _ = Lazy.force flip_state in
             let m = Core.Problem.num_candidates p in
             let c = !naive_flip_counter mod m in
             incr naive_flip_counter;
             sel.(c) <- not sel.(c);
             let v = Core.Objective.value p sel in
             sel.(c) <- not sel.(c);
             v));
      Test.make ~name:"flip-incremental-big"
        (stage (fun () ->
             let p, _, st = Lazy.force flip_state in
             let m = Core.Problem.num_candidates p in
             let c = !incr_flip_counter mod m in
             incr incr_flip_counter;
             Core.Incremental.flip_delta st c));
      Test.make ~name:"solver-local-search-naive-big"
        (stage (fun () ->
             let p = Lazy.force big_problem in
             naive_improve p (full_selection p)));
      Test.make ~name:"solver-local-search-incr-big"
        (stage (fun () ->
             let p = Lazy.force big_problem in
             Core.Local_search.improve p (full_selection p)));
      Test.make ~name:"solver-greedy-big"
        (stage (fun () -> Core.Greedy.solve (Lazy.force big_problem)));
      Test.make ~name:"solver-anneal-big"
        (stage (fun () -> Core.Anneal.solve (Lazy.force big_problem)));
      (* parallel-execution kernels: the same multi-restart searches,
         sequential vs fanned out over the reusable 4-worker pool *)
      Test.make ~name:"solver-local-restarts8-seq-big"
        (stage (fun () ->
             Core.Local_search.solve ~restarts:8 (Lazy.force big_problem)));
      Test.make ~name:"solver-local-restarts8-par4-big"
        (stage (fun () ->
             Core.Local_search.solve ~pool:(Lazy.force pool4) ~restarts:8
               (Lazy.force big_problem)));
      Test.make ~name:"solver-anneal-chains4-seq-big"
        (stage (fun () ->
             Core.Anneal.solve_multi ~chains:4 (Lazy.force big_problem)));
      Test.make ~name:"solver-anneal-chains4-par4-big"
        (stage (fun () ->
             Core.Anneal.solve_multi ~pool:(Lazy.force pool4) ~chains:4
               (Lazy.force big_problem)));
      (* evaluation-cache kernels: the same E6-scale problem construction,
         chased from scratch vs served from a pre-warmed cache *)
      Test.make ~name:"cache-problem-build-cold"
        (stage (fun () ->
             let s, _ = Lazy.force cache_fixture in
             Core.Problem.make ~source:s.Ibench.Scenario.instance_i
               ~j:s.Ibench.Scenario.instance_j s.Ibench.Scenario.candidates));
      Test.make ~name:"cache-problem-build-warm"
        (stage (fun () ->
             let s, cache = Lazy.force cache_fixture in
             Core.Problem.make ~cache ~source:s.Ibench.Scenario.instance_i
               ~j:s.Ibench.Scenario.instance_j s.Ibench.Scenario.candidates));
      (* substrate kernels *)
      Test.make ~name:"substrate-chase"
        (stage (fun () ->
             let s = Lazy.force me_scenario in
             Chase.run s.Ibench.Scenario.instance_i s.Ibench.Scenario.ground_truth));
      Test.make ~name:"substrate-cq-plain"
        (stage (fun () ->
             let inst, q = Lazy.force cq_fixture in
             Logic.Cq.answers inst q));
      Test.make ~name:"substrate-cq-indexed"
        (stage (fun () ->
             let index, q = Lazy.force cq_indexed_fixture in
             Logic.Cq.answers_indexed index q));
      Test.make ~name:"substrate-psl-grounding"
        (stage (fun () ->
             let p = Lazy.force noisy_problem in
             Core.Cmd.build_model (Core.Preprocess.run p).Core.Preprocess.problem));
      Test.make ~name:"substrate-local-search"
        (stage (fun () ->
             let p = Lazy.force small_problem in
             Core.Local_search.improve p (full_selection p)));
      Test.make ~name:"substrate-egd-chase"
        (stage (fun () ->
             let inst, egds = Lazy.force egd_fixture in
             Chase.Egd.chase inst egds));
      Test.make ~name:"substrate-implication"
        (stage (fun () ->
             let s = Lazy.force me_scenario in
             Chase.Implication.minimize s.Ibench.Scenario.candidates));
      (* relational kernels: the dictionary-encoded column store against
         the row-major counterparts (substrate-cq-indexed, substrate-chase) *)
      Test.make ~name:"relational-columnar-build"
        (stage (fun () ->
             let s = Lazy.force me_scenario in
             Relational.Columnar.of_instance s.Ibench.Scenario.instance_i));
      Test.make ~name:"relational-cq-columnar"
        (stage (fun () ->
             let col, q = Lazy.force cq_columnar_fixture in
             Logic.Cq.Columnar.answers col q));
      Test.make ~name:"relational-chase-columnar"
        (stage (fun () ->
             let s, col = Lazy.force columnar_fixture in
             Chase.run_columnar col s.Ibench.Scenario.ground_truth));
    ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1500 ~quota:(Time.second 0.4) ~kde:None
      ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances tests in
  Analyze.all ols Instance.monotonic_clock raw

let pp_time ppf ns =
  if ns >= 1e9 then Format.fprintf ppf "%8.2f s " (ns /. 1e9)
  else if ns >= 1e6 then Format.fprintf ppf "%8.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Format.fprintf ppf "%8.2f us" (ns /. 1e3)
  else Format.fprintf ppf "%8.2f ns" ns

(* Direct wall-clock comparison of the sequential and pooled execution
   paths on identical workloads — the speedup is measured, not asserted.
   Results are bit-identical by the Parallel.Pool determinism contract
   (checked here too); the achievable ratio is bounded by the machine's
   core count, which is printed so the numbers are interpretable on
   single-core runners. *)
let parallel_speedup () =
  Format.printf "@.=====================================================@.";
  Format.printf " Parallel execution: sequential vs 4-domain pool@.";
  Format.printf "=====================================================@.";
  Format.printf "recommended_domain_count = %d (a >=2x speedup needs >=4 cores)@."
    (Domain.recommended_domain_count ());
  let entries = ref [] in
  let measure name seq par check_equal =
    ignore (seq ());
    ignore (par ());
    let s, seq_ms = Util.Timer.time_ms seq in
    let p, par_ms = Util.Timer.time_ms par in
    let identical = check_equal s p in
    Format.printf "%-35s seq %8.1f ms   par(4) %8.1f ms   speedup %5.2fx   identical %b@."
      name seq_ms par_ms (seq_ms /. par_ms) identical;
    entries :=
      {
        Perf.Report.p_name = name;
        seq_ms;
        par_ms;
        speedup = seq_ms /. par_ms;
        identical;
        p_at_ms = at_ms ();
      }
      :: !entries
  in
  Parallel.Pool.with_pool ~jobs:4 (fun pool ->
      let p = Lazy.force big_problem in
      measure "local-search-16-restarts"
        (fun () -> Core.Local_search.solve ~restarts:16 p)
        (fun () -> Core.Local_search.solve ~pool ~restarts:16 p)
        ( = );
      measure "anneal-8-chains"
        (fun () -> Core.Anneal.solve_multi ~chains:8 p)
        (fun () -> Core.Anneal.solve_multi ~pool ~chains:8 p)
        ( = ));
  let sweep jobs =
    Experiments.Common.Ctx.with_ctx ~jobs (fun ctx ->
        Experiments.Noise_sweep.run ctx ~levels:[ 0; 25 ] ~seeds:[ 1; 2; 3; 4 ]
          ~id:"bench" Experiments.Noise_sweep.Errors)
  in
  measure "noise-sweep-2x4-scenarios"
    (fun () -> sweep 1)
    (fun () -> sweep 4)
    (fun a b -> Experiments.Table.to_string a = Experiments.Table.to_string b);
  List.rev !entries

(* Warm-vs-cold evaluation cache on the E6-scale scenario: the speedup is
   measured, not asserted, and the bit-identity contract is checked via
   the problem digest. The warm build still pays for the source index and
   per-candidate re-indexing, so the ratio is bounded by the share the
   chase takes of construction — which is what the cache exists to skip. *)
let cache_speedup () =
  Format.printf "@.=====================================================@.";
  Format.printf " Evaluation cache: cold vs warm on the E6 scenario@.";
  Format.printf "=====================================================@.";
  let s, _ = Lazy.force cache_fixture in
  let build cache =
    Core.Problem.make ?cache ~source:s.Ibench.Scenario.instance_i
      ~j:s.Ibench.Scenario.instance_j s.Ibench.Scenario.candidates
  in
  let best_ms f =
    ignore (f ());
    let run () = Util.Timer.time_ms f in
    let r1 = run () and r2 = run () and r3 = run () in
    List.fold_left
      (fun (best_v, best_ms) (v, ms) ->
        if ms < best_ms then (v, ms) else (best_v, best_ms))
      r1 [ r2; r3 ]
  in
  let uncached, uncached_ms = best_ms (fun () -> build None) in
  let cache = Cache.create () in
  let cold, cold_ms = Util.Timer.time_ms (fun () -> build (Some cache)) in
  let warm, warm_ms = best_ms (fun () -> build (Some cache)) in
  let d = Core.Problem.digest uncached in
  let identical =
    d = Core.Problem.digest cold && d = Core.Problem.digest warm
  in
  Format.printf
    "problem-build (%d candidates)       uncached %8.1f ms   cold %8.1f ms   \
     warm %8.1f ms@."
    (Core.Problem.num_candidates uncached)
    uncached_ms cold_ms warm_ms;
  Format.printf "warm-cache speedup %5.2fx   bit-identical %b@."
    (uncached_ms /. warm_ms) identical;
  let stats = Cache.stats cache in
  Format.printf "cache.hits %d   cache.misses %d   cache.evictions %d@."
    stats.Cache.hits stats.Cache.misses stats.Cache.evictions;
  let lookups = stats.Cache.hits + stats.Cache.misses in
  {
    Perf.Report.uncached_ms;
    cold_ms;
    warm_ms;
    warm_speedup = uncached_ms /. warm_ms;
    hits = stats.Cache.hits;
    misses = stats.Cache.misses;
    evictions = stats.Cache.evictions;
    hit_rate =
      (if lookups = 0 then 0.
       else float_of_int stats.Cache.hits /. float_of_int lookups);
    bit_identical = identical;
    c_at_ms = at_ms ();
  }

(* Warm-started sweeps end to end: re-serving a pi_errors grid from a warm
   solver context — the serving daemon's and experiment suite's steady
   state — against solving it cold. The warm pass rebuilds every problem
   from its scenario (stats tier hits), then answers each point from the
   cache's selection tier; had the selection tier been dropped, the
   per-point warm key would still restart ADMM from the point's own fixed
   point via the context's warm store. Scenario generation is hoisted out
   of the timed region (identical work in every pass, it would only dilute
   the ratio). Warm serving is a pure accelerator — per-point selections
   must be bit-identical across all passes — and the ratio is held to a
   hard >= 5x floor by Perf.Report.gate, not just to the baseline band. *)
let sweep_speedup () =
  Format.printf "@.=====================================================@.";
  Format.printf " Warm-started sweeps: cold vs re-served pi_errors grid@.";
  Format.printf "=====================================================@.";
  let levels = [ 0; 5; 10; 15; 20; 25; 30; 40; 50 ] in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let points =
    List.concat_map
      (fun seed ->
        List.map
          (fun level ->
            ( seed,
              level,
              Ibench.Generator.generate
                (Experiments.Common.noise_config ~rows:48 ~seed ~pi_corresp:0
                   ~pi_errors:level ~pi_unexplained:0 ()) ))
          levels)
      seeds
  in
  let pass ctx =
    List.map
      (fun (seed, level, s) ->
        let p = Experiments.Common.problem_of_scenario ctx s in
        let key = Printf.sprintf "bench-sweep:piErrors:%d:%d" seed level in
        (Experiments.Common.run_solver ctx ~warm_key:key
           Experiments.Common.Cmd_solver s p)
          .Experiments.Common.selection)
      points
  in
  let uncached, uncached_ms =
    Util.Timer.time_ms (fun () ->
        Experiments.Common.Ctx.with_ctx ~jobs:1 pass)
  in
  Experiments.Common.Ctx.with_ctx ~cache:(Cache.create ()) ~jobs:1 (fun ctx ->
      let cold, cold_ms = Util.Timer.time_ms (fun () -> pass ctx) in
      let warm, warm_ms = Util.Timer.time_ms (fun () -> pass ctx) in
      let identical = uncached = cold && uncached = warm in
      let speedup = uncached_ms /. warm_ms in
      Format.printf
        "pi_errors grid (%d levels x %d seeds)   uncached %8.1f ms   cold \
         %8.1f ms   re-served %8.1f ms@."
        (List.length levels) (List.length seeds) uncached_ms cold_ms warm_ms;
      Format.printf "sweep.warm_speedup %5.2fx   bit-identical %b@." speedup
        identical;
      if not identical then
        failwith "re-served sweep diverged from the cold sweep";
      { Perf.Report.r_name = "sweep.warm_speedup"; value = speedup })

(* The telemetry layer's cost contract, measured: a disabled sink must be
   ≈ zero cost on the hot flip kernel (the budget is ~2% — one atomic load
   and branch per probe), and an enabled no-op sink should stay cheap
   enough to leave on under fuzzing. Timings use the best of three runs to
   shave scheduler noise; the verdict line is the guard CI greps for. *)
let telemetry_overhead () =
  Format.printf "@.=====================================================@.";
  Format.printf " Telemetry: observation cost on the flip kernel@.";
  Format.printf "=====================================================@.";
  let p, _, st = Lazy.force flip_state in
  let m = Core.Problem.num_candidates p in
  let iters = 2_000_000 in
  let kernel () =
    for i = 0 to iters - 1 do
      ignore (Core.Incremental.flip_delta st (i mod m))
    done
  in
  let best_ms f =
    ignore (f ());
    let run () = snd (Util.Timer.time_ms f) in
    Float.min (run ()) (Float.min (run ()) (run ()))
  in
  Telemetry.set_enabled false;
  let off = best_ms kernel in
  Telemetry.set_enabled true;
  let on = best_ms kernel in
  Telemetry.set_enabled false;
  (* the disabled fast path in isolation: one counter check per iteration *)
  let c = Telemetry.Counter.make "bench.disabled_probe" in
  let checks = 50_000_000 in
  let check_loop () =
    for _ = 1 to checks do
      Telemetry.Counter.incr c
    done
  in
  let disabled_check_ms = best_ms check_loop in
  let per_probe_ns = disabled_check_ms *. 1e6 /. float_of_int checks in
  let per_flip_ns = off *. 1e6 /. float_of_int iters in
  let disabled_pct = 100. *. per_probe_ns /. per_flip_ns in
  Format.printf
    "flip_delta x%d          disabled %8.1f ms   enabled(no-op) %8.1f ms   \
     (+%.2f%%)@."
    iters off on
    (100. *. (on -. off) /. off);
  Format.printf
    "disabled counter check      %6.2f ns/op  =  %.3f%% of one %.0f ns \
     flip probe@."
    per_probe_ns disabled_pct per_flip_ns;
  Format.printf "telemetry disabled-sink budget (< 2%% of flip kernel): %s@."
    (if disabled_pct < 2.0 then "OK" else "EXCEEDED");
  {
    Perf.Report.disabled_ms = off;
    enabled_ms = on;
    overhead_pct = 100. *. (on -. off) /. off;
    within_budget = disabled_pct < 2.0;
    t_at_ms = at_ms ();
  }

(* How much the core stage shrinks K_M on the E6-scale scenario (all iBench
   primitive families, joins included): total trigger tuples produced
   across candidates, uncored over cored. The gate holds this ratio to
   >= 1.0 unconditionally — coring must never grow K_M — and to the
   baseline floor like every other ratio. *)
let core_shrink () =
  Format.printf "@.=====================================================@.";
  Format.printf " Core universal solutions: K_M shrink on E6@.";
  Format.printf "=====================================================@.";
  let s, _ = Lazy.force cache_fixture in
  let produced core =
    Array.fold_left
      (fun n x -> n + x.Cover.produced)
      0
      (Cover.analyze ~core ~source:s.Ibench.Scenario.instance_i
         ~j:s.Ibench.Scenario.instance_j s.Ibench.Scenario.candidates)
  in
  let plain = produced false in
  let cored = produced true in
  let shrink = float_of_int plain /. float_of_int cored in
  Format.printf "K_M produced: uncored %d   cored %d   core.km_shrink %.3fx@."
    plain cored shrink;
  { Perf.Report.r_name = "core.km_shrink"; value = shrink }

(* The derived bigger-is-better numbers the CI gate tracks: kernel-pair
   speedups from the OLS estimates plus the cache and pool speedups. A pair
   whose estimates are missing is dropped (the gate reports it as a missing
   ratio rather than comparing garbage). *)
let derive_ratios rows pool cache =
  let ns key =
    match
      List.find_opt
        (fun (n, _) -> n = key || String.ends_with ~suffix:("/" ^ key) n)
        rows
    with
    | Some (_, est) when Float.is_finite est && est > 0. -> Some est
    | Some _ | None -> None
  in
  let ratio name a b =
    match (ns a, ns b) with
    | Some x, Some y -> [ { Perf.Report.r_name = name; value = x /. y } ]
    | _ -> []
  in
  ratio "flip-naive-over-incremental" "flip-naive-big" "flip-incremental-big"
  @ ratio "local-search-naive-over-incremental" "solver-local-search-naive-big"
      "solver-local-search-incr-big"
  @ ratio "cq-plain-over-indexed" "substrate-cq-plain" "substrate-cq-indexed"
  @ ratio "cache-build-cold-over-warm" "cache-problem-build-cold"
      "cache-problem-build-warm"
  @ ratio "cq-indexed-over-columnar" "substrate-cq-indexed"
      "relational-cq-columnar"
  @ ratio "chase-row-over-columnar" "substrate-chase"
      "relational-chase-columnar"
  @ [
      {
        Perf.Report.r_name = "cache-warm-speedup";
        value = cache.Perf.Report.warm_speedup;
      };
    ]
  @ List.map
      (fun (p : Perf.Report.pool_compare) ->
        { Perf.Report.r_name = "pool-speedup-" ^ p.p_name; value = p.speedup })
      pool

let usage () =
  prerr_endline "usage: main.exe [--skip-experiments] [--json PATH]";
  exit 2

let () =
  let json_path = ref None in
  let skip_experiments = ref false in
  let rec parse_args = function
    | [] -> ()
    | "--skip-experiments" :: rest ->
      skip_experiments := true;
      parse_args rest
    | [ "--json" ] -> usage ()
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse_args rest
    | arg :: _ ->
      Printf.eprintf "unknown argument '%s'\n" arg;
      usage ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if not !skip_experiments then begin
    Format.printf "=====================================================@.";
    Format.printf " Reproduction: every table and figure (E1..E14)@.";
    Format.printf "=====================================================@.@.";
    Experiments.Common.Ctx.with_ctx ~jobs:1 (fun ctx ->
        Experiments.Registry.run_all ctx Format.std_formatter)
  end;
  Format.printf "=====================================================@.";
  Format.printf " Micro-benchmarks (Bechamel, monotonic clock, OLS)@.";
  Format.printf "=====================================================@.";
  let results = benchmark () in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let estimate =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | Some [] | None -> nan
        in
        (name, estimate) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, est) -> Format.printf "%-35s %a / run@." name pp_time est)
    rows;
  let kernels_at = at_ms () in
  let pool = parallel_speedup () in
  let cache = cache_speedup () in
  let sweep = sweep_speedup () in
  let shrink = core_shrink () in
  let telemetry = telemetry_overhead () in
  match !json_path with
  | None -> ()
  | Some path ->
    let kernels =
      List.filter_map
        (fun (name, est) ->
          if Float.is_finite est && est >= 0. then
            Some
              { Perf.Report.k_name = name; ns_per_run = est; k_at_ms = kernels_at }
          else None)
        rows
    in
    let report =
      {
        Perf.Report.schema_version = 1;
        bench = 9;
        jobs = 4;
        kernels;
        ratios = derive_ratios rows pool cache @ [ shrink; sweep ];
        pool;
        cache = Some cache;
        telemetry = Some telemetry;
        server = None;
      }
    in
    Perf.Report.save path report;
    Format.printf "@.wrote %s@." path
