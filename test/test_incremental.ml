(* Differential harness for the incremental objective engine.

   Three layers of evidence that [Core.Incremental] is exact:
   1. golden anchors — the appendix E1 worked example (objective values
      4, 7 1/3, 8, 12) pinned through BOTH evaluators;
   2. qcheck properties — on random problems and random flip sequences the
      incremental state matches the naive [Objective] oracle after every
      flip, with exact [Frac] equality, never floats;
   3. differential regression — the rewired solvers reproduce, bit for bit,
      the selections and objective values captured from the pre-rewrite
      naive implementations on fixed iBench scenarios, and qcheck versions
      of those naive implementations on random problems. *)

open Util
open Core

let frac = Alcotest.testable Frac.pp Frac.equal

let check_breakdown name (expected : Objective.breakdown)
    (got : Objective.breakdown) =
  Alcotest.check frac (name ^ ": unexplained") expected.Objective.unexplained
    got.Objective.unexplained;
  Alcotest.(check int) (name ^ ": errors") expected.Objective.errors
    got.Objective.errors;
  Alcotest.(check int) (name ^ ": size") expected.Objective.size
    got.Objective.size;
  Alcotest.check frac (name ^ ": total") expected.Objective.total
    got.Objective.total

let breakdown_equal (a : Objective.breakdown) (b : Objective.breakdown) =
  Frac.equal a.Objective.unexplained b.Objective.unexplained
  && a.Objective.errors = b.Objective.errors
  && a.Objective.size = b.Objective.size
  && Frac.equal a.Objective.total b.Objective.total

(* --- golden anchor: the appendix's E1 table --------------------------- *)

let appendix_problem () =
  Problem.make ~source:Fixtures.instance_i ~j:Fixtures.instance_j
    [ Fixtures.theta1; Fixtures.theta3 ]

let appendix_tests =
  [
    Alcotest.test_case "E1 table through both evaluators" `Quick (fun () ->
        let p = appendix_problem () in
        List.iter
          (fun (idx, expected) ->
            let sel = Problem.selection_of_indices p idx in
            let naive = Objective.breakdown p sel in
            let incr = Incremental.breakdown (Incremental.create p sel) in
            let name = Printf.sprintf "|M| = %d" (List.length idx) in
            Alcotest.check frac (name ^ ": naive total") expected
              naive.Objective.total;
            Alcotest.check frac (name ^ ": incremental total") expected
              incr.Objective.total;
            check_breakdown name naive incr)
          [
            ([], Frac.of_int 4);
            ([ 0 ], Frac.make 22 3);
            ([ 1 ], Frac.of_int 8);
            ([ 0; 1 ], Frac.of_int 12);
          ]);
    Alcotest.test_case "E1 reached by flips, not create" `Quick (fun () ->
        (* drive one state through {} → {θ1} → {θ1,θ3} → {θ3} → {} and
           compare against the pinned table at every step *)
        let p = appendix_problem () in
        let st = Incremental.create p [| false; false |] in
        let expect name v =
          Alcotest.check frac name v (Incremental.value st)
        in
        expect "{}" (Frac.of_int 4);
        Incremental.flip st 0;
        expect "{theta1}" (Frac.make 22 3);
        Incremental.flip st 1;
        expect "{theta1,theta3}" (Frac.of_int 12);
        Incremental.flip st 0;
        expect "{theta3}" (Frac.of_int 8);
        Incremental.flip st 1;
        expect "{} again" (Frac.of_int 4));
  ]

(* --- qcheck differential properties ----------------------------------- *)

(* A problem plus a random starting mask and a flip sequence; indices are
   taken modulo the candidate count, so shrinking the raw ints shrinks the
   scenario without invalidating it. *)
let scenario_gen =
  QCheck2.Gen.(
    triple Fixtures.selection_problem_gen (int_range 0 255)
      (list_size (int_range 1 25) (int_range 0 1000)))

let initial_selection p mask =
  Array.init (Problem.num_candidates p) (fun i -> (mask lsr i) land 1 = 1)

let property_tests =
  let open QCheck2 in
  [
    Test.make ~name:"value and breakdown match the oracle after every flip"
      ~count:200 scenario_gen (fun (p, mask, flips) ->
        let st = Incremental.create p (initial_selection p mask) in
        let agrees () =
          let sel = Incremental.selection st in
          Frac.equal (Incremental.value st) (Objective.value p sel)
          && breakdown_equal (Objective.breakdown p sel)
               (Incremental.breakdown st)
        in
        agrees ()
        && List.for_all
             (fun f ->
               Incremental.flip st (f mod Problem.num_candidates p);
               agrees ())
             flips);
    Test.make ~name:"flip_delta is exact and does not mutate" ~count:200
      scenario_gen (fun (p, mask, flips) ->
        let m = Problem.num_candidates p in
        let st = Incremental.create p (initial_selection p mask) in
        List.for_all
          (fun f ->
            let before = Incremental.value st in
            (* probe every candidate against the oracle … *)
            List.for_all
              (fun c ->
                let sel = Incremental.selection st in
                sel.(c) <- not sel.(c);
                let oracle = Frac.sub (Objective.value p sel) before in
                Frac.equal oracle (Incremental.flip_delta st c))
              (List.init m Fun.id)
            (* … then check the probes left no trace and commit one flip *)
            && Frac.equal before (Incremental.value st)
            &&
            let c = f mod m in
            let predicted = Incremental.flip_delta st c in
            Incremental.flip st c;
            Frac.equal (Incremental.value st) (Frac.add before predicted))
          flips);
    Test.make ~name:"flip is an exact involution" ~count:100 scenario_gen
      (fun (p, mask, flips) ->
        let st = Incremental.create p (initial_selection p mask) in
        List.for_all
          (fun f ->
            let c = f mod Problem.num_candidates p in
            let before = Incremental.breakdown st in
            Incremental.flip st c;
            Incremental.flip st c;
            breakdown_equal before (Incremental.breakdown st))
          flips);
    Test.make ~name:"create agrees with the oracle on random masks" ~count:200
      (Gen.pair Fixtures.selection_problem_gen (Gen.int_range 0 255))
      (fun (p, mask) ->
        let sel = initial_selection p mask in
        let st = Incremental.create p sel in
        Frac.equal (Incremental.value st) (Objective.value p sel)
        && breakdown_equal (Objective.breakdown p sel)
             (Incremental.breakdown st));
  ]
  |> List.map QCheck_alcotest.to_alcotest

(* --- differential: rewired solvers vs the naive originals -------------- *)

(* Verbatim copies of the solver loops as they were before the rewiring,
   evaluating with [Objective.value] from scratch on every probe. *)
module Naive = struct
  let greedy p =
    let m = Problem.num_candidates p in
    let sel = Array.make m false in
    let best = Array.make (Problem.num_tuples p) Frac.zero in
    let continue_ = ref true in
    while !continue_ do
      let pick = ref None in
      for c = 0 to m - 1 do
        if not sel.(c) then begin
          let gain = Greedy.marginal_gain p ~best c in
          if Frac.(Frac.zero < gain) then
            match !pick with
            | Some (_, g) when Frac.(gain <= g) -> ()
            | Some _ | None -> pick := Some (c, gain)
        end
      done;
      match !pick with
      | None -> continue_ := false
      | Some (c, _) ->
        sel.(c) <- true;
        Array.iter
          (fun (ti, d) -> if Frac.(best.(ti) < d) then best.(ti) <- d)
          p.Problem.covers.(c)
    done;
    let improved = ref true in
    let current = ref (Objective.value p sel) in
    while !improved do
      improved := false;
      for c = 0 to m - 1 do
        if sel.(c) then begin
          sel.(c) <- false;
          let v = Objective.value p sel in
          if Frac.(v < !current) then begin
            current := v;
            improved := true
          end
          else sel.(c) <- true
        end
      done
    done;
    sel

  let improve p start =
    let sel = Array.copy start in
    let current = ref (Objective.value p sel) in
    let improved = ref true in
    while !improved do
      improved := false;
      let best_flip = ref None in
      for c = 0 to Array.length sel - 1 do
        sel.(c) <- not sel.(c);
        let v = Objective.value p sel in
        sel.(c) <- not sel.(c);
        if Frac.(v < !current) then
          match !best_flip with
          | Some (_, bv) when Frac.(bv <= v) -> ()
          | Some _ | None -> best_flip := Some (c, v)
      done;
      match !best_flip with
      | None -> ()
      | Some (c, v) ->
        sel.(c) <- not sel.(c);
        current := v;
        improved := true
    done;
    sel

  let anneal ?(options = Anneal.default_options) (p : Problem.t) =
    let m = Problem.num_candidates p in
    if m = 0 then [||]
    else begin
      let rng = Random.State.make [| options.Anneal.seed |] in
      let sel = Array.make m false in
      let current = ref (Objective.value p sel) in
      let best = Array.copy sel in
      let best_v = ref !current in
      let temperature = ref options.Anneal.initial_temperature in
      for _ = 1 to options.Anneal.iterations do
        let c = Random.State.int rng m in
        sel.(c) <- not sel.(c);
        let v = Objective.value p sel in
        let delta = Frac.to_float (Frac.sub v !current) in
        let accept =
          delta <= 0.
          || Random.State.float rng 1.
             < exp (-.delta /. Float.max 1e-9 !temperature)
        in
        if accept then begin
          current := v;
          if Frac.(v < !best_v) then begin
            best_v := v;
            Array.blit sel 0 best 0 m
          end
        end
        else sel.(c) <- not sel.(c);
        temperature := !temperature *. options.Anneal.cooling
      done;
      best
    end
end

let solver_property_tests =
  let open QCheck2 in
  [
    Test.make ~name:"rewired greedy = naive greedy (selection, not just value)"
      ~count:100 Fixtures.selection_problem_gen (fun p ->
        Greedy.solve p = Naive.greedy p);
    Test.make ~name:"rewired local-search improve = naive improve" ~count:100
      (Gen.pair Fixtures.selection_problem_gen (Gen.int_range 0 255))
      (fun (p, mask) ->
        let start = initial_selection p mask in
        Local_search.improve p start = Naive.improve p start);
    Test.make ~name:"rewired anneal = naive anneal (same rng consumption)"
      ~count:60 Fixtures.selection_problem_gen (fun p ->
        Anneal.solve p = Naive.anneal p);
  ]
  |> List.map QCheck_alcotest.to_alcotest

(* --- golden regression on fixed iBench scenarios ------------------------ *)

let regression_tests =
  List.map
    (fun g ->
      Alcotest.test_case g.Fixtures.g_name `Quick (fun () ->
          let p = Fixtures.golden_problem g in
          let check name expected sel =
            Alcotest.(check (list int))
              (name ^ " selection") expected
              (Problem.indices_of_selection sel);
            Alcotest.check frac (name ^ " objective") g.Fixtures.g_objective
              (Objective.value p sel);
            Alcotest.check frac
              (name ^ " incremental objective")
              g.Fixtures.g_objective
              (Incremental.value (Incremental.create p sel))
          in
          check "greedy" g.Fixtures.g_greedy (Greedy.solve p);
          check "local-search" g.Fixtures.g_local
            (Local_search.solve ~restarts:2 ~seed:0 p);
          check "anneal" g.Fixtures.g_anneal (Anneal.solve p)))
    Fixtures.golden_scenarios

let () =
  Alcotest.run "incremental"
    [
      ("appendix-anchor", appendix_tests);
      ("differential-properties", property_tests);
      ("solver-differential", solver_property_tests);
      ("golden-regression", regression_tests);
    ]
