open Relational
open Util

let frac = Alcotest.testable Frac.pp Frac.equal

let analyze_appendix () =
  Cover.analyze ~source:Fixtures.instance_i ~j:Fixtures.instance_j
    [ Fixtures.theta1; Fixtures.theta3 ]

let ml_task = Tuple.of_consts "task" [ "ML"; "Alice"; "111" ]

let sap_org = Tuple.of_consts "org" [ "111"; "SAP" ]

let appendix_tests =
  [
    Alcotest.test_case "theta1: covers 2/3 for the ML task, 0 otherwise" `Quick
      (fun () ->
        let stats = (analyze_appendix ()).(0) in
        Alcotest.check frac "ML task" (Frac.make 2 3) (Cover.covers stats ml_task);
        Alcotest.check frac "org not covered" Frac.zero
          (Cover.covers stats sap_org);
        Alcotest.(check int)
          "only one covered target" 1
          (List.length (Cover.covered_targets stats)));
    Alcotest.test_case "theta1: one error tuple (the BigData task)" `Quick
      (fun () ->
        let stats = (analyze_appendix ()).(0) in
        Alcotest.(check int) "errors" 1 (Cover.error_count stats);
        match stats.Cover.error_tuples with
        | [ t ] -> Alcotest.(check string) "rel" "task" t.Tuple.rel
        | l -> Alcotest.failf "expected 1 error tuple, got %d" (List.length l));
    Alcotest.test_case
      "theta3: corroborated null lifts coverage to 3/3 and 2/2" `Quick
      (fun () ->
        let stats = (analyze_appendix ()).(1) in
        Alcotest.check frac "ML task fully" Frac.one (Cover.covers stats ml_task);
        Alcotest.check frac "SAP org fully" Frac.one (Cover.covers stats sap_org));
    Alcotest.test_case "theta3: two error tuples (BigData task and IBM org)"
      `Quick (fun () ->
        let stats = (analyze_appendix ()).(1) in
        Alcotest.(check int) "errors" 2 (Cover.error_count stats);
        Alcotest.(check int) "produced" 4 stats.Cover.produced);
    Alcotest.test_case "explains takes the max over the mapping" `Quick
      (fun () ->
        let stats = analyze_appendix () in
        Alcotest.check frac "max" Frac.one
          (Cover.explains (Array.to_list stats) ml_task);
        Alcotest.check frac "single theta1" (Frac.make 2 3)
          (Cover.explains [ stats.(0) ] ml_task));
    Alcotest.test_case "uncovered targets are the Social/MSR tuples" `Quick
      (fun () ->
        let stats = analyze_appendix () in
        let uncovered = Cover.uncovered_targets stats Fixtures.instance_j in
        Alcotest.(check int) "two" 2 (Tuple.Set.cardinal uncovered);
        Alcotest.(check bool)
          "social task" true
          (Tuple.Set.mem (Tuple.of_consts "task" [ "Social"; "Carl"; "222" ]) uncovered);
        Alcotest.(check bool)
          "msr org" true
          (Tuple.Set.mem (Tuple.of_consts "org" [ "222"; "MSR" ]) uncovered));
    Alcotest.test_case "extension: theta3 fully explains ML-like projects"
      `Quick (fun () ->
        let i', j' = Fixtures.extended_example 5 in
        let stats = Cover.analyze ~source:i' ~j:j' [ Fixtures.theta1; Fixtures.theta3 ] in
        let proj_task k = Tuple.of_consts "task" [ Printf.sprintf "Proj%d" k; "Alice"; "111" ] in
        for k = 0 to 4 do
          Alcotest.check frac "theta1 2/3" (Frac.make 2 3)
            (Cover.covers stats.(0) (proj_task k));
          Alcotest.check frac "theta3 fully" Frac.one
            (Cover.covers stats.(1) (proj_task k))
        done;
        (* no new errors for either candidate *)
        Alcotest.(check int) "theta1 errors" 1 (Cover.error_count stats.(0));
        Alcotest.(check int) "theta3 errors" 2 (Cover.error_count stats.(1)));
  ]

let matching_tests =
  [
    Alcotest.test_case "matches: constants must agree" `Quick (fun () ->
        let pattern = Tuple.make "r" [ Value.Const "a"; Value.Null 0 ] in
        Alcotest.(check bool)
          "match" true
          (Cover.matches ~pattern (Tuple.of_consts "r" [ "a"; "x" ]));
        Alcotest.(check bool)
          "mismatch" false
          (Cover.matches ~pattern (Tuple.of_consts "r" [ "b"; "x" ])));
    Alcotest.test_case "matches: repeated null must map consistently" `Quick
      (fun () ->
        let pattern = Tuple.make "r" [ Value.Null 0; Value.Null 0 ] in
        Alcotest.(check bool)
          "diagonal ok" true
          (Cover.matches ~pattern (Tuple.of_consts "r" [ "x"; "x" ]));
        Alcotest.(check bool)
          "off-diagonal no" false
          (Cover.matches ~pattern (Tuple.of_consts "r" [ "x"; "y" ])));
    Alcotest.test_case "matches: different relations never match" `Quick
      (fun () ->
        let pattern = Tuple.make "r" [ Value.Null 0 ] in
        Alcotest.(check bool)
          "no" false
          (Cover.matches ~pattern (Tuple.of_consts "q" [ "x" ])));
    Alcotest.test_case "maps_into" `Quick (fun () ->
        let inst = Instance.of_tuples [ Tuple.of_consts "r" [ "a"; "b" ] ] in
        Alcotest.(check bool)
          "yes" true
          (Cover.maps_into (Tuple.make "r" [ Value.Const "a"; Value.Null 9 ]) inst);
        Alcotest.(check bool)
          "no" false
          (Cover.maps_into (Tuple.make "r" [ Value.Const "z"; Value.Null 9 ]) inst));
  ]

(* A tgd whose two head atoms share an existential, to exercise partially
   matched groups: only the first head atom lands in J, so the shared null is
   not corroborated. *)
let partial_group_tests =
  [
    Alcotest.test_case "uncorroborated null counts as uncovered" `Quick
      (fun () ->
        let v = Fixtures.v in
        let theta =
          Logic.Tgd.make ~label:"partial"
            ~body:[ Logic.Atom.make "proj" [ v "P"; v "E"; v "O" ] ]
            ~head:
              [
                Logic.Atom.make "task" [ v "P"; v "E"; v "T" ];
                Logic.Atom.make "org" [ v "T"; Logic.Term.Cst "Nowhere" ];
              ]
            ()
        in
        let stats =
          Cover.analyze ~source:Fixtures.instance_i ~j:Fixtures.instance_j [ theta ]
        in
        (* org(T, Nowhere) never lands in J, so the ML task is only covered
           2/3 and both org tuples are errors. *)
        Alcotest.check frac "2/3" (Frac.make 2 3) (Cover.covers stats.(0) ml_task);
        Alcotest.(check int) "errors" 3 (Cover.error_count stats.(0)));
    Alcotest.test_case "ground head tuple in J covers fully" `Quick (fun () ->
        let theta =
          Logic.Tgd.make ~label:"const-head"
            ~body:[ Logic.Atom.make "proj" [ Logic.Term.Cst "ML"; Fixtures.v "E"; Fixtures.v "O" ] ]
            ~head:
              [
                Logic.Atom.make "org"
                  [ Logic.Term.Cst "111"; Logic.Term.Cst "SAP" ];
              ]
            ()
        in
        let stats =
          Cover.analyze ~source:Fixtures.instance_i ~j:Fixtures.instance_j [ theta ]
        in
        Alcotest.check frac "full" Frac.one (Cover.covers stats.(0) sap_org);
        Alcotest.(check int) "no errors" 0 (Cover.error_count stats.(0)));
  ]

let property_tests =
  let open QCheck2 in
  (* Random source instances chased with theta1/theta3 against random ground
     target instances over task/org. *)
  let target_gen =
    let mk rel vs = Relational.Tuple.of_consts rel vs in
    Gen.(
      let* tasks =
        list_size (int_range 0 6)
          (map
             (fun (a, b, c) ->
               mk "task"
                 [ Printf.sprintf "p%d" a; Printf.sprintf "e%d" b; Printf.sprintf "o%d" c ])
             (triple (int_range 0 3) (int_range 0 3) (int_range 0 3)))
      in
      let* orgs =
        list_size (int_range 0 6)
          (map
             (fun (a, b) ->
               mk "org" [ Printf.sprintf "o%d" a; Printf.sprintf "n%d" b ])
             (pair (int_range 0 3) (int_range 0 3)))
      in
      return (Instance.of_tuples (tasks @ orgs)))
  in
  let source_gen =
    let mk rel vs = Relational.Tuple.of_consts rel vs in
    Gen.(
      list_size (int_range 0 6)
        (map
           (fun (a, b, c) ->
             mk "proj"
               [ Printf.sprintf "p%d" a; Printf.sprintf "e%d" b; Printf.sprintf "n%d" c ])
           (triple (int_range 0 3) (int_range 0 3) (int_range 0 3))))
    |> Gen.map Instance.of_tuples
  in
  [
    Test.make ~name:"degrees lie in (0,1]" ~count:100
      (Gen.pair source_gen target_gen) (fun (src, j) ->
        let stats = Cover.analyze ~source:src ~j [ Fixtures.theta1; Fixtures.theta3 ] in
        Array.for_all
          (fun s ->
            Relational.Tuple.Map.for_all
              (fun _ d -> Frac.(Stdlib.not (is_zero d)) && Frac.(d <= one))
              s.Cover.covers)
          stats);
    Test.make ~name:"errors never exceed produced tuples" ~count:100
      (Gen.pair source_gen target_gen) (fun (src, j) ->
        let stats = Cover.analyze ~source:src ~j [ Fixtures.theta1; Fixtures.theta3 ] in
        Array.for_all (fun s -> Cover.error_count s <= s.Cover.produced) stats);
    Test.make ~name:"covered targets are tuples of J" ~count:100
      (Gen.pair source_gen target_gen) (fun (src, j) ->
        let stats = Cover.analyze ~source:src ~j [ Fixtures.theta1; Fixtures.theta3 ] in
        Array.for_all
          (fun s -> List.for_all (fun t -> Instance.mem t j) (Cover.covered_targets s))
          stats);
    Test.make ~name:"semantics are pointwise ordered" ~count:60
      (Gen.pair source_gen target_gen) (fun (src, j) ->
        let degrees semantics =
          Cover.analyze ~semantics ~source:src ~j
            [ Fixtures.theta1; Fixtures.theta3 ]
        in
        let strict = degrees Cover.Strict in
        let corr = degrees Cover.Corroborated in
        let generous = degrees Cover.Generous in
        Instance.fold
          (fun t acc ->
            acc
            && Array.for_all
                 (fun k ->
                   Frac.(Cover.covers strict.(k) t <= Cover.covers corr.(k) t)
                   && Frac.(Cover.covers corr.(k) t <= Cover.covers generous.(k) t))
                 [| 0; 1 |])
          j true);
    Test.make ~name:"error counts are semantics-independent" ~count:60
      (Gen.pair source_gen target_gen) (fun (src, j) ->
        let errors semantics =
          Array.map Cover.error_count
            (Cover.analyze ~semantics ~source:src ~j
               [ Fixtures.theta1; Fixtures.theta3 ])
        in
        errors Cover.Strict = errors Cover.Corroborated
        && errors Cover.Corroborated = errors Cover.Generous);
    Test.make ~name:"bigger J never decreases coverage" ~count:100
      (Gen.triple source_gen target_gen target_gen) (fun (src, j1, j2) ->
        let j = Instance.union j1 j2 in
        let stats1 = Cover.analyze ~source:src ~j:j1 [ Fixtures.theta3 ] in
        let stats = Cover.analyze ~source:src ~j [ Fixtures.theta3 ] in
        Instance.fold
          (fun t acc ->
            acc
            && Frac.(Cover.covers stats1.(0) t <= Cover.covers stats.(0) t))
          j1 true);
  ]
  |> List.map QCheck_alcotest.to_alcotest

(* Regression pin for the interned homomorphism search: the E1 problem's
   digest covers every stat field (covers map, error tuples, produced,
   size, cost) of both candidates, so any drift in [stats_of_triggers] —
   like the interned-J hoist reordering a fold — fails here byte-for-byte. *)
let regression_tests =
  [
    Alcotest.test_case "E1 stats digest is stable" `Quick (fun () ->
        let p =
          Core.Problem.make ~source:Fixtures.instance_i ~j:Fixtures.instance_j
            [ Fixtures.theta1; Fixtures.theta3 ]
        in
        Alcotest.(check string)
          "digest" "b5fc0caa89cc8925a22214fa4beaaf33" (Core.Problem.digest p));
    Alcotest.test_case "cored E1 stats equal uncored ones (ground chase)"
      `Quick (fun () ->
        (* the E1 chase target is null-free on theta1 and its core is the
           identity, so coring must be a no-op on the stats *)
        let plain = analyze_appendix () in
        let cored =
          Cover.analyze ~core:true ~source:Fixtures.instance_i
            ~j:Fixtures.instance_j
            [ Fixtures.theta1; Fixtures.theta3 ]
        in
        Array.iteri
          (fun k s ->
            Alcotest.(check int)
              (Printf.sprintf "produced %d" k)
              s.Cover.produced cored.(k).Cover.produced;
            Alcotest.(check int)
              (Printf.sprintf "errors %d" k)
              (Cover.error_count s)
              (Cover.error_count cored.(k)))
          plain);
  ]

let () =
  Alcotest.run "cover"
    [
      ("appendix", appendix_tests);
      ("matching", matching_tests);
      ("partial-groups", partial_group_tests);
      ("properties", property_tests);
      ("regression", regression_tests);
    ]
