open Relational

let tup = Alcotest.testable Tuple.pp Tuple.equal

let value_tests =
  [
    Alcotest.test_case "const before null" `Quick (fun () ->
        Alcotest.(check bool)
          "Const < Null" true
          (Value.compare (Const "zzz") (Null 0) < 0));
    Alcotest.test_case "null ordering by label" `Quick (fun () ->
        Alcotest.(check bool) "N1 < N2" true (Value.compare (Null 1) (Null 2) < 0));
    Alcotest.test_case "pp" `Quick (fun () ->
        Alcotest.(check string) "const" "abc" (Value.to_string (Const "abc"));
        Alcotest.(check string) "null" "_N7" (Value.to_string (Null 7)));
    Alcotest.test_case "is_null / is_const" `Quick (fun () ->
        Alcotest.(check bool) "null" true (Value.is_null (Null 0));
        Alcotest.(check bool) "const" true (Value.is_const (Const "x")));
  ]

let relation_tests =
  [
    Alcotest.test_case "make rejects duplicates" `Quick (fun () ->
        Alcotest.check_raises "dup"
          (Invalid_argument "Relation.make: duplicate attribute in r")
          (fun () -> ignore (Relation.make "r" [ "a"; "a" ])));
    Alcotest.test_case "make rejects empty" `Quick (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Relation.make: empty attribute list") (fun () ->
            ignore (Relation.make "r" [])));
    Alcotest.test_case "attr_index" `Quick (fun () ->
        let r = Relation.make "r" [ "a"; "b"; "c" ] in
        Alcotest.(check int) "b" 1 (Relation.attr_index r "b");
        Alcotest.(check bool) "missing" false (Relation.has_attr r "z"));
  ]

let schema_tests =
  [
    Alcotest.test_case "add conflicting signature fails" `Quick (fun () ->
        let s = Schema.of_relations [ Relation.make "r" [ "a" ] ] in
        Alcotest.check_raises "conflict"
          (Invalid_argument "Schema.add: conflicting signatures for relation r")
          (fun () -> ignore (Schema.add (Relation.make "r" [ "a"; "b" ]) s)));
    Alcotest.test_case "add identical is no-op" `Quick (fun () ->
        let r = Relation.make "r" [ "a" ] in
        let s = Schema.of_relations [ r ] in
        Alcotest.(check bool) "equal" true (Schema.equal s (Schema.add r s)));
    Alcotest.test_case "union" `Quick (fun () ->
        let s1 = Schema.of_relations [ Relation.make "r" [ "a" ] ] in
        let s2 = Schema.of_relations [ Relation.make "q" [ "b" ] ] in
        let u = Schema.union s1 s2 in
        Alcotest.(check int) "size" 2 (Schema.size u);
        Alcotest.(check bool) "mem r" true (Schema.mem u "r");
        Alcotest.(check bool) "mem q" true (Schema.mem u "q"));
  ]

let tuple_tests =
  [
    Alcotest.test_case "ground / nulls" `Quick (fun () ->
        let t = Tuple.make "r" [ Const "a"; Null 3 ] in
        Alcotest.(check bool) "not ground" false (Tuple.is_ground t);
        Alcotest.(check int) "one null" 1 (Value.Set.cardinal (Tuple.nulls t));
        Alcotest.(check bool)
          "ground" true
          (Tuple.is_ground (Tuple.of_consts "r" [ "a"; "b" ])));
    Alcotest.test_case "compare is lexicographic" `Quick (fun () ->
        let a = Tuple.of_consts "r" [ "a"; "b" ] in
        let b = Tuple.of_consts "r" [ "a"; "c" ] in
        Alcotest.(check bool) "a<b" true (Tuple.compare a b < 0));
    Alcotest.test_case "map_values" `Quick (fun () ->
        let t = Tuple.make "r" [ Null 0; Const "x" ] in
        let t' =
          Tuple.map_values
            (function Value.Null 0 -> Value.Const "filled" | v -> v)
            t
        in
        Alcotest.check tup "filled" (Tuple.of_consts "r" [ "filled"; "x" ]) t');
  ]

let instance_tests =
  [
    Alcotest.test_case "add / mem / remove" `Quick (fun () ->
        let t = Tuple.of_consts "r" [ "a" ] in
        let i = Instance.add t Instance.empty in
        Alcotest.(check bool) "mem" true (Instance.mem t i);
        Alcotest.(check bool)
          "removed" false
          (Instance.mem t (Instance.remove t i)));
    Alcotest.test_case "duplicates collapse" `Quick (fun () ->
        let t = Tuple.of_consts "r" [ "a" ] in
        let i = Instance.of_tuples [ t; t; t ] in
        Alcotest.(check int) "card" 1 (Instance.cardinal i));
    Alcotest.test_case "diff and inter" `Quick (fun () ->
        let a = Tuple.of_consts "r" [ "a" ] in
        let b = Tuple.of_consts "r" [ "b" ] in
        let i1 = Instance.of_tuples [ a; b ] in
        let i2 = Instance.of_tuples [ b ] in
        Alcotest.(check int) "diff" 1 (Instance.cardinal (Instance.diff i1 i2));
        Alcotest.(check bool)
          "diff content" true
          (Instance.mem a (Instance.diff i1 i2));
        Alcotest.(check int) "inter" 1 (Instance.cardinal (Instance.inter i1 i2)));
    Alcotest.test_case "constants and nulls" `Quick (fun () ->
        let i =
          Instance.of_tuples [ Tuple.make "r" [ Const "a"; Null 1; Null 2 ] ]
        in
        Alcotest.(check int) "consts" 1 (Value.Set.cardinal (Instance.constants i));
        Alcotest.(check int) "nulls" 2 (Value.Set.cardinal (Instance.null_labels i));
        Alcotest.(check bool) "not ground" false (Instance.is_ground i));
  ]

let qcheck_tests =
  let open QCheck2 in
  [
    Test.make ~name:"union is an upper bound" ~count:100
      Fixtures.instance_gen (fun i ->
        let u = Instance.union i i in
        Instance.equal u i);
    Test.make ~name:"diff then union restores superset" ~count:100
      (Gen.pair Fixtures.instance_gen Fixtures.instance_gen) (fun (a, b) ->
        let d = Instance.diff a b in
        Instance.subset d a && Instance.is_empty (Instance.inter d b));
    Test.make ~name:"cardinal = length tuples" ~count:100 Fixtures.instance_gen
      (fun i -> Instance.cardinal i = List.length (Instance.tuples i));
    Test.make ~name:"subset reflexive, inter commutative" ~count:100
      (Gen.pair Fixtures.instance_gen Fixtures.instance_gen) (fun (a, b) ->
        Instance.subset a a
        && Instance.equal (Instance.inter a b) (Instance.inter b a));
  ]
  |> List.map QCheck_alcotest.to_alcotest

let frac_tests =
  let open Util in
  let frac = Alcotest.testable Frac.pp Frac.equal in
  [
    Alcotest.test_case "normalisation" `Quick (fun () ->
        Alcotest.check frac "2/4 = 1/2" (Frac.make 1 2) (Frac.make 2 4);
        Alcotest.check frac "-1/-2 = 1/2" (Frac.make 1 2) (Frac.make (-1) (-2));
        Alcotest.(check int) "den > 0" 2 (Frac.den (Frac.make 1 (-2))));
    Alcotest.test_case "arithmetic" `Quick (fun () ->
        Alcotest.check frac "1/3+1/6" (Frac.make 1 2)
          (Frac.add (Frac.make 1 3) (Frac.make 1 6));
        Alcotest.check frac "1-2/3" (Frac.make 1 3)
          (Frac.sub Frac.one (Frac.make 2 3));
        Alcotest.check frac "2/3*3/4" (Frac.make 1 2)
          (Frac.mul (Frac.make 2 3) (Frac.make 3 4)));
    Alcotest.test_case "pp mixed number" `Quick (fun () ->
        Alcotest.(check string) "7 1/3" "7 1/3" (Frac.to_string (Frac.make 22 3));
        Alcotest.(check string) "2/3" "2/3" (Frac.to_string (Frac.make 2 3));
        Alcotest.(check string) "4" "4" (Frac.to_string (Frac.of_int 4)));
    Alcotest.test_case "sum and compare" `Quick (fun () ->
        Alcotest.check frac "sum" (Frac.of_int 1)
          (Frac.sum [ Frac.make 1 3; Frac.make 1 3; Frac.make 1 3 ]);
        Alcotest.(check bool) "lt" true Frac.(make 1 3 < make 1 2));
    Alcotest.test_case "near-max_int comparisons are exact" `Quick (fun () ->
        (* 3037000500² exceeds max_int, so naive cross-multiplication wraps
           and used to order these two the wrong way round. *)
        let a = Frac.make 3037000499 3037000500 in
        let b = Frac.make 3037000500 3037000501 in
        Alcotest.(check bool) "1 - 1/n < 1 - 1/(n+1)" true Frac.(a < b);
        Alcotest.(check bool) "antisymmetric" true (Frac.compare b a > 0);
        Alcotest.(check int) "reflexive" 0 (Frac.compare a a);
        Alcotest.(check bool)
          "min_int numerator orders" true
          Frac.(make min_int 1 < make (min_int + 1) 1);
        Alcotest.(check int)
          "min_int over odd denominator is total" 0
          (Frac.compare (Frac.make min_int 3) (Frac.make min_int 3));
        Alcotest.(check bool)
          "sign dominates magnitude" true
          Frac.(make min_int max_int < make 1 max_int);
        (* regression: [gcd (abs min_int) den] used to go negative and flip
           the denominator sign, breaking the den > 0 invariant *)
        Alcotest.(check bool)
          "min_int numerator keeps a positive denominator" true
          (Frac.den (Frac.make min_int max_int) > 0);
        Alcotest.check frac "min_int still reduces by shared factors"
          (Frac.make (min_int / 4) 1)
          (Frac.make min_int 4));
    Alcotest.test_case "negation at min_int raises, never wraps" `Quick
      (fun () ->
        let m = Frac.make min_int 1 in
        Alcotest.check_raises "neg" Frac.Overflow (fun () ->
            ignore (Frac.neg m));
        Alcotest.check_raises "sub" Frac.Overflow (fun () ->
            ignore (Frac.sub Frac.zero m));
        Alcotest.check_raises "div reciprocal" Frac.Overflow (fun () ->
            ignore (Frac.div Frac.one m)));
    Alcotest.test_case "unrepresentable results raise Overflow" `Quick
      (fun () ->
        Alcotest.check_raises "lcm of coprime huge denominators" Frac.Overflow
          (fun () ->
            ignore (Frac.add (Frac.make 1 max_int) (Frac.make 1 (max_int - 1))));
        Alcotest.check_raises "product of huge numerators" Frac.Overflow
          (fun () ->
            ignore (Frac.mul (Frac.make max_int 1) (Frac.make max_int 1)));
        (* cross-reduction means a representable result never raises, even
           when the naive intermediate product would wrap *)
        Alcotest.check frac "cross-reduced product is exact" Frac.one
          (Frac.mul (Frac.make max_int 3) (Frac.make 3 max_int));
        Alcotest.check frac "cross-reduced sum is exact"
          (Frac.make 2 max_int)
          (Frac.add (Frac.make 1 max_int) (Frac.make 1 max_int)))
  ]

let frac_qcheck_tests =
  let open QCheck2 in
  let open Util in
  let near_max = Gen.map (fun k -> max_int - k) (Gen.int_bound 1000) in
  let big_frac =
    Gen.map2
      (fun n d -> Frac.make n d)
      (Gen.oneof [ near_max; Gen.map Int.neg near_max ])
      near_max
  in
  let small_frac =
    Gen.map2
      (fun n d -> Frac.make n (d + 1))
      (Gen.int_range (-64) 64) (Gen.int_bound 63)
  in
  [
    Test.make ~name:"compare is antisymmetric near max_int" ~count:500
      (Gen.pair big_frac big_frac) (fun (a, b) ->
        Int.compare (Frac.compare a b) 0
        = - Int.compare (Frac.compare b a) 0);
    Test.make ~name:"compare agrees with equal near max_int" ~count:500
      (Gen.pair big_frac big_frac) (fun (a, b) ->
        Frac.equal a b = (Frac.compare a b = 0));
    Test.make ~name:"compare agrees with subtraction when it fits" ~count:500
      (Gen.pair small_frac small_frac) (fun (a, b) ->
        Int.compare (Frac.compare a b) 0
        = Int.compare (Frac.num (Frac.sub a b)) 0);
    Test.make ~name:"add associates" ~count:500
      (Gen.triple small_frac small_frac small_frac) (fun (a, b, c) ->
        Frac.equal (Frac.add (Frac.add a b) c) (Frac.add a (Frac.add b c)));
    Test.make ~name:"add commutes near max_int or overflows both ways"
      ~count:500 (Gen.pair big_frac big_frac) (fun (a, b) ->
        let try_add x y =
          match Frac.add x y with
          | v -> Some v
          | exception Frac.Overflow -> None
        in
        match (try_add a b, try_add b a) with
        | Some x, Some y -> Frac.equal x y
        | None, None -> true
        | _ -> false);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let csv_tests =
  let open Relational in
  [
    Alcotest.test_case "parse_line basic" `Quick (fun () ->
        Alcotest.(check (result (list string) string))
          "simple" (Ok [ "a"; "b"; "c" ]) (Csv.parse_line "a,b,c"));
    Alcotest.test_case "parse_line quoting" `Quick (fun () ->
        Alcotest.(check (result (list string) string))
          "quoted comma" (Ok [ "a,b"; "c" ]) (Csv.parse_line "\"a,b\",c");
        Alcotest.(check (result (list string) string))
          "doubled quote" (Ok [ "say \"hi\"" ]) (Csv.parse_line "\"say \"\"hi\"\"\""));
    Alcotest.test_case "parse_line errors" `Quick (fun () ->
        Alcotest.(check bool)
          "unterminated" true
          (Result.is_error (Csv.parse_line "\"abc"));
        Alcotest.(check bool)
          "junk after quote" true
          (Result.is_error (Csv.parse_line "\"a\"b,c")));
    Alcotest.test_case "load_relation checks widths" `Quick (fun () ->
        Alcotest.(check bool)
          "ragged rejected" true
          (Result.is_error (Csv.load_relation ~rel:"r" "a,b\nc\n"));
        Alcotest.(check bool)
          "arity enforced" true
          (Result.is_error (Csv.load_relation ~rel:"r" ~arity:3 "a,b\n"));
        match Csv.load_relation ~rel:"r" "a,b\nc,d\n\n" with
        | Error e -> Alcotest.fail e
        | Ok tuples -> Alcotest.(check int) "two tuples" 2 (List.length tuples));
    Alcotest.test_case "load builds a multi-relation instance" `Quick
      (fun () ->
        match Csv.load [ ("r", "a,b"); ("q", "x") ] with
        | Error e -> Alcotest.fail e
        | Ok inst ->
          Alcotest.(check int) "card" 2 (Instance.cardinal inst);
          Alcotest.(check bool)
            "r tuple" true
            (Instance.mem (Tuple.of_consts "r" [ "a"; "b" ]) inst));
    Alcotest.test_case "csv roundtrip" `Quick (fun () ->
        let inst =
          Instance.of_tuples
            [
              Tuple.of_consts "r" [ "plain"; "with,comma" ];
              Tuple.of_consts "r" [ "with\"quote"; "x" ];
            ]
        in
        let text = Csv.to_csv inst "r" in
        match Csv.load_relation ~rel:"r" text with
        | Error e -> Alcotest.fail e
        | Ok tuples ->
          Alcotest.(check bool)
            "same instance" true
            (Instance.equal inst (Instance.of_tuples tuples)));
    Alcotest.test_case "embedded record separators round-trip" `Quick
      (fun () ->
        (* quoted newlines are written by to_csv; the loader must scan
           quote-aware rather than split on '\n' first *)
        let inst =
          Instance.of_tuples
            [
              Tuple.of_consts "r" [ "line1\nline2"; "b" ];
              Tuple.of_consts "r" [ "cr\rhere"; "crlf\r\nthere" ];
              Tuple.of_consts "r" [ "\n"; "\"\n\"" ];
            ]
        in
        match Csv.load_relation ~rel:"r" (Csv.to_csv inst "r") with
        | Error e -> Alcotest.fail e
        | Ok tuples ->
          Alcotest.(check bool)
            "same instance" true
            (Instance.equal inst (Instance.of_tuples tuples)));
    Alcotest.test_case "empty and whitespace fields round-trip" `Quick
      (fun () ->
        let inst =
          Instance.of_tuples
            [
              Tuple.of_consts "r" [ ""; "" ];
              Tuple.of_consts "r" [ " leading"; "trailing\t" ];
              Tuple.of_consts "r" [ "\t"; "mid dle" ];
            ]
        in
        match Csv.load_relation ~rel:"r" (Csv.to_csv inst "r") with
        | Error e -> Alcotest.fail e
        | Ok tuples ->
          Alcotest.(check bool)
            "same instance" true
            (Instance.equal inst (Instance.of_tuples tuples)));
    Alcotest.test_case "bare CR and CRLF are record separators" `Quick
      (fun () ->
        match Csv.load_relation ~rel:"r" "a,b\rc,d\r\ne,f" with
        | Error e -> Alcotest.fail e
        | Ok tuples ->
          Alcotest.(check int) "three records" 3 (List.length tuples);
          Alcotest.(check bool)
            "middle record" true
            (List.mem (Tuple.of_consts "r" [ "c"; "d" ]) tuples));
    Alcotest.test_case "width errors report the record's line" `Quick
      (fun () ->
        match Csv.load_relation ~rel:"r" "a,b\n\"x\ny\",z,extra\n" with
        | Ok _ -> Alcotest.fail "ragged record accepted"
        | Error msg ->
          let contains hay needle =
            let nh = String.length hay and nn = String.length needle in
            let rec at i =
              i + nn <= nh && (String.sub hay i nn = needle || at (i + 1))
            in
            at 0
          in
          Alcotest.(check bool)
            ("line number in: " ^ msg)
            true (contains msg "line 2"));
  ]

let csv_qcheck_tests =
  let open QCheck2 in
  let adversarial_value =
    Gen.string_size
      ~gen:(Gen.oneofl [ 'a'; 'b'; ','; '"'; '\n'; '\r'; ' '; '\t' ])
      (Gen.int_bound 6)
  in
  let instance_gen =
    Gen.bind (Gen.int_range 1 3) (fun arity ->
        Gen.map
          (fun rows ->
            Instance.of_tuples (List.map (Relational.Tuple.of_consts "r") rows))
          (Gen.list_size (Gen.int_range 1 6)
             (Gen.list_repeat arity adversarial_value)))
  in
  [
    Test.make ~name:"load_relation (to_csv inst) = inst, adversarial values"
      ~count:300 instance_gen (fun inst ->
        match Csv.load_relation ~rel:"r" (Csv.to_csv inst "r") with
        | Error _ -> false
        | Ok tuples -> Instance.equal inst (Instance.of_tuples tuples));
    Test.make ~name:"load (to_csv inst) = inst through the instance loader"
      ~count:150 instance_gen (fun inst ->
        match Csv.load [ ("r", Csv.to_csv inst "r") ] with
        | Error _ -> false
        | Ok loaded -> Instance.equal inst loaded);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let bitset_tests =
  let open Util in
  [
    Alcotest.test_case "set / get / clear" `Quick (fun () ->
        let b = Bitset.create 100 in
        Bitset.set b 0;
        Bitset.set b 63;
        Bitset.set b 64;
        Bitset.set b 99;
        Alcotest.(check bool) "0" true (Bitset.get b 0);
        Alcotest.(check bool) "63" true (Bitset.get b 63);
        Alcotest.(check bool) "64" true (Bitset.get b 64);
        Alcotest.(check bool) "50" false (Bitset.get b 50);
        Alcotest.(check int) "count" 4 (Bitset.count b);
        Bitset.clear b 63;
        Alcotest.(check int) "count after clear" 3 (Bitset.count b));
    Alcotest.test_case "bounds checked" `Quick (fun () ->
        let b = Bitset.create 10 in
        Alcotest.(check bool)
          "negative" true
          (match Bitset.get b (-1) with exception Invalid_argument _ -> true | _ -> false);
        Alcotest.(check bool)
          "too large" true
          (match Bitset.set b 10 with exception Invalid_argument _ -> true | _ -> false));
    Alcotest.test_case "union_into and union_count" `Quick (fun () ->
        let a = Bitset.of_list 70 [ 1; 2; 69 ] in
        let b = Bitset.of_list 70 [ 2; 3 ] in
        Alcotest.(check int) "union count" 4 (Bitset.union_count a b);
        Alcotest.(check int) "a untouched" 3 (Bitset.count a);
        Bitset.union_into a b;
        Alcotest.(check int) "after union" 4 (Bitset.count a);
        Alcotest.(check (list int)) "bits" [ 1; 2; 3; 69 ] (Bitset.to_list a));
    Alcotest.test_case "width mismatch rejected" `Quick (fun () ->
        let a = Bitset.create 5 and b = Bitset.create 6 in
        Alcotest.(check bool)
          "raises" true
          (match Bitset.union_into a b with
          | exception Invalid_argument _ -> true
          | _ -> false));
    Alcotest.test_case "copy is independent" `Quick (fun () ->
        let a = Bitset.of_list 8 [ 1 ] in
        let b = Bitset.copy a in
        Bitset.set b 2;
        Alcotest.(check int) "a" 1 (Bitset.count a);
        Alcotest.(check int) "b" 2 (Bitset.count b);
        Alcotest.(check bool) "equal after same ops" false (Bitset.equal a b));
    Alcotest.test_case "roundtrip of_list/to_list" `Quick (fun () ->
        let bits = [ 0; 5; 31; 32; 63; 64; 65 ] in
        Alcotest.(check (list int)) "bits" bits (Bitset.to_list (Bitset.of_list 80 bits)));
  ]

let stats_tests =
  let open Util in
  [
    Alcotest.test_case "mean / stddev" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
        Alcotest.(check (float 1e-9)) "empty mean" 0. (Stats.mean []);
        Alcotest.(check (float 1e-9)) "stddev" 1. (Stats.stddev [ 1.; 2.; 3. ]);
        Alcotest.(check (float 1e-9)) "singleton stddev" 0. (Stats.stddev [ 5. ]));
    Alcotest.test_case "median / percentile" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "median odd" 3. (Stats.median [ 5.; 1.; 3. ]);
        Alcotest.(check (float 1e-9)) "p100" 5. (Stats.percentile 100. [ 5.; 1.; 3. ]);
        Alcotest.(check (float 1e-9)) "p1 -> min" 1. (Stats.percentile 1. [ 5.; 1.; 3. ]);
        Alcotest.(check (float 1e-9)) "empty" 0. (Stats.median []));
    Alcotest.test_case "harmonic (the F1 convention)" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "balanced" 0.5 (Stats.harmonic 0.5 0.5);
        Alcotest.(check (float 1e-9)) "zero side" 0. (Stats.harmonic 0. 1.);
        Alcotest.(check (float 1e-6)) "f1" (2. *. 0.8 *. 0.4 /. 1.2)
          (Stats.harmonic 0.8 0.4));
    Alcotest.test_case "timer measures" `Quick (fun () ->
        let x, ms = Util.Timer.time_ms (fun () -> 41 + 1) in
        Alcotest.(check int) "result" 42 x;
        Alcotest.(check bool) "non-negative" true (ms >= 0.));
  ]

let () =
  Alcotest.run "relational"
    [
      ("value", value_tests);
      ("relation", relation_tests);
      ("schema", schema_tests);
      ("tuple", tuple_tests);
      ("instance", instance_tests);
      ("instance-properties", qcheck_tests);
      ("frac", frac_tests);
      ("frac-properties", frac_qcheck_tests);
      ("csv", csv_tests);
      ("csv-properties", csv_qcheck_tests);
      ("bitset", bitset_tests);
      ("stats", stats_tests);
    ]
