(* The mapping algebra (lib/algebra): composition, containment, inversion.

   Unit tests pin the hand-crafted two-hop pipeline scenario (the composed
   pool, identity laws, recovery round trips); qcheck properties check the
   algebraic laws — associativity of composition up to logical equivalence,
   containment reflexivity and antisymmetry — on generated multi-hop
   chains, which also exercise joins and existentials. *)

open Logic

let v x = Term.Var x

let tgd label body head = Tgd.make ~label ~body ~head ()

let atom rel vars = Atom.make rel (List.map v vars)

let check_equiv name a b =
  Alcotest.(check bool) name true (Algebra.equivalent a b)

(* --- the pipeline scenario ---------------------------------------------- *)

let composed_truth =
  [
    tgd "e2e_report" [ atom "proj" [ "P"; "E" ] ] [ atom "report" [ "P"; "E" ] ];
    tgd "e2e_person" [ atom "proj" [ "P"; "E" ] ] [ atom "person" [ "E" ] ];
  ]

let test_pipeline_compose () =
  let composed = Algebra.compose_all Scenarios.Pipeline.truth_pools in
  check_equiv "truth composes to the end-to-end mapping" composed
    composed_truth;
  (* the full pools keep the noise twin alive through composition: the
     composed pool is strictly stronger than the composed truth *)
  let pool = Algebra.compose_all Scenarios.Pipeline.pools in
  Alcotest.(check bool)
    "pool contains the truth" true
    (Algebra.contained_in pool composed_truth);
  Alcotest.(check bool)
    "truth does not contain the pool" false
    (Algebra.contained_in composed_truth pool)

let test_identity () =
  (* composing with the identity mapping over the intermediate schema is a
     no-op up to equivalence, on either side *)
  let id_t =
    [
      tgd "id_task" [ atom "task" [ "P"; "E" ] ] [ atom "task" [ "P"; "E" ] ];
      tgd "id_staff" [ atom "staff" [ "E" ] ] [ atom "staff" [ "E" ] ];
    ]
  in
  let hop1 = List.hd Scenarios.Pipeline.pools in
  check_equiv "m ; id = m" (Algebra.compose hop1 id_t) hop1;
  let hop2 = List.nth Scenarios.Pipeline.pools 1 in
  check_equiv "id ; m = m" (Algebra.compose id_t hop2) hop2

let test_compose_empty () =
  Alcotest.(check (list pass)) "[] composes to []" [] (Algebra.compose_all []);
  Alcotest.(check (list pass))
    "m ; [] = []" []
    (Algebra.compose (List.hd Scenarios.Pipeline.pools) [])

let test_composed_chase_agrees () =
  (* no existentials anywhere in the pipeline truth, so the hop-by-hop
     chase and the composed chase must produce identical ground instances *)
  let open Relational in
  let hopwise =
    Algebra.chase_through Scenarios.Pipeline.initial
      Scenarios.Pipeline.truth_pools
  in
  let direct =
    Chase.universal_solution Scenarios.Pipeline.initial
      (Algebra.compose_all Scenarios.Pipeline.truth_pools)
  in
  let tuples i = List.sort compare (Instance.tuples i) in
  Alcotest.(check bool)
    "identical instances" true
    (tuples hopwise = tuples direct)

(* --- containment --------------------------------------------------------- *)

let test_containment () =
  let general = [ tgd "g" [ atom "proj" [ "P"; "E" ] ] [ atom "task" [ "P"; "E" ] ] ] in
  let specific =
    [
      Tgd.make ~label:"s"
        ~body:[ Atom.make "proj" [ Term.Cst "ML"; v "E" ] ]
        ~head:[ Atom.make "task" [ Term.Cst "ML"; v "E" ] ]
        ();
    ]
  in
  Alcotest.(check bool)
    "general is contained in specific" true
    (Algebra.contained_in general specific);
  Alcotest.(check bool)
    "specific is not contained in general" false
    (Algebra.contained_in specific general);
  (* antisymmetry up to equivalence: mutual containment of syntactically
     different presentations *)
  let doubled =
    [
      tgd "d"
        [ atom "proj" [ "P"; "E" ]; atom "proj" [ "P"; "E2" ] ]
        [ atom "task" [ "P"; "E" ] ];
    ]
  in
  Alcotest.(check bool)
    "mutual containment" true
    (Algebra.contained_in general doubled
    && Algebra.contained_in doubled general);
  check_equiv "means equivalence" general doubled

(* --- inversion and recovery ---------------------------------------------- *)

let test_recovery_lossless () =
  (* the pipeline's hop-1 truth carries both proj columns into task, so the
     inverse recovers the source exactly *)
  let open Relational in
  let copy =
    [ tgd "t1" [ atom "proj" [ "P"; "E" ] ] [ atom "task" [ "P"; "E" ] ] ]
  in
  let r = Algebra.recovery ~source:Scenarios.Pipeline.initial copy in
  Alcotest.(check bool) "sound" true r.Algebra.sound;
  Alcotest.(check bool) "certain facts are source facts" true r.Algebra.certain_sound;
  let src = List.sort compare (Instance.tuples Scenarios.Pipeline.initial) in
  Alcotest.(check bool)
    "everything recovered" true
    (List.sort compare r.Algebra.certain = src)

let test_recovery_lossy () =
  (* a projection forgets the project column; the round trip remembers that
     a witness existed (a null), never which one *)
  let lossy =
    [ tgd "t2" [ atom "proj" [ "P"; "E" ] ] [ atom "staff" [ "E" ] ] ]
  in
  let r = Algebra.recovery ~source:Scenarios.Pipeline.initial lossy in
  Alcotest.(check bool) "still sound" true r.Algebra.sound;
  Alcotest.(check (list pass)) "no ground recovery" [] r.Algebra.certain;
  Alcotest.(check bool)
    "inverse has the inv_ label" true
    (List.for_all
       (fun (t : Tgd.t) ->
         String.length t.Tgd.label >= 4 && String.sub t.Tgd.label 0 4 = "inv_")
       r.Algebra.inverse)

(* --- qcheck laws on generated chains ------------------------------------- *)

let chain_gen =
  QCheck2.Gen.(
    let* seed = int_bound 0x3FFFFF in
    let* relations = int_range 1 2 in
    let* arity = int_range 1 2 in
    return
      (Ibench.Multihop.generate
         {
           Ibench.Multihop.relations;
           arity;
           rows = 2;
           hops = 3;
           pi_corresp = 20;
           pi_errors = 0;
           pi_unexplained = 0;
           seed;
         }))

let mappings_of s = Ibench.Multihop.mappings s

let qcheck_tests =
  let open QCheck2 in
  [
    Test.make ~name:"compose is associative up to equivalence" ~count:12
      ~print:(fun s -> Format.asprintf "%a" Ibench.Multihop.pp_summary s)
      chain_gen
      (fun s ->
        match mappings_of s with
        | [ m1; m2; m3 ] ->
          Algebra.equivalent
            (Algebra.compose (Algebra.compose m1 m2) m3)
            (Algebra.compose m1 (Algebra.compose m2 m3))
        | _ -> QCheck2.assume_fail ());
    Test.make ~name:"containment is reflexive on composed pools" ~count:12
      ~print:(fun s -> Format.asprintf "%a" Ibench.Multihop.pp_summary s)
      chain_gen
      (fun s ->
        let c = Algebra.compose_all (mappings_of s) in
        Algebra.contained_in c c);
    Test.make ~name:"compose_all of a singleton is the mapping" ~count:12
      ~print:(fun s -> Format.asprintf "%a" Ibench.Multihop.pp_summary s)
      chain_gen
      (fun s ->
        match mappings_of s with
        | m :: _ -> Algebra.equivalent (Algebra.compose_all [ m ]) m
        | [] -> QCheck2.assume_fail ());
  ]
  |> List.map QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "algebra"
    [
      ( "compose",
        [
          Alcotest.test_case "pipeline composes to the end-to-end truth"
            `Quick test_pipeline_compose;
          Alcotest.test_case "identity laws" `Quick test_identity;
          Alcotest.test_case "empty compositions" `Quick test_compose_empty;
          Alcotest.test_case "hop-by-hop chase agrees with composed chase"
            `Quick test_composed_chase_agrees;
        ] );
      ( "containment",
        [ Alcotest.test_case "containment and antisymmetry" `Quick test_containment ] );
      ( "recovery",
        [
          Alcotest.test_case "lossless round trip" `Quick test_recovery_lossless;
          Alcotest.test_case "lossy round trip stays sound" `Quick
            test_recovery_lossy;
        ] );
      ("laws", qcheck_tests);
    ]
